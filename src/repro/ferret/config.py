"""Configuration for the PCG-style OT extension protocol."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.prg import make_tree_prg
from repro.errors import ParameterError
from repro.lpn.params import LpnParams, TABLE4_BY_LABEL, scaled_params
from repro.spcot.mpcot import mpcot_cots_needed


@dataclass
class FerretConfig:
    """Everything both parties must agree on before running OTE.

    Attributes:
        params: the LPN parameter set (Table 4 row or a scaled set).
        arity: GGM expansion arity (2 = Ferret baseline, 4 = Ironman).
        prg_kind: "aes" (CPU baseline) or "chacha8" (Ironman).
        matrix_seed: public seed expanding the fixed LPN matrix.
        batched: run MPCOT's t trees level-synchronously (one channel
            message per GGM level, Figure 8's inter-tree parallelism)
            instead of tree by tree.  Outputs are bit-identical either
            way; the sequential path survives as a reference oracle.
        overlap_encode: compute the ``A @ vec`` half of the LPN encode
            on a background thread while the interactive MPCOT (GGM
            expansion + channel rounds) runs, XORing the MPCOT output
            in at the end.  Purely local scheduling: outputs and wire
            bytes are bit-identical either way (XOR associativity).
            Shard workers enable it; default off preserves the
            single-threaded extend.
    """

    params: LpnParams
    arity: int = 2
    prg_kind: str = "aes"
    matrix_seed: int = 0xFE44E7
    batched: bool = True
    overlap_encode: bool = False

    def __post_init__(self):
        if self.arity < 2 or self.arity & (self.arity - 1):
            raise ParameterError("arity must be a power of two >= 2")

    @classmethod
    def paper(cls, label: str = "2^20", arity: int = 2, prg_kind: str = "aes"):
        """A Table 4 configuration by label ('2^20' .. '2^24')."""
        return cls(params=TABLE4_BY_LABEL[label], arity=arity, prg_kind=prg_kind)

    @classmethod
    def small(cls, scale: int = 512, arity: int = 4, prg_kind: str = "chacha8"):
        """A scaled-down functional configuration for tests/examples."""
        return cls(params=scaled_params(scale), arity=arity, prg_kind=prg_kind)

    def make_prg(self):
        """Instantiate this configuration's tree PRG (per party)."""
        return make_tree_prg(self.prg_kind, self.arity)

    @property
    def spcot_cots(self) -> int:
        """Base COTs one extend() consumes for SPCOT's per-level OTs."""
        return mpcot_cots_needed(self.params.n, self.params.t, self.arity)

    @property
    def base_cots_needed(self) -> int:
        """Base COTs per iteration: LPN's k plus SPCOT's allotment."""
        return self.params.k + self.spcot_cots

    @property
    def net_output(self) -> int:
        """Usable COTs per extend() after reserving the next iteration."""
        return self.params.n - self.base_cots_needed
