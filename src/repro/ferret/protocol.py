"""The PCG-style OT extension protocol (Ferret, CCS'20), end to end.

One protocol instance lives through three phases (Section 2.3):

1. **setup** -- runs once: PKC base OTs create ``k + c`` genuine COT
   correlations (``k`` feeding LPN, ``c`` feeding SPCOT's per-level
   OTs).  This is the "Init" bar of Figure 1(b).
2. **extend** -- repeatable: an interactive multi-point SPCOT produces
   ``w = v XOR u*Delta`` over n points, then both parties *locally*
   LPN-encode, stretching k correlations into n.  The first
   ``k + c`` fresh correlations are reserved to bootstrap the next
   iteration; the rest are the protocol's output.
3. Outputs can be converted to standard OTs via
   :mod:`repro.ot.ot_from_cot` (Figure 2).

Sender and receiver are symmetric classes speaking over a
:class:`repro.ot.channel.Channel`; :func:`ferret_pair` wires two of
them together in threads for tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto import blocks
from repro.errors import ProtocolError
from repro.ferret.config import FerretConfig
from repro.lpn.encode import encode_bits, encode_blocks, premix_bits, premix_blocks
from repro.lpn.matrix import generate_matrix
from repro.ot.base_ot import base_cot_receive, base_cot_send
from repro.ot.channel import Channel, run_pair
from repro.ot.cot import CotPool, CotReceiverBatch, CotSenderBatch
from repro.spcot.mpcot import mpcot_receive, mpcot_send, sample_alphas


@dataclass
class ExtendStats:
    """Per-iteration accounting surfaced to the benchmarks.

    Every field is a delta over one ``extend()`` call (bytes and rounds
    are snapshotted before/after, like ``prg_calls``), not a cumulative
    channel total.
    """

    n_output: int
    prg_calls: int
    bytes_sent: int
    rounds: int


class FerretSender:
    """The COT sender: holds the global Delta."""

    def __init__(self, config: FerretConfig, seed: int = 1):
        self.config = config
        self.rng = np.random.default_rng(seed)
        self.delta = blocks.random_blocks(1, self.rng)
        self.prg = config.make_prg()
        self.matrix = generate_matrix(
            config.params.n, config.params.k, config.matrix_seed
        )
        self._lpn_r = None  # (k, 2) blocks feeding the next LPN encode
        self._spcot_pool = None  # CotPool for SPCOT per-level OTs
        self.iterations = 0
        self.last_stats = None

    def setup(self, channel: Channel) -> None:
        """One-time init: run PKC base OTs for the first iteration."""
        cfg = self.config
        r = base_cot_send(channel, cfg.base_cots_needed, self.delta, self.rng)
        self._lpn_r = r[: cfg.params.k]
        self._spcot_pool = CotPool(
            sender=CotSenderBatch(self.delta, r[cfg.params.k :])
        )

    def extend(self, channel: Channel) -> CotSenderBatch:
        """One OTE iteration; returns the net-new sender correlations."""
        if self._lpn_r is None:
            raise ProtocolError("setup() must run before extend()")
        cfg = self.config
        prev_calls = self.prg.total_calls
        prev_bytes = channel.stats.bytes_sent
        prev_rounds = channel.stats.rounds
        # Overlapped extend: A @ r only needs last iteration's LPN state,
        # so it runs under the interactive MPCOT instead of after it.
        premix = premix_blocks(self.matrix, self._lpn_r) if cfg.overlap_encode else None
        w = mpcot_send(
            channel,
            self._spcot_pool,
            self.delta,
            self.prg,
            cfg.params.n,
            cfg.params.t,
            self.rng,
            batched=cfg.batched,
        )
        if premix is not None:
            z = premix.finish(w)
        else:
            z = encode_blocks(self.matrix, self._lpn_r, w)
        reserve = cfg.base_cots_needed
        self._lpn_r = z[: cfg.params.k].copy()
        self._spcot_pool = CotPool(
            sender=CotSenderBatch(self.delta, z[cfg.params.k : reserve].copy())
        )
        self.iterations += 1
        self.last_stats = ExtendStats(
            n_output=cfg.params.n - reserve,
            prg_calls=self.prg.total_calls - prev_calls,
            bytes_sent=channel.stats.bytes_sent - prev_bytes,
            rounds=channel.stats.rounds - prev_rounds,
        )
        return CotSenderBatch(self.delta, z[reserve:])


class FerretReceiver:
    """The COT receiver: ends up with choice bits x and blocks y."""

    def __init__(self, config: FerretConfig, seed: int = 2):
        self.config = config
        self.rng = np.random.default_rng(seed)
        self.prg = config.make_prg()
        self.matrix = generate_matrix(
            config.params.n, config.params.k, config.matrix_seed
        )
        self._lpn_e = None  # (k,) choice bits
        self._lpn_s = None  # (k, 2) blocks
        self._spcot_pool = None
        self.iterations = 0
        self.last_stats = None

    def setup(self, channel: Channel) -> None:
        """One-time init, mirror of the sender's."""
        cfg = self.config
        bits = self.rng.integers(0, 2, cfg.base_cots_needed).astype(np.uint8)
        y = base_cot_receive(channel, bits)
        self._lpn_e = bits[: cfg.params.k]
        self._lpn_s = y[: cfg.params.k]
        self._spcot_pool = CotPool(
            receiver=CotReceiverBatch(bits[cfg.params.k :], y[cfg.params.k :])
        )

    def extend(self, channel: Channel) -> CotReceiverBatch:
        """One OTE iteration; returns the net-new receiver correlations."""
        if self._lpn_e is None:
            raise ProtocolError("setup() must run before extend()")
        cfg = self.config
        prev_calls = self.prg.total_calls
        prev_bytes = channel.stats.bytes_sent
        prev_rounds = channel.stats.rounds
        alphas = sample_alphas(cfg.params.n, cfg.params.t, self.rng)
        if cfg.overlap_encode:
            premix_e = premix_bits(self.matrix, self._lpn_e)
            premix_s = premix_blocks(self.matrix, self._lpn_s)
        else:
            premix_e = premix_s = None
        u, v = mpcot_receive(
            channel,
            self._spcot_pool,
            alphas,
            self.prg,
            cfg.params.n,
            cfg.params.t,
            batched=cfg.batched,
        )
        if premix_e is not None:
            x = premix_e.finish(u)
            y = premix_s.finish(v)
        else:
            x = encode_bits(self.matrix, self._lpn_e, u)
            y = encode_blocks(self.matrix, self._lpn_s, v)
        reserve = cfg.base_cots_needed
        self._lpn_e = x[: cfg.params.k].copy()
        self._lpn_s = y[: cfg.params.k].copy()
        self._spcot_pool = CotPool(
            receiver=CotReceiverBatch(
                x[cfg.params.k : reserve].copy(), y[cfg.params.k : reserve].copy()
            )
        )
        self.iterations += 1
        self.last_stats = ExtendStats(
            n_output=cfg.params.n - reserve,
            prg_calls=self.prg.total_calls - prev_calls,
            bytes_sent=channel.stats.bytes_sent - prev_bytes,
            rounds=channel.stats.rounds - prev_rounds,
        )
        return CotReceiverBatch(x[reserve:], y[reserve:])


def ferret_pair(config: FerretConfig, rounds: int = 1, seed: int = 7) -> tuple:
    """Run setup + ``rounds`` extends between two in-memory parties.

    Returns (sender_batches, receiver_batches, sender_stats,
    receiver_stats): one output batch per round plus the channel
    accounting for the whole session.
    """
    sender = FerretSender(config, seed=seed)
    receiver = FerretReceiver(config, seed=seed + 1)

    def run_sender(channel):
        sender.setup(channel)
        return [sender.extend(channel) for _ in range(rounds)]

    def run_receiver(channel):
        receiver.setup(channel)
        return [receiver.extend(channel) for _ in range(rounds)]

    s_out, r_out, s_stats, r_stats = run_pair(run_sender, run_receiver)
    return s_out, r_out, s_stats, r_stats
