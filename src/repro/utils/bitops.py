"""Bit-vector helpers shared across the protocol and simulator layers."""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError


def pack_bits(bits: np.ndarray) -> bytes:
    """Pack a uint8 0/1 vector into bytes (little-endian bit order)."""
    return np.packbits(np.asarray(bits, dtype=np.uint8), bitorder="little").tobytes()


def unpack_bits(data: bytes, n: int) -> np.ndarray:
    """Unpack ``n`` bits previously packed by :func:`pack_bits`."""
    arr = np.frombuffer(data, dtype=np.uint8)
    bits = np.unpackbits(arr, bitorder="little")
    if bits.shape[0] < n:
        raise ParameterError(f"byte string holds {bits.shape[0]} bits, need {n}")
    return bits[:n].copy()


def int_to_digits(value: int, base: int, width: int) -> list:
    """Little-endian base-``base`` digits of ``value``, padded to ``width``."""
    if value < 0:
        raise ParameterError("value must be non-negative")
    digits = []
    for _ in range(width):
        digits.append(value % base)
        value //= base
    if value:
        raise ParameterError("value does not fit in the requested digit width")
    return digits


def digits_to_int(digits, base: int) -> int:
    """Inverse of :func:`int_to_digits`."""
    value = 0
    for d in reversed(list(digits)):
        if not 0 <= d < base:
            raise ParameterError(f"digit {d} out of range for base {base}")
        value = value * base + d
    return value


def next_power(value: int, base: int) -> int:
    """Smallest power of ``base`` that is >= ``value``."""
    if value < 1:
        raise ParameterError("value must be positive")
    power = 1
    while power < value:
        power *= base
    return power


def log_base(value: int, base: int) -> int:
    """Exact logarithm; raises if ``value`` is not a power of ``base``."""
    depth = 0
    acc = 1
    while acc < value:
        acc *= base
        depth += 1
    if acc != value:
        raise ParameterError(f"{value} is not a power of {base}")
    return depth
