"""Unit helpers: byte sizes, time, area, and formatting for reports."""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

MBPS = 1e6 / 8.0  # megabits/s expressed in bytes/s
GBPS = 1e9 / 8.0  # gigabits/s expressed in bytes/s


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (binary units)."""
    for unit, width in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if abs(n) >= width:
            return f"{n / width:.2f} {unit}"
    return f"{n:.0f} B"


def fmt_seconds(t: float) -> str:
    """Human-readable duration."""
    if t >= 1.0:
        return f"{t:.3f} s"
    if t >= 1e-3:
        return f"{t * 1e3:.2f} ms"
    if t >= 1e-6:
        return f"{t * 1e6:.2f} us"
    return f"{t * 1e9:.1f} ns"


def fmt_ratio(x: float) -> str:
    """Render a speedup like the paper (e.g. '39.26x')."""
    return f"{x:.2f}x"


def mhz(cycles: float, freq_hz: float) -> float:
    """Convert a cycle count to seconds at the given clock frequency."""
    return cycles / freq_hz
