"""Tiny ASCII table renderer used by the benchmark harness.

Every bench regenerates a paper table/figure as rows printed through
this module, so the harness output can be compared side-by-side with
the paper.
"""

from __future__ import annotations


def render_table(headers, rows, title: str = "") -> str:
    """Render rows (sequences of stringable cells) as an aligned table."""
    str_rows = [[str(c) for c in row] for row in rows]
    str_headers = [str(h) for h in headers]
    widths = [len(h) for h in str_headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(str_headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers, rows, title: str = "") -> None:
    """Print a rendered table followed by a blank line."""
    print(render_table(headers, rows, title=title))
    print()
