"""Channel multiplexing: many tagged logical channels over one link.

The provisioning runtime needs several concurrent conversations between
the same two hosts -- the background Ferret extends, the triple
generator, and N consumer sessions -- but a deployment has *one* duplex
link.  :class:`MuxChannel` wraps any :class:`repro.ot.channel.Channel`
endpoint and hands out :class:`SubChannel` objects keyed by a string
tag; each sub-channel is itself a full ``Channel`` (typed helpers,
:class:`~repro.ot.channel.ChannelStats` accounting), so every existing
protocol runs over a sub-channel unchanged.

Framing: each message on the wire is ``u16 tag_len | tag utf-8 |
payload``.  A per-endpoint pump thread drains the underlying channel
and routes frames into per-tag inboxes, so receives on different
sub-channels never block each other.

Accounting: a sub-channel's stats record the *framed* size of its own
traffic (payload + tag header), so the per-tag byte counts partition
the underlying channel's totals exactly -- provisioning bytes and
consumer bytes stay separable, and per-protocol ``rounds`` keep their
meaning on the sub-channel where the protocol actually runs.
"""

from __future__ import annotations

import queue
import struct
import threading

from repro.errors import ChannelClosed, ChannelError, ChannelTimeout
from repro.ot.channel import Channel, DEFAULT_RECV_TIMEOUT

#: Frame header: little-endian u16 tag length.
_TAG_HEADER = struct.Struct("<H")


class SubChannel(Channel):
    """One tagged logical channel of a :class:`MuxChannel` endpoint."""

    def __init__(self, mux: "MuxChannel", tag: str):
        super().__init__()
        self.tag = tag
        self._mux = mux
        self._tag_bytes = tag.encode("utf-8")
        if len(self._tag_bytes) > 0xFFFF:
            raise ChannelError("sub-channel tag too long")
        self._inbox: queue.Queue = queue.Queue()

    def send_bytes(self, data: bytes) -> None:
        frame = _TAG_HEADER.pack(len(self._tag_bytes)) + self._tag_bytes + data
        self.stats.record_send(len(frame))
        self._mux._send_frame(frame)

    def recv_bytes(self, timeout: float = None) -> bytes:
        timeout = self._mux.timeout if timeout is None else timeout
        try:
            item = self._inbox.get_nowait()
        except queue.Empty:
            # Nothing queued: fail fast if the pump already died, rather
            # than sitting out the full timeout first.
            self._mux._check_pump()
            try:
                item = self._inbox.get(timeout=timeout)
            except queue.Empty as exc:
                self._mux._check_pump()
                raise ChannelTimeout(
                    f"recv timed out on sub-channel {self.tag!r}"
                ) from exc
        if item is _CLOSED:
            self._mux._check_pump()  # surfaces the original transport error
            raise ChannelClosed(f"mux closed while sub-channel {self.tag!r} waited")
        self.stats.record_recv(len(item) + _TAG_HEADER.size + len(self._tag_bytes))
        return item


#: Sentinel pushed into every inbox when the mux shuts down.
_CLOSED = object()


class MuxChannel:
    """Multiplexes tagged sub-channels over one duplex channel endpoint.

    Both peers wrap their respective endpoints and must use matching
    tags.  Sub-channels are created lazily on first :meth:`sub` call
    *or* on first incoming frame for an unknown tag (so the creation
    order on the two hosts need not match).
    """

    def __init__(self, base: Channel, timeout: float = DEFAULT_RECV_TIMEOUT):
        self.base = base
        self.timeout = timeout
        self._subs: dict = {}
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._closed = threading.Event()
        self._pump_error = None
        self._pump_dead = False
        self._pump = threading.Thread(
            target=self._pump_loop, name="mux-pump", daemon=True
        )
        self._pump.start()

    # -- sub-channel management --------------------------------------------
    def sub(self, tag: str) -> SubChannel:
        """The sub-channel for ``tag`` (created on first use)."""
        with self._lock:
            if tag not in self._subs:
                if self._closed.is_set():
                    raise ChannelClosed("mux is closed")
                sub = SubChannel(self, tag)
                if self._pump_dead:
                    # Created after the pump exited: no frame will ever
                    # arrive, so seed the sentinel that wakes receivers.
                    sub._inbox.put(_CLOSED)
                self._subs[tag] = sub
            return self._subs[tag]

    @property
    def tags(self) -> tuple:
        with self._lock:
            return tuple(sorted(self._subs))

    def stats_by_tag(self) -> dict:
        """Per-tag ChannelStats snapshot (for attribution reports)."""
        with self._lock:
            return {tag: sub.stats for tag, sub in self._subs.items()}

    # -- transport ----------------------------------------------------------
    def _send_frame(self, frame: bytes) -> None:
        if self._closed.is_set():
            raise ChannelClosed("mux is closed")
        with self._send_lock:
            self.base.send_bytes(frame)

    def _pump_loop(self) -> None:
        try:
            while not self._closed.is_set():
                try:
                    frame = self.base.recv_bytes(timeout=0.2)
                except ChannelTimeout:
                    continue
                except BaseException as exc:  # noqa: BLE001 - any transport fault
                    if not self._closed.is_set():
                        self._pump_error = exc
                    break
                try:
                    (tag_len,) = _TAG_HEADER.unpack_from(frame)
                    tag = frame[_TAG_HEADER.size : _TAG_HEADER.size + tag_len].decode(
                        "utf-8"
                    )
                    payload = frame[_TAG_HEADER.size + tag_len :]
                except (struct.error, UnicodeDecodeError) as exc:
                    self._pump_error = ChannelError(f"malformed mux frame: {exc!r}")
                    break
                try:
                    self.sub(tag)._inbox.put(payload)
                except ChannelClosed:
                    break  # closed while routing the final frame
        finally:
            # Wake every blocked receiver so they fail loudly instead of
            # timing out one by one -- even if the loop died unexpectedly.
            with self._lock:
                self._pump_dead = True
                for sub in self._subs.values():
                    sub._inbox.put(_CLOSED)

    def _check_pump(self) -> None:
        if isinstance(self._pump_error, ChannelClosed):
            raise ChannelClosed(f"peer closed the mux link: {self._pump_error}")
        if self._pump_error is not None:
            raise ChannelError(f"mux pump died: {self._pump_error!r}")
        if self._pump_dead and not self._closed.is_set():
            raise ChannelClosed("mux pump exited")

    def close(self) -> None:
        """Stop the pump and wake all blocked receivers."""
        self._closed.set()
        self._pump.join(timeout=2.0)
