"""Channel multiplexing: many tagged logical channels over one link.

The provisioning runtime needs several concurrent conversations between
the same two hosts -- the background Ferret extends, the triple
generator, and N consumer sessions -- but a deployment has *one* duplex
link.  :class:`MuxChannel` wraps any :class:`repro.ot.channel.Channel`
endpoint and hands out :class:`SubChannel` objects keyed by a string
tag; each sub-channel is itself a full ``Channel`` (typed helpers,
:class:`~repro.ot.channel.ChannelStats` accounting), so every existing
protocol runs over a sub-channel unchanged.

Framing: each message on the wire is ``u16 tag_len | tag utf-8 |
payload`` (:func:`encode_frame` / :func:`decode_frame`).  A
per-endpoint pump thread drains the underlying channel and routes
frames into per-tag inboxes, so receives on different sub-channels
never block each other.

Accounting: a sub-channel's stats record the *framed* size of its own
traffic (payload + tag header), so the per-tag byte counts partition
the underlying channel's totals exactly -- provisioning bytes and
consumer bytes stay separable, and per-protocol ``rounds`` keep their
meaning on the sub-channel where the protocol actually runs.

Liveness: an optional heartbeat (``heartbeat_s``) emits empty frames on
the reserved ``hb/`` tag and declares the peer dead after
``heartbeat_miss`` silent intervals, so blocked receivers fail fast on
silent peer death instead of burning their full timeouts.  Heartbeat
frames are dropped inline by the pump (never queued, not attributed to
any sub-channel), and the feature defaults off so per-tag byte
partition remains exact unless liveness is explicitly requested.
"""

from __future__ import annotations

import queue
import struct
import threading
import time

from repro.errors import ChannelClosed, ChannelError, ChannelTimeout
from repro.obs.trace import NULL_TRACER
from repro.ot.channel import Channel, DEFAULT_RECV_TIMEOUT

#: Frame header: little-endian u16 tag length.
_TAG_HEADER = struct.Struct("<H")

#: Reserved tag for liveness frames (handled inline by the pump).
HEARTBEAT_TAG = "hb/"


def encode_frame(tag_bytes: bytes, payload: bytes) -> bytes:
    """Wire-encode one mux frame: ``u16 tag_len | tag | payload``."""
    if len(tag_bytes) > 0xFFFF:
        raise ChannelError("sub-channel tag too long")
    return _TAG_HEADER.pack(len(tag_bytes)) + tag_bytes + payload


def decode_frame(frame: bytes) -> tuple:
    """Parse a wire frame into ``(tag, payload)``.

    Raises :class:`ChannelError` on any malformed input (short header,
    tag length exceeding the frame, non-UTF-8 tag bytes) -- the pump
    and the fuzz suite both route through here.
    """
    try:
        (tag_len,) = _TAG_HEADER.unpack_from(frame)
    except struct.error as exc:
        raise ChannelError(f"malformed mux frame: {exc!r}") from exc
    end = _TAG_HEADER.size + tag_len
    if len(frame) < end:
        raise ChannelError(
            f"malformed mux frame: tag length {tag_len} exceeds frame "
            f"({len(frame)} bytes)"
        )
    try:
        tag = frame[_TAG_HEADER.size : end].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ChannelError(f"malformed mux frame: {exc!r}") from exc
    return tag, frame[end:]


class SubChannel(Channel):
    """One tagged logical channel of a :class:`MuxChannel` endpoint."""

    def __init__(self, mux: "MuxChannel", tag: str):
        super().__init__()
        self.tag = tag
        self._mux = mux
        self._tag_bytes = tag.encode("utf-8")
        if len(self._tag_bytes) > 0xFFFF:
            raise ChannelError("sub-channel tag too long")
        self._inbox: queue.Queue = queue.Queue()
        self.rx_frames = 0  # frames routed here by the pump (resume state)

    def send_bytes(self, data: bytes) -> None:
        frame = encode_frame(self._tag_bytes, data)
        self.stats.record_send(len(frame))
        self._mux._send_frame(frame)

    def recv_bytes(self, timeout: float = None) -> bytes:
        timeout = self._mux.timeout if timeout is None else timeout
        try:
            item = self._inbox.get_nowait()
        except queue.Empty:
            # Nothing queued: fail fast if the pump already died, rather
            # than sitting out the full timeout first.
            self._mux._check_pump()
            try:
                item = self._inbox.get(timeout=timeout)
            except queue.Empty as exc:
                self._mux._check_pump()
                raise ChannelTimeout(
                    f"recv timed out on sub-channel {self.tag!r}"
                ) from exc
        if item is _CLOSED:
            # Re-seed so every other thread blocked on this inbox (and
            # any later receive) also wakes promptly.
            self._inbox.put(_CLOSED)
            self._mux._check_pump()  # surfaces the original transport error
            raise ChannelClosed(f"mux closed while sub-channel {self.tag!r} waited")
        self.stats.record_recv(len(item) + _TAG_HEADER.size + len(self._tag_bytes))
        return item

    def drain(self) -> list:
        """Pop every queued payload without blocking (resync helper).

        Drained frames still count toward this sub-channel's receive
        stats -- they crossed the wire and must stay attributed, even
        though the consumer discards them.
        """
        out = []
        while True:
            try:
                item = self._inbox.get_nowait()
            except queue.Empty:
                return out
            if item is _CLOSED:
                self._inbox.put(_CLOSED)
                return out
            self.stats.record_recv(
                len(item) + _TAG_HEADER.size + len(self._tag_bytes)
            )
            out.append(item)


#: Sentinel pushed into every inbox when the mux shuts down.
_CLOSED = object()


class MuxChannel:
    """Multiplexes tagged sub-channels over one duplex channel endpoint.

    Both peers wrap their respective endpoints and must use matching
    tags.  Sub-channels are created lazily on first :meth:`sub` call
    *or* on first incoming frame for an unknown tag (so the creation
    order on the two hosts need not match).

    ``heartbeat_s`` (both peers must agree) starts a beat thread
    sending empty ``hb/`` frames at that interval; if *nothing* arrives
    for ``heartbeat_miss`` intervals the pump declares the peer dead
    and poisons every inbox, so ``wait_level``-style callers fail in
    seconds instead of their full deadline.
    """

    def __init__(
        self,
        base: Channel,
        timeout: float = DEFAULT_RECV_TIMEOUT,
        heartbeat_s: float = None,
        heartbeat_miss: int = 3,
    ):
        self.base = base
        self.timeout = timeout
        self.heartbeat_s = heartbeat_s
        self.heartbeat_miss = int(heartbeat_miss)
        self._subs: dict = {}
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._closed = threading.Event()
        self._pump_error = None
        self._pump_dead = False
        self._last_rx = time.monotonic()
        self.tracer = NULL_TRACER
        self._pump = threading.Thread(
            target=self._pump_loop, name="mux-pump", daemon=True
        )
        self._pump.start()
        self._beat = None
        if heartbeat_s is not None:
            self._beat = threading.Thread(
                target=self._beat_loop, name="mux-heartbeat", daemon=True
            )
            self._beat.start()

    # -- sub-channel management --------------------------------------------
    def sub(self, tag: str) -> SubChannel:
        """The sub-channel for ``tag`` (created on first use)."""
        with self._lock:
            if tag not in self._subs:
                if self._closed.is_set():
                    raise ChannelClosed("mux is closed")
                sub = SubChannel(self, tag)
                if self._pump_dead:
                    # Created after the pump exited: no frame will ever
                    # arrive, so seed the sentinel that wakes receivers.
                    sub._inbox.put(_CLOSED)
                self._subs[tag] = sub
            return self._subs[tag]

    @property
    def tags(self) -> tuple:
        with self._lock:
            return tuple(sorted(self._subs))

    def stats_by_tag(self) -> dict:
        """Per-tag ChannelStats snapshot (for attribution reports)."""
        with self._lock:
            return {tag: sub.stats for tag, sub in self._subs.items()}

    def receive_counts(self) -> dict:
        """Per-tag count of frames the pump has routed (resume state).

        This is the mux's contribution to the reconnect handshake: the
        peer can tell from these counts exactly how far each logical
        stream progressed before an outage.
        """
        with self._lock:
            return {tag: sub.rx_frames for tag, sub in self._subs.items()}

    # -- transport ----------------------------------------------------------
    def _send_frame(self, frame: bytes) -> None:
        if self._closed.is_set():
            raise ChannelClosed("mux is closed")
        with self._send_lock:
            self.base.send_bytes(frame)

    def _beat_loop(self) -> None:
        beat = encode_frame(HEARTBEAT_TAG.encode("utf-8"), b"")
        while not self._closed.wait(self.heartbeat_s):
            try:
                self._send_frame(beat)
            except ChannelError:
                return  # link down or mux closed; the pump handles it
            if self.tracer.enabled:
                self.tracer.instant("heartbeat", cat="liveness")

    def _heartbeat_expired(self) -> bool:
        if self.heartbeat_s is None:
            return False
        silence = time.monotonic() - self._last_rx
        return silence > self.heartbeat_s * self.heartbeat_miss

    def _pump_loop(self) -> None:
        try:
            while not self._closed.is_set():
                try:
                    frame = self.base.recv_bytes(timeout=0.2)
                except ChannelTimeout:
                    if self._heartbeat_expired():
                        if self.tracer.enabled:
                            self.tracer.instant(
                                "heartbeat.lost", cat="liveness",
                                silent_s=time.monotonic() - self._last_rx,
                            )
                        self._pump_error = ChannelClosed(
                            f"peer heartbeat lost (silent for "
                            f"{self.heartbeat_miss} x {self.heartbeat_s}s)"
                        )
                        break
                    continue
                except BaseException as exc:  # noqa: BLE001 - any transport fault
                    if not self._closed.is_set():
                        self._pump_error = exc
                    break
                self._last_rx = time.monotonic()
                try:
                    tag, payload = decode_frame(frame)
                except ChannelError as exc:
                    self._pump_error = exc
                    break
                if tag == HEARTBEAT_TAG:
                    continue  # liveness only -- never queued or attributed
                try:
                    sub = self.sub(tag)
                except ChannelClosed:
                    break  # closed while routing the final frame
                sub.rx_frames += 1
                sub._inbox.put(payload)
        finally:
            # Wake every blocked receiver so they fail loudly instead of
            # timing out one by one -- even if the loop died unexpectedly.
            with self._lock:
                self._pump_dead = True
            self._poison_all()

    def _poison_all(self) -> None:
        with self._lock:
            for sub in self._subs.values():
                sub._inbox.put(_CLOSED)

    def _check_pump(self) -> None:
        if isinstance(self._pump_error, ChannelClosed):
            raise ChannelClosed(f"peer closed the mux link: {self._pump_error}")
        if self._pump_error is not None:
            raise ChannelError(f"mux pump died: {self._pump_error!r}")
        if self._pump_dead and not self._closed.is_set():
            raise ChannelClosed("mux pump exited")

    def close(self) -> None:
        """Stop the pump and wake all blocked receivers promptly.

        Receivers are poisoned immediately -- a thread parked in
        ``recv_bytes`` sees :class:`ChannelClosed` now, not after the
        pump's next poll tick or (worse) its own full timeout.
        """
        self._closed.set()
        self._poison_all()
        self._pump.join(timeout=2.0)
        if self._beat is not None:
            self._beat.join(timeout=2.0)
