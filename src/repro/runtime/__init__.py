"""Correlation provisioning runtime: pools, service, multiplexing.

This package turns the one-shot ``ferret_pair`` demo into a long-lived
producer/consumer system (the deployment shape the paper's Figure 1(b)
amortization argument assumes):

* :mod:`repro.runtime.pool` -- thread-safe typed correlation pools with
  watermark refill, backpressure, and per-pool statistics;
* :mod:`repro.runtime.service` -- a per-party background worker that
  keeps the pools filled by running Ferret extends (both directions)
  and derived production (bit/ring/matrix triples, random OTs), with
  deterministic leader-side allocation so the two parties' draws stay
  correlated, plus ``prefill`` for planner-driven preprocessing;
* :mod:`repro.runtime.mux` -- tagged sub-channel multiplexing so the
  provisioning traffic and any number of consumer sessions share one
  duplex link (in-memory or a real socket).

Fault tolerance rides below and through these layers: a
:class:`repro.ot.reconnect.ReconnectingChannel` heals transport loss
under the mux, the mux heartbeat detects silent peer death, and the
service degrades (stock still drawable, typed
:class:`repro.errors.ServiceDegraded` backpressure) when production is
down past the retry budget.
"""

from repro.runtime.daemon import (
    DaemonConfig,
    DaemonRequest,
    InferenceDaemon,
    Lease,
)
from repro.runtime.mux import MuxChannel, SubChannel
from repro.runtime.pool import (
    DEFAULT_WAIT_TIMEOUT_S,
    CorrelationPool,
    MatrixTriplePool,
    PoolStats,
    ReceiverCotPool,
    RingTriplePool,
    RotReceiverPool,
    RotSenderPool,
    SenderCotPool,
    TriplePool,
    TruncPairPool,
)
from repro.runtime.service import CorrelationService, ServiceSession, ServiceTuning

__all__ = [
    "CorrelationPool",
    "CorrelationService",
    "DEFAULT_WAIT_TIMEOUT_S",
    "DaemonConfig",
    "DaemonRequest",
    "InferenceDaemon",
    "Lease",
    "MatrixTriplePool",
    "MuxChannel",
    "PoolStats",
    "ReceiverCotPool",
    "RingTriplePool",
    "RotReceiverPool",
    "RotSenderPool",
    "SenderCotPool",
    "ServiceSession",
    "ServiceTuning",
    "SubChannel",
    "TriplePool",
    "TruncPairPool",
]
