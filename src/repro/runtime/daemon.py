"""Persistent two-party inference daemon over one CorrelationService.

The paper's offline/online split only pays off operationally when the
online phase is a long-lived *service*: correlations produced under one
request's online tail are what make the NEXT request's time-to-first-
layer-online cheap.  This module turns the one-example-script-per-run
serving loop into that daemon:

* **Many requests, one service.**  Both parties construct an
  :class:`InferenceDaemon` over their (already started)
  :class:`repro.runtime.service.CorrelationService` with the same model
  graph and their half of the weight shares.  Clients submit input
  shares per named session; the daemon runs the MPC online phase itself
  and holds the result share under a lease.
* **Cross-request pipelining.**  A scheduler thread chains one
  batch-scaled :class:`repro.ppml.plan.PipelinedPrefill` per request:
  request r+1's layer-0 produce targets are raised the moment request
  r's *production* finishes -- while r's online tail is still draining
  -- so the pool never idles between requests.  Watermarks are restored
  once, at daemon shutdown (``finish(restore=False)`` per request).
* **Batched inference.**  A request may carry B>1 inputs through one
  pipelined plan: every per-layer produce target and raw-COT watermark
  scales by B, linear layers draw B matrix triples, and nonlinears fuse
  the whole batch into one draw sequence.
* **Admission control + per-session backpressure.**  The leader bounds
  daemon-wide in-flight requests (typed
  :class:`repro.errors.AdmissionReject` when full) and each session
  blocks at ``session_inflight`` unfinished submissions -- backpressure
  on top of (not instead of) the pool watermarks.
* **Leases ride the resume handshake.**  Every admitted request gets a
  lease token + expiry.  :meth:`InferenceDaemon.resume_state` wraps the
  service's PR-6 resume state with the live lease table and *renews*
  the leases it reports -- a reconnect handshake in progress IS the
  dropped client coming back -- so wiring it as a
  ``ReconnectingChannel.state_provider`` lets a client re-attach
  (:meth:`InferenceDaemon.attach`) to its in-flight request instead of
  orphaning reserved pool ranges.  Unclaimed results of expired leases
  are dropped by a reaper (``lease.expire`` span).

Determinism contract: the leader (party 0) makes every admission
decision and announces it on the ``daemon/ctl`` sub-channel; the
follower executes admitted requests in announcement order.  Both
parties therefore construct pipelines and issue draws in the same
global order, which is what keeps the absolute-index correlation
streams mirrored.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    AdmissionReject,
    ChannelTimeout,
    DaemonError,
    LeaseExpired,
    ParameterError,
)
from repro.mpc.matmul import matmul_rescale_via_service, matmul_via_service
from repro.mpc.relu import relu_via_service
from repro.mpc.sharing import ArithmeticShares
from repro.ppml.layers import Activation, Linear, Rescale
from repro.ppml.plan import plan_graph


@dataclass
class DaemonConfig:
    """Serving knobs; both parties must construct identical configs."""

    #: Daemon-wide admission window: submissions beyond this many
    #: unfinished requests get a typed AdmissionReject.
    max_inflight: int = 4
    #: Per-session backpressure: a session's (blocking) submit waits
    #: while it has this many unfinished requests in flight.
    session_inflight: int = 2
    #: Seconds an admitted request's result is held for its client.
    lease_ttl_s: float = 30.0
    #: Largest B one request may carry.
    max_batch: int = 8
    #: Bound on every internal wait (prefill, verdicts, online draws).
    request_timeout_s: float = 120.0
    #: Truncation mode of the Rescale layers ("pair"/"wrap"/"exact").
    trunc_mode: str = "exact"
    #: Base seed of the party-local online masking RNG.
    online_seed: int = 0x1207


@dataclass
class Lease:
    """A client's claim on one in-flight request."""

    token: str
    session: str
    ttl_s: float
    expires_at: float = field(default=0.0)

    def __post_init__(self):
        self.renew()

    def renew(self) -> None:
        self.expires_at = time.monotonic() + self.ttl_s

    @property
    def expired(self) -> bool:
        return time.monotonic() > self.expires_at

    @property
    def remaining_s(self) -> float:
        return max(0.0, self.expires_at - time.monotonic())


class DaemonRequest:
    """One admitted request: inputs in, lease out, result share held."""

    def __init__(self, seq, session, inputs, lease, timeout_s):
        self.seq = seq
        self.session = session
        self.inputs = inputs  # list of B input shares
        self.batch = len(inputs)
        self.lease = lease
        self.timeout_s = timeout_s
        self.pipe = None
        self.output = None  # list of B output shares once done
        self.error = None
        self.claimed = False
        self.expired = False
        self.done = threading.Event()
        self._pipe_ready = threading.Event()
        #: Seconds the online worker blocked waiting for this request's
        #: first layer -- the cross-request-overlap figure of merit
        #: (near zero in steady state, full layer-0 production cold).
        self.first_wait_s = None
        self.online_s = None

    def result(self, timeout: float = None):
        """Block for the output shares (renewing the lease while it
        waits); raises the request's error, or LeaseExpired if the
        reaper dropped an unclaimed result."""
        deadline = time.monotonic() + (
            self.timeout_s if timeout is None else timeout
        )
        while not self.done.wait(0.05):
            self.lease.renew()
            if time.monotonic() > deadline:
                raise DaemonError(
                    f"request {self.seq} ({self.session}): no result in time"
                )
        if self.error is not None:
            raise self.error
        if self.expired:
            raise LeaseExpired(
                f"request {self.seq} ({self.session}): lease "
                f"{self.lease.token} expired before the result was claimed",
                session=self.session,
                token=self.lease.token,
            )
        self.claimed = True
        return self.output


class _PendingSubmit:
    """Follower-side submission awaiting the leader's verdict."""

    def __init__(self, inputs):
        self.inputs = inputs
        self.event = threading.Event()
        self.request = None
        self.reject = None  # (reason, inflight, limit)


def _compile_ops(graph) -> list:
    """Flatten the traced graph into executable online ops.

    Returns ``(kind, plan_layer_index, weight_index)`` tuples where the
    plan layer index is the LAST plan layer whose correlations the op
    draws (the ``wait_layer`` gate).  Linear+Rescale pairs fuse into the
    single-allocation-round ``matmul_rescale_via_service`` verb, exactly
    like the hand-written example serving loops.
    """
    ops = []
    trace = graph.trace
    i = 0
    wi = 0
    while i < len(trace):
        layer = trace[i][0]
        if isinstance(layer, Linear):
            fused = i + 1 < len(trace) and isinstance(trace[i + 1][0], Rescale)
            ops.append(("linear_rescale" if fused else "linear", i + fused, wi))
            wi += 1
            i += 1 + fused
        elif isinstance(layer, Activation) and layer.kind == "relu":
            ops.append(("relu", i, None))
            i += 1
        else:
            raise ParameterError(
                f"daemon cannot serve layer {layer.name!r}; supported: "
                "Linear[, Rescale], Activation('relu')"
            )
    return ops


class InferenceDaemon:
    """One party's half of the persistent serving daemon.

    Construct on both parties with the same graph/config and this
    party's weight shares, ``start()`` after the service is running,
    then ``submit``/``result`` per session.  ``stop()`` drains in-flight
    work and restores the service's steady-state watermarks.
    """

    def __init__(self, service, graph, weights, fx=None, cfg: DaemonConfig = None):
        self.service = service
        self.party = service.party
        self.cfg = cfg or DaemonConfig()
        self.graph = graph
        self.fx = fx
        self.plan = plan_graph(
            graph, bits=service.tuning.ring_bits, fx=fx,
            trunc_mode=self.cfg.trunc_mode,
        )
        self._ops = _compile_ops(graph)
        n_linear = sum(op[0] != "relu" for op in self._ops)
        if len(weights) != n_linear:
            raise ParameterError(
                f"model has {n_linear} linear layers, got {len(weights)} "
                "weight shares"
            )
        self.weights = list(weights)
        # Consumer-COT totals of ONE pass through the plan; the draws
        # floor handed to each pipeline advances by batch x this, so an
        # overlapped pipeline never mistakes the previous request's
        # undrained tail draws for its own (see _schedule_loop).
        _, cum_cot, _ = self.plan.layer_schedule()
        self._plan_cot_totals = cum_cot[-1] if cum_cot else {}
        self._ctl = service.mux.sub("daemon/ctl")
        self._pipe_ch = service.mux.sub("daemon/pipe")
        self._session = service.session("daemon")
        self._lock = threading.Lock()
        self._seq = 0
        self._requests: dict = {}  # seq -> DaemonRequest (live)
        self._sess_slots: dict = {}  # session -> Semaphore
        self._pending: dict = {}  # follower: session -> deque[_PendingSubmit]
        self._pending_cond = threading.Condition(self._lock)
        self._prefill_q: deque = deque()
        self._online_q: deque = deque()
        self._q_cond = threading.Condition(self._lock)
        self._draw_floor: dict = {}
        self._saved_marks: dict = {}
        self._closing = False
        self._stopped = threading.Event()
        self._threads: list = []
        # Counters (surfaced via the service metrics registry).
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.expired_leases = 0
        self.attaches = 0
        self.batch_items = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "InferenceDaemon":
        self.plan._validate_service(self.service)
        self.plan._ensure_pools(self.service)
        self._draw_floor = self.service.session_draw_counts()
        for kind in ("cot/fwd", "cot/rev"):
            pool = self.service.pools.get(kind)
            if pool is not None:
                self._saved_marks[kind] = pool.watermarks
        self.service.metrics.add_collector(f"daemon/p{self.party}", self._collect)
        targets = [self._schedule_loop, self._online_loop, self._reaper_loop]
        if self.party != 0:
            targets.append(self._ctl_loop)
        for fn in targets:
            t = threading.Thread(
                target=fn, name=f"daemon-p{self.party}-{fn.__name__}", daemon=True
            )
            t.start()
            self._threads.append(t)
        return self

    def stop(self, timeout: float = None) -> None:
        """Drain in-flight requests, then shut the daemon down.

        The leader announces the shutdown on ``daemon/ctl`` so the
        follower's daemon stops at the same point in the request
        stream; both restore the watermarks saved at start (pipelines
        run with ``restore=False``, so the last request's marks are
        still live).
        """
        timeout = self.cfg.request_timeout_s if timeout is None else timeout
        deadline = time.monotonic() + timeout
        with self._lock:
            live = [r for r in self._requests.values() if not r.done.is_set()]
        for req in live:
            req.done.wait(max(0.0, deadline - time.monotonic()))
        if self.party == 0:
            self._ctl.send_bytes(json.dumps({"op": "stop"}).encode())
            self._stopped.set()
        else:
            # The follower's ctl loop sets the event on the leader's
            # stop announcement; requests admitted before it are
            # already drained above.
            self._stopped.wait(max(0.0, deadline - time.monotonic()))
        with self._q_cond:
            self._closing = True
            self._q_cond.notify_all()
        for t in self._threads:
            t.join(max(0.1, deadline - time.monotonic()))
        for kind, (low, high) in self._saved_marks.items():
            pool = self.service.pools.get(kind)
            if pool is not None:
                pool.set_watermarks(low, high)

    # -- client surface ------------------------------------------------------
    def _normalize_inputs(self, x_share) -> list:
        inputs = x_share if isinstance(x_share, (list, tuple)) else [x_share]
        if not 1 <= len(inputs) <= self.cfg.max_batch:
            raise ParameterError(
                f"batch of {len(inputs)} outside 1..{self.cfg.max_batch}"
            )
        want = tuple(self.graph.input_shape)
        for arr in inputs:
            if tuple(arr.shape) != want:
                raise ParameterError(
                    f"input shape {tuple(arr.shape)} != model input {want}"
                )
        return [np.asarray(a, dtype=np.uint64) for a in inputs]

    def _session_slot(self, session: str) -> threading.Semaphore:
        with self._lock:
            slot = self._sess_slots.get(session)
            if slot is None:
                slot = threading.Semaphore(self.cfg.session_inflight)
                self._sess_slots[session] = slot
            return slot

    def submit(self, session: str, x_share) -> DaemonRequest:
        """Submit one request (input share, or a list of B shares).

        Blocks under per-session backpressure; raises AdmissionReject
        when the daemon-wide window is full.  Both parties must submit
        per-session requests in the same program order -- the same
        contract as every paired session verb.
        """
        if self._closing:
            raise DaemonError("daemon is stopping")
        inputs = self._normalize_inputs(x_share)
        slot = self._session_slot(session)
        if not slot.acquire(timeout=self.cfg.request_timeout_s):
            raise DaemonError(
                f"session {session!r}: backpressure wait exceeded "
                f"{self.cfg.request_timeout_s}s"
            )
        try:
            if self.party == 0:
                return self._submit_leader(session, inputs)
            return self._submit_follower(session, inputs)
        except BaseException:
            slot.release()
            raise

    def _submit_leader(self, session: str, inputs: list) -> DaemonRequest:
        tracer = self.service.tracer
        with self._lock:
            inflight = self.admitted - self.completed - self.failed
            if inflight >= self.cfg.max_inflight:
                self.rejected += 1
                verdict = {
                    "op": "reject",
                    "session": session,
                    "inflight": inflight,
                    "limit": self.cfg.max_inflight,
                }
                self._ctl.send_bytes(json.dumps(verdict).encode())
                if tracer.enabled:
                    tracer.instant(
                        "request.admit", cat="daemon", session=session,
                        verdict="reject", inflight=inflight,
                    )
                raise AdmissionReject(
                    f"session {session!r}: {inflight} requests in flight "
                    f"(limit {self.cfg.max_inflight})",
                    inflight=inflight,
                    limit=self.cfg.max_inflight,
                )
            seq = self._seq
            self._seq += 1
            token = f"lease-{seq}-{os.urandom(4).hex()}"
            self._ctl.send_bytes(
                json.dumps(
                    {
                        "op": "admit",
                        "seq": seq,
                        "session": session,
                        "batch": len(inputs),
                        "token": token,
                    }
                ).encode()
            )
            req = self._admit_locked(seq, session, inputs, token)
        if tracer.enabled:
            tracer.instant(
                "request.admit", cat="daemon", session=session,
                verdict="admit", seq=seq, batch=req.batch,
            )
        return req

    def _submit_follower(self, session: str, inputs: list) -> DaemonRequest:
        pending = _PendingSubmit(inputs)
        with self._lock:
            self._pending.setdefault(session, deque()).append(pending)
            self._pending_cond.notify_all()
        if not pending.event.wait(self.cfg.request_timeout_s):
            raise DaemonError(
                f"session {session!r}: no admission verdict from the leader "
                f"within {self.cfg.request_timeout_s}s"
            )
        if pending.reject is not None:
            inflight, limit = pending.reject
            raise AdmissionReject(
                f"session {session!r}: {inflight} requests in flight "
                f"(limit {limit})",
                inflight=inflight,
                limit=limit,
            )
        return pending.request

    def _admit_locked(self, seq, session, inputs, token) -> DaemonRequest:
        lease = Lease(token, session, self.cfg.lease_ttl_s)
        req = DaemonRequest(seq, session, inputs, lease, self.cfg.request_timeout_s)
        self._requests[seq] = req
        self.admitted += 1
        self.batch_items += req.batch
        self._prefill_q.append(req)
        self._online_q.append(req)
        self._q_cond.notify_all()
        return req

    def attach(self, session: str, token: str) -> DaemonRequest:
        """Re-attach a (re)connected client to its in-flight request by
        lease token, renewing the lease."""
        with self._lock:
            for req in self._requests.values():
                if req.session == session and req.lease.token == token:
                    if req.expired:
                        break
                    req.lease.renew()
                    self.attaches += 1
                    return req
        raise LeaseExpired(
            f"session {session!r}: no live lease {token!r} to attach to",
            session=session,
            token=token,
        )

    def resume_state(self) -> dict:
        """The service's resume-handshake state plus the live lease
        table -- wire this (instead of ``service.resume_state``) as the
        ReconnectingChannel ``state_provider``.  Reporting a lease also
        RENEWS it: the handshake only runs while the transport is
        re-establishing, i.e. exactly when the dropped client is coming
        back and must not lose its in-flight request to the reaper.
        """
        state = self.service.resume_state()
        leases = {}
        with self._lock:
            for req in self._requests.values():
                if req.expired:
                    continue
                req.lease.renew()
                leases[req.session] = {
                    "token": req.lease.token,
                    "seq": req.seq,
                    "expires_in_s": round(req.lease.remaining_s, 3),
                }
        state["leases"] = leases
        return state

    def inflight(self) -> int:
        with self._lock:
            return self.admitted - self.completed - self.failed

    # -- follower control stream ---------------------------------------------
    def _ctl_loop(self) -> None:
        while not self._closing:
            try:
                frame = self._ctl.recv_bytes(timeout=0.25)
            except ChannelTimeout:
                continue
            except Exception as exc:  # noqa: BLE001 - crossing a thread
                if not self._closing:
                    self._fail_all(DaemonError(f"daemon ctl stream died: {exc!r}"))
                return
            msg = json.loads(frame.decode() if isinstance(frame, bytes) else bytes(frame).decode())
            op = msg["op"]
            if op == "stop":
                self._stopped.set()
                return
            pending = self._pop_pending(msg["session"])
            if pending is None:
                self._fail_all(
                    DaemonError(
                        f"no local submission for session {msg['session']!r} "
                        f"verdict within {self.cfg.request_timeout_s}s"
                    )
                )
                return
            if op == "reject":
                with self._lock:
                    self.rejected += 1
                pending.reject = (msg["inflight"], msg["limit"])
                pending.event.set()
                continue
            if len(pending.inputs) != msg["batch"]:
                self._fail_all(
                    DaemonError(
                        f"session {msg['session']!r}: leader admitted batch "
                        f"{msg['batch']}, local submission has "
                        f"{len(pending.inputs)}"
                    )
                )
                return
            with self._lock:
                req = self._admit_locked(
                    msg["seq"], msg["session"], pending.inputs, msg["token"]
                )
            if self.service.tracer.enabled:
                self.service.tracer.instant(
                    "request.admit", cat="daemon", session=msg["session"],
                    verdict="admit", seq=msg["seq"], batch=req.batch,
                )
            pending.request = req
            pending.event.set()

    def _pop_pending(self, session: str):
        deadline = time.monotonic() + self.cfg.request_timeout_s
        with self._pending_cond:
            while True:
                q = self._pending.get(session)
                if q:
                    return q.popleft()
                if self._closing or time.monotonic() > deadline:
                    return None
                self._pending_cond.wait(0.1)

    # -- worker threads ------------------------------------------------------
    def _next(self, q: deque):
        with self._q_cond:
            while True:
                if q:
                    return q.popleft()
                if self._closing:
                    return None
                self._q_cond.wait(0.1)

    def _schedule_loop(self) -> None:
        """Chain one batch-scaled pipeline per request, in admission
        order.  Request r+1's pipeline starts the moment r's PRODUCTION
        is done -- r's online tail still draining -- which is the whole
        cross-request overlap."""
        while True:
            req = self._next(self._prefill_q)
            if req is None:
                return
            try:
                req.pipe = self.plan.prefill_pipelined(
                    self.service,
                    timeout=self.cfg.request_timeout_s,
                    batch=req.batch,
                    channel=self._pipe_ch,
                    draws_baseline=dict(self._draw_floor),
                )
                for kind, count in self._plan_cot_totals.items():
                    self._draw_floor[kind] = (
                        self._draw_floor.get(kind, 0) + count * req.batch
                    )
                req._pipe_ready.set()
                req.pipe.wait_all(self.cfg.request_timeout_s)
            except BaseException as exc:  # noqa: BLE001 - crossing a thread
                self._finish_request(req, error=exc)
                req._pipe_ready.set()
                if not self._closing:
                    continue
                return

    def _online_loop(self) -> None:
        """Execute admitted requests' online phases, FIFO."""
        while True:
            req = self._next(self._online_q)
            if req is None:
                return
            if not req._pipe_ready.wait(self.cfg.request_timeout_s):
                self._finish_request(
                    req, error=DaemonError(f"request {req.seq}: pipeline never started")
                )
                continue
            if req.error is not None or req.pipe is None:
                continue  # scheduler already failed it
            tracer = self.service.tracer
            t0 = time.monotonic()
            try:
                with tracer.span(
                    "request.online", cat="daemon",
                    seq=req.seq, session=req.session, batch=req.batch,
                ):
                    req.output = self._run_online(req)
                req.online_s = time.monotonic() - t0
                self._finish_request(req)
            except BaseException as exc:  # noqa: BLE001 - crossing a thread
                self._finish_request(req, error=exc)

    def _run_online(self, req: DaemonRequest) -> list:
        """One request's MPC online phase: per-layer lockstep draws,
        gated on the request's own pipeline."""
        bits = self.service.tuning.ring_bits
        rng = np.random.default_rng(
            self.cfg.online_seed + 1000003 * req.seq + self.party
        )
        sess = self._session
        acts = list(req.inputs)
        first = True
        for kind, gate, wi in self._ops:
            t0 = time.monotonic()
            req.pipe.wait_layer(gate, self.cfg.request_timeout_s)
            if first:
                req.first_wait_s = time.monotonic() - t0
                first = False
            if kind == "linear_rescale":
                w = self.weights[wi]
                acts = [
                    matmul_rescale_via_service(
                        sess, a, w, self.fx, mode=self.cfg.trunc_mode, rng=rng
                    )
                    for a in acts
                ]
            elif kind == "linear":
                w = self.weights[wi]
                acts = [matmul_via_service(sess, a, w) for a in acts]
            else:  # relu, fused across the batch: linear demand, 1 round
                shape = acts[0].shape
                flat = np.concatenate([a.reshape(-1) for a in acts])
                r, _ = relu_via_service(sess, ArithmeticShares(flat, bits), rng)
                vals = r.values.astype(np.uint64)
                n = int(np.prod(shape))
                acts = [
                    vals[b * n:(b + 1) * n].reshape(shape)
                    for b in range(req.batch)
                ]
        return acts

    def _finish_request(self, req: DaemonRequest, error=None) -> None:
        if req.done.is_set():
            return
        req.error = error
        if req.pipe is not None and error is None:
            # The producer thread already finished (wait_all gated the
            # next pipeline on it); restore=False leaves the watermarks
            # to the NEXT request's pipeline -- stop() restores the
            # daemon-start marks once.
            req.pipe.finish(self.cfg.request_timeout_s, restore=False)
        with self._lock:
            if error is None:
                self.completed += 1
            else:
                self.failed += 1
        slot = self._session_slot(req.session)
        slot.release()
        req.done.set()

    def _fail_all(self, exc: Exception) -> None:
        with self._lock:
            live = [r for r in self._requests.values() if not r.done.is_set()]
            pendings = [p for q in self._pending.values() for p in q]
            self._pending.clear()
        for req in live:
            self._finish_request(req, error=exc)
        for p in pendings:
            p.reject = (0, 0)
            p.event.set()

    def _reaper_loop(self) -> None:
        """Drop unclaimed results whose lease lapsed (``lease.expire``)."""
        tick = max(0.05, min(1.0, self.cfg.lease_ttl_s / 4))
        while not self._stopped.wait(tick):
            if self._closing:
                return
            with self._lock:
                stale = [
                    r
                    for r in self._requests.values()
                    if r.done.is_set()
                    and not r.claimed
                    and not r.expired
                    and r.lease.expired
                ]
            for req in stale:
                req.expired = True
                req.output = None
                with self._lock:
                    self.expired_leases += 1
                    self._requests.pop(req.seq, None)
                if self.service.tracer.enabled:
                    self.service.tracer.instant(
                        "lease.expire", cat="daemon",
                        seq=req.seq, session=req.session, token=req.lease.token,
                    )

    # -- observability -------------------------------------------------------
    def _collect(self) -> dict:
        with self._lock:
            return {
                "admitted": self.admitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "inflight": self.admitted - self.completed - self.failed,
                "expired_leases": self.expired_leases,
                "attaches": self.attaches,
                "batch_items": self.batch_items,
            }
