"""Process-sharded raw-COT production: escape the GIL.

One :class:`~repro.runtime.service.CorrelationService` worker thread
interleaves every interactive protocol, so COT production is bounded
by a single interpreter no matter how many cores the host has.  This
module shards the *raw* COT streams (``cot/fwd``, ``cot/rev``) across
``ServiceTuning.shards`` producer **process pairs**: shard i of party
0 speaks to shard i of party 1 over its own socket, runs its own base
OT setup, and turns Ferret extends around independently of every other
shard -- true multi-core scaling, since each worker is a separate
interpreter.  Derived production (bit/ring/matrix triples, truncation
pairs, ROTs) stays in the parent service worker and consumes the
merged pools exactly as before.

Correlation survives sharding because offsets are assigned by ONE
authority: the party-0 leader.  Shards return finished extend batches
to their parent over a result queue; the leader's merger appends each
batch at its pool's produced frontier (arrival order) and announces
``(seq, direction, lo, n)`` to the follower *in-band* on the
``shard/ctl`` mux sub-channel -- the same way :class:`MuxChannel`
multiplexes tags, so no new wire assumptions are introduced.  The
follower merger pairs each announcement with its local copy of that
batch (shard i's sequence of extends is identical on both parties, so
seq identifies the batch) and lands it with
:meth:`CorrelationPool.append_columns_at`, which parks out-of-arrival
segments until the gap below them fills.  Both parties therefore
materialize the *same* absolute-index stream under any interleaving
of shard completions.

Delta consistency: every sender-side shard endpoint overwrites its
locally derived Delta with the parent sender's Delta before setup, so
all shards of one direction produce correlations against the single
pool Delta.

Shard workers enable ``FerretConfig.overlap_encode``: inside each
extend the LPN premix (``A @ state``) runs under the interactive MPCOT
(the PR 1 leftover), which is bit-identical by XOR associativity.

Limits: sharded services assume a healthy transport -- the degraded-
mode resync barrier cannot roll back raw-COT pools (there is no
single-endpoint snapshot to restore), so chaos hardening applies to
the unsharded path only.  ``shards=1`` never constructs any of this
machinery: the service is byte-identical to the single-worker stream.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import queue
import struct
import threading
import time

from repro.errors import ServiceError
from repro.ferret.protocol import FerretReceiver, FerretSender
from repro.ot.channel import ChannelClosed, ChannelError, ChannelTimeout, SocketChannel
from repro.ot.cot import CotSenderBatch

#: In-band shard control frames on the ``shard/ctl`` sub-channel
#: (leader -> follower only).  SCMD dispatches extend ``seq`` to shard
#: ``shard``; SOFF announces the merged pool offset of ``seq``'s batch.
OP_SHARD_CMD = b"SCMD"
OP_SHARD_OFF = b"SOFF"
_SHARD_CMD = struct.Struct("<4sQQQ")  # op, seq, shard, direction
_SHARD_OFF = struct.Struct("<4sQQQQ")  # op, seq, direction, lo, n

_DIR_CODE = {"fwd": 0, "rev": 1}
_DIR_NAME = {0: "fwd", 1: "rev"}

#: Rendezvous budget for the per-shard socket handshake and base OTs.
_SETUP_TIMEOUT_S = 120.0


def _shard_seed(seed: int, shard: int) -> int:
    """Base seed for shard ``shard``'s Ferret endpoints (the four
    per-role offsets mirror :func:`repro.ferret.protocol.ferret_pair`)."""
    return seed + 0x51AD + ((shard + 1) << 4)


def _worker_main(
    party: int,
    shard: int,
    config,
    seed: int,
    sender_delta,
    enable_reverse: bool,
    cmd_q,
    res_q,
) -> None:
    """Entry point of one shard worker process (spawn-safe: module level,
    all arguments picklable).

    Party 0 listens on an ephemeral port and reports it to its parent
    (who forwards it in-band to the peer parent); party 1 waits for a
    ``("connect", host, port)`` command.  After base-OT setup the loop
    serves ``("ext", seq, direction)`` commands until ``("stop",)``.
    """
    channel = None
    try:
        if party == 0:
            listener = SocketChannel.listen("127.0.0.1", 0)
            res_q.put(("port", shard, listener.port))
            channel = listener.accept(accept_timeout=_SETUP_TIMEOUT_S)
        else:
            msg = cmd_q.get(timeout=_SETUP_TIMEOUT_S)
            if msg[0] != "connect":
                raise ServiceError(f"shard {shard}: expected connect, got {msg[0]!r}")
            channel = SocketChannel.connect(
                msg[1], msg[2], connect_timeout=_SETUP_TIMEOUT_S
            )
        # Overlap GGM expansion / MPCOT rounds with the LPN premix
        # inside every extend (bit-identical; see FerretConfig).
        cfg = dataclasses.replace(config, overlap_encode=True)
        base = _shard_seed(seed, shard)
        if party == 0:
            fwd = FerretSender(cfg, seed=base)
            fwd.delta = sender_delta.copy()
            rev = FerretReceiver(cfg, seed=base + 2) if enable_reverse else None
        else:
            fwd = FerretReceiver(cfg, seed=base + 1)
            rev = FerretSender(cfg, seed=base + 3) if enable_reverse else None
            if rev is not None:
                rev.delta = sender_delta.copy()
        t0 = time.monotonic()
        fwd.setup(channel)
        if rev is not None:
            rev.setup(channel)
        res_q.put(("ready", shard, time.monotonic() - t0))
        endpoints = {"fwd": fwd, "rev": rev}
        while True:
            msg = cmd_q.get()
            if msg[0] == "stop":
                break
            _, seq, direction = msg
            endpoint = endpoints[direction]
            if endpoint is None:
                raise ServiceError(f"shard {shard}: direction {direction} disabled")
            t0 = time.monotonic()
            batch = endpoint.extend(channel)
            elapsed = time.monotonic() - t0
            if isinstance(batch, CotSenderBatch):
                payload = (batch.z,)
            else:
                payload = (batch.x, batch.y)
            res_q.put(("ext", shard, seq, direction, payload, elapsed))
    except BaseException as exc:  # noqa: BLE001 - crossing a process
        try:
            res_q.put(("error", shard, repr(exc)))
        except Exception:  # noqa: BLE001 - parent may be gone
            pass
    finally:
        if channel is not None:
            try:
                channel.close()
            except Exception:  # noqa: BLE001
                pass


class ShardManager:
    """Owns one party's shard worker processes and the merge thread.

    The leader side dispatches (``request_refills`` is called from the
    scheduling loop in place of OP_EXTEND commands) and merges results
    in arrival order; the follower side replays the leader's dispatch
    stream and merges at announced offsets.  All shard bookkeeping is
    surfaced through :meth:`collect` (the ``shard/...`` telemetry
    namespace) and ``shard.extend`` tracer spans, so a pool stall is
    attributable to the shard that was still busy when it happened.
    """

    def __init__(self, service, shards: int, seed: int):
        if shards < 2:
            raise ServiceError("ShardManager requires shards >= 2")
        self.service = service
        self.shards = shards
        self.seed = seed
        self.party = service.party
        self._hs = service.mux.sub("shard/hs")
        self._ctl = service.mux.sub("shard/ctl")
        self._ctx = multiprocessing.get_context("spawn")
        self._res_q = self._ctx.Queue()
        self._cmd_qs = [self._ctx.Queue() for _ in range(shards)]
        self._procs: list = []
        self._stop = threading.Event()
        self._merge_thread = None
        self.error = None
        self._next_seq = 0
        #: Leader: shard -> (seq, direction, dispatch tracer-ts) or None.
        self._busy = [None] * shards
        #: Leader: nominal in-flight items per direction (dispatched,
        #: not yet merged) so refill decisions don't over-dispatch.
        self._inflight = {"fwd": 0, "rev": 0}
        #: Follower: seq -> (shard, direction) for dispatched commands;
        #: announced offsets and local results waiting for each other.
        self._expected: dict = {}
        self._announced: dict = {}
        self._results: dict = {}
        self.stats = [
            {"extends": 0, "items": 0, "busy_s": 0.0, "last_s": 0.0, "setup_s": 0.0}
            for _ in range(shards)
        ]

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Spawn workers, run the port handshake in-band, wait for every
        shard's base-OT setup, then start the merge thread."""
        service = self.service
        sender_delta = (
            service.ferret_fwd.delta if self.party == 0
            else service.ferret_rev.delta if service.ferret_rev is not None
            else None
        )
        enable_reverse = service.tuning.enable_reverse
        for i in range(self.shards):
            proc = self._ctx.Process(
                target=_worker_main,
                args=(
                    self.party, i, service.config, self.seed,
                    sender_delta, enable_reverse,
                    self._cmd_qs[i], self._res_q,
                ),
                name=f"corr-shard-p{self.party}-{i}",
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
        if self.party == 0:
            ports = [None] * self.shards
            for _ in range(self.shards):
                msg = self._get_result(_SETUP_TIMEOUT_S)
                if msg[0] != "port":
                    raise ServiceError(f"shard handshake: unexpected {msg[0]!r}")
                ports[msg[1]] = msg[2]
            self._hs.send_bytes(struct.pack(f"<{self.shards}Q", *ports))
        else:
            frame = self._hs.recv_bytes(timeout=_SETUP_TIMEOUT_S)
            ports = struct.unpack(f"<{self.shards}Q", frame)
            for i, port in enumerate(ports):
                self._cmd_qs[i].put(("connect", "127.0.0.1", port))
        for _ in range(self.shards):
            msg = self._get_result(_SETUP_TIMEOUT_S)
            if msg[0] != "ready":
                raise ServiceError(f"shard setup: unexpected {msg[0]!r}")
            self.stats[msg[1]]["setup_s"] = msg[2]
        loop = self._leader_merge_loop if self.party == 0 else self._follower_merge_loop
        self._merge_thread = threading.Thread(
            target=self._merge_guard, args=(loop,),
            name=f"corr-shard-merge-p{self.party}", daemon=True,
        )
        self._merge_thread.start()

    def _get_result(self, timeout: float):
        """One result-queue message, turning worker errors fatal."""
        try:
            msg = self._res_q.get(timeout=timeout)
        except queue.Empty as exc:
            raise ServiceError("shard worker did not respond in time") from exc
        if msg[0] == "error":
            raise ServiceError(f"shard {msg[1]} failed: {msg[2]}")
        return msg

    def stop(self, timeout: float = 10.0) -> None:
        """Drain in-flight extends, stop workers, join the merge thread."""
        deadline = time.monotonic() + timeout
        if self.party == 0:
            while (
                any(self._busy) and self.error is None
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
        else:
            while (
                any(seq not in self._results for seq in list(self._expected))
                and self.error is None and time.monotonic() < deadline
            ):
                time.sleep(0.01)
        self._stop.set()
        for cq in self._cmd_qs:
            try:
                cq.put(("stop",))
            except Exception:  # noqa: BLE001 - queue may be broken
                pass
        if self._merge_thread is not None:
            self._merge_thread.join(5.0)
        for proc in self._procs:
            proc.join(max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(5.0)
        self._res_q.cancel_join_thread()
        for cq in self._cmd_qs:
            cq.cancel_join_thread()

    def _fail(self, exc: Exception) -> None:
        """A shard or merge failure poisons the whole service: record it
        and close every pool so blocked consumers surface the error."""
        if self.error is None:
            self.error = exc
        for pool in self.service.pools.values():
            pool.close()

    def check_failed(self) -> None:
        if self.error is not None:
            raise ServiceError(f"shard production failed: {self.error}") from self.error

    # -- leader: dispatch ----------------------------------------------------
    def request_refills(self) -> None:
        """Dispatch extends to idle shards for every direction whose
        pool is below target net of what is already in flight.  Called
        from the leader's scheduling loop in place of OP_EXTEND."""
        self.check_failed()
        pools = self.service.pools
        self._dispatch_deficit("fwd", pools["cot/fwd"])
        if self.service.tuning.enable_reverse:
            self._dispatch_deficit("rev", pools["cot/rev"])

    def request_extend(self, direction: str) -> None:
        """Derived production starved on raw COTs: make sure at least
        one extend is in flight for ``direction``."""
        self.check_failed()
        if self._inflight[direction] > 0:
            return
        shard = self._idle_shard()
        if shard is not None:
            self._dispatch(shard, direction)

    def _dispatch_deficit(self, direction: str, pool) -> None:
        deficit = pool.deficit - self._inflight[direction]
        per_extend = self.service.config.net_output
        while deficit > 0:
            shard = self._idle_shard()
            if shard is None:
                return
            self._dispatch(shard, direction)
            deficit -= per_extend
        # A refill is also warranted when below the low watermark even
        # if the high-watermark deficit is already covered in flight.
        if pool.needs_refill() and self._inflight[direction] == 0:
            shard = self._idle_shard()
            if shard is not None:
                self._dispatch(shard, direction)

    def _idle_shard(self):
        for i in range(self.shards):
            if self._busy[i] is None:
                return i
        return None

    def _dispatch(self, shard: int, direction: str) -> None:
        seq = self._next_seq
        self._next_seq += 1
        # The SCMD frame goes out BEFORE the local command so the
        # follower's replay order per shard always matches ours.
        self._ctl.send_bytes(
            _SHARD_CMD.pack(OP_SHARD_CMD, seq, shard, _DIR_CODE[direction])
        )
        self._cmd_qs[shard].put(("ext", seq, direction))
        self._busy[shard] = (seq, direction, self.service.tracer.now())
        self._inflight[direction] += self.service.config.net_output

    # -- merge loops ---------------------------------------------------------
    def _merge_guard(self, loop) -> None:
        try:
            loop()
        except BaseException as exc:  # noqa: BLE001 - crossing a thread
            self._fail(exc)

    def _leader_merge_loop(self) -> None:
        """Append shard batches in arrival order; announce offsets."""
        service = self.service
        while not self._stop.is_set():
            try:
                msg = self._res_q.get(timeout=0.1)
            except queue.Empty:
                continue
            if msg[0] == "error":
                self._fail(ServiceError(f"shard {msg[1]} failed: {msg[2]}"))
                return
            if msg[0] != "ext":
                continue
            _, shard, seq, direction, payload, elapsed = msg
            pool = service.pools[f"cot/{direction}"]
            lo = pool.produced
            n = payload[0].shape[0]
            try:
                pool.append_columns_at(lo, payload)
            except ServiceError:
                if self._stop.is_set():
                    return  # pool closed during shutdown: benign
                raise
            self._ctl.send_bytes(
                _SHARD_OFF.pack(OP_SHARD_OFF, seq, _DIR_CODE[direction], lo, n)
            )
            self._record(shard, direction, n, elapsed)
            busy = self._busy[shard]
            if busy is not None and service.tracer.enabled:
                service.tracer.complete(
                    "shard.extend", busy[2], service.tracer.now(), cat="shard",
                    shard=shard, direction=direction, n=n, lo=lo,
                )
            self._busy[shard] = None
            self._inflight[direction] -= service.config.net_output
            service.extends[direction] += 1
            service._wake.set()

    def _follower_merge_loop(self) -> None:
        """Replay leader dispatches; land batches at announced offsets."""
        service = self.service
        while not self._stop.is_set():
            try:
                frame = self._ctl.recv_bytes(timeout=0.05)
            except ChannelTimeout:
                frame = None
            except (ChannelClosed, ChannelError):
                if self._stop.is_set():
                    return
                raise
            if frame is not None:
                op = bytes(frame[:4])
                if op == OP_SHARD_CMD:
                    _, seq, shard, code = _SHARD_CMD.unpack(frame)
                    direction = _DIR_NAME[code]
                    self._expected[seq] = (shard, direction)
                    self._cmd_qs[shard].put(("ext", seq, direction))
                elif op == OP_SHARD_OFF:
                    _, seq, code, lo, n = _SHARD_OFF.unpack(frame)
                    self._announced[seq] = (_DIR_NAME[code], lo, n)
            while True:  # drain local results without blocking
                try:
                    msg = self._res_q.get_nowait()
                except queue.Empty:
                    break
                if msg[0] == "error":
                    self._fail(ServiceError(f"shard {msg[1]} failed: {msg[2]}"))
                    return
                if msg[0] == "ext":
                    _, shard, seq, direction, payload, elapsed = msg
                    self._results[seq] = (shard, direction, payload, elapsed)
            self._merge_ready()

    def _merge_ready(self) -> None:
        """Land every (announcement, local result) pair that is complete."""
        service = self.service
        for seq in [s for s in self._announced if s in self._results]:
            direction, lo, n = self._announced.pop(seq)
            shard, local_dir, payload, elapsed = self._results.pop(seq)
            self._expected.pop(seq, None)
            if local_dir != direction or payload[0].shape[0] != n:
                raise ServiceError(
                    f"shard merge mismatch at seq {seq}: announced "
                    f"({direction}, n={n}), local ({local_dir}, "
                    f"n={payload[0].shape[0]})"
                )
            pool = service.pools[f"cot/{direction}"]
            t0 = service.tracer.now()
            try:
                pool.append_columns_at(lo, payload)
            except ServiceError:
                if self._stop.is_set():
                    return  # pool closed during shutdown: benign
                raise
            self._record(shard, direction, n, elapsed)
            if service.tracer.enabled:
                service.tracer.complete(
                    "shard.merge", t0, service.tracer.now(), cat="shard",
                    shard=shard, direction=direction, n=n, lo=lo,
                )
            service.extends[direction] += 1

    def _record(self, shard: int, direction: str, n: int, elapsed: float) -> None:
        s = self.stats[shard]
        s["extends"] += 1
        s["items"] += n
        s["busy_s"] += elapsed
        s["last_s"] = elapsed

    # -- telemetry -----------------------------------------------------------
    def collect(self) -> dict:
        """The ``shard/...`` telemetry namespace: per-shard counters plus
        in-flight accounting, so a ``pool/stall_ms`` observation can be
        attributed to whichever shard was still busy."""
        out = {"shards": self.shards}
        for i, s in enumerate(self.stats):
            for key, value in s.items():
                out[f"{i}/{key}"] = value
            if self.party == 0:
                out[f"{i}/busy"] = int(self._busy[i] is not None)
        if self.party == 0:
            out["inflight/fwd"] = self._inflight["fwd"]
            out["inflight/rev"] = self._inflight["rev"]
        else:
            out["pending_merge"] = len(self._announced) + len(self._results)
        return out
