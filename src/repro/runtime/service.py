"""The background correlation provisioning service.

One :class:`CorrelationService` runs per party.  It owns up to two
Ferret endpoints -- the *forward* direction (party 0 is the COT sender)
and the *reverse* direction (party 1 is the sender), because every
role-switching workload (bit triples, the ReLU multiplexer) needs OTs
both ways -- and a worker thread that keeps typed pools above their
low watermarks by running ``extend()`` and derived production while
consumers draw.  This is the Figure 1(b) amortization realized as a
long-lived runtime: the ~seconds base-OT Init runs once per direction,
then extends stream correlations to any number of sessions.

**Determinism.**  A correlation only works if both parties consume the
same one, so all allocation decisions are made on party 0 (the
*leader*) and propagated in-band:

* consumer draws: party 0 reserves the absolute range in the pool and
  sends the offset to its peer session over the session sub-channel;
* production (extends, triple generation, random-OT conversion): the
  leader's worker sends a command frame on the ``prov/ctl`` sub-channel
  naming the operation and the exact input ranges; the follower's
  worker replays commands in order.

Thread interleaving on either host therefore cannot desynchronize the
two parties: the command stream and the per-session offset streams are
the only sources of truth.

**Liveness.**  The leader only schedules triple/ROT production over
ranges that are already produced (``try_reserve_produced``), so the
worker never blocks waiting on an extend that the worker itself would
have to run.  Consumer draws may over-reserve freely; the resulting
negative pool level is exactly the demand signal the leader tops up.
"""

from __future__ import annotations

import json
import struct
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    ChannelClosed,
    ChannelError,
    ChannelTimeout,
    ServiceDegraded,
    ServiceError,
)
from repro.ferret.config import FerretConfig
from repro.ferret.protocol import FerretReceiver, FerretSender
from repro.mpc.matmul import MatmulDims, generate_matrix_triples
from repro.mpc.triples import generate_bit_triples, generate_ring_triples
from repro.mpc.truncation import generate_trunc_pairs
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.ot.cot import CotPool
from repro.ot.retry import RetryingChannel, RetryPolicy
from repro.ot.ot_from_cot import (
    cot_to_random_ot_receiver,
    cot_to_random_ot_sender,
    ot_receive_from_cot,
    ot_send_from_cot,
)
from repro.runtime.mux import MuxChannel
from repro.runtime.shard import ShardManager
from repro.runtime.pool import (
    MatrixTriplePool,
    ReceiverCotPool,
    RingTriplePool,
    RotReceiverPool,
    RotSenderPool,
    SenderCotPool,
    TriplePool,
    TruncPairPool,
)

#: Control frame: 4-byte opcode + three u64 arguments (count, range
#: offsets); meaning of the offsets depends on the opcode.
_CTL = struct.Struct("<4sQQQ")

#: Matrix-triple frame: opcode + (m, k, n, direction, cot offset).
_CTL_MTRI = struct.Struct("<4sQQQQQ")

#: Truncation-pair frame: opcode + (count, frac, cot offset, tri offset).
_CTL_TPRC = struct.Struct("<4sQQQQ")

OP_EXTEND_FWD = b"EXT0"
OP_EXTEND_REV = b"EXT1"
OP_TRIPLES = b"TRI\x00"
OP_RING_TRIPLES = b"RTRI"
OP_MATRIX_TRIPLE = b"MTRI"
OP_TRUNC_PAIRS = b"TPRC"
OP_ROT_FWD = b"ROT0"
OP_ROT_REV = b"ROT1"
OP_STOP = b"STOP"
#: Resync frames (variable length: opcode + JSON payload).  SYNC is the
#: leader's recovery barrier, SACK the follower's reply, NACK the
#: follower's prompt "my command execution failed" signal.
OP_SYNC = b"SYNC"
OP_SYNC_ACK = b"SACK"
OP_NACK = b"NACK"

#: Transient transport faults the worker survives by degrading (and
#: later resyncing) instead of dying.
_TRANSIENT = (ChannelClosed, ChannelTimeout)


class _StopRequested(Exception):
    """Internal: a liveness probe noticed the stop flag mid-wait."""


@dataclass
class ServiceTuning:
    """Watermarks and batch sizes for the provisioning worker.

    ``None`` watermarks are derived from the Ferret config at service
    construction (keep about one extend's output in flight).
    ``ring_bits`` fixes the ring Z_2^bits of every arithmetic (ring and
    matrix) triple the service produces -- both parties must agree, and
    preprocessing plans must be computed at the same width.
    ``enable_ring_triples=None`` follows ``enable_reverse`` (ring
    triples, like bit triples, need OTs both ways).
    ``tprc_batch_chunks`` caps how many ``tprc_chunk``-sized batches
    one TPRC command may fuse when stock allows: pair generation pays
    its millionaires'/B2A message rounds once per command, so fusing
    chunks amortizes the per-chunk opening rounds of deep deficits.
    ``shards`` moves raw-COT production into that many producer
    *process pairs* (see :mod:`repro.runtime.shard`); 1 keeps today's
    in-thread extends byte-identically.  Derived ``None`` COT
    watermarks scale with the shard count so every shard can keep one
    extend's output in flight.
    """

    cot_low: int = None
    cot_high: int = None
    shards: int = 1
    triple_low: int = 128
    triple_high: int = 1024
    triple_chunk: int = 1024
    ring_bits: int = 32
    rtri_low: int = 0
    rtri_high: int = 0
    rtri_chunk: int = 256
    tprc_chunk: int = 64
    tprc_batch_chunks: int = 8
    rot_low: int = 0
    rot_high: int = 512
    rot_chunk: int = 512
    enable_reverse: bool = True
    enable_triples: bool = True
    enable_ring_triples: bool = None
    enable_rots: bool = True
    poll_interval_s: float = 0.02
    take_timeout_s: float = 300.0
    #: Retry/backoff bounds for the worker's blocking receives (sliced
    #: waits that re-check liveness) and, when the transport stack
    #: includes a ReconnectingChannel, its redial loop.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: How often a degraded worker attempts a resync barrier.
    degraded_retry_s: float = 0.5
    #: How many times a worker whose loop died on a transient transport
    #: fault is restarted before the error becomes fatal.
    max_worker_restarts: int = 1


class CorrelationService:
    """Pooled Ferret provisioning for one party.

    Args:
        party: 0 (leader / allocation authority) or 1 (follower).
        mux: this party's :class:`MuxChannel` endpoint; the service
            claims the ``prov/*`` sub-channels and hands sessions
            ``sess/<name>`` sub-channels.
        config: the Ferret configuration (shared by both directions).
        tuning: watermarks / batch sizes; both parties should pass
            equal ``enable_*`` flags.
        seed: base seed for the Ferret endpoints; both parties must
            pass the same value (they derive distinct per-role seeds
            from it, mirroring :func:`repro.ferret.protocol.ferret_pair`).
    """

    def __init__(
        self,
        party: int,
        mux: MuxChannel,
        config: FerretConfig,
        tuning: ServiceTuning = None,
        seed: int = 0x10C,
    ):
        if party not in (0, 1):
            raise ServiceError("party must be 0 or 1")
        self.party = party
        self.mux = mux
        self.config = config
        self.tuning = tuning or ServiceTuning()
        self._ctl = mux.sub("prov/ctl")
        # Provisioning data channels wait in policy-sized slices with a
        # liveness probe between slices, so a worker blocked mid-protocol
        # notices a stop request or a dead pump in ~attempt_timeout_s
        # instead of after the full (mux-default) receive timeout.
        retry = self.tuning.retry

        def _wrap(tag: str) -> RetryingChannel:
            return RetryingChannel(
                mux.sub(tag), retry,
                probe=self._worker_probe, default_timeout=mux.timeout,
            )

        self._ch_fwd = _wrap("prov/fwd")
        self._ch_rev = _wrap("prov/rev")
        self._ch_tri = _wrap("prov/tri")
        self._ch_rtri = _wrap("prov/rtri")
        self._ch_mtri = _wrap("prov/mtri")
        self._ch_tprc = _wrap("prov/tprc")
        self._data_channels = (
            self._ch_fwd, self._ch_rev, self._ch_tri,
            self._ch_rtri, self._ch_mtri, self._ch_tprc,
        )
        self._rng = np.random.default_rng(seed + 0x7000 + party)

        # Ferret endpoints: forward = party 0 sends, reverse = party 1.
        if party == 0:
            self.ferret_fwd = FerretSender(config, seed=seed)
            self.ferret_rev = (
                FerretReceiver(config, seed=seed + 2)
                if self.tuning.enable_reverse
                else None
            )
        else:
            self.ferret_fwd = FerretReceiver(config, seed=seed + 1)
            self.ferret_rev = (
                FerretSender(config, seed=seed + 3)
                if self.tuning.enable_reverse
                else None
            )

        t = self.tuning
        if t.shards < 1:
            raise ServiceError("shards must be >= 1")
        # Shard-aware defaults: with N producer shards, keep N extends'
        # worth of output in flight so no shard idles against a full pool.
        cot_low = (
            t.cot_low if t.cot_low is not None
            else max(1, config.net_output * t.shards // 4)
        )
        cot_high = t.cot_high if t.cot_high is not None else config.net_output * t.shards
        self.pools: dict = {}
        if party == 0:
            self.pools["cot/fwd"] = SenderCotPool(
                "cot/fwd", self.ferret_fwd.delta,
                low_watermark=cot_low, high_watermark=cot_high,
            )
            if t.enable_reverse:
                self.pools["cot/rev"] = ReceiverCotPool(
                    "cot/rev", low_watermark=cot_low, high_watermark=cot_high
                )
        else:
            self.pools["cot/fwd"] = ReceiverCotPool(
                "cot/fwd", low_watermark=cot_low, high_watermark=cot_high
            )
            if t.enable_reverse:
                self.pools["cot/rev"] = SenderCotPool(
                    "cot/rev", self.ferret_rev.delta,
                    low_watermark=cot_low, high_watermark=cot_high,
                )
        if t.enable_triples:
            if not t.enable_reverse:
                raise ServiceError("triple production needs the reverse direction")
            self.pools["tri"] = TriplePool(
                "tri", low_watermark=t.triple_low, high_watermark=t.triple_high
            )
        self._enable_rtri = (
            t.enable_ring_triples
            if t.enable_ring_triples is not None
            else t.enable_reverse
        )
        if self._enable_rtri:
            if not t.enable_reverse:
                raise ServiceError("ring-triple production needs the reverse direction")
            self.pools["rtri"] = RingTriplePool(
                "rtri", t.ring_bits,
                low_watermark=t.rtri_low, high_watermark=t.rtri_high,
            )
        if t.enable_rots:
            fwd_rot = RotSenderPool if party == 0 else RotReceiverPool
            self.pools["rot/fwd"] = fwd_rot(
                "rot/fwd", low_watermark=t.rot_low, high_watermark=t.rot_high
            )
            if t.enable_reverse:
                rev_rot = RotReceiverPool if party == 0 else RotSenderPool
                self.pools["rot/rev"] = rev_rot(
                    "rot/rev", low_watermark=t.rot_low, high_watermark=t.rot_high
                )

        # One wake event shared by every pool: any demand pulse (a
        # reserve dipping below the low watermark, a blocked take)
        # nudges the leader's scheduling loop.
        self._wake = threading.Event()

        # Flight recorder: one registry unifying every stats surface
        # (pools, mux tags, ferret extends, retry/degraded/reconnect
        # accounting, session draws) behind :meth:`telemetry`, plus a
        # tracer (no-op until :meth:`set_tracer`) for the timeline.
        self.tracer = NULL_TRACER
        self.metrics = MetricsRegistry()
        self._stall_hist = self.metrics.histogram("pool/stall_ms")
        self.metrics.add_collector("pool", self._collect_pools)
        self.metrics.add_collector("mux", self._collect_mux)
        self.metrics.add_collector("ferret", self._collect_ferret)
        self.metrics.add_collector("service", self._collect_service)
        self.metrics.add_collector("reconnect", self._collect_reconnect)
        self.metrics.add_collector("draws", self.session_draw_counts)

        # Process-sharded raw-COT production (repro.runtime.shard):
        # shards=1 constructs none of the machinery, keeping the
        # single-worker stream byte-identical.
        self._shard_mgr = None
        if t.shards > 1:
            self._shard_mgr = ShardManager(self, t.shards, seed=seed)
            self.metrics.add_collector("shard", self._shard_mgr.collect)

        for pool in self.pools.values():
            pool.refill = self._wake
            pool.failure_probe = self._pool_probe
            pool.stall_observer = self._observe_stall

        self._alloc_lock = threading.Lock()
        #: Leader-side per-kind totals of consumer (session) draws --
        #: what the preprocessing planner's demand is validated against.
        self.session_draws: dict = {}
        self._stop = threading.Event()
        self._ready = threading.Event()
        self.error = None
        self.extends = {"fwd": 0, "rev": 0}
        # Degraded-mode + recovery state (tentpole 3).
        self.degraded_since = None  # time.monotonic() at entry, or None
        self.degraded_cause = None
        self.degraded_events = 0
        self.worker_restarts = 0
        self.resyncs = 0  # successful resync barriers
        self.rolled_back = 0  # pool items discarded by resyncs
        self.segments_dropped = 0  # parked shard segments discarded by resyncs
        self._sync_nonce = 0
        self._nack_sent = False
        #: Last completed extend per direction: (endpoint snapshot taken
        #: before the extend, pool produced count before its append).  A
        #: resync that rolls a COT pool back to that count also restores
        #: the endpoint, so the re-run extend starts from matching state.
        self._last_extend = {"fwd": None, "rev": None}
        self._worker = threading.Thread(
            target=self._run, name=f"corr-service-p{party}", daemon=True
        )
        self._started = False

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "CorrelationService":
        self._worker.start()
        self._started = True
        return self

    def wait_ready(self, timeout: float = 120.0) -> None:
        """Block until base-OT setup finished on this side."""
        if not self._ready.wait(timeout):
            self._raise_if_failed()
            raise ServiceError("service setup did not finish in time")
        self._raise_if_failed()

    def stop(self, timeout: float = 30.0) -> None:
        """Shut the worker down.

        The leader (party 0) broadcasts STOP to the peer, so stop the
        leader first (or concurrently).  The follower's stop() waits for
        that STOP to arrive before forcing its loop to exit, so a
        follower stopped "too early" keeps replaying commands instead of
        wedging the leader mid-protocol.
        """
        if self.party == 0:
            self._stop.set()
            self._wake.set()
            if self._started:
                self._worker.join(timeout)
        elif self._started:
            if self.degraded_since is not None or self.mux._pump_dead:
                # The command stream is down: the leader's STOP can
                # never arrive, so skip the grace join and force the
                # loop out now.
                self._stop.set()
                self._worker.join(5.0)
            else:
                # Give the leader's STOP a chance to arrive and drain
                # the command stream cleanly; force the loop only as a
                # fallback.
                self._worker.join(timeout)
                if self._worker.is_alive():
                    self._stop.set()
                    self._worker.join(5.0)
        else:
            self._stop.set()
        self._raise_if_failed()

    def _raise_if_failed(self) -> None:
        if self.error is not None:
            raise ServiceError(f"service worker failed: {self.error!r}") from self.error

    # -- liveness / degraded mode -------------------------------------------
    @property
    def degraded(self) -> bool:
        return self.degraded_since is not None

    def _worker_probe(self) -> None:
        """Between-slice liveness check for the worker's own receives."""
        if self._stop.is_set():
            raise _StopRequested("service stop requested")
        self.mux._check_pump()

    def _pool_probe(self) -> None:
        """Per-tick liveness check for consumers blocked on a pool.

        Only waits for *future* production reach this (already-produced
        takes never wait), so raising here is exactly the ISSUE's
        degraded-mode contract: stock still serves, but backpressure on
        a dead producer surfaces as a typed error with recovery hints
        instead of a hang.
        """
        if self.error is not None:
            raise ServiceError(
                f"service worker failed: {self.error!r}"
            ) from self.error
        if self.degraded_since is not None:
            raise ServiceDegraded(
                f"service is degraded (production down for "
                f"{time.monotonic() - self.degraded_since:.1f}s: "
                f"{self.degraded_cause!r}); this wait needs future production",
                cause=self.degraded_cause,
                since=self.degraded_since,
            )

    def _enter_degraded(self, exc: Exception) -> None:
        if self.degraded_since is None:
            self.degraded_since = time.monotonic()
            self.degraded_cause = exc
            self.degraded_events += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    "degraded.enter", cat="degraded", cause=repr(exc)[:200]
                )

    def _clear_degraded(self) -> None:
        was_degraded = self.degraded_since is not None
        self.degraded_since = None
        self.degraded_cause = None
        self._nack_sent = False
        if was_degraded and self.tracer.enabled:
            self.tracer.instant("degraded.clear", cat="degraded")

    def retry_stats(self) -> dict:
        """Recovery accounting: retried receive slices, degraded spells,
        resync barriers, and (when the transport stack reconnects)
        redial/replay totals from the ReconnectingChannel underneath."""
        out = {
            "stalled_recvs": sum(c.stalled_recvs for c in self._data_channels),
            "retry_slices": sum(c.retry_slices for c in self._data_channels),
            "degraded_events": self.degraded_events,
            "worker_restarts": self.worker_restarts,
            "resyncs": self.resyncs,
            "rolled_back": self.rolled_back,
            "segments_dropped": self.segments_dropped,
        }
        base = getattr(self.mux, "base", None)
        if base is not None and hasattr(base, "reconnect_events"):
            out["reconnects"] = base.reconnects
            out["replayed_frames"] = base.replayed_frames
            out["replayed_bytes"] = base.replayed_bytes
            out["reconnect_events"] = list(base.reconnect_events)
        return out

    # -- flight recorder ------------------------------------------------------
    def _observe_stall(self, pool_name: str, dur_ms: float) -> None:
        self._stall_hist.observe(dur_ms)

    def set_tracer(self, tracer) -> None:
        """Attach a tracer to this party's whole stack: the service, every
        pool (current and future), the mux, the retrying data channels,
        and -- when the transport reconnects -- the ReconnectingChannel
        underneath.  Pass :data:`repro.obs.trace.NULL_TRACER` to detach."""
        self.tracer = tracer
        with self._alloc_lock:
            pools = list(self.pools.values())
        for pool in pools:
            pool.tracer = tracer
        for ch in self._data_channels:
            ch.tracer = tracer
        self.mux.tracer = tracer
        base = getattr(self.mux, "base", None)
        if base is not None and hasattr(base, "reconnect_events"):
            base.tracer = tracer

    def telemetry(self) -> dict:
        """One coherent snapshot of every stats surface, flat-keyed:
        ``pool/<kind>/...``, ``mux/<tag>/...``, ``ferret/<dir>/...``,
        ``service/...``, ``reconnect/...``, ``draws/<kind>`` plus the
        ``pool/stall_ms`` histogram.  Pure read; see
        ``metrics.snapshot_delta()`` for periodic deltas."""
        return self.metrics.snapshot()

    def session_draw_counts(self) -> dict:
        """Consistent snapshot of leader-side per-kind session draws
        (the mutations happen under the same allocation lock)."""
        with self._alloc_lock:
            return dict(self.session_draws)

    def _collect_pools(self) -> dict:
        out = {}
        with self._alloc_lock:
            pools = list(self.pools.items())
        for kind, pool in pools:
            stats = pool.stats.as_dict()
            stats["level"] = pool.level
            stats["produced"] = pool.produced
            stats["deficit"] = pool.deficit
            stats["low_watermark"], stats["high_watermark"] = pool.watermarks
            for key, value in stats.items():
                out[f"{kind}/{key}"] = value
        return out

    def _collect_mux(self) -> dict:
        out = {}
        frames = self.mux.receive_counts()
        for tag, stats in self.mux.stats_by_tag().items():
            for key, value in stats.as_dict().items():
                out[f"{tag}/{key}"] = value
            out[f"{tag}/rx_frames"] = frames.get(tag, 0)
        return out

    def _collect_ferret(self) -> dict:
        out = {}
        for direction in ("fwd", "rev"):
            ep = self._endpoint(direction)
            if ep is None:
                continue
            out[f"{direction}/extends"] = self.extends[direction]
            out[f"{direction}/iterations"] = ep.iterations
            last = ep.last_stats
            if last is not None:
                out[f"{direction}/last_n_output"] = last.n_output
                out[f"{direction}/last_prg_calls"] = last.prg_calls
                out[f"{direction}/last_bytes_sent"] = last.bytes_sent
                out[f"{direction}/last_rounds"] = last.rounds
        return out

    def _collect_service(self) -> dict:
        return {
            "stalled_recvs": sum(c.stalled_recvs for c in self._data_channels),
            "retry_slices": sum(c.retry_slices for c in self._data_channels),
            "degraded": int(self.degraded_since is not None),
            "degraded_events": self.degraded_events,
            "worker_restarts": self.worker_restarts,
            "resyncs": self.resyncs,
            "rolled_back": self.rolled_back,
            "segments_dropped": self.segments_dropped,
        }

    def _collect_reconnect(self) -> dict:
        base = getattr(self.mux, "base", None)
        if base is None or not hasattr(base, "reconnect_events"):
            return {}
        return {
            "reconnects": base.reconnects,
            "epoch": base.epoch,
            "replayed_frames": base.replayed_frames,
            "replayed_bytes": base.replayed_bytes,
            "journal_depth": base.journal_depth,
        }

    def resume_state(self) -> dict:
        """The JSON state this party contributes to a reconnect resume
        handshake: per-tag mux receive counts plus per-pool absolute
        stream positions (wire a ReconnectingChannel's
        ``state_provider`` to this)."""
        with self._alloc_lock:
            pools = {kind: pool.produced for kind, pool in self.pools.items()}
            pending = {
                kind: pool.pending_segments
                for kind, pool in self.pools.items()
                if pool.pending_segments
            }
        state = {
            "party": self.party,
            "tags": self.mux.receive_counts(),
            "pools": pools,
        }
        if pending:
            # Parked out-of-order shard segments are NOT resumable state
            # (the resync barrier discards them); surfacing the count
            # lets the peer's handshake log explain a larger-than-
            # expected re-produce after a sharded reconnect.
            state["pending_segments"] = pending
        return state

    # -- allocation (leader authority) --------------------------------------
    def reserve(self, kind: str, n: int) -> int:
        """Claim the next range of ``kind``; leader-side sessions only."""
        if self.party != 0:
            raise ServiceError("only party 0 allocates; party 1 receives offsets")
        with self._alloc_lock:
            if kind not in self.pools:
                raise ServiceError(f"unknown pool kind {kind!r}")
            self.session_draws[kind] = self.session_draws.get(kind, 0) + n
            return self.pools[kind].reserve(n)

    def matrix_pool(self, m: int, k: int, n: int) -> MatrixTriplePool:
        """The shape-keyed matrix-triple pool for (m, k, n), creating it
        on first use.  Creation is local and idempotent, so sessions and
        the command replay can each ensure the pool exists on their side
        without any cross-party coordination."""
        key = MatrixTriplePool.key_for(m, k, n)
        with self._alloc_lock:
            pool = self.pools.get(key)
            if pool is None:
                pool = MatrixTriplePool(
                    key, m, k, n, self.tuning.ring_bits,
                    low_watermark=0, high_watermark=0,
                )
                pool.refill = self._wake
                pool.failure_probe = self._pool_probe
                pool.stall_observer = self._observe_stall
                pool.tracer = self.tracer
                self.pools[key] = pool
            return pool

    def trunc_pool(self, frac_bits: int) -> TruncPairPool:
        """The frac-keyed truncation-pair pool, creating it on first
        use.  Like :meth:`matrix_pool`, creation is local and
        idempotent; pair production additionally consumes pooled bit
        triples, so the service must run with ``enable_triples``."""
        if not self.tuning.enable_triples:
            raise ServiceError("truncation pairs need bit-triple production")
        key = TruncPairPool.key_for(frac_bits)
        with self._alloc_lock:
            pool = self.pools.get(key)
            if pool is None:
                pool = TruncPairPool(
                    key, self.tuning.ring_bits, frac_bits,
                    low_watermark=0, high_watermark=0,
                )
                pool.refill = self._wake
                pool.failure_probe = self._pool_probe
                pool.stall_observer = self._observe_stall
                pool.tracer = self.tracer
                self.pools[key] = pool
            return pool

    def session(self, name: str) -> "ServiceSession":
        """A consumer session speaking over the ``sess/<name>`` sub-channel."""
        return ServiceSession(self, self.mux.sub(f"sess/{name}"), name)

    def pool_stats(self) -> dict:
        with self._alloc_lock:
            pools = list(self.pools.items())
        out = {}
        for kind, pool in pools:
            stats = pool.stats.as_dict()
            stats["low_watermark"], stats["high_watermark"] = pool.watermarks
            stats["level"] = pool.level
            stats["produced"] = pool.produced
            out[kind] = stats
        return out

    # -- preprocessing phase -------------------------------------------------
    def prefill(self, targets: dict, timeout: float = None, one_shot: bool = False) -> None:
        """Run the preprocessing phase: block until every pool in
        ``targets`` holds that many items produced ahead.

        ``targets`` maps pool kind (including ``mtri/...`` keys created
        beforehand via :meth:`matrix_pool`) to the number of items the
        online phase will draw.  On the leader this *raises the
        low watermark* to the target, so the worker also keeps the pool
        warm for the next batch after consumption -- the steady-state
        service shape.  Both parties call this before their online
        phase; the follower waits for the mirrored production to land.

        With ``one_shot=True`` the leader restores every targeted
        pool's pre-call watermarks once the targets are met: the plan
        is served exactly once and no inflated refill target is left
        behind to make the worker regenerate demand that will never
        come back (the pipelined-prefill contract).
        """
        timeout = self.tuning.take_timeout_s if timeout is None else timeout
        deadline = time.monotonic() + timeout
        with self._alloc_lock:
            for kind in targets:
                if kind not in self.pools:
                    raise ServiceError(f"prefill: unknown pool kind {kind!r}")
        saved = None
        if self.party == 0:
            if one_shot:
                saved = {kind: self.pools[kind].watermarks for kind in targets}
            for kind, count in targets.items():
                if count > 0:
                    self.pools[kind].raise_watermarks(low=count, high=count)
        self._wake.set()
        live = {kind: count for kind, count in targets.items() if count > 0}
        try:
            if self.party == 0:
                # Loop until every target holds SIMULTANEOUSLY: derived
                # production scheduled while one kind is being waited on
                # reserves raw COTs internally and can eat an
                # already-checked level back below its target.  Once all
                # derived targets are met that internal consumption
                # stops, so the re-check converges.
                while True:
                    for kind, count in live.items():
                        self._raise_if_failed()
                        self.pools[kind].wait_level(
                            count, deadline - time.monotonic()
                        )
                    if all(
                        self.pools[kind].level >= count
                        for kind, count in live.items()
                    ):
                        break
            else:
                for kind, count in live.items():
                    self._raise_if_failed()
                    # The follower never reserves, so "produced ahead" is
                    # measured against what it has already taken -- repeated
                    # prefills wait for fresh production, not history.
                    self.pools[kind].wait_available(
                        count, deadline - time.monotonic()
                    )
        finally:
            if saved is not None:
                for kind, (low, high) in saved.items():
                    self.pools[kind].set_watermarks(low, high)
        self._raise_if_failed()

    def raise_produce_targets(self, targets: dict) -> None:
        """Leader-side: schedule production out to absolute stream positions.

        ``targets`` maps pool kind to an absolute produced-count floor
        (see :meth:`CorrelationPool.raise_produce_target`).  Unlike
        :meth:`prefill` this does not block and does not touch
        watermarks: the pipelined planner raises one layer's targets,
        lets the online phase overlap, and the targets go inert as soon
        as production passes them.
        """
        if self.party != 0:
            raise ServiceError("only party 0 schedules production")
        with self._alloc_lock:
            for kind in targets:
                if kind not in self.pools:
                    raise ServiceError(
                        f"produce target: unknown pool kind {kind!r}"
                    )
            pools = {kind: self.pools[kind] for kind in targets}
        for kind, target in targets.items():
            pools[kind].raise_produce_target(target)
        self._wake.set()

    # -- worker -------------------------------------------------------------
    def _run(self) -> None:
        try:
            if self._shard_mgr is not None:
                # Sharded mode: base OTs run per shard pair over their
                # own sockets; the parent endpoints only contribute the
                # Delta and are never set up or extended.
                self._shard_mgr.start()
            else:
                self.ferret_fwd.setup(self._ch_fwd)
                if self.ferret_rev is not None:
                    self.ferret_rev.setup(self._ch_rev)
            self._ready.set()
            if self.party == 0:
                try:
                    self._run_loop(self._leader_loop)
                finally:
                    # Always tell the follower to wind down -- even when
                    # the leader loop died on an exception -- so its
                    # consumers fail fast instead of polling forever.
                    try:
                        self._ctl.send_bytes(_CTL.pack(OP_STOP, 0, 0, 0))
                    except Exception:  # noqa: BLE001 - link may be gone
                        pass
            else:
                self._run_loop(self._follower_loop)
        except _StopRequested:
            pass  # a probe noticed stop() mid-wait: clean fast exit
        except BaseException as exc:  # noqa: BLE001 - crossing a thread
            self.error = exc
        finally:
            if self._shard_mgr is not None:
                try:
                    self._shard_mgr.stop()
                except Exception as exc:  # noqa: BLE001 - already unwinding
                    if self.error is None:
                        self.error = exc
            self._ready.set()
            for pool in self.pools.values():
                pool.close()

    def _run_loop(self, loop) -> None:
        """Run the party loop, restarting it once after a transient
        transport death (the restart-once contract: one more chance for
        a healed link, then the error is fatal and surfaces)."""
        while True:
            try:
                loop()
                return
            except _TRANSIENT as exc:
                if self.worker_restarts >= self.tuning.max_worker_restarts:
                    raise
                self.worker_restarts += 1
                self._enter_degraded(exc)
                if self.tracer.enabled:
                    self.tracer.instant(
                        "worker.restart", cat="degraded", cause=repr(exc)[:200]
                    )

    def _leader_loop(self) -> None:
        while not self._stop.is_set():
            self._check_peer_nack()
            if self.degraded_since is not None:
                if not self._leader_resync():
                    self._stop.wait(self.tuning.degraded_retry_s)
                    continue
            cmd = self._decide()
            if cmd is None:
                self._wake.wait(self.tuning.poll_interval_s)
                self._wake.clear()
                continue
            try:
                self._ctl.send_bytes(self._encode(cmd))
                self._execute(cmd)
            except _TRANSIENT as exc:
                # The command's retry budget (sliced receives over a
                # self-healing transport) is spent: abandon it, serve
                # stock only, and try to resync with the peer.  The
                # command is NOT resent -- after the resync barrier the
                # scheduler re-decides from the rolled-back pool state.
                self._enter_degraded(exc)

    def _follower_loop(self) -> None:
        while True:
            try:
                frame = self._ctl.recv_bytes(timeout=0.2)
            except ChannelTimeout:
                if self._stop.is_set():
                    return
                continue
            op = bytes(frame[:4])
            if op == OP_STOP:
                return
            if op == OP_SYNC:
                self._follower_resync(frame)
                continue
            if op in (OP_SYNC_ACK, OP_NACK):
                continue  # stale resync chatter; barriers are leader-driven
            cmd = self._decode(frame)
            if self.degraded_since is not None:
                # Commands issued before the leader noticed our failure:
                # keep pool consumption aligned without running the
                # (unservable) interactive protocol.
                self._align_stale_command(cmd)
                continue
            try:
                self._execute(cmd)
            except _TRANSIENT as exc:
                self._enter_degraded(exc)
                self._send_nack(exc)

    # -- resync barrier ------------------------------------------------------
    def _check_peer_nack(self) -> None:
        """Leader: drain ctl for a follower failure report (NACK)."""
        for frame in self._ctl.drain():
            if bytes(frame[:4]) == OP_NACK:
                detail = frame[4:].decode(errors="replace")
                self._enter_degraded(
                    ChannelError(f"peer reported command failure: {detail}")
                )

    def _send_nack(self, exc: Exception) -> None:
        """Follower: tell the leader promptly that execution failed, so
        it stops issuing commands we can no longer serve."""
        if self._nack_sent:
            return
        try:
            self._ctl.send_bytes(OP_NACK + repr(exc).encode()[:512])
            self._nack_sent = True
        except ChannelError:
            pass  # link fully down; the leader will notice by timeout

    def _produced_counts(self) -> dict:
        with self._alloc_lock:
            return {kind: pool.produced for kind, pool in self.pools.items()}

    def _leader_resync(self) -> bool:
        """One resync attempt: barrier + mutual rollback.  True on success.

        The leader publishes its per-pool produced counts; the follower
        drains every provisioning data channel (FIFO ordering guarantees
        all frames of the abandoned command precede the SYNC), replies
        with its own counts, and both sides roll every pool back to the
        elementwise minimum -- restoring the mirrored absolute-index
        streams.  At most ONE command can have completed asymmetrically
        (commands are sequential), so at most one pool moves.
        """
        self._sync_nonce += 1
        payload = {"nonce": self._sync_nonce, "produced": self._produced_counts()}
        try:
            self._ctl.send_bytes(OP_SYNC + json.dumps(payload).encode())
            deadline = time.monotonic() + self.tuning.retry.deadline_s
            while True:
                remaining = max(0.05, deadline - time.monotonic())
                frame = self._ctl.recv_bytes(timeout=remaining)
                op = bytes(frame[:4])
                if op == OP_NACK:
                    continue  # already degraded; the barrier supersedes it
                if op != OP_SYNC_ACK:
                    raise ChannelError(
                        f"resync expected SACK, got {op!r}"
                    )
                reply = json.loads(frame[4:].decode())
                if reply.get("nonce") == self._sync_nonce:
                    break
                # A stale ack from an earlier attempt: keep waiting.
            # All follower frames from the abandoned command precede its
            # SACK on the wire, so they are queued by now: drop them.
            for ch in self._data_channels:
                ch.base.drain()
            self._rollback_pools(reply["produced"])
        except _TRANSIENT:
            return False
        self.resyncs += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "service.resync", cat="resync", role="leader", nonce=self._sync_nonce
            )
        self._clear_degraded()
        return True

    def _follower_resync(self, frame: bytes) -> None:
        """Answer a leader resync barrier (see :meth:`_leader_resync`)."""
        payload = json.loads(frame[4:].decode())
        # Every leader frame from the abandoned command precedes the
        # SYNC on the wire, so the stray data frames are queued: drain
        # them before acking, then roll back to the mutual minimum.
        for ch in self._data_channels:
            ch.base.drain()
        mine = self._produced_counts()
        try:
            self._ctl.send_bytes(
                OP_SYNC_ACK
                + json.dumps({"nonce": payload["nonce"], "produced": mine}).encode()
            )
        except ChannelError as exc:
            self._enter_degraded(exc)
            return
        self._rollback_pools(payload["produced"])
        self.resyncs += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "service.resync",
                cat="resync",
                role="follower",
                nonce=payload["nonce"],
            )
        self._clear_degraded()

    def _rollback_pools(self, peer_produced: dict) -> None:
        """Roll every pool back to min(local, peer) produced counts.

        A COT pool that moves also restores its Ferret endpoint to the
        snapshot taken before the rolled-back extend, so the re-run
        extend consumes matching LPN/SPCOT state on both parties.
        """
        with self._alloc_lock:
            pools = dict(self.pools)
        for kind, pool in pools.items():
            # Parked out-of-order shard segments are one-sided state: a
            # segment that survived here but not on the peer would later
            # collide with the peer's re-produced range (duplicate or
            # overlapping-segment ServiceError at merge time).  The
            # barrier discards them on BOTH sides unconditionally --
            # even pools whose produced frontier does not move can be
            # holding parked futures above it.
            self.segments_dropped += pool.drop_pending_segments()
            target = min(pool.produced, int(peer_produced.get(kind, pool.produced)))
            if target >= pool.produced:
                continue
            if kind in ("cot/fwd", "cot/rev"):
                direction = "fwd" if kind == "cot/fwd" else "rev"
                last = self._last_extend.get(direction)
                if last is None or last[1] != target:
                    raise ServiceError(
                        f"resync: pool {kind} must roll back to {target} but "
                        f"the last extend snapshot covers "
                        f"{None if last is None else last[1]}; more than one "
                        f"extend diverged -- state unrecoverable"
                    )
                self._ferret_restore(direction, last[0])
            self.rolled_back += pool.rollback_to(target)

    def _align_stale_command(self, cmd) -> None:
        """Keep consumption aligned for commands issued before the
        leader noticed our failure (we cannot run their interactive
        protocol any more, but the leader consumed their inputs).

        Local ROT conversions execute fully when their input range is
        available -- identical output on both sides, pools stay level.
        Interactive commands only have their pool *inputs* consumed
        (the leader's execution of them timed out too, so neither side
        appended output).  Inputs not yet produced locally are left to
        the resync rollback, which erases the leader's view of them.
        """
        op = cmd[0]
        takes = []  # (pool kind, lo, n)
        if op in (OP_ROT_FWD, OP_ROT_REV):
            direction = "fwd" if op == OP_ROT_FWD else "rev"
            _, n, lo, _ = cmd
            if self.pools[f"cot/{direction}"].produced >= lo + n:
                self._produce_rots(direction, n, lo)
            return
        if op == OP_TRIPLES:
            _, n, lo_f, lo_r = cmd
            takes = [("cot/fwd", lo_f, n), ("cot/rev", lo_r, n)]
        elif op == OP_RING_TRIPLES:
            _, n, lo_f, lo_r = cmd
            bits = self.tuning.ring_bits
            takes = [("cot/fwd", lo_f, n * bits), ("cot/rev", lo_r, n * bits)]
        elif op == OP_MATRIX_TRIPLE:
            _, m, k, n, direction, lo = cmd
            pool = self.matrix_pool(m, k, n)
            takes = [("cot/rev" if direction else "cot/fwd", lo, pool.cots_per_item)]
        elif op == OP_TRUNC_PAIRS:
            _, n, frac, lo_c, lo_t = cmd
            pool = self.trunc_pool(frac)
            takes = [
                ("cot/fwd", lo_c, n * pool.cots_per_item),
                ("tri", lo_t, n * pool.triples_per_item),
            ]
        # Extends consume no pool inputs: nothing to align.
        for kind, lo, n in takes:
            if n > 0 and self.pools[kind].produced >= lo + n:
                self.pools[kind].take_columns(lo, n)

    # -- ferret endpoint snapshots -------------------------------------------
    def _endpoint(self, direction: str):
        return self.ferret_fwd if direction == "fwd" else self.ferret_rev

    def _ferret_snapshot(self, direction: str) -> dict:
        """Capture the mutable mid-stream state of one Ferret endpoint.

        ``extend`` is compute-then-commit except for the endpoint's own
        rng, the SPCOT base-COT cursor, and the LPN seed refs it swaps
        at the end -- exactly the fields below.  Restoring them makes a
        retried extend bit-compatible with the peer's fresh run.
        """
        ep = self._endpoint(direction)
        return {
            "rng_state": ep.rng.bit_generator.state,
            "lpn_r": getattr(ep, "_lpn_r", None),
            "lpn_e": getattr(ep, "_lpn_e", None),
            "lpn_s": getattr(ep, "_lpn_s", None),
            "spcot_pool": ep._spcot_pool,
            "spcot_cursor": None if ep._spcot_pool is None else ep._spcot_pool._cursor,
            "iterations": ep.iterations,
        }

    def _ferret_restore(self, direction: str, snap: dict) -> None:
        ep = self._endpoint(direction)
        ep.rng.bit_generator.state = snap["rng_state"]
        if hasattr(ep, "_lpn_r"):
            ep._lpn_r = snap["lpn_r"]
        if hasattr(ep, "_lpn_e"):
            ep._lpn_e = snap["lpn_e"]
            ep._lpn_s = snap["lpn_s"]
        ep._spcot_pool = snap["spcot_pool"]
        if ep._spcot_pool is not None:
            ep._spcot_pool._cursor = snap["spcot_cursor"]
        ep.iterations = snap["iterations"]

    @staticmethod
    def _encode(cmd: tuple) -> bytes:
        if cmd[0] == OP_MATRIX_TRIPLE:
            return _CTL_MTRI.pack(*cmd)
        if cmd[0] == OP_TRUNC_PAIRS:
            return _CTL_TPRC.pack(*cmd)
        return _CTL.pack(*cmd)

    @staticmethod
    def _decode(frame: bytes) -> tuple:
        if frame[:4] == OP_MATRIX_TRIPLE:
            return _CTL_MTRI.unpack(frame)
        if frame[:4] == OP_TRUNC_PAIRS:
            return _CTL_TPRC.unpack(frame)
        return _CTL.unpack(frame)

    def _starved(self, op):
        """A derived producer is starved on raw COTs.

        Unsharded, the extend itself becomes the next command.  Sharded,
        extends are not commands: nudge the shard fleet to keep at least
        one extend of that direction in flight and return ``None`` so
        the loop sleeps on ``_wake`` until the merger lands a batch.
        """
        if self._shard_mgr is None:
            return (op, 0, 0, 0)
        self._shard_mgr.request_extend("rev" if op == OP_EXTEND_REV else "fwd")
        return None

    def _decide(self):
        """Leader scheduling: pick the next production command, if any.

        Extends come first (they are the only source of raw COTs), then
        derived production over ranges that are *already produced*, so
        the worker never deadlocks on its own output.

        In sharded mode extends never become commands: raw-COT deficits
        are dispatched to the shard workers instead, and derived
        production waits for the merged pools to fill.
        """
        t = self.tuning
        pools = self.pools
        if self._shard_mgr is not None:
            self._shard_mgr.request_refills()
        else:
            if pools["cot/fwd"].needs_refill():
                return (OP_EXTEND_FWD, 0, 0, 0)
            if t.enable_reverse and pools["cot/rev"].needs_refill():
                return (OP_EXTEND_REV, 0, 0, 0)
        with self._alloc_lock:
            if t.enable_triples and pools["tri"].needs_refill():
                want = min(pools["tri"].deficit, t.triple_chunk)
                avail = min(pools["cot/fwd"].level, pools["cot/rev"].level)
                if avail <= 0:
                    direction = (
                        OP_EXTEND_FWD
                        if pools["cot/fwd"].level <= pools["cot/rev"].level
                        else OP_EXTEND_REV
                    )
                    return self._starved(direction)
                want = min(want, avail)
                lo_f = pools["cot/fwd"].try_reserve_produced(want)
                lo_r = pools["cot/rev"].try_reserve_produced(want)
                if lo_f is None or lo_r is None:  # pragma: no cover - racing
                    return None
                return (OP_TRIPLES, want, lo_f, lo_r)
            if self._enable_rtri and pools["rtri"].needs_refill():
                bits = t.ring_bits
                want = min(
                    pools["rtri"].deficit,
                    t.rtri_chunk,
                    pools["cot/fwd"].level // bits,
                    pools["cot/rev"].level // bits,
                )
                if want <= 0:
                    direction = (
                        OP_EXTEND_FWD
                        if pools["cot/fwd"].level <= pools["cot/rev"].level
                        else OP_EXTEND_REV
                    )
                    return self._starved(direction)
                lo_f = pools["cot/fwd"].try_reserve_produced(want * bits)
                lo_r = pools["cot/rev"].try_reserve_produced(want * bits)
                if lo_f is None or lo_r is None:  # pragma: no cover - racing
                    return None
                return (OP_RING_TRIPLES, want, lo_f, lo_r)
            mtri_cmd = self._decide_matrix()
            if mtri_cmd is not None:
                return mtri_cmd
            tprc_cmd = self._decide_trunc()
            if tprc_cmd is not None:
                return tprc_cmd
            if t.enable_rots and pools["rot/fwd"].needs_refill():
                want = min(
                    pools["rot/fwd"].deficit, t.rot_chunk, pools["cot/fwd"].level
                )
                if want <= 0:
                    return self._starved(OP_EXTEND_FWD)
                lo = pools["cot/fwd"].try_reserve_produced(want)
                if lo is None:  # pragma: no cover - racing
                    return None
                return (OP_ROT_FWD, want, lo, 0)
            if t.enable_rots and t.enable_reverse and pools["rot/rev"].needs_refill():
                want = min(
                    pools["rot/rev"].deficit, t.rot_chunk, pools["cot/rev"].level
                )
                if want <= 0:
                    return self._starved(OP_EXTEND_REV)
                lo = pools["cot/rev"].try_reserve_produced(want)
                if lo is None:  # pragma: no cover - racing
                    return None
                return (OP_ROT_REV, want, lo, 0)
        return None

    def _decide_matrix(self):
        """Matrix-triple scheduling (caller holds the allocation lock).

        A triple consumes its whole COT demand from ONE direction --
        whichever has more stock -- because the Gilboa sender role for
        both cross terms belongs to that direction's COT sender.
        """
        t = self.tuning
        pools = self.pools
        for pool in list(pools.values()):
            if not isinstance(pool, MatrixTriplePool) or not pool.needs_refill():
                continue
            needed = pool.cots_per_item
            if t.enable_reverse and pools["cot/rev"].level > pools["cot/fwd"].level:
                direction, src = 1, pools["cot/rev"]
            else:
                direction, src = 0, pools["cot/fwd"]
            if src.level < needed:
                return self._starved(OP_EXTEND_REV if direction else OP_EXTEND_FWD)
            lo = src.try_reserve_produced(needed)
            if lo is None:  # pragma: no cover - racing
                return None
            return (OP_MATRIX_TRIPLE, pool.m, pool.k, pool.n, direction, lo)
        return None

    def _decide_trunc(self):
        """Truncation-pair scheduling (caller holds the allocation lock).

        Pair generation is derived-of-derived production: it consumes
        forward COTs *and* pooled bit triples.  When triple stock is the
        bottleneck the leader schedules a triple batch first, so the
        worker never waits on its own output.  Deep deficits fuse up to
        ``tprc_batch_chunks`` chunks into ONE command when stock allows,
        so pair production pays the millionaires'/B2A opening rounds
        once per fused batch instead of once per chunk.
        """
        t = self.tuning
        pools = self.pools
        batch_cap = t.tprc_chunk * max(1, t.tprc_batch_chunks)
        for pool in list(pools.values()):
            if not isinstance(pool, TruncPairPool) or not pool.needs_refill():
                continue
            want = min(pool.deficit, batch_cap)
            want = min(
                want,
                pools["cot/fwd"].level // pool.cots_per_item,
                pools["tri"].level // pool.triples_per_item,
            )
            if want <= 0:
                if pools["cot/fwd"].level < pool.cots_per_item:
                    return self._starved(OP_EXTEND_FWD)
                # Starved on bit triples: run one triple batch.
                need = min(pool.deficit, batch_cap) * pool.triples_per_item
                n = min(t.triple_chunk, max(need - pools["tri"].level, 1))
                avail = min(pools["cot/fwd"].level, pools["cot/rev"].level)
                if avail <= 0:
                    direction = (
                        OP_EXTEND_FWD
                        if pools["cot/fwd"].level <= pools["cot/rev"].level
                        else OP_EXTEND_REV
                    )
                    return self._starved(direction)
                n = min(n, avail)
                lo_f = pools["cot/fwd"].try_reserve_produced(n)
                lo_r = pools["cot/rev"].try_reserve_produced(n)
                if lo_f is None or lo_r is None:  # pragma: no cover - racing
                    return None
                return (OP_TRIPLES, n, lo_f, lo_r)
            lo_c = pools["cot/fwd"].try_reserve_produced(want * pool.cots_per_item)
            lo_t = pools["tri"].try_reserve_produced(want * pool.triples_per_item)
            if lo_c is None or lo_t is None:  # pragma: no cover - racing
                return None
            return (OP_TRUNC_PAIRS, want, pool.frac_bits, lo_c, lo_t)
        return None

    def _execute(self, cmd) -> None:
        tr = self.tracer
        if not tr.enabled:
            return self._execute_cmd(cmd)
        op = cmd[0].decode("ascii", errors="replace").rstrip("\x00")
        with tr.span(f"produce.{op}", cat="produce", n=int(cmd[1])):
            return self._execute_cmd(cmd)

    def _execute_cmd(self, cmd) -> None:
        op = cmd[0]
        if op == OP_MATRIX_TRIPLE:
            self._produce_matrix_triple(*cmd[1:])
            return
        if op == OP_TRUNC_PAIRS:
            self._produce_trunc_pairs(*cmd[1:])
            return
        _, n, lo_a, lo_b = cmd
        if op == OP_EXTEND_FWD:
            self._run_extend("fwd", self.ferret_fwd, self._ch_fwd)
        elif op == OP_EXTEND_REV:
            self._run_extend("rev", self.ferret_rev, self._ch_rev)
        elif op == OP_TRIPLES:
            self._produce_triples(n, lo_a, lo_b)
        elif op == OP_RING_TRIPLES:
            self._produce_ring_triples(n, lo_a, lo_b)
        elif op == OP_ROT_FWD:
            self._produce_rots("fwd", n, lo_a)
        elif op == OP_ROT_REV:
            self._produce_rots("rev", n, lo_a)
        else:
            raise ServiceError(f"unknown provisioning opcode {op!r}")

    def _run_extend(self, direction: str, endpoint, channel) -> None:
        """One extend, snapshot-protected for abandon/rollback.

        Extend mutates endpoint state mid-protocol (rng draws, SPCOT
        cursor, LPN seed swap), so a transient failure restores the
        pre-extend snapshot before propagating -- and a *completed*
        extend keeps its snapshot in ``_last_extend`` so a later resync
        can undo it if the peer's half never finished.
        """
        pool = self.pools[f"cot/{direction}"]
        snap = self._ferret_snapshot(direction)
        produced_before = pool.produced
        try:
            batch = endpoint.extend(channel)
        except _TRANSIENT:
            self._ferret_restore(direction, snap)
            raise
        pool.append_batch(batch)
        self._last_extend[direction] = (snap, produced_before)
        self.extends[direction] += 1

    def _produce_triples(self, n: int, lo_fwd: int, lo_rev: int) -> None:
        """Both workers run one triple-generation batch in lockstep."""
        fwd = self.pools["cot/fwd"].take_batch(lo_fwd, n)
        rev = self.pools["cot/rev"].take_batch(lo_rev, n)
        if self.party == 0:
            send_pool, recv_pool = CotPool(sender=fwd), CotPool(receiver=rev)
        else:
            send_pool, recv_pool = CotPool(sender=rev), CotPool(receiver=fwd)
        triples = generate_bit_triples(
            self._ch_tri, n, send_pool, recv_pool, self._rng,
            party=self.party, tweak_base=lo_fwd,
        )
        self.pools["tri"].append_columns((triples.a, triples.b, triples.c))

    def _produce_ring_triples(self, n: int, lo_fwd: int, lo_rev: int) -> None:
        """Lockstep Gilboa ring-triple batch over both COT directions."""
        bits = self.tuning.ring_bits
        fwd = self.pools["cot/fwd"].take_batch(lo_fwd, n * bits)
        rev = self.pools["cot/rev"].take_batch(lo_rev, n * bits)
        if self.party == 0:
            send_pool, recv_pool = CotPool(sender=fwd), CotPool(receiver=rev)
            send_tweak, recv_tweak = lo_fwd, lo_rev
        else:
            send_pool, recv_pool = CotPool(sender=rev), CotPool(receiver=fwd)
            send_tweak, recv_tweak = lo_rev, lo_fwd
        triples = generate_ring_triples(
            self._ch_rtri, n, bits, send_pool, recv_pool, self._rng,
            party=self.party, send_tweak_base=send_tweak, recv_tweak_base=recv_tweak,
        )
        self.pools["rtri"].append_columns((triples.a, triples.b, triples.c))

    def _produce_matrix_triple(
        self, m: int, k: int, n: int, direction: int, lo: int
    ) -> None:
        """Generate one (m,k,n) matrix triple from one direction's COTs.

        ``direction`` 0 draws from cot/fwd (party 0 is the Ferret -- and
        therefore Gilboa -- sender), 1 from cot/rev (party 1 sends):
        both Fig 16 role directions are live code paths picked by stock.
        """
        pool = self.matrix_pool(m, k, n)
        batch = self.pools["cot/rev" if direction else "cot/fwd"].take_batch(
            lo, pool.cots_per_item
        )
        if (self.party == 0) == (direction == 0):
            cot_pool = CotPool(sender=batch)
        else:
            cot_pool = CotPool(receiver=batch)
        triple = generate_matrix_triples(
            self._ch_mtri, MatmulDims(m, k, n), pool.bits, cot_pool, self._rng,
            party=self.party, ot_sender=direction, tweak_base=lo,
        )
        pool.append_triple(triple)

    def _produce_trunc_pairs(self, n: int, frac: int, lo_cot: int, lo_tri: int) -> None:
        """Lockstep truncation-pair batch: forward COTs + pooled triples.

        Party 0 is the millionaires'/Gilboa OT sender (the forward COT
        direction), mirroring the online wrap-fixed protocol's roles.
        """
        pool = self.trunc_pool(frac)
        batch = self.pools["cot/fwd"].take_batch(lo_cot, n * pool.cots_per_item)
        if self.party == 0:
            cot_pool = CotPool(sender=batch)
        else:
            cot_pool = CotPool(receiver=batch)
        triples = self.pools["tri"].take_triples(lo_tri, n * pool.triples_per_item)
        pairs = generate_trunc_pairs(
            self._ch_tprc, n, pool.bits, frac, cot_pool, triples, self._rng,
            party=self.party, tweak_base=lo_cot,
        )
        pool.append_columns((pairs.r, pairs.s))

    def _produce_rots(self, direction: str, n: int, lo: int) -> None:
        """Figure 2 conversion of pooled COTs into random OTs (local)."""
        batch = self.pools[f"cot/{direction}"].take_batch(lo, n)
        am_sender = (self.party == 0) == (direction == "fwd")
        if am_sender:
            m0, m1 = cot_to_random_ot_sender(batch, tweak_base=lo)
            self.pools[f"rot/{direction}"].append_columns((m0, m1))
        else:
            bits, chosen = cot_to_random_ot_receiver(batch, tweak_base=lo)
            self.pools[f"rot/{direction}"].append_columns((bits, chosen))


class ServiceSession:
    """One consumer's handle on the service: typed draws + a channel.

    The session's sub-channel carries both the allocation offsets and
    whatever protocol traffic the consumer runs; peers must create
    sessions with matching names and issue draws in the same order
    (which any two-party protocol does naturally).
    """

    def __init__(self, service: CorrelationService, channel, name: str):
        self.service = service
        self.channel = channel
        self.name = name

    @property
    def party(self) -> int:
        return self.service.party

    # -- allocation handshake ------------------------------------------------
    def _alloc(self, kind: str, n: int) -> int:
        """Party 0 reserves and announces the range; party 1 receives it."""
        if self.party == 0:
            lo = self.service.reserve(kind, n)
            self.channel.send_int(lo)
        else:
            lo = self.channel.recv_int()
        tr = self.service.tracer
        if tr.enabled:
            tr.instant(
                "session.alloc", cat="session",
                session=self.name, kind=kind, n=n, lo=lo,
            )
        return lo

    def _take(self, kind: str, lo: int, n: int):
        return self.service.pools[kind].take_batch(
            lo, n, timeout=self.service.tuning.take_timeout_s
        )

    def _alloc_many(self, requests: list) -> list:
        """One allocation round-trip for several draws.

        ``requests`` is a list of ``(kind, n)``; party 0 reserves every
        range and announces ALL offsets in one message (a uint64
        vector), so a fused verb pays one wire round for its whole
        correlation shopping list instead of one per pool kind.
        """
        if self.party == 0:
            offsets = [self.service.reserve(kind, n) for kind, n in requests]
            self.channel.send_ring(np.asarray(offsets, dtype=np.uint64))
        else:
            got = self.channel.recv_ring()
            if got.shape[0] != len(requests):
                raise ServiceError(
                    f"fused allocation expected {len(requests)} offsets, "
                    f"got {got.shape[0]}"
                )
            offsets = [int(v) for v in got]
        tr = self.service.tracer
        if tr.enabled:
            tr.instant(
                "session.alloc", cat="session", session=self.name,
                kinds=",".join(kind for kind, _ in requests),
            )
        return offsets

    # -- typed draws ---------------------------------------------------------
    def draw_sender_cots(self, n: int) -> tuple:
        """(CotSenderBatch, absolute offset) in this party's send direction."""
        kind = "cot/fwd" if self.party == 0 else "cot/rev"
        lo = self._alloc(kind, n)
        return self._take(kind, lo, n), lo

    def draw_receiver_cots(self, n: int) -> tuple:
        """(CotReceiverBatch, absolute offset); pairs the peer's sender draw."""
        kind = "cot/rev" if self.party == 0 else "cot/fwd"
        lo = self._alloc(kind, n)
        return self._take(kind, lo, n), lo

    def sender_cot_pool(self, n: int) -> CotPool:
        batch, _ = self.draw_sender_cots(n)
        return CotPool(sender=batch)

    def receiver_cot_pool(self, n: int) -> CotPool:
        batch, _ = self.draw_receiver_cots(n)
        return CotPool(receiver=batch)

    def draw_triples(self, n: int):
        """This party's shares of n pooled Beaver bit triples."""
        lo = self._alloc("tri", n)
        return self.service.pools["tri"].take_triples(
            lo, n, timeout=self.service.tuning.take_timeout_s
        )

    def draw_ring_triples(self, n: int):
        """This party's shares of n pooled mod-2^k Beaver triples."""
        lo = self._alloc("rtri", n)
        return self.service.pools["rtri"].take_triples(
            lo, n, timeout=self.service.tuning.take_timeout_s
        )

    def draw_trunc_pairs(self, n: int, frac_bits: int):
        """This party's shares of n pooled truncation pairs (r, r>>frac).

        Both parties' calls ensure the frac-keyed pool exists locally;
        the leader reserves the range and announces its offset.
        """
        pool = self.service.trunc_pool(frac_bits)
        lo = self._alloc(pool.name, n)
        return pool.take_pairs(lo, n, timeout=self.service.tuning.take_timeout_s)

    def draw_matrix_triple(self, m: int, k: int, n: int):
        """One pooled matrix Beaver triple of shape (m, k) @ (k, n).

        Both parties' calls ensure the shape-keyed pool exists locally;
        the leader reserves the next triple and announces its offset.
        A warm (prefilled) pool serves instantly; a cold pool stalls
        here while the service produces on demand.
        """
        pool = self.service.matrix_pool(m, k, n)
        lo = self._alloc(pool.name, 1)
        return pool.take_triple(lo, timeout=self.service.tuning.take_timeout_s)

    def draw_matmul_rescale(self, m: int, k: int, n: int, fx, mode: str = "pair"):
        """Fused matmul+rescale draw: ONE allocation round-trip covers
        the matrix-triple draw AND the truncation material for the
        ``m*n`` product elements.

        Returns ``(matrix_triple, trunc_material)`` where the material
        dict holds ``pairs`` (pair mode) or ``cot_pool`` / ``triples``
        / ``ring_triples`` (wrap/exact mode) -- exactly what
        :func:`repro.mpc.truncation.truncate_pair_online` /
        :func:`~repro.mpc.truncation.truncate_shares` consume.  The
        per-kind draw counts are identical to the unfused
        ``draw_matrix_triple`` + ``trunc_via_service`` path, so
        preprocessing plans price both the same.
        """
        from repro.mpc.truncation import (
            trunc_bit_triples,
            trunc_cots,
            trunc_ring_triples,
        )

        svc_bits = self.service.tuning.ring_bits
        if svc_bits != fx.bits:
            raise ServiceError(
                f"service produces {svc_bits}-bit correlations, "
                f"config wants {fx.bits}"
            )
        mpool = self.service.matrix_pool(m, k, n)
        n_el = m * n
        requests = [(mpool.name, 1)]
        if mode == "pair":
            tpool = self.service.trunc_pool(fx.frac_bits)
            requests.append((tpool.name, n_el))
        elif mode in ("wrap", "exact"):
            exact = mode == "exact"
            requests.append(("cot/fwd", trunc_cots(n_el, fx, exact)))
            requests.append(("tri", trunc_bit_triples(n_el, fx, exact)))
            requests.append(("rtri", trunc_ring_triples(n_el, fx, exact)))
        else:
            raise ServiceError(f"unknown truncation mode {mode!r}")
        offsets = self._alloc_many(requests)
        timeout = self.service.tuning.take_timeout_s
        triple = mpool.take_triple(offsets[0], timeout=timeout)
        if mode == "pair":
            pairs = tpool.take_pairs(offsets[1], n_el, timeout=timeout)
            return triple, {"pairs": pairs}
        batch = self._take("cot/fwd", offsets[1], requests[1][1])
        cot_pool = (
            CotPool(sender=batch) if self.party == 0 else CotPool(receiver=batch)
        )
        triples = self.service.pools["tri"].take_triples(
            offsets[2], requests[2][1], timeout=timeout
        )
        ring_triples = self.service.pools["rtri"].take_triples(
            offsets[3], requests[3][1], timeout=timeout
        )
        return triple, {
            "cot_pool": cot_pool,
            "triples": triples,
            "ring_triples": ring_triples,
        }

    def draw_random_ots_send(self, n: int) -> tuple:
        """(m0, m1) random-OT message pairs (this party is the sender)."""
        kind = "rot/fwd" if self.party == 0 else "rot/rev"
        lo = self._alloc(kind, n)
        return self.service.pools[kind].take_pairs(
            lo, n, timeout=self.service.tuning.take_timeout_s
        )

    def draw_random_ots_receive(self, n: int) -> tuple:
        """(choice bits, chosen messages); pairs the peer's send draw."""
        kind = "rot/rev" if self.party == 0 else "rot/fwd"
        lo = self._alloc(kind, n)
        return self.service.pools[kind].take_pairs(
            lo, n, timeout=self.service.tuning.take_timeout_s
        )

    # -- chosen-message OT straight off the pool -----------------------------
    def ot_send(self, messages0: np.ndarray, messages1: np.ndarray) -> None:
        """Chosen-message OT sender over the session channel."""
        n = messages0.shape[0]
        batch, lo = self.draw_sender_cots(n)
        tweaks = np.arange(lo, lo + n, dtype=np.uint64)
        ot_send_from_cot(self.channel, batch, messages0, messages1, tweaks=tweaks)

    def ot_receive(self, choices: np.ndarray) -> np.ndarray:
        """Chosen-message OT receiver; returns messages[choices[i]]."""
        n = np.asarray(choices).shape[0]
        batch, lo = self.draw_receiver_cots(n)
        tweaks = np.arange(lo, lo + n, dtype=np.uint64)
        return ot_receive_from_cot(self.channel, batch, choices, tweaks=tweaks)
