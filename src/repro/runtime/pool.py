"""Thread-safe typed correlation pools with watermark bookkeeping.

A pool buffers one kind of correlation (sender COTs, receiver COTs,
random OTs, bit/ring triples, shape-keyed matrix triples) produced by
the background provisioning service and consumed by concurrent
sessions.  The crucial design point
is that a correlation is only useful if *both* parties consume the same
one, so pools index their contents by **absolute position** in the
production stream:

* ``reserve(n)`` (allocation authority only -- party 0 in the service)
  claims the next range ``[lo, lo+n)`` and is purely local bookkeeping;
* ``take(lo, n)`` (both parties) blocks until the range has been
  produced and returns its contents.

Party 0 reserves and tells party 1 the offset in-band (one integer on
the session's sub-channel), so draws land on mirrored correlations no
matter how threads interleave on either host.

Backpressure is demand-driven: ``reserve`` may run ahead of production
(level goes negative), which trips the ``refill`` event the service
worker waits on; ``take`` blocks until the worker catches up, with the
wait recorded as stall time in :class:`PoolStats`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import PoolClosed, PoolTimeout, ServiceError
from repro.obs.trace import NULL_TRACER
from repro.ot.cot import CotReceiverBatch, CotSenderBatch

#: Ceiling for waits whose caller passed no explicit timeout.  Generous
#: enough for paper-scale prefills, but bounded: no runtime wait may
#: hang forever on a dead producer.
DEFAULT_WAIT_TIMEOUT_S = 300.0


@dataclass
class PoolStats:
    """Consumption/production accounting for one pool."""

    draws: int = 0  # take() calls served
    items_drawn: int = 0
    refills: int = 0  # append() calls
    items_refilled: int = 0
    stalled_draws: int = 0  # draws that had to wait for production
    stall_time_s: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of draws served without waiting for the producer."""
        if self.draws == 0:
            return 1.0
        return 1.0 - self.stalled_draws / self.draws

    def as_dict(self) -> dict:
        return {
            "draws": self.draws,
            "items_drawn": self.items_drawn,
            "refills": self.refills,
            "items_refilled": self.items_refilled,
            "stalled_draws": self.stalled_draws,
            "stall_time_s": self.stall_time_s,
            "hit_rate": self.hit_rate,
        }


class CorrelationPool:
    """Base pool: absolute-indexed stream of fixed-width numpy columns.

    Subclasses fix the column layout and wrap take results in typed
    batches.  ``low_watermark`` is the produced-ahead level below which
    the pool asks the service for a refill; ``high_watermark`` is the
    level the service tops up to.
    """

    def __init__(
        self,
        name: str,
        n_columns: int,
        low_watermark: int = 0,
        high_watermark: int = None,
        trim_chunk: int = 1 << 15,
    ):
        self.name = name
        self.low_watermark = low_watermark
        self.high_watermark = high_watermark if high_watermark is not None else max(
            low_watermark * 2, low_watermark + 1
        )
        self.stats = PoolStats()
        self.refill = threading.Event()
        self._columns = [None] * n_columns
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._produced = 0  # absolute count appended so far
        self._reserved = 0  # absolute count claimed so far
        self._produce_target = 0  # absolute produced-count floor
        self._base = 0  # absolute index of the first retained element
        self._done_upto = 0  # contiguous prefix fully taken
        self._pending_done: dict = {}  # lo -> hi of out-of-order takes
        self._pending_segments: dict = {}  # lo -> column arrays not yet contiguous
        self._trim_chunk = trim_chunk
        self._closed = False
        #: Optional liveness hook (set by the service): called on every
        #: wait tick; raises a typed ServiceError when the producer died
        #: or degraded, so blocked consumers fail fast with the cause
        #: instead of burning their full timeout.
        self.failure_probe = None
        #: Flight-recorder hooks (set by the service): stalls emit a
        #: retroactive ``pool.wait`` span on the tracer and a duration
        #: sample (milliseconds) to the observer.  Both default to
        #: no-ops; the non-stalled fast path never touches them.
        self.tracer = NULL_TRACER
        self.stall_observer = None

    # -- levels -------------------------------------------------------------
    @property
    def produced(self) -> int:
        return self._produced

    @property
    def reserved(self) -> int:
        return self._reserved

    @property
    def level(self) -> int:
        """Produced-ahead margin; negative when demand outruns supply."""
        return self._produced - self._reserved

    @property
    def produce_target(self) -> int:
        return self._produce_target

    @property
    def deficit(self) -> int:
        """Items production should add: back to the high watermark, or
        out to the absolute produce target, whichever asks for more."""
        return max(
            0,
            self.high_watermark - self.level,
            self._produce_target - self._produced,
        )

    def needs_refill(self) -> bool:
        return (
            self.level < self.low_watermark
            or self._produced < self._produce_target
        )

    # -- producer side ------------------------------------------------------
    def _grow(self, i: int, arr: np.ndarray, used: int) -> None:
        """Amortized append: geometric capacity growth, copy-in-place.

        A naive per-refill np.concatenate would copy the whole retained
        buffer on every extend -- quadratic provisioning overhead at
        paper scale.
        """
        col = self._columns[i]
        need = used + arr.shape[0]
        if col is None or col.shape[0] < need:
            cap = max(need, 2 * (0 if col is None else col.shape[0]))
            fresh = np.empty((cap,) + arr.shape[1:], dtype=arr.dtype)
            if col is not None:
                fresh[:used] = col[:used]
            self._columns[i] = fresh
        self._columns[i][used:need] = arr

    def append_columns(self, arrays: tuple) -> None:
        """Append one production batch (equal-length column arrays)."""
        n = arrays[0].shape[0]
        if any(a.shape[0] != n for a in arrays):
            raise ServiceError(f"pool {self.name}: column lengths disagree")
        with self._cond:
            if self._closed:
                raise ServiceError(f"pool {self.name} is closed")
            used = self._produced - self._base
            for i, arr in enumerate(arrays):
                self._grow(i, arr, used)
            self._produced += n
            self.stats.refills += 1
            self.stats.items_refilled += n
            self._cond.notify_all()

    def append_columns_at(self, lo: int, arrays: tuple) -> None:
        """Append one production batch at absolute stream offset ``lo``.

        Shard mergers deliver batches out of arrival order: shard s may
        finish the range starting at ``lo`` before the shard owning the
        range below it has landed.  Batches at the produced frontier are
        appended immediately; batches beyond it are parked and drained
        the moment the gap below them fills, so ``produced`` only ever
        advances over a contiguous prefix -- consumers never observe a
        hole.  ``append_columns`` remains the (byte-identical)
        single-producer path: it IS ``append_columns_at(produced, ...)``.
        """
        n = arrays[0].shape[0]
        if any(a.shape[0] != n for a in arrays):
            raise ServiceError(f"pool {self.name}: column lengths disagree")
        with self._cond:
            if self._closed:
                raise ServiceError(f"pool {self.name} is closed")
            if lo < self._produced:
                raise ServiceError(
                    f"pool {self.name}: segment at {lo} overlaps the produced "
                    f"frontier {self._produced}"
                )
            if lo in self._pending_segments:
                raise ServiceError(
                    f"pool {self.name}: duplicate segment at offset {lo}"
                )
            # Range disjointness: a segment whose *span* intersects a
            # parked neighbor at a different offset would survive the
            # duplicate guard, get parked, and later merge stale data
            # over the neighbor's range -- silent stream corruption.
            for seg_lo, seg in self._pending_segments.items():
                seg_n = seg[0].shape[0]
                if lo < seg_lo + seg_n and seg_lo < lo + n:
                    raise ServiceError(
                        f"pool {self.name}: segment [{lo},{lo + n}) overlaps "
                        f"parked segment [{seg_lo},{seg_lo + seg_n})"
                    )
            self._pending_segments[lo] = tuple(arrays)
            advanced = False
            while self._produced in self._pending_segments:
                seg = self._pending_segments.pop(self._produced)
                used = self._produced - self._base
                for i, arr in enumerate(seg):
                    self._grow(i, arr, used)
                self._produced += seg[0].shape[0]
                self.stats.refills += 1
                self.stats.items_refilled += seg[0].shape[0]
                advanced = True
            if advanced:
                self._cond.notify_all()

    @property
    def pending_segments(self) -> int:
        """Out-of-order segments parked above the produced frontier."""
        with self._lock:
            return len(self._pending_segments)

    def drop_pending_segments(self) -> int:
        """Discard every parked out-of-order segment; returns the count.

        The reconnect resync barrier rolls both parties to the minimum
        of their produced counts and re-produces everything above it.
        A parked segment that survived on one side only would collide
        with the re-produced range at merge time (duplicate/overlap
        ``ServiceError``), so resync clears the parking lot outright --
        sharded producers will regenerate those ranges from the new
        frontier.
        """
        with self._cond:
            dropped = len(self._pending_segments)
            self._pending_segments.clear()
            if dropped and self.needs_refill():
                self.refill.set()
            return dropped

    def rollback_to(self, produced: int) -> int:
        """Discard production past absolute position ``produced``.

        The reconnect resync path calls this after an interrupted
        command may have completed on one party only: both sides roll
        their pools back to the minimum of their produced counts so the
        absolute-index streams are mirrored again.  Items a consumer
        already took can never be rolled back -- that data has left the
        pool -- so a target below the taken frontier raises loudly
        (state is unrecoverable, not silently corrupt).  Returns the
        number of items discarded.
        """
        with self._cond:
            taken_hi = max(
                [self._done_upto] + list(self._pending_done.values())
            )
            if produced < taken_hi:
                raise ServiceError(
                    f"pool {self.name}: cannot roll back to {produced}; items "
                    f"up to {taken_hi} were already consumed"
                )
            # Parked out-of-order segments describe production beyond the
            # frontier; a rollback invalidates that future, so they are
            # re-produced rather than replayed from stale buffers.  A
            # segment that merely *straddles* the rollback point
            # (seg_lo < produced < seg_lo + len) is just as stale past
            # ``produced``, so only segments entirely below it survive.
            self._pending_segments = {
                seg_lo: seg
                for seg_lo, seg in self._pending_segments.items()
                if seg_lo + seg[0].shape[0] <= produced
            }
            if produced >= self._produced:
                return 0
            dropped = self._produced - produced
            # The column buffers need no physical shrink: the next
            # append overwrites from the new produced offset.
            self._produced = produced
            if self.needs_refill():
                self.refill.set()
            self._cond.notify_all()
            return dropped

    # -- prefill / waiting --------------------------------------------------
    def raise_watermarks(self, low: int = None, high: int = None) -> None:
        """Raise (never lower) the refill watermarks; used by prefill.

        Raising ``low`` to a planned demand makes the service keep that
        many items produced ahead of all reservations -- the
        preprocessing-phase contract.
        """
        with self._cond:
            if low is not None:
                self.low_watermark = max(self.low_watermark, low)
            if high is not None:
                self.high_watermark = max(
                    self.high_watermark, high, self.low_watermark
                )
            if self.needs_refill():
                self.refill.set()

    @property
    def watermarks(self) -> tuple:
        """(low, high) refill watermarks, e.g. to snapshot before a
        one-shot prefill raises them."""
        return (self.low_watermark, self.high_watermark)

    def set_watermarks(self, low: int, high: int = None) -> None:
        """Set (possibly LOWERING) the refill watermarks.

        The inverse of :meth:`raise_watermarks`: a one-shot
        preprocessing plan restores the pre-plan watermarks after its
        targets are met, so the steady-state service does not keep
        refilling to a demand that was consumed once and is gone.
        """
        with self._cond:
            self.low_watermark = low
            self.high_watermark = max(low, high if high is not None else low)
            if self.needs_refill():
                self.refill.set()

    def raise_produce_target(self, produced: int) -> None:
        """Ask production for an absolute produced-count floor.

        Unlike a watermark (a *level*: produced ahead of reservations,
        so consumer draws re-trigger refills forever), a produce target
        is an absolute position in the production stream: once
        ``self.produced`` reaches it, it is inert.  The pipelined
        preprocessing planner uses this to schedule exactly one layer's
        demand without leaving steady-state refill pressure behind.
        Never lowers an existing target.
        """
        with self._cond:
            if produced > self._produce_target:
                self._produce_target = produced
            if self.needs_refill():
                self.refill.set()

    def _note_stall(self, start: float, what: str) -> None:
        """Record a wait that actually blocked: a retroactive
        ``pool.wait`` span plus a duration sample for the stall
        histogram.  Called on success AND on timeout/close, so the
        timeline shows the waits that failed too."""
        dur = time.monotonic() - start
        if self.stall_observer is not None:
            self.stall_observer(self.name, dur * 1e3)
        tr = self.tracer
        if tr.enabled:
            end = tr.now()
            tr.complete(
                "pool.wait", end - dur, end, cat="stall", pool=self.name, what=what
            )

    def _wait(self, pred, timeout: float, what: str) -> None:
        if timeout is None:
            timeout = DEFAULT_WAIT_TIMEOUT_S
        deadline = time.monotonic() + timeout
        start = time.monotonic()
        waited = False
        try:
            with self._cond:
                while not pred() and not self._closed:
                    waited = True
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise PoolTimeout(
                            f"pool {self.name}: timed out waiting for {what} "
                            f"(produced {self._produced}, reserved {self._reserved})",
                            pool=self.name,
                            what=what,
                        )
                    if self.failure_probe is not None:
                        self.failure_probe()
                    self.refill.set()
                    self._cond.wait(min(remaining, 0.2))
                if not pred():
                    raise PoolClosed(
                        f"pool {self.name} closed while waiting for {what}",
                        pool=self.name,
                    )
        finally:
            if waited:
                self._note_stall(start, what)

    def wait_level(self, target: int, timeout: float = None) -> None:
        """Block until ``level`` (produced ahead of reserved) >= target."""
        self._wait(
            lambda: self._produced - self._reserved >= target, timeout,
            f"level {target}",
        )

    def wait_produced(self, target: int, timeout: float = None) -> None:
        """Block until the absolute produced count reaches ``target``."""
        self._wait(lambda: self._produced >= target, timeout, f"produced {target}")

    def wait_available(self, count: int, timeout: float = None) -> None:
        """Block until ``count`` items beyond everything already taken
        are produced.

        The follower-side prefill wait: a follower never reserves (its
        offsets arrive from the leader), so ``level`` cannot express
        "produced ahead" there -- but items already *taken* are known,
        and fresh production must clear them.  Measured from the call,
        so repeated prefills after consumption wait for new items
        instead of being satisfied by historical production.
        """
        with self._lock:
            base = self.stats.items_drawn
        self._wait(
            lambda: self._produced - base >= count, timeout,
            f"{count} fresh items",
        )

    # -- consumer side ------------------------------------------------------
    def reserve(self, n: int) -> int:
        """Claim the next range; returns its absolute start offset."""
        with self._lock:
            lo = self._reserved
            self._reserved += n
            if self.needs_refill():
                self.refill.set()
            return lo

    def try_reserve_produced(self, n: int) -> int:
        """Reserve only if the range is already fully produced, else None.

        The service worker uses this for internal consumption (triple /
        ROT production) so it never blocks itself waiting for extends it
        is the only one able to run.
        """
        with self._lock:
            if self._produced - self._reserved < n:
                return None
            lo = self._reserved
            self._reserved += n
            if self.needs_refill():
                self.refill.set()
            return lo

    def take_columns(self, lo: int, n: int, timeout: float = None) -> tuple:
        """Block until ``[lo, lo+n)`` is produced, then return its columns.

        A take of an already-produced range never waits (and never
        probes), so existing stock stays drawable after a close or while
        the service is degraded -- only waits for *future* production
        are subject to the liveness probe and the bounded timeout.
        """
        if timeout is None:
            timeout = DEFAULT_WAIT_TIMEOUT_S
        deadline = time.monotonic() + timeout
        start = time.monotonic()
        stalled = False
        try:
            with self._cond:
                while self._produced < lo + n and not self._closed:
                    stalled = True
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.stats.stall_time_s += time.monotonic() - start
                        raise PoolTimeout(
                            f"pool {self.name}: timed out waiting for "
                            f"[{lo}, {lo + n}) (produced {self._produced})",
                            pool=self.name,
                            what=f"[{lo}, {lo + n})",
                        )
                    if self.failure_probe is not None:
                        self.failure_probe()
                    self.refill.set()
                    self._cond.wait(timeout=min(remaining, 0.2))
                if self._produced < lo + n:  # closed before the range arrived
                    raise PoolClosed(
                        f"pool {self.name} closed while waiting for "
                        f"[{lo}, {lo + n})",
                        pool=self.name,
                    )
                if lo < self._base:
                    raise ServiceError(
                        f"pool {self.name}: range [{lo}, {lo + n}) already trimmed"
                    )
                sl = slice(lo - self._base, lo - self._base + n)
                out = tuple(col[sl].copy() for col in self._columns)
                self._mark_done(lo, lo + n)
                self.stats.draws += 1
                self.stats.items_drawn += n
                if stalled:
                    self.stats.stalled_draws += 1
                    self.stats.stall_time_s += time.monotonic() - start
                return out
        finally:
            if stalled:
                self._note_stall(start, f"take [{lo}, {lo + n})")

    def _mark_done(self, lo: int, hi: int) -> None:
        """Advance the contiguous-done frontier; trim old buffer prefix."""
        self._pending_done[lo] = hi
        while self._done_upto in self._pending_done:
            self._done_upto = self._pending_done.pop(self._done_upto)
        cut = self._done_upto - self._base
        if cut >= self._trim_chunk:
            self._columns = [col[cut:] for col in self._columns]
            self._base = self._done_upto

    def close(self) -> None:
        """Wake all blocked takers with an error (service shutdown)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()


class SenderCotPool(CorrelationPool):
    """This party's sender-role COTs (holds the direction's Delta)."""

    def __init__(self, name: str, delta: np.ndarray, **kwargs):
        super().__init__(name, n_columns=1, **kwargs)
        self.delta = delta

    def append_batch(self, batch: CotSenderBatch) -> None:
        self.append_columns((batch.z,))

    def take_batch(self, lo: int, n: int, timeout: float = None) -> CotSenderBatch:
        (z,) = self.take_columns(lo, n, timeout)
        return CotSenderBatch(self.delta, z)


class ReceiverCotPool(CorrelationPool):
    """This party's receiver-role COTs (choice bits + blocks)."""

    def __init__(self, name: str, **kwargs):
        super().__init__(name, n_columns=2, **kwargs)

    def append_batch(self, batch: CotReceiverBatch) -> None:
        self.append_columns((batch.x, batch.y))

    def take_batch(self, lo: int, n: int, timeout: float = None) -> CotReceiverBatch:
        x, y = self.take_columns(lo, n, timeout)
        return CotReceiverBatch(x, y)


class RotSenderPool(CorrelationPool):
    """Random-OT sender pairs (m0, m1) from the Figure 2 conversion."""

    def __init__(self, name: str, **kwargs):
        super().__init__(name, n_columns=2, **kwargs)

    def take_pairs(self, lo: int, n: int, timeout: float = None) -> tuple:
        return self.take_columns(lo, n, timeout)


class RotReceiverPool(CorrelationPool):
    """Random-OT receiver view (choice bit, chosen message)."""

    def __init__(self, name: str, **kwargs):
        super().__init__(name, n_columns=2, **kwargs)

    def take_pairs(self, lo: int, n: int, timeout: float = None) -> tuple:
        return self.take_columns(lo, n, timeout)


class TriplePool(CorrelationPool):
    """Beaver bit-triple shares (a, b, c)."""

    def __init__(self, name: str, **kwargs):
        super().__init__(name, n_columns=3, **kwargs)

    def take_triples(self, lo: int, n: int, timeout: float = None):
        from repro.mpc.triples import BitTriples

        a, b, c = self.take_columns(lo, n, timeout)
        return BitTriples(a, b, c)


class RingTriplePool(CorrelationPool):
    """Arithmetic (mod 2^bits) Beaver-triple shares (a, b, c)."""

    def __init__(self, name: str, bits: int, **kwargs):
        super().__init__(name, n_columns=3, **kwargs)
        self.bits = bits

    def take_triples(self, lo: int, n: int, timeout: float = None):
        from repro.mpc.triples import RingTriples

        a, b, c = self.take_columns(lo, n, timeout)
        return RingTriples(a, b, c, self.bits)


class TruncPairPool(CorrelationPool):
    """Fixed-point truncation pairs (r, r >> frac) for one frac width.

    One pool item is one pair of mod-2^bits shares; pools are keyed by
    the fractional width (``tprc/{frac}``) because a pair only rescales
    by its own shift amount, while ``bits`` is fixed service-wide like
    every other arithmetic pool.  Same absolute-index reserve/take and
    watermark-refill semantics as RTRI/MTRI; the service's ``TPRC``
    opcode produces batches from forward-direction COTs plus pooled bit
    triples (the two millionaires' comparisons inside generation).
    """

    def __init__(self, name: str, bits: int, frac_bits: int, **kwargs):
        super().__init__(name, n_columns=2, **kwargs)
        self.bits = bits
        self.frac_bits = frac_bits

    @staticmethod
    def key_for(frac_bits: int) -> str:
        return f"tprc/{frac_bits}"

    @property
    def cots_per_item(self) -> int:
        """Forward COTs one pair consumes -- the canonical count from
        :func:`repro.mpc.truncation.trunc_pair_cots`, shared with the
        generator so the scheduler's reservations cannot drift."""
        from repro.mpc.truncation import trunc_pair_cots

        return trunc_pair_cots(self.bits, self.frac_bits)

    @property
    def triples_per_item(self) -> int:
        from repro.mpc.truncation import trunc_pair_bit_triples

        return trunc_pair_bit_triples(self.bits, self.frac_bits)

    def take_pairs(self, lo: int, n: int, timeout: float = None):
        from repro.mpc.truncation import TruncPairs

        r, s = self.take_columns(lo, n, timeout)
        return TruncPairs(r, s, self.bits, self.frac_bits)


class MatrixTriplePool(CorrelationPool):
    """Shape-keyed matrix Beaver triples for one fixed (m, k, n).

    One pool item is one whole triple (A, B, C = A@B), stored as three
    flattened row-columns, so the absolute-index reserve/take semantics
    and watermark refill work unchanged: ``reserve(1)`` claims the next
    triple of this shape, the service produces ``deficit`` more.  The
    preprocessing planner keys its matrix-triple demand by the same
    :meth:`key_for` string.
    """

    def __init__(self, name: str, m: int, k: int, n: int, bits: int, **kwargs):
        super().__init__(name, n_columns=3, **kwargs)
        self.m, self.k, self.n = m, k, n
        self.bits = bits

    @staticmethod
    def key_for(m: int, k: int, n: int) -> str:
        return f"mtri/{m}x{k}x{n}"

    @property
    def cots_per_item(self) -> int:
        """COTs one triple of this shape consumes -- the canonical
        :func:`repro.mpc.matmul.matmul_cots` count, so the scheduler's
        reservations can never drift from what the generator takes."""
        from repro.mpc.matmul import MatmulDims, matmul_cots

        return matmul_cots(MatmulDims(self.m, self.k, self.n), self.bits)

    def append_triple(self, triple) -> None:
        self.append_columns(
            (
                triple.a.reshape(1, self.m * self.k),
                triple.b.reshape(1, self.k * self.n),
                triple.c.reshape(1, self.m * self.n),
            )
        )

    def take_triple(self, lo: int, timeout: float = None):
        from repro.mpc.triples import MatrixTriples

        a, b, c = self.take_columns(lo, 1, timeout)
        return MatrixTriples(
            a.reshape(self.m, self.k),
            b.reshape(self.k, self.n),
            c.reshape(self.m, self.n),
            self.bits,
        )
