"""PKC base oblivious transfer (the OTE "Init" phase).

Implements the simplest-OT flavour of Chou-Orlandi over a Schnorr
group: one group element from the sender, one per choice from the
receiver, and hashed Diffie-Hellman values as message keys.  PCG-style
OTE consumes a few hundred of these once, then extends them forever
(Section 2.3), which is why the paper's Figure 1(b) shows "Init" as a
fixed cost.

This module also provides :func:`base_cot`, the delta-correlated
variant the Ferret setup needs: the sender's two messages are
``(r, r XOR Delta)``, giving the receiver a COT ``(b, r XOR b*Delta)``.

Two wire schedules produce identical outputs:

* **batched** (default): the receiver sends *one* message carrying all
  n group elements and the sender answers with one payload -- two big
  messages total, so a whole Ferret setup costs O(1) round trips
  instead of O(n) messages (the per-element modexps remain, they are
  the irreducible PKC cost).
* **sequential** (``batched=False``): the original per-OT element
  messages, kept as a reference oracle.
"""

from __future__ import annotations

import numpy as np

from repro.crypto import blocks
from repro.crypto.aes import AES128
from repro.crypto.group import DEFAULT_GROUP, SchnorrGroup
from repro.errors import ProtocolError
from repro.ot.channel import Channel


def _mask(key16: bytes, message: np.ndarray, index: int) -> np.ndarray:
    """One-time mask a single block with a key derived from DH + index."""
    pad = AES128(key16).encrypt_blocks(blocks.single(index, 0x6261736F74))
    return blocks.xor(message, pad)


def _sender_payload_for(
    group: SchnorrGroup,
    a: int,
    big_a_inv_a: int,
    b_elem: int,
    messages0: np.ndarray,
    messages1: np.ndarray,
    i: int,
) -> bytes:
    """Masked ciphertext pair for one receiver element (both schedules)."""
    if not 1 < b_elem < group.p - 1:
        raise ProtocolError("receiver sent a degenerate group element")
    b_to_a = group.exp(b_elem, a)
    # If B = g^b * A^c then B^a * A^{-ac} = g^{ab}: key_c is the DH value.
    key0 = group.hash_to_key(b_to_a, b"|0")
    key1 = group.hash_to_key(group.mul(b_to_a, big_a_inv_a), b"|1")
    return blocks.to_bytes(_mask(key0, messages0[i : i + 1], i)) + blocks.to_bytes(
        _mask(key1, messages1[i : i + 1], i)
    )


def base_ot_send(
    channel: Channel,
    messages0: np.ndarray,
    messages1: np.ndarray,
    group: SchnorrGroup = DEFAULT_GROUP,
    batched: bool = True,
) -> None:
    """Sender side: transfer one of (messages0[i], messages1[i]) per i.

    Args:
        channel: duplex channel to the receiver.
        messages0: (n, 2) blocks, the "0" messages.
        messages1: (n, 2) blocks, the "1" messages.
        batched: receive all n group elements in one message (default)
            instead of one message per OT; both sides must agree.
    """
    blocks.require_blocks(messages0, "messages0")
    blocks.require_blocks(messages1, "messages1")
    if messages0.shape != messages1.shape:
        raise ProtocolError("message arrays must have identical shape")
    n = messages0.shape[0]
    a = group.random_scalar()
    big_a = group.gexp(a)
    channel.send_int(n)
    channel.send_bytes(group.element_bytes(big_a))
    big_a_inv_a = group.exp(group.inv(big_a), a)  # A^{-a}, reused per OT
    width = len(group.element_bytes(big_a))
    payload = bytearray()
    if batched:
        blob = channel.recv_bytes()
        if len(blob) != n * width:
            raise ProtocolError(
                f"batched element blob has {len(blob)} bytes, expected {n * width}"
            )
        for i in range(n):
            b_elem = int.from_bytes(blob[i * width : (i + 1) * width], "big")
            payload += _sender_payload_for(
                group, a, big_a_inv_a, b_elem, messages0, messages1, i
            )
    else:
        for i in range(n):
            b_elem = int.from_bytes(channel.recv_bytes(), "big")
            payload += _sender_payload_for(
                group, a, big_a_inv_a, b_elem, messages0, messages1, i
            )
    channel.send_bytes(bytes(payload))


def base_ot_receive(
    channel: Channel,
    choices: np.ndarray,
    group: SchnorrGroup = DEFAULT_GROUP,
    batched: bool = True,
) -> np.ndarray:
    """Receiver side: obtain messages[choices[i]][i] for each i."""
    choices = np.asarray(choices, dtype=np.uint8)
    n_sender = channel.recv_int()
    if n_sender != choices.shape[0]:
        raise ProtocolError(
            f"sender offers {n_sender} OTs but receiver has {choices.shape[0]} choices"
        )
    big_a = int.from_bytes(channel.recv_bytes(), "big")
    if not 1 < big_a < group.p - 1:
        raise ProtocolError("sender sent a degenerate group element")
    keys = []
    elems = bytearray()
    for i in range(choices.shape[0]):
        b = group.random_scalar()
        b_elem = group.gexp(b)
        if choices[i]:
            b_elem = group.mul(b_elem, big_a)
        if batched:
            elems += group.element_bytes(b_elem)
        else:
            channel.send_bytes(group.element_bytes(b_elem))
        keys.append(group.hash_to_key(group.exp(big_a, b), b"|%d" % choices[i]))
    if batched:
        channel.send_bytes(bytes(elems))
    payload = channel.recv_bytes()
    out = blocks.zeros(choices.shape[0])
    for i, key in enumerate(keys):
        offset = i * 32 + int(choices[i]) * 16
        cipher = blocks.from_bytes(payload[offset : offset + 16])
        out[i : i + 1] = _mask(key, cipher, i)
    return out


def base_cot_send(
    channel: Channel,
    n: int,
    delta: np.ndarray,
    rng: np.random.Generator,
    group: SchnorrGroup = DEFAULT_GROUP,
    batched: bool = True,
) -> np.ndarray:
    """Delta-correlated base OTs, sender side: returns r (n blocks).

    The receiver obtains ``r XOR b*Delta`` for its choice bits ``b``; the
    pair of sides therefore holds genuine COT correlations, exactly what
    the Ferret setup consumes.
    """
    r = blocks.random_blocks(n, rng)
    base_ot_send(channel, r, blocks.xor(r, delta), group=group, batched=batched)
    return r


def base_cot_receive(
    channel: Channel,
    choices: np.ndarray,
    group: SchnorrGroup = DEFAULT_GROUP,
    batched: bool = True,
) -> np.ndarray:
    """Delta-correlated base OTs, receiver side: returns r XOR b*Delta."""
    return base_ot_receive(channel, choices, group=group, batched=batched)
