"""Retry/backoff policy shared by the fault-tolerant transport layers.

One :class:`RetryPolicy` parameterizes every "try again" loop in the
runtime -- the :class:`repro.ot.reconnect.ReconnectingChannel` redial
loop (capped exponential backoff + deterministic jitter) and the
provisioning worker's sliced blocking receives
(:class:`RetryingChannel`), which re-check liveness between attempts so
a silent peer death fails fast instead of burning a full timeout.

Jitter is drawn from a seeded generator so a given policy produces the
same backoff sequence every run -- chaos tests stay reproducible.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ChannelTimeout
from repro.obs.trace import NULL_TRACER
from repro.ot.channel import Channel


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds for one class of retried operation.

    ``attempts``/``backoff_s``/``backoff_factor``/``max_backoff_s``
    shape the redial loop: up to ``attempts`` tries per outage, sleeping
    an exponentially growing (capped) backoff between them.
    ``deadline_s`` is the total budget for the whole retried operation
    -- attempts stop once it is spent even if the attempt count is not.
    ``attempt_timeout_s`` is the slice width for retried blocking
    receives (how often liveness is re-checked while waiting).
    ``jitter`` spreads each backoff by up to that fraction, seeded, so
    two reconnecting endpoints do not redial in lockstep yet every run
    replays the same schedule.
    """

    attempts: int = 8
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    deadline_s: float = 30.0
    attempt_timeout_s: float = 0.5
    jitter: float = 0.25
    seed: int = 0x5E77

    def backoffs(self):
        """Yield the jittered sleep before each retry (attempt 2, 3, ...)."""
        rng = np.random.default_rng(self.seed)
        delay = self.backoff_s
        for _ in range(max(0, self.attempts - 1)):
            spread = 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
            yield max(0.0, delay * spread)
            delay = min(delay * self.backoff_factor, self.max_backoff_s)

    def run(self, fn, retry_on: tuple, desc: str, on_retry=None):
        """Call ``fn`` until it succeeds, an unlisted error escapes, or
        the attempt/deadline budget is spent (re-raising the last
        listed error).  ``on_retry(attempt, exc)`` observes each retry.
        """
        deadline = time.monotonic() + self.deadline_s
        backoffs = self.backoffs()
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except retry_on as exc:
                pause = next(backoffs, None)
                if pause is None or time.monotonic() + pause > deadline:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                time.sleep(pause)


class RetryingChannel(Channel):
    """Wraps a channel so blocking receives are sliced and probed.

    Each ``recv_bytes`` waits in ``policy.attempt_timeout_s`` slices,
    invoking ``probe()`` between slices -- the provisioning worker's
    hook to notice a stop request, a dead mux pump, or a degraded link
    *while* waiting, instead of after a full opaque timeout.  A recv
    that exhausts its total budget raises :class:`ChannelTimeout`
    annotated with the number of retried slices.

    Sends pass straight through (they never block on the peer), and
    ``stats`` aliases the wrapped channel's so per-tag mux attribution
    is unchanged.
    """

    def __init__(self, base: Channel, policy: RetryPolicy, probe=None,
                 default_timeout: float = None):
        self.base = base
        self.policy = policy
        self.probe = probe
        self.default_timeout = default_timeout
        self.stats = base.stats
        self.stalled_recvs = 0  # recvs that needed more than one slice
        self.retry_slices = 0  # extra slices waited across all recvs
        self._lock = threading.Lock()
        self.tracer = NULL_TRACER

    def send_bytes(self, data: bytes) -> None:
        self.base.send_bytes(data)

    def recv_bytes(self, timeout: float = None) -> bytes:
        total = timeout if timeout is not None else self.default_timeout
        deadline = None if total is None else time.monotonic() + total
        slices = 0
        while True:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise ChannelTimeout(
                    f"recv timed out after {slices} retried slices "
                    f"({total:.1f}s total); is the peer still running?"
                )
            slice_s = self.policy.attempt_timeout_s
            if remaining is not None:
                slice_s = min(slice_s, remaining)
            try:
                data = self.base.recv_bytes(timeout=slice_s)
            except ChannelTimeout:
                slices += 1
                with self._lock:
                    self.retry_slices += 1
                    if slices == 1:
                        self.stalled_recvs += 1
                        if self.tracer.enabled:
                            tag = getattr(self.base, "tag", "?")
                            self.tracer.instant(
                                "recv.stall", cat="retry", tag=tag
                            )
                if self.probe is not None:
                    self.probe()
                continue
            return data
