"""Derandomized 1-out-of-2 OT from COT correlations, and the Figure 2
conversion from COT to standard (random-message) OT.

Given a COT correlation -- sender ``(z, z XOR Delta)``, receiver
``(b, y = z XOR b*Delta)`` -- a chosen-message OT follows the standard
beaver-style derandomization:

1. receiver sends the correction ``d = b XOR c`` for actual choice c;
2. sender sends ``e_j = m_j XOR H(z XOR (j XOR d) * Delta)``;
3. receiver outputs ``e_c XOR H(y)`` (the pads line up because
   ``z XOR (c XOR d)*Delta = z XOR b*Delta = y``).

The CRHF breaks the Delta-correlation so one batch of COTs can safely
pad many messages (tweaked by the OT index).  Callers that run many
logically-distinct OT instances inside one batched call (e.g. the
level-synchronous multi-tree SPCOT, one OT per tree) pass an explicit
per-element ``tweaks`` vector instead of the contiguous
``tweak_base + i`` default, so each instance keeps the tweak it would
have used sequentially.
"""

from __future__ import annotations

import numpy as np

from repro.crypto import blocks
from repro.crypto.crhf import DEFAULT_CRHF, Crhf
from repro.errors import ProtocolError
from repro.ot.channel import Channel
from repro.ot.cot import CotReceiverBatch, CotSenderBatch


def _resolve_tweaks(tweaks, tweak_base: int, n: int) -> np.ndarray:
    """Per-element tweak vector: explicit array, or ``tweak_base + i``."""
    if tweaks is None:
        return np.arange(tweak_base, tweak_base + n, dtype=np.uint64)
    tweaks = np.asarray(tweaks, dtype=np.uint64)
    if tweaks.shape != (n,):
        raise ProtocolError(f"tweak vector must have shape ({n},), got {tweaks.shape}")
    return tweaks


def ot_send_from_cot(
    channel: Channel,
    cots: CotSenderBatch,
    messages0: np.ndarray,
    messages1: np.ndarray,
    tweak_base: int = 0,
    crhf: Crhf = DEFAULT_CRHF,
    tweaks: np.ndarray = None,
) -> None:
    """Chosen-message OT sender using one COT per message pair."""
    blocks.require_blocks(messages0, "messages0")
    blocks.require_blocks(messages1, "messages1")
    n = messages0.shape[0]
    if len(cots) != n or messages1.shape[0] != n:
        raise ProtocolError("COT batch and message arrays must have equal length")
    d = channel.recv_bits()
    if d.shape[0] != n:
        raise ProtocolError("correction bit vector has the wrong length")
    tweaks = _resolve_tweaks(tweaks, tweak_base, n)
    # Pad for logical message j is H(z XOR (j XOR d) * Delta).
    pad_d0 = crhf.hash_tweaked(
        blocks.xor(cots.z, blocks.mul_bit(cots.delta, d)), tweaks
    )
    pad_d1 = crhf.hash_tweaked(
        blocks.xor(cots.z, blocks.mul_bit(cots.delta, d ^ 1)), tweaks
    )
    channel.send_blocks(blocks.xor(messages0, pad_d0))
    channel.send_blocks(blocks.xor(messages1, pad_d1))


def ot_receive_from_cot(
    channel: Channel,
    cots: CotReceiverBatch,
    choices: np.ndarray,
    tweak_base: int = 0,
    crhf: Crhf = DEFAULT_CRHF,
    tweaks: np.ndarray = None,
) -> np.ndarray:
    """Chosen-message OT receiver; returns messages[choices[i]] per i."""
    choices = np.asarray(choices, dtype=np.uint8)
    n = choices.shape[0]
    if len(cots) != n:
        raise ProtocolError("COT batch and choice vector must have equal length")
    channel.send_bits(cots.x ^ choices)
    e0 = channel.recv_blocks()
    e1 = channel.recv_blocks()
    tweaks = _resolve_tweaks(tweaks, tweak_base, n)
    pads = crhf.hash_tweaked(cots.y, tweaks)
    chosen = np.where(choices[:, None].astype(bool), e1, e0)
    return blocks.xor(chosen, pads)


def cot_to_random_ot_sender(
    cots: CotSenderBatch, tweak_base: int = 0, crhf: Crhf = DEFAULT_CRHF
) -> tuple:
    """Figure 2 pre-processing, sender: (H(z), H(z XOR Delta)) pairs."""
    tweaks = np.arange(tweak_base, tweak_base + len(cots), dtype=np.uint64)
    m0, m1 = cots.message_pairs()
    return crhf.hash_tweaked(m0, tweaks), crhf.hash_tweaked(m1, tweaks)


def cot_to_random_ot_receiver(
    cots: CotReceiverBatch, tweak_base: int = 0, crhf: Crhf = DEFAULT_CRHF
) -> tuple:
    """Figure 2 pre-processing, receiver: (b, H(y)) pairs."""
    tweaks = np.arange(tweak_base, tweak_base + len(cots), dtype=np.uint64)
    return cots.x.copy(), crhf.hash_tweaked(cots.y, tweaks)
