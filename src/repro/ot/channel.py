"""Two-party channels with communication accounting.

Every protocol in this package speaks through a :class:`Channel`, so
bytes and round trips are counted exactly -- that is what backs the
communication columns of Figure 7(b) and Figure 16.  The default
implementation is an in-memory duplex pair; parties run in two threads
via :func:`run_pair` so genuinely interactive protocols (SPCOT's
level-by-level OTs) execute in their natural shape.

A round is counted IKNP-style: the channel's round counter increments
each time a party sends after having received (i.e. each direction
flip), which matches how MPC papers report round complexity.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.crypto import blocks
from repro.errors import ChannelError


@dataclass
class ChannelStats:
    """Byte / message / round accounting for one endpoint."""

    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    rounds: int = 0
    _last_was_recv: bool = field(default=True, repr=False)

    def record_send(self, n_bytes: int) -> None:
        self.bytes_sent += n_bytes
        self.messages_sent += 1
        if self._last_was_recv:
            self.rounds += 1
            self._last_was_recv = False

    def record_recv(self, n_bytes: int) -> None:
        self.bytes_received += n_bytes
        self._last_was_recv = True

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received


class Channel:
    """Abstract duplex byte channel with accounting helpers."""

    def __init__(self):
        self.stats = ChannelStats()

    # -- raw byte interface -------------------------------------------------
    def send_bytes(self, data: bytes) -> None:
        raise NotImplementedError

    def recv_bytes(self) -> bytes:
        raise NotImplementedError

    # -- typed helpers used by the protocol code ----------------------------
    def send_blocks(self, arr: np.ndarray) -> None:
        """Send a (n, 2) uint64 block array."""
        self.send_bytes(blocks.to_bytes(arr))

    def recv_blocks(self) -> np.ndarray:
        """Receive a block array sent by :meth:`send_blocks`."""
        return blocks.from_bytes(self.recv_bytes())

    def send_bits(self, bits: np.ndarray) -> None:
        """Send a 0/1 uint8 vector, bit-packed, prefixed with its length."""
        bits = np.asarray(bits, dtype=np.uint8)
        header = np.uint64(bits.shape[0]).tobytes()
        self.send_bytes(header + np.packbits(bits, bitorder="little").tobytes())

    def recv_bits(self) -> np.ndarray:
        data = self.recv_bytes()
        n = int(np.frombuffer(data[:8], dtype=np.uint64)[0])
        bits = np.unpackbits(np.frombuffer(data[8:], dtype=np.uint8), bitorder="little")
        return bits[:n].copy()

    def send_int(self, value: int, width: int = 8) -> None:
        """Send a non-negative integer in ``width`` little-endian bytes."""
        self.send_bytes(int(value).to_bytes(width, "little"))

    def recv_int(self, width: int = 8) -> int:
        data = self.recv_bytes()
        if len(data) != width:
            raise ChannelError(
                f"expected a {width}-byte integer, received {len(data)} bytes"
            )
        return int.from_bytes(data, "little")


class LocalChannel(Channel):
    """One endpoint of an in-memory duplex pair (thread-safe)."""

    def __init__(self, inbox: "queue.Queue", outbox: "queue.Queue"):
        super().__init__()
        self._inbox = inbox
        self._outbox = outbox

    @staticmethod
    def pair() -> tuple:
        """Create two connected endpoints (a_to_b, b_to_a)."""
        q_ab: queue.Queue = queue.Queue()
        q_ba: queue.Queue = queue.Queue()
        return LocalChannel(q_ba, q_ab), LocalChannel(q_ab, q_ba)

    def send_bytes(self, data: bytes) -> None:
        self.stats.record_send(len(data))
        self._outbox.put(data)

    def recv_bytes(self, timeout: float = 60.0) -> bytes:
        try:
            data = self._inbox.get(timeout=timeout)
        except queue.Empty as exc:
            raise ChannelError("recv timed out; is the peer still running?") from exc
        self.stats.record_recv(len(data))
        return data


class PartyError(ChannelError):
    """One side of a :func:`run_pair` execution raised; wraps the cause."""


def run_pair(party_a, party_b, timeout: float = 300.0) -> tuple:
    """Run two party callables concurrently over a fresh channel pair.

    Each callable receives its :class:`LocalChannel` endpoint and runs in
    its own thread; returns ``(result_a, result_b)``.  Exceptions on
    either side are re-raised in the caller (wrapped in PartyError) so
    test failures point at the faulting party.
    """
    chan_a, chan_b = LocalChannel.pair()
    results = {}
    errors = {}

    def runner(name, fn, chan):
        try:
            results[name] = fn(chan)
        except BaseException as exc:  # noqa: BLE001 - must cross the thread
            errors[name] = exc

    t_a = threading.Thread(target=runner, args=("a", party_a, chan_a), daemon=True)
    t_b = threading.Thread(target=runner, args=("b", party_b, chan_b), daemon=True)
    t_a.start()
    t_b.start()
    t_a.join(timeout)
    t_b.join(timeout)
    if t_a.is_alive() or t_b.is_alive():
        raise ChannelError("protocol deadlocked (thread still alive after timeout)")
    for name, exc in errors.items():
        raise PartyError(f"party {name!r} failed: {exc!r}") from exc
    return results["a"], results["b"], chan_a.stats, chan_b.stats
