"""Two-party channels with communication accounting.

Every protocol in this package speaks through a :class:`Channel`, so
bytes and round trips are counted exactly -- that is what backs the
communication columns of Figure 7(b) and Figure 16.  Three transports
implement it:

* :class:`LocalChannel` -- an in-memory duplex pair; parties run in two
  threads via :func:`run_pair` so genuinely interactive protocols
  (SPCOT's level-by-level OTs) execute in their natural shape.
* :class:`SocketChannel` -- length-prefixed messages over a real OS
  socket, so the same protocol code runs unchanged between two
  processes (or two machines).
* :class:`repro.runtime.mux.MuxChannel` sub-channels -- tagged logical
  channels multiplexed over either of the above.

A round is counted IKNP-style: the channel's round counter increments
each time a party sends after having received (i.e. each direction
flip), which matches how MPC papers report round complexity.
"""

from __future__ import annotations

import queue
import select
import socket
import struct
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.crypto import blocks
from repro.errors import ChannelClosed, ChannelError, ChannelTimeout


@dataclass
class ChannelStats:
    """Byte / message / round accounting for one endpoint."""

    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    rounds: int = 0
    _last_was_recv: bool = field(default=True, repr=False)

    def record_send(self, n_bytes: int) -> None:
        self.bytes_sent += n_bytes
        self.messages_sent += 1
        if self._last_was_recv:
            self.rounds += 1
            self._last_was_recv = False

    def record_recv(self, n_bytes: int) -> None:
        self.bytes_received += n_bytes
        self._last_was_recv = True

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received

    def as_dict(self) -> dict:
        return {
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "messages_sent": self.messages_sent,
            "rounds": self.rounds,
        }


class Channel:
    """Abstract duplex byte channel with accounting helpers."""

    def __init__(self):
        self.stats = ChannelStats()

    # -- raw byte interface -------------------------------------------------
    def send_bytes(self, data: bytes) -> None:
        raise NotImplementedError

    def recv_bytes(self, timeout: float = None) -> bytes:
        """Blocking receive; ``timeout`` (seconds) overrides the channel
        default, raising :class:`ChannelTimeout` on expiry.  Pollers
        (the mux pump, the service follower loop) rely on every
        transport honouring this parameter."""
        raise NotImplementedError

    # -- typed helpers used by the protocol code ----------------------------
    def send_blocks(self, arr: np.ndarray) -> None:
        """Send a (n, 2) uint64 block array."""
        self.send_bytes(blocks.to_bytes(arr))

    def recv_blocks(self) -> np.ndarray:
        """Receive a block array sent by :meth:`send_blocks`."""
        return blocks.from_bytes(self.recv_bytes())

    def send_bits(self, bits: np.ndarray) -> None:
        """Send a 0/1 uint8 vector, bit-packed, prefixed with its length."""
        bits = np.asarray(bits, dtype=np.uint8)
        header = np.uint64(bits.shape[0]).tobytes()
        self.send_bytes(header + np.packbits(bits, bitorder="little").tobytes())

    def recv_bits(self) -> np.ndarray:
        data = self.recv_bytes()
        n = int(np.frombuffer(data[:8], dtype=np.uint64)[0])
        bits = np.unpackbits(np.frombuffer(data[8:], dtype=np.uint8), bitorder="little")
        return bits[:n].copy()

    def send_ring(self, arr: np.ndarray) -> None:
        """Send a uint64 ring-element array (flattened, raw bytes)."""
        self.send_bytes(np.ascontiguousarray(arr, dtype=np.uint64).tobytes())

    def recv_ring(self) -> np.ndarray:
        """Receive a flat uint64 ring-element vector."""
        return np.frombuffer(self.recv_bytes(), dtype=np.uint64).copy()

    def send_int(self, value: int, width: int = 8) -> None:
        """Send a non-negative integer in ``width`` little-endian bytes."""
        self.send_bytes(int(value).to_bytes(width, "little"))

    def recv_int(self, width: int = 8) -> int:
        data = self.recv_bytes()
        if len(data) != width:
            raise ChannelError(
                f"expected a {width}-byte integer, received {len(data)} bytes"
            )
        return int.from_bytes(data, "little")


#: Default blocking-receive timeout; generous enough for CI, short
#: enough that a deadlocked protocol fails loudly.
DEFAULT_RECV_TIMEOUT = 60.0


class LocalChannel(Channel):
    """One endpoint of an in-memory duplex pair (thread-safe).

    ``timeout`` is the default blocking-receive timeout in seconds
    (``None`` waits forever); paper-sized runs and slow CI boxes can
    raise it via :meth:`pair` / :func:`run_pair` instead of dying
    spuriously at the old hardcoded 60 s.
    """

    def __init__(
        self,
        inbox: "queue.Queue",
        outbox: "queue.Queue",
        timeout: float = DEFAULT_RECV_TIMEOUT,
    ):
        super().__init__()
        self._inbox = inbox
        self._outbox = outbox
        self.timeout = timeout

    @staticmethod
    def pair(timeout: float = DEFAULT_RECV_TIMEOUT) -> tuple:
        """Create two connected endpoints (a_to_b, b_to_a)."""
        q_ab: queue.Queue = queue.Queue()
        q_ba: queue.Queue = queue.Queue()
        return LocalChannel(q_ba, q_ab, timeout), LocalChannel(q_ab, q_ba, timeout)

    def send_bytes(self, data: bytes) -> None:
        self.stats.record_send(len(data))
        self._outbox.put(data)

    def recv_bytes(self, timeout: float = None) -> bytes:
        timeout = self.timeout if timeout is None else timeout
        try:
            data = self._inbox.get(timeout=timeout)
        except queue.Empty as exc:
            raise ChannelTimeout("recv timed out; is the peer still running?") from exc
        self.stats.record_recv(len(data))
        return data


class SocketChannel(Channel):
    """Length-prefixed messages over a connected OS socket.

    Framing is a fixed 8-byte little-endian length header followed by
    the payload, preserving the message boundaries every protocol here
    relies on.  Sends are serialized with a lock so multiplexed callers
    (:class:`repro.runtime.mux.MuxChannel`) can share one endpoint.

    The socket stays in blocking mode (sends must never time out
    mid-stream -- a partial ``sendall`` would desynchronize the
    framing); receive timeouts are implemented with ``select`` instead,
    and partially received messages are retained in a buffer across
    timeouts so a polling receiver (the mux pump) can resume cleanly.
    """

    def __init__(self, sock: socket.socket, timeout: float = DEFAULT_RECV_TIMEOUT):
        super().__init__()
        self._sock = sock
        self._sock.settimeout(None)  # blocking; recv waits via select
        self.timeout = timeout
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._rx = bytearray()  # partial-message buffer (survives timeouts)

    # -- constructors -------------------------------------------------------
    @staticmethod
    def pair(timeout: float = DEFAULT_RECV_TIMEOUT) -> tuple:
        """Two connected endpoints over a real OS socketpair."""
        sa, sb = socket.socketpair()
        return SocketChannel(sa, timeout), SocketChannel(sb, timeout)

    @classmethod
    def listen(
        cls, host: str = "127.0.0.1", port: int = 0, timeout: float = DEFAULT_RECV_TIMEOUT
    ) -> "SocketListener":
        """Bind a listener; ``accept()`` yields a connected channel."""
        srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        srv.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        srv.bind((host, port))
        srv.listen(1)
        return SocketListener(srv, timeout)

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        timeout: float = DEFAULT_RECV_TIMEOUT,
        connect_timeout: float = 10.0,
    ) -> "SocketChannel":
        """Connect to a listening peer (used by the second process)."""
        sock = socket.create_connection((host, port), timeout=connect_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return cls(sock, timeout)

    # -- transport ----------------------------------------------------------
    def _fill(self, n: int, deadline: float) -> None:
        """Grow the receive buffer to >= n bytes; buffer survives timeouts.

        A peer that hangs up mid-frame raises :class:`ChannelClosed`
        naming the partial byte count -- never a bare ``struct.error``
        from a short header, and never an indefinite select loop (a
        half-closed socket is readable, so ``recv`` returns ``b""``
        immediately and the loop exits through the EOF branch).
        """
        while len(self._rx) < n:
            try:
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not select.select(
                        [self._sock], [], [], remaining
                    )[0]:
                        raise ChannelTimeout(
                            "socket recv timed out; is the peer still running?"
                        )
                chunk = self._sock.recv(1 << 20)
            except (OSError, ValueError) as exc:  # reset, EBADF, closed fd
                raise ChannelClosed(
                    f"socket receive failed after {len(self._rx)} of {n} "
                    f"frame bytes: {exc}"
                ) from exc
            if not chunk:
                raise ChannelClosed(
                    f"peer closed the connection mid-frame "
                    f"({len(self._rx)} of {n} expected bytes buffered)"
                )
            self._rx += chunk

    def send_bytes(self, data: bytes) -> None:
        with self._send_lock:
            self.stats.record_send(len(data))
            try:
                self._sock.sendall(struct.pack("<Q", len(data)) + data)
            except OSError as exc:
                raise ChannelClosed(f"socket send failed: {exc}") from exc

    def recv_bytes(self, timeout: float = None) -> bytes:
        timeout = self.timeout if timeout is None else timeout
        with self._recv_lock:
            # Deadline starts once this thread's turn begins: waiting on
            # another thread's receive must not eat this one's budget.
            deadline = None if timeout is None else time.monotonic() + timeout
            self._fill(8, deadline)
            (length,) = struct.unpack_from("<Q", self._rx)
            self._fill(8 + length, deadline)
            data = bytes(self._rx[8 : 8 + length])
            del self._rx[: 8 + length]
        self.stats.record_recv(len(data))
        return data

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


class SocketListener:
    """A bound, listening TCP socket that accepts SocketChannels.

    By default ``accept()`` closes the listening socket after the first
    connection (the original one-shot rendezvous).  Reconnecting
    servers pass ``keep_open=True`` so the same bound port keeps
    accepting redials across session epochs.
    """

    def __init__(self, srv: socket.socket, timeout: float):
        self._srv = srv
        self._timeout = timeout

    @property
    def port(self) -> int:
        return self._srv.getsockname()[1]

    def accept(
        self, accept_timeout: float = 30.0, keep_open: bool = False
    ) -> SocketChannel:
        try:
            self._srv.settimeout(accept_timeout)
            conn, _ = self._srv.accept()
        except socket.timeout as exc:
            # Keep the listener open so the caller can retry accept().
            raise ChannelTimeout("no peer connected before the timeout") from exc
        except OSError as exc:  # listener closed under a waiting accept
            raise ChannelClosed(f"listener closed: {exc}") from exc
        if not keep_open:
            self._srv.close()
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return SocketChannel(conn, self._timeout)

    def close(self) -> None:
        self._srv.close()


class PartyError(ChannelError):
    """One side of a :func:`run_pair` execution raised; wraps the cause."""


def run_concurrently(fn_a, fn_b, timeout: float = 300.0) -> tuple:
    """Run two zero-argument party callables in parallel threads.

    Like :func:`run_pair` but for callables already bound to their
    endpoints (service sessions, prefill drivers): returns
    ``(result_a, result_b)``, re-raises either side's exception as
    :class:`PartyError`, and treats a join timeout as a deadlock --
    failures can never be silently swallowed in a worker thread.
    """
    results = {}
    errors = {}

    def runner(name, fn):
        try:
            results[name] = fn()
        except BaseException as exc:  # noqa: BLE001 - must cross the thread
            errors[name] = exc

    t_a = threading.Thread(target=runner, args=("a", fn_a), daemon=True)
    t_b = threading.Thread(target=runner, args=("b", fn_b), daemon=True)
    t_a.start()
    t_b.start()
    t_a.join(timeout)
    t_b.join(timeout)
    for name, exc in errors.items():
        raise PartyError(f"party {name!r} failed: {exc!r}") from exc
    if t_a.is_alive() or t_b.is_alive():
        raise ChannelError("parties deadlocked (thread still alive after timeout)")
    return results.get("a"), results.get("b")


def run_pair(
    party_a, party_b, timeout: float = 300.0, recv_timeout: float = DEFAULT_RECV_TIMEOUT
) -> tuple:
    """Run two party callables concurrently over a fresh channel pair.

    Each callable receives its :class:`LocalChannel` endpoint and runs in
    its own thread; returns ``(result_a, result_b)``.  Exceptions on
    either side are re-raised in the caller (wrapped in PartyError) so
    test failures point at the faulting party.  ``timeout`` bounds the
    whole execution; ``recv_timeout`` is each channel's blocking-receive
    patience (raise both for paper-sized runs).
    """
    chan_a, chan_b = LocalChannel.pair(timeout=recv_timeout)
    results = {}
    errors = {}

    def runner(name, fn, chan):
        try:
            results[name] = fn(chan)
        except BaseException as exc:  # noqa: BLE001 - must cross the thread
            errors[name] = exc

    t_a = threading.Thread(target=runner, args=("a", party_a, chan_a), daemon=True)
    t_b = threading.Thread(target=runner, args=("b", party_b, chan_b), daemon=True)
    t_a.start()
    t_b.start()
    t_a.join(timeout)
    t_b.join(timeout)
    if t_a.is_alive() or t_b.is_alive():
        raise ChannelError("protocol deadlocked (thread still alive after timeout)")
    for name, exc in errors.items():
        raise PartyError(f"party {name!r} failed: {exc!r}") from exc
    return results["a"], results["b"], chan_a.stats, chan_b.stats
