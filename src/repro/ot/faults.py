"""Deterministic fault injection for chaos-testing the runtime.

A :class:`FaultyChannel` wraps any :class:`repro.ot.channel.Channel`
and injects failures -- message delays, receive-timeout bursts,
mid-stream disconnects, truncated frames -- at operation indices fixed
by a seeded :class:`FaultSchedule`.  Every recovery path in the
reconnect/retry stack is therefore testable in-process and in the
chaos benchmark (``benchmarks/bench_faults.py``) with a reproducible
schedule: same seed, same faults, same op indices.

The injected errors are the *real* error types the transports raise
(:class:`ChannelTimeout`, :class:`ChannelClosed`), so recovery code
cannot special-case injection.  Disconnects additionally close the
wrapped transport when it is closeable, so the peer observes a genuine
half-close -- both endpoints exercise their reconnect paths, exactly
as with a real wire fault.  Truncated frames need framing access and
are therefore socket-specific: the injector writes a length header
promising more bytes than it sends, then closes, so the peer's framing
layer sees a mid-frame EOF (and must report the partial byte count,
never a bare parse error).  On non-socket transports a truncation
degrades to a disconnect.
"""

from __future__ import annotations

import struct
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ChannelClosed, ChannelTimeout, ParameterError
from repro.ot.channel import Channel

#: Fault kinds a schedule may carry.
DELAY = "delay"
TIMEOUT = "timeout"
DISCONNECT = "disconnect"
TRUNCATE = "truncate"

_KINDS = (DELAY, TIMEOUT, DISCONNECT, TRUNCATE)
#: Which operation each kind attaches to.
_OP_FOR = {DELAY: "recv", TIMEOUT: "recv", DISCONNECT: "send", TRUNCATE: "send"}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: fire on the ``index``-th ``op`` call."""

    op: str  # "send" | "recv"
    index: int
    kind: str
    seconds: float = 0.0  # delay duration (DELAY only)

    def __post_init__(self):
        if self.op not in ("send", "recv"):
            raise ParameterError(f"fault op must be send/recv, got {self.op!r}")
        if self.kind not in _KINDS:
            raise ParameterError(f"unknown fault kind {self.kind!r}")


class FaultSchedule:
    """A deterministic map from operation index to fault.

    Operation counters live here (not in the channel) so one schedule
    spans an endpoint's whole lifetime *across reconnects*: the dial
    factory wraps every fresh transport in a new :class:`FaultyChannel`
    sharing this schedule, and the op count keeps climbing.
    """

    def __init__(self, events=()):
        self._events: dict = {}
        for ev in events:
            self._events.setdefault((ev.op, ev.index), ev)
        self.counts = {"send": 0, "recv": 0}
        self.injected: list = []  # FaultEvents actually fired, in order
        self._lock = threading.Lock()

    @property
    def events(self) -> tuple:
        return tuple(sorted(self._events.values(), key=lambda e: (e.op, e.index)))

    @classmethod
    def chaos(
        cls,
        seed: int,
        disconnects: int = 1,
        truncates: int = 1,
        timeout_bursts: int = 1,
        burst_len: int = 3,
        delays: int = 2,
        delay_s: float = 0.02,
        window: tuple = (30, 400),
    ) -> "FaultSchedule":
        """The chaos-benchmark schedule: seeded positions for every
        fault class inside ``window`` (an op-index range the workload
        is known to cross mid-prefill).  Timeout bursts occupy
        ``burst_len`` consecutive recv indices each."""
        rng = np.random.default_rng(seed)
        lo, hi = window
        if hi - lo < 8:
            raise ParameterError("chaos window too narrow for distinct events")

        def picks(n, stride=1):
            taken = rng.choice((hi - lo) // stride, size=n, replace=False)
            return sorted(lo + int(v) * stride for v in taken)

        events = []
        for idx in picks(disconnects):
            events.append(FaultEvent("send", idx, DISCONNECT))
        for idx in picks(truncates):
            events.append(FaultEvent("send", idx + 1, TRUNCATE))
        for start in picks(timeout_bursts, stride=max(1, burst_len + 1)):
            for j in range(burst_len):
                events.append(FaultEvent("recv", start + j, TIMEOUT))
        for idx in picks(delays):
            events.append(FaultEvent("recv", idx, DELAY, seconds=delay_s))
        return cls(events)

    def draw(self, op: str):
        """Advance the ``op`` counter; return the fault due now, if any."""
        with self._lock:
            index = self.counts[op]
            self.counts[op] = index + 1
            ev = self._events.pop((op, index), None)
            if ev is not None:
                self.injected.append(ev)
            return ev

    def remaining(self) -> int:
        with self._lock:
            return len(self._events)


@dataclass
class FaultStats:
    """What a FaultyChannel actually injected, by kind."""

    delays: int = 0
    timeouts: int = 0
    disconnects: int = 0
    truncates: int = 0
    delayed_s: float = 0.0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class FaultyChannel(Channel):
    """A transparent wrapper that injects the scheduled faults.

    ``stats`` aliases the wrapped channel's, so accounting (and per-tag
    mux attribution when this sits under a mux) is unchanged.  The
    wrapper is transport-agnostic; only TRUNCATE needs the wrapped
    channel to be a :class:`repro.ot.channel.SocketChannel` (it falls
    back to a plain disconnect elsewhere).
    """

    def __init__(self, base: Channel, schedule: FaultSchedule):
        self.base = base
        self.schedule = schedule
        self.stats = base.stats
        self.fault_stats = FaultStats()

    # -- fault actions -------------------------------------------------------
    def _close_base(self) -> None:
        close = getattr(self.base, "close", None)
        if close is not None:
            close()

    def _disconnect(self, what: str) -> None:
        self.fault_stats.disconnects += 1
        self._close_base()
        raise ChannelClosed(f"injected mid-stream disconnect (on {what})")

    def _truncate(self, data: bytes) -> None:
        sock = getattr(self.base, "_sock", None)
        if sock is None:
            self._disconnect("send (truncate fallback)")
        self.fault_stats.truncates += 1
        cut = max(0, len(data) // 2)
        try:
            # Promise the full frame, deliver half, hang up: the peer's
            # framing layer must surface a mid-frame ChannelClosed.
            sock.sendall(struct.pack("<Q", len(data)) + data[:cut])
        except OSError:
            pass
        self._close_base()
        raise ChannelClosed(f"injected truncated frame ({cut} of {len(data)} bytes sent)")

    # -- channel interface ---------------------------------------------------
    def send_bytes(self, data: bytes) -> None:
        ev = self.schedule.draw("send")
        if ev is not None:
            if ev.kind == DISCONNECT:
                self._disconnect("send")
            elif ev.kind == TRUNCATE:
                self._truncate(data)
            elif ev.kind == DELAY:
                self.fault_stats.delays += 1
                self.fault_stats.delayed_s += ev.seconds
                time.sleep(ev.seconds)
        self.base.send_bytes(data)

    def recv_bytes(self, timeout: float = None) -> bytes:
        ev = self.schedule.draw("recv")
        if ev is not None:
            if ev.kind == TIMEOUT:
                # Consumes nothing: a retried receive later still finds
                # the peer's message, which is what makes timeout
                # injection recoverable by construction.
                self.fault_stats.timeouts += 1
                raise ChannelTimeout("injected receive timeout")
            if ev.kind == DISCONNECT:
                self._disconnect("recv")
            if ev.kind == DELAY:
                self.fault_stats.delays += 1
                self.fault_stats.delayed_s += ev.seconds
                time.sleep(ev.seconds)
        return self.base.recv_bytes(timeout=timeout)

    def close(self) -> None:
        self._close_base()
