"""Transparent reconnect/resume over an unreliable transport.

:class:`ReconnectingChannel` sits between a fragile byte transport
(typically :class:`repro.ot.channel.SocketChannel`, possibly wrapped in
a :class:`repro.ot.faults.FaultyChannel`) and everything above it (the
mux, the correlation service).  It turns transport faults within the
retry budget into invisible hiccups:

* Every application frame is journaled with a monotonically increasing
  sequence number before it touches the wire (``D`` frames).  The
  journal is bounded; the peer acknowledges progress (``A`` frames)
  every ``ack_every`` data frames so acked prefixes are trimmed.
* **Sends never raise transient errors.**  If the transport is down,
  the frame stays journaled and goes out during replay after the next
  successful handshake.  Only journal overflow raises -- at that point
  the outage has outlived the buffering budget and the caller must see
  it.
* A failed receive triggers the reconnect loop: redial under the
  :class:`repro.ot.retry.RetryPolicy` (capped exponential backoff with
  seeded jitter), then a resume handshake (``H`` frames) exchanging the
  session epoch, each side's next-expected receive sequence, and an
  opaque application state dict (the mux contributes per-tag receive
  counts, the service per-pool absolute stream positions -- the
  deterministic-resume state the pool accounting already maintains).
  Each side then replays journaled frames the peer never received.
  Receive-side sequence numbers make replay idempotent: duplicates are
  dropped, gaps are a hard :class:`ChannelError` (they mean the peer's
  journal was trimmed past our position -- resume is impossible).
* Epochs count successful handshakes.  Epoch 1 is the initial dial;
  every recovery increments it, and ``reconnect_events`` records one
  ``(epoch, outage_s, replayed_frames)`` entry per recovery for the
  chaos benchmark's recovery-latency numbers.

The layer is symmetric except for dialing: exactly one side must own
``dial`` (client redials; a server passes a factory that re-accepts on
a kept-open listener).
"""

from __future__ import annotations

import json
import struct
import threading
import time
from collections import OrderedDict

from repro.errors import ChannelClosed, ChannelError, ChannelTimeout
from repro.obs.trace import NULL_TRACER
from repro.ot.channel import Channel
from repro.ot.retry import RetryPolicy

_SEQ = struct.Struct("<Q")

#: Frame discriminators on the wire.
_DATA = b"D"
_ACK = b"A"
_HELLO = b"H"


class ReconnectingChannel(Channel):
    """A channel that survives transport loss via journal + replay.

    Parameters
    ----------
    dial:
        Zero-argument callable returning a fresh connected transport
        :class:`Channel`.  Called for the initial connection and for
        every redial.
    policy:
        :class:`RetryPolicy` bounding each recovery (attempts, capped
        exponential backoff, total deadline).
    journal_limit:
        Maximum unacked data frames buffered.  Sending past it raises
        :class:`ChannelClosed` -- the outage outlived the budget.
    ack_every:
        Acknowledge after this many received data frames, trimming the
        peer's journal.
    state_provider:
        Optional zero-argument callable returning a JSON-serializable
        dict shipped in the resume handshake (mux receive counts, pool
        stream positions).  The peer's latest dict is kept in
        ``peer_state`` for diagnostics and consistency checks.
    """

    def __init__(
        self,
        dial,
        policy: RetryPolicy = None,
        journal_limit: int = 4096,
        ack_every: int = 32,
        state_provider=None,
    ):
        super().__init__()
        self._dial = dial
        self.policy = policy if policy is not None else RetryPolicy()
        self.journal_limit = int(journal_limit)
        self.ack_every = int(ack_every)
        self.state_provider = state_provider

        self._transport: Channel = None
        self._transport_ok = False
        self._closed = False

        # Send side: next seq to assign, journal of unacked frames.
        self._tx_seq = 0
        self._journal: "OrderedDict[int, bytes]" = OrderedDict()
        self._send_lock = threading.RLock()

        # Recv side: next seq expected, frames received since last ack.
        self._rx_seq = 0
        self._unacked_rx = 0
        self._recv_lock = threading.Lock()

        # Single-flight reconnect.
        self._reconnect_lock = threading.Lock()

        self.epoch = 0
        self.reconnects = 0
        self.replayed_frames = 0
        self.replayed_bytes = 0
        self.reconnect_events: list = []  # dicts: epoch, outage_s, replayed
        self.peer_state: dict = {}
        self.tracer = NULL_TRACER

        self._connect(initial=True)

    @property
    def journal_depth(self) -> int:
        """Unacked data frames currently buffered for replay."""
        return len(self._journal)

    # -- connection management ----------------------------------------------
    def _mark_dead(self, transport) -> None:
        """Note that ``transport`` failed; close it so the peer sees EOF."""
        if transport is self._transport:
            self._transport_ok = False
        close = getattr(transport, "close", None)
        if close is not None:
            try:
                close()
            except Exception:
                pass

    def _connect(self, initial: bool = False) -> None:
        """(Re)dial + handshake + replay, under the retry policy.

        Called with ``_reconnect_lock`` held (or from ``__init__``).
        """
        started = time.monotonic()
        replay_before = self.replayed_frames
        attempts = [0]

        def attempt():
            attempts[0] += 1
            if not initial and self.tracer.enabled:
                self.tracer.instant(
                    "redial.attempt", cat="reconnect",
                    attempt=attempts[0], epoch=self.epoch,
                )
            transport = self._dial()
            try:
                peer_rx = self._handshake(transport)
                # Replay and transport swap happen in ONE locked section
                # of the SAME retried attempt: a frame journaled by a
                # concurrent send during recovery either lands in the
                # replay below or is transmitted by its sender after the
                # swap -- never silently stranded with a stale seq --
                # and a transport that dies DURING replay (faults can
                # strike the fresh wire too) re-enters the retry loop
                # instead of surfacing mid-recovery.
                with self._send_lock:
                    self._replay_from(transport, peer_rx)
                    self._transport = transport
                    self._transport_ok = True
            except Exception:
                self._mark_dead(transport)
                raise

        try:
            self.policy.run(
                attempt,
                retry_on=(ChannelError, OSError, ConnectionError),
                desc="reconnect",
            )
        except (ChannelError, OSError, ConnectionError) as exc:
            raise ChannelClosed(
                f"reconnect failed after retry budget "
                f"({self.policy.attempts} attempts / "
                f"{self.policy.deadline_s:.0f}s): {exc}"
            ) from exc

        self.epoch += 1
        if not initial:
            self.reconnects += 1
            replayed = self.replayed_frames - replay_before
            self.reconnect_events.append(
                {
                    "epoch": self.epoch,
                    "outage_s": time.monotonic() - started,
                    "replayed": replayed,
                }
            )
            tr = self.tracer
            if tr.enabled:
                # The resume handshake IS the transport-level resync
                # barrier: both sides agree on next-expected sequence
                # numbers before any new frame flows.
                tr.instant(
                    "resync.barrier", cat="reconnect",
                    epoch=self.epoch, replayed=replayed,
                )
                end = tr.now()
                tr.complete(
                    "reconnect.recover",
                    end - (time.monotonic() - started),
                    end,
                    cat="reconnect",
                    epoch=self.epoch,
                    attempts=attempts[0],
                    replayed=replayed,
                )

    def _handshake(self, transport: Channel) -> int:
        """Exchange HELLO frames; return the peer's next-expected seq."""
        state = self.state_provider() if self.state_provider is not None else {}
        blob = json.dumps(state, sort_keys=True).encode()
        hello = _HELLO + _SEQ.pack(self.epoch + 1) + _SEQ.pack(self._rx_seq) + blob
        transport.send_bytes(hello)

        frame = transport.recv_bytes(timeout=self.policy.deadline_s)
        if not frame or frame[:1] != _HELLO or len(frame) < 17:
            raise ChannelError(
                f"resume handshake expected HELLO, got "
                f"{frame[:1]!r} ({len(frame)} bytes)"
            )
        peer_rx = _SEQ.unpack_from(frame, 9)[0]
        if frame[17:]:
            self.peer_state = json.loads(frame[17:].decode())
        return peer_rx

    def _replay_from(self, transport: Channel, peer_rx: int) -> None:
        """Trim acked frames and resend everything the peer is missing.

        The peer expects frame ``peer_rx`` next; everything journaled at
        or past it is replayed in order.  If our journal no longer holds
        ``peer_rx`` the peer acked frames it now claims it never saw --
        resume is impossible.  Caller holds ``_send_lock``.
        """
        self._journal = OrderedDict(
            (seq, fr) for seq, fr in self._journal.items() if seq >= peer_rx
        )
        if self._journal and min(self._journal) > peer_rx:
            raise ChannelClosed(
                f"peer expects frame {peer_rx} but the journal starts at "
                f"{min(self._journal)}; resume impossible (acked frames lost)"
            )
        for seq, fr in self._journal.items():
            transport.send_bytes(fr)
            self.replayed_frames += 1
            self.replayed_bytes += len(fr)

    def _reconnect(self) -> None:
        """Single-flight recovery; every caller returns once it is done."""
        with self._reconnect_lock:
            if self._closed:
                raise ChannelClosed("channel closed")
            if self._transport_ok:
                return  # another thread already recovered
            self._connect()

    # -- channel interface ---------------------------------------------------
    def send_bytes(self, data: bytes) -> None:
        """Journal then best-effort send; transient failures never raise."""
        if self._closed:
            raise ChannelClosed("channel closed")
        with self._send_lock:
            if len(self._journal) >= self.journal_limit:
                raise ChannelClosed(
                    f"send journal full ({self.journal_limit} unacked frames); "
                    f"the link has been down too long to buffer more"
                )
            seq = self._tx_seq
            self._tx_seq += 1
            frame = _DATA + _SEQ.pack(seq) + data
            self._journal[seq] = frame
            self.stats.record_send(len(data))
            if self._transport_ok:
                transport = self._transport
                try:
                    transport.send_bytes(frame)
                except ChannelError:
                    # Stay journaled; the next recv's reconnect replays it.
                    self._mark_dead(transport)

    def _send_ack(self) -> None:
        with self._send_lock:
            if not self._transport_ok:
                return
            transport = self._transport
            try:
                transport.send_bytes(_ACK + _SEQ.pack(self._rx_seq))
            except ChannelError:
                self._mark_dead(transport)
            else:
                self._unacked_rx = 0

    def recv_bytes(self, timeout: float = None) -> bytes:
        """Receive the next in-order data frame, healing the link as needed.

        ``timeout`` bounds each wait on a live transport; outages spend
        the retry policy's budget instead (so a long recovery is not
        charged against a short poll timeout).
        """
        if self._closed:
            raise ChannelClosed("channel closed")
        with self._recv_lock:
            return self._recv_locked(timeout)

    def _recv_locked(self, timeout: float) -> bytes:
        while True:
            if not self._transport_ok:
                self._reconnect()
            transport = self._transport
            try:
                frame = transport.recv_bytes(timeout=timeout)
            except ChannelTimeout:
                raise  # peer is alive but slow -- caller's business
            except ChannelError:
                if self._closed:
                    raise ChannelClosed("channel closed") from None
                self._mark_dead(transport)
                self._reconnect()
                continue

            kind = frame[:1]
            if kind == _ACK:
                acked = _SEQ.unpack_from(frame, 1)[0]
                with self._send_lock:
                    for seq in [s for s in self._journal if s < acked]:
                        del self._journal[seq]
                continue
            if kind == _HELLO:
                # Peer re-handshook on a transport we still hold (can
                # only happen when the link itself survived): honor the
                # resume request in place.
                peer_rx = _SEQ.unpack_from(frame, 9)[0]
                if frame[17:]:
                    self.peer_state = json.loads(frame[17:].decode())
                with self._send_lock:
                    self._replay_from(transport, peer_rx)
                if self.tracer.enabled:
                    self.tracer.instant(
                        "resync.barrier", cat="reconnect",
                        epoch=self.epoch, in_place=1,
                    )
                continue
            if kind != _DATA or len(frame) < 9:
                raise ChannelError(
                    f"unknown frame discriminator {kind!r} ({len(frame)} bytes)"
                )

            seq = _SEQ.unpack_from(frame, 1)[0]
            if seq < self._rx_seq:
                continue  # replayed duplicate -- already delivered
            if seq > self._rx_seq:
                raise ChannelError(
                    f"sequence gap: expected frame {self._rx_seq}, received "
                    f"{seq}; the peer journal was trimmed past our position"
                )
            self._rx_seq += 1
            self._unacked_rx += 1
            if self._unacked_rx >= self.ack_every:
                self._send_ack()
            data = frame[9:]
            self.stats.record_recv(len(data))
            return data

    def close(self) -> None:
        self._closed = True
        transport = self._transport
        self._transport_ok = False
        if transport is not None:
            close = getattr(transport, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:
                    pass
