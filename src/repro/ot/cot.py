"""Correlated OT (COT) correlation containers.

A batch of COT correlations with global key ``Delta`` (Figure 2):

* sender holds ``z_i`` (and ``Delta``), implicitly the pair
  ``(z_i, z_i XOR Delta)``;
* receiver holds a choice bit ``x_i`` and ``y_i = z_i XOR x_i * Delta``.

These containers are deliberately dumb: they hold numpy arrays, verify
the correlation invariant, and support the pool bookkeeping Ferret
needs (reserve some correlations to bootstrap the next iteration,
consume others for SPCOT's per-level OTs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crypto import blocks
from repro.errors import ParameterError, ProtocolError


@dataclass
class CotSenderBatch:
    """Sender's view of n COT correlations: blocks z and the global Delta."""

    delta: np.ndarray  # (1, 2)
    z: np.ndarray  # (n, 2)

    def __post_init__(self):
        blocks.require_blocks(self.delta, "delta")
        blocks.require_blocks(self.z, "z")
        if self.delta.shape[0] != 1:
            raise ParameterError("delta must be a single block")

    def __len__(self) -> int:
        return self.z.shape[0]

    def message_pairs(self) -> tuple:
        """The implicit OT message pairs (z, z XOR Delta)."""
        return self.z, blocks.xor(self.z, self.delta)

    def split(self, n_head: int) -> tuple:
        """Split into (first n_head, remainder) batches."""
        if n_head > len(self):
            raise ParameterError(f"cannot split {n_head} from a batch of {len(self)}")
        return (
            CotSenderBatch(self.delta, self.z[:n_head].copy()),
            CotSenderBatch(self.delta, self.z[n_head:].copy()),
        )


@dataclass
class CotReceiverBatch:
    """Receiver's view: choice bits x and blocks y = z XOR x * Delta."""

    x: np.ndarray  # (n,) uint8 choice bits
    y: np.ndarray  # (n, 2)

    def __post_init__(self):
        self.x = np.asarray(self.x, dtype=np.uint8)
        blocks.require_blocks(self.y, "y")
        if self.x.shape[0] != self.y.shape[0]:
            raise ParameterError("choice-bit and block counts disagree")

    def __len__(self) -> int:
        return self.x.shape[0]

    def split(self, n_head: int) -> tuple:
        if n_head > len(self):
            raise ParameterError(f"cannot split {n_head} from a batch of {len(self)}")
        return (
            CotReceiverBatch(self.x[:n_head].copy(), self.y[:n_head].copy()),
            CotReceiverBatch(self.x[n_head:].copy(), self.y[n_head:].copy()),
        )


def verify_cot(sender: CotSenderBatch, receiver: CotReceiverBatch) -> bool:
    """Check the COT invariant z = y XOR x * Delta on every correlation."""
    if len(sender) != len(receiver):
        return False
    expected = blocks.xor(receiver.y, blocks.mul_bit(sender.delta, receiver.x))
    return bool(np.all(blocks.equal(sender.z, expected)))


@dataclass
class CotPool:
    """A consumable pool of COT correlations for one party.

    Ferret's iterations carve base correlations out of previous outputs;
    this pool tracks the cursor and refuses over-consumption loudly.
    Exactly one of (sender, receiver) roles is populated.
    """

    sender: CotSenderBatch = None
    receiver: CotReceiverBatch = None
    _cursor: int = field(default=0, repr=False)

    def __post_init__(self):
        if (self.sender is None) == (self.receiver is None):
            raise ParameterError("pool must hold exactly one of sender/receiver batch")

    @property
    def size(self) -> int:
        batch = self.sender if self.sender is not None else self.receiver
        return len(batch)

    @property
    def remaining(self) -> int:
        return self.size - self._cursor

    def take_sender(self, n: int) -> CotSenderBatch:
        """Consume n sender correlations."""
        if self.sender is None:
            raise ProtocolError("this pool holds receiver correlations")
        if n > self.remaining:
            raise ProtocolError(f"pool exhausted: want {n}, have {self.remaining}")
        out = CotSenderBatch(self.sender.delta, self.sender.z[self._cursor : self._cursor + n])
        self._cursor += n
        return out

    def take_receiver(self, n: int) -> CotReceiverBatch:
        """Consume n receiver correlations."""
        if self.receiver is None:
            raise ProtocolError("this pool holds sender correlations")
        if n > self.remaining:
            raise ProtocolError(f"pool exhausted: want {n}, have {self.remaining}")
        sl = slice(self._cursor, self._cursor + n)
        out = CotReceiverBatch(self.receiver.x[sl], self.receiver.y[sl])
        self._cursor += n
        return out
