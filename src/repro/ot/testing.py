"""Dealer-style correlation fabrication for tests and benchmarks.

The base-OT protocol (public-key operations) dominates small runs, so
tests that exercise protocols *on top of* COTs fabricate the correlation
directly: sample Delta and z, derive the receiver view.  This is the
genuine COT relation -- ``y = z XOR x*Delta`` -- just without the
key-exchange transcript, so everything downstream (Gilboa, OT
derandomization, triple generation) behaves identically.  Kept in one
place so a change to the COT layout cannot strand a stale copy in some
test file.
"""

from __future__ import annotations

import numpy as np

from repro.crypto import blocks
from repro.ot.cot import CotReceiverBatch, CotSenderBatch


def fake_cots(n: int, seed: int = 1) -> tuple:
    """(CotSenderBatch, CotReceiverBatch) of n dealt COT correlations."""
    gen = np.random.default_rng(seed)
    delta = blocks.random_blocks(1, gen)
    z = blocks.random_blocks(n, gen)
    x = gen.integers(0, 2, n).astype(np.uint8)
    y = blocks.xor(z, blocks.mul_bit(delta, x))
    return CotSenderBatch(delta, z), CotReceiverBatch(x, y)
