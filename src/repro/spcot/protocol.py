"""The SPCOT sub-protocol (Single-Point Correlated OT, Section 2.3.1),
including the paper's m-ary variant with (m-1)-out-of-m OT (Section 4.2).

One SPCOT execution gives the sender a vector ``w`` of ``l`` blocks and
the receiver a secret position ``alpha`` plus a vector ``v`` such that

    w = v XOR u * Delta,        u = one-hot(alpha)

Protocol shape (binary case = Ferret's):

1. sender expands a random seed into a GGM tree;
2. per level, the even/odd sums are offered through a 1-out-of-2 OT
   (derandomized from one pooled base COT); the receiver selects the
   complement of alpha's bit;
3. the receiver reconstructs every leaf except alpha;
4. the sender reveals ``psi = Delta XOR (XOR of all leaves)`` so the
   receiver can finish with ``v[alpha] = psi XOR (XOR of known leaves)``.

For m-ary trees the per-level transfer needs the receiver to learn all
slot sums except one: an (m-1)-out-of-m OT.  Following Section 4.2 we
build it from an m-leaf binary GGM "key tree": its punctured transfer
(consuming log2(m) base COTs) hands the receiver every key-tree leaf
``q_j`` except ``q_{alpha_i}``, and the sender broadcasts the sums
masked as ``K_j XOR H(q_j)``.

:func:`spcot_send_batch` / :func:`spcot_receive_batch` run ``t``
same-depth instances *level-synchronously* (the software analogue of
Figure 8's inter-tree parallelism): per level, all ``t`` derandomized
OTs collapse into one batched OT over ``t`` pooled COTs and **one**
channel message per flow direction, so the round count is O(depth)
instead of O(t * depth), while the GGM work becomes t-wide vectorized
kernels.  The per-instance tweak schedule is identical to the
sequential path's (per-tree stride + per-level stride), carried as
explicit tweak vectors through the batched OT.
"""

from __future__ import annotations

import numpy as np

from repro.crypto import blocks
from repro.crypto.crhf import DEFAULT_CRHF, Crhf
from repro.crypto.prg import ChaChaTreePrg, TreePrg
from repro.errors import ParameterError
from repro.ot.channel import Channel
from repro.ot.cot import CotPool
from repro.ot.ot_from_cot import ot_receive_from_cot, ot_send_from_cot
from repro.spcot.ggm import (
    BatchedPuncturedReconstructor,
    BatchedTreeLevels,
    PuncturedReconstructor,
    alpha_digits,
    batched_expand_full,
    batched_level_sums,
    expand_full,
    level_sums,
)
from repro.utils.bitops import log_base

#: Binary PRG shared by both parties for the (m-1)-out-of-m key trees.
#: Deterministic module-level construction keeps sender/receiver in sync.
_KEY_TREE_PRG = ChaChaTreePrg(arity=2, rounds=8, salt=b"ironman-key-tree")

#: Tweak-space stride reserved per SPCOT level (OT pads + masked sums).
_LEVEL_TWEAK_STRIDE = 64


def cots_needed(n_leaves: int, arity: int) -> int:
    """Base COTs one SPCOT execution consumes: log2 of the leaf count.

    Binary levels use one COT each; an m-ary level's key tree uses
    log2(m) -- the total is log2(l) either way (Section 4.2: sublinear
    OT-correlation consumption is preserved).
    """
    depth = log_base(n_leaves, arity)
    bits_per_level = log_base(arity, 2)
    return depth * bits_per_level


def _key_tree_depth(arity: int) -> int:
    depth = log_base(arity, 2)
    if depth < 1:
        raise ParameterError("m-ary SPCOT needs arity to be a power of two >= 2")
    return depth


def spcot_send(
    channel: Channel,
    pool: CotPool,
    delta: np.ndarray,
    prg: TreePrg,
    depth: int,
    rng: np.random.Generator,
    tweak_base: int = 0,
    crhf: Crhf = DEFAULT_CRHF,
) -> np.ndarray:
    """Run SPCOT as the sender; returns the leaf vector ``w`` (l blocks)."""
    m = prg.arity
    seed = blocks.random_blocks(1, rng)
    levels = expand_full(prg, seed, depth)
    for level_idx in range(1, depth + 1):
        sums = level_sums(levels[level_idx], m)
        tweak = tweak_base + level_idx * _LEVEL_TWEAK_STRIDE
        if m == 2:
            cot = pool.take_sender(1)
            ot_send_from_cot(channel, cot, sums[0:1], sums[1:2], tweak_base=tweak, crhf=crhf)
        else:
            kt_depth = _key_tree_depth(m)
            kt_seed = blocks.random_blocks(1, rng)
            kt_levels = expand_full(_KEY_TREE_PRG, kt_seed, kt_depth)
            for kt_level in range(1, kt_depth + 1):
                kt_sums = level_sums(kt_levels[kt_level], 2)
                cot = pool.take_sender(1)
                ot_send_from_cot(
                    channel,
                    cot,
                    kt_sums[0:1],
                    kt_sums[1:2],
                    tweak_base=tweak + kt_level,
                    crhf=crhf,
                )
            keys = kt_levels[-1]  # (m, 2) one-time keys q_j
            mask_tweaks = np.arange(m, dtype=np.uint64) + np.uint64(tweak + 32)
            channel.send_blocks(blocks.xor(sums, crhf.hash_tweaked(keys, mask_tweaks)))
    leaves = levels[-1]
    psi = blocks.xor(delta, blocks.xor_reduce(leaves))
    channel.send_blocks(psi)
    return leaves


def spcot_receive(
    channel: Channel,
    pool: CotPool,
    alpha: int,
    prg: TreePrg,
    depth: int,
    tweak_base: int = 0,
    crhf: Crhf = DEFAULT_CRHF,
) -> np.ndarray:
    """Run SPCOT as the receiver; returns ``v`` with the alpha-slot fixed up.

    The returned vector satisfies ``w = v XOR one_hot(alpha) * Delta``
    against the sender's ``w``.
    """
    m = prg.arity
    digits = alpha_digits(alpha, m, depth)
    recon = PuncturedReconstructor(prg, depth, digits)
    for level_idx in range(1, depth + 1):
        digit = digits[level_idx - 1]
        tweak = tweak_base + level_idx * _LEVEL_TWEAK_STRIDE
        if m == 2:
            cot = pool.take_receiver(1)
            choice = np.array([1 - digit], dtype=np.uint8)
            known = ot_receive_from_cot(channel, cot, choice, tweak_base=tweak, crhf=crhf)
            recon.feed_level({1 - digit: known})
        else:
            kt_depth = _key_tree_depth(m)
            kt_digits = alpha_digits(digit, 2, kt_depth)
            kt_recon = PuncturedReconstructor(_KEY_TREE_PRG, kt_depth, kt_digits)
            for kt_level in range(1, kt_depth + 1):
                kt_digit = kt_digits[kt_level - 1]
                cot = pool.take_receiver(1)
                choice = np.array([1 - kt_digit], dtype=np.uint8)
                known = ot_receive_from_cot(
                    channel, cot, choice, tweak_base=tweak + kt_level, crhf=crhf
                )
                kt_recon.feed_level({1 - kt_digit: known})
            keys, _ = kt_recon.leaves()
            masked = channel.recv_blocks()  # (m, 2)
            mask_tweaks = np.arange(m, dtype=np.uint64) + np.uint64(tweak + 32)
            unmasked = blocks.xor(masked, crhf.hash_tweaked(keys, mask_tweaks))
            recon.feed_level({j: unmasked[j] for j in range(m) if j != digit})
    v, hole = recon.leaves()
    psi = channel.recv_blocks()
    # v[hole] is currently zero, so the reduce covers exactly the known leaves.
    v[hole] = blocks.xor(psi, blocks.xor_reduce(v)).reshape(2)
    return v


# ---------------------------------------------------------------------------
# Batched level-synchronous multi-tree SPCOT
# ---------------------------------------------------------------------------


def _resolve_tweak_bases(tweak_bases, n_trees: int) -> np.ndarray:
    if tweak_bases is None:
        return np.zeros(n_trees, dtype=np.uint64)
    tweak_bases = np.asarray(tweak_bases, dtype=np.uint64)
    if tweak_bases.shape != (n_trees,):
        raise ParameterError(
            f"tweak_bases must have shape ({n_trees},), got {tweak_bases.shape}"
        )
    return tweak_bases


def _batch_seeds(
    rng: np.random.Generator, n_trees: int, depth: int, arity: int
) -> tuple:
    """Draw (main seeds, per-level key-tree seeds) for a batch of trees.

    Randomness is consumed in the exact order the sequential path uses
    (tree-major: main seed, then one key-tree seed per level), so a
    batched run over the same ``rng`` state produces bit-identical trees.
    """
    if arity == 2:
        return blocks.random_blocks(n_trees, rng), None
    raw = blocks.random_blocks(n_trees * (1 + depth), rng).reshape(n_trees, 1 + depth, 2)
    return np.ascontiguousarray(raw[:, 0]), raw


def spcot_send_batch(
    channel: Channel,
    pool: CotPool,
    delta: np.ndarray,
    prg: TreePrg,
    depth: int,
    n_trees: int,
    rng: np.random.Generator,
    tweak_bases: np.ndarray = None,
    crhf: Crhf = DEFAULT_CRHF,
) -> np.ndarray:
    """Run ``n_trees`` same-depth SPCOT instances level-synchronously.

    Per level this takes ``n_trees`` pooled COTs at once and runs one
    batched derandomized OT covering every tree, ending with a single
    batched psi broadcast -- O(depth) channel rounds total.  Returns the
    per-tree leaf matrix ``(n_trees, arity**depth, 2)``.
    """
    m = prg.arity
    t = n_trees
    if t < 1:
        raise ParameterError("need at least one tree")
    tweak_bases = _resolve_tweak_bases(tweak_bases, t)
    seeds, kt_seeds = _batch_seeds(rng, t, depth, m)
    trees = BatchedTreeLevels(prg, seeds, depth)
    for level_idx in range(1, depth + 1):
        sums = trees.sums(level_idx)  # (t, m, 2)
        level_tweaks = tweak_bases + np.uint64(level_idx * _LEVEL_TWEAK_STRIDE)
        if m == 2:
            cot = pool.take_sender(t)
            ot_send_from_cot(
                channel, cot, sums[:, 0], sums[:, 1], tweaks=level_tweaks, crhf=crhf
            )
        else:
            kt_depth = _key_tree_depth(m)
            kt_levels = batched_expand_full(
                _KEY_TREE_PRG, kt_seeds[:, level_idx], kt_depth
            )
            for kt_level in range(1, kt_depth + 1):
                kt_sums = batched_level_sums(kt_levels[kt_level], 2, t)
                cot = pool.take_sender(t)
                ot_send_from_cot(
                    channel,
                    cot,
                    kt_sums[:, 0],
                    kt_sums[:, 1],
                    tweaks=level_tweaks + np.uint64(kt_level),
                    crhf=crhf,
                )
            keys = kt_levels[-1]  # (t * m, 2) one-time keys q_j, tree-major
            mask_tweaks = np.repeat(level_tweaks + np.uint64(32), m) + np.tile(
                np.arange(m, dtype=np.uint64), t
            )
            channel.send_blocks(
                blocks.xor(sums.reshape(t * m, 2), crhf.hash_tweaked(keys, mask_tweaks))
            )
    leaves = trees.leaves()  # (t, l, 2)
    psi = blocks.xor(delta, np.bitwise_xor.reduce(leaves, axis=1))
    channel.send_blocks(psi)
    return leaves


def spcot_receive_batch(
    channel: Channel,
    pool: CotPool,
    alphas: np.ndarray,
    prg: TreePrg,
    depth: int,
    tweak_bases: np.ndarray = None,
    crhf: Crhf = DEFAULT_CRHF,
) -> tuple:
    """Receiver side of :func:`spcot_send_batch`.

    Returns ``(v, holes)``: the per-tree vectors ``(t, arity**depth, 2)``
    with each tree's alpha slot fixed up, and the per-tree hole indices.
    """
    m = prg.arity
    alphas = np.asarray(alphas, dtype=np.int64)
    t = alphas.shape[0]
    if t < 1:
        raise ParameterError("need at least one tree")
    tweak_bases = _resolve_tweak_bases(tweak_bases, t)
    digits = np.array([alpha_digits(int(a), m, depth) for a in alphas], dtype=np.int64)
    recon = BatchedPuncturedReconstructor(prg, depth, digits)
    tree_ids = np.arange(t)
    for level_idx in range(1, depth + 1):
        digit = digits[:, level_idx - 1]
        level_tweaks = tweak_bases + np.uint64(level_idx * _LEVEL_TWEAK_STRIDE)
        if m == 2:
            cot = pool.take_receiver(t)
            choices = (1 - digit).astype(np.uint8)
            known = ot_receive_from_cot(
                channel, cot, choices, tweaks=level_tweaks, crhf=crhf
            )
            sums = np.zeros((t, 2, 2), dtype=blocks.BLOCK_DTYPE)
            sums[tree_ids, 1 - digit] = known
            recon.feed_level(sums)
        else:
            kt_depth = _key_tree_depth(m)
            kt_digits = np.array(
                [alpha_digits(int(d), 2, kt_depth) for d in digit], dtype=np.int64
            )
            kt_recon = BatchedPuncturedReconstructor(_KEY_TREE_PRG, kt_depth, kt_digits)
            for kt_level in range(1, kt_depth + 1):
                kt_digit = kt_digits[:, kt_level - 1]
                cot = pool.take_receiver(t)
                choices = (1 - kt_digit).astype(np.uint8)
                known = ot_receive_from_cot(
                    channel,
                    cot,
                    choices,
                    tweaks=level_tweaks + np.uint64(kt_level),
                    crhf=crhf,
                )
                kt_sums = np.zeros((t, 2, 2), dtype=blocks.BLOCK_DTYPE)
                kt_sums[tree_ids, 1 - kt_digit] = known
                kt_recon.feed_level(kt_sums)
            keys, _ = kt_recon.leaves()  # (t, m, 2); hole keys are zero
            masked = channel.recv_blocks()  # (t * m, 2)
            if masked.shape[0] != t * m:
                raise ParameterError("masked sums message has the wrong length")
            mask_tweaks = np.repeat(level_tweaks + np.uint64(32), m) + np.tile(
                np.arange(m, dtype=np.uint64), t
            )
            unmasked = blocks.xor(
                masked, crhf.hash_tweaked(keys.reshape(t * m, 2), mask_tweaks)
            ).reshape(t, m, 2)
            # Each tree's punctured slot unmasks with a zero key and is
            # garbage; the reconstructor ignores that entry by contract.
            recon.feed_level(unmasked)
    v, holes = recon.leaves()
    psi = channel.recv_blocks()  # (t, 2)
    if psi.shape[0] != t:
        raise ParameterError("psi broadcast has the wrong length")
    # Hole slots are zero, so the per-tree reduce covers exactly the
    # known leaves of each tree.
    known_xor = np.bitwise_xor.reduce(v, axis=1)
    v[tree_ids, holes] = blocks.xor(psi, known_xor)
    return v, holes
