"""Multi-point COT: t parallel SPCOT instances with regular noise.

Ferret's LPN step needs a length-n one-hot-union vector with exactly t
set positions, distributed regularly: position ``i`` of block ``b``
(blocks partition [0, n) evenly) carries the b-th SPCOT's puncture.
Each block is covered by one GGM tree whose leaf count is the smallest
power of the arity that fits the block; surplus leaves are dropped by
both parties identically.

The t trees are independent, which is exactly the inter-tree
parallelism Ironman's hybrid expansion schedule exploits (Figure 8).
The default execution path exploits it too: same-depth trees are
grouped into contiguous runs (regular noise makes the block sizes
differ by at most one, so there are at most two runs per execution)
and each run goes through the **batched level-synchronous** SPCOT --
all trees of the run advance one GGM level per interaction, with one
channel message per level instead of one per tree per level.  That
drops the per-execution round count from O(t * depth) to O(depth)
while leaving outputs and PRG core-call counts bit-for-bit identical
to the sequential reference path (``batched=False``), which is kept
as an oracle for equivalence tests.
"""

from __future__ import annotations

import numpy as np

from repro.crypto import blocks
from repro.crypto.crhf import DEFAULT_CRHF, Crhf
from repro.crypto.prg import TreePrg
from repro.errors import ParameterError
from repro.ot.channel import Channel
from repro.ot.cot import CotPool
from repro.spcot.protocol import (
    cots_needed,
    spcot_receive,
    spcot_receive_batch,
    spcot_send,
    spcot_send_batch,
)
from repro.utils.bitops import next_power

#: Tweak-space stride reserved per tree (holds all of its level tweaks).
_TREE_TWEAK_STRIDE = 1 << 20


def block_sizes(n: int, t: int) -> list:
    """Regular-noise block sizes: an even split of [0, n) into t blocks."""
    if t < 1 or n < t:
        raise ParameterError(f"need n >= t >= 1, got n={n}, t={t}")
    base = n // t
    rem = n % t
    return [base + 1 if b < rem else base for b in range(t)]


def tree_depth_for(block_size: int, arity: int) -> int:
    """GGM depth so that arity**depth >= block_size (>= 1 level)."""
    leaves = max(next_power(block_size, arity), arity)
    depth = 0
    while arity**depth < leaves:
        depth += 1
    return max(depth, 1)


def mpcot_cots_needed(n: int, t: int, arity: int) -> int:
    """Total base COTs consumed by one multi-point execution."""
    return sum(
        cots_needed(arity ** tree_depth_for(size, arity), arity)
        for size in block_sizes(n, t)
    )


def sample_alphas(n: int, t: int, rng: np.random.Generator) -> np.ndarray:
    """Sample one puncture position per regular block (local offsets)."""
    return np.array(
        [rng.integers(0, size) for size in block_sizes(n, t)], dtype=np.int64
    )


def depth_runs(sizes: list, arity: int) -> list:
    """Group trees into contiguous runs of equal GGM depth.

    Returns ``(first_tree, n_trees, depth)`` triples.  Regular noise
    splits [0, n) into blocks whose sizes differ by at most one, with
    the larger blocks first, so there are at most two runs -- the
    batched path handles one whole run per level-synchronous sweep.
    """
    runs = []
    for idx, size in enumerate(sizes):
        depth = tree_depth_for(size, arity)
        if runs and runs[-1][2] == depth:
            runs[-1][1] += 1
        else:
            runs.append([idx, 1, depth])
    return [tuple(r) for r in runs]


def _batched_schedule(sizes: list, arity: int) -> tuple:
    """Shared sender/receiver plan for the batched path.

    Returns ``(offsets, runs)`` where ``offsets[i]`` is tree i's start
    in the length-n output and ``runs`` holds ``(first, count, depth,
    tweak_bases)`` per same-depth run.  Both parties must derive the
    identical per-tree tweak schedule from this single place -- a
    desync would silently garble the OT pads.
    """
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    runs = [
        (
            first,
            count,
            depth,
            np.arange(first, first + count, dtype=np.uint64)
            * np.uint64(_TREE_TWEAK_STRIDE),
        )
        for first, count, depth in depth_runs(sizes, arity)
    ]
    return offsets, runs


def mpcot_send(
    channel: Channel,
    pool: CotPool,
    delta: np.ndarray,
    prg: TreePrg,
    n: int,
    t: int,
    rng: np.random.Generator,
    crhf: Crhf = DEFAULT_CRHF,
    batched: bool = True,
) -> np.ndarray:
    """Sender side: returns the length-n block vector ``w``.

    ``batched=True`` (the default) runs each same-depth run of trees
    level-synchronously; ``batched=False`` is the sequential reference.
    Both produce bit-identical outputs from the same ``rng`` state.
    """
    sizes = block_sizes(n, t)
    out = blocks.zeros(n)
    if batched:
        offsets, runs = _batched_schedule(sizes, prg.arity)
        for first, count, depth, tweak_bases in runs:
            leaves = spcot_send_batch(
                channel, pool, delta, prg, depth, count, rng,
                tweak_bases=tweak_bases, crhf=crhf,
            )
            for i in range(count):
                size = sizes[first + i]
                start = offsets[first + i]
                out[start : start + size] = leaves[i, :size]
        return out
    offset = 0
    for tree_idx, size in enumerate(sizes):
        depth = tree_depth_for(size, prg.arity)
        leaves = spcot_send(
            channel,
            pool,
            delta,
            prg,
            depth,
            rng,
            tweak_base=tree_idx * _TREE_TWEAK_STRIDE,
            crhf=crhf,
        )
        out[offset : offset + size] = leaves[:size]
        offset += size
    return out


def mpcot_receive(
    channel: Channel,
    pool: CotPool,
    alphas: np.ndarray,
    prg: TreePrg,
    n: int,
    t: int,
    crhf: Crhf = DEFAULT_CRHF,
    batched: bool = True,
) -> tuple:
    """Receiver side: returns (u, v) with u one-hot per block.

    ``u`` is the length-n 0/1 noise vector (t set bits at the global
    puncture positions); ``v`` the length-n block vector satisfying
    ``w = v XOR u * Delta``.  ``batched`` must match the sender's.
    """
    sizes = block_sizes(n, t)
    alphas = np.asarray(alphas, dtype=np.int64)
    if alphas.shape[0] != t:
        raise ParameterError(f"need {t} puncture positions, got {alphas.shape[0]}")
    for tree_idx, size in enumerate(sizes):
        if not 0 <= alphas[tree_idx] < size:
            raise ParameterError(
                f"alpha[{tree_idx}]={alphas[tree_idx]} outside its block of size {size}"
            )
    u = np.zeros(n, dtype=np.uint8)
    v = blocks.zeros(n)
    if batched:
        offsets, runs = _batched_schedule(sizes, prg.arity)
        for first, count, depth, tweak_bases in runs:
            run_v, _ = spcot_receive_batch(
                channel, pool, alphas[first : first + count], prg, depth,
                tweak_bases=tweak_bases, crhf=crhf,
            )
            for i in range(count):
                size = sizes[first + i]
                start = offsets[first + i]
                v[start : start + size] = run_v[i, :size]
                u[start + alphas[first + i]] = 1
        return u, v
    offset = 0
    for tree_idx, size in enumerate(sizes):
        depth = tree_depth_for(size, prg.arity)
        leaves = spcot_receive(
            channel,
            pool,
            int(alphas[tree_idx]),
            prg,
            depth,
            tweak_base=tree_idx * _TREE_TWEAK_STRIDE,
            crhf=crhf,
        )
        v[offset : offset + size] = leaves[:size]
        u[offset + alphas[tree_idx]] = 1
        offset += size
    return u, v
