"""Multi-point COT: t parallel SPCOT instances with regular noise.

Ferret's LPN step needs a length-n one-hot-union vector with exactly t
set positions, distributed regularly: position ``i`` of block ``b``
(blocks partition [0, n) evenly) carries the b-th SPCOT's puncture.
Each block is covered by one GGM tree whose leaf count is the smallest
power of the arity that fits the block; surplus leaves are dropped by
both parties identically.

The t trees are independent, which is exactly the inter-tree
parallelism Ironman's hybrid expansion schedule exploits (Figure 8).
"""

from __future__ import annotations

import numpy as np

from repro.crypto import blocks
from repro.crypto.crhf import DEFAULT_CRHF, Crhf
from repro.crypto.prg import TreePrg
from repro.errors import ParameterError
from repro.ot.channel import Channel
from repro.ot.cot import CotPool
from repro.spcot.protocol import cots_needed, spcot_receive, spcot_send
from repro.utils.bitops import next_power

#: Tweak-space stride reserved per tree (holds all of its level tweaks).
_TREE_TWEAK_STRIDE = 1 << 20


def block_sizes(n: int, t: int) -> list:
    """Regular-noise block sizes: an even split of [0, n) into t blocks."""
    if t < 1 or n < t:
        raise ParameterError(f"need n >= t >= 1, got n={n}, t={t}")
    base = n // t
    rem = n % t
    return [base + 1 if b < rem else base for b in range(t)]


def tree_depth_for(block_size: int, arity: int) -> int:
    """GGM depth so that arity**depth >= block_size (>= 1 level)."""
    leaves = max(next_power(block_size, arity), arity)
    depth = 0
    while arity**depth < leaves:
        depth += 1
    return max(depth, 1)


def mpcot_cots_needed(n: int, t: int, arity: int) -> int:
    """Total base COTs consumed by one multi-point execution."""
    return sum(
        cots_needed(arity ** tree_depth_for(size, arity), arity)
        for size in block_sizes(n, t)
    )


def sample_alphas(n: int, t: int, rng: np.random.Generator) -> np.ndarray:
    """Sample one puncture position per regular block (local offsets)."""
    return np.array(
        [rng.integers(0, size) for size in block_sizes(n, t)], dtype=np.int64
    )


def mpcot_send(
    channel: Channel,
    pool: CotPool,
    delta: np.ndarray,
    prg: TreePrg,
    n: int,
    t: int,
    rng: np.random.Generator,
    crhf: Crhf = DEFAULT_CRHF,
) -> np.ndarray:
    """Sender side: returns the length-n block vector ``w``."""
    sizes = block_sizes(n, t)
    out = blocks.zeros(n)
    offset = 0
    for tree_idx, size in enumerate(sizes):
        depth = tree_depth_for(size, prg.arity)
        leaves = spcot_send(
            channel,
            pool,
            delta,
            prg,
            depth,
            rng,
            tweak_base=tree_idx * _TREE_TWEAK_STRIDE,
            crhf=crhf,
        )
        out[offset : offset + size] = leaves[:size]
        offset += size
    return out


def mpcot_receive(
    channel: Channel,
    pool: CotPool,
    alphas: np.ndarray,
    prg: TreePrg,
    n: int,
    t: int,
    crhf: Crhf = DEFAULT_CRHF,
) -> tuple:
    """Receiver side: returns (u, v) with u one-hot per block.

    ``u`` is the length-n 0/1 noise vector (t set bits at the global
    puncture positions); ``v`` the length-n block vector satisfying
    ``w = v XOR u * Delta``.
    """
    sizes = block_sizes(n, t)
    alphas = np.asarray(alphas, dtype=np.int64)
    if alphas.shape[0] != t:
        raise ParameterError(f"need {t} puncture positions, got {alphas.shape[0]}")
    u = np.zeros(n, dtype=np.uint8)
    v = blocks.zeros(n)
    offset = 0
    for tree_idx, size in enumerate(sizes):
        if not 0 <= alphas[tree_idx] < size:
            raise ParameterError(
                f"alpha[{tree_idx}]={alphas[tree_idx]} outside its block of size {size}"
            )
        depth = tree_depth_for(size, prg.arity)
        leaves = spcot_receive(
            channel,
            pool,
            int(alphas[tree_idx]),
            prg,
            depth,
            tweak_base=tree_idx * _TREE_TWEAK_STRIDE,
            crhf=crhf,
        )
        v[offset : offset + size] = leaves[:size]
        u[offset + alphas[tree_idx]] = 1
        offset += size
    return u, v
