"""GGM puncturable-PRF trees (Section 2.3.1 / Figure 3(b) / Figure 6).

A GGM tree expands one seed into ``arity ** depth`` leaves by applying
a length-expanding PRG level by level.  SPCOT's punctured transfer
works on *level sums*: at level ``i`` the sender computes, for each
child-slot ``j`` in ``[0, m)``, the XOR of all level-``i`` nodes whose
index is congruent to ``j`` mod ``m`` (for m = 2 these are the paper's
even/odd sums ``K_0^i, K_1^i``).  A receiver holding, at every level,
all sums except slot ``alpha_i`` can reconstruct every leaf except the
one at position ``alpha`` -- that reconstruction lives here too so the
protocol module stays purely about message flow.

Besides the single-tree primitives, this module carries their *batched*
counterparts (:func:`batched_expand_full`, :func:`batched_level_sums`,
:class:`BatchedTreeLevels`, :class:`BatchedPuncturedReconstructor`).
MPCOT runs t independent trees, and Ironman's hybrid expansion schedule
(Figure 8) gets its pipeline utilization exactly from that inter-tree
parallelism: all t trees advance level-synchronously, so every PRG
expansion operates on ``t * arity**level`` nodes at once.  The batched
representation stores one ``(t * nodes_per_tree, 2)`` block array per
level (tree-major: tree ``i`` owns rows ``[i * nodes_per_tree,
(i + 1) * nodes_per_tree)``), which turns the per-level work of all t
trees into single vectorized numpy kernels instead of ``t`` small ones.
"""

from __future__ import annotations

import numpy as np

from repro.crypto import blocks
from repro.crypto.prg import TreePrg
from repro.errors import ParameterError
from repro.utils.bitops import int_to_digits


def expand_full(prg: TreePrg, seed: np.ndarray, depth: int) -> list:
    """Expand ``seed`` into all tree levels.

    Returns a list of block arrays: ``levels[i]`` has ``arity ** i``
    rows; ``levels[0]`` is the seed itself.
    """
    if depth < 1:
        raise ParameterError("tree depth must be >= 1")
    seed = np.asarray(seed, dtype=blocks.BLOCK_DTYPE).reshape(1, 2)
    levels = [seed]
    for lvl in range(depth):
        levels.append(prg.expand(levels[-1], lvl))
    return levels


def level_sums(nodes: np.ndarray, arity: int) -> np.ndarray:
    """Per-slot XOR sums of one tree level.

    ``nodes`` holds a full level (count divisible by ``arity``); row
    ``j`` of the result is the XOR of all nodes at positions congruent
    to ``j`` mod ``arity`` -- the values offered through the
    (m-1)-out-of-m OT.
    """
    if nodes.shape[0] % arity != 0:
        raise ParameterError("level size must be a multiple of the arity")
    grouped = nodes.reshape(-1, arity, 2)
    return np.bitwise_xor.reduce(grouped, axis=0)


def alpha_digits(alpha: int, arity: int, depth: int) -> list:
    """Big-endian base-``arity`` digits of the punctured index.

    ``digits[0]`` selects the level-1 slot; the hole index composes as
    ``p_i = p_{i-1} * arity + digits[i-1]``.
    """
    if not 0 <= alpha < arity**depth:
        raise ParameterError(f"alpha {alpha} out of range for {arity}^{depth} leaves")
    return list(reversed(int_to_digits(alpha, arity, depth)))


class PuncturedReconstructor:
    """Receiver-side level-by-level tree reconstruction.

    Feed it, per level, the known sums (all slots except the punctured
    digit); it maintains the partially known level and the hole
    position.  After ``depth`` levels, :attr:`nodes` holds every leaf
    except index :attr:`hole` (which is zero-filled).
    """

    def __init__(self, prg: TreePrg, depth: int, digits: list):
        self.prg = prg
        self.arity = prg.arity
        self.depth = depth
        self.digits = list(digits)
        if len(self.digits) != depth:
            raise ParameterError("digit count must equal tree depth")
        self.level = 0
        self.nodes = None
        self.hole = None

    def feed_level(self, known_sums: dict) -> None:
        """Consume level ``self.level + 1`` given sums for slots != digit.

        Args:
            known_sums: mapping slot j -> (1, 2) block, defined for every
                j in [0, arity) except the punctured digit of this level.
        """
        m = self.arity
        digit = self.digits[self.level]
        expected_slots = set(range(m)) - {digit}
        if set(known_sums) != expected_slots:
            raise ParameterError(
                f"level {self.level + 1} needs sums for slots {sorted(expected_slots)}"
            )
        if self.level == 0:
            nodes = blocks.zeros(m)
            for j, value in known_sums.items():
                nodes[j] = value.reshape(2)
            self.nodes = nodes
            self.hole = digit
        else:
            children = self.prg.expand(self.nodes, self.level)
            # The hole parent's children came from expanding a zero stand-in;
            # blank them so the slot sums below only cover known nodes.
            start = self.hole * m
            children[start : start + m] = 0
            partial = level_sums(children, m)
            for j, value in known_sums.items():
                children[start + j] = blocks.xor(value.reshape(1, 2), partial[j : j + 1])
            self.nodes = children
            self.hole = self.hole * m + digit
        self.level += 1

    @property
    def done(self) -> bool:
        return self.level == self.depth

    def leaves(self) -> tuple:
        """Return (leaves with zero at the hole, hole index)."""
        if not self.done:
            raise ParameterError("tree reconstruction is not finished")
        return self.nodes, self.hole


def reconstruct_punctured(
    prg: TreePrg, depth: int, alpha: int, sums_per_level: list
) -> tuple:
    """Convenience wrapper: reconstruct all leaves except ``alpha``.

    ``sums_per_level[i]`` is the dict of known slot sums for level i+1.
    """
    recon = PuncturedReconstructor(prg, depth, alpha_digits(alpha, prg.arity, depth))
    for known in sums_per_level:
        recon.feed_level(known)
    return recon.leaves()


# ---------------------------------------------------------------------------
# Batched multi-tree expansion (Figure 8's inter-tree parallelism)
# ---------------------------------------------------------------------------


def batched_expand_full(prg: TreePrg, seeds: np.ndarray, depth: int) -> list:
    """Expand ``t`` seeds into all levels of ``t`` trees at once.

    ``seeds`` is a ``(t, 2)`` block array; ``levels[i]`` holds all trees'
    level-``i`` nodes as one ``(t * arity**i, 2)`` array, tree-major.
    Because :meth:`TreePrg.expand` places the children of parent ``p`` at
    rows ``[p * arity, (p + 1) * arity)``, tree-major layout is preserved
    level to level, and PRG core-call counts are identical to expanding
    the trees one by one.
    """
    if depth < 1:
        raise ParameterError("tree depth must be >= 1")
    seeds = blocks.require_blocks(np.ascontiguousarray(seeds), "seeds")
    levels = [seeds]
    for lvl in range(depth):
        levels.append(prg.expand(levels[-1], lvl))
    return levels


def batched_level_sums(nodes: np.ndarray, arity: int, n_trees: int) -> np.ndarray:
    """Per-tree per-slot XOR sums of one batched level, vectorized.

    ``nodes`` is a ``(t * nodes_per_tree, 2)`` tree-major level; the
    result is ``(t, arity, 2)`` where ``out[i, j]`` is tree ``i``'s XOR
    of nodes at positions congruent to ``j`` mod ``arity`` -- one
    ``bitwise_xor.reduce`` over a 4-d reshape, no Python loop over trees.
    """
    if n_trees < 1:
        raise ParameterError("need at least one tree")
    if nodes.shape[0] % (n_trees * arity) != 0:
        raise ParameterError("level size must be a multiple of n_trees * arity")
    grouped = nodes.reshape(n_trees, -1, arity, 2)
    return np.bitwise_xor.reduce(grouped, axis=1)


class BatchedTreeLevels:
    """Sender-side view of ``t`` same-depth trees expanded together.

    Thin convenience over :func:`batched_expand_full` that exposes the
    per-level slot sums and the final per-tree leaf matrix the batched
    SPCOT sender needs.
    """

    def __init__(self, prg: TreePrg, seeds: np.ndarray, depth: int):
        self.prg = prg
        self.arity = prg.arity
        self.depth = depth
        self.n_trees = np.ascontiguousarray(seeds).shape[0]
        self.levels = batched_expand_full(prg, seeds, depth)

    def sums(self, level: int) -> np.ndarray:
        """``(t, arity, 2)`` slot sums of level ``level`` (1-based)."""
        if not 1 <= level <= self.depth:
            raise ParameterError(f"level {level} out of range [1, {self.depth}]")
        return batched_level_sums(self.levels[level], self.arity, self.n_trees)

    def leaves(self) -> np.ndarray:
        """All leaves as a ``(t, arity**depth, 2)`` per-tree matrix."""
        return self.levels[-1].reshape(self.n_trees, -1, 2)


class BatchedPuncturedReconstructor:
    """Receiver-side level-synchronous reconstruction of ``t`` trees.

    The batched analogue of :class:`PuncturedReconstructor`: all trees
    advance one level per :meth:`feed_level` call, carried as a single
    tree-major block array, with the per-tree holes tracked as an index
    vector.  ``digits`` is a ``(t, depth)`` int array of per-tree
    punctured digits (big-endian, as from :func:`alpha_digits`).
    """

    def __init__(self, prg: TreePrg, depth: int, digits: np.ndarray):
        self.prg = prg
        self.arity = prg.arity
        self.depth = depth
        self.digits = np.asarray(digits, dtype=np.int64)
        if self.digits.ndim != 2 or self.digits.shape[1] != depth:
            raise ParameterError("digits must be a (n_trees, depth) array")
        if self.digits.shape[0] < 1:
            raise ParameterError("need at least one tree")
        if np.any((self.digits < 0) | (self.digits >= self.arity)):
            raise ParameterError(f"digits must lie in [0, {self.arity})")
        self.n_trees = self.digits.shape[0]
        self.level = 0
        self.nodes = None
        self.holes = None

    def feed_level(self, sums: np.ndarray) -> None:
        """Consume level ``self.level + 1`` from per-tree slot sums.

        Args:
            sums: ``(t, arity, 2)`` array; row ``[i, j]`` is tree ``i``'s
                slot-``j`` sum.  The entry at each tree's punctured digit
                is ignored (the OT never delivers it, so callers may
                leave garbage there).
        """
        m = self.arity
        t = self.n_trees
        sums = np.asarray(sums, dtype=blocks.BLOCK_DTYPE)
        if sums.shape != (t, m, 2):
            raise ParameterError(f"sums must have shape ({t}, {m}, 2), got {sums.shape}")
        if self.level >= self.depth:
            raise ParameterError("all levels have already been fed")
        digit = self.digits[:, self.level]
        tree_ids = np.arange(t)
        if self.level == 0:
            nodes = sums.reshape(t * m, 2).copy()
            nodes[tree_ids * m + digit] = 0
            self.nodes = nodes
            self.holes = digit.copy()
        else:
            per_tree = m**self.level
            children = self.prg.expand(self.nodes, self.level)
            # Each hole parent expanded a zero stand-in; blank its children
            # so the vectorized slot sums below cover only known nodes.
            hole_parents = tree_ids * per_tree + self.holes
            child_rows = hole_parents[:, None] * m + np.arange(m)[None, :]
            children[child_rows.ravel()] = 0
            partial = batched_level_sums(children, m, t)
            children[child_rows.ravel()] = blocks.xor(sums, partial).reshape(t * m, 2)
            children[hole_parents * m + digit] = 0
            self.nodes = children
            self.holes = self.holes * m + digit
        self.level += 1

    @property
    def done(self) -> bool:
        return self.level == self.depth

    def leaves(self) -> tuple:
        """Return ``((t, leaves, 2)`` per-tree leaves, ``(t,)`` holes).

        Each tree's hole leaf is zero-filled, exactly like the
        single-tree reconstructor.
        """
        if not self.done:
            raise ParameterError("tree reconstruction is not finished")
        return self.nodes.reshape(self.n_trees, -1, 2), self.holes
