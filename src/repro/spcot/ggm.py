"""GGM puncturable-PRF trees (Section 2.3.1 / Figure 3(b) / Figure 6).

A GGM tree expands one seed into ``arity ** depth`` leaves by applying
a length-expanding PRG level by level.  SPCOT's punctured transfer
works on *level sums*: at level ``i`` the sender computes, for each
child-slot ``j`` in ``[0, m)``, the XOR of all level-``i`` nodes whose
index is congruent to ``j`` mod ``m`` (for m = 2 these are the paper's
even/odd sums ``K_0^i, K_1^i``).  A receiver holding, at every level,
all sums except slot ``alpha_i`` can reconstruct every leaf except the
one at position ``alpha`` -- that reconstruction lives here too so the
protocol module stays purely about message flow.
"""

from __future__ import annotations

import numpy as np

from repro.crypto import blocks
from repro.crypto.prg import TreePrg
from repro.errors import ParameterError
from repro.utils.bitops import int_to_digits


def expand_full(prg: TreePrg, seed: np.ndarray, depth: int) -> list:
    """Expand ``seed`` into all tree levels.

    Returns a list of block arrays: ``levels[i]`` has ``arity ** i``
    rows; ``levels[0]`` is the seed itself.
    """
    if depth < 1:
        raise ParameterError("tree depth must be >= 1")
    seed = np.asarray(seed, dtype=blocks.BLOCK_DTYPE).reshape(1, 2)
    levels = [seed]
    for lvl in range(depth):
        levels.append(prg.expand(levels[-1], lvl))
    return levels


def level_sums(nodes: np.ndarray, arity: int) -> np.ndarray:
    """Per-slot XOR sums of one tree level.

    ``nodes`` holds a full level (count divisible by ``arity``); row
    ``j`` of the result is the XOR of all nodes at positions congruent
    to ``j`` mod ``arity`` -- the values offered through the
    (m-1)-out-of-m OT.
    """
    if nodes.shape[0] % arity != 0:
        raise ParameterError("level size must be a multiple of the arity")
    grouped = nodes.reshape(-1, arity, 2)
    return np.bitwise_xor.reduce(grouped, axis=0)


def alpha_digits(alpha: int, arity: int, depth: int) -> list:
    """Big-endian base-``arity`` digits of the punctured index.

    ``digits[0]`` selects the level-1 slot; the hole index composes as
    ``p_i = p_{i-1} * arity + digits[i-1]``.
    """
    if not 0 <= alpha < arity**depth:
        raise ParameterError(f"alpha {alpha} out of range for {arity}^{depth} leaves")
    return list(reversed(int_to_digits(alpha, arity, depth)))


class PuncturedReconstructor:
    """Receiver-side level-by-level tree reconstruction.

    Feed it, per level, the known sums (all slots except the punctured
    digit); it maintains the partially known level and the hole
    position.  After ``depth`` levels, :attr:`nodes` holds every leaf
    except index :attr:`hole` (which is zero-filled).
    """

    def __init__(self, prg: TreePrg, depth: int, digits: list):
        self.prg = prg
        self.arity = prg.arity
        self.depth = depth
        self.digits = list(digits)
        if len(self.digits) != depth:
            raise ParameterError("digit count must equal tree depth")
        self.level = 0
        self.nodes = None
        self.hole = None

    def feed_level(self, known_sums: dict) -> None:
        """Consume level ``self.level + 1`` given sums for slots != digit.

        Args:
            known_sums: mapping slot j -> (1, 2) block, defined for every
                j in [0, arity) except the punctured digit of this level.
        """
        m = self.arity
        digit = self.digits[self.level]
        expected_slots = set(range(m)) - {digit}
        if set(known_sums) != expected_slots:
            raise ParameterError(
                f"level {self.level + 1} needs sums for slots {sorted(expected_slots)}"
            )
        if self.level == 0:
            nodes = blocks.zeros(m)
            for j, value in known_sums.items():
                nodes[j] = value.reshape(2)
            self.nodes = nodes
            self.hole = digit
        else:
            children = self.prg.expand(self.nodes, self.level)
            # The hole parent's children came from expanding a zero stand-in;
            # blank them so the slot sums below only cover known nodes.
            start = self.hole * m
            children[start : start + m] = 0
            partial = level_sums(children, m)
            for j, value in known_sums.items():
                children[start + j] = blocks.xor(value.reshape(1, 2), partial[j : j + 1])
            self.nodes = children
            self.hole = self.hole * m + digit
        self.level += 1

    @property
    def done(self) -> bool:
        return self.level == self.depth

    def leaves(self) -> tuple:
        """Return (leaves with zero at the hole, hole index)."""
        if not self.done:
            raise ParameterError("tree reconstruction is not finished")
        return self.nodes, self.hole


def reconstruct_punctured(
    prg: TreePrg, depth: int, alpha: int, sums_per_level: list
) -> tuple:
    """Convenience wrapper: reconstruct all leaves except ``alpha``.

    ``sums_per_level[i]`` is the dict of known slot sums for level i+1.
    """
    recon = PuncturedReconstructor(prg, depth, alpha_digits(alpha, prg.arity, depth))
    for known in sums_per_level:
        recon.feed_level(known)
    return recon.leaves()
