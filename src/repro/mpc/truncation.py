"""Secure fixed-point truncation on additive mod-2^k shares.

Quantized inference multiplies scale-2^f fixed-point operands, so every
product carries scale 2^(2f); without a secure rescaling step the scale
doubles at every linear layer and a multi-layer network overflows the
ring (the reason PR 3's MLP had to budget magnitudes by hand).  This
module supplies the missing primitive in the three shapes PPML
frameworks use, all driven by one :class:`FixedPointConfig`:

* **Pair mode** (:func:`truncate_pair_online`) -- the ABY3-style
  probabilistic truncation.  Preprocessing provides a **truncation
  pair**: additive shares of a uniform mask ``r`` and of ``r >> f``
  (:func:`generate_trunc_pairs`, pooled by the runtime's
  ``TruncPairPool`` under the ``TPRC`` opcode).  Online, the parties
  open ``c = x + r`` (one ring element each -- a single round, no OT)
  and output ``(c >> f) - [r >> f]``.  Requires ``mag_bits`` headroom:
  with ``|x| < 2^mag_bits`` the result is ``floor(x / 2^f)`` or one
  more, except with probability ``2^(mag_bits + 1 - bits)``.
* **Wrap-fixed mode** (:func:`truncate_shares` with ``exact=False``) --
  CrypTFlow2-style: each party shifts its own share locally, and the
  share-wrap bit ``t = [x0 + x1 >= 2^bits]`` -- exactly the DReLU carry
  shape -- is computed with one millionaires' comparison on the two
  *private* shares (:mod:`repro.mpc.compare`) and subtracted after a
  B2A conversion.  Correct within one ULP (``floor(x/2^f) - 1`` or
  exact) for EVERY ring value and share split -- no headroom needed.
* **Exact mode** (``exact=True``) -- additionally fixes the low-part
  borrow ``[l0 + l1 >= 2^f]`` with a second (``f``-bit) millionaires'
  comparison: the output is bit-exact ``floor(x / 2^f)``, which is what
  lets a whole quantized network be equality-tested against a plaintext
  fixed-point oracle.

Every mode consumes only pooled correlations (trunc pairs, comparison
COTs, bit triples, ring triples for B2A), so truncation slots into the
preprocessing/online split like MatMul and ReLU: demand is exactly
countable by :mod:`repro.ppml.plan` and prefilled by the service.  The
byte predictors (:func:`trunc_online_bytes`,
:func:`trunc_preproc_bytes`) are exact and equality-tested against
measured channel stats.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError, ProtocolError
from repro.mpc.compare import (
    millionaire_bytes,
    millionaire_messages,
    millionaire_p0,
    millionaire_p1,
)
from repro.mpc.triples import (
    BitTriples,
    RingTriples,
    gilboa_receive,
    gilboa_send,
    mul_shared,
    ring_mask_u64,
)
from repro.ot.channel import Channel
from repro.ot.cot import CotPool

#: Tweak offset separating the second (low-part) millionaires' run from
#: the first; the per-level stride inside one run is 2^16 (compare.py),
#: so 2^26 keeps the two comparison batches disjoint.
_CARRY_TWEAK = 1 << 26

#: Tweak offset of the Gilboa B2A batch inside one truncation call.
_B2A_TWEAK = 1 << 27

_U64_ONE = np.uint64(1)


def _rand_ring(rng: np.random.Generator, n: int, bits: int) -> np.ndarray:
    """n uniform elements of Z_2^bits (bits=64 included) as uint64."""
    return rng.integers(0, 1 << bits, n, dtype=np.uint64)


@dataclass(frozen=True)
class FixedPointConfig:
    """Fixed-point number format threaded through the PPML stack.

    A real value v is encoded as ``round(v * 2^frac_bits)`` embedded in
    Z_2^bits (two's complement).  ``mag_bits`` is the magnitude bound
    promised by the caller (``|x| < 2^mag_bits`` for every value fed to
    pair-mode truncation); the headroom ``bits - 1 - mag_bits`` is what
    makes probabilistic truncation safe.  Exact/wrap-fixed truncation
    does not need it.
    """

    bits: int
    frac_bits: int
    mag_bits: int = None

    def __post_init__(self):
        if not 1 <= self.frac_bits < self.bits <= 64:
            raise ParameterError(
                "need 1 <= frac_bits < bits <= 64 for fixed-point rescaling"
            )
        if self.mag_bits is not None and not (
            self.frac_bits <= self.mag_bits <= self.bits - 2
        ):
            raise ParameterError("mag_bits must be in [frac_bits, bits - 2]")

    @property
    def scale(self) -> int:
        return 1 << self.frac_bits

    @property
    def mask(self) -> np.uint64:
        return ring_mask_u64(self.bits)

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Real values -> scale-2^f ring elements (two's complement)."""
        fixed = np.round(np.asarray(values, dtype=np.float64) * self.scale)
        return fixed.astype(np.int64).astype(np.uint64) & self.mask

    def decode(self, ring: np.ndarray) -> np.ndarray:
        """Ring elements -> real values at scale 2^f."""
        return self.to_signed(ring).astype(np.float64) / self.scale

    def to_signed(self, ring: np.ndarray) -> np.ndarray:
        ring = np.asarray(ring, dtype=np.uint64) & self.mask
        half = np.uint64(1) << np.uint64(self.bits - 1)
        signed = ring.astype(np.int64)
        if self.bits < 64:
            signed = np.where(ring >= half, signed - (1 << self.bits), signed)
        return signed

    def trunc_reference(self, ring: np.ndarray) -> np.ndarray:
        """The plaintext oracle: ``floor(signed(x) / 2^f)`` re-embedded.

        Arithmetic right shift of the two's-complement value -- the
        exact function :func:`truncate_shares` (exact mode) computes.
        """
        return (
            self.to_signed(ring) >> np.int64(self.frac_bits)
        ).astype(np.uint64) & self.mask


# ---------------------------------------------------------------------------
# Correlation / wire-cost accounting (single source of truth; the
# planner, the runtime pools, and the byte-model tests all import these)
# ---------------------------------------------------------------------------


def trunc_pair_cots(cfg_bits: int, frac_bits: int) -> int:
    """Forward-direction COTs one truncation pair consumes at
    preprocessing: a ``bits``-bit and a ``frac``-bit millionaires'
    comparison (one COT per level) plus 2 Gilboa B2A correlations."""
    return cfg_bits + frac_bits + 2


def trunc_pair_bit_triples(cfg_bits: int, frac_bits: int) -> int:
    """Bit triples one truncation pair consumes (2 per comparison level)."""
    return 2 * (cfg_bits + frac_bits)


def trunc_cots(n: int, cfg: FixedPointConfig, exact: bool = True) -> int:
    """Forward COTs the online wrap-fixed/exact truncation of n elements
    draws: one ``bits``-bit comparison always, plus the ``frac``-bit
    borrow comparison in exact mode."""
    return n * (cfg.bits + (cfg.frac_bits if exact else 0))


def trunc_bit_triples(n: int, cfg: FixedPointConfig, exact: bool = True) -> int:
    return 2 * trunc_cots(n, cfg, exact)


def trunc_ring_triples(n: int, cfg: FixedPointConfig, exact: bool = True) -> int:
    """Ring triples for the B2A of the wrap (and, exact mode, borrow) bits."""
    return 2 * n if exact else n


def _bits_msg(n_bits: int) -> int:
    """Wire bytes of one ``send_bits`` message (8-byte length header)."""
    return 8 + (n_bits + 7) // 8


def trunc_online_bytes(n: int, cfg: FixedPointConfig, mode: str = "exact") -> int:
    """Exact online wire bytes (both parties) of one n-element truncation.

    ``pair``: one masked-share opening each.  ``wrap``/``exact``: the
    millionaires' comparison(s) plus one Beaver opening for the B2A of
    the correction bits (2 ring elements per multiplied element, each
    party).
    """
    if mode == "pair":
        return 2 * 8 * n
    if mode not in ("wrap", "exact"):
        raise ParameterError(f"unknown truncation mode {mode!r}")
    total = millionaire_bytes(n, cfg.bits)
    b2a = n
    if mode == "exact":
        total += millionaire_bytes(n, cfg.frac_bits)
        b2a = 2 * n
    return total + 2 * (2 * b2a) * 8


def trunc_preproc_bytes(n: int, cfg: FixedPointConfig) -> int:
    """Exact preprocessing wire bytes (both parties) of one n-pair
    ``generate_trunc_pairs`` batch: two millionaires' comparisons plus
    the Gilboa B2A half-messages (one bit + one masked ring element per
    correlation, 2n correlations)."""
    gilboa = _bits_msg(2 * n) + 2 * n * 8
    return (
        millionaire_bytes(n, cfg.bits)
        + millionaire_bytes(n, cfg.frac_bits)
        + gilboa
    )


def trunc_online_messages(cfg: FixedPointConfig, mode: str = "exact") -> int:
    """Exact message count (both parties) of one online truncation call.

    Multiplied by a transport's per-message framing overhead (e.g. a
    :class:`repro.runtime.mux.MuxChannel` tag header) this converts the
    raw byte predictors into framed per-tag byte predictions.
    """
    if mode == "pair":
        return 2
    if mode not in ("wrap", "exact"):
        raise ParameterError(f"unknown truncation mode {mode!r}")
    msgs = millionaire_messages(cfg.bits) + 2  # + the Beaver opening
    if mode == "exact":
        msgs += millionaire_messages(cfg.frac_bits)
    return msgs


def trunc_preproc_messages(cfg: FixedPointConfig) -> int:
    """Messages (both parties) of one ``generate_trunc_pairs`` batch."""
    return (
        millionaire_messages(cfg.bits)
        + millionaire_messages(cfg.frac_bits)
        + 2  # Gilboa: correction bits + masked payloads
    )


# ---------------------------------------------------------------------------
# Truncation pairs (preprocessing correlation)
# ---------------------------------------------------------------------------


@dataclass
class TruncPairs:
    """One party's shares of n truncation pairs: (r, r >> frac_bits).

    ``r`` sums (mod 2^bits) to a uniform mask, ``s`` to exactly
    ``r >> frac_bits`` -- the pair correction consumed by
    :func:`truncate_pair_online`.
    """

    r: np.ndarray
    s: np.ndarray
    bits: int
    frac_bits: int

    def __post_init__(self):
        mask = ring_mask_u64(self.bits)
        self.r = np.asarray(self.r, dtype=np.uint64) & mask
        self.s = np.asarray(self.s, dtype=np.uint64) & mask
        if self.r.shape != self.s.shape:
            raise ParameterError("trunc pair component lengths disagree")
        if not 1 <= self.frac_bits < self.bits:
            raise ParameterError("trunc pair needs 1 <= frac_bits < bits")

    def __len__(self) -> int:
        return self.r.shape[0]


def dealer_trunc_pairs(
    n: int, bits: int, frac_bits: int, rng: np.random.Generator
) -> tuple:
    """Trusted-dealer truncation pairs (tests / cost studies)."""
    mask = ring_mask_u64(bits)
    r = _rand_ring(rng, n, bits)
    s = r >> np.uint64(frac_bits)
    r0 = _rand_ring(rng, n, bits)
    s0 = _rand_ring(rng, n, bits)
    return (
        TruncPairs(r0, s0, bits, frac_bits),
        TruncPairs((r - r0) & mask, (s - s0) & mask, bits, frac_bits),
    )


def _b2a_gilboa(
    channel: Channel,
    pool: CotPool,
    bit_shares: np.ndarray,
    scales: np.ndarray,
    bits: int,
    party: int,
    ot_sender: int,
    tweak_base: int,
) -> np.ndarray:
    """Arithmetic shares of ``(b0 XOR b1) * scale`` from XOR bit shares.

    One Gilboa correlation per bit: the sender's correlated payload is
    ``(1 - 2*b_s) * scale`` and the receiver selects with its bit, so
    the outputs sum to ``b_r*(1 - 2*b_s)*scale``; the sender adds
    ``b_s*scale`` locally to complete ``(b_s + b_r - 2*b_s*b_r)*scale``.
    """
    mask = ring_mask_u64(bits)
    n = bit_shares.shape[0]
    tweaks = np.arange(tweak_base, tweak_base + n, dtype=np.uint64)
    b = bit_shares.astype(np.uint64)
    scales = np.asarray(scales, dtype=np.uint64)
    if party == ot_sender:
        corr = ((_U64_ONE - np.uint64(2) * b) * scales & mask).reshape(n, 1)
        share = gilboa_send(channel, pool.take_sender(n), corr, bits, tweaks)
        return (share.reshape(n) + b * scales) & mask
    got = gilboa_receive(channel, pool.take_receiver(n), b, 1, bits, tweaks)
    return got.reshape(n) & mask


def generate_trunc_pairs(
    channel: Channel,
    n: int,
    bits: int,
    frac_bits: int,
    pool: CotPool,
    triples: BitTriples,
    rng: np.random.Generator,
    party: int,
    tweak_base: int = 0,
) -> TruncPairs:
    """Two-party generation of n truncation pairs (preprocessing phase).

    Each party samples its ``r`` share privately; the shares of
    ``r >> f`` then differ from the locally shifted shares by the share
    wrap ``u = [r0 + r1 >= 2^bits]`` (worth ``2^(bits-f)``) and the low
    carry ``[l0 + l1 >= 2^f]`` (worth 1) -- both are millionaires'
    comparisons on *privately held* inputs (the DReLU carry shape),
    their XOR-shared outputs arithmetized with one Gilboa B2A each.
    Consumes ``trunc_pair_cots`` COTs (party 0 the COT sender) and
    ``trunc_pair_bit_triples`` bit triples per pair.
    """
    if party not in (0, 1):
        raise ParameterError("party must be 0 or 1")
    mask = ring_mask_u64(bits)
    low_mask = np.uint64((1 << frac_bits) - 1)
    r = _rand_ring(rng, n, bits)
    low = r & low_mask
    if party == 0:
        u = millionaire_p0(
            channel, mask - r, bits, pool, triples, rng, tweak_base=tweak_base
        )
        carry = millionaire_p0(
            channel, low_mask - low, frac_bits, pool, triples, rng,
            tweak_base=tweak_base + _CARRY_TWEAK,
        )
    else:
        u = millionaire_p1(channel, r, bits, pool, triples, tweak_base=tweak_base)
        carry = millionaire_p1(
            channel, low, frac_bits, pool, triples,
            tweak_base=tweak_base + _CARRY_TWEAK,
        )
    big = _U64_ONE << np.uint64(bits - frac_bits)
    scales = np.concatenate(
        [np.full(n, big, dtype=np.uint64), np.ones(n, dtype=np.uint64)]
    )
    arith = _b2a_gilboa(
        channel, pool, np.concatenate([u, carry]), scales, bits,
        party, ot_sender=0, tweak_base=tweak_base + _B2A_TWEAK,
    )
    s = ((r >> np.uint64(frac_bits)) - arith[:n] + arith[n:]) & mask
    return TruncPairs(r, s, bits, frac_bits)


# ---------------------------------------------------------------------------
# Online protocols
# ---------------------------------------------------------------------------


def _as_flat_shares(x_share: np.ndarray, mask: np.uint64) -> np.ndarray:
    x_share = np.asarray(x_share, dtype=np.uint64).reshape(-1)
    return x_share & mask


def truncate_pair_online(
    channel: Channel,
    x_share: np.ndarray,
    pairs: TruncPairs,
    cfg: FixedPointConfig,
    party: int,
) -> np.ndarray:
    """Probabilistic (pair-mode) truncation: one opening round, no OT.

    Party 0 biases by ``2^mag_bits`` so the masked value is a small
    non-negative integer, the parties open ``c = x~ + r`` (uniformly
    masked -- one ring message each), and the outputs
    ``(c >> f) - s - bias'`` sum to ``floor(x/2^f)`` or one more,
    except with probability ``2^(mag_bits + 1 - bits)`` (the mask-wrap
    event the headroom suppresses).
    """
    if cfg.mag_bits is None:
        raise ParameterError(
            "pair-mode truncation needs FixedPointConfig.mag_bits headroom"
        )
    if pairs.bits != cfg.bits or pairs.frac_bits != cfg.frac_bits:
        raise ProtocolError("truncation pairs do not match the fixed-point config")
    mask = cfg.mask
    x = _as_flat_shares(x_share, mask)
    if len(pairs) != x.shape[0]:
        raise ProtocolError("need exactly one truncation pair per element")
    y = x
    if party == 0:
        y = (x + (_U64_ONE << np.uint64(cfg.mag_bits))) & mask
    mine = (y + pairs.r) & mask
    if party == 0:
        channel.send_ring(mine)
        theirs = channel.recv_ring()
    else:
        theirs = channel.recv_ring()
        channel.send_ring(mine)
    c = (mine + theirs) & mask
    z = (np.uint64(0) - pairs.s) & mask
    if party == 0:
        bias = _U64_ONE << np.uint64(cfg.mag_bits - cfg.frac_bits)
        z = (z + (c >> np.uint64(cfg.frac_bits)) - bias) & mask
    return z


def truncate_shares(
    channel: Channel,
    x_share: np.ndarray,
    cfg: FixedPointConfig,
    party: int,
    pool: CotPool,
    triples: BitTriples,
    ring_triples: RingTriples,
    rng: np.random.Generator = None,
    exact: bool = True,
    tweak_base: int = 0,
) -> np.ndarray:
    """Wrap-fixed / exact truncation of additively shared ring values.

    Each party arithmetic-shifts its own share (after party 0 folds in
    the two's-complement bias), then the share-wrap bit
    ``t = [y0 + y1 >= 2^bits]`` is recovered with a millionaires'
    comparison on the private shares and subtracted (worth
    ``2^(bits-f)``).  With ``exact=True`` the low-part borrow
    ``[l0 + l1 >= 2^f]`` is fixed the same way and the result is
    bit-exact ``floor(x/2^f)`` for every ring value; with
    ``exact=False`` it is ``floor(x/2^f)`` or one less.  The correction
    bits are arithmetized with ring-triple Beaver products (no online
    OT beyond the comparisons).

    Args:
        pool: COT pool in the direction where party 0 is the sender.
        triples: ``trunc_bit_triples`` Beaver bit triples (consumed).
        ring_triples: ``trunc_ring_triples`` mod-2^bits triples for B2A.
        rng: party 0's comparison OT masks; defaults to a fresh
            OS-seeded generator -- these masks are one-time pads over
            party 0's private share bits, so they must never come from
            a seed the peer could predict.
    """
    mask = cfg.mask
    k, f = cfg.bits, cfg.frac_bits
    x = _as_flat_shares(x_share, mask)
    n = x.shape[0]
    if ring_triples.bits != k:
        raise ProtocolError(
            f"B2A ring triples are mod 2^{ring_triples.bits}, need 2^{k}"
        )
    rng = rng if rng is not None else np.random.default_rng()
    y = x
    if party == 0:
        y = (x + (_U64_ONE << np.uint64(k - 1))) & mask
    low_mask = np.uint64((1 << f) - 1)
    low = y & low_mask
    if party == 0:
        t_bit = millionaire_p0(
            channel, mask - y, k, pool, triples, rng, tweak_base=tweak_base
        )
    else:
        t_bit = millionaire_p1(channel, y, k, pool, triples, tweak_base=tweak_base)
    if exact:
        if party == 0:
            c_bit = millionaire_p0(
                channel, low_mask - low, f, pool, triples, rng,
                tweak_base=tweak_base + _CARRY_TWEAK,
            )
        else:
            c_bit = millionaire_p1(
                channel, low, f, pool, triples,
                tweak_base=tweak_base + _CARRY_TWEAK,
            )
        bits_mine = np.concatenate([t_bit, c_bit])
    else:
        bits_mine = t_bit
    # B2A: each party contributes its XOR share as one arithmetic
    # operand of a Beaver product; b = b0 + b1 - 2*b0*b1.
    b_vals = bits_mine.astype(np.uint64)
    zeros = np.zeros_like(b_vals)
    if party == 0:
        prod = mul_shared(channel, ring_triples, b_vals, zeros, party)
    else:
        prod = mul_shared(channel, ring_triples, zeros, b_vals, party)
    arith = (b_vals - np.uint64(2) * prod) & mask
    big = _U64_ONE << np.uint64(k - f)
    z = ((y >> np.uint64(f)) - arith[:n] * big) & mask
    if exact:
        z = (z + arith[n:]) & mask
    if party == 0:
        z = (z - (_U64_ONE << np.uint64(k - 1 - f))) & mask
    return z


# ---------------------------------------------------------------------------
# Service integration
# ---------------------------------------------------------------------------


def trunc_via_service(
    session,
    x_share: np.ndarray,
    cfg: FixedPointConfig,
    mode: str = "exact",
    rng: np.random.Generator = None,
) -> np.ndarray:
    """Truncation drawing every correlation from a provisioning session.

    ``mode`` is ``"pair"`` (pooled truncation pairs, one online round),
    ``"wrap"`` (wrap-fixed, within one ULP) or ``"exact"`` (bit-exact).
    Both parties call in lockstep with the same mode; the draw sequence
    is identical on both sides, which keeps correlations aligned.
    """
    svc_bits = session.service.tuning.ring_bits
    if svc_bits != cfg.bits:
        raise ParameterError(
            f"service produces {svc_bits}-bit correlations, config wants {cfg.bits}"
        )
    x = np.asarray(x_share, dtype=np.uint64).reshape(-1)
    n = x.shape[0]
    if mode == "pair":
        pairs = session.draw_trunc_pairs(n, cfg.frac_bits)
        return truncate_pair_online(session.channel, x, pairs, cfg, session.party)
    if mode not in ("wrap", "exact"):
        raise ParameterError(f"unknown truncation mode {mode!r}")
    exact = mode == "exact"
    n_cots = trunc_cots(n, cfg, exact)
    if session.party == 0:
        pool = session.sender_cot_pool(n_cots)
    else:
        pool = session.receiver_cot_pool(n_cots)
    triples = session.draw_triples(trunc_bit_triples(n, cfg, exact))
    ring_triples = session.draw_ring_triples(trunc_ring_triples(n, cfg, exact))
    return truncate_shares(
        session.channel, x, cfg, session.party, pool, triples, ring_triples,
        rng=rng, exact=exact,
    )
