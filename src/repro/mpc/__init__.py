"""Online two-party protocols on top of the OT substrate (Section 2.2).

The paper's framing: OT extension runs in the *pre-processing* phase;
the *online* phase evaluates nonlinear functions on secret shares
using those correlations.  This package implements that online layer
from scratch -- additive/boolean sharing, Beaver bit triples, the
OT-based millionaires' comparison, and DReLU/ReLU -- so the repository
contains a working end-to-end PPML nonlinear stack, not just the
correlation generator.
"""

from repro.mpc.sharing import (
    ArithmeticShares,
    BooleanShares,
    reconstruct_arith,
    reconstruct_bool,
    share_arith,
    share_bool,
)
from repro.mpc.triples import (
    BitTriples,
    MatrixTriples,
    RingTriples,
    generate_bit_triples,
    generate_ring_triples,
    mul_shared,
)
from repro.mpc.compare import millionaire_p0, millionaire_p1
from repro.mpc.matmul import (
    FIG16_DIMS,
    MatmulDims,
    generate_matrix_triples,
    matmul_cots,
    matmul_online,
    matmul_via_service,
)
from repro.mpc.maxpool import max_pair
from repro.mpc.relu import drelu_pair, relu_pair
from repro.mpc.truncation import (
    FixedPointConfig,
    TruncPairs,
    generate_trunc_pairs,
    trunc_via_service,
    truncate_pair_online,
    truncate_shares,
)

__all__ = [
    "ArithmeticShares",
    "BitTriples",
    "BooleanShares",
    "FIG16_DIMS",
    "FixedPointConfig",
    "TruncPairs",
    "generate_trunc_pairs",
    "trunc_via_service",
    "truncate_pair_online",
    "truncate_shares",
    "MatmulDims",
    "MatrixTriples",
    "RingTriples",
    "drelu_pair",
    "generate_bit_triples",
    "generate_matrix_triples",
    "generate_ring_triples",
    "matmul_cots",
    "matmul_online",
    "matmul_via_service",
    "max_pair",
    "millionaire_p0",
    "millionaire_p1",
    "mul_shared",
    "reconstruct_arith",
    "reconstruct_bool",
    "relu_pair",
    "share_arith",
    "share_bool",
]
