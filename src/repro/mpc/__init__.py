"""Online two-party protocols on top of the OT substrate (Section 2.2).

The paper's framing: OT extension runs in the *pre-processing* phase;
the *online* phase evaluates nonlinear functions on secret shares
using those correlations.  This package implements that online layer
from scratch -- additive/boolean sharing, Beaver bit triples, the
OT-based millionaires' comparison, and DReLU/ReLU -- so the repository
contains a working end-to-end PPML nonlinear stack, not just the
correlation generator.
"""

from repro.mpc.sharing import (
    ArithmeticShares,
    BooleanShares,
    reconstruct_arith,
    reconstruct_bool,
    share_arith,
    share_bool,
)
from repro.mpc.triples import BitTriples, generate_bit_triples
from repro.mpc.compare import millionaire_p0, millionaire_p1
from repro.mpc.maxpool import max_pair
from repro.mpc.relu import drelu_pair, relu_pair

__all__ = [
    "ArithmeticShares",
    "BitTriples",
    "BooleanShares",
    "drelu_pair",
    "generate_bit_triples",
    "max_pair",
    "millionaire_p0",
    "millionaire_p1",
    "reconstruct_arith",
    "reconstruct_bool",
    "relu_pair",
    "share_arith",
    "share_bool",
]
