"""Secure maximum on additive shares (the MaxPool building block).

``max(a, b) = b + ReLU(a - b)``: the difference of shares is local,
so one secure maximum costs exactly one DReLU + one multiplexer --
which is how the framework cost tables charge MaxPool comparisons
(one "maxpool_cmp" per window element beyond the first).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.mpc.relu import relu_pair
from repro.mpc.sharing import ArithmeticShares, ring_mask
from repro.mpc.triples import BitTriples
from repro.ot.channel import Channel
from repro.ot.cot import CotPool


def max_pair(
    channel: Channel,
    a: ArithmeticShares,
    b: ArithmeticShares,
    cmp_pool: CotPool,
    send_pool: CotPool,
    recv_pool: CotPool,
    triples: BitTriples,
    rng,
    party: int,
) -> ArithmeticShares:
    """Shares of elementwise max(a, b); call from both parties.

    Consumes one comparison's worth of COTs/triples plus one mux --
    exactly the per-element cost MaxPool layers are priced at.
    """
    if a.bits != b.bits or len(a) != len(b):
        raise ParameterError("max_pair needs aligned share vectors")
    mask = np.uint64(ring_mask(a.bits))
    diff = ArithmeticShares(
        ((a.values.astype(np.uint64) - b.values.astype(np.uint64)) & mask).astype(
            a.values.dtype
        ),
        a.bits,
    )
    relu_diff, _ = relu_pair(
        channel, diff, cmp_pool, send_pool, recv_pool, triples, rng, party
    )
    out = (b.values.astype(np.uint64) + relu_diff.values.astype(np.uint64)) & mask
    return ArithmeticShares(out.astype(a.values.dtype), a.bits)
