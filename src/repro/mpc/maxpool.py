"""Secure maximum on additive shares (the MaxPool building block).

``max(a, b) = b + ReLU(a - b)``: the difference of shares is local,
so one secure maximum costs exactly one DReLU + one multiplexer --
which is how the framework cost tables charge MaxPool comparisons
(one "maxpool_cmp" per window element beyond the first).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.mpc.relu import relu_pair
from repro.mpc.sharing import ArithmeticShares, ring_mask
from repro.mpc.triples import BitTriples
from repro.ot.channel import Channel
from repro.ot.cot import CotPool


def _max_from_relu(a: ArithmeticShares, b: ArithmeticShares, relu_fn) -> ArithmeticShares:
    """``max(a, b) = b + ReLU(a - b)``: the ring arithmetic around any
    ReLU evaluation (inline pools or service-drawn)."""
    if a.bits != b.bits or len(a) != len(b):
        raise ParameterError("secure max needs aligned share vectors")
    mask = np.uint64(ring_mask(a.bits))
    diff = ArithmeticShares(
        ((a.values.astype(np.uint64) - b.values.astype(np.uint64)) & mask).astype(
            a.values.dtype
        ),
        a.bits,
    )
    relu_diff, _ = relu_fn(diff)
    out = (b.values.astype(np.uint64) + relu_diff.values.astype(np.uint64)) & mask
    return ArithmeticShares(out.astype(a.values.dtype), a.bits)


def max_pair(
    channel: Channel,
    a: ArithmeticShares,
    b: ArithmeticShares,
    cmp_pool: CotPool,
    send_pool: CotPool,
    recv_pool: CotPool,
    triples: BitTriples,
    rng,
    party: int,
) -> ArithmeticShares:
    """Shares of elementwise max(a, b); call from both parties.

    Consumes one comparison's worth of COTs/triples plus one mux --
    exactly the per-element cost MaxPool layers are priced at.
    """
    return _max_from_relu(
        a,
        b,
        lambda diff: relu_pair(
            channel, diff, cmp_pool, send_pool, recv_pool, triples, rng, party
        ),
    )


def max_via_service(
    session, a: ArithmeticShares, b: ArithmeticShares, rng
) -> ArithmeticShares:
    """Secure elementwise max drawing correlations from a service session.

    The ReLU side draws its comparison COTs, mux COTs (both
    directions), and triples from the shared provisioning pools, so
    MaxPool windows run as just another consumer session next to ReLU
    and triple traffic.
    """
    from repro.mpc.relu import relu_via_service

    return _max_from_relu(a, b, lambda diff: relu_via_service(session, diff, rng))
