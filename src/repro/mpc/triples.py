"""Beaver bit triples from OT correlations.

A bit triple gives the parties XOR shares of bits (a, b, c) with
``c = a AND b``; one triple evaluates one AND gate on shared bits
(GMW).  Each triple needs the two cross products ``a0*b1`` and
``a1*b0`` -- one chosen-message OT in each direction, which is exactly
the role-switching workload Ironman's unified architecture serves
(Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto import blocks
from repro.errors import ParameterError
from repro.ot.channel import Channel
from repro.ot.cot import CotPool
from repro.ot.ot_from_cot import ot_receive_from_cot, ot_send_from_cot


@dataclass
class BitTriples:
    """One party's shares of n bit triples (a, b, c = a AND b)."""

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray

    def __post_init__(self):
        self.a = np.asarray(self.a, dtype=np.uint8) & 1
        self.b = np.asarray(self.b, dtype=np.uint8) & 1
        self.c = np.asarray(self.c, dtype=np.uint8) & 1
        if not (self.a.shape == self.b.shape == self.c.shape):
            raise ParameterError("triple component lengths disagree")

    def __len__(self) -> int:
        return self.a.shape[0]

    def take(self, n: int) -> "BitTriples":
        """Split off the first n triples (consuming them)."""
        if n > len(self):
            raise ParameterError(f"only {len(self)} triples left, need {n}")
        head = BitTriples(self.a[:n], self.b[:n], self.c[:n])
        self.a, self.b, self.c = self.a[n:], self.b[n:], self.c[n:]
        return head


def _bits_to_blocks(bits_vec: np.ndarray) -> np.ndarray:
    out = blocks.zeros(bits_vec.shape[0])
    out[:, 0] = bits_vec.astype(np.uint64)
    return out


def _cross_product_sender(channel, pool: CotPool, my_bits, rng, tweak) -> np.ndarray:
    """OT-sender half of a cross term: returns share r of my_bits * theirs."""
    n = my_bits.shape[0]
    r = rng.integers(0, 2, n).astype(np.uint8)
    m0 = _bits_to_blocks(r)
    m1 = _bits_to_blocks(r ^ my_bits)
    ot_send_from_cot(channel, pool.take_sender(n), m0, m1, tweak_base=tweak)
    return r


def _cross_product_receiver(channel, pool: CotPool, my_bits, tweak) -> np.ndarray:
    """OT-receiver half: returns share (r XOR a*b) of the cross term."""
    got = ot_receive_from_cot(channel, pool.take_receiver(my_bits.shape[0]), my_bits, tweak_base=tweak)
    return (got[:, 0] & np.uint64(1)).astype(np.uint8)


def generate_bit_triples(
    channel: Channel,
    n: int,
    send_pool: CotPool,
    recv_pool: CotPool,
    rng: np.random.Generator,
    party: int,
    tweak_base: int = 0,
) -> BitTriples:
    """Generate n bit triples; both parties call this symmetrically.

    Args:
        send_pool: COT pool in which this party is the *sender* (used
            for the cross term where it offers messages).
        recv_pool: COT pool in which this party is the *receiver*.
        party: 0 or 1; fixes the order of the two OT directions so the
            parties stay in lockstep.
    """
    a = rng.integers(0, 2, n).astype(np.uint8)
    b = rng.integers(0, 2, n).astype(np.uint8)
    if party == 0:
        # direction 1: P0 sends a0, P1 selects with b1.
        r_mine = _cross_product_sender(channel, send_pool, a, rng, tweak_base)
        # direction 2: P1 sends a1, P0 selects with b0.
        t_mine = _cross_product_receiver(channel, recv_pool, b, tweak_base + n)
    elif party == 1:
        t_mine = _cross_product_receiver(channel, recv_pool, b, tweak_base)
        r_mine = _cross_product_sender(channel, send_pool, a, rng, tweak_base + n)
    else:
        raise ParameterError("party must be 0 or 1")
    # c_i = a_i*b_i (local) XOR own shares of both cross terms.
    c = (a & b) ^ r_mine ^ t_mine
    return BitTriples(a, b, c)


def triples_via_service(session, n: int) -> BitTriples:
    """Draw n pooled triples from a provisioning-service session.

    Both parties call this in lockstep; the service generated the
    triples in the background (cross-direction OTs over its own
    sub-channel), so the online cost here is one allocation offset on
    the session channel plus a possible stall if the pool is behind.
    """
    return session.draw_triples(n)


def and_shared(
    channel: Channel,
    triples: BitTriples,
    x: np.ndarray,
    y: np.ndarray,
    party: int,
) -> np.ndarray:
    """GMW AND on shared bit vectors using pre-generated triples.

    Both parties call this with their shares; openings of d = x XOR a
    and e = y XOR b cross the channel; returns this party's share of
    ``x AND y``.
    """
    x = np.asarray(x, dtype=np.uint8) & 1
    y = np.asarray(y, dtype=np.uint8) & 1
    n = x.shape[0]
    batch = triples.take(n)
    d_share = x ^ batch.a
    e_share = y ^ batch.b
    if party == 0:
        channel.send_bits(np.concatenate([d_share, e_share]))
        theirs = channel.recv_bits()
    else:
        theirs = channel.recv_bits()
        channel.send_bits(np.concatenate([d_share, e_share]))
    d = d_share ^ theirs[:n]
    e = e_share ^ theirs[n:]
    share = batch.c ^ (d & batch.b) ^ (e & batch.a)
    if party == 0:
        share ^= d & e
    return share
