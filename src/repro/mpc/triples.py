"""Beaver triples from OT correlations: bits, ring elements, matrices.

A bit triple gives the parties XOR shares of bits (a, b, c) with
``c = a AND b``; one triple evaluates one AND gate on shared bits
(GMW).  Each triple needs the two cross products ``a0*b1`` and
``a1*b0`` -- one chosen-message OT in each direction, which is exactly
the role-switching workload Ironman's unified architecture serves
(Section 5.2).

Arithmetic (mod 2^k) triples use the same COT substrate through
**Gilboa multiplication**: the cross product ``x * y`` of two privately
held ring elements decomposes over the bits of x -- for bit position t
the holder of y (the OT *sender*) offers the correlated pair
``(r_t, r_t + y*2^t)`` and the holder of x selects with its t-th bit.
On a COT correlation the chosen-message pair collapses to *half a
message*: the receiver derandomizes with one correction bit and the
sender ships a single masked ring element per correlation
(:func:`gilboa_send` / :func:`gilboa_receive`), the per-COT online
payload the analytical models charge.  Ring triples consume
``bits`` COTs per element per direction; matrix triples batch whole
rows/columns of the peer operand as the correlated payload, which is
how one secure MatMul costs ``(m*k + k*n) * bits`` COTs rather than
``m*k*n`` (see :mod:`repro.mpc.matmul`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto import blocks
from repro.crypto.crhf import DEFAULT_CRHF, Crhf
from repro.errors import ParameterError, ProtocolError
from repro.ot.channel import Channel
from repro.ot.cot import CotPool, CotReceiverBatch, CotSenderBatch
from repro.ot.ot_from_cot import ot_receive_from_cot, ot_send_from_cot


@dataclass
class BitTriples:
    """One party's shares of n bit triples (a, b, c = a AND b)."""

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray

    def __post_init__(self):
        self.a = np.asarray(self.a, dtype=np.uint8) & 1
        self.b = np.asarray(self.b, dtype=np.uint8) & 1
        self.c = np.asarray(self.c, dtype=np.uint8) & 1
        if not (self.a.shape == self.b.shape == self.c.shape):
            raise ParameterError("triple component lengths disagree")

    def __len__(self) -> int:
        return self.a.shape[0]

    def take(self, n: int) -> "BitTriples":
        """Split off the first n triples (consuming them)."""
        if n > len(self):
            raise ParameterError(f"only {len(self)} triples left, need {n}")
        head = BitTriples(self.a[:n], self.b[:n], self.c[:n])
        self.a, self.b, self.c = self.a[n:], self.b[n:], self.c[n:]
        return head


def _bits_to_blocks(bits_vec: np.ndarray) -> np.ndarray:
    out = blocks.zeros(bits_vec.shape[0])
    out[:, 0] = bits_vec.astype(np.uint64)
    return out


def _cross_product_sender(channel, pool: CotPool, my_bits, rng, tweak) -> np.ndarray:
    """OT-sender half of a cross term: returns share r of my_bits * theirs."""
    n = my_bits.shape[0]
    r = rng.integers(0, 2, n).astype(np.uint8)
    m0 = _bits_to_blocks(r)
    m1 = _bits_to_blocks(r ^ my_bits)
    ot_send_from_cot(channel, pool.take_sender(n), m0, m1, tweak_base=tweak)
    return r


def _cross_product_receiver(channel, pool: CotPool, my_bits, tweak) -> np.ndarray:
    """OT-receiver half: returns share (r XOR a*b) of the cross term."""
    got = ot_receive_from_cot(channel, pool.take_receiver(my_bits.shape[0]), my_bits, tweak_base=tweak)
    return (got[:, 0] & np.uint64(1)).astype(np.uint8)


def generate_bit_triples(
    channel: Channel,
    n: int,
    send_pool: CotPool,
    recv_pool: CotPool,
    rng: np.random.Generator,
    party: int,
    tweak_base: int = 0,
) -> BitTriples:
    """Generate n bit triples; both parties call this symmetrically.

    Args:
        send_pool: COT pool in which this party is the *sender* (used
            for the cross term where it offers messages).
        recv_pool: COT pool in which this party is the *receiver*.
        party: 0 or 1; fixes the order of the two OT directions so the
            parties stay in lockstep.
    """
    a = rng.integers(0, 2, n).astype(np.uint8)
    b = rng.integers(0, 2, n).astype(np.uint8)
    if party == 0:
        # direction 1: P0 sends a0, P1 selects with b1.
        r_mine = _cross_product_sender(channel, send_pool, a, rng, tweak_base)
        # direction 2: P1 sends a1, P0 selects with b0.
        t_mine = _cross_product_receiver(channel, recv_pool, b, tweak_base + n)
    elif party == 1:
        t_mine = _cross_product_receiver(channel, recv_pool, b, tweak_base)
        r_mine = _cross_product_sender(channel, send_pool, a, rng, tweak_base + n)
    else:
        raise ParameterError("party must be 0 or 1")
    # c_i = a_i*b_i (local) XOR own shares of both cross terms.
    c = (a & b) ^ r_mine ^ t_mine
    return BitTriples(a, b, c)


def triples_via_service(session, n: int) -> BitTriples:
    """Draw n pooled triples from a provisioning-service session.

    Both parties call this in lockstep; the service generated the
    triples in the background (cross-direction OTs over its own
    sub-channel), so the online cost here is one allocation offset on
    the session channel plus a possible stall if the pool is behind.
    """
    return session.draw_triples(n)


# ---------------------------------------------------------------------------
# Arithmetic (mod 2^k) triples via Gilboa multiplication
# ---------------------------------------------------------------------------

#: Tweak stride separating the payload slots one COT pads (a Gilboa
#: payload wider than two ring elements hashes the block repeatedly).
_PAD_STRIDE = np.uint64(1) << np.uint64(48)


def ring_mask_u64(bits: int) -> np.uint64:
    """The mod-2^bits reduction mask as a uint64 scalar."""
    if bits < 1 or bits > 64:
        raise ParameterError("ring width must be in [1, 64] bits")
    return np.uint64((1 << bits) - 1)


def _expand_ring_pads(
    x: np.ndarray, tweaks: np.ndarray, width: int, crhf: Crhf
) -> np.ndarray:
    """Stretch one block per COT into ``width`` uint64 ring pads."""
    n = x.shape[0]
    n_hashes = (width + 1) // 2
    out = np.empty((n, 2 * n_hashes), dtype=np.uint64)
    tweaks = np.asarray(tweaks, dtype=np.uint64)
    for j in range(n_hashes):
        h = crhf.hash_tweaked(x, tweaks + np.uint64(j) * _PAD_STRIDE)
        out[:, 2 * j] = h[:, 0]
        out[:, 2 * j + 1] = h[:, 1]
    return out[:, :width]


def gilboa_send(
    channel: Channel,
    cots: CotSenderBatch,
    corr: np.ndarray,
    bits: int,
    tweaks: np.ndarray,
    crhf: Crhf = DEFAULT_CRHF,
) -> np.ndarray:
    """Correlated-OT sender: additive share of ``choice_i * corr[i]``.

    For each correlation i the receiver ends with ``pad_i +
    choice_i*corr[i]`` and this side returns ``-pad_i``, so the two
    outputs are additive shares of the selected correlated value.  Wire
    cost is the Gilboa half-message: the receiver's one derandomization
    bit plus ONE masked ring element per payload slot (not the two
    full messages of a chosen-message OT).

    Args:
        corr: (n, width) uint64 ring correlations (already reduced).
        bits: ring width (mod 2^bits).
        tweaks: (n,) per-COT hash tweaks (absolute COT indices).
    """
    corr = np.ascontiguousarray(corr, dtype=np.uint64)
    if corr.ndim != 2 or corr.shape[0] != len(cots):
        raise ProtocolError("corr must be (n_cots, width)")
    mask = ring_mask_u64(bits)
    d = channel.recv_bits()
    if d.shape[0] != len(cots):
        raise ProtocolError("correction bit vector has the wrong length")
    width = corr.shape[1]
    # Pad for logical choice j is expand(z XOR (j XOR d) * Delta).
    pad0 = _expand_ring_pads(
        blocks.xor(cots.z, blocks.mul_bit(cots.delta, d)), tweaks, width, crhf
    ) & mask
    pad1 = _expand_ring_pads(
        blocks.xor(cots.z, blocks.mul_bit(cots.delta, d ^ 1)), tweaks, width, crhf
    ) & mask
    channel.send_ring((corr + pad0 + pad1) & mask)
    return (np.uint64(0) - pad0) & mask


def gilboa_receive(
    channel: Channel,
    cots: CotReceiverBatch,
    choices: np.ndarray,
    width: int,
    bits: int,
    tweaks: np.ndarray,
    crhf: Crhf = DEFAULT_CRHF,
) -> np.ndarray:
    """Correlated-OT receiver: additive share of ``choice_i * corr[i]``."""
    choices = np.asarray(choices, dtype=np.uint8) & 1
    if choices.shape[0] != len(cots):
        raise ProtocolError("COT batch and choice vector must have equal length")
    mask = ring_mask_u64(bits)
    channel.send_bits(cots.x ^ choices)
    pad_mine = _expand_ring_pads(cots.y, tweaks, width, crhf) & mask
    c = channel.recv_ring().reshape(choices.shape[0], width)
    return np.where(choices[:, None].astype(bool), (c - pad_mine) & mask, pad_mine)


def gilboa_send_stream(
    channel: Channel,
    cots: CotSenderBatch,
    corr_fn,
    width: int,
    bits: int,
    tweaks: np.ndarray,
    chunk_rows: int,
    crhf: Crhf = DEFAULT_CRHF,
):
    """Chunked :func:`gilboa_send`: yields ``(start, share_chunk)``.

    The correction matrix is built row block by row block through
    ``corr_fn(start, stop) -> (stop-start, width)`` and shipped as one
    ring message per block, so neither the correlations nor the pad
    arrays are ever materialized at full ``(n_cots, width)`` size --
    the caller reduces each yielded share chunk immediately.  Ring
    payloads carry no per-message framing, so total wire bytes are
    IDENTICAL to the one-shot path (only the message count changes),
    and per-row pads make the yielded values bit-identical too.  Both
    parties must agree on ``chunk_rows``.
    """
    mask = ring_mask_u64(bits)
    d = channel.recv_bits()
    if d.shape[0] != len(cots):
        raise ProtocolError("correction bit vector has the wrong length")
    tweaks = np.asarray(tweaks, dtype=np.uint64)
    for start in range(0, len(cots), chunk_rows):
        stop = min(start + chunk_rows, len(cots))
        corr = np.ascontiguousarray(corr_fn(start, stop), dtype=np.uint64)
        if corr.shape != (stop - start, width):
            raise ProtocolError("corr_fn returned a wrongly shaped chunk")
        z = cots.z[start:stop]
        d_chunk = d[start:stop]
        tw = tweaks[start:stop]
        pad0 = _expand_ring_pads(
            blocks.xor(z, blocks.mul_bit(cots.delta, d_chunk)), tw, width, crhf
        ) & mask
        pad1 = _expand_ring_pads(
            blocks.xor(z, blocks.mul_bit(cots.delta, d_chunk ^ 1)), tw, width, crhf
        ) & mask
        channel.send_ring((corr + pad0 + pad1) & mask)
        yield start, (np.uint64(0) - pad0) & mask


def gilboa_receive_stream(
    channel: Channel,
    cots: CotReceiverBatch,
    choices: np.ndarray,
    width: int,
    bits: int,
    tweaks: np.ndarray,
    chunk_rows: int,
    crhf: Crhf = DEFAULT_CRHF,
):
    """Chunked :func:`gilboa_receive`: yields ``(start, share_chunk)``.

    Mirror of :func:`gilboa_send_stream`: the derandomization bits go
    out in one message (as in the one-shot path), then each correction
    row block is received and unpadded separately so the full
    ``(n_cots, width)`` result never exists in memory at once.
    """
    choices = np.asarray(choices, dtype=np.uint8) & 1
    if choices.shape[0] != len(cots):
        raise ProtocolError("COT batch and choice vector must have equal length")
    mask = ring_mask_u64(bits)
    channel.send_bits(cots.x ^ choices)
    tweaks = np.asarray(tweaks, dtype=np.uint64)
    for start in range(0, len(cots), chunk_rows):
        stop = min(start + chunk_rows, len(cots))
        pad_mine = _expand_ring_pads(
            cots.y[start:stop], tweaks[start:stop], width, crhf
        ) & mask
        c = channel.recv_ring().reshape(stop - start, width)
        picked = choices[start:stop, None].astype(bool)
        yield start, np.where(picked, (c - pad_mine) & mask, pad_mine)


@dataclass
class RingTriples:
    """One party's additive shares of n triples (a, b, c = a*b) mod 2^bits."""

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    bits: int = 32

    def __post_init__(self):
        mask = ring_mask_u64(self.bits)
        self.a = np.asarray(self.a, dtype=np.uint64) & mask
        self.b = np.asarray(self.b, dtype=np.uint64) & mask
        self.c = np.asarray(self.c, dtype=np.uint64) & mask
        if not (self.a.shape == self.b.shape == self.c.shape):
            raise ParameterError("triple component lengths disagree")

    def __len__(self) -> int:
        return self.a.shape[0]

    def take(self, n: int) -> "RingTriples":
        """Split off the first n triples (consuming them)."""
        if n > len(self):
            raise ParameterError(f"only {len(self)} ring triples left, need {n}")
        head = RingTriples(self.a[:n], self.b[:n], self.c[:n], self.bits)
        self.a, self.b, self.c = self.a[n:], self.b[n:], self.c[n:]
        return head


@dataclass
class MatrixTriples:
    """One party's shares of a matrix Beaver triple: C = A @ B mod 2^bits.

    ``a`` is (m, k), ``b`` is (k, n), ``c`` is (m, n); one triple
    preprocesses one secure MatMul of those dimensions (the online
    phase only opens masked operands, see :mod:`repro.mpc.matmul`).
    """

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    bits: int = 32

    def __post_init__(self):
        mask = ring_mask_u64(self.bits)
        self.a = np.asarray(self.a, dtype=np.uint64) & mask
        self.b = np.asarray(self.b, dtype=np.uint64) & mask
        self.c = np.asarray(self.c, dtype=np.uint64) & mask
        m, k = self.a.shape
        k2, n = self.b.shape
        if k != k2 or self.c.shape != (m, n):
            raise ParameterError("matrix triple shapes are inconsistent")

    @property
    def dims(self) -> tuple:
        return (self.a.shape[0], self.a.shape[1], self.b.shape[1])


def _bit_decompose(values: np.ndarray, bits: int) -> np.ndarray:
    """Flatten ring values into per-bit OT choices, (n*bits,) uint8."""
    values = np.asarray(values, dtype=np.uint64).reshape(-1)
    positions = np.arange(bits, dtype=np.uint64)
    return ((values[:, None] >> positions[None, :]) & np.uint64(1)).astype(
        np.uint8
    ).reshape(-1)


def _gilboa_cross_send(channel, pool: CotPool, payload, bits, tweak_base) -> np.ndarray:
    """Sender half of a scalar cross term: share of (their a) * (my payload)."""
    payload = np.asarray(payload, dtype=np.uint64)
    n = payload.shape[0]
    mask = ring_mask_u64(bits)
    shifts = np.uint64(1) << np.arange(bits, dtype=np.uint64)
    corr = ((payload[:, None] * shifts[None, :]) & mask).reshape(n * bits, 1)
    tweaks = np.arange(tweak_base, tweak_base + n * bits, dtype=np.uint64)
    s = gilboa_send(channel, pool.take_sender(n * bits), corr, bits, tweaks)
    return s.reshape(n, bits).sum(axis=1, dtype=np.uint64) & mask


def _gilboa_cross_receive(channel, pool: CotPool, my_vals, bits, tweak_base) -> np.ndarray:
    """Receiver half: share of (my value) * (their payload)."""
    my_vals = np.asarray(my_vals, dtype=np.uint64)
    n = my_vals.shape[0]
    mask = ring_mask_u64(bits)
    choices = _bit_decompose(my_vals, bits)
    tweaks = np.arange(tweak_base, tweak_base + n * bits, dtype=np.uint64)
    t = gilboa_receive(channel, pool.take_receiver(n * bits), choices, 1, bits, tweaks)
    return t.reshape(n, bits).sum(axis=1, dtype=np.uint64) & mask


def ring_triple_cots(n: int, bits: int) -> int:
    """COTs n ring triples consume in EACH direction (bits per element)."""
    return n * bits


def generate_ring_triples(
    channel: Channel,
    n: int,
    bits: int,
    send_pool: CotPool,
    recv_pool: CotPool,
    rng: np.random.Generator,
    party: int,
    send_tweak_base: int = 0,
    recv_tweak_base: int = 0,
) -> RingTriples:
    """Generate n mod-2^bits Beaver triples; both parties call symmetrically.

    Cross term 1 is ``a0*b1`` (P0 selects with its bits of a, P1 ships
    payloads of b) and runs over the direction where P1 is the COT
    sender; cross term 2 is ``a1*b0`` the other way around -- the same
    role-switching shape as bit triples, ``n*bits`` COTs per direction.

    Tweak bases must equal the absolute pool offsets of the consumed
    ranges (per direction) so both parties hash with matching tweaks.
    """
    mask = ring_mask_u64(bits)
    a = rng.integers(0, 1 << bits, n, dtype=np.uint64)
    b = rng.integers(0, 1 << bits, n, dtype=np.uint64)
    if party == 0:
        # term 1: choices from a0, payload b1 (P0 receives).
        t1 = _gilboa_cross_receive(channel, recv_pool, a, bits, recv_tweak_base)
        # term 2: choices from a1, payload b0 (P0 sends).
        t2 = _gilboa_cross_send(channel, send_pool, b, bits, send_tweak_base)
    elif party == 1:
        t1 = _gilboa_cross_send(channel, send_pool, b, bits, send_tweak_base)
        t2 = _gilboa_cross_receive(channel, recv_pool, a, bits, recv_tweak_base)
    else:
        raise ParameterError("party must be 0 or 1")
    c = (a * b + t1 + t2) & mask
    return RingTriples(a, b, c, bits)


def dealer_ring_triples(n: int, bits: int, rng: np.random.Generator) -> tuple:
    """Trusted-dealer ring triples: (party0 shares, party1 shares)."""
    mask = ring_mask_u64(bits)
    a = rng.integers(0, 1 << bits, n, dtype=np.uint64)
    b = rng.integers(0, 1 << bits, n, dtype=np.uint64)
    c = (a * b) & mask
    a0 = rng.integers(0, 1 << bits, n, dtype=np.uint64)
    b0 = rng.integers(0, 1 << bits, n, dtype=np.uint64)
    c0 = rng.integers(0, 1 << bits, n, dtype=np.uint64)
    return (
        RingTriples(a0, b0, c0, bits),
        RingTriples((a - a0) & mask, (b - b0) & mask, (c - c0) & mask, bits),
    )


def dealer_matrix_triples(
    m: int, k: int, n: int, bits: int, rng: np.random.Generator
) -> tuple:
    """Trusted-dealer matrix triple shares (for tests and cost studies)."""
    mask = ring_mask_u64(bits)
    a = rng.integers(0, 1 << bits, (m, k), dtype=np.uint64)
    b = rng.integers(0, 1 << bits, (k, n), dtype=np.uint64)
    c = (a @ b) & mask
    a0 = rng.integers(0, 1 << bits, (m, k), dtype=np.uint64)
    b0 = rng.integers(0, 1 << bits, (k, n), dtype=np.uint64)
    c0 = rng.integers(0, 1 << bits, (m, n), dtype=np.uint64)
    return (
        MatrixTriples(a0, b0, c0, bits),
        MatrixTriples((a - a0) & mask, (b - b0) & mask, (c - c0) & mask, bits),
    )


def ring_triples_via_service(session, n: int) -> RingTriples:
    """Draw n pooled mod-2^k triples from a provisioning-service session."""
    return session.draw_ring_triples(n)


def mul_shared(
    channel: Channel,
    triples: RingTriples,
    x: np.ndarray,
    y: np.ndarray,
    party: int,
) -> np.ndarray:
    """Beaver multiplication of additively shared ring vectors.

    Both parties open ``d = x - a`` and ``e = y - b`` (one message
    each) and return this party's share of ``x * y`` mod 2^bits.
    """
    mask = ring_mask_u64(triples.bits)
    x = np.asarray(x, dtype=np.uint64) & mask
    y = np.asarray(y, dtype=np.uint64) & mask
    n = x.shape[0]
    batch = triples.take(n)
    d_share = (x - batch.a) & mask
    e_share = (y - batch.b) & mask
    mine = np.concatenate([d_share, e_share])
    if party == 0:
        channel.send_ring(mine)
        theirs = channel.recv_ring()
    else:
        theirs = channel.recv_ring()
        channel.send_ring(mine)
    d = (d_share + theirs[:n]) & mask
    e = (e_share + theirs[n:]) & mask
    share = (batch.c + d * batch.b + e * batch.a) & mask
    if party == 0:
        share = (share + d * e) & mask
    return share


def and_shared(
    channel: Channel,
    triples: BitTriples,
    x: np.ndarray,
    y: np.ndarray,
    party: int,
) -> np.ndarray:
    """GMW AND on shared bit vectors using pre-generated triples.

    Both parties call this with their shares; openings of d = x XOR a
    and e = y XOR b cross the channel; returns this party's share of
    ``x AND y``.
    """
    x = np.asarray(x, dtype=np.uint8) & 1
    y = np.asarray(y, dtype=np.uint8) & 1
    n = x.shape[0]
    batch = triples.take(n)
    d_share = x ^ batch.a
    e_share = y ^ batch.b
    if party == 0:
        channel.send_bits(np.concatenate([d_share, e_share]))
        theirs = channel.recv_bits()
    else:
        theirs = channel.recv_bits()
        channel.send_bits(np.concatenate([d_share, e_share]))
    d = d_share ^ theirs[:n]
    e = e_share ^ theirs[n:]
    share = batch.c ^ (d & batch.b) ^ (e & batch.a)
    if party == 0:
        share ^= d & e
    return share
