"""DReLU and ReLU on additive shares (the paper's flagship nonlinearity).

DReLU(x) = [x >= 0] for a two's-complement ring value ``x`` shared as
``x = (x0 + x1) mod 2^l``.  Writing ``low_i = x_i mod 2^(l-1)``:

    msb(x) = msb(x0) XOR msb(x1) XOR carry
    carry  = [low0 + low1 >= 2^(l-1)]
           = [low1 > (2^(l-1) - 1 - low0)]

so the carry is exactly one millionaires' comparison with P0's private
input ``2^(l-1)-1-low0`` and P1's private input ``low1`` -- and
``DReLU = NOT msb``.  ReLU multiplexes the arithmetic shares with the
boolean DReLU shares through two OTs (one per direction, again the
unified-architecture workload).
"""

from __future__ import annotations

import numpy as np

from repro.crypto import blocks
from repro.mpc.compare import millionaire_p0, millionaire_p1
from repro.mpc.sharing import ArithmeticShares, BooleanShares, ring_mask
from repro.mpc.triples import BitTriples
from repro.ot.channel import Channel
from repro.ot.cot import CotPool
from repro.ot.ot_from_cot import ot_receive_from_cot, ot_send_from_cot

_MUX_TWEAK = 1 << 28


def _drelu_party(
    channel: Channel,
    shares: ArithmeticShares,
    pool: CotPool,
    triples: BitTriples,
    rng,
    party: int,
) -> BooleanShares:
    bits = shares.bits
    low_mask = np.uint64((1 << (bits - 1)) - 1)
    values = shares.values.astype(np.uint64)
    msb_share = ((values >> np.uint64(bits - 1)) & np.uint64(1)).astype(np.uint8)
    low = values & low_mask
    if party == 0:
        x_private = low_mask - low  # 2^(l-1) - 1 - low0
        carry = millionaire_p0(channel, x_private, bits - 1, pool, triples, rng)
        # DReLU = NOT msb: fold the NOT into P0's share.
        out = msb_share ^ carry ^ 1
    else:
        carry = millionaire_p1(channel, low, bits - 1, pool, triples)
        out = msb_share ^ carry
    return BooleanShares(out)


def _mux_party(
    channel: Channel,
    b: BooleanShares,
    x: ArithmeticShares,
    send_pool: CotPool,
    recv_pool: CotPool,
    rng,
    party: int,
) -> ArithmeticShares:
    """Shares of b * x from boolean b-shares and arithmetic x-shares.

    y = b0*x0 + b1*x1 + b1*[x0(1-2*b0)] + b0*[x1(1-2*b1)]; each bracket
    couples one party's ring value with the other's bit -> one OT.
    """
    n = len(x)
    mask = np.uint64(ring_mask(x.bits))
    vals = x.values.astype(np.uint64)
    bits_vec = b.bits_vec.astype(np.uint64)
    coeff = (vals * (np.uint64(1) - np.uint64(2) * bits_vec)) & mask

    def send_side(tweak):
        r = rng.integers(0, 1 << x.bits, n, dtype=np.uint64)
        m0 = blocks.zeros(n)
        m0[:, 0] = r
        m1 = blocks.zeros(n)
        m1[:, 0] = (r + coeff) & mask
        ot_send_from_cot(channel, send_pool.take_sender(n), m0, m1, tweak_base=tweak)
        return (-r) & mask

    def recv_side(tweak):
        got = ot_receive_from_cot(
            channel, recv_pool.take_receiver(n), b.bits_vec, tweak_base=tweak
        )
        return got[:, 0] & mask

    if party == 0:
        u = send_side(_MUX_TWEAK)
        v = recv_side(_MUX_TWEAK + n)
    else:
        v = recv_side(_MUX_TWEAK)
        u = send_side(_MUX_TWEAK + n)
    local = (bits_vec * vals) & mask
    out = (local + u + v) & mask
    return ArithmeticShares(out.astype(x.values.dtype), x.bits)


def drelu_pair(channel, shares, pool, triples, rng, party) -> BooleanShares:
    """One party's DReLU evaluation; call from both parties in lockstep."""
    return _drelu_party(channel, shares, pool, triples, rng, party)


def relu_pair(
    channel: Channel,
    shares: ArithmeticShares,
    cmp_pool: CotPool,
    send_pool: CotPool,
    recv_pool: CotPool,
    triples: BitTriples,
    rng,
    party: int,
) -> tuple:
    """Full ReLU on additive shares: DReLU then multiplex.

    Returns (relu_shares, drelu_shares).  ``cmp_pool`` feeds the
    comparison's per-level OTs (this party's fixed role); the mux needs
    OTs in *both* directions, hence the separate send/recv pools --
    the role-switching requirement Section 5.2 motivates.
    """
    d = drelu_pair(channel, shares, cmp_pool, triples, rng, party)
    y = _mux_party(channel, d, shares, send_pool, recv_pool, rng, party)
    return y, d


def relu_via_service(session, shares: ArithmeticShares, rng) -> tuple:
    """ReLU drawing every correlation from a provisioning-service session.

    Instead of hand-building COT pools and pre-generating triples (the
    inline-Ferret pattern of the examples), both parties draw from the
    shared :class:`repro.runtime.service.CorrelationService` pools and
    run the unchanged :func:`relu_pair` over the session's sub-channel.
    The draw sequence below is identical on both sides, which is what
    keeps the two parties' correlations aligned.
    """
    from repro.mpc.compare import cots_needed, triples_needed
    from repro.mpc.triples import triples_via_service

    n = len(shares)
    n_cmp = cots_needed(n, shares.bits - 1)
    n_tri = triples_needed(n, shares.bits - 1)
    party = session.party
    if party == 0:
        cmp_pool = session.sender_cot_pool(n_cmp)  # P0 sends the level OTs
        send_pool = session.sender_cot_pool(n)
        recv_pool = session.receiver_cot_pool(n)
    else:
        cmp_pool = session.receiver_cot_pool(n_cmp)
        recv_pool = session.receiver_cot_pool(n)  # pairs P0's sender draw
        send_pool = session.sender_cot_pool(n)
    triples = triples_via_service(session, n_tri)
    return relu_pair(
        session.channel, shares, cmp_pool, send_pool, recv_pool, triples, rng, party
    )
