"""Secret sharing over Z_{2^l} and GF(2).

Two flavours, matching what hybrid HE/MPC frameworks juggle:

* **arithmetic** (additive) shares over the ring Z_{2^l}: values used
  by linear layers; ``x = (x0 + x1) mod 2^l``;
* **boolean** (XOR) shares of bits: outputs of comparisons;
  ``b = b0 XOR b1``.

Shares are numpy vectors so the protocol layer stays batched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError

#: Default ring width (bits) used by the nonlinear protocols.
DEFAULT_BITS = 32


def _ring_dtype(bits: int):
    if bits <= 32:
        return np.uint32
    if bits <= 64:
        return np.uint64
    raise ParameterError("ring width must be <= 64 bits")


def ring_mask(bits: int) -> int:
    return (1 << bits) - 1


@dataclass
class ArithmeticShares:
    """One party's additive shares of a value vector."""

    values: np.ndarray
    bits: int = DEFAULT_BITS

    def __post_init__(self):
        self.values = np.asarray(self.values, dtype=_ring_dtype(self.bits))

    def __len__(self) -> int:
        return self.values.shape[0]


@dataclass
class BooleanShares:
    """One party's XOR shares of a bit vector."""

    bits_vec: np.ndarray

    def __post_init__(self):
        self.bits_vec = np.asarray(self.bits_vec, dtype=np.uint8) & 1

    def __len__(self) -> int:
        return self.bits_vec.shape[0]


def share_arith(values: np.ndarray, rng: np.random.Generator, bits: int = DEFAULT_BITS) -> tuple:
    """Split plaintext values into two additive shares."""
    dtype = _ring_dtype(bits)
    values = np.asarray(values, dtype=np.uint64) & np.uint64(ring_mask(bits))
    share0 = rng.integers(0, 1 << bits, values.shape[0], dtype=np.uint64)
    share1 = (values - share0) & np.uint64(ring_mask(bits))
    return (
        ArithmeticShares(share0.astype(dtype), bits),
        ArithmeticShares(share1.astype(dtype), bits),
    )


def share_arith_nd(values: np.ndarray, rng: np.random.Generator, bits: int = DEFAULT_BITS) -> tuple:
    """Additively share an array of ANY shape into two raw uint64 arrays.

    The matrix protocols (secure MatMul) work on raw ``(m, k)`` uint64
    share arrays rather than the 1-D :class:`ArithmeticShares`
    container; this is their sharing entry point.
    """
    mask = np.uint64(ring_mask(bits))
    values = np.asarray(values, dtype=np.uint64) & mask
    share0 = rng.integers(0, 1 << bits, values.shape, dtype=np.uint64)
    return share0, (values - share0) & mask


def reconstruct_arith(a: ArithmeticShares, b: ArithmeticShares) -> np.ndarray:
    """Recombine additive shares into plaintext (mod 2^bits)."""
    if a.bits != b.bits or len(a) != len(b):
        raise ParameterError("mismatched arithmetic shares")
    mask = np.uint64(ring_mask(a.bits))
    return (a.values.astype(np.uint64) + b.values.astype(np.uint64)) & mask


def share_bool(bits_vec: np.ndarray, rng: np.random.Generator) -> tuple:
    """Split plaintext bits into two XOR shares."""
    bits_vec = np.asarray(bits_vec, dtype=np.uint8) & 1
    share0 = rng.integers(0, 2, bits_vec.shape[0]).astype(np.uint8)
    return BooleanShares(share0), BooleanShares(share0 ^ bits_vec)


def reconstruct_bool(a: BooleanShares, b: BooleanShares) -> np.ndarray:
    """Recombine XOR shares into plaintext bits."""
    if len(a) != len(b):
        raise ParameterError("mismatched boolean shares")
    return a.bits_vec ^ b.bits_vec


def to_signed(values: np.ndarray, bits: int = DEFAULT_BITS) -> np.ndarray:
    """Interpret ring elements as two's-complement signed integers."""
    values = np.asarray(values, dtype=np.int64)
    half = 1 << (bits - 1)
    return np.where(values >= half, values - (1 << bits), values)


def from_signed(values: np.ndarray, bits: int = DEFAULT_BITS) -> np.ndarray:
    """Embed signed integers into the ring Z_{2^bits}."""
    return np.asarray(values, dtype=np.int64) & ring_mask(bits)
