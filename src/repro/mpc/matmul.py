"""Executable secure matrix multiplication (the Fig 16 workload, live).

PrivQuant-style quantized MatMul evaluates ``(m x k) @ (k x n)`` on
additive shares with COT-based multiplication.  This module makes the
preprocessing/online split an actual code path:

* **Preprocessing** -- :func:`generate_matrix_triples` builds a matrix
  Beaver triple ``C = A @ B`` via Gilboa multiplication over pooled
  COTs.  Each cross term bit-decomposes ONE operand: the activation
  term sources ``m*k*bits`` correlations (payload = a row of the peer's
  B share), the weight term ``k*n*bits`` (payload = a column of the
  peer's A share), so the total demand is exactly
  :func:`matmul_cots` -- the analytical model and the executable
  protocol share one counting function and one per-COT byte constant
  (:data:`BYTES_PER_COT`), so they cannot silently diverge.
* **Role switching** -- ``ot_sender`` picks which party ships the
  Gilboa correction payloads for BOTH cross terms.  A fixed-role
  accelerator is stuck with one direction; Ironman's unified
  architecture picks the cheaper one per term (the paper's 2x comm /
  1.4x latency claim).  Both directions are real code paths here with
  measurable bytes.
* **Online** -- :func:`matmul_online` consumes one triple: the parties
  open masked operands ``D = X - A`` and ``E = Y - B`` (one message
  each, :func:`matmul_online_bytes` exactly) and locally combine
  ``C + D@B_p + A_p@E (+ D@E)``.  With warm pools the online phase
  does no OT work at all -- the Figure 1(b)/Section 5.2 amortization
  realized for linear layers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError, ProtocolError
from repro.mpc.triples import (
    MatrixTriples,
    _bit_decompose,
    gilboa_receive_stream,
    gilboa_send_stream,
    ring_mask_u64,
)
from repro.ot.channel import Channel
from repro.ot.cot import CotPool

#: Default operand bit-width (quantized inference).
DEFAULT_BITS = 8

#: Online bytes shipped per COT-backed multiplication term: one masked
#: 128-bit block plus the receiver's derandomization bit.  Single
#: definition shared by the analytical PPML model
#: (:mod:`repro.ppml.matmul`) and the executable protocol's byte
#: predictors below.
BYTES_PER_COT = 17

#: Row-block size for streamed Gilboa correction payloads.  FIG16-size
#: triples used to materialize the full (t, width) correction matrix --
#: ~1 GiB at (64, 4096, 64) x 8 bits -- so the payload now streams in
#: blocks of this many COT rows; peak working set per term becomes
#: ``GILBOA_CHUNK_ROWS * width * 8`` bytes regardless of t.
GILBOA_CHUNK_ROWS = 1 << 12


@dataclass(frozen=True)
class MatmulDims:
    """(input, hidden, output) dimensions as labelled in Figure 16."""

    m: int
    k: int
    n: int

    def __post_init__(self):
        if min(self.m, self.k, self.n) < 1:
            raise ParameterError("matmul dimensions must be positive")

    @property
    def label(self) -> str:
        return f"({self.m},{self.k},{self.n})"


#: Figure 16 layer shapes (BERT-Base and LLaMA projections, seq 32).
FIG16_DIMS = (
    MatmulDims(64, 768, 768),
    MatmulDims(64, 768, 64),
    MatmulDims(64, 4096, 64),
)


def matmul_cots(dims: MatmulDims, bits: int = DEFAULT_BITS) -> int:
    """COT correlations one secure MatMul consumes.

    The product of secret shares decomposes into two cross terms; the
    one sourced from the activation side scales with ``m*k`` elements,
    the weight side with ``k*n``, ``bits`` correlations per element.
    The demand is role-independent -- what role switching changes is
    which party *transmits* for each term.  This count is exact for
    :func:`generate_matrix_triples` (asserted by the test suite).
    """
    return (dims.m * dims.k + dims.k * dims.n) * bits


def matmul_online_bytes(dims: MatmulDims, ring_bytes: int = 8) -> int:
    """Exact online-phase wire bytes of :func:`matmul_online` (both parties).

    Each party opens its shares of ``D`` (m*k) and ``E`` (k*n) in one
    message of uint64 ring elements; no OT traffic remains online.
    """
    return 2 * (dims.m * dims.k + dims.k * dims.n) * ring_bytes


def matmul_preproc_bytes(
    dims: MatmulDims, bits: int, ring_bytes: int = 8
) -> int:
    """Exact preprocessing wire bytes of :func:`generate_matrix_triples`.

    Per Gilboa correlation the receiver contributes one derandomization
    bit and the sender one masked ring element per payload slot: the
    activation term carries rows of B (n slots), the weight term
    columns of A (m slots).  Bit vectors ride in one length-prefixed
    message per term (8-byte header, bit-packed).

    Chunked payload streaming (``GILBOA_CHUNK_ROWS``) splits each
    term's payload into ``ceil(t / chunk)`` ring messages, but ring
    payloads are raw uint64 bytes with no per-message framing, so the
    byte count is chunking-invariant -- the equality tests assert this
    model against the measured bytes of the streamed protocol.
    """
    t_act = dims.m * dims.k * bits
    t_wgt = dims.k * dims.n * bits
    payload = (t_act * dims.n + t_wgt * dims.m) * ring_bytes
    corrections = (8 + (t_act + 7) // 8) + (8 + (t_wgt + 7) // 8)
    return payload + corrections


def generate_matrix_triples(
    channel: Channel,
    dims: MatmulDims,
    bits: int,
    pool: CotPool,
    rng: np.random.Generator,
    party: int,
    ot_sender: int = 1,
    tweak_base: int = 0,
    chunk_rows: int = GILBOA_CHUNK_ROWS,
) -> MatrixTriples:
    """One matrix Beaver triple over Z_2^bits via Gilboa multiplication.

    Each party samples its own (A_p, B_p) shares; the two cross terms
    ``A_r @ B_s`` (r = receiver party, s = ``ot_sender``) are computed
    with ``matmul_cots(dims, bits)`` COTs all drawn from ONE direction:
    the receiver party bit-decomposes its A (activation term, payload =
    rows of the sender's B) and then its B (weight term, payload =
    columns of the sender's A).

    Args:
        pool: COT pool for the direction where ``ot_sender`` is the COT
            sender; this party's role in it must match.
        ot_sender: which party ships the correction payloads for both
            terms -- the Fig 16 role choice, both values supported.
        tweak_base: absolute pool offset of the consumed range (both
            parties must pass the same value).
        chunk_rows: Gilboa row-block size; the correction matrix is
            built, shipped and reduced in blocks of this many COT rows
            instead of ever materializing ``(t, width)``.  Both parties
            must pass the same value; outputs and wire bytes are
            chunking-invariant.
    """
    if party not in (0, 1) or ot_sender not in (0, 1):
        raise ParameterError("party and ot_sender must be 0 or 1")
    if chunk_rows < 1:
        raise ParameterError(f"chunk_rows must be >= 1, got {chunk_rows}")
    m, k, n = dims.m, dims.k, dims.n
    mask = ring_mask_u64(bits)
    a = rng.integers(0, 1 << bits, (m, k), dtype=np.uint64)
    b = rng.integers(0, 1 << bits, (k, n), dtype=np.uint64)
    t_act = m * k * bits
    t_wgt = k * n * bits
    tweaks_act = np.arange(tweak_base, tweak_base + t_act, dtype=np.uint64)
    tweaks_wgt = np.arange(
        tweak_base + t_act, tweak_base + t_act + t_wgt, dtype=np.uint64
    )
    shifts = np.uint64(1) << np.arange(bits, dtype=np.uint64)

    # Both cross terms stream in row blocks: COT row r of the activation
    # term is (i, j, t) = (r // (k*bits), (r // bits) % k, r % bits) with
    # payload B[j, :] << t, reduced into acc[i, :]; the weight term's row
    # is (j, l, t) = (r // (n*bits), (r // bits) % n, r % bits) with
    # payload A[:, j] << t, reduced into acc[l, :].  Sums wrap mod 2^64
    # exactly like the one-shot reshape().sum() they replace.
    def act_corr(start, stop):
        r = np.arange(start, stop)
        return (b[(r // bits) % k, :] * shifts[r % bits][:, None]) & mask

    def wgt_corr(start, stop):
        r = np.arange(start, stop)
        return (a.T[r // (n * bits), :] * shifts[r % bits][:, None]) & mask

    def reduce_term(chunks, group, out_rows, width):
        acc = np.zeros((out_rows, width), dtype=np.uint64)
        for start, share in chunks:
            rows = np.arange(start, start + share.shape[0]) // group
            np.add.at(acc, rows, share)
        return acc

    if party != ot_sender:
        # Activation term: choices = bits of my A (flattened (i,j) then t);
        # payload slot = the peer's B[j, :].
        chunks = gilboa_receive_stream(
            channel, pool.take_receiver(t_act), _bit_decompose(a, bits),
            n, bits, tweaks_act, chunk_rows,
        )
        cross_act = reduce_term(chunks, k * bits, m, n)
        # Weight term: choices = bits of my B ((j,l) then t); payload =
        # the peer's A[:, j].
        chunks = gilboa_receive_stream(
            channel, pool.take_receiver(t_wgt), _bit_decompose(b, bits),
            m, bits, tweaks_wgt, chunk_rows,
        )
    else:
        # Activation term payloads: corr[(i,j,t)] = B_me[j, :] << t.
        chunks = gilboa_send_stream(
            channel, pool.take_sender(t_act), act_corr, n, bits,
            tweaks_act, chunk_rows,
        )
        cross_act = reduce_term(chunks, k * bits, m, n)
        # Weight term payloads: corr[(j,l,t)] = A_me[:, j] << t.
        chunks = gilboa_send_stream(
            channel, pool.take_sender(t_wgt), wgt_corr, m, bits,
            tweaks_wgt, chunk_rows,
        )
    # Weight reduction groups rows by l = (r // bits) % n, which is NOT
    # monotone in r -- fold the leading j axis away first by reducing
    # modulo the (n, bits) tail.
    acc = np.zeros((n, m), dtype=np.uint64)
    for start, share in chunks:
        rows = (np.arange(start, start + share.shape[0]) // bits) % n
        np.add.at(acc, rows, share)
    cross_wgt = acc.T
    c = (a @ b + cross_act + cross_wgt) & mask
    return MatrixTriples(a, b, c, bits)


def matmul_online(
    channel: Channel,
    x_share: np.ndarray,
    y_share: np.ndarray,
    triple: MatrixTriples,
    party: int,
    rescale: bool = False,
    truncator=None,
) -> np.ndarray:
    """Online Beaver MatMul: this party's share of ``X @ Y`` mod 2^bits.

    Both parties call in lockstep with their (m,k) / (k,n) shares and a
    matching matrix triple.  The only traffic is one opening message
    per party (``matmul_online_bytes`` exactly); all OT work happened
    at preprocessing time.

    With ``rescale=True`` the product shares are fed through a secure
    fixed-point truncation before returning, so scale-2^f operands come
    back at scale 2^f instead of 2^(2f) and layers compose.
    ``truncator(channel, flat_shares, party) -> flat_shares`` supplies
    the protocol (see :mod:`repro.mpc.truncation`); both parties must
    pass equivalent ones.
    """
    if rescale and truncator is None:
        # Fail before any opening crosses the wire: a late error here
        # would strand the peer mid-protocol with the triple spent.
        raise ParameterError("rescale=True needs a truncator protocol")
    mask = ring_mask_u64(triple.bits)
    x_share = np.asarray(x_share, dtype=np.uint64) & mask
    y_share = np.asarray(y_share, dtype=np.uint64) & mask
    m, k, n = triple.dims
    if x_share.shape != (m, k) or y_share.shape != (k, n):
        raise ProtocolError(
            f"share shapes {x_share.shape}@{y_share.shape} do not match "
            f"triple dims {(m, k, n)}"
        )
    d_share = (x_share - triple.a) & mask
    e_share = (y_share - triple.b) & mask
    mine = np.concatenate([d_share.reshape(-1), e_share.reshape(-1)])
    if party == 0:
        channel.send_ring(mine)
        theirs = channel.recv_ring()
    else:
        theirs = channel.recv_ring()
        channel.send_ring(mine)
    if theirs.shape[0] != mine.shape[0]:
        raise ProtocolError("peer opening has the wrong length")
    d = (d_share + theirs[: m * k].reshape(m, k)) & mask
    e = (e_share + theirs[m * k :].reshape(k, n)) & mask
    z = (triple.c + d @ triple.b + triple.a @ e) & mask
    if party == 0:
        z = (z + d @ e) & mask
    if rescale:
        z = np.asarray(
            truncator(channel, z.reshape(-1), party), dtype=np.uint64
        ).reshape(m, n) & mask
    return z


def matmul_via_service(
    session,
    x_share: np.ndarray,
    y_share: np.ndarray,
    fx=None,
    rescale: bool = False,
    trunc_mode: str = "exact",
    rng=None,
) -> np.ndarray:
    """Secure MatMul drawing its matrix triple from a service session.

    Dims are inferred from the share shapes; the session draws one
    pooled matrix triple (preprocessed in the background -- or produced
    on demand if the pool is cold) and runs the online phase over the
    session sub-channel.  With ``rescale=True`` the product is then
    truncated back to scale 2^f through
    :func:`repro.mpc.truncation.trunc_via_service`, drawing the
    truncation correlations (pairs or comparison material, per
    ``trunc_mode``) from the same session -- the per-layer rescaling
    step of quantized inference.
    """
    if rescale and fx is None:
        # Validate before the triple draw: failing later wastes a
        # preprocessed triple and strands the peer on the session channel.
        raise ParameterError("rescale=True needs a FixedPointConfig")
    x_share = np.asarray(x_share, dtype=np.uint64)
    y_share = np.asarray(y_share, dtype=np.uint64)
    if x_share.ndim != 2 or y_share.ndim != 2 or x_share.shape[1] != y_share.shape[0]:
        raise ParameterError("share shapes must be (m,k) and (k,n)")
    triple = session.draw_matrix_triple(
        x_share.shape[0], x_share.shape[1], y_share.shape[1]
    )
    z = matmul_online(session.channel, x_share, y_share, triple, session.party)
    if rescale:
        from repro.mpc.truncation import trunc_via_service

        z = trunc_via_service(
            session, z.reshape(-1), fx, mode=trunc_mode, rng=rng
        ).reshape(z.shape)
    return z


def matmul_rescale_via_service(
    session,
    x_share: np.ndarray,
    y_share: np.ndarray,
    fx,
    mode: str = "exact",
    rng=None,
) -> np.ndarray:
    """Fused secure MatMul + fixed-point rescale on one session verb.

    Functionally identical to ``matmul_via_service(..., rescale=True)``
    -- same correlation kinds and counts, so preprocessing plans price
    both paths the same -- but the matrix-triple draw and the
    truncation draws share ONE allocation round-trip
    (:meth:`repro.runtime.service.ServiceSession.draw_matmul_rescale`):
    party 0 announces every pool offset in a single message instead of
    one per kind.  Under a pipelined prefill this is the per-layer
    online verb, so each layer costs one allocation round plus its
    opening rounds and nothing else.
    """
    if fx is None:
        raise ParameterError("the fused matmul+rescale verb needs a FixedPointConfig")
    x_share = np.asarray(x_share, dtype=np.uint64)
    y_share = np.asarray(y_share, dtype=np.uint64)
    if x_share.ndim != 2 or y_share.ndim != 2 or x_share.shape[1] != y_share.shape[0]:
        raise ParameterError("share shapes must be (m,k) and (k,n)")
    triple, trunc = session.draw_matmul_rescale(
        x_share.shape[0], x_share.shape[1], y_share.shape[1], fx, mode
    )
    z = matmul_online(session.channel, x_share, y_share, triple, session.party)
    from repro.mpc.truncation import truncate_pair_online, truncate_shares

    flat = z.reshape(-1)
    if mode == "pair":
        out = truncate_pair_online(
            session.channel, flat, trunc["pairs"], fx, session.party
        )
    else:
        out = truncate_shares(
            session.channel, flat, fx, session.party,
            trunc["cot_pool"], trunc["triples"], trunc["ring_triples"],
            rng=rng, exact=(mode == "exact"),
        )
    return np.asarray(out, dtype=np.uint64).reshape(z.shape)
