"""The OT-based millionaires' protocol (secure comparison).

P0 holds private X, P1 holds private Y (both l-bit vectors); the
parties end with XOR shares of ``[Y > X]``.  This is the primitive
under DReLU/ReLU/MaxPool in CrypTFlow2-style frameworks (Section 2.2).

Construction: scan bits MSB -> LSB keeping shared state (gt, eq):

    gt' = gt XOR (eq AND t_i)      t_i = (NOT x_i) AND y_i
    eq' = eq AND NOT(x_i XOR y_i)

``t_i`` couples one private bit from each party, so it is produced
directly by one chosen-message OT per level; the two state updates are
shared-bit ANDs consuming one Beaver triple each.  Everything is
batched over the element vector, so the protocol costs l OT batches
and 2l triple batches -- the linear-in-bitwidth OT demand that the
framework cost tables in :mod:`repro.ppml.nonlinear` charge.
"""

from __future__ import annotations

import numpy as np

from repro.crypto import blocks
from repro.errors import ParameterError
from repro.mpc.triples import BitTriples, and_shared
from repro.ot.channel import Channel
from repro.ot.cot import CotPool
from repro.ot.ot_from_cot import ot_receive_from_cot, ot_send_from_cot

#: Tweak stride per bit level (one OT batch per level).
_LEVEL_STRIDE = 1 << 16


def triples_needed(n_elements: int, bits: int) -> int:
    """Beaver bit triples one comparison batch consumes."""
    return 2 * bits * n_elements


def cots_needed(n_elements: int, bits: int) -> int:
    """Base COTs for the per-level cross-product OTs."""
    return bits * n_elements


def millionaire_bytes(n_elements: int, bits: int) -> int:
    """Exact wire bytes (both parties) of one comparison batch.

    Per level: the receiver's derandomization bit vector (8-byte length
    header + packed bits), the sender's two padded block arrays (16 B
    each), and one 2n-bit opening from each party for each of the two
    shared-AND state updates.  Kept beside the protocol so a wire-format
    change here cannot silently strand the predictors (the truncation
    byte models build on this).
    """
    per_level = (
        (8 + (n_elements + 7) // 8)
        + 2 * 16 * n_elements
        + 4 * (8 + (2 * n_elements + 7) // 8)
    )
    return bits * per_level


def millionaire_messages(bits: int) -> int:
    """Messages (both parties) of one comparison batch: per level one
    derandomization vector, two padded block arrays, and one opening
    from each party for each of the two shared ANDs.  Multiplied by a
    transport's per-message framing (e.g. the mux tag header) this
    converts :func:`millionaire_bytes` into framed predictions."""
    return 7 * bits


def _bit(values: np.ndarray, position: int) -> np.ndarray:
    return ((values >> np.uint64(position)) & np.uint64(1)).astype(np.uint8)


def millionaire_p0(
    channel: Channel,
    x_private: np.ndarray,
    bits: int,
    pool: CotPool,
    triples: BitTriples,
    rng: np.random.Generator,
    tweak_base: int = 0,
) -> np.ndarray:
    """P0 side; returns its XOR share of [Y > X]."""
    x_private = np.asarray(x_private, dtype=np.uint64)
    n = x_private.shape[0]
    gt = np.zeros(n, dtype=np.uint8)
    eq = np.ones(n, dtype=np.uint8)  # P0 holds share 1, P1 share 0
    for level in range(bits - 1, -1, -1):
        x_i = _bit(x_private, level)
        tweak = tweak_base + level * _LEVEL_STRIDE
        # t = (NOT x_i) * y_i via OT: P0 offers (r, r XOR NOT x_i).
        r = rng.integers(0, 2, n).astype(np.uint8)
        m0 = blocks.zeros(n)
        m0[:, 0] = r
        m1 = blocks.zeros(n)
        m1[:, 0] = r ^ (x_i ^ 1)
        ot_send_from_cot(channel, pool.take_sender(n), m0, m1, tweak_base=tweak)
        t_share = r
        # eq_i = NOT(x_i XOR y_i): P0 share = NOT x_i, P1 share = y_i.
        eqi_share = x_i ^ 1
        step = and_shared(channel, triples, eq, t_share, party=0)
        gt = gt ^ step
        eq = and_shared(channel, triples, eq, eqi_share, party=0)
    return gt


def millionaire_p1(
    channel: Channel,
    y_private: np.ndarray,
    bits: int,
    pool: CotPool,
    triples: BitTriples,
    tweak_base: int = 0,
) -> np.ndarray:
    """P1 side; returns its XOR share of [Y > X]."""
    y_private = np.asarray(y_private, dtype=np.uint64)
    n = y_private.shape[0]
    gt = np.zeros(n, dtype=np.uint8)
    eq = np.zeros(n, dtype=np.uint8)
    for level in range(bits - 1, -1, -1):
        y_i = _bit(y_private, level)
        tweak = tweak_base + level * _LEVEL_STRIDE
        got = ot_receive_from_cot(channel, pool.take_receiver(n), y_i, tweak_base=tweak)
        t_share = (got[:, 0] & np.uint64(1)).astype(np.uint8)
        eqi_share = y_i
        step = and_shared(channel, triples, eq, t_share, party=1)
        gt = gt ^ step
        eq = and_shared(channel, triples, eq, eqi_share, party=1)
    return gt


def validate_inputs(values: np.ndarray, bits: int) -> np.ndarray:
    """Check a private input vector fits the advertised bit width."""
    values = np.asarray(values, dtype=np.uint64)
    if bits < 1 or bits > 63:
        raise ParameterError("comparison bit width must be in [1, 63]")
    if values.size and int(values.max()) >= (1 << bits):
        raise ParameterError(f"inputs exceed {bits} bits")
    return values
