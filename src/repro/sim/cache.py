"""Set-associative LRU cache simulator (the memory-side cache of
Section 5.3 and the host LLC in the CPU baseline model).

Two operating modes:

* :class:`CacheSim` -- exact, trace-driven, sequential.  Used by unit
  tests and small traces.
* :func:`sampled_hit_rate` -- exact simulation of a *sampled subset of
  sets* (classic set-sampling methodology, cf. UMON): accesses mapping
  to unsampled sets are skipped, cutting simulation cost by the
  sampling factor while estimating the hit rate within a fraction of a
  percent for the multi-million-access LPN traces.

Addresses are byte addresses; the line size defaults to 64 B, matching
the DRAM burst the paper pairs cache lines with (Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError


@dataclass
class CacheConfig:
    """Geometry of one cache."""

    size_bytes: int
    line_bytes: int = 64
    ways: int = 8

    def __post_init__(self):
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ParameterError(
                "cache size must be a multiple of line_bytes * ways"
            )

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.ways

    def access_latency_cycles(self) -> int:
        """SRAM access latency: grows with capacity (Cacti-flavoured).

        This is the term behind the paper's observation that growing the
        memory-side cache past the sweet spot *hurts* (Section 6.3): a
        2 MB SRAM pays more cycles per hit than a 256 KB one.
        """
        kib = self.size_bytes // 1024
        if kib <= 64:
            return 1
        if kib <= 256:
            return 2
        if kib <= 1024:
            return 3
        return 4


@dataclass
class CacheStats:
    """Hit/miss accounting for one simulation run."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class CacheSim:
    """Exact set-associative LRU cache."""

    def __init__(self, config: CacheConfig):
        self.config = config
        # Per set: dict line_tag -> last-use timestamp.  Eviction scans the
        # (at most `ways`) entries for the minimum -- cheap for real way
        # counts and far faster in CPython than an ordered structure.
        self._sets = [dict() for _ in range(config.n_sets)]
        self._clock = 0
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit."""
        line = address // self.config.line_bytes
        set_idx = line % self.config.n_sets
        return self._access_line(line, set_idx)

    def _access_line(self, line: int, set_idx: int) -> bool:
        entries = self._sets[set_idx]
        self._clock += 1
        self.stats.accesses += 1
        if line in entries:
            entries[line] = self._clock
            self.stats.hits += 1
            return True
        if len(entries) >= self.config.ways:
            victim = min(entries, key=entries.get)
            del entries[victim]
        entries[line] = self._clock
        return False

    def run_trace(self, addresses: np.ndarray) -> np.ndarray:
        """Simulate a whole trace; returns the per-access hit booleans."""
        line_bytes = self.config.line_bytes
        n_sets = self.config.n_sets
        lines = (np.asarray(addresses, dtype=np.int64) // line_bytes).tolist()
        hits = np.zeros(len(lines), dtype=bool)
        for i, line in enumerate(lines):
            hits[i] = self._access_line(line, line % n_sets)
        return hits


def sampled_hit_rate(
    config: CacheConfig,
    addresses: np.ndarray,
    set_sample: int = 8,
    max_accesses: int = 4_000_000,
) -> CacheStats:
    """Estimate the hit rate via set sampling.

    Simulates only sets whose index is congruent 0 mod ``set_sample``
    (each still with exact LRU), over at most ``max_accesses`` trace
    entries.  ``set_sample=1`` degrades to an exact full simulation.
    """
    if set_sample < 1:
        raise ParameterError("set_sample must be >= 1")
    addresses = np.asarray(addresses, dtype=np.int64)[:max_accesses]
    lines = addresses // config.line_bytes
    set_idx = lines % config.n_sets
    keep = (set_idx % set_sample) == 0
    kept_lines = lines[keep].tolist()
    kept_sets = (set_idx[keep] // set_sample).tolist()
    n_sim_sets = -(-config.n_sets // set_sample)
    sets = [dict() for _ in range(n_sim_sets)]
    ways = config.ways
    clock = 0
    hits = 0
    for line, s in zip(kept_lines, kept_sets):
        entries = sets[s]
        clock += 1
        if line in entries:
            entries[line] = clock
            hits += 1
            continue
        if len(entries) >= ways:
            victim = min(entries, key=entries.get)
            del entries[victim]
        entries[line] = clock
    stats = CacheStats(accesses=len(kept_lines), hits=hits)
    return stats
