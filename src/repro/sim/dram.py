"""DDR4 DRAM timing models (the Ramulator substitute).

Two cross-validated models of one DRAM rank:

* :class:`DramBankSim` -- sequential state machine: per-bank open row,
  precharge/activate/CAS timing, tFAW four-activate window, and a
  small FR-FCFS-style reorder window.  Exact but Python-speed; used by
  unit tests and small traces.
* :func:`service_cycles_fast` -- vectorized throughput model: classifies
  each request as row hit / row miss per bank (stable-sorted grouping),
  then bounds service time by the data bus occupancy and the busiest
  bank.  Used for the multi-million-access LPN traces; a test checks it
  tracks the sequential model on shared traces.

Timing parameters default to the paper's Table 3 (DDR4-2400: tRCD=16,
tCL=16, tRP=16, tRC=55, tFAW=26, tCCD_L=6, tBL=4, in memory-clock
cycles at 1200 MHz).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParameterError


@dataclass(frozen=True)
class DramTiming:
    """Table 3 timing parameters (cycles at the memory clock)."""

    tRCD: int = 16
    tCL: int = 16
    tRP: int = 16
    tRC: int = 55
    tRRD_S: int = 4
    tRRD_L: int = 6
    tFAW: int = 26
    tCCD_S: int = 4
    tCCD_L: int = 6
    tBL: int = 4
    freq_hz: float = 1.2e9  # DDR4-2400 memory clock


@dataclass(frozen=True)
class DramGeometry:
    """Address mapping geometry of one rank."""

    n_banks: int = 16  # 4 bank groups x 4 banks
    row_bytes: int = 8192  # 8 KB row buffer
    line_bytes: int = 64

    def map_address(self, address: int) -> tuple:
        """Byte address -> (bank, row) with line-interleaved banks."""
        line = address // self.line_bytes
        bank = line % self.n_banks
        row = (line // self.n_banks) // (self.row_bytes // self.line_bytes)
        return bank, row

    def map_addresses(self, addresses: np.ndarray) -> tuple:
        """Vectorized :meth:`map_address`."""
        line = np.asarray(addresses, dtype=np.int64) // self.line_bytes
        bank = line % self.n_banks
        row = (line // self.n_banks) // (self.row_bytes // self.line_bytes)
        return bank, row


@dataclass
class DramStats:
    """Aggregate results of servicing one request trace."""

    requests: int = 0
    row_hits: int = 0
    total_cycles: int = 0
    per_request_latency: list = field(default_factory=list)

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.requests if self.requests else 0.0

    @property
    def avg_latency(self) -> float:
        if not self.per_request_latency:
            return 0.0
        return float(np.mean(self.per_request_latency))


class DramBankSim:
    """Sequential per-bank timing simulation of one rank."""

    def __init__(
        self,
        timing: DramTiming = DramTiming(),
        geometry: DramGeometry = DramGeometry(),
        reorder_window: int = 16,
    ):
        self.timing = timing
        self.geometry = geometry
        self.reorder_window = reorder_window
        self._bank_row = [None] * geometry.n_banks
        self._bank_ready = [0] * geometry.n_banks
        self._bus_ready = 0
        self._activate_times: list = []

    def _issue(self, bank: int, row: int, now: int) -> tuple:
        """Issue one read; returns (completion_time, was_row_hit)."""
        t = self.timing
        start = max(now, self._bank_ready[bank])
        if self._bank_row[bank] == row:
            hit = True
            data_start = max(start, self._bus_ready)
            done = data_start + t.tCL + t.tBL
            self._bank_ready[bank] = data_start + t.tCCD_L
            self._bus_ready = data_start + t.tBL
        else:
            hit = False
            # Respect the four-activate window.
            recent = [a for a in self._activate_times if a > start - t.tFAW]
            if len(recent) >= 4:
                start = max(start, sorted(recent)[-4] + t.tFAW)
            activate = start + (t.tRP if self._bank_row[bank] is not None else 0)
            self._activate_times.append(activate)
            if len(self._activate_times) > 8:
                self._activate_times = self._activate_times[-8:]
            read = activate + t.tRCD
            data_start = max(read, self._bus_ready)
            done = data_start + t.tCL + t.tBL
            self._bank_row[bank] = row
            self._bank_ready[bank] = activate + t.tRC
            self._bus_ready = data_start + t.tBL
        return done, hit

    def service_trace(self, addresses: np.ndarray) -> DramStats:
        """Service a read trace with a small FR-FCFS reorder window."""
        stats = DramStats()
        banks, rows = self.geometry.map_addresses(addresses)
        pending = list(zip(banks.tolist(), rows.tolist()))
        now = 0
        window = max(1, self.reorder_window)
        while pending:
            head = pending[:window]
            # FR-FCFS: prefer a row hit within the window, else oldest.
            pick = 0
            for i, (bank, row) in enumerate(head):
                if self._bank_row[bank] == row:
                    pick = i
                    break
            bank, row = pending.pop(pick)
            done, hit = self._issue(bank, row, now)
            stats.requests += 1
            stats.row_hits += int(hit)
            stats.per_request_latency.append(done - now)
            now = max(now, self._bus_ready - self.timing.tBL)
        stats.total_cycles = max(
            self._bus_ready, max(self._bank_ready) if self._bank_ready else 0
        )
        return stats


def service_cycles_fast(
    addresses: np.ndarray,
    timing: DramTiming = DramTiming(),
    geometry: DramGeometry = DramGeometry(),
) -> DramStats:
    """Vectorized throughput estimate for a long read trace.

    Row hits/misses are determined per bank in arrival order; the trace
    service time is then bounded below by (a) data-bus occupancy,
    (b) the busiest single bank's activate/CAS budget -- the same
    quantities that dominate the sequential model under FR-FCFS.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.size == 0:
        return DramStats()
    banks, rows = geometry.map_addresses(addresses)
    order = np.argsort(banks, kind="stable")
    sorted_banks = banks[order]
    sorted_rows = rows[order]
    same_bank = np.empty(addresses.shape[0], dtype=bool)
    same_bank[0] = False
    same_bank[1:] = sorted_banks[1:] == sorted_banks[:-1]
    same_row = np.empty_like(same_bank)
    same_row[0] = False
    same_row[1:] = sorted_rows[1:] == sorted_rows[:-1]
    hits_sorted = same_bank & same_row
    n_req = addresses.shape[0]
    n_hits = int(hits_sorted.sum())
    n_miss = n_req - n_hits
    # Per-bank busy cycles: misses pay a full tRC turnaround, hits tCCD_L.
    bank_miss = np.bincount(
        sorted_banks[~hits_sorted], minlength=geometry.n_banks
    )
    bank_hit = np.bincount(sorted_banks[hits_sorted], minlength=geometry.n_banks)
    bank_busy = bank_miss * timing.tRC + bank_hit * timing.tCCD_L
    bus_busy = n_req * timing.tBL
    total = int(max(bus_busy, bank_busy.max())) + timing.tRCD + timing.tCL
    stats = DramStats(requests=n_req, row_hits=n_hits, total_cycles=total)
    # Average latency proxy: hits pay CAS, misses the full RAS+CAS path.
    stats.per_request_latency = [
        (n_hits * (timing.tCL + timing.tBL) + n_miss * (timing.tRP + timing.tRCD + timing.tCL + timing.tBL))
        / n_req
    ]
    return stats


def stream_bandwidth_cycles(n_bytes: int, timing: DramTiming = DramTiming(), geometry: DramGeometry = DramGeometry()) -> int:
    """Cycles to stream ``n_bytes`` sequentially (row-buffer friendly).

    Sequential streams are row-hit dominated: one tBL burst per line,
    plus one activate per row.
    """
    if n_bytes <= 0:
        return 0
    lines = -(-n_bytes // geometry.line_bytes)
    rows = -(-n_bytes // geometry.row_bytes)
    return lines * timing.tBL + rows * timing.tRC
