"""Pipelined PRG core + GGM expansion schedule model (Fig 8, Sec 4.3).

The ChaCha8 core is an 8-stage pipeline (one double-round per stage):
throughput one op/cycle when full, latency 8 cycles.  GGM expansion
has a parent->child dependency, so the *schedule* decides utilization:

* depth-first: every op waits for its parent -- one op per ``stages``
  cycles (the "7 bubbles" of Figure 8(a)); O(m * depth) buffer.
* breadth-first: a level's ops are independent, so the pipe fills, but
  shallow levels still drain it and the leaf level needs an O(leaves)
  buffer.
* hybrid (Ironman): breadth-first within a level plus inter-tree
  parallelism across the t independent SPCOT trees -- with t >= stages
  the pipeline never starves (100% utilization).

The model is cycle-parametric rather than event-driven: levels are
synchronization points, which matches the hardware's level-by-level
XOR-sum computation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.prg import CHACHA_BLOCKS_PER_CALL
from repro.errors import ParameterError

#: ChaCha8 = 4 double rounds, one per stage, plus output add folded in.
CHACHA8_STAGES = 8
#: Fully unrolled AES-128 pipeline: one stage per round.
AES_STAGES = 10

SCHEDULES = ("depth_first", "breadth_first", "hybrid")


def ops_per_node(arity: int, prg_kind: str) -> int:
    """Core calls to expand one node into ``arity`` children."""
    if prg_kind == "aes":
        return arity
    if prg_kind.startswith("chacha"):
        return -(-arity // CHACHA_BLOCKS_PER_CALL)
    raise ParameterError(f"unknown PRG kind {prg_kind!r}")


def core_stages(prg_kind: str) -> int:
    """Pipeline depth of the PRG core."""
    return AES_STAGES if prg_kind == "aes" else CHACHA8_STAGES


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling the SPCOT tree batch on the PRG cores."""

    cycles: int
    total_ops: int
    utilization: float
    buffer_blocks: int  # peak on-chip node storage, in 128-bit blocks

    def seconds(self, freq_hz: float) -> float:
        return self.cycles / freq_hz


def expansion_schedule(
    n_trees: int,
    depth: int,
    arity: int,
    prg_kind: str,
    n_cores: int = 1,
    schedule: str = "hybrid",
    n_leaves: int = 0,
) -> ScheduleResult:
    """Cycle count to expand ``n_trees`` GGM trees of given depth.

    Args:
        n_trees: SPCOT instances expanded together (the parameter t).
        depth: tree depth in arity-digits.
        arity: expansion arity m.
        prg_kind: "aes" or "chacha8" (sets ops/node and pipe depth).
        n_cores: parallel fully-pipelined PRG cores in the DIMM module.
        schedule: one of ``SCHEDULES``.
        n_leaves: leaf count; defaults to a full ``arity ** depth`` tree.
            Table 4's l values (e.g. 8192 with arity 4) describe ragged
            trees whose level widths are ``ceil(l / m^(depth-i))``.
    """
    if schedule not in SCHEDULES:
        raise ParameterError(f"schedule must be one of {SCHEDULES}")
    if n_trees < 1 or depth < 1 or n_cores < 1:
        raise ParameterError("n_trees, depth and n_cores must be positive")
    if not n_leaves:
        n_leaves = arity**depth
    if n_leaves > arity**depth or n_leaves < 2:
        raise ParameterError("n_leaves must be in [2, arity**depth]")
    per_node = ops_per_node(arity, prg_kind)
    stages = core_stages(prg_kind)
    # Parents at each level of a (possibly ragged) l-leaf tree.
    level_nodes = [
        min(arity**i, -(-n_leaves // arity ** (depth - i))) for i in range(depth)
    ]
    total_ops = n_trees * per_node * sum(level_nodes)

    if schedule == "depth_first":
        # Dependent chain: each op waits out the full pipe.  Independent
        # trees spread across cores (a core still stalls between ops).
        trees_per_core = -(-n_trees // n_cores)
        ops_per_tree = per_node * sum(level_nodes)
        cycles = trees_per_core * ops_per_tree * stages
        buffer_blocks = n_cores * arity * depth
    elif schedule == "breadth_first":
        # One tree at a time; each level fills the pipe but pays a drain
        # when it has fewer ops than pipeline stages.
        trees_per_core = -(-n_trees // n_cores)
        per_tree = 0
        for nodes in level_nodes:
            level_ops = nodes * per_node
            per_tree += max(level_ops, stages)
        cycles = trees_per_core * per_tree
        buffer_blocks = n_cores * arity**depth
    else:  # hybrid
        # All trees advance level-synchronously: level i offers
        # n_trees * nodes_i * per_node independent ops.
        cycles = 0
        for nodes in level_nodes:
            level_ops = n_trees * nodes * per_node
            cycles += max(-(-level_ops // n_cores), stages)
        cycles += stages  # initial fill
        buffer_blocks = n_trees * arity * depth
    utilization = total_ops / (cycles * n_cores) if cycles else 0.0
    return ScheduleResult(
        cycles=int(cycles),
        total_ops=int(total_ops),
        utilization=min(1.0, utilization),
        buffer_blocks=int(buffer_blocks),
    )
