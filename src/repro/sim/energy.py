"""Area and power models (the Design Compiler / Cacti substitute).

All constants are anchored to the paper's published numbers:

* Table 2 -- PRG cores at 45 nm: AES-128 0.233 mm^2 / 35.05 mW /
  128-bit out; ChaCha8 0.215 mm^2 / 45.34 mW / 512-bit out.
* Table 6 -- Ironman-NMP totals: 1.482 mm^2 / 1.301 W with a 256 KB
  memory-side cache, 2.995 mm^2 / 1.430 W with 1 MB (vs ~100 mm^2 /
  ~10 W for a typical DRAM chip / LRDIMM).
* Figure 14(b) -- SRAM area grows super-linearly; 2 MB costs 2.21x the
  1 MB macro.

The SRAM macro follows an ``area = coeff * size^gamma`` fit through
those anchors; the exponents are documented inline so the model's
provenance is auditable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.utils.units import KIB, MIB


@dataclass(frozen=True)
class CoreCosts:
    """One hardware core's silicon cost (45 nm)."""

    name: str
    area_mm2: float
    power_w: float
    output_bits: int

    @property
    def perf_per_area(self) -> float:
        """Output bits per mm^2 (normalized by callers)."""
        return self.output_bits / self.area_mm2

    @property
    def power_per_block(self) -> float:
        """Watts per 128-bit block produced per call."""
        return self.power_w / (self.output_bits / 128)


#: Table 2 rows.
AES_CORE = CoreCosts("AES-128", area_mm2=0.233, power_w=0.03505, output_bits=128)
CHACHA8_CORE = CoreCosts("ChaCha8", area_mm2=0.215, power_w=0.04534, output_bits=512)


def prg_comparison_rows() -> list:
    """Reproduce Table 2: ratios normalized to AES."""
    rows = []
    for core in (AES_CORE, CHACHA8_CORE):
        rows.append(
            {
                "prg": core.name,
                "output_bits": core.output_bits,
                "area_mm2": core.area_mm2,
                "perf_per_area_ratio": core.perf_per_area / AES_CORE.perf_per_area,
                "power_mw": core.power_w * 1e3,
                "power_per_block_ratio": AES_CORE.power_per_block / core.power_per_block,
            }
        )
    return rows


# SRAM macro fit: gamma chosen so area(2MB)/area(1MB) = 2.21 (Fig 14b);
# the coefficient then matches Table 6's totals given the logic area.
_SRAM_AREA_GAMMA = 1.144
_SRAM_AREA_AT_1MB_MM2 = 1.902
#: Non-cache logic: ChaCha8 core + unified XOR tree + node/inst buffers
#: + index address generators (backed out of Table 6: total - SRAM).
_LOGIC_AREA_MM2 = 1.093

_SRAM_POWER_GAMMA = 0.5
_SRAM_POWER_AT_1MB_W = 0.258
#: Logic + DRAM-interface power backed out of Table 6.
_LOGIC_POWER_W = 1.172


def sram_area_mm2(size_bytes: int) -> float:
    """Memory-side cache macro area."""
    if size_bytes <= 0:
        raise ParameterError("SRAM size must be positive")
    return _SRAM_AREA_AT_1MB_MM2 * (size_bytes / MIB) ** _SRAM_AREA_GAMMA


def sram_power_w(size_bytes: int) -> float:
    """Memory-side cache macro power."""
    if size_bytes <= 0:
        raise ParameterError("SRAM size must be positive")
    return _SRAM_POWER_AT_1MB_W * (size_bytes / MIB) ** _SRAM_POWER_GAMMA


@dataclass(frozen=True)
class NmpOverhead:
    """One Ironman-NMP PU's silicon budget (Table 6 row)."""

    cache_bytes: int
    area_mm2: float
    power_w: float


def nmp_overhead(cache_bytes: int) -> NmpOverhead:
    """Area/power of one Ironman-NMP PU with the given cache size."""
    return NmpOverhead(
        cache_bytes=cache_bytes,
        area_mm2=_LOGIC_AREA_MM2 + sram_area_mm2(cache_bytes),
        power_w=_LOGIC_POWER_W + sram_power_w(cache_bytes),
    )


#: Reference envelope numbers quoted by Table 6 for context.
TYPICAL_DRAM_CHIP_AREA_MM2 = 100.0
TYPICAL_LRDIMM_POWER_W = 10.0

#: Host-platform power envelopes used for the energy comparisons
#: (Section 6.1: Ironman vs the A6000 GPU implementation).
GPU_A6000_POWER_W = 300.0
CPU_XEON_5220R_POWER_W = 150.0


def table6_rows() -> list:
    """Reproduce Table 6 for the two evaluated cache sizes."""
    rows = [
        {
            "component": "ChaCha8 Core",
            "area_mm2": CHACHA8_CORE.area_mm2,
            "power_w": CHACHA8_CORE.power_w,
        }
    ]
    for size in (256 * KIB, MIB):
        ov = nmp_overhead(size)
        rows.append(
            {
                "component": f"Ironman-NMP ({size // KIB}KB cache)",
                "area_mm2": ov.area_mm2,
                "power_w": ov.power_w,
            }
        )
    rows.append(
        {
            "component": "Typical DRAM chip",
            "area_mm2": TYPICAL_DRAM_CHIP_AREA_MM2,
            "power_w": TYPICAL_LRDIMM_POWER_W,
        }
    )
    return rows
