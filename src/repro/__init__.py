"""Ironman reproduction: PCG-style OT extension with near-memory processing.

A from-scratch Python implementation of the system in *Ironman:
Accelerating Oblivious Transfer Extension for Privacy-Preserving AI
with Near-Memory Processing* (MICRO 2025):

* a **functional** Ferret-style OT extension protocol (real ChaCha8 /
  AES-128 cryptography, GGM trees, LPN encoding, base OTs) running
  between two in-memory parties with exact communication accounting;
* a **cycle-level hardware model** of the Ironman NMP accelerator
  (DDR4 timing, memory-side cache, index sorting, pipelined PRG cores,
  unified sender/receiver unit) plus calibrated CPU/GPU baselines;
* a **PPML application layer** (model zoo + framework cost models)
  reproducing the paper's end-to-end private-inference evaluation.

Quick start::

    from repro import FerretConfig, ferret_pair, verify_cot
    cfg = FerretConfig.small()
    s_out, r_out, *_ = ferret_pair(cfg, rounds=1)
    assert verify_cot(s_out[0], r_out[0])

    from repro import IronmanSystem
    print(IronmanSystem().ote_speedup("2^20"))
"""

from repro.errors import (
    ChannelClosed,
    ChannelError,
    ChannelTimeout,
    ParameterError,
    ProtocolError,
    ReproError,
    ServiceError,
    SimulationError,
)
from repro.ferret.config import FerretConfig
from repro.ferret.protocol import FerretReceiver, FerretSender, ferret_pair
from repro.lpn.params import LpnParams, TABLE4, TABLE4_BY_LABEL
from repro.nmp.accelerator import IronmanAccelerator
from repro.nmp.config import IRONMAN_1MB, IRONMAN_256KB, NmpConfig
from repro.ot.channel import LocalChannel, SocketChannel, run_pair
from repro.ot.cot import CotReceiverBatch, CotSenderBatch, verify_cot
from repro.core.ironman import IronmanSystem, table5_rows
from repro.runtime import CorrelationService, MuxChannel, ServiceTuning

__version__ = "1.0.0"

__all__ = [
    "ChannelClosed",
    "ChannelError",
    "ChannelTimeout",
    "CorrelationService",
    "CotReceiverBatch",
    "CotSenderBatch",
    "FerretConfig",
    "FerretReceiver",
    "FerretSender",
    "IRONMAN_1MB",
    "IRONMAN_256KB",
    "IronmanAccelerator",
    "IronmanSystem",
    "LocalChannel",
    "LpnParams",
    "MuxChannel",
    "NmpConfig",
    "ParameterError",
    "ProtocolError",
    "ReproError",
    "ServiceError",
    "ServiceTuning",
    "SimulationError",
    "SocketChannel",
    "TABLE4",
    "TABLE4_BY_LABEL",
    "ferret_pair",
    "run_pair",
    "table5_rows",
    "verify_cot",
    "__version__",
]
