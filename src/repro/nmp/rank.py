"""Rank-NMP module: trace-driven LPN timing (Figure 9(c)).

One rank module owns a slice of the LPN outputs.  Per access it reads
the next Colidx entry (streamed from its DRAM rank), looks the block
up in the memory-side cache, fetches from DRAM on a miss, and XORs
into the in-flight row accumulator selected by Rowidx.

The simulation is trace-driven with real machinery end to end:

1. the actual d-local matrix rows the rank would own are generated
   (a statistically identical prefix stands in for the full slice);
2. the offline index-sorting pass builds the Colidx/Rowidx streams,
   with the look-ahead window matched to the XorSum buffer the config
   can afford;
3. an exact LRU cache simulation classifies hits/misses;
4. cycles assemble as: one pipelined SRAM lookup per access, plus a
   per-miss exposure term (the in-order rank pipeline stalls on a miss
   for the DRAM round trip divided by its miss-level parallelism),
   bounded below by the bank/bus occupancy of the miss stream, plus
   streaming the Colidx/Rowidx arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import ParameterError
from repro.lpn.matrix import INDEX_BYTES, generate_matrix
from repro.lpn.params import LPN_LOCALITY
from repro.lpn.sorting import baseline_layout, sort_indices
from repro.nmp.config import NmpConfig
from repro.sim.cache import CacheSim
from repro.sim.dram import service_cycles_fast, stream_bandwidth_cycles

#: Block bytes (the error/COT vectors are 128-bit entries).
_BLOCK_BYTES = 16

#: Trace prefix simulated exactly; results scale linearly to the full
#: slice (the sorted stream is statistically stationary).
DEFAULT_SIM_ACCESSES = 200_000

#: Sorting modes for the ablation in Figure 14 / Section 5.3.
SORTING_MODES = ("none", "colswap", "full")


@dataclass(frozen=True)
class RankLpnResult:
    """Timing of one rank's share of one LPN execution."""

    n_accesses: int
    hit_rate: float
    lookup_cycles: int
    dram_cycles: int
    index_stream_cycles: int
    cycles: int

    def seconds(self, freq_hz: float) -> float:
        return self.cycles / freq_hz


@lru_cache(maxsize=256)
def _simulate_prefix(
    k: int,
    cache_bytes: int,
    cache_ways: int,
    line_bytes: int,
    window_rows: int,
    sorting: str,
    sim_accesses: int,
    seed: int,
):
    """Exact cache + DRAM simulation of a trace prefix (memoized).

    Returns (hit_rate, dram_busy_per_access, index rows simulated).
    """
    from repro.sim.cache import CacheConfig  # local to keep import cheap

    rows = -(-sim_accesses // LPN_LOCALITY)
    matrix = generate_matrix(rows, k, seed)
    # Steady-state stand-in for the first-use column relabeling: over the
    # full n-row matrix every column has long been relabeled, so from any
    # mid-stream window the relabeling is statistically a fixed random
    # permutation.  Applying first-use ordering to this short prefix would
    # instead make the prefix artificially sequential.
    if sorting == "none":
        layout = baseline_layout(matrix)
    elif sorting in ("colswap", "full"):
        perm = np.random.default_rng(seed ^ 0x5EED).permutation(k).astype(np.int32)
        permuted = matrix.permuted_columns(perm)
        window = window_rows if sorting == "full" else 1
        layout = sort_indices(permuted, window_rows=window, column_swap=False)
    else:
        raise ParameterError(f"sorting must be one of {SORTING_MODES}")
    addresses = layout.cols.astype(np.int64) * _BLOCK_BYTES
    cache = CacheSim(CacheConfig(cache_bytes, line_bytes, cache_ways))
    hits = cache.run_trace(addresses)
    # Steady-state statistics: the full slice is hundreds of times longer
    # than this prefix, so discard the cold-start / first-touch warm-up
    # quarter and measure the stationary remainder.
    warmup = addresses.shape[0] // 4
    measured_hits = hits[warmup:]
    hit_rate = float(measured_hits.mean()) if measured_hits.size else 0.0
    miss_addresses = addresses[warmup:][~measured_hits]
    dram = service_cycles_fast(miss_addresses)
    n_acc = measured_hits.shape[0]
    return hit_rate, dram.total_cycles / max(1, miss_addresses.shape[0]), n_acc


def simulate_rank_lpn(
    config: NmpConfig,
    k: int,
    accesses: int,
    sorting: str = "full",
    sim_accesses: int = DEFAULT_SIM_ACCESSES,
    seed: int = 0xA11CE,
) -> RankLpnResult:
    """Price one rank's ``accesses`` LPN accesses under ``config``.

    Args:
        config: hardware configuration (cache size sets both the line
            cache and the look-ahead window).
        k: LPN secret dimension (footprint of the accessed vector).
        accesses: total accesses this rank performs (outputs * d / ranks).
        sorting: "none" | "colswap" | "full" (column swap + look-ahead).
    """
    if accesses <= 0:
        raise ParameterError("accesses must be positive")
    sim_n = min(accesses, sim_accesses)
    hit_rate, dram_busy_per_miss, _ = _simulate_prefix(
        k,
        config.line_cache_bytes,
        config.cache_ways,
        config.line_bytes,
        config.lookahead_rows,
        sorting,
        sim_n,
        seed,
    )
    t = config.timing
    n_miss = int(round(accesses * (1.0 - hit_rate)))
    # Pipelined SRAM sustains one lookup per cycle; a miss additionally
    # stalls the in-order pipeline: tag-check + DRAM round trip, with
    # `miss_mlp` outstanding misses overlapping each other.
    lookup_cycles = accesses
    miss_latency = (
        config.cache_config().access_latency_cycles()
        + t.tRP
        + t.tRCD
        + t.tCL
        + t.tBL
    )
    exposure = n_miss * miss_latency / config.miss_mlp
    # The DRAM side can never go faster than its bank/bus occupancy.
    dram_cycles = int(max(exposure, n_miss * dram_busy_per_miss))
    index_stream = stream_bandwidth_cycles(
        accesses * (INDEX_BYTES + 1), config.timing, config.geometry
    )
    return RankLpnResult(
        n_accesses=accesses,
        hit_rate=hit_rate,
        lookup_cycles=lookup_cycles,
        dram_cycles=dram_cycles,
        index_stream_cycles=index_stream,
        cycles=lookup_cycles + dram_cycles + index_stream,
    )


def lpn_execution_seconds(
    config: NmpConfig, n_outputs: int, k: int, sorting: str = "full"
) -> tuple:
    """LPN time for one OTE execution across all active ranks.

    Rows are partitioned row-wise across ranks (Section 5.1), so the
    execution finishes with the slowest rank; slices are statistically
    identical, so one representative rank is simulated.

    Returns (seconds, RankLpnResult of the representative rank).
    """
    per_rank = -(-n_outputs * LPN_LOCALITY // config.n_ranks)
    result = simulate_rank_lpn(config, k, per_rank, sorting=sorting)
    return result.seconds(config.freq_hz), result
