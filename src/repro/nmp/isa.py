"""NMP instruction encoding (the NMP-Inst of Figure 9).

The host memory controller drives the accelerator with compact
instructions; the DIMM module dispatches them to rank modules by rank
id.  The ISA is tiny by design -- LPN needs only "accumulate these
streamed indices into these rows" plus configuration plumbing, and
SPCOT needs a tree descriptor.  We encode to/from a fixed 16-byte wire
format so tests can pin the codec.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.errors import ParameterError

_WIRE = struct.Struct("<BBHIII")  # opcode, rank, flags, addr, count, tag
WIRE_BYTES = _WIRE.size


class Opcode(enum.IntEnum):
    """Operation selector."""

    NOP = 0
    LPN_ACCUM = 1  # stream Colidx/Rowidx at addr, XOR-accumulate `count` accesses
    SPCOT_EXPAND = 2  # expand `count` GGM trees, descriptor at addr
    BCAST_VECTOR = 3  # broadcast the r/s/e vectors to rank-local DRAM
    READ_COT = 4  # drain `count` finished correlations back to the host
    SET_ROLE = 5  # 0 = sender (key generator), 1 = receiver (decoder)


@dataclass(frozen=True)
class NmpInst:
    """One decoded NMP instruction."""

    opcode: Opcode
    rank: int
    addr: int
    count: int
    tag: int = 0
    flags: int = 0

    def encode(self) -> bytes:
        """Pack to the 16-byte wire format."""
        if not 0 <= self.rank < 256:
            raise ParameterError("rank id must fit one byte")
        return _WIRE.pack(
            int(self.opcode), self.rank, self.flags, self.addr, self.count, self.tag
        )

    @staticmethod
    def decode(data: bytes) -> "NmpInst":
        """Unpack the 16-byte wire format."""
        if len(data) != WIRE_BYTES:
            raise ParameterError(f"NMP instruction must be {WIRE_BYTES} bytes")
        opcode, rank, flags, addr, count, tag = _WIRE.unpack(data)
        return NmpInst(Opcode(opcode), rank, addr, count, tag, flags)


def lpn_program(n_ranks: int, accesses_per_rank: int, base_addr: int = 0) -> list:
    """Emit the per-rank LPN accumulate program for one execution."""
    return [
        NmpInst(Opcode.LPN_ACCUM, rank, base_addr + rank * accesses_per_rank * 4, accesses_per_rank)
        for rank in range(n_ranks)
    ]
