"""The assembled Ironman accelerator: end-to-end OTE timing (Section 5).

Per OTE execution the DIMM modules run SPCOT while the rank modules
run LPN; the two phases are decoupled and overlap (Section 5.1), so an
execution costs the max of the two plus the (streamed, hence
negligible) offload of finished correlations back to the host
(Section 5.1.3 prices 500 MB of COTs at 8.1 ms un-overlapped and
argues overlap hides it; we model exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.lpn.params import LPN_LOCALITY, LpnParams
from repro.nmp.config import NmpConfig
from repro.nmp.dimm import DimmSpcotResult, spcot_execution
from repro.nmp.rank import RankLpnResult, lpn_execution_seconds
from repro.nmp.unified import Role

#: DDR4 channel bandwidth the paper uses to price offload (76.8 GB/s).
OFFLOAD_BANDWIDTH_BYTES_S = 76.8e9

#: Host<->NMP synchronization overhead per execution (instruction
#: dispatch + drain), charged un-overlapped.
SYNC_SECONDS = 20e-6


@dataclass(frozen=True)
class OteExecutionTime:
    """Latency breakdown of one OTE execution on Ironman."""

    spcot_seconds: float
    lpn_seconds: float
    offload_seconds: float
    offload_exposed_seconds: float
    total_seconds: float
    spcot: DimmSpcotResult
    lpn_rank: RankLpnResult

    @property
    def bottleneck(self) -> str:
        return "lpn" if self.lpn_seconds >= self.spcot_seconds else "spcot"


class IronmanAccelerator:
    """Timing front-end over the DIMM/rank models."""

    def __init__(self, config: NmpConfig):
        self.config = config

    def execution_time(
        self,
        params: LpnParams,
        arity: int = 4,
        prg_kind: str = "chacha8",
        sorting: str = "full",
        role: Role = Role.SENDER,
        schedule: str = "hybrid",
    ) -> OteExecutionTime:
        """Price one OTE execution (one SPCOT batch + one LPN encode)."""
        spcot = spcot_execution(
            self.config, params, arity=arity, prg_kind=prg_kind, role=role,
            schedule=schedule,
        )
        spcot_s = spcot.seconds(self.config.freq_hz)
        lpn_s, rank = lpn_execution_seconds(
            self.config, params.n, params.k, sorting=sorting
        )
        offload_s = params.n * 16 / OFFLOAD_BANDWIDTH_BYTES_S
        overlapped = max(spcot_s, lpn_s)
        # Correlations stream back as they finish; only the tail of the
        # offload that outlives the compute is exposed.
        exposed = max(0.0, offload_s - overlapped)
        total = overlapped + exposed + SYNC_SECONDS
        return OteExecutionTime(
            spcot_seconds=spcot_s,
            lpn_seconds=lpn_s,
            offload_seconds=offload_s,
            offload_exposed_seconds=exposed,
            total_seconds=total,
            spcot=spcot,
            lpn_rank=rank,
        )

    def latency_for(self, params: LpnParams, total_ots: int, **kwargs) -> float:
        """Seconds to output ``total_ots`` correlations (init excluded)."""
        if total_ots <= 0:
            raise ParameterError("total_ots must be positive")
        per_exec = self.execution_time(params, **kwargs).total_seconds
        return params.executions_for(total_ots) * per_exec

    def throughput_ots(self, params: LpnParams, **kwargs) -> float:
        """Steady-state COTs per second."""
        per_exec = self.execution_time(params, **kwargs).total_seconds
        return params.usable_output / per_exec

    def accesses_per_rank(self, params: LpnParams) -> int:
        """LPN accesses each active rank performs per execution."""
        return -(-params.n * LPN_LOCALITY // self.config.n_ranks)
