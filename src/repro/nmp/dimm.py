"""DIMM-NMP module: SPCOT execution timing (Figure 9(b)).

The DIMM module hosts the ChaCha8 (or AES) cores and the unified XOR
tree.  SPCOT's t GGM trees are independent, so the hybrid expansion
schedule (Section 4.3) keeps the PRG pipeline full; the unified unit
reduces each level into slot sums concurrently with the next level's
expansion, so DIMM occupancy is the max of the two engines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.lpn.params import LpnParams
from repro.nmp.config import NmpConfig
from repro.nmp.unified import Role, UnifiedUnitModel
from repro.sim.pipeline import ScheduleResult, expansion_schedule


@dataclass(frozen=True)
class DimmSpcotResult:
    """Timing of one OTE execution's SPCOT phase on the DIMM modules."""

    prg_cycles: int
    xor_tree_cycles: int
    cycles: int
    total_prg_ops: int
    utilization: float
    trees_per_dimm: int

    def seconds(self, freq_hz: float) -> float:
        return self.cycles / freq_hz


def spcot_execution(
    config: NmpConfig,
    params: LpnParams,
    arity: int = 4,
    prg_kind: str = "chacha8",
    role: Role = Role.SENDER,
    schedule: str = "hybrid",
) -> DimmSpcotResult:
    """Price one execution's t-tree expansion under ``config``.

    Trees are distributed across DIMM modules when
    ``config.spcot_all_dimms`` is set (they are independent); otherwise
    a single DIMM runs them all -- the ablation knob behind Figure 13.
    """
    if params.t < 1:
        raise ParameterError("parameter set needs at least one tree")
    # Table 4 pins the per-tree leaf budget l; the depth in m-ary digits
    # is ceil(log_m(l)) and the tree is ragged when l is not a power of m.
    leaves = params.ell
    depth = 0
    while arity**depth < leaves:
        depth += 1
    depth = max(depth, 1)
    n_dimms = config.n_dimms if config.spcot_all_dimms else 1
    trees_per_dimm = -(-params.t // n_dimms)
    prg: ScheduleResult = expansion_schedule(
        n_trees=trees_per_dimm,
        depth=depth,
        arity=arity,
        prg_kind=prg_kind,
        n_cores=config.chacha_cores_per_dimm,
        schedule=schedule,
        n_leaves=leaves,
    )
    uu = UnifiedUnitModel(lanes=2 * config.chacha_cores_per_dimm * 4)
    xor_cycles = trees_per_dimm * uu.tree_cycles(depth, arity, role)
    return DimmSpcotResult(
        prg_cycles=prg.cycles,
        xor_tree_cycles=xor_cycles,
        cycles=max(prg.cycles, xor_cycles),
        total_prg_ops=prg.total_ops * n_dimms,
        utilization=prg.utilization,
        trees_per_dimm=trees_per_dimm,
    )
