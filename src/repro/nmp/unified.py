"""The Unified Unit (Section 5.2, Figure 10).

One XOR tree serves both protocol roles:

* **Key Generator** (sender): per GGM level, XOR-reduce the even and
  the odd nodes -- two tree passes -- producing ``K_0^i, K_1^i`` (or m
  slot sums for m-ary levels).
* **Message Decoder** (receiver): one pass computes the single slot
  sum needed to recover the missing sibling, which is written back to
  the Node Buffer.

The functional behaviour is delegated to :func:`repro.spcot.ggm.level_sums`
(it *is* an XOR reduction); this module adds the hardware facts the
benchmarks need: cycle occupancy per level and Node Buffer sizing,
which differ between roles exactly as Figure 10(b)/(c) shows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.spcot.ggm import level_sums


class Role(enum.Enum):
    """Which side of the OTE protocol the host is playing."""

    SENDER = "sender"  # key generator mode
    RECEIVER = "receiver"  # message decoder mode


@dataclass
class UnifiedUnitModel:
    """Timing/occupancy model of one 2x-input XOR tree.

    Args:
        lanes: blocks consumed per cycle (= 2 * ChaCha cores: each core
            feeds 512 bits = 4 blocks per call, the tree is sized to
            drain them; Figure 10(a)).
    """

    lanes: int = 8

    def __post_init__(self):
        if self.lanes < 2:
            raise ParameterError("the XOR tree needs at least two lanes")

    def passes(self, role: Role) -> int:
        """Tree passes per level: sender sums even AND odd nodes."""
        return 2 if role is Role.SENDER else 1

    def level_cycles(self, level_nodes: int, role: Role) -> int:
        """Cycles to reduce one level of ``level_nodes`` blocks."""
        per_pass = -(-level_nodes // self.lanes)
        return self.passes(role) * per_pass

    def tree_cycles(self, depth: int, arity: int, role: Role) -> int:
        """Cycles to produce all level sums of one GGM tree."""
        return sum(
            self.level_cycles(arity**level, role) for level in range(1, depth + 1)
        )

    def node_buffer_blocks(self, depth: int, arity: int, role: Role) -> int:
        """Node Buffer footprint (Figure 10(b)/(c)).

        Both roles buffer the current level's nodes; the sender keeps
        both slot-sum sets (keys) per level, the receiver only the one
        it selected.
        """
        nodes = arity**depth
        keys_per_level = arity if role is Role.SENDER else arity - 1
        return nodes + keys_per_level * depth


class UnifiedUnit:
    """Functional unified unit: a mode-switchable XOR reducer."""

    def __init__(self, role: Role, model: UnifiedUnitModel = UnifiedUnitModel()):
        self.role = role
        self.model = model
        self.cycles_used = 0

    def switch_role(self, role: Role) -> None:
        """Role switching costs nothing but a mode bit (Section 5.2)."""
        self.role = role

    def reduce_level(self, nodes: np.ndarray, arity: int) -> np.ndarray:
        """Compute slot sums of one level, charging cycle occupancy.

        Sender mode returns all ``arity`` sums; receiver mode is handed
        the nodes it knows and returns the same reduction (the caller
        selects the slot), but is charged only one pass.
        """
        sums = level_sums(nodes, arity)
        self.cycles_used += self.model.level_cycles(nodes.shape[0], self.role)
        return sums
