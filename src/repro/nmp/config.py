"""Ironman-NMP hardware configuration (Figure 9, Table 3).

The accelerator sits on DIMM buffer chips: each DIMM hosts one
Ironman-NMP PU = one DIMM-NMP module (ChaCha8 core(s) + unified XOR
tree, running SPCOT) and one Rank-NMP module per rank (index address
generator + memory-side cache + XOR accumulators, running LPN).

Figure 12's "2/4/8/16 ranks" sweep varies the number of populated
DIMMs at 2 ranks per DIMM; the memory-side cache is 256 KB or 1 MB per
rank module.

The rank module's SRAM is split between the line cache and the XorSum
look-ahead buffer: the look-ahead window (rows in flight) is what the
index-sorting algorithm is matched against, so cache capacity shapes
*both* temporal reuse and how much spatial clustering the offline sort
can exploit -- the mechanism behind Figure 14's capacity sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.sim.cache import CacheConfig
from repro.sim.dram import DramGeometry, DramTiming
from repro.utils.units import KIB


@dataclass(frozen=True)
class NmpConfig:
    """One Ironman deployment."""

    n_dimms: int = 8  # populated DIMMs (4 channels x 2)
    ranks_per_dimm: int = 2
    cache_bytes: int = 256 * KIB  # memory-side cache per rank module
    cache_ways: int = 8
    line_bytes: int = 64
    chacha_cores_per_dimm: int = 1
    freq_hz: float = 1.2e9  # NMP logic clock = DDR4-2400 memory clock
    #: fraction of the rank SRAM holding in-flight XorSum accumulators
    #: (the rest is the line cache); sets the row look-ahead window.
    lookahead_sram_fraction: float = 0.25
    #: outstanding DRAM misses the rank pipeline sustains (the index
    #: stream runs ahead of the data accesses, so a miss can overlap
    #: the next one's row activation).
    miss_mlp: int = 2
    #: distribute SPCOT trees across DIMM modules (vs a single DIMM).
    spcot_all_dimms: bool = True
    timing: DramTiming = field(default_factory=DramTiming)
    geometry: DramGeometry = field(default_factory=DramGeometry)

    def __post_init__(self):
        if self.n_dimms < 1 or self.ranks_per_dimm < 1:
            raise ParameterError("need at least one DIMM and one rank")
        if not 0.0 < self.lookahead_sram_fraction < 1.0:
            raise ParameterError("lookahead_sram_fraction must be in (0, 1)")

    @property
    def n_ranks(self) -> int:
        """Active Rank-NMP modules (the x-axis of Figures 12/13)."""
        return self.n_dimms * self.ranks_per_dimm

    @property
    def lookahead_rows(self) -> int:
        """Row look-ahead window: XorSum accumulators that fit on-chip."""
        return max(64, int(self.cache_bytes * self.lookahead_sram_fraction) // 16)

    @property
    def line_cache_bytes(self) -> int:
        """SRAM left for the line cache after the XorSum buffer."""
        raw = int(self.cache_bytes * (1.0 - self.lookahead_sram_fraction))
        # Round down to a valid set-associative geometry.
        granule = self.line_bytes * self.cache_ways
        return max(granule, (raw // granule) * granule)

    def cache_config(self) -> CacheConfig:
        return CacheConfig(
            size_bytes=self.line_cache_bytes,
            line_bytes=self.line_bytes,
            ways=self.cache_ways,
        )

    def with_ranks(self, n_ranks: int) -> "NmpConfig":
        """Derive a config with the given active rank count."""
        if n_ranks % self.ranks_per_dimm != 0:
            raise ParameterError("rank count must be a multiple of ranks/DIMM")
        return NmpConfig(
            n_dimms=n_ranks // self.ranks_per_dimm,
            ranks_per_dimm=self.ranks_per_dimm,
            cache_bytes=self.cache_bytes,
            cache_ways=self.cache_ways,
            line_bytes=self.line_bytes,
            chacha_cores_per_dimm=self.chacha_cores_per_dimm,
            freq_hz=self.freq_hz,
            lookahead_sram_fraction=self.lookahead_sram_fraction,
            miss_mlp=self.miss_mlp,
            spcot_all_dimms=self.spcot_all_dimms,
            timing=self.timing,
            geometry=self.geometry,
        )

    def with_cache(self, cache_bytes: int) -> "NmpConfig":
        """Derive a config with the given memory-side cache size."""
        return NmpConfig(
            n_dimms=self.n_dimms,
            ranks_per_dimm=self.ranks_per_dimm,
            cache_bytes=cache_bytes,
            cache_ways=self.cache_ways,
            line_bytes=self.line_bytes,
            chacha_cores_per_dimm=self.chacha_cores_per_dimm,
            freq_hz=self.freq_hz,
            lookahead_sram_fraction=self.lookahead_sram_fraction,
            miss_mlp=self.miss_mlp,
            spcot_all_dimms=self.spcot_all_dimms,
            timing=self.timing,
            geometry=self.geometry,
        )


#: The paper's two headline configurations (Section 6.1).
IRONMAN_256KB = NmpConfig(cache_bytes=256 * KIB)
IRONMAN_1MB = NmpConfig(cache_bytes=1024 * KIB)
