"""Chrome-trace / Perfetto JSON export for :class:`repro.obs.trace.Tracer`.

Produces the JSON Object Format the Chrome tracing docs specify and
Perfetto (https://ui.perfetto.dev) opens directly::

    {"traceEvents": [...], "displayTimeUnit": "ms"}

Mapping: each tracer's ``party`` becomes the ``pid`` (process lane),
each recording thread a ``tid`` (remapped to small ints in first-seen
order), and ``process_name`` / ``thread_name`` metadata events label
the lanes.  Timestamps are normalized to microseconds relative to the
earliest event across *all* tracers, so a merged two-party export lines
up on one timeline (the tracers must share a clock domain -- the
default ``time.perf_counter`` does within one process).

Events are stably sorted by timestamp; because B events are recorded
before their E, stable sort keeps every span's begin ahead of its end
at equal timestamps, which :func:`validate_chrome_trace` asserts.
Retroactive spans ride as single ``X`` (complete) events with a ``dur``
field, exempt from B/E nesting by construction.
"""

from __future__ import annotations

import json


def chrome_trace(tracers) -> dict:
    """Merge one or more tracers into a Chrome-trace JSON document."""
    if not isinstance(tracers, (list, tuple)):
        tracers = [tracers]

    t0 = None
    for tr in tracers:
        for ev in tr.events:
            if t0 is None or ev["ts"] < t0:
                t0 = ev["ts"]
    if t0 is None:
        t0 = 0.0

    events = []
    for tr in tracers:
        pid = tr.party if tr.party is not None else 0
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"party {pid}"},
            }
        )
        # Remap raw thread idents to small ints, first-seen order.
        tids: dict = {}
        for ident, thread_name in tr.thread_names.items():
            tid = tids.setdefault(ident, len(tids))
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread_name},
                }
            )
        for ev in tr.events:
            out = {
                "name": ev["name"],
                "cat": ev["cat"] or "runtime",
                "ph": ev["ph"],
                "ts": (ev["ts"] - t0) * 1e6,
                "pid": pid,
                "tid": tids.setdefault(ev["tid"], len(tids)),
            }
            if ev["ph"] == "i":
                out["s"] = "t"  # instant scope: thread
            elif ev["ph"] == "X":
                out["dur"] = ev["dur"] * 1e6
            if ev["args"]:
                out["args"] = dict(ev["args"])
            events.append(out)

    meta = [ev for ev in events if ev["ph"] == "M"]
    rest = [ev for ev in events if ev["ph"] != "M"]
    rest.sort(key=lambda ev: ev["ts"])  # stable: B stays ahead of E at ties
    return {"traceEvents": meta + rest, "displayTimeUnit": "ms"}


def write_chrome_trace(path, tracers) -> dict:
    """Export ``tracers`` to ``path`` as Chrome-trace JSON; returns the doc."""
    doc = chrome_trace(tracers)
    with open(path, "w") as fh:
        json.dump(doc, fh, default=str)
    return doc


def validate_chrome_trace(doc) -> dict:
    """Check a Chrome-trace document's structural invariants.

    Raises :class:`ValueError` on the first violation: missing keys,
    unknown phase, non-monotonic timestamps, or unmatched B/E nesting
    per (pid, tid) lane.  Returns summary counts (``events``, ``spans``,
    ``instants``, ``counters``, and per-name span counts under
    ``span_names``) so callers can assert on content too.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a Chrome-trace document: missing traceEvents")
    events = doc["traceEvents"]
    known_ph = {"B", "E", "X", "i", "C", "M"}
    stacks: dict = {}
    span_names: dict = {}
    counts = {"events": 0, "spans": 0, "instants": 0, "counters": 0}
    last_ts = None
    for n, ev in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                raise ValueError(f"event {n}: missing {key!r}: {ev!r}")
        ph = ev["ph"]
        if ph not in known_ph:
            raise ValueError(f"event {n}: unknown phase {ph!r}")
        if ph == "M":
            continue
        counts["events"] += 1
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"event {n}: bad ts {ts!r}")
        if last_ts is not None and ts < last_ts:
            raise ValueError(f"event {n}: ts {ts} < previous {last_ts} (unsorted)")
        last_ts = ts
        lane = (ev["pid"], ev["tid"])
        if ph == "B":
            stacks.setdefault(lane, []).append(ev["name"])
        elif ph == "E":
            stack = stacks.get(lane)
            if not stack:
                raise ValueError(f"event {n}: E {ev['name']!r} with no open B on {lane}")
            opened = stack.pop()
            if ev["name"] and ev["name"] != opened:
                raise ValueError(
                    f"event {n}: E {ev['name']!r} closes B {opened!r} on {lane}"
                )
            counts["spans"] += 1
            span_names[opened] = span_names.get(opened, 0) + 1
        elif ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event {n}: X {ev['name']!r} with bad dur {dur!r}")
            counts["spans"] += 1
            span_names[ev["name"]] = span_names.get(ev["name"], 0) + 1
        elif ph == "i":
            counts["instants"] += 1
        elif ph == "C":
            counts["counters"] += 1
    for lane, stack in stacks.items():
        if stack:
            raise ValueError(f"lane {lane}: unclosed spans {stack!r}")
    # Instants share the name table so report/assert code sees them too.
    for ev in events:
        if ev["ph"] == "i":
            span_names[ev["name"]] = span_names.get(ev["name"], 0) + 1
    counts["span_names"] = span_names
    return counts
