"""Span/event tracing with party + thread lanes.

A :class:`Tracer` records structured events -- B/E spans, instants,
counter samples -- into an in-memory list, stamping each with the
injected clock and the emitting thread.  One tracer per party; the
party index becomes the Perfetto process lane and each thread its own
track, so a two-party timeline shows the leader's scheduler, both mux
pumps, the pipelined-prefill producers and every online session thread
as parallel lanes (see :mod:`repro.obs.export`).

**Disabled-by-default contract.**  Every instrumented object in the
runtime holds :data:`NULL_TRACER` until something attaches a real
tracer (``CorrelationService.set_tracer``).  Hot paths guard event
emission with ``if tracer.enabled:`` -- with the null tracer that is
one attribute load and a falsy branch, no argument packing, no
allocation (asserted by the test suite) -- so tracing costs nothing
unless explicitly requested, and <5% on the warm online path when
enabled (gated by ``benchmarks/bench_obs.py`` in CI).

Stalls are only known at wait *end*; :meth:`Tracer.complete` records a
retroactive span with explicit timestamps as a Chrome ``X`` (complete)
event, which -- unlike a B/E pair -- stays valid even when the interval
straddles live span boundaries on the same thread.
"""

from __future__ import annotations

import threading
import time


class _NullSpan:
    """Shared no-op context manager returned by the null tracer."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Does nothing, cheaply.  ``enabled`` is False so instrumented hot
    paths can skip event construction entirely; calling the methods
    anyway is also safe (and ``span`` always hands back the same
    singleton context manager)."""

    enabled = False
    party = None

    def span(self, *args, **kwargs):
        return _NULL_SPAN

    def instant(self, *args, **kwargs):
        pass

    def counter(self, *args, **kwargs):
        pass

    def begin(self, *args, **kwargs):
        pass

    def end(self, *args, **kwargs):
        pass

    def complete(self, *args, **kwargs):
        pass

    def now(self) -> float:
        return 0.0


#: The default tracer everywhere: attach a real one to opt in.
NULL_TRACER = NullTracer()


class _Span:
    """Context manager emitting a B event on enter, E on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_args")

    def __init__(self, tracer, name, cat, args):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self):
        self._tracer._emit("B", self._name, self._cat, self._tracer.now(), self._args)
        return self

    def __exit__(self, *exc):
        self._tracer._emit("E", self._name, self._cat, self._tracer.now(), None)
        return False


class Tracer:
    """Records events for one party's half of the runtime.

    Args:
        party: lane index (0 = leader, 1 = follower); becomes the
            Chrome-trace ``pid``.
        clock: zero-argument callable returning seconds; injected so
            tests drive deterministic timestamps.  All events from
            tracers merged into one export must share a clock domain
            (the default, ``time.perf_counter``, does across threads
            and parties in one process).
    """

    enabled = True

    def __init__(self, party: int = 0, clock=time.perf_counter):
        self.party = party
        self.clock = clock
        #: Raw event dicts: ph / name / cat / ts (clock units) / tid / args.
        self.events: list = []
        #: First-seen name per thread ident, for export lane labels.
        self.thread_names: dict = {}

    def now(self) -> float:
        return self.clock()

    def _emit(self, ph, name, cat, ts, args, tid=None) -> None:
        if tid is None:
            tid = threading.get_ident()
            if tid not in self.thread_names:
                self.thread_names[tid] = threading.current_thread().name
        self.events.append(
            {"ph": ph, "name": name, "cat": cat, "ts": ts, "tid": tid, "args": args}
        )

    # -- recording -----------------------------------------------------------
    def span(self, name: str, cat: str = "", **args) -> _Span:
        """``with tracer.span("online.layer", layer=2): ...``"""
        return _Span(self, name, cat, args or None)

    def begin(self, name: str, cat: str = "", **args) -> None:
        self._emit("B", name, cat, self.clock(), args or None)

    def end(self, name: str, cat: str = "") -> None:
        self._emit("E", name, cat, self.clock(), None)

    def instant(self, name: str, cat: str = "", **args) -> None:
        self._emit("i", name, cat, self.clock(), args or None)

    def counter(self, name: str, cat: str = "", **values) -> None:
        """A sampled numeric series (Perfetto renders a step chart)."""
        self._emit("C", name, cat, self.clock(), values)

    def complete(
        self, name: str, start_ts: float, end_ts: float, cat: str = "", **args
    ) -> None:
        """A retroactive span at explicit clock values (Chrome ``X`` event).

        The recorder for durations only known after the fact (a pool
        wait that turned out to stall, a recovery that just healed):
        measure, then emit ``complete(name, end - dur, end)``.  Emitted
        as a single complete event rather than a B/E pair because a
        retroactive interval may straddle the boundaries of live spans
        on the same thread, which would break B/E nesting.
        """
        if end_ts < start_ts:
            start_ts = end_ts
        tid = threading.get_ident()
        if tid not in self.thread_names:
            self.thread_names[tid] = threading.current_thread().name
        self.events.append(
            {
                "ph": "X",
                "name": name,
                "cat": cat,
                "ts": start_ts,
                "dur": end_ts - start_ts,
                "tid": tid,
                "args": args or None,
            }
        )
