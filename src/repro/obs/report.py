"""Stall-attribution report over a recorded Chrome-trace file.

``python -m repro.obs.report trace.json`` answers "where did the online
phase block, and on what?" -- e.g. *online blocked 38 ms on tprc/8
refill during layer 2*.  It pairs B/E events back into spans, finds the
stall spans (``pool.wait`` from :class:`repro.runtime.pool.CorrelationPool`,
``online.wait`` from pipelined prefill), and attributes each to the
layer span (``online.layer`` / ``prefill.layer``) it overlaps on the
same party lane.  A second table shows the recovery timeline: every
redial attempt, resync barrier, and ``reconnect.recover`` span.
"""

from __future__ import annotations

import argparse
import json

from repro.obs.export import validate_chrome_trace
from repro.utils.tables import print_table

#: Span names treated as "somebody was blocked here".
STALL_SPANS = ("pool.wait", "online.wait", "service.resync")
#: Span names a stall is attributed to.
LAYER_SPANS = ("online.layer", "prefill.layer")
#: Instants shown on the recovery timeline.
RECOVERY_INSTANTS = ("redial.attempt", "resync.barrier", "heartbeat.lost")


def pair_spans(events) -> list:
    """Rebuild spans from sorted B/E events.

    Returns dicts ``{name, cat, pid, tid, start, end, dur, args}`` with
    timestamps in microseconds, ordered by start time.
    """
    stacks: dict = {}
    spans = []
    for ev in events:
        ph = ev.get("ph")
        lane = (ev.get("pid"), ev.get("tid"))
        if ph == "X":
            spans.append(
                {
                    "name": ev["name"],
                    "cat": ev.get("cat", ""),
                    "pid": lane[0],
                    "tid": lane[1],
                    "start": ev["ts"],
                    "end": ev["ts"] + ev.get("dur", 0),
                    "dur": ev.get("dur", 0),
                    "args": ev.get("args") or {},
                }
            )
        elif ph == "B":
            stacks.setdefault(lane, []).append(ev)
        elif ph == "E":
            stack = stacks.get(lane)
            if not stack:
                continue
            b = stack.pop()
            spans.append(
                {
                    "name": b["name"],
                    "cat": b.get("cat", ""),
                    "pid": lane[0],
                    "tid": lane[1],
                    "start": b["ts"],
                    "end": ev["ts"],
                    "dur": ev["ts"] - b["ts"],
                    "args": b.get("args") or {},
                }
            )
    spans.sort(key=lambda s: s["start"])
    return spans


def _layer_label(span) -> str:
    layer = span["args"].get("layer")
    label = span["name"] if layer is None else f"{span['name']} {layer}"
    return label


def _stall_key(span) -> str:
    args = span["args"]
    if span["name"] == "pool.wait":
        return f"{args.get('pool', '?')} ({args.get('what', 'wait')})"
    if span["name"] == "online.wait":
        return f"prefill layer {args.get('layer', '?')}"
    return span["name"]


def attribute(span, layers) -> str:
    """Name the layer span on the same party that ``span`` overlaps most;
    fall back to "before <next layer>" when it sits between layers."""
    best, best_overlap = None, 0.0
    following = None
    for layer in layers:
        if layer["pid"] != span["pid"]:
            continue
        overlap = min(span["end"], layer["end"]) - max(span["start"], layer["start"])
        if overlap > best_overlap:
            best, best_overlap = layer, overlap
        if layer["start"] >= span["end"] and (
            following is None or layer["start"] < following["start"]
        ):
            following = layer
    if best is not None:
        return _layer_label(best)
    if following is not None:
        return f"before {_layer_label(following)}"
    return "(no layer)"


def stall_rows(spans) -> list:
    """Aggregate stall spans into (party, stalled on, during, count,
    total ms, max ms) rows, longest total first."""
    layers = [s for s in spans if s["name"] in LAYER_SPANS]
    agg: dict = {}
    for span in spans:
        if span["name"] not in STALL_SPANS:
            continue
        key = (span["pid"], _stall_key(span), attribute(span, layers))
        entry = agg.setdefault(key, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += span["dur"]
        entry[2] = max(entry[2], span["dur"])
    rows = [
        [pid, on, during, n, f"{total / 1e3:.1f}", f"{mx / 1e3:.1f}"]
        for (pid, on, during), (n, total, mx) in agg.items()
    ]
    rows.sort(key=lambda r: -float(r[4]))
    return rows


def recovery_rows(events, spans) -> list:
    """Timeline rows for redials, resync barriers, and recovery spans."""
    rows = []
    for ev in events:
        if ev.get("ph") == "i" and ev["name"] in RECOVERY_INSTANTS:
            args = ev.get("args") or {}
            detail = ", ".join(f"{k}={v}" for k, v in sorted(args.items()))
            rows.append((ev["ts"], ev["pid"], ev["name"], detail))
    for span in spans:
        if span["name"] == "reconnect.recover":
            args = span["args"]
            detail = ", ".join(f"{k}={v}" for k, v in sorted(args.items()))
            detail = f"{span['dur'] / 1e3:.1f} ms" + (f", {detail}" if detail else "")
            rows.append((span["start"], span["pid"], span["name"], detail))
    rows.sort(key=lambda r: r[0])
    return [[f"{ts / 1e3:.1f}", pid, name, detail] for ts, pid, name, detail in rows]


def render_report(doc) -> None:
    """Print the stall-attribution and recovery tables for a trace doc."""
    counts = validate_chrome_trace(doc)
    events = [ev for ev in doc["traceEvents"] if ev.get("ph") != "M"]
    spans = pair_spans(events)

    rows = stall_rows(spans)
    if rows:
        print_table(
            ["party", "stalled on", "during", "count", "total ms", "max ms"],
            rows,
            title="Stall attribution",
        )
    else:
        print("Stall attribution: no stall spans recorded\n")

    rows = recovery_rows(events, spans)
    if rows:
        print_table(
            ["t ms", "party", "event", "detail"],
            rows,
            title="Recovery timeline",
        )

    layer_rows = [
        [s["pid"], _layer_label(s), f"{s['dur'] / 1e3:.1f}"]
        for s in spans
        if s["name"] in LAYER_SPANS
    ]
    if layer_rows:
        print_table(["party", "layer", "ms"], layer_rows, title="Layer spans")

    print(
        f"{counts['events']} events, {counts['spans']} spans, "
        f"{counts['instants']} instants, {counts['counters']} counter samples"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render stall-attribution tables from a Chrome-trace file",
    )
    parser.add_argument("trace", help="path to a --trace-out JSON file")
    args = parser.parse_args(argv)
    with open(args.trace) as fh:
        doc = json.load(fh)
    render_report(doc)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
