"""Flight recorder for the correlation runtime.

Two complementary surfaces, both disabled-by-default on the hot path:

* :mod:`repro.obs.metrics` -- a lock-cheap :class:`MetricsRegistry`
  unifying the runtime's stats classes (pool levels, per-tag mux
  bytes, ferret extends, retry/degraded/journal accounting) into one
  coherent ``service.telemetry()`` snapshot with delta support.
* :mod:`repro.obs.trace` -- a :class:`Tracer` recording structured
  spans and instant events (prefill layers, online compute, pool
  stalls, production commands, redials, resync barriers, heartbeats)
  with thread + party lanes, exportable as Chrome-trace/Perfetto JSON
  via :mod:`repro.obs.export` and rendered into stall-attribution
  tables by ``python -m repro.obs.report``.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.obs.export import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
