"""Unified metrics registry: counters, gauges, histograms, collectors.

The runtime grew six disjoint stats surfaces (``PoolStats``,
``ExtendStats``, ``ChannelStats``, ``FaultStats``, ``stats_by_tag``,
``session_draws``); this module gives them one read side.  Two kinds of
sources register here:

* **Instruments** (:class:`Counter` / :class:`Gauge` /
  :class:`Histogram`) own their storage and are written directly by
  instrumented code -- e.g. the per-pool stall-duration histogram the
  service feeds from ``CorrelationPool.stall_observer``.
* **Collectors** are ``(prefix, fn)`` callbacks returning a flat
  ``name -> value`` dict read at snapshot time.  The existing stats
  classes stay the storage (their hot paths are untouched); the
  service registers one collector per surface, so
  ``service.telemetry()`` is a single :meth:`MetricsRegistry.snapshot`.

Lock discipline: the registry lock guards only registration and the
delta baseline.  Instrument updates take one tiny per-instrument lock
(counter bumps, histogram observes); collector reads take none -- they
read monotonic ints the GIL already keeps coherent.
"""

from __future__ import annotations

import threading

#: Default stall-duration bucket upper bounds, in milliseconds.  Spans
#: "scheduler hiccup" (1 ms) through "an extend ran under you" (100s of
#: ms) to "the producer was down" (multi-second); +inf is implicit.
DEFAULT_STALL_BUCKETS_MS = (1.0, 5.0, 20.0, 100.0, 500.0, 2000.0)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self):
        return self._value


class Gauge:
    """A point-in-time value: set directly or backed by a callable."""

    __slots__ = ("name", "fn", "_value")

    def __init__(self, name: str, fn=None):
        self.name = name
        self.fn = fn
        self._value = 0

    def set(self, value) -> None:
        self._value = value

    @property
    def value(self):
        if self.fn is not None:
            return self.fn()
        return self._value


class Histogram:
    """Fixed-bucket histogram with inclusive upper bounds.

    An observation ``v`` lands in the first bucket with ``v <= le``
    (prometheus-style edges: observing exactly a bound counts into that
    bound's bucket); anything past the last bound lands in the implicit
    ``inf`` bucket.  ``value`` flattens to a numeric dict (``count``,
    ``sum``, one ``le_<bound>`` per bucket) so snapshot deltas work on
    histograms like on any other number.
    """

    __slots__ = ("name", "bounds", "_lock", "_counts", "_count", "_sum")

    def __init__(self, name: str, bounds=DEFAULT_STALL_BUCKETS_MS):
        self.name = name
        self.bounds = tuple(sorted(float(b) for b in bounds))
        if not self.bounds:
            raise ValueError(f"histogram {name}: needs at least one bucket bound")
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0

    def observe(self, v: float) -> None:
        i = len(self.bounds)
        for j, bound in enumerate(self.bounds):
            if v <= bound:
                i = j
                break
        with self._lock:
            self._counts[i] += 1
            self._count += 1
            self._sum += v

    def bucket_counts(self) -> list:
        """Per-bucket counts, last entry being the overflow bucket."""
        with self._lock:
            return list(self._counts)

    @property
    def value(self) -> dict:
        with self._lock:
            out = {"count": self._count, "sum": self._sum}
            for bound, c in zip(self.bounds, self._counts):
                out[f"le_{bound:g}"] = c
            out["le_inf"] = self._counts[-1]
        return out


def _delta(cur, prev):
    """Numeric difference, recursing into dicts (histogram values)."""
    if isinstance(cur, dict):
        prev = prev if isinstance(prev, dict) else {}
        return {k: _delta(v, prev.get(k, 0)) for k, v in cur.items()}
    if isinstance(cur, (int, float)) and isinstance(prev, (int, float)):
        return cur - prev
    return cur


class MetricsRegistry:
    """One read surface over instruments and collector callbacks."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict = {}
        self._collectors: list = []  # (prefix, fn)
        self._last: dict = None

    def _instrument(self, name: str, cls, *args, **kwargs):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name, *args, **kwargs)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._instrument(name, Counter)

    def gauge(self, name: str, fn=None) -> Gauge:
        gauge = self._instrument(name, Gauge)
        if fn is not None:
            gauge.fn = fn
        return gauge

    def histogram(self, name: str, bounds=DEFAULT_STALL_BUCKETS_MS) -> Histogram:
        return self._instrument(name, Histogram, bounds)

    def add_collector(self, prefix: str, fn) -> None:
        """Register a callback returning a flat ``name -> value`` dict;
        its entries appear in snapshots as ``<prefix>/<name>``."""
        with self._lock:
            self._collectors.append((prefix, fn))

    def snapshot(self) -> dict:
        """One coherent ``name -> value`` view of every source."""
        with self._lock:
            instruments = list(self._instruments.values())
            collectors = list(self._collectors)
        out = {}
        for inst in instruments:
            out[inst.name] = inst.value
        for prefix, fn in collectors:
            for key, value in fn().items():
                out[f"{prefix}/{key}"] = value
        return out

    def snapshot_delta(self) -> dict:
        """Changes since the previous :meth:`snapshot_delta` call.

        Numeric values (and histogram dicts) are differenced against
        the last delta baseline; the first call baselines against zero,
        so it returns the full current values.  Plain :meth:`snapshot`
        never moves the baseline.
        """
        cur = self.snapshot()
        with self._lock:
            prev = self._last or {}
            self._last = cur
        return {name: _delta(value, prev.get(name, 0)) for name, value in cur.items()}
