"""Top-level facade: the Ironman system assembled.

Ties together the functional OTE protocol (correctness), the NMP
timing models (performance) and the PPML application layer into the
objects the examples and benchmarks drive:

* :class:`IronmanSystem` -- one deployment: hardware config +
  accelerator + OT providers + application estimator.
* :func:`table5_rows` -- regenerate the paper's end-to-end table: the
  "other computation" residual per (framework, model) is backed out of
  the paper's measured LAN baseline, then the same residual is used
  for the WAN prediction and for the Ironman rows, so speedups are
  genuine model outputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.cpu import DEFAULT_CPU
from repro.core import calibration
from repro.errors import ParameterError
from repro.lpn.params import TABLE4_BY_LABEL, LpnParams
from repro.nmp.accelerator import IronmanAccelerator
from repro.nmp.config import IRONMAN_1MB, NmpConfig
from repro.ppml import models
from repro.ppml.inference import (
    CpuOte,
    DEFAULT_APP_PARAMS,
    InferenceBreakdown,
    IronmanOte,
    estimate_inference,
)
from repro.ppml.network import LAN, WAN, NetworkModel
from repro.ppml.nonlinear import FRAMEWORKS, FrameworkProfile


@dataclass
class IronmanSystem:
    """One Ironman deployment with its application-facing providers."""

    config: NmpConfig = None
    app_params: LpnParams = None

    def __post_init__(self):
        self.config = self.config or IRONMAN_1MB
        self.app_params = self.app_params or DEFAULT_APP_PARAMS
        self.accelerator = IronmanAccelerator(self.config)

    def ote_provider(self) -> IronmanOte:
        return IronmanOte(self.app_params, self.accelerator)

    def cpu_provider(self) -> CpuOte:
        return CpuOte(self.app_params, DEFAULT_CPU)

    def ote_speedup(self, label: str = "2^20", total_ots: int = 1 << 25) -> float:
        """OT-generation speedup over the CPU baseline for one set."""
        params = TABLE4_BY_LABEL[label]
        cpu = DEFAULT_CPU.latency_for(params, total_ots)
        ours = self.accelerator.latency_for(params, total_ots)
        return cpu / ours

    def estimate(
        self,
        model_name: str,
        framework: str,
        network: NetworkModel = LAN,
        use_ironman: bool = True,
    ) -> InferenceBreakdown:
        """End-to-end estimate with the calibrated 'other' residual."""
        profile = _profile(framework)
        model = models.build(model_name)
        other = other_seconds(model_name, framework)
        provider = self.ote_provider() if use_ironman else self.cpu_provider()
        return estimate_inference(model, profile, provider, network, other)


def _profile(framework: str) -> FrameworkProfile:
    if framework not in FRAMEWORKS:
        raise ParameterError(f"unknown framework {framework!r}")
    return FRAMEWORKS[framework]


def other_seconds(model_name: str, framework: str) -> float:
    """The 'other computation' residual backed out of Table 5 (LAN base).

    residual = measured LAN baseline - (HE + CPU-OTE + online comm).
    Clamped at zero when our component model already covers (or
    overshoots) the measured baseline; EXPERIMENTS.md reports which
    rows clamp.
    """
    key = (framework, model_name)
    if key not in calibration.TABLE5:
        return 0.0
    lan_base = calibration.TABLE5[key][3]
    profile = _profile(framework)
    model = models.build(model_name)
    provider = CpuOte(DEFAULT_APP_PARAMS, DEFAULT_CPU)
    base = estimate_inference(model, profile, provider, LAN, other_seconds=0.0)
    return max(0.0, lan_base - base.total_seconds)


def table5_rows(system: IronmanSystem = None, networks=(WAN, LAN)) -> list:
    """Regenerate Table 5: per row, base and Ironman latency + speedup."""
    system = system or IronmanSystem()
    rows = []
    for (framework, model_name), paper in calibration.TABLE5.items():
        row = {"framework": framework, "model": model_name, "paper": paper}
        for network in networks:
            base = system.estimate(model_name, framework, network, use_ironman=False)
            ours = system.estimate(model_name, framework, network, use_ironman=True)
            tag = "wan" if network is WAN else "lan"
            row[f"{tag}_base"] = base.total_seconds
            row[f"{tag}_ours"] = ours.total_seconds
            row[f"{tag}_speedup"] = base.total_seconds / ours.total_seconds
        rows.append(row)
    return rows
