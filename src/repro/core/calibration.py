"""Paper reference values: the single source of truth for every
table/figure target this reproduction measures itself against.

Each constant is quoted directly from the paper; benchmarks print
"paper vs measured" rows from here, and EXPERIMENTS.md records the
residuals.
"""

from __future__ import annotations

#: Figure 1(b): CPU per-execution OTE latency (seconds, eyeballed from
#: the plot; Init is the constant ~0.12 s base bar).
FIG1B_CPU_PER_EXECUTION_S = {
    "2^20": 0.55,
    "2^21": 0.80,
    "2^22": 1.20,
    "2^23": 1.90,
    "2^24": 2.80,
}

#: Figure 1(a): PCG-style OTE accounts for 51-69% of end-to-end time.
FIG1A_OT_SHARE_RANGE = (0.51, 0.69)

#: Figure 12: OTE speedup over CPU, (min, max) across Table 4 sets.
FIG12_SPEEDUP_BANDS = {
    (256, 2): (3.66, 4.23),
    (256, 4): (7.35, 8.77),
    (256, 8): (14.93, 18.18),
    (256, 16): (30.19, 39.26),
    (1024, 2): (5.03, 24.67),
    (1024, 4): (10.16, 53.13),
    (1024, 8): (19.39, 120.75),
    (1024, 16): (40.25, 237.04),
}

#: Section 6.1: GPU implementation speedup over CPU.
GPU_SPEEDUP = 5.88

#: Figure 13(a): SPCOT ablation speedups over 2-ary AES.
FIG13A_SPEEDUPS = {
    ("aes", 2): 1.0,
    ("aes", 4): 1.5,
    ("chacha8", 2): 2.0,
    ("chacha8", 4): 6.0,
}

#: Figure 7(a): m-ary + ChaCha op reduction vs 2-ary ChaCha.
FIG7A_OP_REDUCTION = {4: 2.99, 32: 3.86}

#: Figure 15: nonlinear-operator latency reduction range.
FIG15_SPEEDUP_RANGE = (3.9, 4.4)

#: Figure 16: unified-architecture MatMul gains.
FIG16_COMM_REDUCTION = 2.0
FIG16_LATENCY_REDUCTION = 1.4

#: Table 5: end-to-end baseline and Ironman latencies (seconds) and
#: speedups, per (framework, model), for the two network settings.
#: Columns: (wan_base, wan_ours, wan_speedup, lan_base, lan_ours, lan_speedup)
TABLE5 = {
    ("CrypTFlow2", "MobileNetV2"): (46.3, 29.6, 1.56, 32.0, 16.4, 1.95),
    ("CrypTFlow2", "SqueezeNet"): (71.0, 38.8, 1.83, 61.8, 27.7, 2.23),
    ("CrypTFlow2", "ResNet18"): (130.6, 80.1, 1.63, 113.6, 57.6, 1.97),
    ("CrypTFlow2", "ResNet34"): (287.4, 168.1, 1.71, 217.0, 100.5, 2.16),
    ("CrypTFlow2", "ResNet50"): (357.4, 223.5, 1.60, 252.4, 119.7, 2.11),
    ("CrypTFlow2", "DenseNet121"): (629.0, 411.0, 1.53, 452.5, 201.3, 2.25),
    ("Cheetah", "MobileNetV2"): (31.6, 22.4, 1.41, 12.9, 5.3, 2.43),
    ("Cheetah", "SqueezeNet"): (29.9, 20.5, 1.45, 15.6, 6.4, 2.44),
    ("Cheetah", "ResNet18"): (39.7, 27.4, 1.45, 21.3, 9.1, 2.33),
    ("Cheetah", "ResNet34"): (66.1, 45.4, 1.47, 40.7, 16.3, 2.49),
    ("Cheetah", "ResNet50"): (83.8, 63.3, 1.32, 48.3, 21.4, 2.26),
    ("Cheetah", "DenseNet121"): (126.9, 96.5, 1.33, 62.1, 23.3, 2.67),
    ("Bolt", "ViT"): (1026.8, 693.8, 1.48, 812.2, 272.6, 2.98),
    ("Bolt", "BERT-Base"): (667.2, 436.8, 1.53, 527.7, 190.0, 2.91),
    ("Bolt", "BERT-Large"): (1543.2, 923.9, 1.67, 1392.8, 421.6, 3.40),
    ("Bolt", "GPT2-Large"): (2538.0, 1555.2, 1.63, 2349.4, 739.4, 3.18),
}

#: Table 5 headline speedup ranges.
TABLE5_LAN_CNN_RANGE = (1.95, 2.67)
TABLE5_LAN_TRANSFORMER_RANGE = (2.91, 3.40)
TABLE5_WAN_RANGE = (1.32, 1.83)

#: Table 6: design overhead.
TABLE6 = {
    "chacha8_area_mm2": 0.215,
    "chacha8_power_w": 0.04533,
    "nmp_256k_area_mm2": 1.482,
    "nmp_1m_area_mm2": 2.995,
    "nmp_256k_power_w": 1.301,
    "nmp_1m_power_w": 1.430,
}

#: Table 2: PRG comparison.
TABLE2 = {
    "aes": {"output_bits": 128, "area_mm2": 0.233, "perf_area_ratio": 1.0, "power_mw": 35.05, "power_block_ratio": 1.0},
    "chacha8": {"output_bits": 512, "area_mm2": 0.215, "perf_area_ratio": 4.491, "power_mw": 45.34, "power_block_ratio": 3.092},
}

#: Headline claim: overall OT throughput speedup band (abstract).
HEADLINE_SPEEDUP_RANGE = (39.2, 237.4)

#: Headline claim: end-to-end PPML latency reduction band (abstract).
HEADLINE_E2E_RANGE = (2.1, 3.4)
