"""Cross-platform comparison helpers (CPU / GPU / Ironman).

Backs Figure 12's summary numbers and the abstract's headline claims:
OTE throughput speedups per configuration, the GPU comparison, and
the power-efficiency ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.cpu import DEFAULT_CPU, CpuModel
from repro.baselines.gpu import DEFAULT_GPU, GpuModel
from repro.lpn.params import TABLE4, LpnParams
from repro.nmp.accelerator import IronmanAccelerator
from repro.nmp.config import NmpConfig
from repro.sim.energy import nmp_overhead
from repro.utils.units import KIB

#: Total OT budget used by Figure 12 (2^25 correlations).
FIG12_TOTAL_OTS = 1 << 25


@dataclass(frozen=True)
class PlatformPoint:
    """One platform's latency for one parameter set."""

    platform: str
    params_label: str
    latency_s: float
    speedup_vs_cpu: float


def figure12_sweep(
    cache_bytes_options=(256 * KIB, 1024 * KIB),
    rank_options=(2, 4, 8, 16),
    param_sets=TABLE4,
    total_ots: int = FIG12_TOTAL_OTS,
    cpu: CpuModel = DEFAULT_CPU,
    gpu: GpuModel = DEFAULT_GPU,
) -> list:
    """The full Figure 12 grid.

    Returns dict rows: cache_kb, ranks, param label, cpu/gpu/ironman
    latency, speedups.
    """
    rows = []
    for cache_bytes in cache_bytes_options:
        for ranks in rank_options:
            config = NmpConfig(cache_bytes=cache_bytes).with_ranks(ranks)
            accel = IronmanAccelerator(config)
            for params in param_sets:
                cpu_s = cpu.latency_for(params, total_ots)
                gpu_s = gpu.latency_for(params, total_ots)
                ours_s = accel.latency_for(params, total_ots)
                rows.append(
                    {
                        "cache_kb": cache_bytes // KIB,
                        "ranks": ranks,
                        "params": params.label,
                        "cpu_s": cpu_s,
                        "gpu_s": gpu_s,
                        "ironman_s": ours_s,
                        "speedup_vs_cpu": cpu_s / ours_s,
                        "speedup_vs_gpu": gpu_s / ours_s,
                    }
                )
    return rows


def speedup_band(rows, cache_kb: int, ranks: int) -> tuple:
    """(min, max) speedup over CPU for one Figure 12 cell."""
    cell = [r["speedup_vs_cpu"] for r in rows if r["cache_kb"] == cache_kb and r["ranks"] == ranks]
    return min(cell), max(cell)


def gpu_comparison(
    config: NmpConfig, params: LpnParams, total_ots: int = FIG12_TOTAL_OTS
) -> dict:
    """Ironman vs the A6000: latency and power ratios (Section 6.1)."""
    accel = IronmanAccelerator(config)
    ours = accel.latency_for(params, total_ots)
    gpu = DEFAULT_GPU.latency_for(params, total_ots)
    ironman_power = config.n_dimms * nmp_overhead(config.cache_bytes).power_w
    return {
        "latency_ratio": gpu / ours,
        "power_ratio": DEFAULT_GPU.power_w / ironman_power,
        "ironman_power_w": ironman_power,
        "gpu_power_w": DEFAULT_GPU.power_w,
    }
