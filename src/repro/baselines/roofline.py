"""Roofline analysis of SPCOT vs LPN on the CPU (Figure 1(c)).

The paper measures both kernels in "AES operations per second" against
operational intensity in AES ops per byte of memory traffic:

* SPCOT expands trees -- per AES call it reads a 16 B parent and
  writes a 16 B child: intensity ~= 1/32 AES/B, close under the compute
  roof (compute-bound).
* LPN is one AES-equivalent of work per output but streams ~40 B of
  index matrix and gathers 10 x 16 B random blocks: intensity ~= 1/200
  AES/B, pinned to the bandwidth roof (memory-bound).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.cpu import (
    CPU_CORES,
    CPU_DDR_BANDWIDTH,
    CPU_FREQ_HZ,
    CpuModel,
    DEFAULT_CPU,
)
from repro.lpn.matrix import INDEX_BYTES
from repro.lpn.params import LPN_LOCALITY, LpnParams

#: Peak AES-NI throughput: one AES per cycle per core, all cores.
PEAK_AES_PER_S = CPU_CORES * CPU_FREQ_HZ


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel measurement in roofline coordinates."""

    kernel: str
    label: str
    intensity_aes_per_byte: float
    achieved_aes_per_s: float

    @property
    def roof_aes_per_s(self) -> float:
        """The roof above this point: min(compute, bandwidth * AI)."""
        return min(PEAK_AES_PER_S, CPU_DDR_BANDWIDTH * self.intensity_aes_per_byte)

    @property
    def bound(self) -> str:
        """Which roof caps this kernel."""
        bw_roof = CPU_DDR_BANDWIDTH * self.intensity_aes_per_byte
        return "memory" if bw_roof < PEAK_AES_PER_S else "compute"


def spcot_point(params: LpnParams, cpu: CpuModel = DEFAULT_CPU) -> RooflinePoint:
    """SPCOT kernel: AES tree expansion.

    The working tree level lives in registers/L1, so the *DRAM* traffic
    per AES is only the spilled output leaves filtered through the cache
    hierarchy (~1 B/op: 8 B/op of raw leaf output, ~87% LLC-filtered) --
    which is what places SPCOT on the compute side of the ridge in
    Figure 1(c).
    """
    ops = cpu.spcot_ops(params)
    bytes_moved = ops * 1.0
    seconds = cpu.execution_breakdown(params).spcot_seconds
    return RooflinePoint(
        kernel="spcot",
        label=params.label,
        intensity_aes_per_byte=ops / bytes_moved,
        achieved_aes_per_s=ops / seconds,
    )


def lpn_point(params: LpnParams, cpu: CpuModel = DEFAULT_CPU) -> RooflinePoint:
    """LPN kernel: index-driven XOR gathers, in AES-equivalents."""
    aes_equiv = params.n  # one PRG-equivalent of work per output row
    bytes_moved = params.n * (LPN_LOCALITY * (16 + INDEX_BYTES) + 16)
    seconds = cpu.execution_breakdown(params).lpn_seconds
    return RooflinePoint(
        kernel="lpn",
        label=params.label,
        intensity_aes_per_byte=aes_equiv / bytes_moved,
        achieved_aes_per_s=aes_equiv / seconds,
    )


def roofline_series(param_sets) -> list:
    """All Figure 1(c) points for the given parameter sets."""
    points = []
    for params in param_sets:
        points.append(spcot_point(params))
        points.append(lpn_point(params))
    return points
