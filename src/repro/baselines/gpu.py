"""Calibrated GPU baseline (NVIDIA A6000, Section 6.1).

The paper reports a single headline for its GPU port of the OTE
protocol: **5.88x** throughput over the full-thread CPU, with a
latency split of 44.1% SPCOT / 50.2% LPN (the larger GPU caches help
LPN relative to the CPU), and 300 W board power -- Ironman's 40.31x
latency and 84.5x power advantages are quoted against it.  This model
scales the calibrated CPU model accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.cpu import CpuModel, CpuOteBreakdown, DEFAULT_CPU
from repro.lpn.params import LpnParams
from repro.sim.energy import GPU_A6000_POWER_W

#: Paper-reported GPU-vs-CPU throughput ratio.
GPU_SPEEDUP_OVER_CPU = 5.88
#: Paper-reported GPU latency shares.
GPU_SPCOT_SHARE = 0.441
GPU_LPN_SHARE = 0.502


@dataclass(frozen=True)
class GpuModel:
    """A6000 OTE implementation as a scaled CPU model."""

    cpu: CpuModel = DEFAULT_CPU
    speedup: float = GPU_SPEEDUP_OVER_CPU
    power_w: float = GPU_A6000_POWER_W

    def execution_breakdown(self, params: LpnParams) -> CpuOteBreakdown:
        """Per-execution latency with the paper's GPU-phase shares."""
        cpu = self.cpu.execution_breakdown(params)
        total = cpu.compute_seconds / self.speedup
        other = max(0.0, 1.0 - GPU_SPCOT_SHARE - GPU_LPN_SHARE)
        return CpuOteBreakdown(
            init_seconds=cpu.init_seconds + total * other,
            spcot_seconds=total * GPU_SPCOT_SHARE,
            lpn_seconds=total * GPU_LPN_SHARE,
        )

    def latency_for(self, params: LpnParams, total_ots: int) -> float:
        """Seconds to output ``total_ots`` COTs (init excluded)."""
        per_exec = self.cpu.execution_breakdown(params).compute_seconds / self.speedup
        return params.executions_for(total_ots) * per_exec

    def throughput_ots(self, params: LpnParams) -> float:
        per_exec = self.cpu.execution_breakdown(params).compute_seconds / self.speedup
        return params.usable_output / per_exec


DEFAULT_GPU = GpuModel()
