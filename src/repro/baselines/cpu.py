"""Calibrated CPU baseline: Ferret on the paper's Xeon Gold 5220R.

We cannot run AES-NI in this environment, so the CPU cost model is
*calibrated to the paper's own measurements* (Figure 1(b): per-
execution latency with Init / SPCOT / LPN split for each Table 4 set).
The functional Ferret implementation in :mod:`repro.ferret` proves
protocol correctness; this module prices it on the paper's hardware so
all speedup ratios are taken against the paper's baseline, not against
Python.

Model structure (constants documented below, fit in
``repro.core.calibration``):

* SPCOT: ``fixed + prg_ops / aes_rate`` -- the effective AES rate
  bundles tree-node stores and per-level OT hashing, which is why it
  is far below raw AES-NI throughput.
* LPN: ``fixed + accesses / access_rate`` -- random 16-byte gathers
  against a multi-MB working set plus streaming the index matrix.
* Init: a one-time base-OT + setup cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.prg import expansion_calls
from repro.errors import ParameterError
from repro.lpn.params import LPN_LOCALITY, LpnParams

#: Paper host (Table 3 / Section 6).
CPU_CORES = 24
CPU_FREQ_HZ = 2.2e9
CPU_LLC_BYTES = 71.5 * 2**20
CPU_DDR_BANDWIDTH = 76.8e9


@dataclass(frozen=True)
class CpuOteBreakdown:
    """Per-execution latency split (the stacked bars of Figure 1(b))."""

    init_seconds: float
    spcot_seconds: float
    lpn_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.init_seconds + self.spcot_seconds + self.lpn_seconds

    @property
    def compute_seconds(self) -> float:
        """SPCOT + LPN (init amortizes away in throughput figures)."""
        return self.spcot_seconds + self.lpn_seconds


@dataclass(frozen=True)
class CpuModel:
    """Full-thread CPU implementation cost model (Ferret baseline)."""

    #: effective AES ops/s across SPCOT (fit to Fig 1b, see module doc).
    aes_rate: float = 40e6
    #: effective LPN random accesses/s (fit to Fig 1b).
    lpn_access_rate: float = 100e6
    #: per-execution fixed costs (scheduling, allocation, OT plumbing).
    spcot_fixed: float = 0.10
    lpn_fixed: float = 0.15
    #: one-time setup: PKC base OTs + first-iteration bootstrap.
    init_seconds: float = 0.12

    def spcot_ops(self, params: LpnParams, arity: int = 2, prg_kind: str = "aes") -> int:
        """PRG core calls of one execution's t-tree expansion.

        Uses Table 4's quoted per-tree leaf budget l directly (the
        closed form (l-1)/(m-1) internal nodes handles ragged trees).
        """
        return params.t * expansion_calls(params.ell, arity, prg_kind)

    def execution_breakdown(
        self, params: LpnParams, arity: int = 2, prg_kind: str = "aes"
    ) -> CpuOteBreakdown:
        """Per-execution latency split for one Table 4 set."""
        ops = self.spcot_ops(params, arity, prg_kind)
        # ChaCha software lacks an AES-NI analogue: a ChaCha8 call costs
        # ~4x an AES-NI op in software, cancelling its 4-block output.
        rate = self.aes_rate if prg_kind == "aes" else self.aes_rate / 4.0
        spcot = self.spcot_fixed + ops / rate
        lpn = self.lpn_fixed + params.n * LPN_LOCALITY / self.lpn_access_rate
        return CpuOteBreakdown(self.init_seconds, spcot, lpn)

    def latency_for(
        self,
        params: LpnParams,
        total_ots: int,
        include_init: bool = True,
        arity: int = 2,
        prg_kind: str = "aes",
    ) -> float:
        """Seconds to output ``total_ots`` COTs."""
        if total_ots <= 0:
            raise ParameterError("total_ots must be positive")
        per_exec = self.execution_breakdown(params, arity, prg_kind)
        execs = params.executions_for(total_ots)
        total = execs * per_exec.compute_seconds
        if include_init:
            total += self.init_seconds
        return total

    def throughput_ots(self, params: LpnParams) -> float:
        """Steady-state COTs per second (init amortized away)."""
        per_exec = self.execution_breakdown(params)
        return params.usable_output / per_exec.compute_seconds


#: Default calibrated instance.
DEFAULT_CPU = CpuModel()
