"""Preprocessing planner: exact correlation demand for a model graph.

Ironman's premise is that COT correlations are *preprocessing*: the
accelerator mass-produces them ahead of time and the online phase
merely consumes them (Section 5.2, Figure 16).  This module is the
bridge from a model to that contract: walk a :class:`repro.ppml.layers.Graph`
trace, charge every layer its exact correlation demand -- matrix-triple
shapes for linear/conv layers, comparison COTs + bit triples + mux COTs
for ReLU/MaxPool -- and drive a :class:`repro.runtime.CorrelationService`
to prefill its pools before the online phase starts.

Demand counts mirror the *executable* consumers one-for-one:
``relu_demand`` counts exactly what :func:`repro.mpc.relu.relu_via_service`
draws, ``matmul_demand`` what :func:`repro.mpc.matmul.matmul_via_service`
draws, so a prefilled service serves the whole online phase without a
single production stall (asserted by the test suite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.mpc.compare import cots_needed, triples_needed
from repro.mpc.matmul import MatmulDims, matmul_cots
from repro.mpc.truncation import (
    FixedPointConfig,
    trunc_bit_triples,
    trunc_cots,
    trunc_pair_bit_triples,
    trunc_pair_cots,
    trunc_ring_triples,
)
from repro.ppml.layers import Conv2d, Graph, Linear
from repro.runtime.pool import MatrixTriplePool, TruncPairPool


@dataclass
class CorrelationDemand:
    """Exact correlation counts one workload draws from the service.

    Directions are named from the shared pool perspective: ``cot_fwd``
    is the direction where party 0 is the COT sender.  ``matrix`` maps
    :class:`MatmulDims` to triple counts; ``unplanned`` records
    nonlinear/linear work with no executable OT protocol here yet
    (GELU, softmax, layernorm, raw attention MACs) so a plan is honest
    about its coverage.
    """

    cot_fwd: int = 0
    cot_rev: int = 0
    bit_triples: int = 0
    ring_triples: int = 0
    matrix: dict = field(default_factory=dict)
    trunc_pairs: dict = field(default_factory=dict)  # frac_bits -> count
    unplanned: dict = field(default_factory=dict)

    def merge(self, other: "CorrelationDemand") -> "CorrelationDemand":
        self.cot_fwd += other.cot_fwd
        self.cot_rev += other.cot_rev
        self.bit_triples += other.bit_triples
        self.ring_triples += other.ring_triples
        for dims, count in other.matrix.items():
            self.matrix[dims] = self.matrix.get(dims, 0) + count
        for frac, count in other.trunc_pairs.items():
            self.trunc_pairs[frac] = self.trunc_pairs.get(frac, 0) + count
        for kind, count in other.unplanned.items():
            self.unplanned[kind] = self.unplanned.get(kind, 0) + count
        return self

    @property
    def matrix_triples(self) -> int:
        return sum(self.matrix.values())

    def total_cots(self, ring_bits: int) -> int:
        """All raw COTs behind this demand (consumer draws + derived).

        Bit triples cost one COT per direction, ring triples
        ``ring_bits`` per direction, matrix triples ``matmul_cots``
        from a single direction, truncation pairs their forward COTs
        plus the bit triples their generation consumes.
        """
        derived = self.bit_triples * 2 + self.ring_triples * ring_bits * 2
        derived += sum(
            int(matmul_cots(dims, ring_bits)) * count
            for dims, count in self.matrix.items()
        )
        derived += sum(
            (
                trunc_pair_cots(ring_bits, frac)
                + trunc_pair_bit_triples(ring_bits, frac) * 2
            )
            * count
            for frac, count in self.trunc_pairs.items()
        )
        return self.cot_fwd + self.cot_rev + derived

    def as_pool_targets(self) -> dict:
        """Pool kind -> item count, the :meth:`CorrelationService.prefill`
        input (zero entries omitted)."""
        targets = {
            "cot/fwd": self.cot_fwd,
            "cot/rev": self.cot_rev,
            "tri": self.bit_triples,
            "rtri": self.ring_triples,
        }
        for dims, count in self.matrix.items():
            targets[MatrixTriplePool.key_for(dims.m, dims.k, dims.n)] = count
        for frac, count in self.trunc_pairs.items():
            targets[TruncPairPool.key_for(frac)] = count
        return {kind: count for kind, count in targets.items() if count > 0}


def relu_demand(n_elements: int, bits: int) -> CorrelationDemand:
    """Exactly what ``relu_via_service`` draws for n shared elements:
    comparison COTs (P0 sender), one mux COT per element per direction,
    and the comparison's bit triples."""
    cmp_bits = bits - 1
    return CorrelationDemand(
        cot_fwd=cots_needed(n_elements, cmp_bits) + n_elements,
        cot_rev=n_elements,
        bit_triples=triples_needed(n_elements, cmp_bits),
    )


def max_demand(n_comparisons: int, bits: int) -> CorrelationDemand:
    """Secure max costs one ReLU per pairwise comparison (maxpool_cmp)."""
    return relu_demand(n_comparisons, bits)


def matmul_demand(dims: MatmulDims, count: int = 1) -> CorrelationDemand:
    """One preprocessed matrix triple per secure MatMul of this shape."""
    return CorrelationDemand(matrix={dims: count})


def mul_demand(n_elements: int) -> CorrelationDemand:
    """Elementwise Beaver multiplication: one ring triple per element."""
    return CorrelationDemand(ring_triples=n_elements)


def trunc_demand(
    n_elements: int, fx: FixedPointConfig, mode: str = "exact"
) -> CorrelationDemand:
    """Exactly what ``trunc_via_service`` draws for n rescaled elements.

    ``pair`` mode consumes one pooled truncation pair per element (the
    one-round probabilistic protocol); ``wrap``/``exact`` consume the
    comparison COTs (party 0 sender), their bit triples, and the ring
    triples the B2A of the correction bits multiplies with.
    """
    if mode == "pair":
        return CorrelationDemand(trunc_pairs={fx.frac_bits: n_elements})
    if mode not in ("wrap", "exact"):
        raise ParameterError(f"unknown truncation mode {mode!r}")
    exact = mode == "exact"
    return CorrelationDemand(
        cot_fwd=trunc_cots(n_elements, fx, exact),
        bit_triples=trunc_bit_triples(n_elements, fx, exact),
        ring_triples=trunc_ring_triples(n_elements, fx, exact),
    )


def layer_demand(
    layer,
    in_shape: tuple,
    out_shape: tuple,
    bits: int,
    fx: FixedPointConfig = None,
    trunc_mode: str = "exact",
) -> CorrelationDemand:
    """Correlation demand of one applied layer.

    Linear/Conv2d become matrix-triple shapes (conv via im2col, one
    triple per group); ReLU-family activations and MaxPool comparisons
    charge the exact service draws; Rescale layers charge truncation
    demand when a :class:`FixedPointConfig` is given; every other cost
    lands in ``unplanned`` so coverage gaps are visible, not silent.
    """
    demand = CorrelationDemand()
    if isinstance(layer, Linear):
        m = math.prod(in_shape[:-1]) if len(in_shape) > 1 else 1
        demand.merge(matmul_demand(MatmulDims(m, in_shape[-1], layer.out_features)))
        return demand
    if isinstance(layer, Conv2d):
        c = in_shape[0]
        _, oh, ow = out_shape
        dims = MatmulDims(
            oh * ow,
            (c // layer.groups) * layer.kernel * layer.kernel,
            layer.out_channels // layer.groups,
        )
        demand.merge(matmul_demand(dims, count=layer.groups))
        return demand
    _, cost = layer.apply(in_shape)
    for kind, count in cost.nonlinear.items():
        if kind == "relu":
            demand.merge(relu_demand(count, bits))
        elif kind == "maxpool_cmp":
            demand.merge(max_demand(count, bits))
        elif kind == "trunc" and fx is not None:
            if fx.bits != bits:
                raise ParameterError(
                    f"fixed-point config is {fx.bits}-bit but the plan ring is {bits}-bit"
                )
            demand.merge(trunc_demand(count, fx, trunc_mode))
        else:
            # relu6 (two comparisons, no service protocol yet), gelu,
            # softmax, layernorm, avgpool truncation: honest gaps.
            demand.unplanned[kind] = demand.unplanned.get(kind, 0) + count
    if cost.macs:
        demand.unplanned["macs"] = demand.unplanned.get("macs", 0) + cost.macs
    return demand


#: Column titles matching :meth:`PreprocessingPlan.summary_rows`.
SUMMARY_HEADER = ["layer", "cot_fwd", "cot_rev", "bit triples", "matrix", "trunc pairs"]


@dataclass
class PreprocessingPlan:
    """A model's full preprocessing schedule: per-layer + total demand."""

    model: str
    bits: int
    demand: CorrelationDemand
    per_layer: list  # (layer name, CorrelationDemand)

    def pool_targets(self) -> dict:
        return self.demand.as_pool_targets()

    def prefill(self, service, timeout: float = None) -> None:
        """Drive one party's service through the preprocessing phase.

        Ensures every shape-keyed matrix pool exists, then blocks until
        all planned correlations are produced ahead.  Both parties call
        this (leader raises watermarks, follower waits for the mirrored
        production); afterwards the online phase runs stall-free.
        """
        if service.tuning.ring_bits != self.bits:
            raise ParameterError(
                f"plan is for {self.bits}-bit rings but the service produces "
                f"{service.tuning.ring_bits}-bit triples"
            )
        for dims in self.demand.matrix:
            service.matrix_pool(dims.m, dims.k, dims.n)
        for frac in self.demand.trunc_pairs:
            service.trunc_pool(frac)
        service.prefill(self.pool_targets(), timeout)

    def summary_rows(self) -> list:
        """Printable per-layer rows: layer, COTs per direction, bit
        triples, matrix-triple shapes, and truncation pairs (for
        ``print_table`` with :data:`SUMMARY_HEADER`)."""
        rows = []
        for name, d in self.per_layer:
            mats = ", ".join(
                f"{dims.label}x{count}" for dims, count in d.matrix.items()
            ) or "-"
            pairs = ", ".join(
                f"f{frac}x{count}" for frac, count in d.trunc_pairs.items()
            ) or "-"
            rows.append(
                [name, str(d.cot_fwd), str(d.cot_rev), str(d.bit_triples), mats, pairs]
            )
        return rows


def plan_graph(
    graph: Graph,
    bits: int = 32,
    fx: FixedPointConfig = None,
    trunc_mode: str = "exact",
) -> PreprocessingPlan:
    """Walk a traced model graph into a :class:`PreprocessingPlan`.

    ``bits`` is the arithmetic ring width of the activations (and so of
    every ring/matrix triple); it must match the serving service's
    ``ServiceTuning.ring_bits``.  ``fx`` prices the graph's Rescale
    layers as executable truncation demand (``trunc_mode`` selecting
    pair/wrap/exact); without it they surface as unplanned.
    """
    total = CorrelationDemand()
    per_layer = []
    for layer, in_shape, out_shape in graph.trace:
        demand = layer_demand(layer, in_shape, out_shape, bits, fx, trunc_mode)
        per_layer.append((layer.name, demand))
        total.merge(demand)
    return PreprocessingPlan(graph.name, bits, total, per_layer)
