"""Preprocessing planner: exact correlation demand for a model graph.

Ironman's premise is that COT correlations are *preprocessing*: the
accelerator mass-produces them ahead of time and the online phase
merely consumes them (Section 5.2, Figure 16).  This module is the
bridge from a model to that contract: walk a :class:`repro.ppml.layers.Graph`
trace, charge every layer its exact correlation demand -- matrix-triple
shapes for linear/conv layers, comparison COTs + bit triples + mux COTs
for ReLU/MaxPool -- and drive a :class:`repro.runtime.CorrelationService`
to prefill its pools before the online phase starts.

Demand counts mirror the *executable* consumers one-for-one:
``relu_demand`` counts exactly what :func:`repro.mpc.relu.relu_via_service`
draws, ``matmul_demand`` what :func:`repro.mpc.matmul.matmul_via_service`
draws, so a prefilled service serves the whole online phase without a
single production stall (asserted by the test suite).
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ParameterError, ServiceError, WaitTimeout
from repro.mpc.compare import cots_needed, triples_needed
from repro.mpc.matmul import MatmulDims, matmul_cots
from repro.mpc.truncation import (
    FixedPointConfig,
    trunc_bit_triples,
    trunc_cots,
    trunc_pair_bit_triples,
    trunc_pair_cots,
    trunc_ring_triples,
)
from repro.ppml.layers import Conv2d, Graph, Linear
from repro.runtime.pool import MatrixTriplePool, TruncPairPool


@dataclass
class CorrelationDemand:
    """Exact correlation counts one workload draws from the service.

    Directions are named from the shared pool perspective: ``cot_fwd``
    is the direction where party 0 is the COT sender.  ``matrix`` maps
    :class:`MatmulDims` to triple counts; ``unplanned`` records
    nonlinear/linear work with no executable OT protocol here yet
    (GELU, softmax, layernorm, raw attention MACs) so a plan is honest
    about its coverage.
    """

    cot_fwd: int = 0
    cot_rev: int = 0
    bit_triples: int = 0
    ring_triples: int = 0
    matrix: dict = field(default_factory=dict)
    trunc_pairs: dict = field(default_factory=dict)  # frac_bits -> count
    unplanned: dict = field(default_factory=dict)

    def merge(self, other: "CorrelationDemand") -> "CorrelationDemand":
        self.cot_fwd += other.cot_fwd
        self.cot_rev += other.cot_rev
        self.bit_triples += other.bit_triples
        self.ring_triples += other.ring_triples
        for dims, count in other.matrix.items():
            self.matrix[dims] = self.matrix.get(dims, 0) + count
        for frac, count in other.trunc_pairs.items():
            self.trunc_pairs[frac] = self.trunc_pairs.get(frac, 0) + count
        for kind, count in other.unplanned.items():
            self.unplanned[kind] = self.unplanned.get(kind, 0) + count
        return self

    @property
    def matrix_triples(self) -> int:
        return sum(self.matrix.values())

    def total_cots(self, ring_bits: int) -> int:
        """All raw COTs behind this demand (consumer draws + derived).

        Bit triples cost one COT per direction, ring triples
        ``ring_bits`` per direction, matrix triples ``matmul_cots``
        from a single direction, truncation pairs their forward COTs
        plus the bit triples their generation consumes.
        """
        derived = self.bit_triples * 2 + self.ring_triples * ring_bits * 2
        derived += sum(
            int(matmul_cots(dims, ring_bits)) * count
            for dims, count in self.matrix.items()
        )
        derived += sum(
            (
                trunc_pair_cots(ring_bits, frac)
                + trunc_pair_bit_triples(ring_bits, frac) * 2
            )
            * count
            for frac, count in self.trunc_pairs.items()
        )
        return self.cot_fwd + self.cot_rev + derived

    def as_pool_targets(self) -> dict:
        """Pool kind -> item count, the :meth:`CorrelationService.prefill`
        input (zero entries omitted)."""
        targets = {
            "cot/fwd": self.cot_fwd,
            "cot/rev": self.cot_rev,
            "tri": self.bit_triples,
            "rtri": self.ring_triples,
        }
        for dims, count in self.matrix.items():
            targets[MatrixTriplePool.key_for(dims.m, dims.k, dims.n)] = count
        for frac, count in self.trunc_pairs.items():
            targets[TruncPairPool.key_for(frac)] = count
        return {kind: count for kind, count in targets.items() if count > 0}


def relu_demand(n_elements: int, bits: int) -> CorrelationDemand:
    """Exactly what ``relu_via_service`` draws for n shared elements:
    comparison COTs (P0 sender), one mux COT per element per direction,
    and the comparison's bit triples."""
    cmp_bits = bits - 1
    return CorrelationDemand(
        cot_fwd=cots_needed(n_elements, cmp_bits) + n_elements,
        cot_rev=n_elements,
        bit_triples=triples_needed(n_elements, cmp_bits),
    )


def max_demand(n_comparisons: int, bits: int) -> CorrelationDemand:
    """Secure max costs one ReLU per pairwise comparison (maxpool_cmp)."""
    return relu_demand(n_comparisons, bits)


def matmul_demand(dims: MatmulDims, count: int = 1) -> CorrelationDemand:
    """One preprocessed matrix triple per secure MatMul of this shape."""
    return CorrelationDemand(matrix={dims: count})


def mul_demand(n_elements: int) -> CorrelationDemand:
    """Elementwise Beaver multiplication: one ring triple per element."""
    return CorrelationDemand(ring_triples=n_elements)


def trunc_demand(
    n_elements: int, fx: FixedPointConfig, mode: str = "exact"
) -> CorrelationDemand:
    """Exactly what ``trunc_via_service`` draws for n rescaled elements.

    ``pair`` mode consumes one pooled truncation pair per element (the
    one-round probabilistic protocol); ``wrap``/``exact`` consume the
    comparison COTs (party 0 sender), their bit triples, and the ring
    triples the B2A of the correction bits multiplies with.
    """
    if mode == "pair":
        return CorrelationDemand(trunc_pairs={fx.frac_bits: n_elements})
    if mode not in ("wrap", "exact"):
        raise ParameterError(f"unknown truncation mode {mode!r}")
    exact = mode == "exact"
    return CorrelationDemand(
        cot_fwd=trunc_cots(n_elements, fx, exact),
        bit_triples=trunc_bit_triples(n_elements, fx, exact),
        ring_triples=trunc_ring_triples(n_elements, fx, exact),
    )


def layer_demand(
    layer,
    in_shape: tuple,
    out_shape: tuple,
    bits: int,
    fx: FixedPointConfig = None,
    trunc_mode: str = "exact",
) -> CorrelationDemand:
    """Correlation demand of one applied layer.

    Linear/Conv2d become matrix-triple shapes (conv via im2col, one
    triple per group); ReLU-family activations and MaxPool comparisons
    charge the exact service draws; Rescale layers charge truncation
    demand when a :class:`FixedPointConfig` is given; every other cost
    lands in ``unplanned`` so coverage gaps are visible, not silent.
    """
    demand = CorrelationDemand()
    if isinstance(layer, Linear):
        m = math.prod(in_shape[:-1]) if len(in_shape) > 1 else 1
        demand.merge(matmul_demand(MatmulDims(m, in_shape[-1], layer.out_features)))
        return demand
    if isinstance(layer, Conv2d):
        c = in_shape[0]
        _, oh, ow = out_shape
        dims = MatmulDims(
            oh * ow,
            (c // layer.groups) * layer.kernel * layer.kernel,
            layer.out_channels // layer.groups,
        )
        demand.merge(matmul_demand(dims, count=layer.groups))
        return demand
    _, cost = layer.apply(in_shape)
    for kind, count in cost.nonlinear.items():
        if kind == "relu":
            demand.merge(relu_demand(count, bits))
        elif kind == "maxpool_cmp":
            demand.merge(max_demand(count, bits))
        elif kind == "trunc" and fx is not None:
            if fx.bits != bits:
                raise ParameterError(
                    f"fixed-point config is {fx.bits}-bit but the plan ring is {bits}-bit"
                )
            demand.merge(trunc_demand(count, fx, trunc_mode))
        else:
            # relu6 (two comparisons, no service protocol yet), gelu,
            # softmax, layernorm, avgpool truncation: honest gaps.
            demand.unplanned[kind] = demand.unplanned.get(kind, 0) + count
    if cost.macs:
        demand.unplanned["macs"] = demand.unplanned.get("macs", 0) + cost.macs
    return demand


def _layer_produce_counts(demand: CorrelationDemand, bits: int) -> dict:
    """Pool production one layer's demand requires, per kind.

    Consumer draws (``as_pool_targets``) plus the bit triples that this
    layer's truncation-pair generation consumes *internally* -- the
    derived-of-derived input the worker must have produced before the
    TPRC batch can run.
    """
    counts = dict(demand.as_pool_targets())
    internal_tri = sum(
        count * trunc_pair_bit_triples(bits, frac)
        for frac, count in demand.trunc_pairs.items()
    )
    if internal_tri:
        counts["tri"] = counts.get("tri", 0) + internal_tri
    return counts


def _layer_internal_cots(demand: CorrelationDemand, bits: int) -> dict:
    """Raw COTs one layer's *derived production* reserves internally.

    Bit triples (including the ones truncation-pair generation eats)
    cost one COT per direction, ring triples ``bits`` per direction,
    truncation pairs their forward COTs.  A matrix triple draws its
    whole demand from ONE direction chosen by stock at runtime, so it
    is charged to BOTH directions here -- conservative by at most one
    layer's matrix demand in the unused direction, which the extend
    batch quantum absorbs.  The pipeline adds this margin to the raw
    COT watermark *before* scheduling the layer's derived production,
    so internal reserves can never eat the stock that keeps already
    ready layers' consumer draws warm.
    """
    tri = demand.bit_triples + sum(
        count * trunc_pair_bit_triples(bits, frac)
        for frac, count in demand.trunc_pairs.items()
    )
    mtri = sum(
        int(matmul_cots(dims, bits)) * count
        for dims, count in demand.matrix.items()
    )
    fwd = tri + demand.ring_triples * bits + mtri + sum(
        count * trunc_pair_cots(bits, frac)
        for frac, count in demand.trunc_pairs.items()
    )
    rev = tri + demand.ring_triples * bits + mtri
    counts = {}
    if fwd:
        counts["cot/fwd"] = fwd
    if rev:
        counts["cot/rev"] = rev
    return counts


#: Column titles matching :meth:`PreprocessingPlan.summary_rows`.
SUMMARY_HEADER = ["layer", "cot_fwd", "cot_rev", "bit triples", "matrix", "trunc pairs"]


@dataclass
class PreprocessingPlan:
    """A model's full preprocessing schedule: per-layer + total demand."""

    model: str
    bits: int
    demand: CorrelationDemand
    per_layer: list  # (layer name, CorrelationDemand)

    def pool_targets(self) -> dict:
        return self.demand.as_pool_targets()

    def _validate_service(self, service) -> None:
        if service.tuning.ring_bits != self.bits:
            raise ParameterError(
                f"plan is for {self.bits}-bit rings but the service produces "
                f"{service.tuning.ring_bits}-bit triples"
            )

    def _ensure_pools(self, service) -> None:
        for dims in self.demand.matrix:
            service.matrix_pool(dims.m, dims.k, dims.n)
        for frac in self.demand.trunc_pairs:
            service.trunc_pool(frac)

    def prefill(self, service, timeout: float = None, one_shot: bool = False) -> None:
        """Drive one party's service through the preprocessing phase.

        Ensures every shape-keyed matrix pool exists, then blocks until
        all planned correlations are produced ahead.  Both parties call
        this (leader raises watermarks, follower waits for the mirrored
        production); afterwards the online phase runs stall-free.
        ``one_shot=True`` restores the pre-plan watermarks once the
        targets are met, so a plan served exactly once does not leave
        inflated refill targets behind.
        """
        self._validate_service(service)
        self._ensure_pools(service)
        service.prefill(self.pool_targets(), timeout, one_shot=one_shot)

    def layer_schedule(self) -> tuple:
        """Per-layer production targets for the pipeline.

        Returns ``(cum_derived, cum_cot, internal_cot)``: for each
        layer index, the total items every derived pool kind must have
        produced for layers ``0..i`` inclusive (consumer draws plus the
        bit triples TPRC generation consumes internally); the
        cumulative raw consumer COT draws per direction; and that
        single layer's internal raw-COT production demand
        (:func:`_layer_internal_cots`).  Raw COT stock is managed by
        level watermarks rather than stream positions because extends
        arrive in fixed-size batches and derived production also feeds
        on them.
        """
        cum_derived, cum_cot, internal_cot = [], [], []
        total_d, total_c = {}, {}
        for _, demand in self.per_layer:
            for kind, count in _layer_produce_counts(demand, self.bits).items():
                if kind.startswith("cot/"):
                    total_c[kind] = total_c.get(kind, 0) + count
                else:
                    total_d[kind] = total_d.get(kind, 0) + count
            cum_derived.append(dict(total_d))
            cum_cot.append(dict(total_c))
            internal_cot.append(_layer_internal_cots(demand, self.bits))
        return cum_derived, cum_cot, internal_cot

    def prefill_pipelined(
        self,
        service,
        timeout: float = None,
        tag: str = None,
        batch: int = 1,
        channel=None,
        draws_baseline: dict = None,
    ) -> "PipelinedPrefill":
        """Start the streaming preprocessing pipeline (non-blocking).

        Both parties call this with their service, then run the online
        phase layer by layer, gating each layer's draws on
        :meth:`PipelinedPrefill.wait_layer`.  Layer i's online rounds
        run while the worker produces layer i+1's correlations in the
        background -- the software analogue of Ironman's schedule
        overlap (Fig. 8) -- so time-to-first-layer-online is one
        layer's preprocessing, not the whole plan's.  Call
        :meth:`PipelinedPrefill.finish` after the online phase to
        restore steady-state watermarks and surface worker errors.

        ``batch`` scales every per-layer produce target and raw-COT
        watermark by B: the online phase then pushes B inputs through
        the same plan (B matrix-triple draws per linear layer, B-times
        the elements through each fused nonlinear draw).  ``channel``
        reuses an existing sub-channel for the in-band baseline
        exchange instead of allocating a fresh ``pipe/<plan>`` tag --
        long-lived daemons start many pipelines and per-pipeline tags
        would leak mux queues.  ``draws_baseline`` overrides the live
        per-kind session-draw snapshot the raw-COT watermarks are
        computed against: a pipeline overlapping a previous request's
        online tail passes the PLANNED cumulative floor instead, so the
        tail's still-draining draws are not mistaken for its own.
        """
        self._validate_service(service)
        self._ensure_pools(service)
        return PipelinedPrefill(
            self, service, timeout, tag, batch, channel, draws_baseline
        )

    def summary_rows(self) -> list:
        """Printable per-layer rows: layer, COTs per direction, bit
        triples, matrix-triple shapes, and truncation pairs (for
        ``print_table`` with :data:`SUMMARY_HEADER`)."""
        rows = []
        for name, d in self.per_layer:
            mats = ", ".join(
                f"{dims.label}x{count}" for dims, count in d.matrix.items()
            ) or "-"
            pairs = ", ".join(
                f"f{frac}x{count}" for frac, count in d.trunc_pairs.items()
            ) or "-"
            rows.append(
                [name, str(d.cot_fwd), str(d.cot_rev), str(d.bit_triples), mats, pairs]
            )
        return rows


def plan_graph(
    graph: Graph,
    bits: int = 32,
    fx: FixedPointConfig = None,
    trunc_mode: str = "exact",
) -> PreprocessingPlan:
    """Walk a traced model graph into a :class:`PreprocessingPlan`.

    ``bits`` is the arithmetic ring width of the activations (and so of
    every ring/matrix triple); it must match the serving service's
    ``ServiceTuning.ring_bits``.  ``fx`` prices the graph's Rescale
    layers as executable truncation demand (``trunc_mode`` selecting
    pair/wrap/exact); without it they surface as unplanned.
    """
    total = CorrelationDemand()
    per_layer = []
    for layer, in_shape, out_shape in graph.trace:
        demand = layer_demand(layer, in_shape, out_shape, bits, fx, trunc_mode)
        per_layer.append((layer.name, demand))
        total.merge(demand)
    return PreprocessingPlan(graph.name, bits, total, per_layer)


class PipelinedPrefill:
    """Streaming preprocessing: layer-by-layer production overlapping
    the online phase.

    Created by :meth:`PreprocessingPlan.prefill_pipelined` on BOTH
    parties.  A background thread walks the plan's layers in order; for
    each layer it schedules exactly that layer's correlation production
    (absolute produce targets for derived pools, cumulative consumer
    watermarks for raw COTs), waits for it to land, and marks the layer
    ready -- then immediately moves on to the next layer while the
    caller runs the current layer's online rounds.  The online phase
    gates each layer's draws on :meth:`wait_layer`, so it starts after
    ONE layer's preprocessing instead of the whole plan's, and never
    stalls a pool afterwards.

    Determinism: absolute targets are computed from the leader's pool
    baselines and shipped to the follower in-band over a dedicated
    ``pipe/<plan>`` sub-channel (production streams are mirrored
    command-by-command, so leader stream positions are valid on both
    sides).  The follower waits on the same produced counts; only the
    leader schedules.

    The pipeline assumes the planned workload is the dominant consumer
    while it runs (same contract as ``prefill``): concurrent unplanned
    sessions may re-introduce stalls, never wrong results.
    """

    def __init__(
        self,
        plan: PreprocessingPlan,
        service,
        timeout: float,
        tag: str,
        batch: int = 1,
        channel=None,
        draws_baseline: dict = None,
    ):
        if batch < 1:
            raise ParameterError(f"batch must be >= 1, got {batch}")
        self.plan = plan
        self.service = service
        self.batch = batch
        self.timeout = (
            service.tuning.take_timeout_s if timeout is None else timeout
        )
        self.error = None
        self.n_layers = len(plan.per_layer)
        self._cum_derived, self._cum_cot, self._internal_cot = plan.layer_schedule()
        if batch > 1:
            # Demand counts are linear in element count, so a B-input
            # request through the same shapes is exactly B-times every
            # per-layer target and watermark.
            scale = lambda seq: [  # noqa: E731
                {kind: count * batch for kind, count in layer.items()}
                for layer in seq
            ]
            self._cum_derived = scale(self._cum_derived)
            self._cum_cot = scale(self._cum_cot)
            self._internal_cot = scale(self._internal_cot)
        self._ready = [threading.Event() for _ in range(self.n_layers)]
        self._t0 = time.monotonic()
        self._ready_elapsed = [None] * self.n_layers
        self._channel = (
            channel if channel is not None
            else service.mux.sub(tag or f"pipe/{plan.model}")
        )
        self._draws_baseline = (
            service.session_draw_counts()
            if draws_baseline is None
            else dict(draws_baseline)
        )
        self._saved_cot_marks = None
        self._finished = False
        if service.party == 0:
            kinds = set()
            for layer in self._cum_cot:
                kinds.update(layer)
            for layer in self._internal_cot:
                kinds.update(layer)
            # A forward-only service has no cot/rev pool; the internal
            # margin charged to the missing direction simply cannot be
            # reserved there (matrix production falls back to cot/fwd,
            # whose own charge already covers it).
            self._saved_cot_marks = {
                kind: service.pools[kind].watermarks
                for kind in sorted(kinds)
                if kind in service.pools
            }
        self._thread = threading.Thread(
            target=self._run,
            name=f"pipelined-prefill-p{service.party}",
            daemon=True,
        )
        self._thread.start()

    # -- background production driver ---------------------------------------
    def _run(self) -> None:
        try:
            svc = self.service
            derived_kinds = sorted(self._cum_derived[-1]) if self._cum_derived else []
            if svc.party == 0:
                baseline = {
                    kind: svc.pools[kind].produced for kind in derived_kinds
                }
                self._channel.send_bytes(json.dumps(baseline).encode())
            else:
                baseline = json.loads(
                    self._channel.recv_bytes(timeout=self.timeout).decode()
                )
            for i in range(self.n_layers):
                deadline = time.monotonic() + self.timeout
                with svc.tracer.span(
                    "prefill.layer", cat="prefill",
                    layer=i, op=self.plan.per_layer[i][0],
                ):
                    if svc.party == 0:
                        # Raw COT stock first: before this layer's derived
                        # production may reserve raw COTs internally, the
                        # level must cover (a) every already-ready layer's
                        # consumer demand not yet drawn -- so the overlapped
                        # online phase keeps finding produced ranges -- plus
                        # (b) this layer's internal reserves.  The watermark
                        # is re-set (possibly LOWERED) each layer from the
                        # live draw counters, so extends track the plan
                        # just-in-time instead of front-loading the total.
                        for kind, level in self._cot_levels(i).items():
                            svc._raise_if_failed()
                            pool = svc.pools[kind]
                            low = max(level, self._saved_cot_marks[kind][0])
                            pool.set_watermarks(low, low)
                            pool.wait_level(low, deadline - time.monotonic())
                    targets = {
                        kind: baseline[kind] + count
                        for kind, count in self._cum_derived[i].items()
                    }
                    if svc.party == 0:
                        svc.raise_produce_targets(targets)
                    for kind, target in targets.items():
                        svc._raise_if_failed()
                        svc.pools[kind].wait_produced(
                            target, deadline - time.monotonic()
                        )
                    self._ready_elapsed[i] = time.monotonic() - self._t0
                    self._ready[i].set()
                if svc.tracer.enabled:
                    svc.tracer.instant(
                        "prefill.ready", cat="prefill",
                        layer=i, elapsed_s=self._ready_elapsed[i],
                    )
        except BaseException as exc:  # noqa: BLE001 - crossing a thread
            self.error = exc

    def _cot_levels(self, i: int) -> dict:
        """Raw-COT level targets before layer i's production starts:
        undrawn consumer demand of layers ``0..i`` (consumers of layer
        i start the moment it is marked ready) plus layer i's internal
        production reserves."""
        levels = {}
        kinds = (set(self._cum_cot[i]) | set(self._internal_cot[i])) & set(
            self._saved_cot_marks
        )
        draws = self.service.session_draw_counts()
        for kind in sorted(kinds):
            drawn = draws.get(kind, 0) - self._draws_baseline.get(
                kind, 0
            )
            undrawn = max(0, self._cum_cot[i].get(kind, 0) - drawn)
            levels[kind] = undrawn + self._internal_cot[i].get(kind, 0)
        return levels

    # -- caller side ---------------------------------------------------------
    def _check_failed(self) -> None:
        if self.error is not None:
            raise ServiceError(
                f"pipelined prefill failed: {self.error!r}"
            ) from self.error
        self.service._raise_if_failed()

    def wait_layer(self, i: int, timeout: float = None) -> None:
        """Block until layers ``0..i`` have their correlations pooled."""
        if not 0 <= i < self.n_layers:
            raise ParameterError(f"layer index {i} outside plan of {self.n_layers}")
        deadline = time.monotonic() + (
            self.timeout if timeout is None else timeout
        )
        waited = not self._ready[i].is_set()
        start = time.monotonic()
        try:
            while not self._ready[i].wait(0.05):
                self._check_failed()
                if time.monotonic() > deadline:
                    raise WaitTimeout(
                        f"pipelined prefill: layer {i} "
                        f"({self.plan.per_layer[i][0]}) not ready in time",
                        what=f"layer {i} ({self.plan.per_layer[i][0]})",
                    )
        finally:
            if waited:
                tr = self.service.tracer
                if tr.enabled:
                    end = tr.now()
                    tr.complete(
                        "online.wait", end - (time.monotonic() - start), end,
                        cat="stall",
                        layer=i, op=self.plan.per_layer[i][0],
                    )
        self._check_failed()

    def wait_all(self, timeout: float = None) -> None:
        if self.n_layers:
            self.wait_layer(self.n_layers - 1, timeout)

    def ready_elapsed(self, i: int) -> float:
        """Seconds from pipeline start until layer i was ready."""
        return self._ready_elapsed[i]

    def finish(self, timeout: float = None, restore: bool = True) -> None:
        """Join the producer thread and restore steady-state watermarks.

        Call after the online phase: the raised raw-COT consumer
        watermarks drop back to their pre-pipeline values (produce
        targets are absolute, so they are already inert), leaving the
        service in the same steady-state shape a one-shot ``prefill``
        leaves behind.  Idempotent; raises if either the pipeline
        thread or the service worker failed.

        ``restore=False`` skips the watermark restore: a daemon chaining
        pipelines back-to-back must not clobber the marks the NEXT
        request's pipeline already set -- it restores steady-state marks
        once, at shutdown.
        """
        if self._finished:
            self._check_failed()
            return
        self._thread.join(self.timeout if timeout is None else timeout)
        if self._thread.is_alive():
            # Still producing: restoring now would be clobbered by the
            # thread's own per-layer watermark updates.  Leave state
            # untouched so a later finish() can complete the job.
            raise WaitTimeout(
                "pipelined prefill producer did not finish in time",
                what="producer join",
            )
        if restore and self._saved_cot_marks is not None:
            for kind, (low, high) in self._saved_cot_marks.items():
                self.service.pools[kind].set_watermarks(low, high)
        self._finished = True
        self._check_failed()
