"""Network settings for two-party protocols (Section 6.5).

The paper evaluates two cloud configurations, following Cheetah:
a LAN-like link (3 Gbps, 0.15 ms RTT) and a WAN-like link
(400 Mbps, 20 ms RTT).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError


@dataclass(frozen=True)
class NetworkModel:
    """A symmetric link between the two parties."""

    name: str
    bandwidth_bits_s: float
    rtt_s: float

    def __post_init__(self):
        if self.bandwidth_bits_s <= 0 or self.rtt_s < 0:
            raise ParameterError("bandwidth must be positive and RTT non-negative")

    @property
    def bytes_per_s(self) -> float:
        return self.bandwidth_bits_s / 8.0

    def transfer_seconds(self, n_bytes: float) -> float:
        """Serialization time of a payload (no per-message latency)."""
        return n_bytes / self.bytes_per_s

    def round_seconds(self, n_rounds: float) -> float:
        """Latency cost of ``n_rounds`` protocol round trips."""
        return n_rounds * self.rtt_s

    def interaction_seconds(self, n_bytes: float, n_rounds: float) -> float:
        """Total interaction time: serialization plus round trips."""
        return self.transfer_seconds(n_bytes) + self.round_seconds(n_rounds)


#: The paper's two settings (Table 5 headers).
LAN = NetworkModel("LAN (3Gbps, 0.15ms)", 3e9, 0.15e-3)
WAN = NetworkModel("WAN (400Mbps, 20ms)", 400e6, 20e-3)
