"""OT-based secure matrix multiplication with role switching (Fig 16).

PrivQuant-style quantized MatMul evaluates ``(m x k) @ (k x n)`` with
COT-based multiplication: each secret operand bit sources a batch of
correlations, and the direction (who plays OT sender) decides whether
communication scales with the activation or the weight operand.

Without a unified architecture, a party whose accelerator only
implements one role must run *both* directions from its fixed role,
paying both operands' traffic.  Ironman's unified unit lets each party
take the cheaper sending direction for its half of the product, which
halves communication (the paper measures 2x comm and 1.4x latency).
"""

from __future__ import annotations

from dataclasses import dataclass

# Canonical definitions live with the executable protocol
# (repro.mpc.matmul); the analytical model here prices the same counts
# and per-COT byte constant, so the two layers cannot silently diverge.
# Re-exported for backwards compatibility.
from repro.mpc.matmul import (  # noqa: F401 - re-exports
    BYTES_PER_COT,
    DEFAULT_BITS,
    FIG16_DIMS,
    MatmulDims,
    matmul_cots,
    matmul_online_bytes,
    matmul_preproc_bytes,
)
from repro.ppml.inference import OteProvider
from repro.ppml.network import NetworkModel


def matmul_comm_bytes(dims: MatmulDims, bits: int = DEFAULT_BITS, unified: bool = True) -> float:
    """Online communication of one secure MatMul.

    With the unified architecture each cross term is sent by the party
    for whom it is sender-side (one transmission per term).  A
    fixed-role accelerator must re-run the reverse-direction term
    through its only supported role, transmitting both operand
    encodings twice -- the 2x communication the paper measures.
    """
    factor = 1.0 if unified else 2.0
    return matmul_cots(dims, bits) * BYTES_PER_COT * factor


@dataclass(frozen=True)
class MatmulCost:
    """Latency/communication of one secure MatMul configuration."""

    dims: MatmulDims
    unified: bool
    cots: float
    comm_bytes: float
    ot_seconds: float
    comm_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.ot_seconds + self.comm_seconds


def matmul_cost(
    dims: MatmulDims,
    provider: OteProvider,
    network: NetworkModel,
    bits: int = DEFAULT_BITS,
    unified: bool = True,
) -> MatmulCost:
    """Price one secure MatMul under a provider/network pair."""
    cots = matmul_cots(dims, bits)
    comm = matmul_comm_bytes(dims, bits, unified)
    return MatmulCost(
        dims=dims,
        unified=unified,
        cots=cots,
        comm_bytes=comm,
        ot_seconds=provider.seconds_for(cots),
        comm_seconds=network.transfer_seconds(comm),
    )
