"""OT-based secure matrix multiplication with role switching (Fig 16).

PrivQuant-style quantized MatMul evaluates ``(m x k) @ (k x n)`` with
COT-based multiplication: each secret operand bit sources a batch of
correlations, and the direction (who plays OT sender) decides whether
communication scales with the activation or the weight operand.

Without a unified architecture, a party whose accelerator only
implements one role must run *both* directions from its fixed role,
paying both operands' traffic.  Ironman's unified unit lets each party
take the cheaper sending direction for its half of the product, which
halves communication (the paper measures 2x comm and 1.4x latency).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.ppml.inference import OteProvider
from repro.ppml.network import NetworkModel

#: Default operand bit-width (quantized inference).
DEFAULT_BITS = 8

#: Online bytes shipped per COT-backed multiplication term.
BYTES_PER_COT = 17  # one masked 128-bit block + correction bit


@dataclass(frozen=True)
class MatmulDims:
    """(input, hidden, output) dimensions as labelled in Figure 16."""

    m: int
    k: int
    n: int

    def __post_init__(self):
        if min(self.m, self.k, self.n) < 1:
            raise ParameterError("matmul dimensions must be positive")

    @property
    def label(self) -> str:
        return f"({self.m},{self.k},{self.n})"


#: Figure 16 layer shapes (BERT-Base and LLaMA projections, seq 32).
FIG16_DIMS = (
    MatmulDims(64, 768, 768),
    MatmulDims(64, 768, 64),
    MatmulDims(64, 4096, 64),
)


def matmul_cots(dims: MatmulDims, bits: int = DEFAULT_BITS) -> float:
    """COT correlations one secure MatMul consumes.

    The product of secret shares decomposes into two cross terms; the
    one sourced from the activation side scales with ``m*k`` elements,
    the weight side with ``k*n``, ``bits`` correlations per element.
    The demand is role-independent -- what role switching changes is
    which party *transmits* for each term.
    """
    return (dims.m * dims.k + dims.k * dims.n) * bits


def matmul_comm_bytes(dims: MatmulDims, bits: int = DEFAULT_BITS, unified: bool = True) -> float:
    """Online communication of one secure MatMul.

    With the unified architecture each cross term is sent by the party
    for whom it is sender-side (one transmission per term).  A
    fixed-role accelerator must re-run the reverse-direction term
    through its only supported role, transmitting both operand
    encodings twice -- the 2x communication the paper measures.
    """
    factor = 1.0 if unified else 2.0
    return matmul_cots(dims, bits) * BYTES_PER_COT * factor


@dataclass(frozen=True)
class MatmulCost:
    """Latency/communication of one secure MatMul configuration."""

    dims: MatmulDims
    unified: bool
    cots: float
    comm_bytes: float
    ot_seconds: float
    comm_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.ot_seconds + self.comm_seconds


def matmul_cost(
    dims: MatmulDims,
    provider: OteProvider,
    network: NetworkModel,
    bits: int = DEFAULT_BITS,
    unified: bool = True,
) -> MatmulCost:
    """Price one secure MatMul under a provider/network pair."""
    cots = matmul_cots(dims, bits)
    comm = matmul_comm_bytes(dims, bits, unified)
    return MatmulCost(
        dims=dims,
        unified=unified,
        cots=cots,
        comm_bytes=comm,
        ot_seconds=provider.seconds_for(cots),
        comm_seconds=network.transfer_seconds(comm),
    )
