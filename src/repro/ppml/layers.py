"""Layer IR with shape inference for the PPML model zoo.

Private-inference cost models need, per network: how many multiply-
accumulates the linear layers perform (HE side) and how many elements
pass through each *kind* of nonlinearity (OT side) -- ReLU and MaxPool
comparisons for CNNs; GELU, Softmax, LayerNorm for Transformers.  This
module is a minimal from-scratch shape-inference framework: layers
consume a shape tuple and report output shape, MACs, parameters and
nonlinear work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ParameterError

#: Nonlinear operation kinds the framework cost models price.
NONLINEAR_KINDS = ("relu", "relu6", "gelu", "softmax", "layernorm", "maxpool_cmp", "avgpool", "silu", "trunc")


@dataclass
class LayerCost:
    """Cost contribution of one layer application."""

    macs: int = 0
    params: int = 0
    nonlinear: dict = field(default_factory=dict)  # kind -> element count

    def merge(self, other: "LayerCost") -> None:
        self.macs += other.macs
        self.params += other.params
        for kind, count in other.nonlinear.items():
            self.nonlinear[kind] = self.nonlinear.get(kind, 0) + count


class Layer:
    """Base layer: subclasses implement apply(shape) -> (shape, LayerCost)."""

    name = "layer"

    def apply(self, shape: tuple) -> tuple:
        raise NotImplementedError


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


@dataclass
class Conv2d(Layer):
    """2D convolution on (C, H, W) shapes; groups support depthwise."""

    out_channels: int
    kernel: int
    stride: int = 1
    padding: int = 0
    groups: int = 1
    bias: bool = True
    name: str = "conv"

    def apply(self, shape: tuple) -> tuple:
        c, h, w = shape
        if c % self.groups or self.out_channels % self.groups:
            raise ParameterError("channels must divide groups")
        oh = _conv_out(h, self.kernel, self.stride, self.padding)
        ow = _conv_out(w, self.kernel, self.stride, self.padding)
        k2 = self.kernel * self.kernel
        per_out = (c // self.groups) * k2
        macs = per_out * self.out_channels * oh * ow
        params = per_out * self.out_channels + (self.out_channels if self.bias else 0)
        return (self.out_channels, oh, ow), LayerCost(macs=macs, params=params)


@dataclass
class Linear(Layer):
    """Fully connected layer on (..., features) shapes."""

    out_features: int
    bias: bool = True
    name: str = "linear"

    def apply(self, shape: tuple) -> tuple:
        in_features = shape[-1]
        batch = math.prod(shape[:-1]) if len(shape) > 1 else 1
        macs = batch * in_features * self.out_features
        params = in_features * self.out_features + (self.out_features if self.bias else 0)
        return shape[:-1] + (self.out_features,), LayerCost(macs=macs, params=params)


@dataclass
class BatchNorm2d(Layer):
    """Batch norm (folded into the preceding conv at inference)."""

    name: str = "bn"

    def apply(self, shape: tuple) -> tuple:
        return shape, LayerCost(params=2 * shape[0])


@dataclass
class Activation(Layer):
    """Elementwise nonlinearity: relu / relu6 / gelu / silu."""

    kind: str = "relu"
    name: str = "act"

    def apply(self, shape: tuple) -> tuple:
        if self.kind not in NONLINEAR_KINDS:
            raise ParameterError(f"unknown activation {self.kind!r}")
        return shape, LayerCost(nonlinear={self.kind: math.prod(shape)})


@dataclass
class Rescale(Layer):
    """Fixed-point rescaling: secure truncation of every element.

    Quantized inference inserts one after each linear/conv layer so the
    scale stays at 2^f instead of doubling per product.  Shape-neutral;
    charges one ``trunc`` nonlinear element per value, which the
    preprocessing planner expands into exact truncation demand
    (comparison COTs + bit triples + B2A ring triples, or pooled
    truncation pairs) for the :class:`repro.mpc.truncation` protocols.
    """

    name: str = "rescale"

    def apply(self, shape: tuple) -> tuple:
        return shape, LayerCost(nonlinear={"trunc": math.prod(shape)})


@dataclass
class MaxPool2d(Layer):
    """Max pooling: each output needs (window - 1) secure comparisons."""

    kernel: int
    stride: int = 2
    padding: int = 0
    name: str = "maxpool"

    def apply(self, shape: tuple) -> tuple:
        c, h, w = shape
        oh = _conv_out(h, self.kernel, self.stride, self.padding)
        ow = _conv_out(w, self.kernel, self.stride, self.padding)
        cmps = c * oh * ow * (self.kernel * self.kernel - 1)
        return (c, oh, ow), LayerCost(nonlinear={"maxpool_cmp": cmps})


@dataclass
class AvgPool2d(Layer):
    """Average pooling: linear, but needs secure truncation per output."""

    kernel: int
    stride: int = 0  # 0 = same as kernel
    name: str = "avgpool"

    def apply(self, shape: tuple) -> tuple:
        c, h, w = shape
        stride = self.stride or self.kernel
        oh = _conv_out(h, self.kernel, stride, 0)
        ow = _conv_out(w, self.kernel, stride, 0)
        return (c, oh, ow), LayerCost(nonlinear={"avgpool": c * oh * ow})


@dataclass
class GlobalAvgPool(Layer):
    """Adaptive average pool to 1x1."""

    name: str = "gap"

    def apply(self, shape: tuple) -> tuple:
        c = shape[0]
        return (c, 1, 1), LayerCost(nonlinear={"avgpool": c})


@dataclass
class Flatten(Layer):
    name: str = "flatten"

    def apply(self, shape: tuple) -> tuple:
        return (math.prod(shape),), LayerCost()


@dataclass
class Softmax(Layer):
    """Softmax over the last axis; priced per input element."""

    name: str = "softmax"

    def apply(self, shape: tuple) -> tuple:
        return shape, LayerCost(nonlinear={"softmax": math.prod(shape)})


@dataclass
class LayerNorm(Layer):
    """LayerNorm over the last axis; priced per input element."""

    name: str = "layernorm"

    def apply(self, shape: tuple) -> tuple:
        return shape, LayerCost(
            params=2 * shape[-1], nonlinear={"layernorm": math.prod(shape)}
        )


class Graph:
    """A model: named layers applied along a (possibly branching) graph.

    Branching (residuals, dense blocks, fire modules) is handled by the
    builder code in :mod:`repro.ppml.models` -- this class only
    accumulates costs and tracks shapes for a *sequence*; branch
    builders call :meth:`absorb` to merge side-branch costs.
    """

    def __init__(self, name: str, input_shape: tuple):
        self.name = name
        self.input_shape = tuple(input_shape)
        self.shape = tuple(input_shape)
        self.cost = LayerCost(nonlinear={})
        #: Full (layer, in_shape, out_shape) record of every applied
        #: layer -- what the preprocessing planner walks to turn a model
        #: into exact per-layer correlation demand.
        self.trace: list = []

    @property
    def layer_log(self) -> list:
        """(name, out_shape) view of the trace (legacy accessor)."""
        return [(layer.name, out) for layer, _, out in self.trace]

    def add(self, layer: Layer) -> "Graph":
        in_shape = self.shape
        self.shape, cost = layer.apply(self.shape)
        self.cost.merge(cost)
        self.trace.append((layer, in_shape, self.shape))
        return self

    def absorb(self, other: "Graph") -> "Graph":
        """Merge a side branch's accumulated cost (shapes untouched)."""
        self.cost.merge(other.cost)
        self.trace.extend(other.trace)
        return self

    def set_shape(self, shape: tuple) -> "Graph":
        """Override the tracked shape (after concat/reshape)."""
        self.shape = tuple(shape)
        return self

    # -- summary accessors ---------------------------------------------------
    @property
    def total_macs(self) -> int:
        return self.cost.macs

    @property
    def total_params(self) -> int:
        return self.cost.params

    def nonlinear_counts(self) -> dict:
        return dict(self.cost.nonlinear)

    def nonlinear_total(self) -> int:
        return sum(self.cost.nonlinear.values())
