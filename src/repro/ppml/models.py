"""The PPML evaluation model zoo (Section 6.5, Table 5, Figure 1(a)).

CNNs at 224x224x3: MobileNetV2, SqueezeNet 1.0, ResNet-18/34/50,
DenseNet-121.  Transformers at sequence length 128: ViT-Base/16,
BERT-Base/Large, GPT-2 small/medium/large.

Every builder constructs the real architecture through the shape-
inference IR, so MAC/parameter/nonlinearity counts come from the
actual layer dimensions; the test suite pins parameter totals against
the published sizes (e.g. ResNet-50 25.6M, BERT-Base 110M).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.ppml.layers import (
    Activation,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Graph,
    GlobalAvgPool,
    Layer,
    LayerCost,
    LayerNorm,
    Linear,
    MaxPool2d,
    Softmax,
)


@dataclass
class Op(Layer):
    """A raw cost node (attention score matmuls, concats, etc.)."""

    macs: int = 0
    params: int = 0
    nonlinear: dict = None
    out_shape: tuple = None
    name: str = "op"

    def apply(self, shape: tuple) -> tuple:
        cost = LayerCost(
            macs=self.macs, params=self.params, nonlinear=dict(self.nonlinear or {})
        )
        return (self.out_shape or shape), cost


def _conv_bn_act(g: Graph, out_ch, kernel, stride=1, padding=0, act="relu", groups=1):
    g.add(Conv2d(out_ch, kernel, stride, padding, groups=groups, bias=False))
    g.add(BatchNorm2d())
    if act:
        g.add(Activation(act))


# ---------------------------------------------------------------------------
# ResNet family
# ---------------------------------------------------------------------------

def _basic_block(g: Graph, out_ch: int, stride: int):
    in_shape = g.shape
    _conv_bn_act(g, out_ch, 3, stride, 1)
    _conv_bn_act(g, out_ch, 3, 1, 1, act=None)
    if stride != 1 or in_shape[0] != out_ch:
        skip = Graph("skip", in_shape)
        _conv_bn_act(skip, out_ch, 1, stride, 0, act=None)
        g.absorb(skip)
    g.add(Activation("relu"))


def _bottleneck(g: Graph, mid_ch: int, stride: int):
    in_shape = g.shape
    out_ch = mid_ch * 4
    _conv_bn_act(g, mid_ch, 1)
    _conv_bn_act(g, mid_ch, 3, stride, 1)
    _conv_bn_act(g, out_ch, 1, act=None)
    if stride != 1 or in_shape[0] != out_ch:
        skip = Graph("skip", in_shape)
        _conv_bn_act(skip, out_ch, 1, stride, 0, act=None)
        g.absorb(skip)
    g.add(Activation("relu"))


def _resnet(name: str, blocks, bottleneck: bool) -> Graph:
    g = Graph(name, (3, 224, 224))
    _conv_bn_act(g, 64, 7, 2, 3)
    g.add(MaxPool2d(3, 2, 1))
    channels = (64, 128, 256, 512)
    for stage, (n_blocks, ch) in enumerate(zip(blocks, channels)):
        for b in range(n_blocks):
            stride = 2 if (stage > 0 and b == 0) else 1
            if bottleneck:
                _bottleneck(g, ch, stride)
            else:
                _basic_block(g, ch, stride)
    g.add(GlobalAvgPool())
    g.add(Flatten())
    g.add(Linear(1000))
    return g


def resnet18() -> Graph:
    return _resnet("ResNet18", (2, 2, 2, 2), bottleneck=False)


def resnet34() -> Graph:
    return _resnet("ResNet34", (3, 4, 6, 3), bottleneck=False)


def resnet50() -> Graph:
    return _resnet("ResNet50", (3, 4, 6, 3), bottleneck=True)


# ---------------------------------------------------------------------------
# MobileNetV2
# ---------------------------------------------------------------------------

_MBV2_SETTINGS = (
    # expansion t, out channels c, repeats n, first stride s
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def _inverted_residual(g: Graph, expand: int, out_ch: int, stride: int):
    in_ch = g.shape[0]
    hidden = in_ch * expand
    if expand != 1:
        _conv_bn_act(g, hidden, 1, act="relu6")
    _conv_bn_act(g, hidden, 3, stride, 1, act="relu6", groups=hidden)
    _conv_bn_act(g, out_ch, 1, act=None)


def mobilenet_v2() -> Graph:
    g = Graph("MobileNetV2", (3, 224, 224))
    _conv_bn_act(g, 32, 3, 2, 1, act="relu6")
    for t, c, n, s in _MBV2_SETTINGS:
        for i in range(n):
            _inverted_residual(g, t, c, s if i == 0 else 1)
    _conv_bn_act(g, 1280, 1, act="relu6")
    g.add(GlobalAvgPool())
    g.add(Flatten())
    g.add(Linear(1000))
    return g


# ---------------------------------------------------------------------------
# SqueezeNet 1.0
# ---------------------------------------------------------------------------

def _fire(g: Graph, squeeze: int, e1: int, e3: int):
    c, h, w = g.shape
    g.add(Conv2d(squeeze, 1))
    g.add(Activation("relu"))
    sq_shape = g.shape
    left = Graph("fire1x1", sq_shape)
    left.add(Conv2d(e1, 1)).add(Activation("relu"))
    right = Graph("fire3x3", sq_shape)
    right.add(Conv2d(e3, 3, 1, 1)).add(Activation("relu"))
    g.absorb(left).absorb(right)
    g.set_shape((e1 + e3, sq_shape[1], sq_shape[2]))


def squeezenet() -> Graph:
    g = Graph("SqueezeNet", (3, 224, 224))
    g.add(Conv2d(96, 7, 2)).add(Activation("relu"))
    g.add(MaxPool2d(3, 2))
    _fire(g, 16, 64, 64)
    _fire(g, 16, 64, 64)
    _fire(g, 32, 128, 128)
    g.add(MaxPool2d(3, 2))
    _fire(g, 32, 128, 128)
    _fire(g, 48, 192, 192)
    _fire(g, 48, 192, 192)
    _fire(g, 64, 256, 256)
    g.add(MaxPool2d(3, 2))
    _fire(g, 64, 256, 256)
    g.add(Conv2d(1000, 1)).add(Activation("relu"))
    g.add(GlobalAvgPool())
    g.add(Flatten())
    return g


# ---------------------------------------------------------------------------
# DenseNet-121
# ---------------------------------------------------------------------------

def _dense_layer(g: Graph, growth: int):
    in_shape = g.shape
    branch = Graph("dense", in_shape)
    branch.add(BatchNorm2d()).add(Activation("relu"))
    branch.add(Conv2d(4 * growth, 1, bias=False))
    branch.add(BatchNorm2d()).add(Activation("relu"))
    branch.add(Conv2d(growth, 3, 1, 1, bias=False))
    g.absorb(branch)
    g.set_shape((in_shape[0] + growth, in_shape[1], in_shape[2]))


def densenet121() -> Graph:
    g = Graph("DenseNet121", (3, 224, 224))
    _conv_bn_act(g, 64, 7, 2, 3)
    g.add(MaxPool2d(3, 2, 1))
    growth = 32
    for i, n_layers in enumerate((6, 12, 24, 16)):
        for _ in range(n_layers):
            _dense_layer(g, growth)
        if i < 3:
            c = g.shape[0]
            g.add(BatchNorm2d()).add(Activation("relu"))
            g.add(Conv2d(c // 2, 1, bias=False))
            g.add(AvgPool2d(2))
    g.add(BatchNorm2d()).add(Activation("relu"))
    g.add(GlobalAvgPool())
    g.add(Flatten())
    g.add(Linear(1000))
    return g


# ---------------------------------------------------------------------------
# Transformers
# ---------------------------------------------------------------------------

def _transformer_block(g: Graph, d: int, heads: int, seq: int, act: str = "gelu"):
    """One encoder block: LN -> MHA -> LN -> MLP (pre-norm omitted from
    cost perspective -- element counts are identical either way)."""
    g.add(LayerNorm())
    g.add(Op(name="qkv", macs=seq * d * 3 * d, params=3 * d * d + 3 * d))
    # Attention scores QK^T and context AV: seq^2 * d MACs each.
    g.add(Op(name="scores", macs=seq * seq * d))
    g.add(Op(name="softmax", nonlinear={"softmax": heads * seq * seq}))
    g.add(Op(name="context", macs=seq * seq * d))
    g.add(Op(name="proj", macs=seq * d * d, params=d * d + d))
    g.add(LayerNorm())
    g.add(Linear(4 * d))
    g.add(Activation(act))
    g.add(Linear(d))


def transformer(
    name: str,
    n_layers: int,
    d: int,
    heads: int,
    seq: int = 128,
    vocab: int = 0,
    max_pos: int = 512,
    extra_embed_params: int = 0,
) -> Graph:
    """A generic encoder/decoder stack with embeddings."""
    if d % heads:
        raise ParameterError("hidden size must divide the head count")
    g = Graph(name, (seq, d))
    embed_params = vocab * d + max_pos * d + extra_embed_params
    g.add(Op(name="embed", params=embed_params))
    g.add(LayerNorm())
    for _ in range(n_layers):
        _transformer_block(g, d, heads, seq)
    g.add(LayerNorm())
    return g


def bert_base(seq: int = 128) -> Graph:
    # token-type embeddings + pooler dense layer.
    return transformer(
        "BERT-Base", 12, 768, 12, seq, vocab=30522,
        extra_embed_params=2 * 768 + 768 * 768 + 768,
    )


def bert_large(seq: int = 128) -> Graph:
    return transformer(
        "BERT-Large", 24, 1024, 16, seq, vocab=30522,
        extra_embed_params=2 * 1024 + 1024 * 1024 + 1024,
    )


def gpt2_small(seq: int = 128) -> Graph:
    return transformer("GPT2-Small", 12, 768, 12, seq, vocab=50257, max_pos=1024)


def gpt2_medium(seq: int = 128) -> Graph:
    return transformer("GPT2-Medium", 24, 1024, 16, seq, vocab=50257, max_pos=1024)


def gpt2_large(seq: int = 128) -> Graph:
    return transformer("GPT2-Large", 36, 1280, 20, seq, vocab=50257, max_pos=1024)


def vit_base(seq_patches: int = 197) -> Graph:
    """ViT-Base/16 at 224x224: 196 patches + CLS token."""
    g = Graph("ViT-Base", (seq_patches, 768))
    # Patch embedding: 16x16x3 -> 768 conv, plus position embeddings.
    g.add(Op(name="patch_embed", macs=196 * 768 * (16 * 16 * 3),
             params=768 * 16 * 16 * 3 + 768 + seq_patches * 768))
    for _ in range(12):
        _transformer_block(g, 768, 12, seq_patches)
    g.add(LayerNorm())
    g.add(Op(name="head", macs=768 * 1000, params=768 * 1000 + 1000))
    return g


#: Registry used by benchmarks and examples.
MODEL_BUILDERS = {
    "MobileNetV2": mobilenet_v2,
    "SqueezeNet": squeezenet,
    "ResNet18": resnet18,
    "ResNet34": resnet34,
    "ResNet50": resnet50,
    "DenseNet121": densenet121,
    "ViT": vit_base,
    "BERT-Base": bert_base,
    "BERT-Large": bert_large,
    "GPT2-Small": gpt2_small,
    "GPT2-Medium": gpt2_medium,
    "GPT2-Large": gpt2_large,
}

#: Published parameter counts (millions) the tests validate against.
REFERENCE_PARAMS_M = {
    "MobileNetV2": 3.50,
    "SqueezeNet": 1.25,
    "ResNet18": 11.69,
    "ResNet34": 21.80,
    "ResNet50": 25.56,
    "DenseNet121": 7.98,
    "ViT": 86.6,
    "BERT-Base": 110.0,
    "BERT-Large": 340.0,
    "GPT2-Small": 124.0,
    "GPT2-Medium": 355.0,
    "GPT2-Large": 774.0,
}


def build(name: str) -> Graph:
    """Build a registry model by name."""
    if name not in MODEL_BUILDERS:
        raise ParameterError(f"unknown model {name!r}; have {sorted(MODEL_BUILDERS)}")
    return MODEL_BUILDERS[name]()


def math_prod(values) -> int:
    return math.prod(values)
