"""Per-element OT costs of secure nonlinear protocols (Section 2.2).

Each framework evaluates nonlinearities with OT-based building blocks:
millionaires'/DReLU comparisons, B2A conversions, multiplexers,
truncations, and lookup tables.  What the OTE substrate must supply
is, per evaluated element, a number of COT correlations and (for the
online phase) some communication and rounds.

The per-element constants below are **calibrated**: we fix them so the
CPU-baseline OT-preprocessing time reproduces the OT share of
end-to-end latency the paper measures (Figure 1(a): 51-69% across
frameworks/models, against the Table 5 LAN baselines).  They are in
the right regime for the underlying protocols (e.g. a CrypTFlow2
ReLU at bitwidth 32+ costs tens of COTs; Cheetah's silent-OT ReLU a
handful; Bolt's GELU/Softmax need LUT + comparison cascades, hundreds
per element).  EXPERIMENTS.md records residuals per model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.ppml.layers import NONLINEAR_KINDS


@dataclass(frozen=True)
class NonlinearCost:
    """OT + online-phase cost of one evaluated element."""

    cots: float  # COT correlations consumed in preprocessing
    online_bytes: float  # online communication per element
    online_rounds: float = 0.0  # amortized extra rounds per element


@dataclass(frozen=True)
class FrameworkProfile:
    """One hybrid HE/MPC framework's cost table.

    Attributes:
        name: framework name as in the paper.
        costs: per nonlinear kind, the per-element cost.
        cots_per_mac: OT demand of the *linear* layers (OT-based
            truncation after every multiplication, Beaver-style helper
            triples); dominant for CrypTFlow2's SCI backend, small for
            the HE-centric Cheetah/Bolt.
        rounds_per_layer: online round trips per nonlinear layer.
        he_macs_per_s: effective linear-layer throughput (HE side,
            GPU-accelerated per Section 1's setup).
    """

    name: str
    costs: dict
    cots_per_mac: float
    rounds_per_layer: float
    he_macs_per_s: float

    def __post_init__(self):
        for kind in self.costs:
            if kind not in NONLINEAR_KINDS:
                raise ParameterError(f"unknown nonlinear kind {kind!r}")

    #: Kinds the calibrated profiles price through other columns: every
    #: framework table folds linear-layer truncation into
    #: ``cots_per_mac``, so an explicit Rescale layer must not be
    #: double-charged (and must not crash graphs that model it).
    _FOLDED_KINDS = {"trunc": NonlinearCost(cots=0, online_bytes=0)}

    def cost_of(self, kind: str) -> NonlinearCost:
        if kind not in self.costs:
            if kind in self._FOLDED_KINDS:
                return self._FOLDED_KINDS[kind]
            raise ParameterError(f"{self.name} has no cost entry for {kind!r}")
        return self.costs[kind]

    def cot_demand(self, nonlinear_counts: dict, macs: int = 0) -> float:
        """Total COT correlations one inference consumes."""
        nonlinear = sum(
            count * self.cost_of(kind).cots
            for kind, count in nonlinear_counts.items()
            if count
        )
        return nonlinear + macs * self.cots_per_mac

    def online_bytes(self, nonlinear_counts: dict) -> float:
        return sum(
            count * self.cost_of(kind).online_bytes
            for kind, count in nonlinear_counts.items()
            if count
        )


#: CrypTFlow2 (CCS'20): millionaires-based DReLU, OT-based faithful
#: truncation on every linear-layer output; the least COT-efficient.
CRYPTFLOW2 = FrameworkProfile(
    name="CrypTFlow2",
    costs={
        "relu": NonlinearCost(cots=18, online_bytes=550),
        "relu6": NonlinearCost(cots=10, online_bytes=500),
        "maxpool_cmp": NonlinearCost(cots=6, online_bytes=275),
        "avgpool": NonlinearCost(cots=8, online_bytes=200),
    },
    cots_per_mac=0.1,
    rounds_per_layer=7,
    he_macs_per_s=2.0e9,
)

#: Cheetah (USENIX Sec'22): silent-OT based comparisons, leaner
#: truncation; several times cheaper per ReLU than CrypTFlow2.
CHEETAH = FrameworkProfile(
    name="Cheetah",
    costs={
        "relu": NonlinearCost(cots=6, online_bytes=180),
        "relu6": NonlinearCost(cots=5, online_bytes=180),
        "maxpool_cmp": NonlinearCost(cots=2, online_bytes=90),
        "avgpool": NonlinearCost(cots=2, online_bytes=50),
    },
    cots_per_mac=0.01,
    rounds_per_layer=5,
    he_macs_per_s=6.0e9,
)

#: Bolt (S&P'24): transformer nonlinearities via LUT + comparison
#: cascades (GELU), max/exp/reciprocal chains (Softmax), rsqrt
#: (LayerNorm); tens to hundreds of COTs per element.
BOLT = FrameworkProfile(
    name="Bolt",
    costs={
        "gelu": NonlinearCost(cots=90, online_bytes=900),
        "softmax": NonlinearCost(cots=180, online_bytes=1400),
        "layernorm": NonlinearCost(cots=80, online_bytes=500),
    },
    cots_per_mac=0.03,
    rounds_per_layer=12,
    he_macs_per_s=8.0e9,
)

#: EzPC-SiRNN (S&P'21): math-library kernels for the Figure 15
#: operator microbenchmarks (same cost regime as Bolt, different
#: protocol stack).
SIRNN = FrameworkProfile(
    name="EzPC-SiRNN",
    costs={
        "relu": NonlinearCost(cots=45, online_bytes=600),
        "gelu": NonlinearCost(cots=150, online_bytes=1500),
        "softmax": NonlinearCost(cots=300, online_bytes=2500),
        "layernorm": NonlinearCost(cots=130, online_bytes=1000),
    },
    cots_per_mac=0.05,
    rounds_per_layer=10,
    he_macs_per_s=2.0e9,
)

FRAMEWORKS = {p.name: p for p in (CRYPTFLOW2, CHEETAH, BOLT, SIRNN)}
