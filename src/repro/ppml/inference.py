"""End-to-end private-inference latency estimation (Table 5, Fig 1a, 15).

An inference splits into the paper's four components:

* **HE computation** -- linear layers under homomorphic encryption
  (GPU-accelerated in the paper's setup);
* **OT extension** -- generating the COT correlations the nonlinear
  protocols consume (the part Ironman accelerates);
* **online communication** -- the interactive nonlinear evaluation;
* **other computation** -- everything else (share conversions, local
  plaintext work), backed out of the paper's measured baselines.

OTE itself also talks to the network (sub-linear bytes but one round
per GGM level), which is why WAN gains are smaller (Section 6.5,
observation 3): once compute is accelerated, those rounds dominate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.cpu import CpuModel, DEFAULT_CPU
from repro.baselines.gpu import DEFAULT_GPU, GpuModel
from repro.errors import ParameterError
from repro.lpn.params import LpnParams, TABLE4_BY_LABEL
from repro.nmp.accelerator import IronmanAccelerator
from repro.ppml.layers import Graph
from repro.ppml.network import NetworkModel
from repro.ppml.nonlinear import FrameworkProfile
from repro.utils.bitops import log_base


def ote_comm_per_execution(params: LpnParams, arity: int = 2) -> tuple:
    """Closed-form (bytes, rounds) of one OTE execution.

    Per GGM level the sender offers masked sums (2 blocks for binary,
    ``2 log2(m) + m`` blocks for m-ary via the key tree) and the
    receiver returns correction bits; levels are sequential rounds.
    """
    depth2 = max(1, math.ceil(math.log2(params.ell)))
    if arity == 2:
        per_tree = depth2 * 33 + 16
        rounds = depth2 + 2
    else:
        w = log_base(arity, 2)
        depth_m = max(1, math.ceil(depth2 / w))
        per_level = w * 33 + arity * 16
        per_tree = depth_m * per_level + 16
        rounds = depth_m * (w + 1) + 2
    return params.t * per_tree, rounds


class OteProvider:
    """Something that can generate COT correlations at a cost."""

    name = "ote"
    arity = 2

    def __init__(self, params: LpnParams):
        self.params = params

    def seconds_for(self, n_cots: float) -> float:
        raise NotImplementedError

    def comm_for(self, n_cots: float) -> tuple:
        """(bytes, rounds) to generate ``n_cots`` correlations."""
        execs = self.params.executions_for(max(1, int(n_cots)))
        per_bytes, per_rounds = ote_comm_per_execution(self.params, self.arity)
        return execs * per_bytes, execs * per_rounds


class CpuOte(OteProvider):
    """The paper's baseline: Ferret on the full-thread CPU."""

    name = "CPU"

    def __init__(self, params: LpnParams, model: CpuModel = DEFAULT_CPU):
        super().__init__(params)
        self.model = model

    def seconds_for(self, n_cots: float) -> float:
        return self.model.latency_for(
            self.params, max(1, int(n_cots)), include_init=False
        )


class GpuOte(OteProvider):
    """The A6000 implementation."""

    name = "GPU"

    def __init__(self, params: LpnParams, model: GpuModel = DEFAULT_GPU):
        super().__init__(params)
        self.model = model

    def seconds_for(self, n_cots: float) -> float:
        return self.model.latency_for(self.params, max(1, int(n_cots)))


class IronmanOte(OteProvider):
    """Ironman: 4-ary ChaCha8 trees on the NMP fabric."""

    name = "Ironman"
    arity = 4

    def __init__(self, params: LpnParams, accelerator: IronmanAccelerator):
        super().__init__(params)
        self.accelerator = accelerator

    def seconds_for(self, n_cots: float) -> float:
        return self.accelerator.latency_for(self.params, max(1, int(n_cots)))


#: Parameter set used for application-level OT provisioning.
DEFAULT_APP_PARAMS = TABLE4_BY_LABEL["2^22"]


@dataclass(frozen=True)
class InferenceBreakdown:
    """Latency decomposition of one private inference."""

    model: str
    framework: str
    provider: str
    he_seconds: float
    ot_compute_seconds: float
    ot_comm_seconds: float
    online_comm_seconds: float
    other_seconds: float
    n_cots: float

    @property
    def ot_seconds(self) -> float:
        return self.ot_compute_seconds + self.ot_comm_seconds

    @property
    def total_seconds(self) -> float:
        return (
            self.he_seconds
            + self.ot_seconds
            + self.online_comm_seconds
            + self.other_seconds
        )

    def share(self, component: str) -> float:
        """Fraction of total latency (component in he/ot/online/other)."""
        mapping = {
            "he": self.he_seconds,
            "ot": self.ot_seconds,
            "online": self.online_comm_seconds,
            "other": self.other_seconds,
        }
        if component not in mapping:
            raise ParameterError(f"unknown component {component!r}")
        total = self.total_seconds
        return mapping[component] / total if total else 0.0


def nonlinear_layer_count(model: Graph) -> int:
    """Layers whose evaluation needs online interaction."""
    interactive = {"act", "maxpool", "softmax", "layernorm", "avgpool", "gap"}
    return sum(1 for name, _ in model.layer_log if name in interactive)


def estimate_inference(
    model: Graph,
    profile: FrameworkProfile,
    provider: OteProvider,
    network: NetworkModel,
    other_seconds: float = 0.0,
) -> InferenceBreakdown:
    """Estimate one private inference end to end."""
    counts = model.nonlinear_counts()
    n_cots = profile.cot_demand(counts, model.total_macs)
    ot_compute = provider.seconds_for(n_cots) if n_cots else 0.0
    ot_bytes, ot_rounds = provider.comm_for(n_cots) if n_cots else (0.0, 0.0)
    # OTE compute overlaps its own payload transfer; rounds serialize.
    ot_comm = max(
        0.0, network.transfer_seconds(ot_bytes) - ot_compute
    ) + network.round_seconds(ot_rounds)
    online = network.interaction_seconds(
        profile.online_bytes(counts),
        nonlinear_layer_count(model) * profile.rounds_per_layer,
    )
    he = model.total_macs / profile.he_macs_per_s
    return InferenceBreakdown(
        model=model.name,
        framework=profile.name,
        provider=provider.name,
        he_seconds=he,
        ot_compute_seconds=ot_compute,
        ot_comm_seconds=ot_comm,
        online_comm_seconds=online,
        other_seconds=other_seconds,
        n_cots=n_cots,
    )
