"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ProtocolError(ReproError):
    """A two-party protocol received an unexpected or malformed message."""


class ParameterError(ReproError):
    """An invalid cryptographic or hardware parameter was supplied."""


class ChannelError(ReproError):
    """A channel was used out of order (e.g. recv on an empty queue)."""


class ChannelTimeout(ChannelError):
    """A blocking receive expired before the peer's message arrived."""


class ChannelClosed(ChannelError):
    """The peer closed the connection (or the channel was shut down)."""


class SimulationError(ReproError):
    """A hardware simulation was driven into an inconsistent state."""


class ServiceError(ReproError):
    """The correlation provisioning runtime failed or was shut down."""


class WaitTimeout(ServiceError):
    """A bounded runtime wait expired before its condition held.

    ``what`` names the condition (pool level, produced range, plan
    layer) so the failure points at the starved resource, not just at
    "a timeout happened somewhere".
    """

    def __init__(self, message: str, what: str = ""):
        super().__init__(message)
        self.what = what


class PoolTimeout(WaitTimeout):
    """A pool wait (level / produced range / take) expired.

    Carries the pool name and the awaited condition so callers -- and
    test failures -- can tell *which* correlation kind starved.
    """

    def __init__(self, message: str, pool: str = "", what: str = ""):
        super().__init__(message, what)
        self.pool = pool


class PoolClosed(ServiceError):
    """A pool was closed (service shutdown) while a caller waited on it."""

    def __init__(self, message: str, pool: str = ""):
        super().__init__(message)
        self.pool = pool


class DaemonError(ServiceError):
    """The persistent inference daemon failed or was used out of contract."""


class AdmissionReject(DaemonError):
    """The daemon's admission controller refused a request: the bounded
    in-flight window is full.

    A typed reject (instead of queueing unboundedly or hanging) lets
    closed-loop clients back off and retry; ``inflight``/``limit``
    record the window state at the decision.
    """

    def __init__(self, message: str, inflight: int = 0, limit: int = 0):
        super().__init__(message)
        self.inflight = inflight
        self.limit = limit


class LeaseExpired(DaemonError):
    """A session lease lapsed before the client claimed its result.

    The daemon completed (or abandoned) the request and released the
    session's resources; the result shares are gone and the client must
    resubmit under a fresh lease.
    """

    def __init__(self, message: str, session: str = "", token: str = ""):
        super().__init__(message)
        self.session = session
        self.token = token


class ServiceDegraded(ServiceError):
    """Production is down (link lost past the retry deadline) but the
    service still serves existing pool stock.

    Raised instead of hanging when a caller needs *future* production
    (a refill, a prefill target, an unproduced range).  ``hint``
    suggests the recovery path; ``cause`` is the transport error that
    degraded the service; ``since`` is ``time.monotonic()`` at entry.
    """

    def __init__(self, message: str, cause: Exception = None, since: float = None):
        super().__init__(message)
        self.cause = cause
        self.since = since
        self.hint = (
            "existing pool stock can still be drawn; production resumes "
            "automatically if the link recovers, or restart the service "
            "pair to rebuild it"
        )
