"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ProtocolError(ReproError):
    """A two-party protocol received an unexpected or malformed message."""


class ParameterError(ReproError):
    """An invalid cryptographic or hardware parameter was supplied."""


class ChannelError(ReproError):
    """A channel was used out of order (e.g. recv on an empty queue)."""


class ChannelTimeout(ChannelError):
    """A blocking receive expired before the peer's message arrived."""


class ChannelClosed(ChannelError):
    """The peer closed the connection (or the channel was shut down)."""


class SimulationError(ReproError):
    """A hardware simulation was driven into an inconsistent state."""


class ServiceError(ReproError):
    """The correlation provisioning runtime failed or was shut down."""
