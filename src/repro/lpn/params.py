"""PCG-style OT-extension parameter sets (Table 4 of the paper).

A parameter set fixes the primal-LPN instance used by one Ferret
iteration: output length ``n``, secret dimension ``k`` (the number of
pre-generated COTs consumed), regular-noise weight ``t`` (the number
of GGM trees), and the binary-tree leaf budget ``l`` the paper quotes.
``n - k`` is the net COT yield, chosen so each set outputs ~2^20..2^24
usable OTs per execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.utils.bitops import next_power


@dataclass(frozen=True)
class LpnParams:
    """One row of Table 4."""

    label: str  # "2^20" .. "2^24"
    n: int  # LPN output length per execution
    ell: int  # GGM leaves per tree as quoted by the paper (binary arity)
    k: int  # pre-generated COT correlations consumed per execution
    t: int  # noise weight = number of GGM trees
    paper_security_bits: float  # Table 4's bit-security column

    def __post_init__(self):
        if not (0 < self.k < self.n):
            raise ParameterError("need 0 < k < n")
        if not (0 < self.t <= self.n):
            raise ParameterError("need 0 < t <= n")

    @property
    def usable_output(self) -> int:
        """Net new COTs per execution (the paper's '#OTs for output')."""
        return self.n - self.k

    @property
    def block_size(self) -> int:
        """Regular-noise block size (ceiling)."""
        return -(-self.n // self.t)

    def tree_leaves(self, arity: int = 2) -> int:
        """Leaf count of each GGM tree for the given expansion arity."""
        return max(next_power(self.block_size, arity), arity)

    @property
    def noise_rate(self) -> float:
        return self.t / self.n

    def executions_for(self, total_ots: int) -> int:
        """Protocol executions needed to output ``total_ots`` COTs."""
        return -(-total_ots // self.usable_output)


#: Table 4, in paper order.  Labels name the per-execution output size.
TABLE4: tuple = (
    LpnParams("2^20", 1221516, 4096, 168000, 480, 139.8),
    LpnParams("2^21", 2365652, 4096, 262000, 600, 141.8),
    LpnParams("2^22", 4531924, 8192, 328000, 740, 132.3),
    LpnParams("2^23", 8866608, 8192, 452000, 1024, 130.2),
    LpnParams("2^24", 17262496, 8192, 480000, 2100, 135.4),
)

#: Table 4 indexed by label.
TABLE4_BY_LABEL = {p.label: p for p in TABLE4}

#: Number of non-zero entries per column of the LPN matrix (Section 2.3.2).
LPN_LOCALITY = 10


def scaled_params(scale: int = 64, label: str = "test") -> LpnParams:
    """A functionally-equivalent small parameter set for tests/examples.

    Shrinks the 2^20 set by ``scale`` in every dimension while keeping
    the regular-noise structure intact.  NOT cryptographically secure;
    the full Table 4 sets drive the performance models.
    """
    base = TABLE4[0]
    n = max(base.n // scale, 64)
    k = max(base.k // scale, 16)
    t = max(base.t // scale, 2)
    ell = max(next_power(-(-n // t), 2), 2)
    return LpnParams(label, n, ell, k, t, 0.0)
