"""LPN bit-security estimation for the Table 4 parameter sets.

The paper verifies its parameters "provide sufficient 128-bit security
... based on [LWYY24]".  We implement the two classical attack-cost
estimates that dominate for primal LPN with regular noise in this
parameter regime:

* **Pooled Gaussian elimination**: guess ``k`` noise-free coordinates
  and solve; success probability per trial is ``(1 - k/n)^t`` (the
  regular-noise refinement changes this only in lower-order terms), and
  each trial costs one k x k solve (~ k^omega bit operations).
* **Prange information-set decoding**: the same leading exponent with a
  different per-iteration polynomial factor.

The estimator returns the min-cost attack in bits.  It tracks Table 4
to within a few bits (the paper's numbers come from the heavier LWYY24
machinery); the tests assert >= 128 bits and closeness to the quoted
column, and EXPERIMENTS.md records the residuals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.lpn.params import LpnParams

#: Matrix-multiplication exponent used for the per-trial linear algebra.
MATMUL_OMEGA = 2.8


@dataclass(frozen=True)
class SecurityEstimate:
    """Attack costs in log2(bit operations)."""

    gauss_bits: float
    isd_bits: float

    @property
    def bits(self) -> float:
        return min(self.gauss_bits, self.isd_bits)


def gauss_attack_bits(n: int, k: int, t: int) -> float:
    """Pooled-Gauss cost: trials * per-trial linear algebra."""
    trials_log2 = -t * math.log2(1.0 - k / n)
    per_trial_log2 = MATMUL_OMEGA * math.log2(k)
    return trials_log2 + per_trial_log2


def isd_attack_bits(n: int, k: int, t: int) -> float:
    """Prange ISD cost: C(n, t)/C(n-k, t) iterations, each a Gaussian
    elimination on the permuted parity-check matrix (~ (n-k)^omega)."""
    iters_log2 = 0.0
    for i in range(t):
        iters_log2 += math.log2((n - i) / (n - k - i))
    per_iter_log2 = MATMUL_OMEGA * math.log2(n - k)
    return iters_log2 + per_iter_log2


def estimate_security(params: LpnParams) -> SecurityEstimate:
    """Estimate bit security of one Table 4 parameter set."""
    return SecurityEstimate(
        gauss_bits=gauss_attack_bits(params.n, params.k, params.t),
        isd_bits=isd_attack_bits(params.n, params.k, params.t),
    )


def meets_128_bits(params: LpnParams, margin: float = 0.0) -> bool:
    """True if the cheapest modeled attack costs at least 2^(128+margin)."""
    return estimate_security(params).bits >= 128.0 + margin
