"""LPN encoding: the local matrix-vector products of Section 2.3.2.

Given the fixed matrix ``A`` (as an index array) the three parties'
computations are all instances of two kernels:

* block kernel:  ``out[j] = XOR_{i in A_j} vec[i]  XOR  addend[j]``
  (sender: z = rA XOR w; receiver: y = sA XOR v);
* bit kernel:    ``out[j] = (sum_{i in A_j} bits[i]) mod 2 XOR u[j]``
  (receiver: x = eA XOR u).

Both are chunked numpy gathers so multi-million-output encodes stay
within a bounded working set.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.crypto import blocks
from repro.crypto.kernels import gather_xor_blocks
from repro.errors import ParameterError
from repro.lpn.matrix import LpnMatrix

#: Rows per processing chunk (bounds gather temporaries to ~10 MB).
CHUNK_ROWS = 1 << 16


def encode_blocks(matrix: LpnMatrix, vec: np.ndarray, addend: np.ndarray) -> np.ndarray:
    """Block kernel: ``A * vec XOR addend`` over GF(2^128)."""
    blocks.require_blocks(vec, "vec")
    blocks.require_blocks(addend, "addend")
    if vec.shape[0] != matrix.k:
        raise ParameterError(f"input vector must have k={matrix.k} blocks")
    if addend.shape[0] != matrix.n:
        raise ParameterError(f"addend must have n={matrix.n} blocks")
    fast = gather_xor_blocks(matrix.indices, vec, addend)
    if fast is not None:  # compiled path (numba); bit-exact vs the loop below
        return fast
    out = np.empty_like(addend)
    for start in range(0, matrix.n, CHUNK_ROWS):
        stop = min(start + CHUNK_ROWS, matrix.n)
        gathered = vec[matrix.indices[start:stop]]  # (rows, d, 2)
        acc = np.bitwise_xor.reduce(gathered, axis=1)
        out[start:stop] = np.bitwise_xor(acc, addend[start:stop])
    return out


def encode_bits(matrix: LpnMatrix, bits: np.ndarray, addend_bits: np.ndarray) -> np.ndarray:
    """Bit kernel: ``A * bits XOR addend_bits`` over GF(2)."""
    bits = np.asarray(bits, dtype=np.uint8)
    addend_bits = np.asarray(addend_bits, dtype=np.uint8)
    if bits.shape[0] != matrix.k:
        raise ParameterError(f"input bit vector must have k={matrix.k} entries")
    if addend_bits.shape[0] != matrix.n:
        raise ParameterError(f"addend must have n={matrix.n} bits")
    out = np.empty(matrix.n, dtype=np.uint8)
    for start in range(0, matrix.n, CHUNK_ROWS):
        stop = min(start + CHUNK_ROWS, matrix.n)
        gathered = bits[matrix.indices[start:stop]]  # (rows, d)
        acc = np.bitwise_xor.reduce(gathered, axis=1)
        out[start:stop] = acc ^ addend_bits[start:stop]
    return out


class EncodePremix:
    """The matrix-product half of an LPN encode, started early.

    ``A @ vec`` depends only on the LPN state carried between
    iterations -- not on the MPCOT output it is eventually XORed with
    -- so a Ferret extend can compute it on a background thread while
    the interactive MPCOT (channel rounds + GGM tree expansion) is
    still in flight, overlapping the extend's two stages.  XOR
    associativity makes ``finish(w)`` bit-identical to running
    :func:`encode_blocks` / :func:`encode_bits` after the fact, which
    is exactly what the equivalence tests assert.
    """

    def __init__(self, fn):
        self._result = None
        self._error = None

        def run():
            try:
                self._result = fn()
            except BaseException as exc:  # re-raised on finish()
                self._error = exc

        self._thread = threading.Thread(target=run, name="lpn-premix", daemon=True)
        self._thread.start()

    def finish(self, addend: np.ndarray) -> np.ndarray:
        """Join the background product and XOR in the late addend."""
        self._thread.join()
        if self._error is not None:
            raise self._error
        return np.bitwise_xor(self._result, addend)


def premix_blocks(matrix: LpnMatrix, vec: np.ndarray) -> EncodePremix:
    """Start ``A @ vec`` (block kernel, zero addend) in the background."""
    blocks.require_blocks(vec, "vec")
    if vec.shape[0] != matrix.k:
        raise ParameterError(f"input vector must have k={matrix.k} blocks")
    zeros = np.zeros((matrix.n, 2), dtype=vec.dtype)
    return EncodePremix(lambda: encode_blocks(matrix, vec, zeros))


def premix_bits(matrix: LpnMatrix, bits: np.ndarray) -> EncodePremix:
    """Start ``A @ bits`` (bit kernel, zero addend) in the background."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.shape[0] != matrix.k:
        raise ParameterError(f"input bit vector must have k={matrix.k} entries")
    zeros = np.zeros(matrix.n, dtype=np.uint8)
    return EncodePremix(lambda: encode_bits(matrix, bits, zeros))


def encode_streamed(
    matrix_cols: np.ndarray,
    matrix_rows: np.ndarray,
    vec: np.ndarray,
    addend: np.ndarray,
) -> np.ndarray:
    """Reference encoder for *sorted* access streams.

    Processes (col, row) pairs in stream order -- exactly what the NMP
    rank module does with the Colidx/Rowidx arrays of Section 5.3 --
    and must produce the same output as :func:`encode_blocks` on the
    unsorted matrix.  Used by tests to prove sorting preserves results.
    """
    blocks.require_blocks(vec, "vec")
    out = addend.copy()
    np.bitwise_xor.at(out, matrix_rows, vec[matrix_cols])
    return out
