"""Offline index sorting for the memory-side cache (Section 5.3, Fig 11).

The LPN access stream -- 10 random indices into a k-block vector per
output -- defeats any cache.  Because the matrix is fixed, Ironman
sorts it once at compile time with two cooperating transforms:

* **Column swapping**: relabel the k columns (and permute the input
  vector identically) so that the storage order follows first-use
  order.  Accesses that were scattered become closer to sequential,
  turning 64-byte DRAM lines (4 blocks) into multi-hit lines.
* **Row look-ahead**: instead of streaming strictly row by row, the
  accesses of a *window* of upcoming rows are emitted grouped by
  column, so a line brought in for one row also serves near-future
  rows.  A Rowidx side array remembers which output each access
  belongs to, which is all the XOR accumulator needs.

The output is a :class:`SortedLayout`: Colidx/Rowidx streams plus the
column permutation.  ``repro.lpn.encode.encode_streamed`` consumes it
functionally; ``repro.nmp.rank`` replays it through the cache + DRAM
timing models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.lpn.matrix import LpnMatrix

#: Default look-ahead window, in matrix rows (outputs).
DEFAULT_WINDOW_ROWS = 256


@dataclass
class SortedLayout:
    """A locality-optimized access stream for one LPN matrix.

    Attributes:
        cols: column index per access, in replay order (len n*d).
        rows: output row per access, aligned with ``cols``.
        perm: column relabeling applied (identity when disabled);
            position ``i`` of the original vector lives at ``perm[i]``.
        window_rows: look-ahead window used (1 = plain row-major).
    """

    cols: np.ndarray
    rows: np.ndarray
    perm: np.ndarray
    window_rows: int

    @property
    def n_accesses(self) -> int:
        return self.cols.shape[0]

    def permute_vector(self, vec: np.ndarray) -> np.ndarray:
        """Reorder an input vector to match the column relabeling."""
        out = np.empty_like(vec)
        out[self.perm] = vec
        return out


def column_first_use_permutation(matrix: LpnMatrix) -> np.ndarray:
    """Relabel columns by first appearance in the row-major stream.

    Returns ``perm`` with ``perm[old] = new``; never-used columns are
    appended after all used ones (their order is irrelevant).
    """
    stream = matrix.access_stream()
    first_use = np.full(matrix.k, np.iinfo(np.int64).max, dtype=np.int64)
    # Reverse traversal: the final write per column is its first use.
    positions = np.arange(stream.shape[0] - 1, -1, -1, dtype=np.int64)
    first_use[stream[::-1]] = positions
    order = np.argsort(first_use, kind="stable")  # old indices by first use
    perm = np.empty(matrix.k, dtype=np.int32)
    perm[order] = np.arange(matrix.k, dtype=np.int32)
    return perm


def sort_indices(
    matrix: LpnMatrix,
    window_rows: int = DEFAULT_WINDOW_ROWS,
    column_swap: bool = True,
) -> SortedLayout:
    """Build the sorted Colidx/Rowidx streams (Fig 11(c)).

    Args:
        matrix: the public LPN matrix.
        window_rows: rows per look-ahead window; within each window the
            accesses are ordered by (relabeled) column, clustering
            repeated and adjacent columns.
        column_swap: apply the first-use column relabeling first.
    """
    if window_rows < 1:
        raise ParameterError("window_rows must be >= 1")
    if column_swap:
        perm = column_first_use_permutation(matrix)
        work = matrix.permuted_columns(perm)
    else:
        perm = np.arange(matrix.k, dtype=np.int32)
        work = matrix
    n, d = work.n, work.d
    cols = work.indices.reshape(-1).astype(np.int32, copy=True)
    rows = np.repeat(np.arange(n, dtype=np.int32), d)
    window = window_rows * d
    for start in range(0, cols.shape[0], window):
        stop = min(start + window, cols.shape[0])
        order = np.argsort(cols[start:stop], kind="stable")
        cols[start:stop] = cols[start:stop][order]
        rows[start:stop] = rows[start:stop][order]
    return SortedLayout(cols=cols, rows=rows, perm=perm, window_rows=window_rows)


def baseline_layout(matrix: LpnMatrix) -> SortedLayout:
    """The unsorted row-major stream (Fig 11(a)), for ablations."""
    n, d = matrix.n, matrix.d
    return SortedLayout(
        cols=matrix.access_stream().astype(np.int32, copy=True),
        rows=np.repeat(np.arange(n, dtype=np.int32), d),
        perm=np.arange(matrix.k, dtype=np.int32),
        window_rows=1,
    )
