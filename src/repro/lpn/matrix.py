"""The 10-local LPN code matrix A (Section 2.3.2).

``A`` is a k x n bit matrix where every column holds exactly
``LPN_LOCALITY`` (10) non-zero entries; computing one output block is
the XOR of 10 randomly indexed blocks of the length-k input vector.
Because elements live in {0, 1}, the whole matrix is represented as a
single ``(n, d)`` int32 index array ("Colidx" in the paper's CSR
discussion) -- the object the NMP rank modules stream from DRAM.

The matrix is expanded deterministically from a public seed (both
parties regenerate it locally; it is fixed across all iterations,
which is what makes offline index sorting pay off).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.lpn.params import LPN_LOCALITY

#: Bytes per index entry when stored in DRAM (int32, as in the paper's
#: >900 MB footprint discussion).
INDEX_BYTES = 4


class LpnMatrix:
    """Index representation of the d-local LPN matrix."""

    def __init__(self, indices: np.ndarray, k: int):
        indices = np.asarray(indices, dtype=np.int32)
        if indices.ndim != 2:
            raise ParameterError("indices must be a (n, d) array")
        if indices.size and (indices.min() < 0 or indices.max() >= k):
            raise ParameterError("matrix indices out of range [0, k)")
        self.indices = indices
        self.k = k

    @property
    def n(self) -> int:
        return self.indices.shape[0]

    @property
    def d(self) -> int:
        return self.indices.shape[1]

    @property
    def storage_bytes(self) -> int:
        """DRAM footprint of the Colidx array."""
        return self.indices.size * INDEX_BYTES

    def permuted_columns(self, perm: np.ndarray) -> "LpnMatrix":
        """Apply a column relabeling: index i becomes perm[i].

        Callers must permute the input vector with the same ``perm``
        (the paper's "vector permutation" note in Section 5.3).
        """
        perm = np.asarray(perm, dtype=np.int32)
        if perm.shape[0] != self.k:
            raise ParameterError("permutation length must equal k")
        return LpnMatrix(perm[self.indices], self.k)

    def access_stream(self) -> np.ndarray:
        """Row-major flattened access sequence (the baseline trace)."""
        return self.indices.reshape(-1)


def generate_matrix(n: int, k: int, seed: int, d: int = LPN_LOCALITY) -> LpnMatrix:
    """Deterministically expand the public LPN matrix from ``seed``.

    Indices are sampled uniformly with replacement per column, matching
    Ferret's uniform d-local code (duplicate indices inside one column
    cancel in GF(2); all three parties' encodes use the identical
    matrix, so correctness is unaffected).
    """
    if k <= 0 or n <= 0:
        raise ParameterError("n and k must be positive")
    rng = np.random.default_rng(np.random.SeedSequence([seed, n, k, d]))
    indices = rng.integers(0, k, size=(n, d), dtype=np.int32)
    return LpnMatrix(indices, k)
