"""AES-128 implemented from scratch (FIPS-197), vectorized with numpy.

The PCG-style OT extension baseline instantiates its PRG with AES
because of AES-NI on CPUs (Section 2.3.1 of the paper):

    G(s) = AES_k0(s) XOR s  ||  AES_k1(s) XOR s

This module provides a batch encryption kernel so that whole GGM-tree
levels can be expanded with a handful of numpy gathers instead of a
Python loop per block.  The implementation is the classic T-table
formulation; tables are derived programmatically from the GF(2^8)
arithmetic rather than hard-coded, which keeps the module
self-verifying (the known-answer tests pin it to FIPS-197 vectors).

Only encryption is implemented: every use in this package (PRG, CRHF)
is encrypt-only, as in the Ferret/EMP codebase.
"""

from __future__ import annotations

import numpy as np

from repro.crypto import blocks
from repro.errors import ParameterError


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """Full GF(2^8) multiplication (schoolbook, used only at import time)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> np.ndarray:
    """Construct the AES S-box from inversion + affine map (FIPS-197 5.1.1)."""
    # Multiplicative inverses via exhaustive search (256 elements, import-time).
    inv = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if _gf_mul(x, y) == 1:
                inv[x] = y
                break
    sbox = np.zeros(256, dtype=np.uint8)
    for x in range(256):
        b = inv[x]
        res = 0x63
        for i in range(8):
            bit = (
                (b >> i)
                ^ (b >> ((i + 4) % 8))
                ^ (b >> ((i + 5) % 8))
                ^ (b >> ((i + 6) % 8))
                ^ (b >> ((i + 7) % 8))
            ) & 1
            res ^= bit << i
        sbox[x] = res
    return sbox


_SBOX = _build_sbox()

_RCON = np.array([0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36], dtype=np.uint8)


def _build_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Build the four encryption T-tables in little-endian packing.

    With state columns packed little-endian (byte r of a column lives at
    bits [8r, 8r+8)), the contribution of input byte ``x`` feeding
    MixColumns row slot ``i`` is ``T_i[x]``.
    """
    s = _SBOX.astype(np.uint32)
    s2 = np.array([_gf_mul(int(v), 2) for v in _SBOX], dtype=np.uint32)
    s3 = np.array([_gf_mul(int(v), 3) for v in _SBOX], dtype=np.uint32)
    t0 = s2 | (s << 8) | (s << 16) | (s3 << 24)
    t1 = s3 | (s2 << 8) | (s << 16) | (s << 24)
    t2 = s | (s3 << 8) | (s2 << 16) | (s << 24)
    t3 = s | (s << 8) | (s3 << 16) | (s2 << 24)
    return t0, t1, t2, t3


_T0, _T1, _T2, _T3 = _build_tables()
_SBOX_U32 = _SBOX.astype(np.uint32)

#: Number of AES-128 rounds.
ROUNDS = 10


def expand_key(key: bytes) -> np.ndarray:
    """AES-128 key schedule.

    Returns an array of shape (11, 4) uint32: one little-endian-packed
    round key per round, matching the state packing used by
    :func:`encrypt_blocks`.
    """
    if len(key) != 16:
        raise ParameterError(f"AES-128 key must be 16 bytes, got {len(key)}")
    words = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]  # RotWord
            temp = [int(_SBOX[b]) for b in temp]  # SubWord
            temp[0] ^= int(_RCON[i // 4 - 1])
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    packed = np.zeros((11, 4), dtype=np.uint32)
    for rnd in range(11):
        for col in range(4):
            b = words[4 * rnd + col]
            packed[rnd, col] = b[0] | (b[1] << 8) | (b[2] << 16) | (b[3] << 24)
    return packed


class AES128:
    """A fixed-key AES-128 instance with a batch encryption kernel."""

    def __init__(self, key: bytes):
        self.key = bytes(key)
        self._rk = expand_key(self.key)

    def encrypt_blocks(self, data: np.ndarray) -> np.ndarray:
        """Encrypt a block array (shape (n, 2) uint64) under this key."""
        w = blocks.to_uint32(data)
        n = w.shape[0]
        rk = self._rk
        s0 = w[:, 0] ^ rk[0, 0]
        s1 = w[:, 1] ^ rk[0, 1]
        s2 = w[:, 2] ^ rk[0, 2]
        s3 = w[:, 3] ^ rk[0, 3]
        mask = np.uint32(0xFF)
        for rnd in range(1, ROUNDS):
            t0 = (
                _T0[s0 & mask]
                ^ _T1[(s1 >> np.uint32(8)) & mask]
                ^ _T2[(s2 >> np.uint32(16)) & mask]
                ^ _T3[s3 >> np.uint32(24)]
                ^ rk[rnd, 0]
            )
            t1 = (
                _T0[s1 & mask]
                ^ _T1[(s2 >> np.uint32(8)) & mask]
                ^ _T2[(s3 >> np.uint32(16)) & mask]
                ^ _T3[s0 >> np.uint32(24)]
                ^ rk[rnd, 1]
            )
            t2 = (
                _T0[s2 & mask]
                ^ _T1[(s3 >> np.uint32(8)) & mask]
                ^ _T2[(s0 >> np.uint32(16)) & mask]
                ^ _T3[s1 >> np.uint32(24)]
                ^ rk[rnd, 2]
            )
            t3 = (
                _T0[s3 & mask]
                ^ _T1[(s0 >> np.uint32(8)) & mask]
                ^ _T2[(s1 >> np.uint32(16)) & mask]
                ^ _T3[s2 >> np.uint32(24)]
                ^ rk[rnd, 3]
            )
            s0, s1, s2, s3 = t0, t1, t2, t3
        # Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
        sb = _SBOX_U32
        o0 = (
            sb[s0 & mask]
            | (sb[(s1 >> np.uint32(8)) & mask] << np.uint32(8))
            | (sb[(s2 >> np.uint32(16)) & mask] << np.uint32(16))
            | (sb[s3 >> np.uint32(24)] << np.uint32(24))
        ) ^ rk[10, 0]
        o1 = (
            sb[s1 & mask]
            | (sb[(s2 >> np.uint32(8)) & mask] << np.uint32(8))
            | (sb[(s3 >> np.uint32(16)) & mask] << np.uint32(16))
            | (sb[s0 >> np.uint32(24)] << np.uint32(24))
        ) ^ rk[10, 1]
        o2 = (
            sb[s2 & mask]
            | (sb[(s3 >> np.uint32(8)) & mask] << np.uint32(8))
            | (sb[(s0 >> np.uint32(16)) & mask] << np.uint32(16))
            | (sb[s1 >> np.uint32(24)] << np.uint32(24))
        ) ^ rk[10, 2]
        o3 = (
            sb[s3 & mask]
            | (sb[(s0 >> np.uint32(8)) & mask] << np.uint32(8))
            | (sb[(s1 >> np.uint32(16)) & mask] << np.uint32(16))
            | (sb[s2 >> np.uint32(24)] << np.uint32(24))
        ) ^ rk[10, 3]
        out = np.empty((n, 4), dtype=np.uint32)
        out[:, 0] = o0
        out[:, 1] = o1
        out[:, 2] = o2
        out[:, 3] = o3
        return blocks.from_uint32(out)

    def encrypt_bytes(self, plaintext: bytes) -> bytes:
        """Encrypt a byte string whose length is a multiple of 16 (ECB)."""
        data = blocks.from_bytes(plaintext)
        return blocks.to_bytes(self.encrypt_blocks(data))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AES128(key={self.key.hex()})"
