"""Tree PRGs: the length-expanding generators that drive GGM trees.

The paper contrasts two constructions (Section 4.1, Figure 6):

* **AES-based**: child ``j`` of node ``s`` is ``AES_kj(s) XOR s`` -- one
  AES call per child, so an m-ary expansion costs m calls.
* **ChaCha8-based**: one ChaCha call outputs 512 bits = four children,
  so a 4-ary expansion costs a single call and an m-ary expansion costs
  ``ceil(m / 4)`` calls.

Both are exposed behind :class:`TreePrg`, which also counts core
invocations -- the quantity plotted in Figure 7(a) and fed to the
hardware pipeline model.
"""

from __future__ import annotations

import hashlib
import threading

import numpy as np

from repro.crypto import blocks
from repro.crypto.aes import AES128
from repro.crypto.chacha import CONSTANTS as CHACHA_CONSTANTS
from repro.crypto.kernels import chacha_core
from repro.errors import ParameterError

#: Blocks produced per ChaCha core invocation (512-bit output).
CHACHA_BLOCKS_PER_CALL = 4


class TreePrg:
    """Interface for an m-ary length-expanding PRG.

    Subclasses implement :meth:`expand`, mapping ``n`` parent nodes to
    ``n * arity`` children, and report their per-expansion core-call
    cost through :attr:`calls_per_expand`.
    """

    #: number of children produced per parent node.
    arity: int
    #: core invocations (AES encryptions / ChaCha permutations) per parent.
    calls_per_expand: int
    #: short human-readable name ("aes", "chacha8").
    name: str

    def __init__(self):
        self.total_calls = 0

    def expand(self, nodes: np.ndarray, level: int) -> np.ndarray:
        """Expand parents into children.

        Args:
            nodes: (n, 2) block array of parent values.
            level: tree level of the parents (used as a public tweak).

        Returns:
            (n * arity, 2) block array; children of parent ``i`` occupy
            rows ``[i * arity, (i + 1) * arity)``.
        """
        raise NotImplementedError

    def reset_counter(self) -> None:
        """Zero the core-invocation counter."""
        self.total_calls = 0


def _derive_aes_keys(master: bytes, count: int) -> list:
    """Derive ``count`` independent AES keys from a master seed string."""
    keys = []
    for i in range(count):
        digest = hashlib.sha256(master + b"|aes-tree-key|" + i.to_bytes(4, "little"))
        keys.append(digest.digest()[:16])
    return keys


class AesTreePrg(TreePrg):
    """m-ary tree PRG from m fixed-key AES instances (the CPU baseline).

    ``child_j(s) = AES_{k_j}(s) XOR s`` -- the XOR feed-forward makes
    each branch a one-way (Davies-Meyer style) function of the parent.
    """

    name = "aes"

    def __init__(self, arity: int = 2, master_key: bytes = b"ironman-aes-prg"):
        super().__init__()
        if arity < 2:
            raise ParameterError("tree arity must be >= 2")
        self.arity = arity
        self.calls_per_expand = arity
        self._ciphers = [AES128(k) for k in _derive_aes_keys(master_key, arity)]

    def expand(self, nodes: np.ndarray, level: int) -> np.ndarray:
        blocks.require_blocks(nodes, "nodes")
        n = nodes.shape[0]
        out = np.empty((n * self.arity, 2), dtype=blocks.BLOCK_DTYPE)
        for j, cipher in enumerate(self._ciphers):
            out[j :: self.arity] = blocks.xor(cipher.encrypt_blocks(nodes), nodes)
        self.total_calls += n * self.arity
        return out


class ChaChaTreePrg(TreePrg):
    """m-ary tree PRG from ChaCha (default ChaCha8, as Ironman deploys).

    One core call yields four children; wider arities issue
    ``ceil(arity / 4)`` calls with distinct lane indices.  The parent
    block is replicated into the 256-bit ChaCha key and the (public)
    level / lane indices go into the nonce, so expansion is a pure
    function of (parent value, level) shared by sender and receiver.
    """

    def __init__(self, arity: int = 4, rounds: int = 8, salt: bytes = b"ironman-chacha"):
        super().__init__()
        if arity < 2:
            raise ParameterError("tree arity must be >= 2")
        self.arity = arity
        self.rounds = rounds
        self.name = f"chacha{rounds}"
        self.calls_per_expand = -(-arity // CHACHA_BLOCKS_PER_CALL)  # ceil division
        digest = hashlib.sha256(salt).digest()
        self._salt_words = np.frombuffer(digest[:16], dtype="<u4")
        # State schedule, derived once (the AesTreePrg analogue of its
        # cached key schedule): everything in the (n*calls, 16) ChaCha
        # state that does not depend on the parent values or the level --
        # constants, zero counter, lane indices, salt word -- keyed by
        # batch size, since batched GGM levels reuse the same few sizes
        # on every extend.  expand() then only writes key words + level.
        # The template is mutated in place per expand, so the cache must
        # be per-thread: shared instances (e.g. the module-level key-tree
        # PRG in spcot.protocol) are hit concurrently from both parties'
        # worker threads in in-process two-party runs, and a shared
        # template lets one thread rewrite key words while the other is
        # mid-permutation -- silently corrupting a few children.
        self._state_local = threading.local()

    @property
    def _state_cache(self) -> dict:
        cache = getattr(self._state_local, "cache", None)
        if cache is None:
            cache = self._state_local.cache = {}
        return cache

    def _state_template(self, n: int) -> np.ndarray:
        calls = self.calls_per_expand
        state = self._state_cache.get(n)
        if state is None:
            state = np.empty((n * calls, 16), dtype=np.uint32)
            state[:, 0:4] = CHACHA_CONSTANTS
            state[:, 12] = 0  # counter
            state[:, 14] = np.tile(np.arange(calls, dtype=np.uint32), n)  # lane
            state[:, 15] = self._salt_words[0]
            self._state_cache[n] = state
        return state

    def expand(self, nodes: np.ndarray, level: int) -> np.ndarray:
        blocks.require_blocks(nodes, "nodes")
        n = nodes.shape[0]
        calls = self.calls_per_expand
        # Key = seed words || seed words XOR salt (a cheap domain separation
        # that fills the 256-bit key from a 128-bit node value).
        seed_words = blocks.to_uint32(nodes)
        state = self._state_template(n)
        repeated = np.repeat(seed_words, calls, axis=0)
        state[:, 4:8] = repeated
        state[:, 8:12] = repeated ^ self._salt_words
        state[:, 13] = np.uint32(level)
        stream = chacha_core(state, self.rounds)  # (n*calls, 16) uint32
        # Each call row holds 4 candidate children; keep the first `arity`
        # children per parent in order.
        children = stream.reshape(n, calls * CHACHA_BLOCKS_PER_CALL, 4)
        wanted = children[:, : self.arity, :].reshape(-1, 4)
        self.total_calls += n * calls
        return blocks.from_uint32(np.ascontiguousarray(wanted))


def make_tree_prg(kind: str, arity: int) -> TreePrg:
    """Factory used by configs: ``kind`` in {"aes", "chacha8", "chacha20"}."""
    kind = kind.lower()
    if kind == "aes":
        return AesTreePrg(arity=arity)
    if kind.startswith("chacha"):
        rounds = int(kind[len("chacha") :] or 8)
        return ChaChaTreePrg(arity=arity, rounds=rounds)
    raise ParameterError(f"unknown PRG kind {kind!r}")


def expansion_calls(n_leaves: int, arity: int, prg_kind: str) -> int:
    """Closed-form PRG core-call count to expand a tree with ``n_leaves``.

    Matches the paper's accounting (Section 4.1): internal nodes number
    ``(leaves - 1) / (m - 1)``; AES issues ``m`` calls per node, ChaCha
    ``ceil(m / 4)``.
    """
    if n_leaves < 1:
        raise ParameterError("n_leaves must be positive")
    internal = (n_leaves - 1) // (arity - 1)
    if prg_kind == "aes":
        per_node = arity
    elif prg_kind.startswith("chacha"):
        per_node = -(-arity // CHACHA_BLOCKS_PER_CALL)
    else:
        raise ParameterError(f"unknown PRG kind {prg_kind!r}")
    return internal * per_node
