"""Optional compiled fast paths for the two hottest producer kernels.

Shard workers spend nearly all their CPU in two places: the ChaCha
permutation behind ``TreePrg.expand`` (GGM tree levels) and the LPN
gather-XOR behind ``encode_blocks`` (this codebase's analogue of the
classic IKNP bit-transpose hot spot -- Ferret-style LPN never
transposes, it gathers).  When ``numba`` is importable, both kernels
run as parallel JIT loops; when it is not -- the common case, numba is
an *optional* dependency and is never installed by this repo -- every
call falls through to the vectorized numpy implementations, which
remain the bit-exact oracles the equivalence tests compare against.

The dispatch is value-transparent: outputs are required (and tested,
when numba is present) to be bit-identical between the two paths, so
callers never need to know which one ran.  ``REPRO_NUMBA=0`` force-
disables the compiled path even when numba is installed.
"""

from __future__ import annotations

import os

import numpy as np

from repro.crypto.chacha import chacha_core as _chacha_core_numpy

try:  # pragma: no cover - exercised only where numba is installed
    if os.environ.get("REPRO_NUMBA", "1") == "0":
        raise ImportError("numba disabled via REPRO_NUMBA=0")
    import numba

    HAVE_NUMBA = True
except ImportError:  # numpy oracle only
    numba = None
    HAVE_NUMBA = False

#: Below this many rows the JIT call overhead beats the speedup; the
#: numpy path serves small batches even when numba is available.
NUMBA_MIN_ROWS = 1 << 10


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(inline="always")
    def _qr(x, a, b, c, d):
        x[a] = x[a] + x[b]
        v = x[d] ^ x[a]
        x[d] = (v << np.uint32(16)) | (v >> np.uint32(16))
        x[c] = x[c] + x[d]
        v = x[b] ^ x[c]
        x[b] = (v << np.uint32(12)) | (v >> np.uint32(20))
        x[a] = x[a] + x[b]
        v = x[d] ^ x[a]
        x[d] = (v << np.uint32(8)) | (v >> np.uint32(24))
        x[c] = x[c] + x[d]
        v = x[b] ^ x[c]
        x[b] = (v << np.uint32(7)) | (v >> np.uint32(25))

    @numba.njit(cache=True, parallel=True)
    def _chacha_rows(initial, double_rounds, out):
        for r in numba.prange(initial.shape[0]):
            x = np.empty(16, dtype=np.uint32)
            for i in range(16):
                x[i] = initial[r, i]
            for _ in range(double_rounds):
                _qr(x, 0, 4, 8, 12)
                _qr(x, 1, 5, 9, 13)
                _qr(x, 2, 6, 10, 14)
                _qr(x, 3, 7, 11, 15)
                _qr(x, 0, 5, 10, 15)
                _qr(x, 1, 6, 11, 12)
                _qr(x, 2, 7, 8, 13)
                _qr(x, 3, 4, 9, 14)
            for i in range(16):
                out[r, i] = x[i] + initial[r, i]

    @numba.njit(cache=True, parallel=True)
    def _gather_xor_blocks(indices, vec, addend, out):
        rows, d = indices.shape
        for j in numba.prange(rows):
            lo = addend[j, 0]
            hi = addend[j, 1]
            for t in range(d):
                i = indices[j, t]
                lo ^= vec[i, 0]
                hi ^= vec[i, 1]
            out[j, 0] = lo
            out[j, 1] = hi


def chacha_core(initial: np.ndarray, rounds: int) -> np.ndarray:
    """ChaCha permutation + feed-forward; compiled when numba is present.

    Same contract as :func:`repro.crypto.chacha.chacha_core` (the
    oracle); bit-identical output either way.
    """
    if HAVE_NUMBA and initial.shape[0] >= NUMBA_MIN_ROWS:
        if rounds % 2 != 0 or rounds <= 0:
            return _chacha_core_numpy(initial, rounds)  # let the oracle raise
        out = np.empty_like(initial)
        _chacha_rows(np.ascontiguousarray(initial), rounds // 2, out)
        return out
    return _chacha_core_numpy(initial, rounds)


def gather_xor_blocks(
    indices: np.ndarray, vec: np.ndarray, addend: np.ndarray
) -> np.ndarray:
    """LPN block kernel body: ``out[j] = XOR_i vec[indices[j,i]] ^ addend[j]``.

    Compiled row-parallel loop under numba; ``None`` when numba is
    absent or the batch is too small, telling the caller to run its
    numpy chunk loop (the oracle) instead.
    """
    if not HAVE_NUMBA or indices.shape[0] < NUMBA_MIN_ROWS:
        return None
    out = np.empty_like(addend)
    _gather_xor_blocks(
        np.ascontiguousarray(indices),
        np.ascontiguousarray(vec),
        np.ascontiguousarray(addend),
        out,
    )
    return out
