"""ChaCha stream-cipher core (ChaCha8 / ChaCha12 / ChaCha20), batch numpy.

Ironman replaces the AES-based PRG with a ChaCha8-based one because a
single ChaCha call outputs 512 bits (four 128-bit blocks), which pairs
naturally with 4-ary GGM-tree expansion (Section 4.1, Table 2).  The
core's built-in feed-forward (initial state added to the permuted
state) provides the one-wayness a GGM PRG needs.

The batch kernel runs ``n`` independent ChaCha states in parallel as
(n,) uint32 numpy vectors -- one quarter-round is ~12 vector ops, so a
whole GGM level expands without Python-level per-block loops.

``chacha20_block`` is pinned to the RFC 8439 test vector by the test
suite; ChaCha8 reuses the identical machinery with 8 rounds.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

#: "expand 32-byte k" as four little-endian uint32 constants.
CONSTANTS = np.array([0x61707865, 0x3320646E, 0x79622D32, 0x6B206574], dtype=np.uint32)

_U32 = np.uint32


def _rotl(x: np.ndarray, k: int) -> np.ndarray:
    """Rotate-left each uint32 lane by ``k`` bits."""
    return (x << _U32(k)) | (x >> _U32(32 - k))


def _quarter_round(state: list, a: int, b: int, c: int, d: int) -> None:
    """In-place ChaCha quarter round on state word indices a, b, c, d."""
    state[a] = state[a] + state[b]
    state[d] = _rotl(state[d] ^ state[a], 16)
    state[c] = state[c] + state[d]
    state[b] = _rotl(state[b] ^ state[c], 12)
    state[a] = state[a] + state[b]
    state[d] = _rotl(state[d] ^ state[a], 8)
    state[c] = state[c] + state[d]
    state[b] = _rotl(state[b] ^ state[c], 7)


def _double_round(state: list) -> None:
    """One ChaCha double round: 4 column rounds then 4 diagonal rounds."""
    _quarter_round(state, 0, 4, 8, 12)
    _quarter_round(state, 1, 5, 9, 13)
    _quarter_round(state, 2, 6, 10, 14)
    _quarter_round(state, 3, 7, 11, 15)
    _quarter_round(state, 0, 5, 10, 15)
    _quarter_round(state, 1, 6, 11, 12)
    _quarter_round(state, 2, 7, 8, 13)
    _quarter_round(state, 3, 4, 9, 14)


def chacha_core(initial: np.ndarray, rounds: int) -> np.ndarray:
    """Run the ChaCha permutation + feed-forward on batched states.

    Args:
        initial: uint32 array of shape (n, 16) -- one ChaCha state per row.
        rounds: total round count (8, 12 or 20); must be even.

    Returns:
        uint32 array (n, 16): permuted states plus the initial states.
    """
    if rounds % 2 != 0 or rounds <= 0:
        raise ParameterError(f"ChaCha round count must be a positive even number, got {rounds}")
    if initial.ndim != 2 or initial.shape[1] != 16:
        raise ParameterError("ChaCha state batch must have shape (n, 16)")
    work = [initial[:, i].copy() for i in range(16)]
    for _ in range(rounds // 2):
        _double_round(work)
    out = np.empty_like(initial)
    for i in range(16):
        out[:, i] = work[i] + initial[:, i]
    return out


def make_states(
    key_words: np.ndarray, counter: np.ndarray, nonce_words: np.ndarray
) -> np.ndarray:
    """Assemble batched ChaCha states: constants | key(8) | counter | nonce(3)."""
    key_words = np.asarray(key_words, dtype=np.uint32)
    nonce_words = np.asarray(nonce_words, dtype=np.uint32)
    if key_words.ndim != 2 or key_words.shape[1] != 8:
        raise ParameterError("key_words must have shape (n, 8)")
    if nonce_words.ndim != 2 or nonce_words.shape[1] != 3:
        raise ParameterError("nonce_words must have shape (n, 3)")
    n = key_words.shape[0]
    state = np.empty((n, 16), dtype=np.uint32)
    state[:, 0:4] = CONSTANTS
    state[:, 4:12] = key_words
    state[:, 12] = np.asarray(counter, dtype=np.uint32)
    state[:, 13:16] = nonce_words
    return state


def chacha_block(key: bytes, counter: int, nonce: bytes, rounds: int = 20) -> bytes:
    """Single-block convenience API (RFC 8439 layout): returns 64 bytes."""
    if len(key) != 32:
        raise ParameterError("ChaCha key must be 32 bytes")
    if len(nonce) != 12:
        raise ParameterError("ChaCha nonce must be 12 bytes")
    kw = np.frombuffer(key, dtype="<u4").reshape(1, 8)
    nw = np.frombuffer(nonce, dtype="<u4").reshape(1, 3)
    state = make_states(kw, np.array([counter], dtype=np.uint32), nw)
    out = chacha_core(state, rounds)
    return out.astype("<u4").tobytes()


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """RFC 8439 ChaCha20 block function (20 rounds)."""
    return chacha_block(key, counter, nonce, rounds=20)


def chacha8_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """ChaCha8 block function (8 rounds), the PRG core Ironman deploys."""
    return chacha_block(key, counter, nonce, rounds=8)


def keystream(key: bytes, nonce: bytes, length: int, rounds: int = 20) -> bytes:
    """Generate ``length`` keystream bytes (counter starting at 0)."""
    n_blocks = (length + 63) // 64
    kw = np.repeat(np.frombuffer(key, dtype="<u4").reshape(1, 8), n_blocks, axis=0)
    nw = np.repeat(np.frombuffer(nonce, dtype="<u4").reshape(1, 3), n_blocks, axis=0)
    counters = np.arange(n_blocks, dtype=np.uint32)
    out = chacha_core(make_states(kw, counters, nw), rounds)
    return out.astype("<u4").tobytes()[:length]
