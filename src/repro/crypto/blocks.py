"""128-bit block algebra on top of numpy.

Every cryptographic value in PCG-style OT extension is a 128-bit
"block" (the security parameter lambda = 128).  We represent an array
of n blocks as a numpy array of shape ``(n, 2)`` and dtype ``uint64``
(little-endian: column 0 holds the low 64 bits).  This keeps XOR --
the single most common operation in the whole protocol stack -- a
vectorized one-liner while still allowing byte-level views for the
AES / ChaCha kernels.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

#: dtype used for block arrays.
BLOCK_DTYPE = np.uint64

#: number of bytes in one block.
BLOCK_BYTES = 16


def zeros(n: int) -> np.ndarray:
    """Return ``n`` all-zero blocks."""
    return np.zeros((n, 2), dtype=BLOCK_DTYPE)


def is_block_array(x) -> bool:
    """Return True if ``x`` looks like a block array of shape (n, 2)."""
    return (
        isinstance(x, np.ndarray)
        and x.dtype == BLOCK_DTYPE
        and x.ndim == 2
        and x.shape[1] == 2
    )


def require_blocks(x, name: str = "value") -> np.ndarray:
    """Validate that ``x`` is a block array and return it."""
    if not is_block_array(x):
        raise ParameterError(f"{name} must be a (n, 2) uint64 block array, got {x!r}")
    return x


def random_blocks(n: int, rng: np.random.Generator) -> np.ndarray:
    """Sample ``n`` uniformly random blocks from ``rng``."""
    raw = rng.integers(0, 2**64, size=(n, 2), dtype=np.uint64)
    return raw


def single(lo: int, hi: int = 0) -> np.ndarray:
    """Build a one-block array from two 64-bit integers."""
    return np.array([[lo, hi]], dtype=BLOCK_DTYPE)


def xor(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise XOR of two block arrays (broadcasting allowed)."""
    return np.bitwise_xor(a, b)


def xor_reduce(a: np.ndarray) -> np.ndarray:
    """XOR all blocks of ``a`` together, returning a single (1, 2) block."""
    if a.shape[0] == 0:
        return zeros(1)
    return np.bitwise_xor.reduce(a, axis=0, keepdims=True)


def equal(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-block equality as a boolean vector."""
    return np.all(a == b, axis=-1)


def to_bytes(a: np.ndarray) -> bytes:
    """Serialize a block array to little-endian bytes (16 bytes/block)."""
    return np.ascontiguousarray(a, dtype=BLOCK_DTYPE).tobytes()


def from_bytes(data: bytes) -> np.ndarray:
    """Deserialize blocks previously produced by :func:`to_bytes`."""
    if len(data) % BLOCK_BYTES != 0:
        raise ParameterError(
            f"block byte string length {len(data)} is not a multiple of {BLOCK_BYTES}"
        )
    flat = np.frombuffer(data, dtype=BLOCK_DTYPE)
    return flat.reshape(-1, 2).copy()


def to_uint8(a: np.ndarray) -> np.ndarray:
    """View a block array as bytes of shape (n, 16) (little-endian)."""
    return np.ascontiguousarray(a).view(np.uint8).reshape(-1, BLOCK_BYTES)


def from_uint8(b: np.ndarray) -> np.ndarray:
    """Inverse of :func:`to_uint8`."""
    if b.ndim != 2 or b.shape[1] != BLOCK_BYTES:
        raise ParameterError("expected a (n, 16) uint8 array")
    return np.ascontiguousarray(b, dtype=np.uint8).view(BLOCK_DTYPE).reshape(-1, 2)


def to_uint32(a: np.ndarray) -> np.ndarray:
    """View a block array as (n, 4) little-endian uint32 words."""
    return np.ascontiguousarray(a).view(np.uint32).reshape(-1, 4)


def from_uint32(w: np.ndarray) -> np.ndarray:
    """Inverse of :func:`to_uint32`."""
    if w.ndim != 2 or w.shape[1] != 4:
        raise ParameterError("expected a (n, 4) uint32 array")
    return np.ascontiguousarray(w, dtype=np.uint32).view(BLOCK_DTYPE).reshape(-1, 2)


def to_int(a: np.ndarray) -> int:
    """Convert a single block (shape (1, 2) or (2,)) to a Python int."""
    flat = np.asarray(a, dtype=BLOCK_DTYPE).reshape(-1)
    if flat.shape[0] != 2:
        raise ParameterError("to_int expects exactly one block")
    return int(flat[0]) | (int(flat[1]) << 64)


def from_int(value: int) -> np.ndarray:
    """Convert a Python int (< 2**128) to a single block."""
    if not 0 <= value < 2**128:
        raise ParameterError("block integers must be in [0, 2^128)")
    return single(value & 0xFFFFFFFFFFFFFFFF, value >> 64)


def get_lsb(a: np.ndarray) -> np.ndarray:
    """Return the least-significant bit of each block as uint8."""
    return (a[:, 0] & np.uint64(1)).astype(np.uint8)


def set_lsb(a: np.ndarray, bit: int = 1) -> np.ndarray:
    """Return a copy of ``a`` with every block's LSB forced to ``bit``."""
    out = a.copy()
    out[:, 0] &= np.uint64(0xFFFFFFFFFFFFFFFE)
    out[:, 0] |= np.uint64(bit & 1)
    return out


def mul_bit(blocks: np.ndarray, bits: np.ndarray) -> np.ndarray:
    """Multiply each block by a GF(2) scalar: out[i] = bits[i] * blocks[i].

    Used for the COT correlation check ``w = v XOR u * Delta``.
    ``blocks`` may also be a single block broadcast against ``bits``.
    """
    bits = np.asarray(bits, dtype=np.uint64).reshape(-1, 1)
    mask = (~(bits - np.uint64(1))) & np.uint64(0xFFFFFFFFFFFFFFFF)
    return np.bitwise_and(blocks, mask.astype(BLOCK_DTYPE))


def hexdigest(a: np.ndarray) -> str:
    """Human-readable hex rendering of a block array (debug helper)."""
    return to_bytes(a).hex()
