"""Schnorr group arithmetic for the PKC base OTs.

PCG-style OTE needs a handful of public-key base OTs in its one-time
initialization (the "Init" bar in Figure 1(b)).  We implement the
group layer from scratch: a safe-prime multiplicative group (the RFC
2409 Oakley Group 1 768-bit prime by default, whose subgroup of
quadratic residues has prime order) plus exponentiation helpers.

768 bits is *not* a production-strength modulus; it keeps the
pure-Python base OT fast while exercising exactly the real protocol
flow.  The 2048-bit RFC 3526 group is included for realism.
"""

from __future__ import annotations

import hashlib
import secrets

from repro.errors import ParameterError

#: RFC 2409 Oakley Group 1: 768-bit safe prime, generator 2.
OAKLEY_768_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF",
    16,
)

#: RFC 3526 group 14: 2048-bit safe prime, generator 2.
MODP_2048_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)


class FixedBaseExp:
    """Windowed fixed-base modular exponentiation.

    The base-OT Init computes many powers of the *same* base (the
    receiver raises ``g`` once per OT), so a one-time table of
    ``base^(d * 2^(w*i)) mod p`` turns every later exponentiation into
    ~``exp_bits/w`` modular multiplications instead of a full
    square-and-multiply ladder.  This is the classic fixed-base comb
    that the ROADMAP names as the last setup bottleneck (~8 ms/OT of
    pure-Python modexp).
    """

    def __init__(self, base: int, modulus: int, exp_bits: int, window: int = 5):
        if window < 1 or exp_bits < 1:
            raise ParameterError("window and exponent width must be positive")
        self.base = base % modulus
        self.modulus = modulus
        self.exp_bits = exp_bits
        self.window = window
        radix = 1 << window
        self._radix_mask = radix - 1
        self._table = []
        g_pow = self.base  # base^(2^(window*i)) as i advances
        for _ in range((exp_bits + window - 1) // window):
            row = [1] * radix
            for d in range(1, radix):
                row[d] = (row[d - 1] * g_pow) % modulus
            self._table.append(row)
            g_pow = (row[radix - 1] * g_pow) % modulus
        self._cap = 1 << (len(self._table) * window)

    def exp(self, scalar: int) -> int:
        """base^scalar mod p (falls back to ``pow`` out of table range)."""
        if scalar < 0 or scalar >= self._cap:
            return pow(self.base, scalar, self.modulus)
        acc = 1
        i = 0
        while scalar:
            digit = scalar & self._radix_mask
            if digit:
                acc = (acc * self._table[i][digit]) % self.modulus
            scalar >>= self.window
            i += 1
        return acc


class SchnorrGroup:
    """The order-q subgroup of quadratic residues mod a safe prime p = 2q+1."""

    def __init__(self, p: int = OAKLEY_768_P, g: int = 2):
        if p % 2 == 0:
            raise ParameterError("modulus must be odd")
        self.p = p
        self.q = (p - 1) // 2
        # Square the generator so it lands in the QR subgroup of order q.
        self.g = pow(g, 2, p)
        self._g_table = None  # fixed-base table, built on first gexp()

    def random_scalar(self) -> int:
        """Uniform exponent in [1, q)."""
        return 1 + secrets.randbelow(self.q - 1)

    def exp(self, base: int, scalar: int) -> int:
        """base^scalar mod p."""
        return pow(base, scalar, self.p)

    def gexp(self, scalar: int) -> int:
        """g^scalar mod p via the precomputed fixed-base window table.

        Equivalent to ``pow(g, scalar, p)`` for every scalar (the table
        covers exponents up to q; anything else falls back to ``pow``),
        but ~spends one multiplication per window instead of a full
        ladder -- the hot call of the base-OT receiver.
        """
        if self._g_table is None:
            self._g_table = FixedBaseExp(self.g, self.p, self.q.bit_length())
        return self._g_table.exp(scalar)

    def mul(self, a: int, b: int) -> int:
        """a * b mod p."""
        return (a * b) % self.p

    def inv(self, a: int) -> int:
        """Multiplicative inverse mod p."""
        return pow(a, -1, self.p)

    def element_bytes(self, a: int) -> bytes:
        """Fixed-width big-endian encoding of a group element."""
        width = (self.p.bit_length() + 7) // 8
        return a.to_bytes(width, "big")

    def hash_to_key(self, element: int, tweak: bytes = b"") -> bytes:
        """Derive a 16-byte symmetric key from a group element (KDF)."""
        return hashlib.sha256(self.element_bytes(element) + tweak).digest()[:16]


#: Default group used by the base OT (fast enough for pure Python).
DEFAULT_GROUP = SchnorrGroup()
