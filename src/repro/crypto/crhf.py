"""Correlation-robust hash function (CRHF).

COT correlations all share one global Delta, so before they can mask
actual messages they are passed through a hash that breaks the
correlation (Figure 2 of the paper; [IKNP03]).  We use the standard
MMO (Matyas-Meyer-Oseas) construction over fixed-key AES, exactly as
the EMP toolkit that Ferret builds on:

    H(x) = AES_K(sigma(x)) XOR sigma(x)

where ``sigma(a || b) = (a XOR b) || a`` is a linear orthomorphism on
64-bit halves.  A tweaked variant folds a per-instance index into the
input, which is how many parallel OTs can share one hash key.
"""

from __future__ import annotations

import numpy as np

from repro.crypto import blocks
from repro.crypto.aes import AES128

_DEFAULT_KEY = bytes.fromhex("0f1e2d3c4b5a69788796a5b4c3d2e1f0")


def sigma(x: np.ndarray) -> np.ndarray:
    """The orthomorphism sigma(a || b) = (a XOR b) || a on 64-bit halves."""
    out = np.empty_like(x)
    out[:, 0] = x[:, 0] ^ x[:, 1]
    out[:, 1] = x[:, 0]
    return out


class Crhf:
    """Fixed-key MMO correlation-robust hash over 128-bit blocks."""

    def __init__(self, key: bytes = _DEFAULT_KEY):
        self._cipher = AES128(key)

    def hash(self, x: np.ndarray) -> np.ndarray:
        """Hash a block array elementwise."""
        blocks.require_blocks(x, "x")
        s = sigma(x)
        return blocks.xor(self._cipher.encrypt_blocks(s), s)

    def hash_tweaked(self, x: np.ndarray, tweaks: np.ndarray) -> np.ndarray:
        """Hash with a per-element 64-bit tweak (e.g. the OT index)."""
        blocks.require_blocks(x, "x")
        tweaked = x.copy()
        tweaked[:, 1] ^= np.asarray(tweaks, dtype=np.uint64)
        s = sigma(tweaked)
        return blocks.xor(self._cipher.encrypt_blocks(s), s)


#: Shared default instance; protocols that need domain separation build
#: their own with a distinct key.
DEFAULT_CRHF = Crhf()
