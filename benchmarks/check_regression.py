"""CI benchmark regression gate: smoke runs vs. the committed baseline.

The committed ``BENCH_*.json`` files record full-scale headline numbers,
but CI only runs the ``--smoke`` shapes -- so raw times are not
comparable across scales (or runner hardware).  What IS comparable is
each benchmark's **warm-path ratio**: how much faster the
pooled/preprocessed path is than its cold counterpart *at the same
smoke scale on the same machine*.  Machine speed cancels in the ratio,
and a dead pool (production silently stalling the warm path) collapses
it toward 1.

This gate reads the smoke payloads the benchmarks wrote with
``--json-out``, compares each warm-path metric against the committed
smoke baseline (``BENCH_smoke_baseline.json``), and fails the job when
a metric regressed by more than ``--factor`` (default 3x -- tolerant
enough for CI-runner noise and scheduling jitter, tight enough that a
dead pool or an accidentally-cold warm path cannot slip through).

Usage:
    # in CI, after running each bench with --smoke --json-out <dir>/...
    python benchmarks/check_regression.py --smoke-dir <dir>

    # after intentional perf changes, refresh the committed baseline
    python benchmarks/check_regression.py --smoke-dir <dir> --update
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parents[1] / "BENCH_smoke_baseline.json"

#: Bench name -> warm-path ratio extractor over that bench's payload.
METRICS = {
    "runtime_service": lambda p: p["amortization_gain"],
    "preprocessing": lambda p: p["online_speedup_warm_vs_cold"],
    "truncation": lambda p: p["online_speedup_warm_vs_cold"]["pair"],
    "pipeline": lambda p: p["ttfo_speedup"],
    "faults": lambda p: p["recovery_efficiency"],
    "obs": lambda p: p["instrumentation_overhead"],
    "sharded": lambda p: p["scaling"]["2"],
    "daemon": lambda p: p["cross_request_speedup"],
}

#: Metrics that only make sense on runners with enough cores, mapped to
#: the minimum count.  The 2-shard ratio runs 4 producer processes plus
#: both service parties: on a <4-core host the measurement is pure
#: scheduling noise on either side of 1.0, so the floor fails
#: spuriously.  (PR 8 already gates the >=2.5x@4-shard *assertion* on
#: core count; the smoke ratio floor needs the same guard.)
MIN_CORES = {
    "sharded": 4,
}

#: What each metric means, for the failure message.
DESCRIPTIONS = {
    "runtime_service": "per-COT amortization gain (1 session vs many)",
    "preprocessing": "warm-pool vs cold online speedup",
    "truncation": "pair-mode warm vs cold online speedup",
    "pipeline": "time-to-first-layer-online, all-at-once vs pipelined",
    "faults": "chaos recovery efficiency (clean e2e / faulted e2e)",
    "obs": "enabled-instrumentation overhead (traced / untraced online)",
    "sharded": "2-shard vs 1-shard COT serve throughput ratio",
    "daemon": "warm steady-state vs first-request time-to-first-layer-online",
}

#: Ceiling metrics: *lower* is better, and the committed baseline value
#: is a fixed contract rather than a measurement -- the gate fails when
#: the smoke value exceeds it.  The relative-factor and floor logic
#: (built for higher-is-better warm-path ratios) does not apply.
CEILINGS = {
    # The flight recorder's promise: enabling spans + metrics on a live
    # service costs under 5% of warm online time.
    "obs": 1.05,
}

#: Absolute floors, enforced independently of the relative factor.  A
#: completely broken warm path collapses each ratio to ~1.0x, and for
#: low-baseline metrics baseline/factor can fall below that -- the
#: relative gate alone would wave the breakage through.  Floors sit
#: between "dead" (~1.0x) and the low end of healthy smoke runs.
FLOORS = {
    "preprocessing": 1.2,
    "pipeline": 1.3,
    # Recovery efficiency sits near 1.0 when redials heal in
    # milliseconds; a resume path that limps through on retry-budget
    # exhaustion collapses it by orders of magnitude.  The bench itself
    # hangs (and fails CI) when recovery breaks outright, so the floor
    # only needs to catch "recovers, but pathologically slowly".
    "faults": 0.05,
    # Shard scaling is core-count-bound: 1-2 core CI runners measure
    # BELOW 1.0x (process overhead, no parallelism), so the floor only
    # guards against a merge path that has collapsed outright -- a
    # stalled merger shows up as a near-zero ratio (or a bench hang)
    # long before it shows up as "merely not scaling".
    "sharded": 0.3,
    # Cross-request pipelining: a daemon whose prefill scheduler stopped
    # overlapping request r+1's production with request r's online tail
    # collapses the steady-state/first-request ratio to ~1.0x.
    "daemon": 1.05,
}


def load_smoke(smoke_dir: Path) -> dict:
    metrics = {}
    missing = []
    for name, extract in METRICS.items():
        path = smoke_dir / f"BENCH_{name}.smoke.json"
        if not path.exists():
            missing.append(str(path))
            continue
        metrics[name] = float(extract(json.loads(path.read_text())))
    if missing:
        raise SystemExit(
            "regression gate: missing smoke payloads (did every bench run "
            f"with --json-out?): {', '.join(missing)}"
        )
    return metrics


def update_baseline(metrics: dict, path: Path) -> None:
    # Ceiling metrics stay pinned at their contract value: refreshing
    # the baseline after a perf change must not quietly loosen (or
    # tighten, on a lucky run) the instrumentation-overhead gate.
    metrics = {**metrics, **CEILINGS}
    payload = {
        "bench": "smoke_baseline",
        "note": (
            "warm-path ratio metrics measured at --smoke scale on a healthy "
            "tree; refreshed via benchmarks/check_regression.py --update"
        ),
        "metrics": metrics,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


def check(metrics: dict, baseline: dict, factor: float, cores: int = None) -> list:
    """Returns failure strings; empty means the gate passes."""
    if cores is None:
        cores = os.cpu_count() or 1
    failures = []
    for name, value in sorted(metrics.items()):
        need = MIN_CORES.get(name)
        if need is not None and cores < need:
            print(
                f"  {name:16s} {value:8.2f}x  skipped: host has {cores} "
                f"core(s), metric needs >= {need} to be meaningful"
            )
            continue
        base = baseline.get(name)
        if name in CEILINGS:
            ceiling = base if base is not None else CEILINGS[name]
            status = "ok"
            if value > ceiling:
                status = "REGRESSED"
                failures.append(
                    f"{name}: {DESCRIPTIONS[name]} rose to {value:.3f}x, "
                    f"above the ceiling {ceiling:.2f}x -- did an "
                    "instrumentation site lose its tracer.enabled guard?"
                )
            print(f"  {name:16s} {value:8.2f}x  ceiling  {ceiling:7.2f}x  {status}")
            continue
        floor = FLOORS.get(name, 0.0)
        status = "ok"
        if value < floor:
            status = "REGRESSED"
            failures.append(
                f"{name}: {DESCRIPTIONS[name]} fell to {value:.2f}x, below "
                f"the absolute floor {floor:.2f}x -- the warm path is no "
                "better than cold; is a pool dead or a prefill skipped?"
            )
        elif base is None:
            status = "no baseline (skipped)"
        elif value * factor < base:
            status = "REGRESSED"
            failures.append(
                f"{name}: {DESCRIPTIONS[name]} fell to {value:.2f}x "
                f"(baseline {base:.2f}x, allowed floor {base / factor:.2f}x) "
                "-- warm path slowed >"
                f"{factor:.0f}x; is a pool dead or a prefill skipped?"
            )
        base_str = "-" if base is None else f"{base:8.2f}x"
        print(f"  {name:16s} {value:8.2f}x  baseline {base_str}  {status}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke-dir",
        type=Path,
        required=True,
        help="directory holding the BENCH_<name>.smoke.json payloads",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=3.0,
        help="maximum tolerated warm-path slowdown vs baseline (default 3x)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the committed baseline from this smoke run instead "
        "of gating against it",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=BASELINE_PATH,
        help="baseline JSON path (default: committed BENCH_smoke_baseline.json)",
    )
    args = parser.parse_args(argv)
    metrics = load_smoke(args.smoke_dir)
    if args.update:
        update_baseline(metrics, args.baseline)
        return 0
    if not args.baseline.exists():
        raise SystemExit(
            f"regression gate: no baseline at {args.baseline}; run with "
            "--update on a healthy tree first"
        )
    baseline = json.loads(args.baseline.read_text())["metrics"]
    print(f"benchmark regression gate (tolerance {args.factor:.0f}x):")
    failures = check(metrics, baseline, args.factor)
    if failures:
        print("\nFAIL:")
        for line in failures:
            print(f"  {line}")
        return 1
    print("regression gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
