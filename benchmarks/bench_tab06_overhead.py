"""Table 6: Ironman-NMP design overhead (area / power)."""

import pytest

from repro.core.calibration import TABLE6
from repro.core.comparison import gpu_comparison
from repro.lpn.params import TABLE4_BY_LABEL
from repro.nmp.config import IRONMAN_1MB
from repro.sim.energy import nmp_overhead, table6_rows
from repro.utils.tables import print_table
from repro.utils.units import KIB, MIB


def test_tab06_design_overhead(benchmark, once):
    rows = once(benchmark, table6_rows)
    print()
    print_table(
        ["component", "area mm^2", "power W"],
        [[r["component"], f"{r['area_mm2']:.3f}", f"{r['power_w']:.3f}"] for r in rows],
        title="Table 6: design overhead of Ironman-NMP",
    )
    small = nmp_overhead(256 * KIB)
    large = nmp_overhead(MIB)
    assert small.area_mm2 == pytest.approx(TABLE6["nmp_256k_area_mm2"], rel=0.02)
    assert large.area_mm2 == pytest.approx(TABLE6["nmp_1m_area_mm2"], rel=0.01)
    assert small.power_w == pytest.approx(TABLE6["nmp_256k_power_w"], rel=0.02)
    assert large.power_w == pytest.approx(TABLE6["nmp_1m_power_w"], rel=0.01)

    gpu = gpu_comparison(IRONMAN_1MB, TABLE4_BY_LABEL["2^20"])
    print(
        f"vs A6000 GPU: {gpu['latency_ratio']:.1f}x lower latency (paper 40.31x), "
        f"{gpu['power_ratio']:.1f}x lower power (paper 84.5x; full-system "
        f"{gpu['ironman_power_w']:.1f} W vs {gpu['gpu_power_w']:.0f} W)"
    )
    assert gpu["latency_ratio"] > 1.0
    assert gpu["power_ratio"] > 10.0
    benchmark.extra_info["gpu_latency_ratio"] = gpu["latency_ratio"]
    benchmark.extra_info["gpu_power_ratio"] = gpu["power_ratio"]
