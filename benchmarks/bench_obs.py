"""Instrumentation overhead: the flight recorder must be (nearly) free.

The observability layer promises two things: disabled instrumentation
costs nothing on the hot path (every site guards on ``tracer.enabled``
against the shared ``NULL_TRACER``), and *enabled* instrumentation
stays under a 5% tax.  This benchmark measures the second promise the
only honest way -- the same warm pair-mode truncation online phase, on
the same live service pair, with tracing toggled between interleaved
iterations (interleaving cancels drift from pool levels, allocator
state, and CPU frequency).

Headline: **instrumentation_overhead** = min(enabled online) /
min(disabled online).  ``check_regression.py`` gates it at 1.05x in
CI.  Results go to ``BENCH_obs.json`` at the repo root.

Run standalone:     PYTHONPATH=src python benchmarks/bench_obs.py
Smoke (CI):         PYTHONPATH=src python benchmarks/bench_obs.py --smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np
from bench_io import add_bench_args, write_payload

from repro.ferret.config import FerretConfig
from repro.lpn.params import LpnParams
from repro.mpc.sharing import from_signed, share_arith_nd
from repro.mpc.triples import ring_mask_u64
from repro.mpc.truncation import FixedPointConfig, trunc_via_service
from repro.obs import NULL_TRACER, Tracer
from repro.ot.channel import LocalChannel, run_concurrently
from repro.ppml.plan import trunc_demand
from repro.runtime import CorrelationService, MuxChannel, ServiceTuning
from repro.utils.tables import print_table

PARAMS = LpnParams("bench-obs", 1 << 14, 512, 512, 32, 0.0)
RING_BITS = 16
FX = FixedPointConfig(bits=RING_BITS, frac_bits=4, mag_bits=9)
N_ELEMENTS = 512
SMOKE_ELEMENTS = 128
ITERS = 8
SMOKE_ITERS = 5
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_obs.json"
MASK = ring_mask_u64(RING_BITS)
#: CI regression ceiling for min(enabled)/min(disabled).
OVERHEAD_CEILING = 1.05


def start_services():
    tuning = ServiceTuning(
        ring_bits=RING_BITS,
        triple_low=0, triple_high=0, triple_chunk=1024,
        tprc_chunk=1024,
        enable_rots=False,
        take_timeout_s=600.0,
    )
    cfg = FerretConfig(params=PARAMS, arity=4, prg_kind="chacha8")
    base0, base1 = LocalChannel.pair(timeout=600.0)
    mux0 = MuxChannel(base0, timeout=600.0)
    mux1 = MuxChannel(base1, timeout=600.0)
    svc0 = CorrelationService(0, mux0, cfg, tuning, seed=0x7C).start()
    svc1 = CorrelationService(1, mux1, cfg, tuning, seed=0x7C).start()
    svc0.wait_ready(600.0)
    svc1.wait_ready(600.0)
    return svc0, svc1, mux0, mux1


def run_all(n: int, iters: int) -> dict:
    """One warm service pair; ``iters`` interleaved (disabled, enabled)
    pair-truncation onlines of ``n`` elements each."""
    svc0, svc1, mux0, mux1 = start_services()
    try:
        demand = trunc_demand(n, FX, "pair")
        for frac in demand.trunc_pairs:
            svc0.trunc_pool(frac), svc1.trunc_pool(frac)
        # Prefill every iteration's demand up front (plus the warmup
        # pass) so the timed onlines never wait on production.
        runs = 2 * iters + 1
        targets = {k: v * runs for k, v in demand.as_pool_targets().items()}
        run_concurrently(
            lambda: svc0.prefill(targets, 600.0),
            lambda: svc1.prefill(targets, 600.0),
            timeout=600.0,
        )

        rng = np.random.default_rng(0x0B5)
        vals = from_signed(
            rng.integers(-(1 << FX.mag_bits) + 1, 1 << FX.mag_bits, n), RING_BITS
        ).astype(np.uint64)
        shares = share_arith_nd(vals, rng, bits=RING_BITS)
        tracers = [Tracer(party=0), Tracer(party=1)]

        def online(label: str) -> float:
            name = f"obs-{label}"
            t0 = time.perf_counter()
            z0, z1 = run_concurrently(
                lambda: trunc_via_service(
                    svc0.session(name), shares[0], FX, mode="pair"
                ),
                lambda: trunc_via_service(
                    svc1.session(name), shares[1], FX, mode="pair"
                ),
                timeout=600.0,
            )
            elapsed = time.perf_counter() - t0
            assert ((z0 + z1) & MASK).shape == vals.shape
            return elapsed

        online("warmup")
        disabled, enabled = [], []
        for i in range(iters):
            svc0.set_tracer(NULL_TRACER), svc1.set_tracer(NULL_TRACER)
            disabled.append(online(f"off-{i}"))
            svc0.set_tracer(tracers[0]), svc1.set_tracer(tracers[1])
            enabled.append(online(f"on-{i}"))
        telemetry = svc0.telemetry()
        trace_events = sum(len(tr.events) for tr in tracers)
    finally:
        svc0.stop(), svc1.stop()
        mux0.close(), mux1.close()
    return {
        "elements": n,
        "iters": iters,
        "disabled_s": disabled,
        "enabled_s": enabled,
        "min_disabled_s": min(disabled),
        "min_enabled_s": min(enabled),
        "instrumentation_overhead": min(enabled) / min(disabled),
        "trace_events": trace_events,
        "telemetry_keys": len(telemetry),
    }


def report(row) -> None:
    print()
    print_table(
        ["tracing", "iters", "min online (s)", "median online (s)"],
        [
            [
                label,
                str(row["iters"]),
                f"{min(times):.4f}",
                f"{sorted(times)[len(times) // 2]:.4f}",
            ]
            for label, times in (
                ("disabled", row["disabled_s"]),
                ("enabled", row["enabled_s"]),
            )
        ],
        title=(
            f"Instrumentation overhead, pair truncation n={row['elements']}, "
            f"interleaved"
        ),
    )
    print(
        f"\noverhead min(enabled)/min(disabled) = "
        f"{row['instrumentation_overhead']:.3f}x "
        f"({row['trace_events']} trace events recorded, "
        f"{row['telemetry_keys']} telemetry keys)"
    )


def check(row) -> None:
    """Acceptance: enabled tracing stays under the 5% tax."""
    assert row["instrumentation_overhead"] < OVERHEAD_CEILING, (
        f"enabled instrumentation costs "
        f"{row['instrumentation_overhead']:.3f}x >= {OVERHEAD_CEILING}x"
    )
    assert row["trace_events"] > 0, "enabled runs recorded no events"
    assert row["telemetry_keys"] > 0, "telemetry snapshot is empty"


def payload(row) -> dict:
    return {
        "bench": "obs",
        "config": {
            "n": PARAMS.n,
            "k": PARAMS.k,
            "t": PARAMS.t,
            "ring_bits": RING_BITS,
            "frac_bits": FX.frac_bits,
            "elements": row["elements"],
            "iters": row["iters"],
            "machine": platform.machine(),
        },
        "scenario": row,
        "instrumentation_overhead": row["instrumentation_overhead"],
        "trace_events": row["trace_events"],
        "telemetry_keys": row["telemetry_keys"],
    }


def write_json(row, path: Path = JSON_PATH) -> None:
    path.write_text(json.dumps(payload(row), indent=2) + "\n")
    print(f"wrote {path}")


def test_bench_obs(benchmark, once):
    row = once(benchmark, lambda: run_all(N_ELEMENTS, ITERS))
    report(row)
    check(row)
    write_json(row)
    benchmark.extra_info["overhead"] = row["instrumentation_overhead"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    add_bench_args(
        parser,
        smoke_help="fewer elements/iterations; skips the overhead "
        "assertion (CI gates the ratio via check_regression instead) "
        "and does not touch the committed JSON",
    )
    args = parser.parse_args(argv)
    n = SMOKE_ELEMENTS if args.smoke else N_ELEMENTS
    iters = SMOKE_ITERS if args.smoke else ITERS
    row = run_all(n, iters)
    report(row)
    if args.json_out is not None:
        write_payload(args.json_out, payload(row))
    if args.smoke:
        assert row["trace_events"] > 0, "enabled runs recorded no events"
        print("smoke OK")
        return 0
    check(row)
    write_json(row)
    return 0


if __name__ == "__main__":
    sys.exit(main())
