"""Figure 16: secure MatMul with and without the unified architecture."""

import pytest

from repro.core.calibration import FIG16_COMM_REDUCTION, FIG16_LATENCY_REDUCTION
from repro.lpn.params import TABLE4_BY_LABEL
from repro.nmp.accelerator import IronmanAccelerator
from repro.nmp.config import IRONMAN_1MB
from repro.ppml.inference import IronmanOte
from repro.ppml.matmul import FIG16_DIMS, matmul_cost
from repro.ppml.network import LAN
from repro.utils.tables import print_table
from repro.utils.units import fmt_bytes


def test_fig16_unified_matmul(benchmark, once):
    provider = IronmanOte(TABLE4_BY_LABEL["2^22"], IronmanAccelerator(IRONMAN_1MB))

    def run():
        rows = []
        for dims in FIG16_DIMS:
            base = matmul_cost(dims, provider, LAN, unified=False)
            ours = matmul_cost(dims, provider, LAN, unified=True)
            rows.append((dims, base, ours))
        return rows

    rows = once(benchmark, run)
    print()
    print_table(
        ["MatMul dim", "comm w/o", "comm w/", "comm red.", "lat w/o", "lat w/", "lat red."],
        [
            [
                d.label,
                fmt_bytes(b.comm_bytes),
                fmt_bytes(o.comm_bytes),
                f"{b.comm_bytes / o.comm_bytes:.2f}x",
                f"{b.total_seconds * 1e3:.1f} ms",
                f"{o.total_seconds * 1e3:.1f} ms",
                f"{b.total_seconds / o.total_seconds:.2f}x",
            ]
            for d, b, o in rows
        ],
        title=f"Figure 16: unified architecture (paper: {FIG16_COMM_REDUCTION}x comm, "
        f"{FIG16_LATENCY_REDUCTION}x latency)",
    )
    for d, b, o in rows:
        assert b.comm_bytes / o.comm_bytes == pytest.approx(FIG16_COMM_REDUCTION, rel=0.01)
        lat_red = b.total_seconds / o.total_seconds
        assert FIG16_LATENCY_REDUCTION * 0.8 < lat_red <= FIG16_COMM_REDUCTION
    benchmark.extra_info["latency_reductions"] = [
        b.total_seconds / o.total_seconds for _, b, o in rows
    ]
