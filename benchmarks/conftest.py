"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper: it runs
the relevant model/simulation under ``pytest-benchmark`` (one round --
these are macro simulations, not microseconds-level kernels except in
``bench_kernels.py``), prints the paper-vs-measured rows, and attaches
the headline numbers to ``benchmark.extra_info`` so they land in the
saved benchmark JSON.

Run:  pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Run a macro-benchmark exactly once under timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    return run_once
