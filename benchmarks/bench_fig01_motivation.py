"""Figure 1: the motivation study.

(a) per-component share of private-inference latency per model and
    framework -- OT extension should dominate (51-69% in the paper);
(b) CPU OTE per-execution latency with the Init/SPCOT/LPN split;
(c) roofline placement of the SPCOT and LPN kernels.
"""

import pytest

from repro.baselines.cpu import DEFAULT_CPU
from repro.baselines.roofline import lpn_point, spcot_point
from repro.core.calibration import FIG1A_OT_SHARE_RANGE, FIG1B_CPU_PER_EXECUTION_S
from repro.core.ironman import IronmanSystem
from repro.lpn.params import TABLE4
from repro.ppml.network import LAN
from repro.utils.tables import print_table

FIG1A_CASES = (
    ("Cheetah", "SqueezeNet"),
    ("Cheetah", "ResNet50"),
    ("Cheetah", "DenseNet121"),
    ("CrypTFlow2", "SqueezeNet"),
    ("CrypTFlow2", "ResNet50"),
    ("CrypTFlow2", "DenseNet121"),
    ("Bolt", "BERT-Base"),
    ("Bolt", "BERT-Large"),
    ("Bolt", "GPT2-Small"),
    ("Bolt", "GPT2-Medium"),
    ("Bolt", "GPT2-Large"),
)


def test_fig01a_component_breakdown(benchmark, once):
    system = IronmanSystem()

    def run():
        rows = []
        for framework, model in FIG1A_CASES:
            est = system.estimate(model, framework, LAN, use_ironman=False)
            rows.append(
                [
                    framework,
                    model,
                    f"{est.share('ot') * 100:.0f}%",
                    f"{est.share('he') * 100:.0f}%",
                    f"{est.share('online') * 100:.0f}%",
                    f"{est.share('other') * 100:.0f}%",
                ]
            )
        return rows

    rows = once(benchmark, run)
    print()
    print_table(
        ["framework", "model", "OT ext", "HE comp", "online comm", "other"],
        rows,
        title=f"Figure 1(a): latency shares (paper OT share: "
        f"{FIG1A_OT_SHARE_RANGE[0]*100:.0f}-{FIG1A_OT_SHARE_RANGE[1]*100:.0f}%)",
    )
    shares = [float(r[2].rstrip("%")) for r in rows]
    benchmark.extra_info["ot_share_min"] = min(shares)
    benchmark.extra_info["ot_share_max"] = max(shares)
    assert max(shares) >= 50.0


def test_fig01b_cpu_ote_latency(benchmark, once):
    def run():
        rows = []
        for params in TABLE4:
            b = DEFAULT_CPU.execution_breakdown(params)
            rows.append(
                [
                    params.label,
                    f"{b.init_seconds:.2f}s",
                    f"{b.spcot_seconds:.2f}s",
                    f"{b.lpn_seconds:.2f}s",
                    f"{b.total_seconds:.2f}s",
                    f"{FIG1B_CPU_PER_EXECUTION_S[params.label]:.2f}s",
                ]
            )
        return rows

    rows = once(benchmark, run)
    print()
    print_table(
        ["#OTs", "Init", "SPCOT", "LPN", "total", "paper"],
        rows,
        title="Figure 1(b): CPU OTE latency per execution",
    )
    for row in rows:
        measured = float(row[4].rstrip("s"))
        paper = float(row[5].rstrip("s"))
        assert measured == pytest.approx(paper, rel=0.25)


def test_fig01c_roofline(benchmark, once):
    def run():
        rows = []
        for params in TABLE4:
            for point in (spcot_point(params), lpn_point(params)):
                rows.append(
                    [
                        point.kernel,
                        point.label,
                        f"{point.intensity_aes_per_byte:.2e}",
                        f"{point.achieved_aes_per_s / 1e9:.3f}",
                        f"{point.roof_aes_per_s / 1e9:.3f}",
                        point.bound,
                    ]
                )
        return rows

    rows = once(benchmark, run)
    print()
    print_table(
        ["kernel", "#OTs", "AI (AES/B)", "achieved GAES/s", "roof GAES/s", "bound"],
        rows,
        title="Figure 1(c): roofline (SPCOT compute-bound, LPN memory-bound)",
    )
    assert all(r[5] == "compute" for r in rows if r[0] == "spcot")
    assert all(r[5] == "memory" for r in rows if r[0] == "lpn")
