"""Figure 12: OTE latency on CPU / GPU / Ironman.

Sweeps the 2/4/8/16-rank configurations for both memory-side cache
sizes over all five Table 4 parameter sets (2^25 COTs total), and
compares the min/max speedup bands with the paper's.
"""

from repro.core.calibration import FIG12_SPEEDUP_BANDS, GPU_SPEEDUP
from repro.core.comparison import figure12_sweep, speedup_band
from repro.utils.tables import print_table


def test_fig12_ote_speedup_bands(benchmark, once):
    rows = once(benchmark, figure12_sweep)
    print()
    band_rows = []
    for (cache_kb, ranks), paper in FIG12_SPEEDUP_BANDS.items():
        lo, hi = speedup_band(rows, cache_kb, ranks)
        band_rows.append(
            [
                f"{cache_kb}KB",
                ranks,
                f"{lo:.2f}x - {hi:.2f}x",
                f"{paper[0]:.2f}x - {paper[1]:.2f}x",
            ]
        )
    print_table(
        ["cache", "ranks", "measured band", "paper band"],
        band_rows,
        title="Figure 12: OTE speedup over full-thread CPU (2^25 OTs)",
    )
    detail = [
        [r["cache_kb"], r["ranks"], r["params"], f"{r['ironman_s'] * 1e3:.1f} ms",
         f"{r['speedup_vs_cpu']:.1f}x", f"{r['speedup_vs_gpu']:.1f}x"]
        for r in rows
        if r["ranks"] == 16
    ]
    print_table(
        ["cache KB", "ranks", "params", "Ironman latency", "vs CPU", "vs GPU"],
        detail,
        title=f"16-rank detail (GPU itself is {GPU_SPEEDUP}x over CPU)",
    )
    # Shape assertions: monotone rank scaling, 1MB >= 256KB, best at 2^20.
    for cache_kb in (256, 1024):
        prev_hi = 0.0
        for ranks in (2, 4, 8, 16):
            lo, hi = speedup_band(rows, cache_kb, ranks)
            assert hi > prev_hi
            prev_hi = hi
    lo256, hi256 = speedup_band(rows, 256, 16)
    lo1m, hi1m = speedup_band(rows, 1024, 16)
    assert hi1m > hi256
    best = max(
        (r for r in rows if r["cache_kb"] == 1024 and r["ranks"] == 16),
        key=lambda r: r["speedup_vs_cpu"],
    )
    assert best["params"] == "2^20"
    benchmark.extra_info["band_256k_16r"] = (lo256, hi256)
    benchmark.extra_info["band_1m_16r"] = (lo1m, hi1m)
