"""Sequential vs batched level-synchronous MPCOT (Figure 8's inter-tree
parallelism, realized in software).

Two comparisons at the tentpole operating point n = 2^16, t = 64:

* **MPCOT alone** over fabricated COT pools: wall time, channel rounds,
  bytes, and PRG core calls for the sequential reference vs the batched
  schedule (outputs are bit-identical; only the schedule differs).
* **ferret_pair end to end**: one setup plus ``EXTEND_ROUNDS`` extends,
  the PCG usage pattern (setup runs once, extends run forever).

Headline results also land in ``BENCH_mpcot_batch.json`` at the repo
root -- machine-readable, committed, so future PRs have a perf
trajectory to compare against.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.crypto import blocks
from repro.crypto.prg import ChaChaTreePrg
from repro.ferret.config import FerretConfig
from repro.ferret.protocol import ferret_pair
from repro.lpn.params import LpnParams
from repro.ot.channel import run_pair
from repro.ot.cot import CotPool, CotReceiverBatch, CotSenderBatch
from repro.spcot.mpcot import (
    mpcot_cots_needed,
    mpcot_receive,
    mpcot_send,
    sample_alphas,
)
from repro.utils.tables import print_table

N = 1 << 16
T = 64
ARITY = 4
PRG_KIND = "chacha8"
#: Extends per ferret_pair run: amortizes the (path-independent) base-OT
#: setup the way real PCG deployments do.
EXTEND_ROUNDS = 24

PARAMS = LpnParams("bench-2^16", N, 1024, 128, T, 0.0)
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_mpcot_batch.json"


def _make_pools(n_cots, delta, seed=99):
    gen = np.random.default_rng(seed)
    z = blocks.random_blocks(n_cots, gen)
    x = gen.integers(0, 2, n_cots).astype(np.uint8)
    y = blocks.xor(z, blocks.mul_bit(delta, x))
    return (
        CotPool(sender=CotSenderBatch(delta, z)),
        CotPool(receiver=CotReceiverBatch(x, y)),
    )


def _run_mpcot(batched: bool) -> dict:
    delta = blocks.random_blocks(1, np.random.default_rng(41))
    pool_s, pool_r = _make_pools(mpcot_cots_needed(N, T, ARITY), delta)
    prg_s, prg_r = ChaChaTreePrg(ARITY), ChaChaTreePrg(ARITY)
    alphas = sample_alphas(N, T, np.random.default_rng(5))
    rng = np.random.default_rng(123)
    start = time.perf_counter()
    w, uv, s_stats, r_stats = run_pair(
        lambda ch: mpcot_send(ch, pool_s, delta, prg_s, N, T, rng, batched=batched),
        lambda ch: mpcot_receive(ch, pool_r, alphas, prg_r, N, T, batched=batched),
    )
    wall = time.perf_counter() - start
    assert np.all(
        blocks.equal(w, blocks.xor(uv[1], blocks.mul_bit(delta, uv[0])))
    ), "MPCOT invariant violated"
    return {
        "wall_s": wall,
        "rounds": s_stats.rounds + r_stats.rounds,
        "bytes": s_stats.bytes_sent + r_stats.bytes_sent,
        "prg_calls": prg_s.total_calls + prg_r.total_calls,
        "digest": blocks.hexdigest(w[:4]),
    }


def _run_ferret(batched: bool) -> dict:
    cfg = FerretConfig(params=PARAMS, arity=ARITY, prg_kind=PRG_KIND, batched=batched)
    start = time.perf_counter()
    s_out, _, s_stats, r_stats = ferret_pair(cfg, rounds=EXTEND_ROUNDS, seed=7)
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "rounds": s_stats.rounds + r_stats.rounds,
        "bytes": s_stats.bytes_sent + r_stats.bytes_sent,
        "n_output": sum(len(b) for b in s_out),
        "digest": blocks.hexdigest(s_out[-1].z[:4]),
    }


def test_bench_mpcot_batch(benchmark, once):
    def run():
        mpcot = {name: _run_mpcot(b) for name, b in
                 [("sequential", False), ("batched", True)]}
        ferret = {name: _run_ferret(b) for name, b in
                  [("sequential", False), ("batched", True)]}
        return mpcot, ferret

    mpcot, ferret = once(benchmark, run)

    print()
    print_table(
        ["path", "wall (s)", "rounds", "bytes", "PRG calls"],
        [
            [name, f"{r['wall_s']:.3f}", f"{r['rounds']:,}", f"{r['bytes']:,}",
             f"{r['prg_calls']:,}"]
            for name, r in mpcot.items()
        ],
        title=f"MPCOT alone (n=2^16, t={T}, {ARITY}-ary {PRG_KIND})",
    )
    print_table(
        ["path", "wall (s)", "rounds", "bytes", "COTs out"],
        [
            [name, f"{r['wall_s']:.3f}", f"{r['rounds']:,}", f"{r['bytes']:,}",
             f"{r['n_output']:,}"]
            for name, r in ferret.items()
        ],
        title=f"ferret_pair end to end (setup + {EXTEND_ROUNDS} extends)",
    )

    mpcot_speedup = mpcot["sequential"]["wall_s"] / mpcot["batched"]["wall_s"]
    ferret_speedup = ferret["sequential"]["wall_s"] / ferret["batched"]["wall_s"]
    round_ratio = mpcot["sequential"]["rounds"] / mpcot["batched"]["rounds"]
    print(
        f"\nspeedup: mpcot {mpcot_speedup:.1f}x, ferret_pair {ferret_speedup:.1f}x, "
        f"round reduction {round_ratio:.0f}x"
    )

    # The batched schedule must not change what is computed, only when.
    assert mpcot["sequential"]["prg_calls"] == mpcot["batched"]["prg_calls"]
    assert mpcot["sequential"]["digest"] == mpcot["batched"]["digest"]
    assert ferret["sequential"]["digest"] == ferret["batched"]["digest"]
    # Rounds collapse from O(t * depth) to O(depth).
    assert mpcot["batched"]["rounds"] * 8 <= mpcot["sequential"]["rounds"]
    # Tentpole acceptance: >= 5x end-to-end at n=2^16, t=64.
    assert ferret_speedup >= 5.0, f"ferret_pair speedup only {ferret_speedup:.2f}x"

    payload = {
        "bench": "mpcot_batch",
        "config": {
            "n": N,
            "t": T,
            "arity": ARITY,
            "prg_kind": PRG_KIND,
            "lpn_k": PARAMS.k,
            "extend_rounds": EXTEND_ROUNDS,
            "machine": platform.machine(),
        },
        "mpcot": mpcot,
        "ferret_pair": ferret,
        "speedup": {
            "mpcot_wall": mpcot_speedup,
            "ferret_pair_wall": ferret_speedup,
            "mpcot_rounds": round_ratio,
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {JSON_PATH}")

    benchmark.extra_info["mpcot_speedup"] = mpcot_speedup
    benchmark.extra_info["ferret_pair_speedup"] = ferret_speedup
    benchmark.extra_info["round_reduction"] = round_ratio
