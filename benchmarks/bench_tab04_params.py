"""Table 4: OT-extension parameter sets and their bit security."""

import pytest

from repro.lpn.params import TABLE4
from repro.lpn.security import estimate_security
from repro.utils.tables import print_table


def test_tab04_parameter_sets(benchmark, once):
    def run():
        rows = []
        for p in TABLE4:
            est = estimate_security(p)
            rows.append(
                [
                    p.label,
                    p.n,
                    p.ell,
                    p.k,
                    p.t,
                    f"{est.bits:.1f}",
                    f"{p.paper_security_bits:.1f}",
                ]
            )
        return rows

    rows = once(benchmark, run)
    print()
    print_table(
        ["#OTs", "n", "l", "k", "t", "est. security", "paper"],
        rows,
        title="Table 4: PCG-style OTE parameter sets",
    )
    for row in rows:
        est, paper = float(row[5]), float(row[6])
        assert est >= 128.0
        assert est == pytest.approx(paper, abs=12)
    benchmark.extra_info["min_security_bits"] = min(float(r[5]) for r in rows)
