"""COT throughput scaling under process-sharded production.

The provisioning service's single worker thread caps raw-COT
production at one core.  ``ServiceTuning.shards`` moves extends into N
producer process pairs (:mod:`repro.runtime.shard`), each its own
interpreter with its own socket, overlapping GGM expansion and the LPN
premix inside every extend.  This benchmark sweeps the shard count
(1 / 2 / 4 / 8) over an otherwise identical service pair and reports:

* aggregate forward-COT serve throughput (drawn COTs/s);
* scaling ratio vs the 1-shard (in-thread, byte-identical) baseline;
* per-shard extend counts and busy time from the ``shard/`` telemetry.

Scaling is bounded by the runner's core count (recorded in the
payload): on a 1-core box the sweep still validates correctness and
the merge path, but ratios hover near (or below) 1.  The acceptance
ratio (>= 2.5x at 4 shards) is asserted only when the host has >= 4
CPUs.

Headline numbers land in ``BENCH_sharded.json`` at the repo root.

Run standalone:     PYTHONPATH=src python benchmarks/bench_sharded.py
Smoke (CI):         PYTHONPATH=src python benchmarks/bench_sharded.py --smoke
Timeline:           ... --trace-out sharded.trace.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time
from pathlib import Path

from bench_io import add_bench_args, write_payload, write_trace

from repro.ferret.config import FerretConfig
from repro.lpn.params import LpnParams
from repro.obs.trace import Tracer
from repro.ot.channel import LocalChannel
from repro.ot.cot import verify_cot
from repro.runtime import CorrelationService, MuxChannel, ServiceTuning
from repro.utils.tables import print_table

#: Forward-direction COT provisioning at a 2^14 operating point.
PARAMS = LpnParams("bench-shard", 1 << 14, 512, 512, 32, 0.0)
SHARD_COUNTS = (1, 2, 4, 8)
TOTAL_DRAW = 120_000
CHUNK = 2048
SESSIONS = 2
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_sharded.json"


def make_config(smoke: bool) -> FerretConfig:
    if smoke:
        return FerretConfig.small(scale=1024, arity=4, prg_kind="chacha8")
    return FerretConfig(params=PARAMS, arity=4, prg_kind="chacha8")


def run_scenario(
    shards: int, total_draw: int, chunk: int, smoke: bool, tracers=None
) -> dict:
    """One sweep point: a service pair at ``shards`` producer shards."""
    cfg = make_config(smoke)
    tuning = ServiceTuning(
        shards=shards,
        enable_reverse=False,
        enable_triples=False,
        enable_rots=False,
        take_timeout_s=600.0,
    )
    base_a, base_b = LocalChannel.pair(timeout=600.0)
    mux0, mux1 = MuxChannel(base_a, timeout=600.0), MuxChannel(base_b, timeout=600.0)
    svc0 = CorrelationService(0, mux0, cfg, tuning, seed=0x5A8D).start()
    svc1 = CorrelationService(1, mux1, cfg, tuning, seed=0x5A8D).start()
    if tracers is not None:
        svc0.set_tracer(tracers[0])
        svc1.set_tracer(tracers[1])

    t0 = time.perf_counter()
    svc0.wait_ready(600.0)
    svc1.wait_ready(600.0)
    setup_s = time.perf_counter() - t0

    per_session = total_draw // SESSIONS
    results = {}
    errors = []

    def consumer(party, svc, idx):
        try:
            session = svc.session(f"shard-bench-{idx}")
            first = None
            remaining = per_session
            while remaining:
                n = min(chunk, remaining)
                if party == 0:
                    batch = session.draw_sender_cots(n)[0]
                else:
                    batch = session.draw_receiver_cots(n)[0]
                if first is None:
                    first = batch
                remaining -= n
            results[(party, idx)] = first
        except BaseException as exc:  # noqa: BLE001
            errors.append((party, idx, exc))

    threads = []
    for idx in range(SESSIONS):
        threads.append(threading.Thread(target=consumer, args=(0, svc0, idx)))
        threads.append(threading.Thread(target=consumer, args=(1, svc1, idx)))
    t1 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(600.0)
    serve_s = time.perf_counter() - t1
    hung = [t.name for t in threads if t.is_alive()]
    assert not hung, f"sessions hung past the join timeout: {hung}"
    assert not errors, f"sessions failed: {errors}"
    for idx in range(SESSIONS):
        assert verify_cot(results[(0, idx)], results[(1, idx)])

    total_cots = per_session * SESSIONS
    tel = svc0.telemetry()
    per_shard = {
        k[len("shard/"):]: v for k, v in tel.items() if k.startswith("shard/")
    }
    pool_stall = tel.get("pool/cot/fwd/stall_time_s", 0.0)
    svc0.stop()
    svc1.stop()
    mux0.close(), mux1.close()
    return {
        "shards": shards,
        "lpn_n": cfg.params.n,
        "net_output": cfg.net_output,
        "cots_drawn": total_cots,
        "setup_s": setup_s,
        "serve_s": serve_s,
        "throughput_cots_per_s": total_cots / serve_s,
        "extends": svc0.extends["fwd"],
        "pool_stall_s": pool_stall,
        "shard_telemetry": per_shard,
    }


def run_all(shard_counts, total_draw, chunk, smoke, tracers=None) -> list:
    rows = []
    for shards in shard_counts:
        rows.append(run_scenario(shards, total_draw, chunk, smoke, tracers))
    base = rows[0]["throughput_cots_per_s"]
    for r in rows:
        r["scaling_vs_1shard"] = r["throughput_cots_per_s"] / base
    return rows


def report(rows: list) -> None:
    print()
    print_table(
        ["shards", "COTs", "setup (s)", "serve (s)", "COTs/s", "scaling",
         "extends", "stall (s)"],
        [
            [
                str(r["shards"]),
                f"{r['cots_drawn']:,}",
                f"{r['setup_s']:.2f}",
                f"{r['serve_s']:.2f}",
                f"{r['throughput_cots_per_s']:,.0f}",
                f"{r['scaling_vs_1shard']:.2f}x",
                str(r["extends"]),
                f"{r['pool_stall_s']:.2f}",
            ]
            for r in rows
        ],
        title=f"Sharded COT production sweep ({os.cpu_count()} CPUs)",
    )


def payload(rows: list) -> dict:
    return {
        "bench": "sharded",
        "config": {
            "lpn_n": rows[0]["lpn_n"] if rows else None,
            "sessions": SESSIONS,
            "cpu_count": os.cpu_count(),
            "machine": platform.machine(),
        },
        "scenarios": rows,
        "scaling": {
            str(r["shards"]): r["scaling_vs_1shard"] for r in rows
        },
    }


def check(rows: list) -> None:
    """Acceptance: near-linear scaling where the host has the cores.

    >= 2.5x at 4 shards is only meaningful on a 4+-core runner; on
    smaller hosts the sweep validates correctness and the ratios are
    reported without being asserted.
    """
    cpus = os.cpu_count() or 1
    by_shards = {r["shards"]: r for r in rows}
    if cpus >= 4 and 4 in by_shards:
        ratio = by_shards[4]["scaling_vs_1shard"]
        assert ratio >= 2.5, f"4-shard scaling {ratio:.2f}x < 2.5x on {cpus} CPUs"
    elif 4 in by_shards:
        print(
            f"note: {cpus} CPU(s) -- skipping the 4-shard >=2.5x assertion "
            f"(measured {by_shards[4]['scaling_vs_1shard']:.2f}x)"
        )


def write_json(rows: list, path: Path = JSON_PATH) -> None:
    path.write_text(json.dumps(payload(rows), indent=2) + "\n")
    print(f"wrote {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    add_bench_args(
        parser,
        smoke_help="tiny run (1 and 2 shards, small params/draws) that "
        "skips the scaling assertion and does not touch the committed JSON",
        trace=True,
    )
    args = parser.parse_args(argv)
    tracers = None
    if args.trace_out is not None:
        tracers = [Tracer(party=0), Tracer(party=1)]
    if args.smoke:
        rows = run_all((1, 2), 6000, 512, smoke=True, tracers=tracers)
        report(rows)
        if args.json_out is not None:
            write_payload(args.json_out, payload(rows))
        if args.trace_out is not None:
            write_trace(args.trace_out, tracers)
        print("smoke OK")
        return 0
    rows = run_all(SHARD_COUNTS, TOTAL_DRAW, CHUNK, smoke=False, tracers=tracers)
    report(rows)
    check(rows)
    write_json(rows)
    if args.json_out is not None:
        write_payload(args.json_out, payload(rows))
    if args.trace_out is not None:
        write_trace(args.trace_out, tracers)
    return 0


if __name__ == "__main__":
    sys.exit(main())
