"""Table 2: PRG core comparison (area, perf/area, power/block)."""

import pytest

from repro.core.calibration import TABLE2
from repro.sim.energy import prg_comparison_rows
from repro.utils.tables import print_table


def test_tab02_prg_comparison(benchmark, once):
    rows = once(benchmark, prg_comparison_rows)
    print()
    print_table(
        ["PRG", "out bits", "area mm^2", "perf/area vs AES", "power mW", "power/block vs AES"],
        [
            [
                r["prg"],
                r["output_bits"],
                f"{r['area_mm2']:.3f}",
                f"{r['perf_per_area_ratio']:.3f}",
                f"{r['power_mw']:.2f}",
                f"{r['power_per_block_ratio']:.3f}",
            ]
            for r in rows
        ],
        title="Table 2: PRGs comparison",
    )
    chacha = next(r for r in rows if r["prg"] == "ChaCha8")
    assert chacha["perf_per_area_ratio"] == pytest.approx(
        TABLE2["chacha8"]["perf_area_ratio"], rel=0.05
    )
    assert chacha["power_per_block_ratio"] == pytest.approx(
        TABLE2["chacha8"]["power_block_ratio"], rel=0.01
    )
    benchmark.extra_info["chacha_perf_area"] = chacha["perf_per_area_ratio"]
