"""Figure 7: choosing the expansion arity m.

(a) PRG operations vs m (ChaCha, per Table 4 2^20 execution);
(b) communication vs m;
(c) protocol latency under WAN / LAN (compute + comm + rounds).

The paper selects m = 4: a 2.99x op reduction over 2-ary at modest
extra communication; wider arities buy little compute and hurt
bandwidth-limited deployments.
"""

import pytest

from repro.core.calibration import FIG7A_OP_REDUCTION
from repro.crypto.prg import expansion_calls
from repro.lpn.params import TABLE4_BY_LABEL
from repro.nmp.accelerator import IronmanAccelerator
from repro.nmp.config import IRONMAN_1MB
from repro.ppml.inference import ote_comm_per_execution
from repro.ppml.network import LAN, WAN
from repro.utils.tables import print_table

PARAMS = TABLE4_BY_LABEL["2^20"]
ARITIES = (2, 4, 8, 16, 32)


def test_fig07_mary_tradeoff(benchmark, once):
    accel = IronmanAccelerator(IRONMAN_1MB)

    def run():
        rows = []
        base_ops = PARAMS.t * expansion_calls(PARAMS.ell, 2, "chacha8")
        for m in ARITIES:
            ops = PARAMS.t * expansion_calls(PARAMS.ell, m, "chacha8")
            comm, rounds = ote_comm_per_execution(PARAMS, arity=m)
            # Protocol latency: accelerator compute (4-ary hardware cost
            # scales with ops) + interaction.
            compute = accel.execution_time(PARAMS, arity=min(m, 4)).total_seconds
            compute *= ops / (PARAMS.t * expansion_calls(PARAMS.ell, 4, "chacha8"))
            wan = compute + WAN.interaction_seconds(comm, rounds)
            lan = compute + LAN.interaction_seconds(comm, rounds)
            rows.append((m, ops, base_ops / ops, comm, wan, lan))
        return rows

    rows = once(benchmark, run)
    print()
    print_table(
        ["m", "ChaCha ops (1e6)", "reduction vs 2-ary", "comm MB", "WAN lat", "LAN lat"],
        [
            [
                m,
                f"{ops / 1e6:.2f}",
                f"{red:.2f}x",
                f"{comm / 1e6:.3f}",
                f"{wan * 1e3:.1f} ms",
                f"{lan * 1e3:.1f} ms",
            ]
            for m, ops, red, comm, wan, lan in rows
        ],
        title="Figure 7: m-ary tree trade-off (paper: 4-ary 2.99x, 32-ary 3.86x)",
    )
    by_m = {m: red for m, _, red, *_ in rows}
    assert by_m[4] == pytest.approx(FIG7A_OP_REDUCTION[4], rel=0.02)
    assert by_m[32] == pytest.approx(FIG7A_OP_REDUCTION[32], rel=0.02)
    # Communication grows monotonically with m (Fig 7(b)).
    comms = [c for _, _, _, c, _, _ in rows]
    assert all(b > a for a, b in zip(comms, comms[1:]))
    benchmark.extra_info["reduction_4ary"] = by_m[4]
    benchmark.extra_info["reduction_32ary"] = by_m[32]
