"""Figure 8: GGM expansion schedules on the pipelined ChaCha8 core.

Depth-first stalls the 8-stage pipeline between dependent expansions;
the hybrid schedule (breadth-first within levels + inter-tree
parallelism) reaches full utilization with modest buffering.
"""

from repro.lpn.params import TABLE4_BY_LABEL
from repro.sim.pipeline import SCHEDULES, expansion_schedule
from repro.utils.tables import print_table

PARAMS = TABLE4_BY_LABEL["2^20"]


def test_fig08_expansion_schedules(benchmark, once):
    def run():
        rows = []
        for schedule in SCHEDULES:
            res = expansion_schedule(
                n_trees=PARAMS.t,
                depth=6,
                arity=4,
                prg_kind="chacha8",
                n_cores=1,
                schedule=schedule,
                n_leaves=PARAMS.ell,
            )
            rows.append((schedule, res))
        return rows

    rows = once(benchmark, run)
    print()
    print_table(
        ["schedule", "cycles", "utilization", "buffer (blocks)"],
        [
            [name, f"{r.cycles:,}", f"{r.utilization * 100:.1f}%", f"{r.buffer_blocks:,}"]
            for name, r in rows
        ],
        title="Figure 8: expansion schedule comparison "
        f"({PARAMS.t} trees, 4-ary, l={PARAMS.ell})",
    )
    by_name = dict(rows)
    assert by_name["hybrid"].utilization > 0.95  # paper: 100% utilization
    assert by_name["hybrid"].cycles < by_name["depth_first"].cycles / 6
    # Memory claim: hybrid keeps O(t * m * depth) blocks -- far below
    # breadth-first expansion of the whole batch (O(t * leaves)).
    assert by_name["hybrid"].buffer_blocks < PARAMS.t * PARAMS.ell / 10
    benchmark.extra_info["hybrid_utilization"] = by_name["hybrid"].utilization
