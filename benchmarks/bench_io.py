"""Shared CLI/IO helpers for the standalone benchmark mains.

Every runtime benchmark exposes ``--json-out`` so CI can collect its
(smoke) payload for the regression gate (``check_regression.py``); the
argument plumbing and the atomic-enough write live here once.
"""

from __future__ import annotations

import json
from pathlib import Path


def add_json_out_arg(parser) -> None:
    parser.add_argument(
        "--json-out",
        type=Path,
        default=None,
        help="also write the (smoke) payload to this path, e.g. for the "
        "CI regression gate",
    )


def write_payload(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")
