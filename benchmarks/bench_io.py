"""Shared CLI/IO helpers for the standalone benchmark mains.

Every runtime benchmark exposes the same plumbing -- ``--smoke`` for the
CI-sized shape, ``--json-out`` so CI can collect its payload for the
regression gate (``check_regression.py``), and (for the benches that
record timelines) ``--trace-out`` writing a Chrome-trace/Perfetto JSON.
The argument wiring and the writes live here once.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.export import validate_chrome_trace, write_chrome_trace


def add_bench_args(parser, smoke_help: str, trace: bool = False) -> None:
    """The common benchmark flags: ``--smoke``, ``--json-out``, and
    (when ``trace``) ``--trace-out``."""
    parser.add_argument("--smoke", action="store_true", help=smoke_help)
    add_json_out_arg(parser)
    if trace:
        parser.add_argument(
            "--trace-out",
            type=Path,
            default=None,
            help="record the run with tracing enabled and write a "
            "Chrome-trace/Perfetto JSON timeline to this path "
            "(open at https://ui.perfetto.dev)",
        )


def add_json_out_arg(parser) -> None:
    parser.add_argument(
        "--json-out",
        type=Path,
        default=None,
        help="also write the (smoke) payload to this path, e.g. for the "
        "CI regression gate",
    )


def write_payload(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


def write_trace(path: Path, tracers) -> dict:
    """Merge ``tracers`` into one timeline, validate it, write it to
    ``path``, and return the validation counts."""
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = write_chrome_trace(path, tracers)
    counts = validate_chrome_trace(doc)
    print(
        f"wrote {path} ({counts['events']} events, {counts['spans']} spans, "
        f"{counts['instants']} instants)"
    )
    return counts
