"""Figure 13: SPCOT ablation and SPCOT-vs-LPN latency.

(a) m-ary arity x PRG ablation: 4-ary AES 1.5x, 2-ary ChaCha 2x,
    4-ary ChaCha 6x over the 2-ary AES baseline (op-count driven);
(b) SPCOT latency against LPN latency across rank configurations: the
    optimized 4-ary ChaCha SPCOT must stay below LPN everywhere so the
    overlapped execution is LPN-bound.
"""

import dataclasses

import pytest

from repro.core.calibration import FIG13A_SPEEDUPS
from repro.lpn.params import TABLE4_BY_LABEL
from repro.nmp.accelerator import IronmanAccelerator
from repro.nmp.config import IRONMAN_1MB
from repro.nmp.dimm import spcot_execution
from repro.utils.tables import print_table

PARAMS = TABLE4_BY_LABEL["2^20"]
VARIANTS = (("aes", 2), ("aes", 4), ("chacha8", 2), ("chacha8", 4))


def test_fig13a_spcot_ablation(benchmark, once):
    # Single-DIMM execution isolates the algorithmic effect (the paper's
    # ablation hardware point).
    config = dataclasses.replace(IRONMAN_1MB, spcot_all_dimms=False)

    def run():
        rows = []
        base = None
        for kind, arity in VARIANTS:
            res = spcot_execution(config, PARAMS, arity=arity, prg_kind=kind)
            seconds = res.seconds(config.freq_hz)
            if base is None:
                base = seconds
            rows.append((kind, arity, seconds, base / seconds))
        return rows

    rows = once(benchmark, run)
    print()
    print_table(
        ["PRG", "arity", "SPCOT latency", "speedup", "paper"],
        [
            [kind, m, f"{sec * 1e3:.2f} ms", f"{sp:.2f}x", f"{FIG13A_SPEEDUPS[(kind, m)]:.1f}x"]
            for kind, m, sec, sp in rows
        ],
        title="Figure 13(a): m-ary tree x PRG ablation (single DIMM)",
    )
    measured = {(kind, m): sp for kind, m, _, sp in rows}
    for key, paper in FIG13A_SPEEDUPS.items():
        assert measured[key] == pytest.approx(paper, rel=0.1)
    benchmark.extra_info["combined_speedup"] = measured[("chacha8", 4)]


def test_fig13b_spcot_vs_lpn(benchmark, once):
    def run():
        rows = []
        for ranks in (2, 4, 8, 16):
            config = dataclasses.replace(
                IRONMAN_1MB.with_ranks(ranks), spcot_all_dimms=False
            )
            accel = IronmanAccelerator(config)
            lpn_s = accel.execution_time(PARAMS).lpn_seconds
            spcot = {
                (kind, m): spcot_execution(config, PARAMS, arity=m, prg_kind=kind).seconds(
                    config.freq_hz
                )
                for kind, m in VARIANTS
            }
            rows.append((ranks, lpn_s, spcot))
        return rows

    rows = once(benchmark, run)
    print()
    print_table(
        ["ranks", "LPN", "2-ary AES", "4-ary AES", "2-ary ChaCha", "4-ary ChaCha"],
        [
            [
                ranks,
                f"{lpn * 1e3:.2f} ms",
                f"{sp[('aes', 2)] * 1e3:.2f} ms",
                f"{sp[('aes', 4)] * 1e3:.2f} ms",
                f"{sp[('chacha8', 2)] * 1e3:.2f} ms",
                f"{sp[('chacha8', 4)] * 1e3:.2f} ms",
            ]
            for ranks, lpn, sp in rows
        ],
        title="Figure 13(b): SPCOT vs LPN latency (2^20 set)",
    )
    # Paper claim: 4-ary ChaCha SPCOT stays below LPN at every config,
    # so the overlapped execution remains LPN-bound.
    for ranks, lpn, sp in rows:
        assert sp[("chacha8", 4)] < lpn
    # The 2-ary AES baseline erodes the overlap as ranks scale: its
    # share of the LPN budget grows monotonically (the paper's stronger
    # claim -- exceeding LPN at every config -- reproduces only as this
    # trend in our model; see EXPERIMENTS.md).
    shares = [sp[("aes", 2)] / lpn for _, lpn, sp in rows]
    assert all(b > a for a, b in zip(shares, shares[1:]))
    assert shares[-1] > 6 * shares[0] * 0.9  # ~linear in rank count
    benchmark.extra_info["aes2_share_at_16_ranks"] = shares[-1]
