"""Pipelined vs. all-at-once preprocessing: time-to-first-layer-online.

All-at-once prefill makes first-token latency pay the WHOLE
preprocessing bill before the first online opening: every layer's
matrix triples, comparison COTs, bit triples and B2A material must be
pooled up front.  The pipelined planner
(:meth:`repro.ppml.plan.PreprocessingPlan.prefill_pipelined`) instead
schedules production layer by layer and lets layer i's online rounds
run while layer i+1's correlations are produced underneath -- the
software analogue of Ironman's Fig. 8 schedule overlap.  This
benchmark runs the same quantized 3-block MLP (matmul+rescale -> ReLU,
twice, then a final matmul) both ways on fresh service pairs and
measures:

* **time-to-first-layer-online** -- wall time from preprocessing start
  until the first layer's online phase may begin (the full prefill for
  all-at-once; layer 0's production for pipelined);
* **end-to-end latency** -- preprocessing start to online result;
* plan exactness (draws == plan) and pipelined stall-freedom.

Headline: pipelined time-to-first-layer-online must be at least 2x
better, end-to-end no worse.  Results go to ``BENCH_pipeline.json`` at
the repo root.

Run under pytest:   pytest benchmarks/bench_pipeline.py --benchmark-only -s
Run standalone:     PYTHONPATH=src python benchmarks/bench_pipeline.py
Smoke (CI):         PYTHONPATH=src python benchmarks/bench_pipeline.py --smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np
from bench_io import add_bench_args, write_payload, write_trace

from repro.ferret.config import FerretConfig
from repro.lpn.params import LpnParams
from repro.mpc.matmul import matmul_rescale_via_service, matmul_via_service
from repro.mpc.relu import relu_via_service
from repro.mpc.sharing import ArithmeticShares, from_signed, share_arith_nd
from repro.mpc.triples import ring_mask_u64
from repro.mpc.truncation import FixedPointConfig
from repro.ot.channel import LocalChannel, run_concurrently
from repro.ppml.layers import Activation, Graph, Linear, Rescale
from repro.ppml.plan import plan_graph
from repro.runtime import CorrelationService, MuxChannel, ServiceTuning

PARAMS = LpnParams("bench-pipe", 1 << 14, 512, 512, 32, 0.0)
RING_BITS = 16
FX = FixedPointConfig(bits=RING_BITS, frac_bits=4, mag_bits=9)
#: The benchmarked MLP: (M x K) @ (K x H1) -> trunc -> ReLU
#:                        @ (H1 x H2) -> trunc -> ReLU -> @ (H2 x OUT).
SHAPE = (8, 32, 32, 48, 16)
#: Big enough that derived production (not the first extend) dominates
#: the smoke prefill, so the regression gate's healthy ttfo_speedup
#: separates cleanly from the ~1.0x a dead (non-overlapping) pipeline
#: produces.
SMOKE_SHAPE = (4, 16, 16, 24, 8)
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_pipeline.json"
MASK = ring_mask_u64(RING_BITS)
#: Plan-layer index whose correlations the first online block draws
#: (linear + rescale), and the wait index of every later block.
FIRST_BLOCK_LAYER = 1
BLOCK_WAITS = (1, 2, 4, 5, 6)


def build_model(shape) -> Graph:
    m, k, h1, h2, out = shape
    g = Graph("PipeMLP", (m, k))
    g.add(Linear(h1))
    g.add(Rescale())
    g.add(Activation("relu"))
    g.add(Linear(h2))
    g.add(Rescale())
    g.add(Activation("relu"))
    g.add(Linear(out))
    return g


def start_services():
    # Zero steady-state triple watermarks: production is driven purely
    # by the plan (prefill watermarks / pipelined produce targets), so
    # no background refill competes with the planned consumer draws for
    # raw COT stock and the zero-stall assertion is deterministic.
    tuning = ServiceTuning(
        ring_bits=RING_BITS,
        triple_low=0, triple_high=0, triple_chunk=1024,
        rtri_chunk=256,
        enable_rots=False,
        take_timeout_s=600.0,
    )
    cfg = FerretConfig(params=PARAMS, arity=4, prg_kind="chacha8")
    base0, base1 = LocalChannel.pair(timeout=600.0)
    mux0 = MuxChannel(base0, timeout=600.0)
    mux1 = MuxChannel(base1, timeout=600.0)
    svc0 = CorrelationService(0, mux0, cfg, tuning, seed=0xF1F).start()
    svc1 = CorrelationService(1, mux1, cfg, tuning, seed=0xF1F).start()
    svc0.wait_ready(600.0)
    svc1.wait_ready(600.0)
    return svc0, svc1, mux0, mux1


def make_shares(shape, rng):
    m, k, h1, h2, out = shape
    x = rng.integers(-8, 8, (m, k))
    w1 = rng.integers(-3, 3, (k, h1))
    w2 = rng.integers(-3, 3, (h1, h2))
    w3 = rng.integers(-3, 3, (h2, out))
    shares = {
        key: share_arith_nd(from_signed(mat, RING_BITS), rng, bits=RING_BITS)
        for key, mat in (("x", x), ("w1", w1), ("w2", w2), ("w3", w3))
    }
    h = np.maximum((x @ w1) >> FX.frac_bits, 0)
    h = np.maximum((h @ w2) >> FX.frac_bits, 0)
    expect = ((h @ w3).astype(np.int64) & int(MASK)).astype(np.uint64)
    return shares, expect


def online_block_fn(svc, party, shape, shares, pipe=None):
    """One party's online phase; waits on the pipeline when given one."""
    m, k, h1, h2, out = shape

    def wait(i):
        if pipe is not None:
            pipe.wait_layer(i)

    def run():
        session = svc.session("pipe-mlp")
        tr = svc.tracer  # NULL_TRACER unless a --trace-out run attached one
        rng = np.random.default_rng(90 + party)
        wait(BLOCK_WAITS[0])
        with tr.span("online.layer", cat="online", layer=BLOCK_WAITS[0], op="matmul"):
            h = matmul_rescale_via_service(
                session, shares["x"][party], shares["w1"][party], FX,
                mode="exact", rng=rng,
            )
        wait(BLOCK_WAITS[1])
        with tr.span("online.layer", cat="online", layer=BLOCK_WAITS[1], op="relu"):
            r, _ = relu_via_service(
                session, ArithmeticShares(h.reshape(-1), RING_BITS), rng
            )
            h = r.values.astype(np.uint64).reshape(m, h1)
        wait(BLOCK_WAITS[2])
        with tr.span("online.layer", cat="online", layer=BLOCK_WAITS[2], op="matmul"):
            h = matmul_rescale_via_service(
                session, h, shares["w2"][party], FX, mode="exact", rng=rng
            )
        wait(BLOCK_WAITS[3])
        with tr.span("online.layer", cat="online", layer=BLOCK_WAITS[3], op="relu"):
            r, _ = relu_via_service(
                session, ArithmeticShares(h.reshape(-1), RING_BITS), rng
            )
            h = r.values.astype(np.uint64).reshape(m, h2)
        wait(BLOCK_WAITS[4])
        with tr.span("online.layer", cat="online", layer=BLOCK_WAITS[4], op="matmul"):
            return matmul_via_service(session, h, shares["w3"][party])

    return run


def run_scenario(shape, pipelined: bool, tracers=None) -> dict:
    """One fresh service pair; returns TTFO / end-to-end timings."""
    svc0, svc1, mux0, mux1 = start_services()
    if tracers is not None:
        svc0.set_tracer(tracers[0])
        svc1.set_tracer(tracers[1])
    plan = plan_graph(build_model(shape), bits=RING_BITS, fx=FX)
    shares, expect = make_shares(shape, np.random.default_rng(0xBA))
    draws_before = svc0.session_draw_counts()
    stall_before = {k: s["stalled_draws"] for k, s in svc0.pool_stats().items()}

    t0 = time.perf_counter()
    if pipelined:
        pipe0 = plan.prefill_pipelined(svc0, timeout=600.0)
        pipe1 = plan.prefill_pipelined(svc1, timeout=600.0)
        z0, z1 = run_concurrently(
            online_block_fn(svc0, 0, shape, shares, pipe0),
            online_block_fn(svc1, 1, shape, shares, pipe1),
            timeout=600.0,
        )
        e2e_s = time.perf_counter() - t0
        pipe0.finish(), pipe1.finish()
        ttfo_s = pipe0.ready_elapsed(FIRST_BLOCK_LAYER)
        preprocessing_s = pipe0.ready_elapsed(plan_layers(plan) - 1)
    else:
        run_concurrently(
            lambda: plan.prefill(svc0, timeout=600.0, one_shot=True),
            lambda: plan.prefill(svc1, timeout=600.0, one_shot=True),
            timeout=600.0,
        )
        ttfo_s = preprocessing_s = time.perf_counter() - t0
        z0, z1 = run_concurrently(
            online_block_fn(svc0, 0, shape, shares),
            online_block_fn(svc1, 1, shape, shares),
            timeout=600.0,
        )
        e2e_s = time.perf_counter() - t0
    assert np.array_equal((z0 + z1) & MASK, expect), "online inference wrong"

    # Plan exactness holds in both modes; the pipelined online phase
    # additionally never stalled a planned pool (zero production waits
    # after the first layer's gate).
    for kind, count in plan.pool_targets().items():
        drawn = svc0.session_draw_counts().get(kind, 0) - draws_before.get(kind, 0)
        assert drawn == count, f"plan mismatch for {kind}: drew {drawn}, planned {count}"
    stall_after = {k: s["stalled_draws"] for k, s in svc0.pool_stats().items()}
    stalls = sum(
        stall_after[kind] - stall_before.get(kind, 0)
        for kind in plan.pool_targets()
    )
    assert stalls == 0, f"{stalls} planned-pool stalls"

    svc0.stop(), svc1.stop()
    mux0.close(), mux1.close()
    return {
        "mode": "pipelined" if pipelined else "all_at_once",
        "ttfo_s": ttfo_s,
        "preprocessing_s": preprocessing_s,
        "online_overlap_s": e2e_s - ttfo_s,
        "e2e_s": e2e_s,
        "planned_cots": plan.demand.total_cots(RING_BITS),
        "planned_stalls": stalls,
        "extends": dict(svc0.extends),
    }


def plan_layers(plan) -> int:
    return len(plan.per_layer)


def run_all(shape, tracers=None) -> list:
    # Tracers (when recording a timeline) attach to the pipelined scenario
    # only -- that is the run whose prefill/online overlap the trace shows.
    return [
        run_scenario(shape, pipelined=False),
        run_scenario(shape, pipelined=True, tracers=tracers),
    ]


def report(rows, shape) -> None:
    from repro.utils.tables import print_table

    m, k, h1, h2, out = shape
    print()
    print_table(
        ["mode", "first layer online (s)", "e2e (s)", "planned COTs", "extends"],
        [
            [
                r["mode"],
                f"{r['ttfo_s']:.2f}",
                f"{r['e2e_s']:.2f}",
                f"{r['planned_cots']:,}",
                f"fwd={r['extends']['fwd']} rev={r['extends']['rev']}",
            ]
            for r in rows
        ],
        title=(
            f"Pipelined preprocessing, MLP ({m},{k})->({h1})->({h2})->({out}), "
            f"n={PARAMS.n}"
        ),
    )
    allat, pipe = rows
    print(
        f"\ntime-to-first-layer-online {allat['ttfo_s']:.2f}s all-at-once -> "
        f"{pipe['ttfo_s']:.2f}s pipelined "
        f"({allat['ttfo_s'] / pipe['ttfo_s']:.1f}x better), "
        f"e2e {allat['e2e_s']:.2f}s -> {pipe['e2e_s']:.2f}s"
    )


def check(rows) -> None:
    """Acceptance: TTFO at least 2x better, end-to-end no worse."""
    allat, pipe = rows
    assert allat["ttfo_s"] >= 2.0 * pipe["ttfo_s"], (
        f"pipelined TTFO ({pipe['ttfo_s']:.2f}s) not 2x better than "
        f"all-at-once ({allat['ttfo_s']:.2f}s)"
    )
    assert pipe["e2e_s"] <= 1.10 * allat["e2e_s"], (
        f"pipelined e2e ({pipe['e2e_s']:.2f}s) worse than all-at-once "
        f"({allat['e2e_s']:.2f}s)"
    )


def payload(rows, shape) -> dict:
    allat, pipe = rows
    return {
        "bench": "pipeline",
        "config": {
            "n": PARAMS.n,
            "k": PARAMS.k,
            "t": PARAMS.t,
            "ring_bits": RING_BITS,
            "frac_bits": FX.frac_bits,
            "mlp_shape": list(shape),
            "machine": platform.machine(),
        },
        "scenarios": rows,
        "ttfo_speedup": allat["ttfo_s"] / pipe["ttfo_s"],
        "e2e_ratio_pipelined_vs_all_at_once": pipe["e2e_s"] / allat["e2e_s"],
    }


def write_json(rows, shape, path: Path = JSON_PATH) -> None:
    path.write_text(json.dumps(payload(rows, shape), indent=2) + "\n")
    print(f"wrote {path}")


def test_bench_pipeline(benchmark, once):
    rows = once(benchmark, lambda: run_all(SHAPE))
    report(rows, SHAPE)
    check(rows)
    write_json(rows, SHAPE)
    benchmark.extra_info["ttfo_speedup"] = rows[0]["ttfo_s"] / rows[1]["ttfo_s"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    add_bench_args(
        parser,
        smoke_help="tiny MLP that skips the perf assertion and does not "
        "touch the committed JSON",
        trace=True,
    )
    args = parser.parse_args(argv)
    shape = SMOKE_SHAPE if args.smoke else SHAPE
    tracers = None
    if args.trace_out is not None:
        from repro.obs import Tracer

        tracers = [Tracer(party=0), Tracer(party=1)]
    rows = run_all(shape, tracers=tracers)
    report(rows, shape)
    if args.trace_out is not None:
        write_trace(args.trace_out, tracers)
    if args.json_out is not None:
        write_payload(args.json_out, payload(rows, shape))
    if args.smoke:
        print("smoke OK")
        return 0
    check(rows)
    write_json(rows, shape)
    return 0


if __name__ == "__main__":
    sys.exit(main())
