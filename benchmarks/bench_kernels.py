"""Wall-clock microbenchmarks of the functional protocol kernels.

Unlike the figure/table benches (which drive the *hardware models*),
these measure the actual Python/numpy implementation: the batch
ciphers, GGM expansion, LPN encoding, and a full scaled-down OTE
iteration.  They guard against performance regressions in the library
itself.
"""

import numpy as np
import pytest

from repro.crypto import blocks
from repro.crypto.aes import AES128
from repro.crypto.chacha import keystream
from repro.crypto.prg import AesTreePrg, ChaChaTreePrg
from repro.ferret.config import FerretConfig
from repro.ferret.protocol import ferret_pair
from repro.lpn.encode import encode_blocks
from repro.lpn.matrix import generate_matrix
from repro.lpn.sorting import sort_indices
from repro.ot.cot import verify_cot
from repro.spcot.ggm import expand_full

RNG = np.random.default_rng(99)
BATCH = blocks.random_blocks(1 << 14, RNG)


def test_kernel_aes_batch(benchmark):
    cipher = AES128(b"bench-key-16byte")
    out = benchmark(cipher.encrypt_blocks, BATCH)
    assert out.shape == BATCH.shape


def test_kernel_chacha8_keystream(benchmark):
    out = benchmark(keystream, b"k" * 32, b"n" * 12, 1 << 20, 8)
    assert len(out) == 1 << 20


def test_kernel_ggm_expand_chacha_4ary(benchmark):
    prg = ChaChaTreePrg(4)
    seed = blocks.random_blocks(1, RNG)
    levels = benchmark(expand_full, prg, seed, 7)  # 16384 leaves
    assert levels[-1].shape[0] == 4**7


def test_kernel_ggm_expand_aes_2ary(benchmark):
    prg = AesTreePrg(2)
    seed = blocks.random_blocks(1, RNG)
    levels = benchmark(expand_full, prg, seed, 12)  # 4096 leaves
    assert levels[-1].shape[0] == 2**12


def test_kernel_lpn_encode(benchmark):
    matrix = generate_matrix(1 << 16, 1 << 12, seed=3)
    vec = blocks.random_blocks(1 << 12, RNG)
    addend = blocks.random_blocks(1 << 16, RNG)
    out = benchmark(encode_blocks, matrix, vec, addend)
    assert out.shape == addend.shape


def test_kernel_index_sorting(benchmark):
    matrix = generate_matrix(1 << 14, 1 << 12, seed=4)
    layout = benchmark(sort_indices, matrix, 256)
    assert layout.n_accesses == matrix.n * matrix.d


@pytest.mark.parametrize("arity,prg", [(2, "aes"), (4, "chacha8")])
def test_kernel_ote_iteration(benchmark, arity, prg):
    """One full scaled OTE iteration (setup amortized out)."""
    config = FerretConfig.small(scale=1024, arity=arity, prg_kind=prg)

    def run():
        return ferret_pair(config, rounds=1, seed=8)

    s_out, r_out, _, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    assert verify_cot(s_out[0], r_out[0])
