"""Amortized COT cost under the correlation provisioning runtime.

The paper's Figure 1(b) argument: OT extension has a fixed Init cost
(PKC base OTs) that amortizes across extends.  The runtime subsystem
takes the next step -- ONE service pair amortizes that Init across any
number of concurrent consumer *sessions* sharing the link through the
mux.  This benchmark measures, for 1 / 4 / 16 concurrent sessions:

* amortized per-COT cost (setup + serve wall over total COTs drawn) --
  must *improve* as session count grows;
* aggregate serve throughput (COTs/s across all sessions);
* pool behaviour (hit rate, stall time) and per-tag link attribution.

Headline numbers land in ``BENCH_runtime_service.json`` at the repo
root (committed, so future PRs have a trajectory to compare against).

Run under pytest:   pytest benchmarks/bench_runtime_service.py --benchmark-only -s
Run standalone:     PYTHONPATH=src python benchmarks/bench_runtime_service.py
Smoke (CI):         PYTHONPATH=src python benchmarks/bench_runtime_service.py --smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from pathlib import Path

from bench_io import add_bench_args, write_payload

from repro.ferret.config import FerretConfig
from repro.lpn.params import LpnParams
from repro.ot.channel import LocalChannel
from repro.ot.cot import verify_cot
from repro.runtime import CorrelationService, MuxChannel, ServiceTuning
from repro.utils.tables import print_table

#: Forward-direction COT provisioning at a 2^14 operating point.
PARAMS = LpnParams("bench-svc", 1 << 14, 512, 512, 32, 0.0)
SESSION_COUNTS = (1, 4, 16)
DRAW_PER_SESSION = 5000
CHUNK = 512
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_runtime_service.json"


def make_config() -> FerretConfig:
    return FerretConfig(params=PARAMS, arity=4, prg_kind="chacha8")


def run_scenario(n_sessions: int, draw_per_session: int, chunk: int) -> dict:
    """One service pair serving n concurrent sessions; returns metrics."""
    cfg = make_config()
    tuning = ServiceTuning(
        enable_reverse=False,
        enable_triples=False,
        enable_rots=False,
        cot_low=max(1, cfg.net_output // 4),
        cot_high=cfg.net_output,
        take_timeout_s=600.0,
    )
    base_a, base_b = LocalChannel.pair(timeout=600.0)
    mux0, mux1 = MuxChannel(base_a, timeout=600.0), MuxChannel(base_b, timeout=600.0)
    svc0 = CorrelationService(0, mux0, cfg, tuning, seed=0xBEC).start()
    svc1 = CorrelationService(1, mux1, cfg, tuning, seed=0xBEC).start()

    t0 = time.perf_counter()
    svc0.wait_ready(600.0)
    svc1.wait_ready(600.0)
    setup_s = time.perf_counter() - t0

    results = {}
    errors = []

    def consumer(party, svc, idx):
        try:
            session = svc.session(f"bench-{idx}")
            drawn = []
            remaining = draw_per_session
            while remaining:
                n = min(chunk, remaining)
                if party == 0:
                    drawn.append(session.draw_sender_cots(n)[0])
                else:
                    drawn.append(session.draw_receiver_cots(n)[0])
                remaining -= n
            results[(party, idx)] = drawn
        except BaseException as exc:  # noqa: BLE001
            errors.append((party, idx, exc))

    threads = []
    for idx in range(n_sessions):
        threads.append(threading.Thread(target=consumer, args=(0, svc0, idx)))
        threads.append(threading.Thread(target=consumer, args=(1, svc1, idx)))
    t1 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(600.0)
    serve_s = time.perf_counter() - t1
    hung = [t.name for t in threads if t.is_alive()]
    assert not hung, f"sessions hung past the join timeout: {hung}"
    assert not errors, f"sessions failed: {errors}"

    # Spot-check correctness: first chunk of every session verifies.
    for idx in range(n_sessions):
        assert verify_cot(results[(0, idx)][0], results[(1, idx)][0])

    svc0.stop()
    svc1.stop()
    total_cots = n_sessions * draw_per_session
    pool = svc0.pool_stats()["cot/fwd"]
    by_tag = mux0.stats_by_tag()
    prov_bytes = sum(s.total_bytes for t, s in by_tag.items() if t.startswith("prov/"))
    sess_bytes = sum(s.total_bytes for t, s in by_tag.items() if t.startswith("sess/"))
    mux0.close(), mux1.close()
    return {
        "sessions": n_sessions,
        "cots_drawn": total_cots,
        "setup_s": setup_s,
        "serve_s": serve_s,
        "amortized_us_per_cot": 1e6 * (setup_s + serve_s) / total_cots,
        "throughput_cots_per_s": total_cots / serve_s,
        "extends": svc0.extends["fwd"],
        "pool_hit_rate": pool["hit_rate"],
        "pool_stall_s": pool["stall_time_s"],
        "prov_bytes": prov_bytes,
        "sess_bytes": sess_bytes,
    }


def run_all(session_counts, draw_per_session, chunk) -> list:
    return [run_scenario(s, draw_per_session, chunk) for s in session_counts]


def report(rows: list) -> None:
    print()
    print_table(
        ["sessions", "COTs", "setup (s)", "serve (s)", "us/COT", "COTs/s",
         "extends", "hit rate"],
        [
            [
                str(r["sessions"]),
                f"{r['cots_drawn']:,}",
                f"{r['setup_s']:.2f}",
                f"{r['serve_s']:.2f}",
                f"{r['amortized_us_per_cot']:.1f}",
                f"{r['throughput_cots_per_s']:,.0f}",
                str(r["extends"]),
                f"{r['pool_hit_rate']:.2f}",
            ]
            for r in rows
        ],
        title=(
            f"Provisioning service, n={PARAMS.n}, "
            f"{rows[0]['cots_drawn'] // rows[0]['sessions']} COTs/session"
        ),
    )
    base = rows[0]["amortized_us_per_cot"]
    best = rows[-1]["amortized_us_per_cot"]
    print(
        f"\namortized per-COT cost {base:.1f} -> {best:.1f} us "
        f"({base / best:.1f}x better at {rows[-1]['sessions']} sessions)"
    )


def payload(rows: list) -> dict:
    return {
        "bench": "runtime_service",
        "config": {
            "n": PARAMS.n,
            "k": PARAMS.k,
            "t": PARAMS.t,
            "arity": 4,
            "prg_kind": "chacha8",
            "draw_per_session": DRAW_PER_SESSION,
            "chunk": CHUNK,
            "machine": platform.machine(),
        },
        "scenarios": rows,
        "amortization_gain": rows[0]["amortized_us_per_cot"]
        / rows[-1]["amortized_us_per_cot"],
    }


def write_json(rows: list, path: Path = JSON_PATH) -> None:
    path.write_text(json.dumps(payload(rows), indent=2) + "\n")
    print(f"wrote {path}")


def check(rows: list) -> None:
    """Acceptance: amortized per-COT cost improves as sessions grow."""
    costs = [r["amortized_us_per_cot"] for r in rows]
    for earlier, later in zip(costs, costs[1:]):
        assert later < earlier, f"amortized cost regressed: {costs}"


def test_bench_runtime_service(benchmark, once):
    rows = once(benchmark, lambda: run_all(SESSION_COUNTS, DRAW_PER_SESSION, CHUNK))
    report(rows)
    check(rows)
    write_json(rows)
    benchmark.extra_info["amortization_gain"] = (
        rows[0]["amortized_us_per_cot"] / rows[-1]["amortized_us_per_cot"]
    )
    benchmark.extra_info["throughput_16_sessions"] = rows[-1]["throughput_cots_per_s"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    add_bench_args(
        parser,
        smoke_help="tiny run (1 and 4 sessions, small draws) that skips "
        "the perf assertion and does not touch the committed JSON",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        rows = run_all((1, 4), 600, 200)
        report(rows)
        if args.json_out is not None:
            write_payload(args.json_out, payload(rows))
        print("smoke OK")
        return 0
    rows = run_all(SESSION_COUNTS, DRAW_PER_SESSION, CHUNK)
    report(rows)
    check(rows)
    write_json(rows)
    if args.json_out is not None:
        write_payload(args.json_out, payload(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
