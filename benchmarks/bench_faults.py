"""Chaos harness: the pipelined quantized MLP under injected faults.

The fault-tolerance stack (``FaultyChannel`` -> ``ReconnectingChannel``
-> ``MuxChannel`` -> ``CorrelationService``) promises that transport
faults inside the retry budget are *invisible* to the protocol: same
bits, same pool draws, bounded extra latency.  This benchmark proves it
end to end.  Both scenarios run the same pipelined quantized 3-block
MLP from ``bench_pipeline`` over real sockets with the full reconnect
stack; the only difference is the fault schedule armed at prefill
start:

* **clean** -- an empty schedule (it still counts operations, which
  calibrates the chaos window);
* **chaos** -- a seeded :meth:`FaultSchedule.chaos` on each side: at
  least one mid-prefill disconnect, one truncated frame (mid-frame EOF
  at the peer's framing layer), receive-timeout bursts, and delays.

Both runs must produce the bit-exact online result and draw exactly
the planned pool quantities; the chaos run must additionally heal
without ever degrading the service (transparent recovery) and consume
every scheduled fault.  Recovery telemetry -- redials, outage
latencies, replayed journal frames -- comes straight from the
reconnect layer's counters.

Headline: **recovery efficiency** = clean e2e / chaos e2e.  A healthy
stack stays near 1.0 (faults cost redial handshakes, not restarts); a
broken resume path collapses it (or hangs the run outright).  Results
go to ``BENCH_faults.json`` at the repo root.

Run standalone:     PYTHONPATH=src python benchmarks/bench_faults.py
Smoke (CI):         PYTHONPATH=src python benchmarks/bench_faults.py --smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from pathlib import Path

import numpy as np
from bench_io import add_bench_args, write_payload, write_trace
from bench_pipeline import (
    FIRST_BLOCK_LAYER,
    FX,
    MASK,
    PARAMS,
    RING_BITS,
    SHAPE,
    SMOKE_SHAPE,
    build_model,
    make_shares,
    online_block_fn,
)

from repro.ferret.config import FerretConfig
from repro.ot.channel import SocketChannel, run_concurrently
from repro.ot.faults import FaultSchedule, FaultStats, FaultyChannel
from repro.ot.reconnect import ReconnectingChannel
from repro.ot.retry import RetryPolicy
from repro.ppml.plan import plan_graph
from repro.runtime import CorrelationService, MuxChannel, ServiceTuning

JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_faults.json"
CHAOS_SEED = 0xFA17
#: Op-index range (relative to arming, i.e. prefill start) the faults
#: land in.  Chosen well inside the prefill traffic at each scale so
#: disconnects strike mid-prefill and every scheduled event fires.
WINDOW = (30, 400)
SMOKE_WINDOW = (20, 150)
#: Redial budget per outage: generous attempts, fast capped backoff --
#: an injected fault should cost milliseconds, not a paper-scale stall.
POLICY = RetryPolicy(
    attempts=10, backoff_s=0.02, backoff_factor=2.0, max_backoff_s=0.5,
    deadline_s=60.0,
)


class FaultySide:
    """One endpoint's dial factory: wraps every fresh transport in a
    :class:`FaultyChannel` sharing the side's current schedule, so op
    counters span the endpoint's whole lifetime across redials.  The
    benign startup schedule is swapped for the chaos one (on the live
    transport too) by :meth:`arm` -- faults are counted from prefill
    start, not from service bring-up."""

    def __init__(self, make_transport):
        self._make_transport = make_transport
        self.schedule = FaultSchedule(())
        self.channels: list = []

    def dial(self):
        chan = FaultyChannel(self._make_transport(), self.schedule)
        self.channels.append(chan)
        return chan

    def arm(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        for chan in self.channels:
            chan.schedule = schedule

    def injected(self) -> dict:
        total = FaultStats()
        for chan in self.channels:
            for key, val in chan.fault_stats.as_dict().items():
                setattr(total, key, getattr(total, key) + val)
        return total.as_dict()


def build_reconnecting_pair(dial_server, dial_client):
    """The resume handshake is symmetric send-then-recv: both
    constructors must run concurrently."""
    out, errs = {}, {}

    def build(name, dial):
        try:
            out[name] = ReconnectingChannel(dial, policy=POLICY)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errs[name] = exc

    threads = [
        threading.Thread(target=build, args=("server", dial_server)),
        threading.Thread(target=build, args=("client", dial_client)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60.0)
    if errs:
        raise RuntimeError(f"initial dial failed: {errs}")
    return out["server"], out["client"]


def start_stack():
    """The full deployment shape over real sockets: the client redials
    connect(), the server re-accepts on a listener kept open across
    epochs, and each service's resume state rides the handshake."""
    tuning = ServiceTuning(
        ring_bits=RING_BITS,
        triple_low=0, triple_high=0, triple_chunk=1024,
        rtri_chunk=256,
        enable_rots=False,
        take_timeout_s=600.0,
    )
    cfg = FerretConfig(params=PARAMS, arity=4, prg_kind="chacha8")
    listener = SocketChannel.listen()
    port = listener.port
    server = FaultySide(
        lambda: listener.accept(accept_timeout=60.0, keep_open=True)
    )
    client = FaultySide(
        lambda: SocketChannel.connect("127.0.0.1", port, timeout=10.0)
    )
    rc0, rc1 = build_reconnecting_pair(server.dial, client.dial)
    mux0 = MuxChannel(rc0, timeout=600.0)
    mux1 = MuxChannel(rc1, timeout=600.0)
    svc0 = CorrelationService(0, mux0, cfg, tuning, seed=0xF1F).start()
    svc1 = CorrelationService(1, mux1, cfg, tuning, seed=0xF1F).start()
    rc0.state_provider = svc0.resume_state
    rc1.state_provider = svc1.resume_state
    svc0.wait_ready(600.0)
    svc1.wait_ready(600.0)
    return svc0, svc1, mux0, mux1, rc0, rc1, server, client, listener


def chaos_schedules(window):
    """Server side gets the full menagerie (the required disconnect and
    truncated frame included); the client side contributes its own
    timeout burst and delays so both directions exercise recovery."""
    server = FaultSchedule.chaos(CHAOS_SEED, window=window)
    client = FaultSchedule.chaos(
        CHAOS_SEED + 1, disconnects=0, truncates=0,
        timeout_bursts=1, delays=2, window=window,
    )
    return server, client


def run_scenario(shape, chaos: bool, window, tracers=None) -> dict:
    svc0, svc1, mux0, mux1, rc0, rc1, server, client, listener = start_stack()
    try:
        if tracers is not None:
            # One call per party wires the service, its pools, the mux,
            # and the reconnect layer underneath (redials/resync show up
            # on the same timeline as prefill/online spans).
            svc0.set_tracer(tracers[0])
            svc1.set_tracer(tracers[1])
        plan = plan_graph(build_model(shape), bits=RING_BITS, fx=FX)
        shares, expect = make_shares(shape, np.random.default_rng(0xBA))
        draws_before = svc0.session_draw_counts()

        if chaos:
            sched_server, sched_client = chaos_schedules(window)
        else:
            # Empty schedules still count ops: the clean run calibrates
            # the chaos window against real prefill traffic.
            sched_server, sched_client = FaultSchedule(()), FaultSchedule(())
        server.arm(sched_server)
        client.arm(sched_client)

        t0 = time.perf_counter()
        pipe0 = plan.prefill_pipelined(svc0, timeout=600.0)
        pipe1 = plan.prefill_pipelined(svc1, timeout=600.0)
        z0, z1 = run_concurrently(
            online_block_fn(svc0, 0, shape, shares, pipe0),
            online_block_fn(svc1, 1, shape, shares, pipe1),
            timeout=600.0,
        )
        e2e_s = time.perf_counter() - t0
        pipe0.finish(), pipe1.finish()
        ttfo_s = pipe0.ready_elapsed(FIRST_BLOCK_LAYER)

        # Bit-exactness and plan exactness survive the fault schedule.
        assert np.array_equal((z0 + z1) & MASK, expect), (
            "online inference wrong" + (" under faults" if chaos else "")
        )
        for kind, count in plan.pool_targets().items():
            drawn = svc0.session_draw_counts().get(kind, 0) - draws_before.get(kind, 0)
            assert drawn == count, (
                f"plan mismatch for {kind}: drew {drawn}, planned {count}"
            )

        stats0, stats1 = svc0.retry_stats(), svc1.retry_stats()
        # Transparent recovery: the reconnect layer healed every fault
        # below the service, so neither party ever degraded.
        assert stats0["degraded_events"] == 0, stats0
        assert stats1["degraded_events"] == 0, stats1
        if chaos:
            assert sched_server.remaining() == 0, (
                f"{sched_server.remaining()} server faults never fired; "
                f"ops={sched_server.counts} -- widen/lower the window"
            )
            assert sched_client.remaining() == 0, (
                f"{sched_client.remaining()} client faults never fired; "
                f"ops={sched_client.counts}"
            )
            assert rc0.reconnects + rc1.reconnects >= 1, "no redial happened"

        events = list(rc0.reconnect_events) + list(rc1.reconnect_events)
        row = {
            "mode": "chaos" if chaos else "clean",
            "e2e_s": e2e_s,
            "ttfo_s": ttfo_s,
            "reconnects": rc0.reconnects + rc1.reconnects,
            "epochs": {"server": rc0.epoch, "client": rc1.epoch},
            "outage_s_total": sum(ev["outage_s"] for ev in events),
            "reconnect_events": events,
            "replayed_frames": rc0.replayed_frames + rc1.replayed_frames,
            "replayed_bytes": rc0.replayed_bytes + rc1.replayed_bytes,
            "injected": {
                "server": server.injected(),
                "client": client.injected(),
            },
            "armed_ops": {
                "server": dict(sched_server.counts),
                "client": dict(sched_client.counts),
            },
            "retry_stats": {"party0": stats0, "party1": stats1},
        }
    finally:
        svc0.stop(), svc1.stop()
        mux0.close(), mux1.close()
        rc0.close(), rc1.close()
        listener.close()
    return row


def run_all(shape, window, tracers=None) -> list:
    # The chaos run is the one worth a timeline: redials, replay, and
    # resync barriers interleaved with the prefill/online spans.
    return [
        run_scenario(shape, chaos=False, window=window),
        run_scenario(shape, chaos=True, window=window, tracers=tracers),
    ]


def report(rows, shape) -> None:
    from repro.utils.tables import print_table

    print()
    print_table(
        ["mode", "e2e (s)", "redials", "outage (s)", "replayed frames", "injected"],
        [
            [
                r["mode"],
                f"{r['e2e_s']:.2f}",
                str(r["reconnects"]),
                f"{r['outage_s_total']:.3f}",
                str(r["replayed_frames"]),
                ", ".join(
                    f"{k}={v}"
                    for k, v in sorted(r["injected"]["server"].items())
                    if v and k != "delayed_s"
                ) or "-",
            ]
            for r in rows
        ],
        title=f"Chaos recovery, pipelined MLP {tuple(shape)}, n={PARAMS.n}",
    )
    clean, chaos = rows
    print(
        f"\nbit-exact under faults; e2e {clean['e2e_s']:.2f}s clean -> "
        f"{chaos['e2e_s']:.2f}s chaos "
        f"(recovery efficiency {clean['e2e_s'] / chaos['e2e_s']:.2f}), "
        f"{chaos['reconnects']} redials healing in "
        f"{chaos['outage_s_total']:.3f}s total"
    )


def check(rows) -> None:
    """Acceptance: faults cost redials, not restarts -- chaos e2e stays
    within 3x of clean and every recovery actually replayed."""
    clean, chaos = rows
    assert chaos["reconnects"] >= 2, (
        f"expected the disconnect AND the truncated frame to each force "
        f"a redial, saw {chaos['reconnects']}"
    )
    assert chaos["replayed_frames"] > 0, "no journal replay despite redials"
    assert chaos["e2e_s"] <= 3.0 * clean["e2e_s"], (
        f"chaos e2e ({chaos['e2e_s']:.2f}s) more than 3x clean "
        f"({clean['e2e_s']:.2f}s): recovery is too slow"
    )


def payload(rows, shape, window) -> dict:
    clean, chaos = rows
    return {
        "bench": "faults",
        "config": {
            "n": PARAMS.n,
            "k": PARAMS.k,
            "t": PARAMS.t,
            "ring_bits": RING_BITS,
            "mlp_shape": list(shape),
            "chaos_seed": CHAOS_SEED,
            "window": list(window),
            "machine": platform.machine(),
        },
        "scenarios": rows,
        "recovery_efficiency": clean["e2e_s"] / chaos["e2e_s"],
        "recovery_latency_s": chaos["outage_s_total"],
        "replayed_frames": chaos["replayed_frames"],
        "replayed_bytes": chaos["replayed_bytes"],
    }


def write_json(rows, shape, window, path: Path = JSON_PATH) -> None:
    path.write_text(json.dumps(payload(rows, shape, window), indent=2) + "\n")
    print(f"wrote {path}")


def check_trace(counts, rows) -> None:
    """The timeline must make the chaos run legible: every redial, the
    resync barrier riding the resume handshake, and the per-layer
    prefill/online spans all identifiable by name."""
    names = counts["span_names"]
    chaos = rows[1]
    assert names.get("redial.attempt", 0) >= chaos["reconnects"], (
        f"trace shows {names.get('redial.attempt', 0)} redial attempts "
        f"but the reconnect layer counted {chaos['reconnects']}"
    )
    assert names.get("resync.barrier", 0) >= chaos["reconnects"], (
        f"every recovery replays through a resync barrier; trace has "
        f"{names.get('resync.barrier', 0)} for {chaos['reconnects']} redials"
    )
    for span in ("prefill.layer", "online.layer", "reconnect.recover"):
        assert names.get(span, 0) > 0, f"no {span} spans in the trace"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    add_bench_args(
        parser,
        smoke_help="tiny MLP and a tighter fault window; does not touch "
        "the committed JSON",
        trace=True,
    )
    args = parser.parse_args(argv)
    shape = SMOKE_SHAPE if args.smoke else SHAPE
    window = SMOKE_WINDOW if args.smoke else WINDOW
    tracers = None
    if args.trace_out is not None:
        from repro.obs import Tracer

        tracers = [Tracer(party=0), Tracer(party=1)]
    rows = run_all(shape, window, tracers=tracers)
    report(rows, shape)
    check(rows)
    if args.trace_out is not None:
        counts = write_trace(args.trace_out, tracers)
        check_trace(counts, rows)
    if args.json_out is not None:
        write_payload(args.json_out, payload(rows, shape, window))
    if args.smoke:
        print("smoke OK")
        return 0
    write_json(rows, shape, window)
    return 0


if __name__ == "__main__":
    sys.exit(main())
