"""Figure 14: memory-side cache capacity sweep.

(a) per-parameter-set normalized LPN latency and hit rate, 32KB..2MB;
(b) average hit rate and SRAM area per capacity.

The paper picks 256 KB for large parameter sets and 1 MB for small
ones; past the sweet spot, longer SRAM access latency and area cost
outweigh the shrinking hit-rate gains.
"""

from repro.lpn.params import TABLE4
from repro.nmp.config import NmpConfig
from repro.nmp.rank import simulate_rank_lpn
from repro.sim.energy import sram_area_mm2
from repro.utils.tables import print_table
from repro.utils.units import KIB

CACHE_KBS = (32, 64, 128, 256, 512, 1024, 2048)
SIM_ACCESSES = 150_000


def test_fig14_cache_sweep(benchmark, once):
    def run():
        table = {}
        for kb in CACHE_KBS:
            config = NmpConfig(cache_bytes=kb * KIB).with_ranks(16)
            for params in TABLE4:
                accesses = params.n * 10 // config.n_ranks
                res = simulate_rank_lpn(
                    config, params.k, accesses, sim_accesses=SIM_ACCESSES
                )
                table[(kb, params.label)] = res
        return table

    table = once(benchmark, run)
    print()
    for params in TABLE4:
        base = table[(32, params.label)].cycles
        rows = [
            [
                f"{kb} KB",
                f"{table[(kb, params.label)].hit_rate * 100:.1f}%",
                f"{table[(kb, params.label)].cycles / base:.3f}",
            ]
            for kb in CACHE_KBS
        ]
        print_table(
            ["cache", "hit rate", "norm. latency (vs 32KB)"],
            rows,
            title=f"Figure 14(a): output size {params.label} (k={params.k})",
        )
    avg_rows = []
    for kb in CACHE_KBS:
        avg_hit = sum(table[(kb, p.label)].hit_rate for p in TABLE4) / len(TABLE4)
        avg_rows.append([f"{kb} KB", f"{avg_hit * 100:.1f}%", f"{sram_area_mm2(kb * KIB):.3f}"])
    print_table(
        ["cache", "avg hit rate", "SRAM area mm^2"],
        avg_rows,
        title="Figure 14(b): average hit rate and cache area",
    )
    # Shape assertions: hit rate monotone in capacity; small-k sets hit more.
    for params in TABLE4:
        hits = [table[(kb, params.label)].hit_rate for kb in CACHE_KBS]
        assert hits[-1] > hits[0]
    assert (
        table[(1024, "2^20")].hit_rate > table[(1024, "2^24")].hit_rate
    )
    # Latency improves from 32KB to the sweet spot for every set.
    for params in TABLE4:
        assert table[(256, params.label)].cycles < table[(32, params.label)].cycles
    benchmark.extra_info["avg_hit_1mb"] = float(avg_rows[5][1].rstrip("%"))
