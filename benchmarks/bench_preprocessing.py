"""Warm vs. cold pools: what the preprocessing phase buys online.

Ironman's Section 5.2 deployment story is that correlations for PPML
are *preprocessing*: the accelerator mass-produces them ahead of time
and the online phase merely consumes them.  This benchmark measures
that split end to end on the runtime:

* a small MLP (two secure MatMuls + a ReLU) is planned by
  :func:`repro.ppml.plan.plan_graph` into exact correlation demand;
* **cold**: the online inference starts immediately after service
  setup -- every matrix triple, comparison COT and bit triple is
  produced on demand, stalling the critical path;
* **warm**: the plan prefills the pools first (the preprocessing
  phase, timed separately), then the identical online phase runs
  against warm pools.

Headline: warm-pool online latency must land materially below cold
start.  Results go to ``BENCH_preprocessing.json`` at the repo root.

Run under pytest:   pytest benchmarks/bench_preprocessing.py --benchmark-only -s
Run standalone:     PYTHONPATH=src python benchmarks/bench_preprocessing.py
Smoke (CI):         PYTHONPATH=src python benchmarks/bench_preprocessing.py --smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np
from bench_io import add_bench_args, write_payload

from repro.ferret.config import FerretConfig
from repro.lpn.params import LpnParams
from repro.mpc.matmul import matmul_via_service
from repro.mpc.relu import relu_via_service
from repro.mpc.sharing import ArithmeticShares, share_arith_nd
from repro.mpc.triples import ring_mask_u64
from repro.ot.channel import LocalChannel, run_concurrently
from repro.ppml.layers import Activation, Graph, Linear
from repro.ppml.plan import plan_graph
from repro.runtime import CorrelationService, MuxChannel, ServiceTuning
from repro.utils.tables import print_table

PARAMS = LpnParams("bench-pre", 1 << 14, 512, 512, 32, 0.0)
RING_BITS = 16
#: The benchmarked MLP: (M x K) @ (K x H) -> ReLU -> (M x H) @ (H x OUT).
SHAPE = (16, 64, 32, 8)
SMOKE_SHAPE = (4, 16, 8, 4)
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_preprocessing.json"
MASK = ring_mask_u64(RING_BITS)


def build_model(shape) -> Graph:
    m, k, h, out = shape
    g = Graph("BenchMLP", (m, k))
    g.add(Linear(h))
    g.add(Activation("relu"))
    g.add(Linear(out))
    return g


def make_config() -> FerretConfig:
    return FerretConfig(params=PARAMS, arity=4, prg_kind="chacha8")


def start_services():
    tuning = ServiceTuning(
        ring_bits=RING_BITS,
        triple_low=256, triple_high=2048, triple_chunk=1024,
        enable_rots=False,
        take_timeout_s=600.0,
    )
    base0, base1 = LocalChannel.pair(timeout=600.0)
    mux0 = MuxChannel(base0, timeout=600.0)
    mux1 = MuxChannel(base1, timeout=600.0)
    svc0 = CorrelationService(0, mux0, make_config(), tuning, seed=0xBEEF).start()
    svc1 = CorrelationService(1, mux1, make_config(), tuning, seed=0xBEEF).start()
    svc0.wait_ready(600.0)
    svc1.wait_ready(600.0)
    return svc0, svc1, mux0, mux1


def online_inference(svc, party, shape, shares, name):
    m, k, h, out = shape

    def run():
        session = svc.session(name)
        rng = np.random.default_rng(7 + party)
        z = matmul_via_service(session, shares["x"][party], shares["w1"][party])
        r, _ = relu_via_service(
            session, ArithmeticShares(z.reshape(-1), RING_BITS), rng
        )
        return matmul_via_service(
            session, r.values.astype(np.uint64).reshape(m, h), shares["w2"][party]
        )

    return run


def make_shares(shape, rng):
    m, k, h, out = shape
    x = rng.integers(0, 4, (m, k)).astype(np.uint64)
    w1 = rng.integers(0, 3, (k, h)).astype(np.uint64)
    w2 = rng.integers(0, 3, (h, out)).astype(np.uint64)
    shares = {
        key: share_arith_nd(mat, rng, bits=RING_BITS)
        for key, mat in (("x", x), ("w1", w1), ("w2", w2))
    }
    expect = (
        np.maximum(0, (x @ w1).astype(np.int64)).astype(np.uint64) @ w2
    ) & MASK
    return shares, expect


def run_scenario(shape, warm: bool) -> dict:
    """One fresh service pair; returns preprocessing/online timings."""
    svc0, svc1, mux0, mux1 = start_services()
    model = build_model(shape)
    plan = plan_graph(model, bits=RING_BITS)
    shares, expect = make_shares(shape, np.random.default_rng(0xA5))

    preprocessing_s = 0.0
    if warm:
        t0 = time.perf_counter()
        run_concurrently(
            lambda: plan.prefill(svc0, timeout=600.0),
            lambda: plan.prefill(svc1, timeout=600.0),
            timeout=600.0,
        )
        preprocessing_s = time.perf_counter() - t0
    draws_before = svc0.session_draw_counts()

    t1 = time.perf_counter()
    z0, z1 = run_concurrently(
        online_inference(svc0, 0, shape, shares, "bench-mlp"),
        online_inference(svc1, 1, shape, shares, "bench-mlp"),
        timeout=600.0,
    )
    online_s = time.perf_counter() - t1
    assert np.array_equal((z0 + z1) & MASK, expect), "online inference wrong"

    # The planner's demand must match the online draws exactly.
    for kind, count in plan.pool_targets().items():
        drawn = svc0.session_draw_counts().get(kind, 0) - draws_before.get(kind, 0)
        assert drawn == count, f"plan mismatch for {kind}: drew {drawn}, planned {count}"

    stats = svc0.pool_stats()
    stall_s = sum(s["stall_time_s"] for s in stats.values())
    svc0.stop(), svc1.stop()
    mux0.close(), mux1.close()
    return {
        "mode": "warm" if warm else "cold",
        "preprocessing_s": preprocessing_s,
        "online_s": online_s,
        "stall_s": stall_s,
        "planned_cots": plan.demand.total_cots(RING_BITS),
        "matrix_triples": plan.demand.matrix_triples,
        "bit_triples": plan.demand.bit_triples,
        "extends": dict(svc0.extends),
    }


def run_all(shape) -> list:
    return [run_scenario(shape, warm=False), run_scenario(shape, warm=True)]


def report(rows, shape) -> None:
    m, k, h, out = shape
    print()
    print_table(
        ["mode", "preprocessing (s)", "online (s)", "planned COTs", "extends"],
        [
            [
                r["mode"],
                f"{r['preprocessing_s']:.2f}",
                f"{r['online_s']:.2f}",
                f"{r['planned_cots']:,}",
                f"fwd={r['extends']['fwd']} rev={r['extends']['rev']}",
            ]
            for r in rows
        ],
        title=f"Preprocessing split, MLP ({m},{k})->({h})->({out}), n={PARAMS.n}",
    )
    cold, warm = rows[0]["online_s"], rows[1]["online_s"]
    print(
        f"\nonline latency {cold:.2f}s cold -> {warm:.2f}s warm "
        f"({cold / warm:.1f}x faster with prefilled pools)"
    )


def check(rows) -> None:
    """Acceptance: warm-pool online latency materially below cold start."""
    cold, warm = rows[0]["online_s"], rows[1]["online_s"]
    assert warm < 0.7 * cold, f"warm online ({warm:.2f}s) not materially below cold ({cold:.2f}s)"


def payload(rows, shape) -> dict:
    return {
        "bench": "preprocessing",
        "config": {
            "n": PARAMS.n,
            "k": PARAMS.k,
            "t": PARAMS.t,
            "ring_bits": RING_BITS,
            "mlp_shape": list(shape),
            "machine": platform.machine(),
        },
        "scenarios": rows,
        "online_speedup_warm_vs_cold": rows[0]["online_s"] / rows[1]["online_s"],
    }


def write_json(rows, path: Path = JSON_PATH, shape=SHAPE) -> None:
    path.write_text(json.dumps(payload(rows, shape), indent=2) + "\n")
    print(f"wrote {path}")


def test_bench_preprocessing(benchmark, once):
    rows = once(benchmark, lambda: run_all(SHAPE))
    report(rows, SHAPE)
    check(rows)
    write_json(rows)
    benchmark.extra_info["online_speedup"] = rows[0]["online_s"] / rows[1]["online_s"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    add_bench_args(
        parser,
        smoke_help="tiny MLP that skips the perf assertion and does not "
        "touch the committed JSON",
    )
    args = parser.parse_args(argv)
    shape = SMOKE_SHAPE if args.smoke else SHAPE
    rows = run_all(shape)
    report(rows, shape)
    if args.json_out is not None:
        write_payload(args.json_out, payload(rows, shape))
    if args.smoke:
        print("smoke OK")
        return 0
    check(rows)
    write_json(rows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
