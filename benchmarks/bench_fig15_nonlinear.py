"""Figure 15: nonlinear-operator latency with and without Ironman.

Benchmarks LayerNorm / GELU / Softmax / ReLU under EzPC-SiRNN and Bolt
cost models on BERT-Base-sized tensors: OT preprocessing (CPU vs
Ironman) plus the online phase.  The paper reports a 3.9-4.4x
reduction driven by the OT share.
"""

from repro.baselines.cpu import DEFAULT_CPU
from repro.core.calibration import FIG15_SPEEDUP_RANGE
from repro.lpn.params import TABLE4_BY_LABEL
from repro.nmp.accelerator import IronmanAccelerator
from repro.nmp.config import IRONMAN_1MB
from repro.ppml.inference import CpuOte, IronmanOte
from repro.ppml.network import LAN
from repro.ppml.nonlinear import BOLT, SIRNN
from repro.utils.tables import print_table

# Whole-model operator workloads (BERT-Base, seq 128).
OPS = (
    ("LayerNorm", "layernorm", 26 * 128 * 768),
    ("GELU", "gelu", 12 * 128 * 4 * 768),
    ("Softmax", "softmax", 12 * 12 * 128 * 128),
    ("ReLU", "relu", 12 * 128 * 4 * 768),
)
PARAMS = TABLE4_BY_LABEL["2^22"]


def _op_latency(profile, kind, elements, provider):
    cost = profile.cost_of(kind)
    ot = provider.seconds_for(elements * cost.cots)
    online = LAN.interaction_seconds(elements * cost.online_bytes, profile.rounds_per_layer)
    return ot + online


def test_fig15_nonlinear_operators(benchmark, once):
    cpu = CpuOte(PARAMS, DEFAULT_CPU)
    ours = IronmanOte(PARAMS, IronmanAccelerator(IRONMAN_1MB))

    def run():
        rows = []
        for profile in (SIRNN, BOLT):
            for name, kind, elements in OPS:
                if kind not in profile.costs:
                    continue
                base = _op_latency(profile, kind, elements, cpu)
                accel = _op_latency(profile, kind, elements, ours)
                rows.append((profile.name, name, elements, base, accel, base / accel))
        return rows

    rows = once(benchmark, run)
    print()
    print_table(
        ["framework", "operator", "elements", "baseline", "w/ Ironman", "speedup"],
        [
            [fw, op, f"{n/1e6:.2f}M", f"{b:.2f}s", f"{a:.2f}s", f"{sp:.2f}x"]
            for fw, op, n, b, a, sp in rows
        ],
        title=f"Figure 15: operator latency (paper: "
        f"{FIG15_SPEEDUP_RANGE[0]}-{FIG15_SPEEDUP_RANGE[1]}x reduction)",
    )
    speedups = [sp for *_, sp in rows]
    # Every operator must gain substantially; the mean should land in or
    # above the paper's band (our online phase is comparatively cheap).
    assert min(speedups) > 1.5
    mean = sum(speedups) / len(speedups)
    assert mean > FIG15_SPEEDUP_RANGE[0] * 0.75
    benchmark.extra_info["mean_speedup"] = mean
