"""Table 5: end-to-end PPML latency under both network settings.

The 'other computation' residual per (framework, model) is backed out
of the paper's measured LAN baselines; WAN baselines and all Ironman
rows are then genuine model predictions.
"""

from repro.core.calibration import (
    TABLE5,
    TABLE5_LAN_CNN_RANGE,
    TABLE5_LAN_TRANSFORMER_RANGE,
    TABLE5_WAN_RANGE,
)
from repro.core.ironman import IronmanSystem, table5_rows
from repro.utils.tables import print_table


def test_tab05_end_to_end(benchmark, once):
    rows = once(benchmark, lambda: table5_rows(IronmanSystem()))
    print()
    print_table(
        [
            "framework", "model",
            "WAN base", "WAN ours", "WAN spd", "(paper)",
            "LAN base", "LAN ours", "LAN spd", "(paper)",
        ],
        [
            [
                r["framework"],
                r["model"],
                f"{r['wan_base']:.1f}",
                f"{r['wan_ours']:.1f}",
                f"{r['wan_speedup']:.2f}x",
                f"{r['paper'][2]:.2f}x",
                f"{r['lan_base']:.1f}",
                f"{r['lan_ours']:.1f}",
                f"{r['lan_speedup']:.2f}x",
                f"{r['paper'][5]:.2f}x",
            ]
            for r in rows
        ],
        title="Table 5: private-inference latency (seconds)",
    )
    cnn = [r["lan_speedup"] for r in rows if r["framework"] != "Bolt"]
    tr = [r["lan_speedup"] for r in rows if r["framework"] == "Bolt"]
    wan = [r["wan_speedup"] for r in rows]
    print(
        f"LAN CNN {min(cnn):.2f}-{max(cnn):.2f}x (paper "
        f"{TABLE5_LAN_CNN_RANGE[0]}-{TABLE5_LAN_CNN_RANGE[1]}x) | "
        f"LAN Transformer {min(tr):.2f}-{max(tr):.2f}x (paper "
        f"{TABLE5_LAN_TRANSFORMER_RANGE[0]}-{TABLE5_LAN_TRANSFORMER_RANGE[1]}x) | "
        f"WAN {min(wan):.2f}-{max(wan):.2f}x (paper "
        f"{TABLE5_WAN_RANGE[0]}-{TABLE5_WAN_RANGE[1]}x)"
    )
    # Shape assertions (Section 6.5 observations).
    assert sum(tr) / len(tr) > sum(cnn) / len(cnn)  # transformers gain more
    assert all(r["wan_speedup"] < r["lan_speedup"] for r in rows)  # WAN-bound
    assert max(tr) > 2.9  # reaches the paper's transformer regime
    assert len(rows) == len(TABLE5)
    benchmark.extra_info["lan_speedup_range"] = (min(cnn + tr), max(cnn + tr))
    benchmark.extra_info["wan_speedup_range"] = (min(wan), max(wan))
