"""Secure fixed-point truncation: per-element cost, warm vs cold pools,
and measured-vs-model wire bytes.

Per-layer rescaling is the glue that lets quantized inference compose
(every product doubles the fixed-point scale until a truncation brings
it back), so its per-element cost lands on the critical path of every
linear layer.  This benchmark measures both executable protocols
through the provisioning runtime:

* **pair mode** -- one pooled (r, r >> f) truncation pair per element,
  online cost a single opening round.  Preprocessing (TPRC production:
  two millionaires' comparisons + Gilboa B2A per pair) is timed
  separately, so the warm-vs-cold split shows what the preprocessing
  phase buys.
* **exact mode** -- the wrap-fixed comparison protocol (bit-exact
  floor), whose online phase consumes pooled comparison COTs, bit
  triples and B2A ring triples.

Byte accounting is validated exactly: the measured per-tag session
bytes must equal ``trunc_online_bytes`` plus the leader's allocation
offsets and the mux tag framing.  Results go to
``BENCH_truncation.json`` at the repo root.

Run under pytest:   pytest benchmarks/bench_truncation.py --benchmark-only -s
Run standalone:     PYTHONPATH=src python benchmarks/bench_truncation.py
Smoke (CI):         PYTHONPATH=src python benchmarks/bench_truncation.py --smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np
from bench_io import add_bench_args, write_payload

from repro.ferret.config import FerretConfig
from repro.lpn.params import LpnParams
from repro.mpc.sharing import from_signed, share_arith_nd
from repro.mpc.triples import ring_mask_u64
from repro.mpc.truncation import (
    FixedPointConfig,
    trunc_online_bytes,
    trunc_online_messages,
    trunc_via_service,
)
from repro.ot.channel import LocalChannel, run_concurrently
from repro.ppml.plan import trunc_demand
from repro.runtime import CorrelationService, MuxChannel, ServiceTuning
from repro.utils.tables import print_table

PARAMS = LpnParams("bench-trunc", 1 << 14, 512, 512, 32, 0.0)
RING_BITS = 16
FX = FixedPointConfig(bits=RING_BITS, frac_bits=4, mag_bits=9)
N_ELEMENTS = {"pair": 512, "exact": 128}
SMOKE_ELEMENTS = {"pair": 32, "exact": 16}
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_truncation.json"
MASK = ring_mask_u64(RING_BITS)
#: Leader allocation offsets one trunc_via_service call announces.
ALLOCS = {"pair": 1, "exact": 3}


def start_services():
    tuning = ServiceTuning(
        ring_bits=RING_BITS,
        triple_low=256, triple_high=2048, triple_chunk=1024,
        tprc_chunk=1024,
        enable_rots=False,
        take_timeout_s=600.0,
    )
    cfg = FerretConfig(params=PARAMS, arity=4, prg_kind="chacha8")
    base0, base1 = LocalChannel.pair(timeout=600.0)
    mux0 = MuxChannel(base0, timeout=600.0)
    mux1 = MuxChannel(base1, timeout=600.0)
    svc0 = CorrelationService(0, mux0, cfg, tuning, seed=0x7C).start()
    svc1 = CorrelationService(1, mux1, cfg, tuning, seed=0x7C).start()
    svc0.wait_ready(600.0)
    svc1.wait_ready(600.0)
    return svc0, svc1, mux0, mux1


def run_scenario(mode: str, warm: bool, n: int) -> dict:
    """One fresh service pair; truncate n shared elements online."""
    svc0, svc1, mux0, mux1 = start_services()
    demand = trunc_demand(n, FX, mode)
    targets = demand.as_pool_targets()
    for frac in demand.trunc_pairs:
        svc0.trunc_pool(frac), svc1.trunc_pool(frac)

    preprocessing_s = 0.0
    if warm:
        t0 = time.perf_counter()
        run_concurrently(
            lambda: svc0.prefill(targets, 600.0),
            lambda: svc1.prefill(targets, 600.0),
            timeout=600.0,
        )
        preprocessing_s = time.perf_counter() - t0

    rng = np.random.default_rng(0xF0)
    vals = from_signed(
        rng.integers(-(1 << FX.mag_bits) + 1, 1 << FX.mag_bits, n), RING_BITS
    ).astype(np.uint64)
    shares = share_arith_nd(vals, rng, bits=RING_BITS)

    name = f"trunc-{mode}"
    t1 = time.perf_counter()
    z0, z1 = run_concurrently(
        lambda: trunc_via_service(svc0.session(name), shares[0], FX, mode=mode),
        lambda: trunc_via_service(svc1.session(name), shares[1], FX, mode=mode),
        timeout=600.0,
    )
    online_s = time.perf_counter() - t1

    got = (z0 + z1) & MASK
    expect = FX.trunc_reference(vals)
    diff = FX.to_signed((got - expect) & MASK)
    if mode == "exact":
        assert np.array_equal(got, expect), "exact truncation mismatch"
    else:
        wrap = 1 << (RING_BITS - FX.frac_bits)
        assert np.all(np.isin(diff, [0, 1, -wrap, 1 - wrap])), "pair contract broken"

    tag = f"sess/{name}"
    measured = sum(
        mux.stats_by_tag()[tag].bytes_sent for mux in (mux0, mux1)
    )
    messages = trunc_online_messages(FX, mode) + ALLOCS[mode]
    model = (
        trunc_online_bytes(n, FX, mode)
        + 8 * ALLOCS[mode]
        + (2 + len(tag)) * messages
    )
    stats = svc0.pool_stats()
    stall_s = sum(s["stall_time_s"] for s in stats.values())
    svc0.stop(), svc1.stop()
    mux0.close(), mux1.close()
    return {
        "mode": mode,
        "warm": warm,
        "elements": n,
        "preprocessing_s": preprocessing_s,
        "online_s": online_s,
        "online_us_per_element": 1e6 * online_s / n,
        "stall_s": stall_s,
        "online_bytes_measured": measured,
        "online_bytes_model": model,
        "bytes_match": measured == model,
        "planned_cots": demand.total_cots(RING_BITS),
    }


def run_all(counts) -> list:
    rows = []
    for mode in ("pair", "exact"):
        rows.append(run_scenario(mode, warm=False, n=counts[mode]))
        rows.append(run_scenario(mode, warm=True, n=counts[mode]))
    return rows


def report(rows) -> None:
    print()
    print_table(
        ["mode", "pools", "n", "preproc (s)", "online (s)", "us/elem", "bytes ok"],
        [
            [
                r["mode"],
                "warm" if r["warm"] else "cold",
                str(r["elements"]),
                f"{r['preprocessing_s']:.2f}",
                f"{r['online_s']:.3f}",
                f"{r['online_us_per_element']:.1f}",
                "yes" if r["bytes_match"] else "NO",
            ]
            for r in rows
        ],
        title=f"Secure truncation ({FX.bits}-bit ring, f={FX.frac_bits}), n={PARAMS.n}",
    )
    for mode in ("pair", "exact"):
        cold = next(r for r in rows if r["mode"] == mode and not r["warm"])
        warm = next(r for r in rows if r["mode"] == mode and r["warm"])
        print(
            f"{mode}: online {cold['online_s']:.3f}s cold -> "
            f"{warm['online_s']:.3f}s warm "
            f"({cold['online_s'] / warm['online_s']:.1f}x with prefilled pools)"
        )


def check(rows) -> None:
    """Acceptance: exact byte models, and warm online materially below cold."""
    assert all(r["bytes_match"] for r in rows), "byte model diverged from the wire"
    for mode in ("pair", "exact"):
        cold = next(r for r in rows if r["mode"] == mode and not r["warm"])
        warm = next(r for r in rows if r["mode"] == mode and r["warm"])
        assert warm["online_s"] < 0.7 * cold["online_s"], (
            f"{mode}: warm online ({warm['online_s']:.3f}s) not materially "
            f"below cold ({cold['online_s']:.3f}s)"
        )


def payload(rows) -> dict:
    speedups = {}
    for mode in ("pair", "exact"):
        cold = next(r for r in rows if r["mode"] == mode and not r["warm"])
        warm = next(r for r in rows if r["mode"] == mode and r["warm"])
        speedups[mode] = cold["online_s"] / warm["online_s"]
    return {
        "bench": "truncation",
        "config": {
            "n": PARAMS.n,
            "k": PARAMS.k,
            "t": PARAMS.t,
            "ring_bits": FX.bits,
            "frac_bits": FX.frac_bits,
            "mag_bits": FX.mag_bits,
            "machine": platform.machine(),
        },
        "scenarios": rows,
        "online_speedup_warm_vs_cold": speedups,
        "bytes_model_matches_measured": all(r["bytes_match"] for r in rows),
    }


def write_json(rows, path: Path = JSON_PATH) -> None:
    path.write_text(json.dumps(payload(rows), indent=2) + "\n")
    print(f"wrote {path}")


def test_bench_truncation(benchmark, once):
    rows = once(benchmark, lambda: run_all(N_ELEMENTS))
    report(rows)
    check(rows)
    write_json(rows)
    benchmark.extra_info["pair_speedup"] = rows[0]["online_s"] / rows[1]["online_s"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    add_bench_args(
        parser,
        smoke_help="tiny element counts; skips the perf assertion and "
        "does not touch the committed JSON",
    )
    args = parser.parse_args(argv)
    counts = SMOKE_ELEMENTS if args.smoke else N_ELEMENTS
    rows = run_all(counts)
    report(rows)
    if args.json_out is not None:
        write_payload(args.json_out, payload(rows))
    if args.smoke:
        assert all(r["bytes_match"] for r in rows), "byte model diverged"
        print("smoke OK")
        return 0
    check(rows)
    write_json(rows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
