"""Persistent serving daemon: cross-request pipelining under load.

A one-shot serving script pays a full cold prefill before its first
layer goes online.  The :class:`repro.runtime.daemon.InferenceDaemon`
chains one batch-scaled pipeline per request and starts request r+1's
production the moment request r's production ends -- while r's online
tail is still draining -- so in steady state a request's first layer is
(mostly) produced before its online phase even starts.  This benchmark
drives a daemon pair with closed-loop clients (think time between
requests) and reports:

* ``first_request_wait_s``: the cold reference -- request 0 blocks for
  its entire layer-0 production, exactly like a one-shot script;
* ``steady_wait_s``: median first-layer wait once the admission window
  is warm (requests after the client ramp);
* ``cross_request_speedup``: the ratio -- the headline number the CI
  regression gate watches (a scheduler that stopped overlapping
  collapses it toward 1x);
* zero planned-pool stalls (the PR-5 pipelining contract, preserved
  across chained requests) and bit-exact outputs for every request;
* a batched request (B items through one pipeline, draws == plan x B);
* a disconnect-heal phase: a real socket pair drops mid-request, the
  reconnect stack replays the daemon's lease table in the resume
  handshake, and the client re-attaches by token -- bit-exact.

Headline numbers land in ``BENCH_daemon.json`` at the repo root.

Run standalone:     PYTHONPATH=src python benchmarks/bench_daemon.py
Smoke (CI):         PYTHONPATH=src python benchmarks/bench_daemon.py --smoke
Timeline:           ... --trace-out daemon.trace.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import threading
import time
from pathlib import Path

import numpy as np

from bench_io import add_bench_args, write_payload, write_trace

from repro.ferret.config import FerretConfig
from repro.mpc.sharing import from_signed, share_arith_nd
from repro.mpc.triples import ring_mask_u64
from repro.mpc.truncation import FixedPointConfig
from repro.obs.trace import Tracer
from repro.ot.channel import LocalChannel, SocketChannel, run_concurrently
from repro.ot.faults import DISCONNECT, FaultEvent, FaultSchedule, FaultyChannel
from repro.ot.reconnect import ReconnectingChannel
from repro.ot.retry import RetryPolicy
from repro.ppml.layers import Activation, Graph, Linear, Rescale
from repro.runtime import (
    CorrelationService,
    DaemonConfig,
    InferenceDaemon,
    MuxChannel,
    ServiceTuning,
)
from repro.utils.tables import print_table

RING_BITS = 16
MASK = ring_mask_u64(RING_BITS)
FX = FixedPointConfig(bits=RING_BITS, frac_bits=4, mag_bits=9)
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_daemon.json"
TIMEOUT = 600.0


def shapes(smoke: bool) -> dict:
    if smoke:
        return {
            "scale": 1024, "dims": (2, 8, 8, 4),
            "clients": 3, "rounds": 4, "think_s": 0.002, "batch": 3,
        }
    return {
        "scale": 4096, "dims": (4, 24, 24, 12),
        "clients": 4, "rounds": 8, "think_s": 0.005, "batch": 4,
    }


def build_graph(dims):
    m, k, h, out = dims
    g = Graph("daemon-mlp", (m, k))
    g.add(Linear(h))
    g.add(Rescale())
    g.add(Activation("relu"))
    g.add(Linear(out))
    return g


def make_model(dims, rng):
    m, k, h, out = dims
    w1 = rng.integers(-4, 4, (k, h))
    w2 = rng.integers(-4, 4, (h, out))
    w1s = share_arith_nd(from_signed(w1, RING_BITS), rng, bits=RING_BITS)
    w2s = share_arith_nd(from_signed(w2, RING_BITS), rng, bits=RING_BITS)

    def oracle(x):
        hid = np.maximum((x @ w1) >> FX.frac_bits, 0)
        return ((hid @ w2).astype(np.int64) & int(MASK)).astype(np.uint64)

    return w1s, w2s, oracle


def share_input(x, rng):
    return share_arith_nd(from_signed(x, RING_BITS), rng, bits=RING_BITS)


def make_tuning() -> ServiceTuning:
    # Background watermark refills off: every correlation in the run is
    # plan-driven, so the cold/steady contrast (and the zero-stall
    # contract) measures the daemon's scheduling, nothing else.
    return ServiceTuning(
        ring_bits=RING_BITS,
        triple_low=0, triple_high=0, triple_chunk=512,
        rtri_chunk=128,
        enable_rots=False,
        take_timeout_s=TIMEOUT,
    )


def start_pair(cfg, dims, dcfg, seed, tracers=None):
    base0, base1 = LocalChannel.pair(timeout=TIMEOUT)
    mux0 = MuxChannel(base0, timeout=TIMEOUT)
    mux1 = MuxChannel(base1, timeout=TIMEOUT)
    svc0 = CorrelationService(0, mux0, cfg, make_tuning(), seed=seed).start()
    svc1 = CorrelationService(1, mux1, cfg, make_tuning(), seed=seed).start()
    if tracers is not None:
        svc0.set_tracer(tracers[0])
        svc1.set_tracer(tracers[1])
    rng = np.random.default_rng(seed)
    g = build_graph(dims)
    w1s, w2s, oracle = make_model(dims, rng)
    d0 = InferenceDaemon(svc0, g, [w1s[0], w2s[0]], fx=FX, cfg=dcfg).start()
    d1 = InferenceDaemon(svc1, g, [w1s[1], w2s[1]], fx=FX, cfg=dcfg).start()
    return d0, d1, svc0, svc1, mux0, mux1, oracle, rng


def run_serving(smoke: bool, tracers=None) -> dict:
    """Closed-loop clients over one daemon pair."""
    shape = shapes(smoke)
    dims, clients, rounds = shape["dims"], shape["clients"], shape["rounds"]
    cfg = FerretConfig.small(scale=shape["scale"], arity=4, prg_kind="chacha8")
    dcfg = DaemonConfig(
        max_inflight=clients + 1, session_inflight=2,
        lease_ttl_s=60.0, max_batch=max(shape["batch"], 2),
        request_timeout_s=TIMEOUT,
    )
    d0, d1, svc0, svc1, mux0, mux1, oracle, rng = start_pair(
        cfg, dims, dcfg, seed=0xDAE, tracers=tracers
    )
    m, k = dims[0], dims[1]
    xs = {
        (c, r): rng.integers(-8, 8, (m, k))
        for c in range(clients) for r in range(rounds)
    }
    shares = {key: share_input(x, rng) for key, x in xs.items()}
    stall_before = {
        kind: s["stalled_draws"] for kind, s in svc0.pool_stats().items()
    }
    outs = {0: {}, 1: {}}
    reqs0 = {}

    def run_clients(d, i):
        errors = []

        def client(c):
            try:
                for r in range(rounds):
                    req = d.submit(f"cli{c}", shares[(c, r)][i])
                    outs[i][(c, r)] = req.result(TIMEOUT)[0]
                    if i == 0:
                        reqs0[(c, r)] = req
                    time.sleep(shape["think_s"])
            except BaseException as exc:  # noqa: BLE001 - joined below
                errors.append((c, exc))

        threads = [
            threading.Thread(target=client, args=(c,)) for c in range(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(TIMEOUT)
        assert not errors, f"party {i} clients failed: {errors}"
        assert not any(t.is_alive() for t in threads), f"party {i} hung"

    t0 = time.perf_counter()
    run_concurrently(
        lambda: run_clients(d0, 0), lambda: run_clients(d1, 1), TIMEOUT
    )
    wall_s = time.perf_counter() - t0

    for key, x in xs.items():
        got = (outs[0][key] + outs[1][key]) & MASK
        assert np.array_equal(got, oracle(x)), f"request {key} not bit-exact"

    # Zero planned-pool stalls: the per-request wait_layer gates must
    # keep absorbing all production latency across chained pipelines.
    stalls = {}
    after = {kind: s["stalled_draws"] for kind, s in svc0.pool_stats().items()}
    for kind in d0.plan.pool_targets():
        stalls[kind] = after[kind] - stall_before.get(kind, 0)
    assert not any(stalls.values()), f"planned pools stalled: {stalls}"

    by_seq = sorted(reqs0.values(), key=lambda r: r.seq)
    waits = [r.first_wait_s for r in by_seq]
    first_wait = waits[0]
    steady = waits[clients:] or waits[1:]
    steady_wait = statistics.median(steady)
    total = clients * rounds

    # Batched phase: one request, B inputs through one pipeline.
    batch = shape["batch"]
    xb = [rng.integers(-8, 8, (m, k)) for _ in range(batch)]
    shb = [share_input(x, rng) for x in xb]
    draws_before = svc0.session_draw_counts()
    tb = time.perf_counter()
    rb0, rb1 = run_concurrently(
        lambda: d0.submit("batch", [s[0] for s in shb]).result(TIMEOUT),
        lambda: d1.submit("batch", [s[1] for s in shb]).result(TIMEOUT),
        TIMEOUT,
    )
    batch_s = time.perf_counter() - tb
    for j, x in enumerate(xb):
        got = (rb0[j] + rb1[j]) & MASK
        assert np.array_equal(got, oracle(x)), f"batch item {j} not bit-exact"
    draws_after = svc0.session_draw_counts()
    for kind, count in d0.plan.pool_targets().items():
        drawn = draws_after.get(kind, 0) - draws_before.get(kind, 0)
        assert drawn == count * batch, (kind, drawn, count, batch)

    tel = {k: v for k, v in svc0.telemetry().items() if k.startswith("daemon/")}
    run_concurrently(lambda: d0.stop(TIMEOUT), lambda: d1.stop(TIMEOUT), TIMEOUT)
    svc0.stop(), svc1.stop()
    mux0.close(), mux1.close()
    return {
        "lpn_n": cfg.params.n,
        "dims": list(dims),
        "clients": clients,
        "rounds_per_client": rounds,
        "think_s": shape["think_s"],
        "requests": total,
        "wall_s": wall_s,
        "throughput_rps": total / wall_s,
        "first_request_wait_s": first_wait,
        "steady_wait_s": steady_wait,
        "first_wait_by_seq_s": waits,
        "cross_request_speedup": first_wait / max(steady_wait, 1e-6),
        "planned_pool_stalls": stalls,
        "batch": {
            "items": batch,
            "wall_s": batch_s,
            "items_per_s": batch / batch_s,
            "draws_scale_exact": True,
        },
        "telemetry": tel,
    }


def run_reconnect(smoke: bool) -> dict:
    """Socket pair, one mid-request disconnect, lease re-attach."""
    shape = shapes(True if smoke else smoke)  # always the small shape
    dims = shape["dims"]
    cfg = FerretConfig.small(scale=1024, arity=4, prg_kind="chacha8")
    listener = SocketChannel.listen()
    port = listener.port
    schedules = {"server": FaultSchedule(()), "client": FaultSchedule(())}
    channels = {"server": [], "client": []}

    def dialer(name, make):
        def dial():
            chan = FaultyChannel(make(), schedules[name])
            channels[name].append(chan)
            return chan

        return dial

    dial_server = dialer(
        "server", lambda: listener.accept(accept_timeout=60.0, keep_open=True)
    )
    dial_client = dialer(
        "client", lambda: SocketChannel.connect("127.0.0.1", port, timeout=10.0)
    )
    policy = RetryPolicy(
        attempts=10, backoff_s=0.02, backoff_factor=2.0,
        max_backoff_s=0.25, deadline_s=60.0,
    )
    rcs = {}

    def build(name, dial):
        rcs[name] = ReconnectingChannel(dial, policy=policy)

    threads = [
        threading.Thread(target=build, args=("server", dial_server)),
        threading.Thread(target=build, args=("client", dial_client)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60.0)
    rc0, rc1 = rcs["server"], rcs["client"]
    mux0 = MuxChannel(rc0, timeout=TIMEOUT)
    mux1 = MuxChannel(rc1, timeout=TIMEOUT)
    svc0 = CorrelationService(0, mux0, cfg, make_tuning(), seed=0xDAF).start()
    svc1 = CorrelationService(1, mux1, cfg, make_tuning(), seed=0xDAF).start()
    rng = np.random.default_rng(0xDAF)
    g = build_graph(dims)
    w1s, w2s, oracle = make_model(dims, rng)
    dcfg = DaemonConfig(lease_ttl_s=10.0, request_timeout_s=TIMEOUT)
    d0 = InferenceDaemon(svc0, g, [w1s[0], w2s[0]], fx=FX, cfg=dcfg).start()
    d1 = InferenceDaemon(svc1, g, [w1s[1], w2s[1]], fx=FX, cfg=dcfg).start()
    rc0.state_provider = d0.resume_state
    rc1.state_provider = d1.resume_state
    svc0.wait_ready(TIMEOUT)
    svc1.wait_ready(TIMEOUT)

    chaos = FaultSchedule((FaultEvent("send", 3, DISCONNECT),))
    schedules["server"] = chaos
    for chan in channels["server"]:
        chan.schedule = chaos

    x = rng.integers(-8, 8, (dims[0], dims[1]))
    sh = share_input(x, rng)

    def party(d, i):
        req = d.submit("cli", sh[i])
        token = req.lease.token
        req.done.wait(TIMEOUT)
        return d.attach("cli", token).result(TIMEOUT)

    t0 = time.perf_counter()
    r0, r1 = run_concurrently(lambda: party(d0, 0), lambda: party(d1, 1), TIMEOUT)
    heal_s = time.perf_counter() - t0
    exact = bool(np.array_equal((r0[0] + r1[0]) & MASK, oracle(x)))
    assert exact, "healed request not bit-exact"
    assert chaos.injected, "scheduled disconnect was not injected"
    out = {
        "disconnects_injected": len(chaos.injected),
        "reconnects": rc0.reconnects + rc1.reconnects,
        "attaches": d0.attaches + d1.attaches,
        "request_wall_s": heal_s,
        "bit_exact": exact,
    }
    run_concurrently(lambda: d0.stop(TIMEOUT), lambda: d1.stop(TIMEOUT), TIMEOUT)
    svc0.stop(), svc1.stop()
    mux0.close(), mux1.close()
    listener.close()
    return out


def report(serving: dict, reconnect: dict) -> None:
    print()
    print_table(
        ["requests", "wall (s)", "req/s", "cold wait (s)", "steady wait (s)",
         "speedup", "batch items/s"],
        [[
            str(serving["requests"]),
            f"{serving['wall_s']:.2f}",
            f"{serving['throughput_rps']:.1f}",
            f"{serving['first_request_wait_s']:.4f}",
            f"{serving['steady_wait_s']:.4f}",
            f"{serving['cross_request_speedup']:.2f}x",
            f"{serving['batch']['items_per_s']:.1f}",
        ]],
        title=f"Serving daemon, closed-loop clients ({os.cpu_count()} CPUs)",
    )
    print(
        f"disconnect heal: {reconnect['reconnects']} reconnect(s), "
        f"{reconnect['attaches']} lease re-attach(es), bit-exact="
        f"{reconnect['bit_exact']}, request wall {reconnect['request_wall_s']:.2f}s"
    )


def payload(serving: dict, reconnect: dict) -> dict:
    return {
        "bench": "daemon",
        "config": {
            "lpn_n": serving["lpn_n"],
            "dims": serving["dims"],
            "clients": serving["clients"],
            "rounds_per_client": serving["rounds_per_client"],
            "cpu_count": os.cpu_count(),
            "machine": platform.machine(),
        },
        "cross_request_speedup": serving["cross_request_speedup"],
        "serving": serving,
        "reconnect": reconnect,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    add_bench_args(
        parser,
        smoke_help="tiny run (small model, 3 clients x 4 requests) that "
        "does not touch the committed JSON",
        trace=True,
    )
    args = parser.parse_args(argv)
    tracers = None
    if args.trace_out is not None:
        tracers = (Tracer(party=0), Tracer(party=1))
    serving = run_serving(args.smoke, tracers=tracers)
    reconnect = run_reconnect(args.smoke)
    report(serving, reconnect)
    doc = payload(serving, reconnect)
    if args.trace_out is not None:
        write_trace(args.trace_out, tracers)
    if args.json_out is not None:
        write_payload(args.json_out, doc)
    if not args.smoke:
        JSON_PATH.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {JSON_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
