"""Executable secure MatMul: preprocessing (Gilboa matrix triples) +
Beaver online phase, validated against the analytical cost model."""

import numpy as np
import pytest

from repro.errors import ParameterError, ProtocolError
from repro.mpc.matmul import (
    BYTES_PER_COT,
    FIG16_DIMS,
    MatmulDims,
    generate_matrix_triples,
    matmul_cots,
    matmul_online,
    matmul_online_bytes,
    matmul_preproc_bytes,
)
from repro.mpc.triples import dealer_matrix_triples, ring_mask_u64
from repro.ot.channel import run_pair
from repro.ot.cot import CotPool
from repro.ppml import matmul as ppml_matmul
from repro.ppml.matmul import matmul_comm_bytes

from repro.ot.testing import fake_cots

SMALL_DIMS = (MatmulDims(3, 5, 4), MatmulDims(6, 2, 7))


def run_matmul_pipeline(dims, bits, ot_sender, seed=0):
    """Full two-party pipeline: Gilboa triple generation + online phase.

    Returns (reconstructed Z, expected X@Y, wire-byte and COT metrics).
    """
    mask = ring_mask_u64(bits)
    gen = np.random.default_rng(seed)
    n_cots = int(matmul_cots(dims, bits))
    sender_cots, receiver_cots = fake_cots(n_cots, seed=seed + 1)
    pools = {
        ot_sender: CotPool(sender=sender_cots),
        1 - ot_sender: CotPool(receiver=receiver_cots),
    }
    x = gen.integers(0, 1 << bits, (dims.m, dims.k), dtype=np.uint64)
    y = gen.integers(0, 1 << bits, (dims.k, dims.n), dtype=np.uint64)
    x0 = gen.integers(0, 1 << bits, (dims.m, dims.k), dtype=np.uint64)
    y0 = gen.integers(0, 1 << bits, (dims.k, dims.n), dtype=np.uint64)
    shares = {0: (x0, y0), 1: ((x - x0) & mask, (y - y0) & mask)}

    def party(p):
        def run(ch):
            rng = np.random.default_rng(100 + p)
            triple = generate_matrix_triples(
                ch, dims, bits, pools[p], rng, party=p, ot_sender=ot_sender
            )
            return matmul_online(ch, shares[p][0], shares[p][1], triple, p)

        return run

    z0, z1, st0, st1 = run_pair(party(0), party(1), timeout=600.0)
    metrics = {
        "bytes": st0.bytes_sent + st1.bytes_sent,
        "cots_consumed": pools[0].size - pools[0].remaining,
    }
    return (z0 + z1) & mask, (x @ y) & mask, metrics


class TestPipelineSmall:
    """Both OT-sender role directions, exact cost-model validation."""

    @pytest.mark.parametrize("dims", SMALL_DIMS, ids=lambda d: d.label)
    @pytest.mark.parametrize("ot_sender", [0, 1])
    def test_product_correct_both_directions(self, dims, ot_sender):
        got, expect, _ = run_matmul_pipeline(dims, bits=16, ot_sender=ot_sender)
        assert np.array_equal(got, expect)

    def test_cot_consumption_matches_analytical_model(self):
        dims = SMALL_DIMS[0]
        for ot_sender in (0, 1):
            _, _, metrics = run_matmul_pipeline(dims, 16, ot_sender)
            assert metrics["cots_consumed"] == matmul_cots(dims, 16)

    def test_measured_bytes_match_exact_predictors(self):
        """Wire bytes = preprocessing predictor + online predictor, and
        the online phase stays within the analytical per-COT model."""
        dims = SMALL_DIMS[0]
        bits = 16
        _, _, metrics = run_matmul_pipeline(dims, bits, ot_sender=1)
        predicted = matmul_preproc_bytes(dims, bits) + matmul_online_bytes(dims)
        assert metrics["bytes"] == predicted
        assert matmul_online_bytes(dims) <= matmul_comm_bytes(dims, bits)


class TestFig16Online:
    """Acceptance: executable MatMul reconstructs correctly at every
    Figure 16 shape; preprocessing uses dealer triples at this scale
    (the OT-based generator is exercised above and via the service)."""

    @pytest.mark.parametrize("dims", FIG16_DIMS, ids=lambda d: d.label)
    @pytest.mark.parametrize("swap_roles", [False, True])
    def test_fig16_shapes_reconstruct(self, dims, swap_roles):
        bits = 32
        mask = ring_mask_u64(bits)
        gen = np.random.default_rng(dims.m + dims.k + dims.n + swap_roles)
        t0, t1 = dealer_matrix_triples(dims.m, dims.k, dims.n, bits, gen)
        x = gen.integers(0, 1 << bits, (dims.m, dims.k), dtype=np.uint64)
        y = gen.integers(0, 1 << bits, (dims.k, dims.n), dtype=np.uint64)
        x0 = gen.integers(0, 1 << bits, (dims.m, dims.k), dtype=np.uint64)
        y0 = gen.integers(0, 1 << bits, (dims.k, dims.n), dtype=np.uint64)
        x1, y1 = (x - x0) & mask, (y - y0) & mask
        if swap_roles:  # the activation holder plays party 1 instead
            t0, t1 = t1, t0
            x0, x1, y0, y1 = x1, x0, y1, y0
        z0, z1, st0, st1 = run_pair(
            lambda ch: matmul_online(ch, x0, y0, t0, 0),
            lambda ch: matmul_online(ch, x1, y1, t1, 1),
            timeout=600.0,
        )
        assert np.array_equal((z0 + z1) & mask, (x @ y) & mask)
        measured = st0.bytes_sent + st1.bytes_sent
        assert measured == matmul_online_bytes(dims)
        # Online bytes sit far inside the analytical COT-model budget:
        # preprocessing moved the OT traffic off the critical path.
        assert measured <= matmul_comm_bytes(dims, unified=True)

    def test_shape_mismatch_rejected(self):
        t0, _ = dealer_matrix_triples(2, 3, 4, 16, np.random.default_rng(0))
        with pytest.raises(ProtocolError):
            matmul_online(None, np.zeros((9, 9)), np.zeros((9, 9)), t0, 0)


class TestSharedConstants:
    """The analytical model and the executable layer share definitions."""

    def test_bytes_per_cot_single_definition(self):
        assert ppml_matmul.BYTES_PER_COT is BYTES_PER_COT

    def test_dims_and_counts_are_reexports(self):
        assert ppml_matmul.MatmulDims is MatmulDims
        assert ppml_matmul.matmul_cots is matmul_cots
        assert ppml_matmul.FIG16_DIMS is FIG16_DIMS


class TestGilboaChunking:
    """The correction matrix streams in row blocks; the block size is a
    memory knob only.  Outputs AND wire bytes must be invariant."""

    def run_chunked(self, dims, bits, chunk_rows, seed=3):
        gen = np.random.default_rng(seed)
        n_cots = int(matmul_cots(dims, bits))
        sender_cots, receiver_cots = fake_cots(n_cots, seed=seed + 1)
        pools = {1: CotPool(sender=sender_cots), 0: CotPool(receiver=receiver_cots)}

        def party(p):
            def run(ch):
                rng = np.random.default_rng(100 + p)
                return generate_matrix_triples(
                    ch, dims, bits, pools[p], rng, party=p,
                    ot_sender=1, chunk_rows=chunk_rows,
                )

            return run

        t0, t1, st0, st1 = run_pair(party(0), party(1), timeout=600.0)
        return t0, t1, st0.bytes_sent + st1.bytes_sent

    @pytest.mark.parametrize("dims", SMALL_DIMS, ids=lambda d: d.label)
    def test_chunked_equals_unchunked(self, dims):
        bits = 16
        t = int(matmul_cots(dims, bits))
        # chunk=7 forces many ragged blocks; chunk >= t is one block
        # (the pre-streaming behavior).
        t0_a, t1_a, bytes_a = self.run_chunked(dims, bits, chunk_rows=7)
        t0_b, t1_b, bytes_b = self.run_chunked(dims, bits, chunk_rows=t)
        for chunked, whole in ((t0_a, t0_b), (t1_a, t1_b)):
            assert np.array_equal(chunked.a, whole.a)
            assert np.array_equal(chunked.b, whole.b)
            assert np.array_equal(chunked.c, whole.c)
        assert bytes_a == bytes_b

    def test_byte_model_holds_at_tiny_chunks(self):
        dims = SMALL_DIMS[0]
        bits = 16
        _, _, wire = self.run_chunked(dims, bits, chunk_rows=1)
        assert wire == matmul_preproc_bytes(dims, bits)

    def test_chunk_rows_must_be_positive(self):
        dims = SMALL_DIMS[0]
        rng = np.random.default_rng(0)
        with pytest.raises(ParameterError, match="chunk_rows"):
            generate_matrix_triples(
                None, dims, 16, None, rng, party=0, chunk_rows=0
            )
