"""Process-sharded correlation production.

Covers the PR-8 acceptance surface: a 2-shard service pair serves
verifiable COTs and triples, per-shard telemetry attributes the work,
``shards=1`` is byte-identical to the default single-worker stream, and
the pipelined MLP example keeps its draws==plan / zero-stall guarantees
when the raw-COT stream underneath it is produced by shard processes.
"""

import threading
import time

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.ferret.config import FerretConfig
from repro.mpc.matmul import matmul_rescale_via_service, matmul_via_service
from repro.mpc.relu import relu_via_service
from repro.mpc.sharing import ArithmeticShares, from_signed, share_arith_nd
from repro.mpc.triples import ring_mask_u64
from repro.mpc.truncation import FixedPointConfig
from repro.ot.channel import ChannelError, LocalChannel, SocketChannel, run_concurrently
from repro.ot.cot import CotReceiverBatch, CotSenderBatch, verify_cot
from repro.ot.faults import DISCONNECT, FaultEvent, FaultSchedule, FaultyChannel
from repro.ot.reconnect import ReconnectingChannel
from repro.ot.retry import RetryPolicy
from repro.ppml.layers import Activation, Graph, Linear, Rescale
from repro.ppml.plan import plan_graph
from repro.runtime import CorrelationService, MuxChannel, ServiceTuning
from repro.runtime.shard import ShardManager

CFG = FerretConfig.small(scale=1024, arity=4, prg_kind="chacha8")
SHARDS = 2


def start_service_pair(tuning, cfg=CFG, seed=0x5AD0):
    base_a, base_b = LocalChannel.pair(timeout=180.0)
    mux0 = MuxChannel(base_a, timeout=180.0)
    mux1 = MuxChannel(base_b, timeout=180.0)
    svc0 = CorrelationService(0, mux0, cfg, tuning, seed=seed).start()
    svc1 = CorrelationService(1, mux1, cfg, tuning, seed=seed).start()
    return svc0, svc1, mux0, mux1


def run_pair(fn0, fn1, timeout=240.0, ctx=()):
    """Both parties concurrently; a hang surfaces service errors."""
    results, errors = {}, []

    def runner(party, fn):
        try:
            results[party] = fn()
        except BaseException as exc:  # noqa: BLE001
            errors.append((party, exc))

    t0 = threading.Thread(target=runner, args=(0, fn0))
    t1 = threading.Thread(target=runner, args=(1, fn1))
    t0.start(), t1.start()
    t0.join(timeout), t1.join(timeout)
    assert not errors, f"parties failed: {errors} (svc errors: {ctx})"
    assert not t0.is_alive() and not t1.is_alive(), f"hung (svc errors: {ctx})"
    return results[0], results[1]


class TestShardedService:
    """One shared 2-shard pair: COTs, triples, telemetry, shutdown."""

    @pytest.fixture(scope="class")
    def services(self):
        tuning = ServiceTuning(
            shards=SHARDS,
            triple_low=64, triple_high=256, triple_chunk=128,
            rot_low=0, rot_high=64,
        )
        svc0, svc1, mux0, mux1 = start_service_pair(tuning)
        svc0.wait_ready(240.0)
        svc1.wait_ready(240.0)
        yield svc0, svc1
        svc0.stop(), svc1.stop()
        mux0.close(), mux1.close()

    def test_cots_verify_across_shard_merge(self, services):
        svc0, svc1 = services
        # More than one extend's worth, so draws cross shard boundaries.
        n = CFG.net_output + CFG.net_output // 2
        s, r = run_pair(
            lambda: svc0.session("cot").draw_sender_cots(n)[0],
            lambda: svc1.session("cot").draw_receiver_cots(n)[0],
            ctx=(svc0.error, svc1.error),
        )
        assert isinstance(s, CotSenderBatch) and isinstance(r, CotReceiverBatch)
        assert verify_cot(s, r)

    def test_derived_triples_ride_merged_stream(self, services):
        svc0, svc1 = services
        t0, t1 = run_pair(
            lambda: svc0.session("tri").draw_triples(300),
            lambda: svc1.session("tri").draw_triples(300),
            ctx=(svc0.error, svc1.error),
        )
        a = t0.a ^ t1.a
        b = t0.b ^ t1.b
        c = t0.c ^ t1.c
        assert np.array_equal(c, a & b)

    def test_per_shard_telemetry_attributes_all_extends(self, services):
        svc0, svc1 = services
        tel0 = tel1 = None
        # Background refill may have extends in flight; the per-shard
        # counters and the service total converge once they land.
        for _ in range(100):
            tel0, tel1 = svc0.telemetry(), svc1.telemetry()
            if all(
                sum(t[f"shard/{i}/extends"] for i in range(SHARDS))
                == t.get("ferret/fwd/extends", 0) + t.get("ferret/rev/extends", 0)
                for t in (tel0, tel1)
            ):
                break
            time.sleep(0.1)
        assert tel0["shard/shards"] == SHARDS
        for party, tel in ((0, tel0), (1, tel1)):
            per_shard = [tel[f"shard/{i}/extends"] for i in range(SHARDS)]
            total = tel.get("ferret/fwd/extends", 0) + tel.get(
                "ferret/rev/extends", 0
            )
            assert sum(per_shard) == total, (party, per_shard, total)
            # Both shards did real work under the concurrent draws.
            assert all(e >= 1 for e in per_shard), (party, per_shard)
            for i in range(SHARDS):
                assert tel[f"shard/{i}/setup_s"] > 0
        # Leader exposes in-flight accounting; follower its merge queue.
        assert "shard/inflight/fwd" in tel0
        assert "shard/pending_merge" in tel1

    def test_stop_is_idempotent_and_clean(self, services):
        # The fixture will stop again at teardown; a second stop on a
        # drained manager must not raise or hang.
        svc0, svc1 = services
        assert svc0.error is None and svc1.error is None


class TestShardsOneIsByteIdentical:
    """``shards=1`` must construct none of the machinery and emit the
    exact stream the default tuning does."""

    def _draw(self, tuning, n, seed):
        svc0, svc1, mux0, mux1 = start_service_pair(tuning, seed=seed)
        try:
            s, r = run_pair(
                lambda: svc0.session("id").draw_sender_cots(n)[0],
                lambda: svc1.session("id").draw_receiver_cots(n)[0],
                ctx=(svc0.error, svc1.error),
            )
        finally:
            svc0.stop(), svc1.stop()
            mux0.close(), mux1.close()
        return s, r

    def test_stream_matches_default_tuning(self):
        n = CFG.net_output // 2
        base = ServiceTuning(enable_triples=False, enable_rots=False)
        one = ServiceTuning(shards=1, enable_triples=False, enable_rots=False)
        s_a, r_a = self._draw(base, n, seed=0xBEE)
        s_b, r_b = self._draw(one, n, seed=0xBEE)
        assert np.array_equal(s_a.z, s_b.z)
        assert np.array_equal(r_a.x, r_b.x)
        assert np.array_equal(r_a.y, r_b.y)

    def test_shards_one_builds_no_manager(self):
        base_a, base_b = LocalChannel.pair(timeout=60.0)
        mux0 = MuxChannel(base_a, timeout=60.0)
        svc = CorrelationService(0, mux0, CFG, ServiceTuning(shards=1), seed=1)
        try:
            assert svc._shard_mgr is None
        finally:
            mux0.close()

    def test_zero_shards_rejected(self):
        base_a, base_b = LocalChannel.pair(timeout=60.0)
        mux0 = MuxChannel(base_a, timeout=60.0)
        try:
            with pytest.raises(ServiceError, match="shards"):
                CorrelationService(0, mux0, CFG, ServiceTuning(shards=0), seed=1)
        finally:
            mux0.close()

    def test_manager_requires_two_shards(self):
        with pytest.raises(ServiceError, match="shards"):
            ShardManager(object(), 1, seed=0)


class TestReconnectUnderShards:
    """Transport loss while the pools hold shard-merge state: the resync
    barrier must discard parked out-of-order segments (one-sided state
    that would collide with the peer's re-produced ranges), and a
    2-shard pair over a reconnecting main link must heal a real
    disconnect and keep serving verifiable correlations."""

    def test_resync_barrier_drops_parked_segments(self):
        base_a, base_b = LocalChannel.pair(timeout=60.0)
        mux0 = MuxChannel(base_a, timeout=60.0)
        svc = CorrelationService(
            0, mux0, CFG, ServiceTuning(shards=SHARDS), seed=1
        )
        try:
            pool = svc.pools["tri"]

            def cols(n, fill):
                return tuple(
                    np.full(n, fill, dtype=np.uint8) for _ in range(3)
                )

            pool.append_columns_at(0, cols(8, 1))
            pool.append_columns_at(12, cols(4, 2))  # parked: hole at [8,12)
            assert pool.pending_segments == 1
            # Parked state is visible to the resume handshake.
            assert "pending_segments" in svc.resume_state()

            # Barrier with matching frontiers: produced does not move,
            # but the parked segment above it must still be discarded.
            svc._rollback_pools({"tri": 8})
            assert pool.pending_segments == 0
            assert svc.segments_dropped == 1
            assert pool.produced == 8
            assert "pending_segments" not in svc.resume_state()

            # The vacated range belongs to whoever re-produces it: both
            # the straddled offset and the previously parked one must
            # land without duplicate/overlap complaints.
            pool.append_columns_at(8, cols(4, 3))
            pool.append_columns_at(12, cols(4, 4))
            assert pool.produced == 16
            assert pool.pending_segments == 0
        finally:
            mux0.close()

    def test_reconnect_heals_and_serves(self):
        tuning = ServiceTuning(
            shards=SHARDS,
            triple_low=64, triple_high=256, triple_chunk=128,
            enable_rots=False,
        )
        listener = SocketChannel.listen()
        port = listener.port
        # bench_faults' dial shape, inlined: every fresh transport is
        # wrapped in a FaultyChannel sharing the side's live schedule,
        # so a schedule armed mid-run applies to the current epoch too.
        schedules = {"server": FaultSchedule(()), "client": FaultSchedule(())}
        channels = {"server": [], "client": []}

        def dialer(name, make):
            def dial():
                chan = FaultyChannel(make(), schedules[name])
                chan.schedule = schedules[name]
                channels[name].append(chan)
                return chan

            return dial

        dial_server = dialer(
            "server",
            lambda: listener.accept(accept_timeout=60.0, keep_open=True),
        )
        dial_client = dialer(
            "client",
            lambda: SocketChannel.connect("127.0.0.1", port, timeout=10.0),
        )
        policy = RetryPolicy(
            attempts=10, backoff_s=0.02, backoff_factor=2.0,
            max_backoff_s=0.25, deadline_s=60.0,
        )
        built, errs = {}, {}

        def build(name, dial):
            try:
                built[name] = ReconnectingChannel(dial, policy=policy)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errs[name] = exc

        threads = [
            threading.Thread(target=build, args=("server", dial_server)),
            threading.Thread(target=build, args=("client", dial_client)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        assert not errs, f"initial dial failed: {errs}"
        rc0, rc1 = built["server"], built["client"]

        mux0 = MuxChannel(rc0, timeout=240.0)
        mux1 = MuxChannel(rc1, timeout=240.0)
        svc0 = CorrelationService(0, mux0, CFG, tuning, seed=0x5EA1).start()
        svc1 = CorrelationService(1, mux1, CFG, tuning, seed=0x5EA1).start()
        rc0.state_provider = svc0.resume_state
        rc1.state_provider = svc1.resume_state
        try:
            svc0.wait_ready(240.0)
            svc1.wait_ready(240.0)
            # Quiesce: sharded production must be idle when the wire
            # drops (the documented sharded-resync limit -- raw-COT
            # frontiers have no per-endpoint snapshot to restore).
            # Wait for the frontiers to stop moving rather than trusting
            # a fixed sleep; under a loaded machine refill can outlive
            # any constant.
            deadline = time.monotonic() + 60.0
            prev = None
            while True:
                snap = tuple(
                    (name, pool.produced)
                    for svc in (svc0, svc1)
                    for name, pool in svc.pools.items()
                )
                if snap == prev:
                    break
                assert time.monotonic() < deadline, "production never quiesced"
                prev = snap
                time.sleep(0.25)

            # Index 0 = the very next server send: with production
            # quiesced that is the draw's own offset announcement, so
            # the disconnect fires deterministically (index 1 would
            # need a second send that idle production never makes).
            chaos = FaultSchedule((FaultEvent("send", 0, DISCONNECT),))
            schedules["server"] = chaos
            for chan in channels["server"]:
                chan.schedule = chaos

            # Small draws: enough traffic to trip the fault, not enough
            # to dip any pool below its low watermark (no extends are
            # scheduled across the outage).
            t0, t1 = run_pair(
                lambda: svc0.session("heal").draw_triples(32),
                lambda: svc1.session("heal").draw_triples(32),
                ctx=(svc0.error, svc1.error),
            )
            assert np.array_equal(t0.c ^ t1.c, (t0.a ^ t1.a) & (t0.b ^ t1.b))

            deadline = time.monotonic() + 60.0
            while rc0.reconnects + rc1.reconnects < 1:
                assert time.monotonic() < deadline, "fault never fired"
                time.sleep(0.05)
            assert chaos.injected, "scheduled disconnect was not injected"

            # Healed link still serves verifiable COTs off the merged
            # shard stream, and no parked segment survived the outage.
            s, r = run_pair(
                lambda: svc0.session("heal").draw_sender_cots(64)[0],
                lambda: svc1.session("heal").draw_receiver_cots(64)[0],
                ctx=(svc0.error, svc1.error),
            )
            assert verify_cot(s, r)
            for svc in (svc0, svc1):
                assert svc.error is None
                for kind, pool in svc.pools.items():
                    assert pool.pending_segments == 0, kind
        finally:
            svc0.stop(), svc1.stop()
            mux0.close(), mux1.close()
            listener.close()


BITS = 16
FX = FixedPointConfig(bits=BITS, frac_bits=4, mag_bits=9)
MASK = ring_mask_u64(BITS)
M, K, H, OUT = 4, 8, 6, 48


class TestShardedPipelinedMlp:
    """The PR-5 pipelined MLP example over a 2-shard service: output
    bit-exact, draws == plan, zero planned-pool stalls."""

    @pytest.fixture(scope="class")
    def planned_run(self):
        tuning = ServiceTuning(
            shards=SHARDS,
            ring_bits=BITS,
            triple_low=0, triple_high=0, triple_chunk=512,
            rtri_chunk=128,
            enable_rots=False,
        )
        svc0, svc1, mux0, mux1 = start_service_pair(tuning, seed=0x1CE)
        svc0.wait_ready(240.0)
        svc1.wait_ready(240.0)

        g = Graph("ShardPipe", (M, K))
        g.add(Linear(H))
        g.add(Rescale())
        g.add(Activation("relu"))
        g.add(Linear(OUT))
        plan = plan_graph(g, bits=BITS, fx=FX)

        gen = np.random.default_rng(41)
        x = gen.integers(-8, 8, (M, K))
        w1 = gen.integers(-3, 3, (K, H))
        w2 = gen.integers(-3, 3, (H, OUT))
        shares = {
            key: share_arith_nd(from_signed(mat, BITS), gen, bits=BITS)
            for key, mat in (("x", x), ("w1", w1), ("w2", w2))
        }
        h_ref = np.maximum((x @ w1) >> FX.frac_bits, 0)
        expect = ((h_ref @ w2).astype(np.int64) & int(MASK)).astype(np.uint64)

        stall_before = {
            kind: s["stalled_draws"] for kind, s in svc0.pool_stats().items()
        }
        draws_before = dict(svc0.session_draws)

        pipe0 = plan.prefill_pipelined(svc0, timeout=240.0)
        pipe1 = plan.prefill_pipelined(svc1, timeout=240.0)

        def infer(svc, pipe, party):
            def run():
                session = svc.session("shard-pipe-mlp")
                rng = np.random.default_rng(70 + party)
                pipe.wait_layer(1)
                h = matmul_rescale_via_service(
                    session, shares["x"][party], shares["w1"][party], FX,
                    mode="exact", rng=rng,
                )
                pipe.wait_layer(2)
                r, _ = relu_via_service(
                    session, ArithmeticShares(h.reshape(-1), BITS), rng
                )
                h = r.values.astype(np.uint64).reshape(M, H)
                pipe.wait_layer(3)
                return matmul_via_service(session, h, shares["w2"][party])

            return run

        try:
            z0, z1 = run_concurrently(
                infer(svc0, pipe0, 0), infer(svc1, pipe1, 1), 300.0
            )
        except ChannelError as exc:
            pytest.fail(f"{exc!r} (svc errors: {svc0.error}, {svc1.error})")
        pipe0.finish()
        pipe1.finish()
        yield {
            "plan": plan,
            "svc0": svc0,
            "got": (z0 + z1) & MASK,
            "expect": expect,
            "stall_before": stall_before,
            "draws_before": draws_before,
        }
        svc0.stop(), svc1.stop()
        mux0.close(), mux1.close()

    def test_output_bit_exact(self, planned_run):
        assert np.array_equal(planned_run["got"], planned_run["expect"])

    def test_session_draws_match_plan_exactly(self, planned_run):
        svc0 = planned_run["svc0"]
        before = planned_run["draws_before"]
        for kind, count in planned_run["plan"].pool_targets().items():
            drawn = svc0.session_draws.get(kind, 0) - before.get(kind, 0)
            assert drawn == count, (kind, drawn, count)

    def test_no_planned_pool_stalled(self, planned_run):
        svc0 = planned_run["svc0"]
        after = {k: s["stalled_draws"] for k, s in svc0.pool_stats().items()}
        for kind in planned_run["plan"].pool_targets():
            assert after[kind] == planned_run["stall_before"].get(kind, 0), kind
