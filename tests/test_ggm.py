"""GGM tree expansion + punctured reconstruction tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import blocks
from repro.crypto.prg import AesTreePrg, ChaChaTreePrg
from repro.errors import ParameterError
from repro.spcot.ggm import (
    PuncturedReconstructor,
    alpha_digits,
    expand_full,
    level_sums,
    reconstruct_punctured,
)


def sums_for_receiver(levels, arity, digits):
    """What the (m-1)-of-m OTs would deliver: all sums except digit_i."""
    out = []
    for lvl, digit in enumerate(digits, start=1):
        sums = level_sums(levels[lvl], arity)
        out.append({j: sums[j : j + 1] for j in range(arity) if j != digit})
    return out


class TestExpansion:
    @pytest.mark.parametrize("arity,depth", [(2, 5), (4, 3), (8, 2)])
    def test_level_shapes(self, arity, depth, rng):
        prg = ChaChaTreePrg(arity)
        levels = expand_full(prg, blocks.random_blocks(1, rng), depth)
        assert len(levels) == depth + 1
        for i, lvl in enumerate(levels):
            assert lvl.shape == (arity**i, 2)

    def test_rejects_zero_depth(self, rng):
        with pytest.raises(ParameterError):
            expand_full(ChaChaTreePrg(2), blocks.random_blocks(1, rng), 0)

    def test_same_seed_same_tree(self, rng):
        seed = blocks.random_blocks(1, rng)
        a = expand_full(ChaChaTreePrg(4), seed, 3)
        b = expand_full(ChaChaTreePrg(4), seed, 3)
        for la, lb in zip(a, b):
            assert np.array_equal(la, lb)

    def test_level_sums_definition(self, rng):
        nodes = blocks.random_blocks(12, rng)
        sums = level_sums(nodes, 4)
        for j in range(4):
            assert np.array_equal(sums[j], np.bitwise_xor.reduce(nodes[j::4], axis=0))

    def test_level_sums_rejects_ragged(self, rng):
        with pytest.raises(ParameterError):
            level_sums(blocks.random_blocks(10, rng), 4)


class TestAlphaDigits:
    def test_big_endian_composition(self):
        digits = alpha_digits(0b10110, 2, 5)
        acc = 0
        for d in digits:
            acc = acc * 2 + d
        assert acc == 0b10110

    @pytest.mark.parametrize("arity,depth", [(2, 6), (4, 4)])
    def test_bijective_over_range(self, arity, depth):
        seen = set()
        for alpha in range(arity**depth):
            seen.add(tuple(alpha_digits(alpha, arity, depth)))
        assert len(seen) == arity**depth

    def test_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            alpha_digits(16, 2, 4)


class TestPunctureReconstruction:
    @pytest.mark.parametrize("arity,depth", [(2, 4), (4, 3), (8, 2)])
    def test_all_leaves_except_alpha(self, arity, depth, rng):
        prg = ChaChaTreePrg(arity)
        seed = blocks.random_blocks(1, rng)
        levels = expand_full(prg, seed, depth)
        n_leaves = arity**depth
        alpha = int(rng.integers(0, n_leaves))
        digits = alpha_digits(alpha, arity, depth)
        recon, hole = reconstruct_punctured(
            ChaChaTreePrg(arity), depth, alpha, sums_for_receiver(levels, arity, digits)
        )
        assert hole == alpha
        expect = levels[-1].copy()
        expect[alpha] = 0
        assert np.array_equal(recon, expect)

    def test_aes_prg_variant(self, rng):
        prg = AesTreePrg(2)
        seed = blocks.random_blocks(1, rng)
        levels = expand_full(prg, seed, 4)
        alpha = 9
        digits = alpha_digits(alpha, 2, 4)
        recon, hole = reconstruct_punctured(
            AesTreePrg(2), 4, alpha, sums_for_receiver(levels, 2, digits)
        )
        assert hole == alpha
        expect = levels[-1].copy()
        expect[alpha] = 0
        assert np.array_equal(recon, expect)

    def test_feed_level_validates_slots(self, rng):
        recon = PuncturedReconstructor(ChaChaTreePrg(4), 2, [1, 2])
        with pytest.raises(ParameterError):
            recon.feed_level({0: blocks.zeros(1)})  # missing slots 2, 3

    def test_leaves_before_done_raises(self):
        recon = PuncturedReconstructor(ChaChaTreePrg(4), 2, [0, 0])
        with pytest.raises(ParameterError):
            recon.leaves()

    def test_digit_count_must_match_depth(self):
        with pytest.raises(ParameterError):
            PuncturedReconstructor(ChaChaTreePrg(2), 3, [0, 1])

    @given(alpha=st.integers(0, 63))
    @settings(max_examples=16, deadline=None)
    def test_property_every_alpha_binary(self, alpha):
        rng = np.random.default_rng(alpha)
        prg = ChaChaTreePrg(2)
        levels = expand_full(prg, blocks.random_blocks(1, rng), 6)
        digits = alpha_digits(alpha, 2, 6)
        recon, hole = reconstruct_punctured(
            ChaChaTreePrg(2), 6, alpha, sums_for_receiver(levels, 2, digits)
        )
        assert hole == alpha
        expect = levels[-1].copy()
        expect[alpha] = 0
        assert np.array_equal(recon, expect)

    @given(alpha=st.integers(0, 63))
    @settings(max_examples=16, deadline=None)
    def test_property_every_alpha_quaternary(self, alpha):
        rng = np.random.default_rng(1000 + alpha)
        prg = ChaChaTreePrg(4)
        levels = expand_full(prg, blocks.random_blocks(1, rng), 3)
        digits = alpha_digits(alpha, 4, 3)
        recon, hole = reconstruct_punctured(
            ChaChaTreePrg(4), 3, alpha, sums_for_receiver(levels, 4, digits)
        )
        assert hole == alpha
        expect = levels[-1].copy()
        expect[alpha] = 0
        assert np.array_equal(recon, expect)
