"""Cache simulator tests: LRU semantics, geometry, sampling."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.sim.cache import CacheConfig, CacheSim, sampled_hit_rate


def tiny_cache(size=512, line=64, ways=2):
    return CacheSim(CacheConfig(size, line, ways))


class TestGeometry:
    def test_lines_and_sets(self):
        cfg = CacheConfig(size_bytes=64 * 1024, line_bytes=64, ways=8)
        assert cfg.n_lines == 1024
        assert cfg.n_sets == 128

    def test_rejects_non_multiple_size(self):
        with pytest.raises(ParameterError):
            CacheConfig(size_bytes=1000, line_bytes=64, ways=8)

    @pytest.mark.parametrize(
        "kib,lat", [(32, 1), (64, 1), (128, 2), (256, 2), (512, 3), (1024, 3), (2048, 4)]
    )
    def test_access_latency_grows_with_capacity(self, kib, lat):
        cfg = CacheConfig(kib * 1024, 64, 8)
        assert cfg.access_latency_cycles() == lat


class TestLruSemantics:
    def test_cold_miss_then_hit(self):
        c = tiny_cache()
        assert c.access(0) is False
        assert c.access(0) is True

    def test_same_line_different_offsets_hit(self):
        c = tiny_cache()
        c.access(0)
        assert c.access(63) is True
        assert c.access(64) is False

    def test_lru_evicts_least_recent(self):
        # 2-way, set 0 holds lines 0 and 8 (4 sets); touch 0, 8, re-touch 0,
        # then 16 evicts 8 (the least recently used), not 0.
        c = tiny_cache(size=512, line=64, ways=2)  # 4 sets
        s = c.config.n_sets
        line = c.config.line_bytes
        a, b, d = 0, s * line, 2 * s * line  # all map to set 0
        c.access(a)
        c.access(b)
        c.access(a)  # refresh a
        c.access(d)  # evicts b
        assert c.access(a) is True
        assert c.access(b) is False

    def test_sets_are_independent(self):
        c = tiny_cache(size=512, line=64, ways=2)
        c.access(0)  # set 0
        c.access(64)  # set 1
        assert c.access(0) is True
        assert c.access(64) is True

    def test_stats_accumulate(self):
        c = tiny_cache()
        for addr in (0, 0, 64, 64, 128):
            c.access(addr)
        assert c.stats.accesses == 5
        assert c.stats.hits == 2
        assert c.stats.misses == 3
        assert c.stats.hit_rate == pytest.approx(0.4)

    def test_run_trace_matches_access_loop(self, rng):
        addrs = rng.integers(0, 4096, 500) * 16
        a = tiny_cache(2048, 64, 4)
        hits_vec = a.run_trace(addrs)
        b = tiny_cache(2048, 64, 4)
        hits_loop = np.array([b.access(int(x)) for x in addrs])
        assert np.array_equal(hits_vec, hits_loop)


class TestWorkloadBehaviour:
    def test_sequential_scan_hits_within_lines(self):
        c = tiny_cache(size=4096, line=64, ways=4)
        hits = c.run_trace(np.arange(0, 1024, 16))
        # 16 blocks per access-line ratio: 1 miss + 3 hits per 64B line.
        assert c.stats.hit_rate == pytest.approx(0.75)

    def test_working_set_within_capacity_hits_after_warmup(self, rng):
        c = tiny_cache(size=8192, line=64, ways=8)
        addrs = np.tile(np.arange(0, 4096, 64), 10)
        c.run_trace(addrs)
        assert c.stats.hit_rate > 0.85

    def test_thrashing_working_set_mostly_misses(self, rng):
        c = tiny_cache(size=1024, line=64, ways=2)
        addrs = (rng.integers(0, 10_000, 2000) * 64).astype(np.int64)
        c.run_trace(addrs)
        assert c.stats.hit_rate < 0.05

    def test_bigger_cache_never_worse_on_loop_trace(self):
        addrs = np.tile(np.arange(0, 64 * 256, 64), 4)
        small = tiny_cache(size=4096, line=64, ways=8)
        large = tiny_cache(size=32768, line=64, ways=8)
        small.run_trace(addrs)
        large.run_trace(addrs)
        assert large.stats.hit_rate >= small.stats.hit_rate


class TestSampling:
    def test_sample_one_is_exact(self, rng):
        addrs = (rng.integers(0, 2048, 3000) * 16).astype(np.int64)
        cfg = CacheConfig(4096, 64, 4)
        exact = CacheSim(cfg)
        exact.run_trace(addrs)
        sampled = sampled_hit_rate(cfg, addrs, set_sample=1)
        assert sampled.hit_rate == pytest.approx(exact.stats.hit_rate)

    def test_set_sampling_close_to_exact(self, rng):
        addrs = (rng.integers(0, 8192, 20_000) * 16).astype(np.int64)
        cfg = CacheConfig(16 * 1024, 64, 8)
        exact = CacheSim(cfg)
        exact.run_trace(addrs)
        est = sampled_hit_rate(cfg, addrs, set_sample=4)
        assert abs(est.hit_rate - exact.stats.hit_rate) < 0.05

    def test_sample_validates(self):
        with pytest.raises(ParameterError):
            sampled_hit_rate(CacheConfig(4096, 64, 4), np.zeros(4), set_sample=0)
