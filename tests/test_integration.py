"""Cross-layer integration tests: the full pipeline of the paper.

Base OTs -> Ferret OT extension -> online nonlinear protocols, i.e.
correlations produced by the *extension* protocol (not fresh base OTs)
directly power secure comparisons and maxima -- exactly the
preprocessing/online split of Section 2.2.
"""

import numpy as np
import pytest

from repro.ferret.config import FerretConfig
from repro.ferret.protocol import ferret_pair
from repro.mpc.compare import cots_needed, triples_needed
from repro.mpc.maxpool import max_pair
from repro.mpc.sharing import from_signed, reconstruct_arith, share_arith, to_signed
from repro.mpc.triples import generate_bit_triples
from repro.ot.channel import run_pair
from repro.ot.cot import CotPool, verify_cot

BITS = 12
N = 8


@pytest.fixture(scope="module")
def extended_pools():
    """Two OTE sessions with swapped roles: pools in both directions.

    This is the role-switching workload of Section 5.2 in protocol
    form: the same party must consume correlations as sender in one
    direction and receiver in the other.
    """
    config = FerretConfig.small(scale=1024, arity=4, prg_kind="chacha8")
    s_fwd, r_fwd, _, _ = ferret_pair(config, rounds=1, seed=21)
    s_rev, r_rev, _, _ = ferret_pair(config, rounds=1, seed=22)
    assert verify_cot(s_fwd[0], r_fwd[0]) and verify_cot(s_rev[0], r_rev[0])
    return s_fwd[0], r_fwd[0], s_rev[0], r_rev[0]


def _pools(batch_s, batch_r):
    return CotPool(sender=batch_s), CotPool(receiver=batch_r)


class TestExtendedCorrelationsPowerOnlinePhase:
    def test_secure_max_from_extension_outputs(self, extended_pools):
        s_fwd, r_fwd, s_rev, r_rev = extended_pools
        rng = np.random.default_rng(5)
        a_plain = rng.integers(-(1 << 9), 1 << 9, N)
        b_plain = rng.integers(-(1 << 9), 1 << 9, N)
        a0, a1 = share_arith(from_signed(a_plain, BITS), rng, bits=BITS)
        b0, b1 = share_arith(from_signed(b_plain, BITS), rng, bits=BITS)

        n_cmp = cots_needed(N, BITS - 1)
        n_tri = triples_needed(N, BITS - 1)
        # Carve every pool needed by the online phase out of the two
        # Ferret output batches -- no fresh base OTs.
        p0_fwd, p1_fwd = _pools(s_fwd, r_fwd)
        p1_rev, p0_rev = _pools(s_rev, r_rev)
        cmp0 = CotPool(sender=p0_fwd.take_sender(n_cmp))
        cmp1 = CotPool(receiver=p1_fwd.take_receiver(n_cmp))
        mux0_s = CotPool(sender=p0_fwd.take_sender(N))
        mux1_r = CotPool(receiver=p1_fwd.take_receiver(N))
        mux1_s = CotPool(sender=p1_rev.take_sender(N))
        mux0_r = CotPool(receiver=p0_rev.take_receiver(N))
        tri0_s = CotPool(sender=p0_fwd.take_sender(n_tri))
        tri1_r = CotPool(receiver=p1_fwd.take_receiver(n_tri))
        tri1_s = CotPool(sender=p1_rev.take_sender(n_tri))
        tri0_r = CotPool(receiver=p0_rev.take_receiver(n_tri))

        rng0, rng1 = np.random.default_rng(6), np.random.default_rng(7)
        t0, t1, _, _ = run_pair(
            lambda ch: generate_bit_triples(ch, n_tri, tri0_s, tri0_r, rng0, party=0),
            lambda ch: generate_bit_triples(ch, n_tri, tri1_s, tri1_r, rng1, party=1),
        )
        m0, m1, _, _ = run_pair(
            lambda ch: max_pair(ch, a0, b0, cmp0, mux0_s, mux0_r, t0, rng0, party=0),
            lambda ch: max_pair(ch, a1, b1, cmp1, mux1_s, mux1_r, t1, rng1, party=1),
        )
        result = to_signed(reconstruct_arith(m0, m1), BITS)
        assert np.array_equal(result, np.maximum(a_plain, b_plain))

    def test_extension_outputs_sufficient_for_workload(self, extended_pools):
        """One small OTE round funds the whole online workload above."""
        s_fwd, _, _, _ = extended_pools
        demand = cots_needed(N, BITS - 1) + N + triples_needed(N, BITS - 1)
        assert len(s_fwd) >= demand
