"""End-to-end quantized fixed-point inference through the provisioning
service: plan -> prefill -> online 3-layer MLP with per-layer secure
rescaling, bit-exact against a plaintext fixed-point oracle, plus the
pooled truncation-pair (tprc) production path."""

import numpy as np
import pytest

from repro.errors import ChannelError, ParameterError, ServiceError
from repro.ferret.config import FerretConfig
from repro.mpc.matmul import matmul_via_service
from repro.mpc.relu import relu_via_service
from repro.mpc.sharing import ArithmeticShares, from_signed, share_arith_nd
from repro.mpc.triples import ring_mask_u64
from repro.mpc.truncation import (
    FixedPointConfig,
    trunc_online_bytes,
    trunc_online_messages,
    trunc_preproc_bytes,
    trunc_preproc_messages,
    trunc_via_service,
)
from repro.ot.channel import LocalChannel, run_concurrently
from repro.ppml.layers import Activation, Graph, Linear, Rescale
from repro.ppml.plan import plan_graph, trunc_demand
from repro.runtime import CorrelationService, MuxChannel, ServiceTuning

CFG = FerretConfig.small(scale=1024, arity=4, prg_kind="chacha8")
BITS = 16
FX = FixedPointConfig(bits=BITS, frac_bits=4, mag_bits=9)
MASK = ring_mask_u64(BITS)
#: enable_rots=False keeps production deterministic for the byte-model
#: test (ROT refill would concurrently drain cot/fwd stock and split
#: TPRC batches); nothing below draws random OTs.
TUNING = ServiceTuning(
    ring_bits=BITS,
    triple_low=256, triple_high=1024, triple_chunk=512,
    rtri_chunk=128, tprc_chunk=64,
    enable_rots=False,
)

M, K, H1, H2, OUT = 4, 12, 6, 5, 3


def quantized_model():
    g = Graph("QuantMLP3", (M, K))
    g.add(Linear(H1))
    g.add(Rescale())
    g.add(Activation("relu"))
    g.add(Linear(H2))
    g.add(Rescale())
    g.add(Linear(OUT))
    return g


def fixed_point_oracle(x, w1, w2, w3):
    h = (x @ w1) >> FX.frac_bits
    h = np.maximum(h, 0)
    h = (h @ w2) >> FX.frac_bits
    return ((h @ w3).astype(np.int64) & int(MASK)).astype(np.uint64)


def run_both(fn0, fn1, timeout=300.0, ctx=()):
    try:
        return run_concurrently(fn0, fn1, timeout)
    except ChannelError as exc:
        pytest.fail(f"{exc!r} (svc errors: {ctx})")


@pytest.fixture(scope="module")
def services():
    base_a, base_b = LocalChannel.pair(timeout=180.0)
    mux0 = MuxChannel(base_a, timeout=180.0)
    mux1 = MuxChannel(base_b, timeout=180.0)
    svc0 = CorrelationService(0, mux0, CFG, TUNING, seed=0x5C4).start()
    svc1 = CorrelationService(1, mux1, CFG, TUNING, seed=0x5C4).start()
    yield svc0, svc1, mux0, mux1
    svc0.stop(), svc1.stop()
    mux0.close(), mux1.close()


class TestQuantizedInference:
    """plan -> prefill -> online quantized MLP, bit-exact and stall-free."""

    @pytest.fixture(scope="class")
    def planned_run(self, services):
        svc0, svc1, _, _ = services
        plan = plan_graph(quantized_model(), bits=BITS, fx=FX)
        run_both(
            lambda: plan.prefill(svc0, timeout=240.0),
            lambda: plan.prefill(svc1, timeout=240.0),
            ctx=(svc0.error, svc1.error),
        )
        stall_before = {
            kind: s["stalled_draws"] for kind, s in svc0.pool_stats().items()
        }
        draws_before = dict(svc0.session_draws)

        gen = np.random.default_rng(23)
        x = gen.integers(-8, 8, (M, K))
        w1 = gen.integers(-4, 4, (K, H1))
        w2 = gen.integers(-4, 4, (H1, H2))
        w3 = gen.integers(-4, 4, (H2, OUT))
        shares = {
            key: share_arith_nd(from_signed(mat, BITS), gen, bits=BITS)
            for key, mat in (("x", x), ("w1", w1), ("w2", w2), ("w3", w3))
        }

        def infer(svc, party):
            def run():
                session = svc.session("fx-mlp")
                rng = np.random.default_rng(60 + party)
                h = matmul_via_service(
                    session, shares["x"][party], shares["w1"][party],
                    fx=FX, rescale=True, rng=rng,
                )
                r, _ = relu_via_service(
                    session, ArithmeticShares(h.reshape(-1), BITS), rng
                )
                h = r.values.astype(np.uint64).reshape(M, H1)
                h = matmul_via_service(
                    session, h, shares["w2"][party],
                    fx=FX, rescale=True, rng=rng,
                )
                return matmul_via_service(session, h, shares["w3"][party])

            return run

        z0, z1 = run_both(infer(svc0, 0), infer(svc1, 1),
                          ctx=(svc0.error, svc1.error))
        return {
            "plan": plan,
            "svc0": svc0,
            "got": (z0 + z1) & MASK,
            "expect": fixed_point_oracle(x, w1, w2, w3),
            "stall_before": stall_before,
            "draws_before": draws_before,
        }

    def test_online_output_bit_exact_vs_oracle(self, planned_run):
        """The acceptance bar: multi-layer quantized inference with
        per-layer rescaling EQUALS the plaintext fixed-point oracle."""
        assert np.array_equal(planned_run["got"], planned_run["expect"])

    def test_plan_prices_rescale_layers(self, planned_run):
        """Rescale layers translate into executable truncation demand --
        comparison COTs, their bit triples, and B2A ring triples."""
        plan = planned_run["plan"]
        rescale_demands = [d for name, d in plan.per_layer if name == "rescale"]
        assert len(rescale_demands) == 2
        d1 = trunc_demand(M * H1, FX)
        assert rescale_demands[0].cot_fwd == d1.cot_fwd
        assert rescale_demands[0].bit_triples == d1.bit_triples
        assert rescale_demands[0].ring_triples == d1.ring_triples
        assert plan.demand.unplanned == {}
        assert len(plan.per_layer) == 6  # trace covered every layer

    def test_session_draws_match_plan_exactly(self, planned_run):
        svc0 = planned_run["svc0"]
        before = planned_run["draws_before"]
        for kind, count in planned_run["plan"].pool_targets().items():
            drawn = svc0.session_draws.get(kind, 0) - before.get(kind, 0)
            assert drawn == count, (kind, drawn, count)

    def test_online_phase_never_stalled(self, planned_run):
        svc0 = planned_run["svc0"]
        after = {k: s["stalled_draws"] for k, s in svc0.pool_stats().items()}
        for kind in planned_run["plan"].pool_targets():
            assert after[kind] == planned_run["stall_before"].get(kind, 0), kind


class TestTruncPairPool:
    """The tprc pool kind: TPRC production, draws, and byte model."""

    def test_drawn_pairs_reconstruct_exactly(self, services):
        svc0, svc1, _, _ = services

        def draw(svc):
            return lambda: svc.session("tprc-d").draw_trunc_pairs(9, FX.frac_bits)

        p0, p1 = run_both(draw(svc0), draw(svc1), ctx=(svc0.error, svc1.error))
        r = (p0.r + p1.r) & MASK
        s = (p0.s + p1.s) & MASK
        assert np.array_equal(s, r >> np.uint64(FX.frac_bits))
        assert svc0.session_draws[f"tprc/{FX.frac_bits}"] >= 9

    def test_pair_mode_trunc_via_service(self, services):
        svc0, svc1, _, _ = services
        gen = np.random.default_rng(4)
        vals = from_signed(
            gen.integers(-(1 << FX.mag_bits) + 1, 1 << FX.mag_bits, 10), BITS
        ).astype(np.uint64)
        x0, x1 = share_arith_nd(vals, gen, bits=BITS)
        z0, z1 = run_both(
            lambda: trunc_via_service(svc0.session("tprc-t"), x0, FX, mode="pair"),
            lambda: trunc_via_service(svc1.session("tprc-t"), x1, FX, mode="pair"),
            ctx=(svc0.error, svc1.error),
        )
        diff = FX.to_signed(((z0 + z1) - FX.trunc_reference(vals)) & MASK)
        wrap = 1 << (BITS - FX.frac_bits)
        # Probabilistic contract: floor or floor+1, except the rare
        # (2^(mag+1-bits)) mask-wrap event worth 2^(bits-f).
        assert np.all(np.isin(diff, [0, 1, -wrap, 1 - wrap])), diff

    def test_tprc_production_bytes_match_model(self, services):
        """One prefilled TPRC batch moves exactly trunc_preproc_bytes
        (plus the known per-message mux tag framing) over the prov/tprc
        sub-channel -- measured per-tag, both ends."""
        svc0, svc1, mux0, mux1 = services
        n = 11
        pool = svc0.trunc_pool(FX.frac_bits)
        svc1.trunc_pool(FX.frac_bits)
        stock = {
            "cot/fwd": n * pool.cots_per_item + 512,
            "tri": n * pool.triples_per_item + 256,
        }
        ctx = (svc0.error, svc1.error)
        run_both(lambda: svc0.prefill(stock, 240.0),
                 lambda: svc1.prefill(stock, 240.0), ctx=ctx)

        def tag_bytes():
            total = 0
            for mux in (mux0, mux1):
                stats = mux.stats_by_tag().get("prov/tprc")
                total += stats.bytes_sent if stats else 0
            return total

        before = tag_bytes()
        run_both(
            lambda: svc0.prefill({pool.name: pool.level + n}, 240.0),
            lambda: svc1.prefill({pool.name: n}, 240.0),
            ctx=ctx,
        )
        framing = (2 + len(b"prov/tprc")) * trunc_preproc_messages(FX)
        assert tag_bytes() - before == trunc_preproc_bytes(n, FX) + framing

    @pytest.mark.parametrize("mode,n_allocs", [("exact", 3), ("pair", 1)])
    def test_online_trunc_session_bytes_match_model(self, services, mode, n_allocs):
        """Online truncation over a dedicated session sub-channel moves
        exactly trunc_online_bytes plus the leader's allocation offsets
        and the per-message mux framing."""
        svc0, svc1, mux0, mux1 = services
        name = f"bytes-{mode}"
        tag = f"sess/{name}".encode()
        gen = np.random.default_rng(8)
        n = 6
        vals = from_signed(gen.integers(-200, 200, n), BITS).astype(np.uint64)
        x0, x1 = share_arith_nd(vals, gen, bits=BITS)
        run_both(
            lambda: trunc_via_service(svc0.session(name), x0, FX, mode=mode),
            lambda: trunc_via_service(svc1.session(name), x1, FX, mode=mode),
            ctx=(svc0.error, svc1.error),
        )
        measured = sum(
            mux.stats_by_tag()[tag.decode()].bytes_sent for mux in (mux0, mux1)
        )
        messages = trunc_online_messages(FX, mode) + n_allocs
        expect = (
            trunc_online_bytes(n, FX, mode)
            + 8 * n_allocs  # party 0's pool-offset announcements
            + (2 + len(tag)) * messages
        )
        assert measured == expect

    def test_trunc_pool_requires_bit_triples(self):
        base_a, _ = LocalChannel.pair()
        mux0 = MuxChannel(base_a)
        bad = ServiceTuning(enable_triples=False, enable_ring_triples=False)
        svc = CorrelationService(0, mux0, CFG, bad)
        with pytest.raises(ServiceError, match="bit-triple"):
            svc.trunc_pool(4)
        mux0.close()


class TestPlannerPairMode:
    """Pair-mode planning: Rescale layers become tprc pool targets."""

    def test_pair_mode_targets_and_total_cots(self):
        g = Graph("pair", (2, 3))
        g.add(Linear(4))
        g.add(Rescale())
        plan = plan_graph(g, bits=BITS, fx=FX, trunc_mode="pair")
        targets = plan.pool_targets()
        assert targets[f"tprc/{FX.frac_bits}"] == 8
        assert "rtri" not in targets and "tri" not in targets
        # The plan table renders the pair demand, not an all-zero row.
        rescale_row = next(r for r in plan.summary_rows() if r[0] == "rescale")
        assert rescale_row[-1] == f"f{FX.frac_bits}x8"
        # total_cots charges the pair's COTs plus its generation triples.
        pair_only = plan_graph(g, bits=BITS, fx=FX, trunc_mode="pair")
        exact = plan_graph(g, bits=BITS, fx=FX, trunc_mode="exact")
        assert pair_only.demand.total_cots(BITS) > 0
        assert exact.demand.cot_fwd == 8 * (BITS + FX.frac_bits)

    def test_rescale_without_fx_is_an_honest_gap(self):
        g = Graph("gap", (2, 3))
        g.add(Rescale())
        plan = plan_graph(g, bits=BITS)
        assert plan.demand.unplanned == {"trunc": 6}

    def test_framework_profiles_price_rescale_graphs(self):
        """The calibrated cost tables fold linear-layer truncation into
        cots_per_mac, so a Rescale-bearing graph must price cleanly
        (not crash, not double-charge)."""
        from repro.ppml.nonlinear import CRYPTFLOW2

        g = Graph("q", (2, 3))
        g.add(Linear(4))
        plain = CRYPTFLOW2.cot_demand(g.nonlinear_counts(), g.total_macs)
        g.add(Rescale())
        with_rescale = CRYPTFLOW2.cot_demand(g.nonlinear_counts(), g.total_macs)
        assert with_rescale == plain
        assert CRYPTFLOW2.online_bytes(g.nonlinear_counts()) == 0

    def test_rescale_validation_fails_before_any_draw(self):
        """rescale=True without fx/truncator must fail before a triple
        is drawn or an opening crosses the wire."""
        from repro.mpc.matmul import matmul_online, matmul_via_service
        from repro.mpc.triples import dealer_matrix_triples

        with pytest.raises(ParameterError, match="FixedPointConfig"):
            matmul_via_service(None, np.zeros((2, 3)), np.zeros((3, 2)), rescale=True)
        t0, _ = dealer_matrix_triples(2, 3, 2, BITS, np.random.default_rng(0))
        with pytest.raises(ParameterError, match="truncator"):
            matmul_online(
                None, np.zeros((2, 3)), np.zeros((3, 2)), t0, 0, rescale=True
            )
