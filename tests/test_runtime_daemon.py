"""Persistent inference daemon: serving, admission, leases, re-attach.

Covers the PR-9 acceptance surface: sequential and batched requests
through one daemon pair are bit-exact against the fixed-point oracle
with per-request draws scaling by exactly batch x plan; the leader's
admission window rejects with a typed error on BOTH parties; unclaimed
results are reaped on lease expiry; and a mid-request transport
disconnect heals through the resume handshake with the client
re-attaching to its in-flight request by lease token.
"""

import threading
import time

import numpy as np
import pytest

from repro.errors import AdmissionReject, LeaseExpired
from repro.ferret.config import FerretConfig
from repro.mpc.sharing import from_signed, share_arith_nd
from repro.mpc.triples import ring_mask_u64
from repro.mpc.truncation import FixedPointConfig
from repro.ot.channel import LocalChannel, SocketChannel, run_concurrently
from repro.ot.faults import DISCONNECT, FaultEvent, FaultSchedule, FaultyChannel
from repro.ot.reconnect import ReconnectingChannel
from repro.ot.retry import RetryPolicy
from repro.ppml.layers import Activation, Graph, Linear, Rescale
from repro.runtime import (
    CorrelationService,
    DaemonConfig,
    InferenceDaemon,
    MuxChannel,
    ServiceTuning,
)

RING_BITS = 16
MASK = ring_mask_u64(RING_BITS)
FX = FixedPointConfig(bits=RING_BITS, frac_bits=4, mag_bits=9)
CFG = FerretConfig.small(scale=1024, arity=4, prg_kind="chacha8")
M, K, H, OUT = 2, 6, 4, 3
TUNING = dict(
    ring_bits=RING_BITS,
    triple_low=256, triple_high=1024, triple_chunk=256,
)


def build_graph():
    g = Graph("mlp", (M, K))
    g.add(Linear(H))
    g.add(Rescale())
    g.add(Activation("relu"))
    g.add(Linear(OUT))
    return g


def make_model(rng):
    """Plaintext weights, their shares, and the fixed-point oracle."""
    w1 = rng.integers(-4, 4, (K, H))
    w2 = rng.integers(-4, 4, (H, OUT))
    w1s = share_arith_nd(from_signed(w1, RING_BITS), rng, bits=RING_BITS)
    w2s = share_arith_nd(from_signed(w2, RING_BITS), rng, bits=RING_BITS)

    def oracle(x):
        h = np.maximum((x @ w1) >> FX.frac_bits, 0)
        return ((h @ w2).astype(np.int64) & int(MASK)).astype(np.uint64)

    return w1s, w2s, oracle


def share_input(x, rng):
    return share_arith_nd(from_signed(x, RING_BITS), rng, bits=RING_BITS)


def start_daemon_pair(dcfg, seed=0xD0):
    base0, base1 = LocalChannel.pair(timeout=120.0)
    mux0, mux1 = MuxChannel(base0, timeout=120.0), MuxChannel(base1, timeout=120.0)
    tuning = ServiceTuning(**TUNING)
    svc0 = CorrelationService(0, mux0, CFG, tuning, seed=seed).start()
    svc1 = CorrelationService(1, mux1, CFG, tuning, seed=seed).start()
    rng = np.random.default_rng(seed)
    g = build_graph()
    w1s, w2s, oracle = make_model(rng)
    d0 = InferenceDaemon(svc0, g, [w1s[0], w2s[0]], fx=FX, cfg=dcfg).start()
    d1 = InferenceDaemon(svc1, g, [w1s[1], w2s[1]], fx=FX, cfg=dcfg).start()
    return {
        "d0": d0, "d1": d1, "svc0": svc0, "svc1": svc1,
        "mux0": mux0, "mux1": mux1, "oracle": oracle, "rng": rng,
    }


def stop_daemon_pair(stack):
    run_concurrently(
        lambda: stack["d0"].stop(60.0), lambda: stack["d1"].stop(60.0), 120.0
    )
    stack["svc0"].stop(), stack["svc1"].stop()
    stack["mux0"].close(), stack["mux1"].close()


class TestDaemonServing:
    """One shared daemon pair: sequential + batched bit-exactness,
    draw accounting, live-lease attach, telemetry."""

    @pytest.fixture(scope="class")
    def stack(self):
        dcfg = DaemonConfig(
            max_inflight=4, session_inflight=2,
            lease_ttl_s=30.0, request_timeout_s=120.0,
        )
        stack = start_daemon_pair(dcfg)
        yield stack
        stop_daemon_pair(stack)

    def _roundtrip(self, stack, xs, session="cli"):
        """Submit each x as one request on both parties; reconstructed
        outputs + the leader-side requests."""
        rng = stack["rng"]
        shares = [share_input(x, rng) for x in xs]
        reqs = {}

        def party(key, d, i):
            out = []
            rs = [d.submit(session, sh[i]) for sh in shares]
            reqs[key] = rs
            for r in rs:
                out.append(r.result(120.0))
            return out

        r0, r1 = run_concurrently(
            lambda: party(0, stack["d0"], 0),
            lambda: party(1, stack["d1"], 1),
            240.0,
        )
        outs = [(a[0] + b[0]) & MASK for a, b in zip(r0, r1)]
        return outs, reqs[0]

    def test_sequential_requests_bit_exact(self, stack):
        xs = [stack["rng"].integers(-8, 8, (M, K)) for _ in range(3)]
        outs, reqs = self._roundtrip(stack, xs)
        for x, got in zip(xs, outs):
            assert np.array_equal(got, stack["oracle"](x))
        # Every request recorded its first-layer wait (the overlap
        # figure of merit the daemon benchmark gates on).
        assert all(r.first_wait_s is not None for r in reqs)
        assert all(r.online_s is not None for r in reqs)

    def test_batched_draws_are_plan_times_batch(self, stack):
        batch = 3
        rng = stack["rng"]
        xs = [rng.integers(-8, 8, (M, K)) for _ in range(batch)]
        shares = [share_input(x, rng) for x in xs]
        before = stack["svc0"].session_draw_counts()

        r0, r1 = run_concurrently(
            lambda: stack["d0"].submit("batch", [s[0] for s in shares]).result(120.0),
            lambda: stack["d1"].submit("batch", [s[1] for s in shares]).result(120.0),
            240.0,
        )
        for j, x in enumerate(xs):
            got = (r0[j] + r1[j]) & MASK
            assert np.array_equal(got, stack["oracle"](x))

        after = stack["svc0"].session_draw_counts()
        targets = stack["d0"].plan.pool_targets()
        assert targets, "plan must demand correlations"
        for kind, count in targets.items():
            drawn = after.get(kind, 0) - before.get(kind, 0)
            assert drawn == count * batch, (kind, drawn, count, batch)

    def test_attach_returns_live_request(self, stack):
        rng = stack["rng"]
        x = rng.integers(-8, 8, (M, K))
        sh = share_input(x, rng)

        def party(d, i):
            req = d.submit("att", sh[i])
            again = d.attach("att", req.lease.token)
            assert again is req
            return req.result(120.0)

        r0, r1 = run_concurrently(
            lambda: party(stack["d0"], 0), lambda: party(stack["d1"], 1), 240.0
        )
        assert np.array_equal((r0[0] + r1[0]) & MASK, stack["oracle"](x))
        assert stack["d0"].attaches >= 1 and stack["d1"].attaches >= 1
        with pytest.raises(LeaseExpired):
            stack["d0"].attach("att", "lease-no-such-token")

    def test_daemon_metrics_ride_the_service_registry(self, stack):
        tel = stack["svc0"].telemetry()
        assert tel["daemon/p0/admitted"] >= 5
        assert tel["daemon/p0/completed"] >= 5
        assert tel["daemon/p0/batch_items"] > tel["daemon/p0/completed"]
        assert tel["daemon/p0/failed"] == 0

    def test_resume_state_carries_lease_table(self, stack):
        rng = stack["rng"]
        x = rng.integers(-8, 8, (M, K))
        sh = share_input(x, rng)

        def party(d, i):
            req = d.submit("resume", sh[i])
            state = d.resume_state()
            assert state["leases"]["resume"]["token"] == req.lease.token
            assert state["leases"]["resume"]["seq"] == req.seq
            return req.result(120.0)

        run_concurrently(
            lambda: party(stack["d0"], 0), lambda: party(stack["d1"], 1), 240.0
        )


class TestAdmissionControl:
    """The leader's window rejects with a typed error on both parties.

    The follower holds back its submissions, so the leader's admitted
    requests cannot finish their (paired) online phase -- the in-flight
    window fills deterministically."""

    def test_reject_when_window_full(self):
        dcfg = DaemonConfig(
            max_inflight=2, session_inflight=2,
            lease_ttl_s=30.0, request_timeout_s=120.0,
        )
        stack = start_daemon_pair(dcfg, seed=0xADC)
        d0, d1, rng = stack["d0"], stack["d1"], stack["rng"]
        try:
            xs = [rng.integers(-8, 8, (M, K)) for _ in range(3)]
            shares = [share_input(x, rng) for x in xs]
            leader_full = threading.Event()
            rejects = {}

            def leader():
                reqs = [d0.submit(f"s{j}", shares[j][0]) for j in range(2)]
                try:
                    d0.submit("s2", shares[2][0])
                except AdmissionReject as exc:
                    rejects[0] = exc
                leader_full.set()
                return [r.result(120.0) for r in reqs]

            def follower():
                assert leader_full.wait(120.0)
                reqs = [d1.submit(f"s{j}", shares[j][1]) for j in range(2)]
                try:
                    d1.submit("s2", shares[2][1])
                except AdmissionReject as exc:
                    rejects[1] = exc
                return [r.result(120.0) for r in reqs]

            r0, r1 = run_concurrently(leader, follower, 240.0)
            for j in range(2):
                got = (r0[j][0] + r1[j][0]) & MASK
                assert np.array_equal(got, stack["oracle"](xs[j]))
            for party in (0, 1):
                assert party in rejects, f"party {party} was not rejected"
                assert rejects[party].inflight == 2
                assert rejects[party].limit == 2
            assert d0.rejected == 1 and d1.rejected == 1
        finally:
            stop_daemon_pair(stack)


class TestLeases:
    """Unclaimed results are reaped at lease expiry; claimed ones are
    not; ``result`` renews the lease while it waits."""

    def test_unclaimed_result_is_reaped(self):
        dcfg = DaemonConfig(
            max_inflight=4, session_inflight=2,
            lease_ttl_s=0.3, request_timeout_s=120.0,
        )
        stack = start_daemon_pair(dcfg, seed=0x1EA)
        d0, d1, rng = stack["d0"], stack["d1"], stack["rng"]
        try:
            x = rng.integers(-8, 8, (M, K))
            sh = share_input(x, rng)

            def party(d, i):
                req = d.submit("cli", sh[i])
                # Do NOT claim: wait for completion, then outlive the
                # lease without touching result() (which would renew).
                assert req.done.wait(120.0)
                deadline = time.monotonic() + 30.0
                while not req.expired:
                    assert time.monotonic() < deadline, "reaper never fired"
                    time.sleep(0.05)
                with pytest.raises(LeaseExpired):
                    req.result(5.0)
                with pytest.raises(LeaseExpired):
                    d.attach("cli", req.lease.token)
                return req

            q0, q1 = run_concurrently(
                lambda: party(d0, 0), lambda: party(d1, 1), 240.0
            )
            assert q0.output is None and q1.output is None
            assert d0.expired_leases >= 1 and d1.expired_leases >= 1

            # A promptly claimed request survives the same short TTL.
            x2 = rng.integers(-8, 8, (M, K))
            sh2 = share_input(x2, rng)
            r0, r1 = run_concurrently(
                lambda: d0.submit("cli", sh2[0]).result(120.0),
                lambda: d1.submit("cli", sh2[1]).result(120.0),
                240.0,
            )
            assert np.array_equal((r0[0] + r1[0]) & MASK, stack["oracle"](x2))
        finally:
            stop_daemon_pair(stack)


class TestReattachAfterDisconnect:
    """A mid-request transport disconnect heals through the reconnect
    stack; the daemon's resume state renews the live leases during the
    handshake and the client re-attaches by token, bit-exact."""

    def test_mid_request_disconnect_heals_via_lease(self):
        listener = SocketChannel.listen()
        port = listener.port
        schedules = {"server": FaultSchedule(()), "client": FaultSchedule(())}
        channels = {"server": [], "client": []}

        def dialer(name, make):
            def dial():
                chan = FaultyChannel(make(), schedules[name])
                channels[name].append(chan)
                return chan

            return dial

        dial_server = dialer(
            "server",
            lambda: listener.accept(accept_timeout=60.0, keep_open=True),
        )
        dial_client = dialer(
            "client",
            lambda: SocketChannel.connect("127.0.0.1", port, timeout=10.0),
        )
        policy = RetryPolicy(
            attempts=10, backoff_s=0.02, backoff_factor=2.0,
            max_backoff_s=0.25, deadline_s=60.0,
        )
        built, errs = {}, {}

        def build(name, dial):
            try:
                built[name] = ReconnectingChannel(dial, policy=policy)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errs[name] = exc

        threads = [
            threading.Thread(target=build, args=("server", dial_server)),
            threading.Thread(target=build, args=("client", dial_client)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        assert not errs, f"initial dial failed: {errs}"
        rc0, rc1 = built["server"], built["client"]

        mux0 = MuxChannel(rc0, timeout=240.0)
        mux1 = MuxChannel(rc1, timeout=240.0)
        tuning = ServiceTuning(**TUNING, take_timeout_s=240.0)
        svc0 = CorrelationService(0, mux0, CFG, tuning, seed=0xA77).start()
        svc1 = CorrelationService(1, mux1, CFG, tuning, seed=0xA77).start()
        rng = np.random.default_rng(0xA77)
        g = build_graph()
        w1s, w2s, oracle = make_model(rng)
        dcfg = DaemonConfig(
            max_inflight=4, lease_ttl_s=5.0, request_timeout_s=120.0
        )
        d0 = InferenceDaemon(svc0, g, [w1s[0], w2s[0]], fx=FX, cfg=dcfg).start()
        d1 = InferenceDaemon(svc1, g, [w1s[1], w2s[1]], fx=FX, cfg=dcfg).start()
        # Leases ride the resume handshake: the daemon's state (service
        # state + lease table) is what the reconnect stack replays.
        rc0.state_provider = d0.resume_state
        rc1.state_provider = d1.resume_state
        try:
            svc0.wait_ready(240.0)
            svc1.wait_ready(240.0)

            # Arm one mid-stream disconnect on the server side; the
            # request's online traffic will trip it.
            chaos = FaultSchedule((FaultEvent("send", 3, DISCONNECT),))
            schedules["server"] = chaos
            for chan in channels["server"]:
                chan.schedule = chaos

            x = rng.integers(-8, 8, (M, K))
            sh = share_input(x, rng)

            def party(d, i):
                req = d.submit("cli", sh[i])
                token = req.lease.token
                assert req.done.wait(120.0)
                # The dropped client comes back and re-attaches to its
                # in-flight (now finished) request by lease token.
                again = d.attach("cli", token)
                assert again is req
                return req.result(120.0)

            r0, r1 = run_concurrently(
                lambda: party(d0, 0), lambda: party(d1, 1), 240.0
            )
            assert np.array_equal((r0[0] + r1[0]) & MASK, oracle(x))
            assert chaos.injected, "scheduled disconnect was not injected"
            assert rc0.reconnects + rc1.reconnects >= 1
            # The handshake replayed the lease table to the peer.
            peer_leases = rc1.peer_state.get("leases")
            assert peer_leases is not None and "cli" in peer_leases
            assert d0.attaches >= 1 and d1.attaches >= 1
            assert d0.failed == 0 and d1.failed == 0
        finally:
            run_concurrently(lambda: d0.stop(60.0), lambda: d1.stop(60.0), 120.0)
            svc0.stop(), svc1.stop()
            mux0.close(), mux1.close()
            listener.close()
