"""Correlation-robust hash (MMO) tests."""

import numpy as np

from repro.crypto import blocks
from repro.crypto.crhf import Crhf, DEFAULT_CRHF, sigma


class TestSigma:
    def test_sigma_is_linear(self, rng):
        a = blocks.random_blocks(8, rng)
        b = blocks.random_blocks(8, rng)
        assert np.array_equal(sigma(blocks.xor(a, b)), blocks.xor(sigma(a), sigma(b)))

    def test_sigma_is_a_bijection(self, rng):
        # sigma(a||b) = (a^b)||a  =>  inverse exists: (lo, hi) -> (hi, lo^hi)
        x = blocks.random_blocks(16, rng)
        s = sigma(x)
        inv = np.empty_like(s)
        inv[:, 0] = s[:, 1]
        inv[:, 1] = s[:, 0] ^ s[:, 1]
        assert np.array_equal(inv, x)

    def test_sigma_has_no_fixed_subspace_on_samples(self, rng):
        x = blocks.random_blocks(64, rng)
        assert not np.any(blocks.equal(sigma(x), x))


class TestHash:
    def test_deterministic(self, rng):
        x = blocks.random_blocks(8, rng)
        assert np.array_equal(DEFAULT_CRHF.hash(x), DEFAULT_CRHF.hash(x))

    def test_batch_matches_single(self, rng):
        x = blocks.random_blocks(8, rng)
        full = DEFAULT_CRHF.hash(x)
        for i in range(8):
            assert np.array_equal(full[i : i + 1], DEFAULT_CRHF.hash(x[i : i + 1]))

    def test_differs_from_input(self, rng):
        x = blocks.random_blocks(32, rng)
        assert not np.any(blocks.equal(DEFAULT_CRHF.hash(x), x))

    def test_keys_domain_separate(self, rng):
        x = blocks.random_blocks(8, rng)
        a = Crhf(b"K" * 16).hash(x)
        b = Crhf(b"L" * 16).hash(x)
        assert not np.any(blocks.equal(a, b))

    def test_breaks_delta_correlation(self, rng):
        # H(x) xor H(x xor Delta) must not be constant across x.
        delta = blocks.random_blocks(1, rng)
        x = blocks.random_blocks(64, rng)
        d = blocks.xor(DEFAULT_CRHF.hash(x), DEFAULT_CRHF.hash(blocks.xor(x, delta)))
        assert len({blocks.to_bytes(d[i : i + 1]) for i in range(64)}) == 64


class TestTweaked:
    def test_tweaks_domain_separate(self, rng):
        x = blocks.random_blocks(4, rng)
        t0 = DEFAULT_CRHF.hash_tweaked(x, np.zeros(4, dtype=np.uint64))
        t1 = DEFAULT_CRHF.hash_tweaked(x, np.ones(4, dtype=np.uint64))
        assert not np.any(blocks.equal(t0, t1))

    def test_zero_tweak_matches_plain_hash(self, rng):
        x = blocks.random_blocks(4, rng)
        assert np.array_equal(
            DEFAULT_CRHF.hash_tweaked(x, np.zeros(4, dtype=np.uint64)),
            DEFAULT_CRHF.hash(x),
        )

    def test_does_not_mutate_input(self, rng):
        x = blocks.random_blocks(4, rng)
        keep = x.copy()
        DEFAULT_CRHF.hash_tweaked(x, np.arange(4, dtype=np.uint64))
        assert np.array_equal(x, keep)
