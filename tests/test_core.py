"""Top-level system tests: Figure 12 bands, Table 5, headline claims."""

import pytest

from repro.core import calibration
from repro.core.comparison import figure12_sweep, gpu_comparison, speedup_band
from repro.core.ironman import IronmanSystem, other_seconds, table5_rows
from repro.lpn.params import TABLE4_BY_LABEL
from repro.nmp.config import IRONMAN_1MB
from repro.ppml.network import LAN
from repro.utils.units import KIB


@pytest.fixture(scope="module")
def fig12_rows():
    return figure12_sweep(rank_options=(2, 16))


@pytest.fixture(scope="module")
def t5_rows():
    return table5_rows(IronmanSystem())


class TestFigure12:
    def test_best_param_is_2_20(self, fig12_rows):
        """Section 6.1: best improvement at output size 2^20."""
        cell = [r for r in fig12_rows if r["cache_kb"] == 1024 and r["ranks"] == 16]
        best = max(cell, key=lambda r: r["speedup_vs_cpu"])
        assert best["params"] == "2^20"

    def test_rank_scaling_near_linear(self, fig12_rows):
        lo = speedup_band(fig12_rows, 256, 2)
        hi = speedup_band(fig12_rows, 256, 16)
        assert 6.0 < hi[1] / lo[1] < 10.0  # 8 ranks -> ~8x

    def test_1mb_beats_256kb(self, fig12_rows):
        small = speedup_band(fig12_rows, 256, 16)
        large = speedup_band(fig12_rows, 1024, 16)
        assert large[1] > small[1]

    def test_max_band_endpoint_tracks_paper_256kb(self, fig12_rows):
        """Our 256KB/16-rank max speedup lands on the paper's 39.26x."""
        _, hi = speedup_band(fig12_rows, 256, 16)
        paper_hi = calibration.FIG12_SPEEDUP_BANDS[(256, 16)][1]
        assert hi == pytest.approx(paper_hi, rel=0.25)

    def test_all_speedups_exceed_one(self, fig12_rows):
        assert all(r["speedup_vs_cpu"] > 1.0 for r in fig12_rows)

    def test_ironman_beats_gpu_at_16_ranks(self, fig12_rows):
        cell = [r for r in fig12_rows if r["ranks"] == 16]
        assert all(r["speedup_vs_gpu"] > 1.0 for r in cell)


class TestGpuComparison:
    def test_power_advantage(self):
        res = gpu_comparison(IRONMAN_1MB, TABLE4_BY_LABEL["2^20"])
        assert res["power_ratio"] > 10.0  # paper: 84.5x
        assert res["latency_ratio"] > 1.0  # paper: 40.31x


class TestTable5:
    def test_lan_baselines_anchor_exactly_when_residual_positive(self, t5_rows):
        for row in t5_rows:
            paper_lan = row["paper"][3]
            if other_seconds(row["model"], row["framework"]) > 0:
                assert row["lan_base"] == pytest.approx(paper_lan, rel=0.01)

    def test_lan_speedups_in_paper_regime(self, t5_rows):
        for row in t5_rows:
            assert 1.2 < row["lan_speedup"] < 5.5

    def test_transformers_gain_more_than_cnns(self, t5_rows):
        """Table 5 observation (2): richer nonlinearities -> more OT ->
        larger end-to-end gains."""
        tr = [r["lan_speedup"] for r in t5_rows if r["framework"] == "Bolt"]
        cnn = [r["lan_speedup"] for r in t5_rows if r["framework"] != "Bolt"]
        assert sum(tr) / len(tr) > sum(cnn) / len(cnn)

    def test_wan_gains_smaller_than_lan(self, t5_rows):
        """Table 5 observation (3): communication bounds WAN gains."""
        for row in t5_rows:
            assert row["wan_speedup"] < row["lan_speedup"]

    def test_wan_speedups_in_paper_band(self, t5_rows):
        lo, hi = calibration.TABLE5_WAN_RANGE
        for row in t5_rows:
            assert lo - 0.15 <= row["wan_speedup"] <= hi + 0.15

    def test_headline_e2e_band_overlaps(self, t5_rows):
        lo, hi = calibration.HEADLINE_E2E_RANGE
        speedups = [r["lan_speedup"] for r in t5_rows]
        assert max(speedups) >= lo
        assert min(speedups) <= hi


class TestSystemFacade:
    def test_ote_speedup_in_paper_overall_band(self):
        sp = IronmanSystem().ote_speedup("2^20")
        lo, hi = calibration.HEADLINE_SPEEDUP_RANGE
        assert lo * 0.5 <= sp <= hi  # within the honest-reproduction window

    def test_estimate_uses_calibrated_residual(self):
        sys_ = IronmanSystem()
        est = sys_.estimate("ResNet50", "Cheetah", LAN, use_ironman=False)
        assert est.total_seconds == pytest.approx(48.3, rel=0.02)

    def test_fig1a_ot_share_for_paper_models(self):
        """Figure 1(a): OT extension dominates for the profiled models."""
        sys_ = IronmanSystem()
        for fw, model in (("Cheetah", "ResNet50"), ("Bolt", "BERT-Base")):
            est = sys_.estimate(model, fw, LAN, use_ironman=False)
            assert est.share("ot") > 0.4
