"""Preprocessing planner: exact per-layer correlation demand."""

import pytest

from repro.errors import ParameterError
from repro.mpc.compare import cots_needed, triples_needed
from repro.mpc.matmul import MatmulDims
from repro.ppml.layers import Activation, Conv2d, Graph, Linear, MaxPool2d
from repro.ppml.models import resnet18
from repro.ppml.plan import (
    CorrelationDemand,
    matmul_demand,
    mul_demand,
    plan_graph,
    relu_demand,
)

BITS = 16


def tiny_mlp():
    g = Graph("TinyMLP", (4, 16))
    g.add(Linear(8))
    g.add(Activation("relu"))
    g.add(Linear(4))
    return g


class TestGraphTrace:
    def test_trace_records_layers_and_shapes(self):
        g = tiny_mlp()
        assert len(g.trace) == 3
        layer, in_shape, out_shape = g.trace[0]
        assert isinstance(layer, Linear)
        assert in_shape == (4, 16) and out_shape == (4, 8)

    def test_absorb_merges_traces(self):
        g = Graph("main", (3, 8, 8))
        side = Graph("side", (3, 8, 8))
        side.add(Conv2d(4, 1))
        g.absorb(side)
        assert len(g.trace) == 1


class TestLayerDemand:
    def test_relu_demand_mirrors_service_draws(self):
        n = 32
        d = relu_demand(n, BITS)
        assert d.cot_fwd == cots_needed(n, BITS - 1) + n
        assert d.cot_rev == n
        assert d.bit_triples == triples_needed(n, BITS - 1)

    def test_linear_becomes_matrix_triple(self):
        plan = plan_graph(tiny_mlp(), bits=BITS)
        assert plan.demand.matrix == {
            MatmulDims(4, 16, 8): 1,
            MatmulDims(4, 8, 4): 1,
        }

    def test_conv_becomes_im2col_matmul_per_group(self):
        g = Graph("conv", (8, 10, 10))
        g.add(Conv2d(16, 3, stride=1, padding=1, groups=2))
        plan = plan_graph(g, bits=BITS)
        # oh = ow = 10; k = (8/2)*9 = 36; n = 16/2 = 8; one triple per group.
        assert plan.demand.matrix == {MatmulDims(100, 36, 8): 2}

    def test_maxpool_charges_one_relu_per_comparison(self):
        g = Graph("mp", (2, 8, 8))
        g.add(MaxPool2d(2, 2))
        plan = plan_graph(g, bits=BITS)
        cmps = 2 * 4 * 4 * 3  # c*oh*ow*(k^2-1)
        assert plan.demand.cot_fwd == relu_demand(cmps, BITS).cot_fwd
        assert plan.demand.bit_triples == triples_needed(cmps, BITS - 1)

    def test_unplanned_kinds_are_visible(self):
        g = Graph("gelu", (4, 8))
        g.add(Activation("gelu"))
        plan = plan_graph(g, bits=BITS)
        assert plan.demand.matrix == {}
        assert plan.demand.unplanned == {"gelu": 32}

    def test_relu6_is_not_silently_planned_as_relu(self):
        """No relu6 service protocol exists (it needs ~2 comparisons per
        element); it must surface as a coverage gap, not fake demand."""
        g = Graph("relu6", (4, 8))
        g.add(Activation("relu6"))
        plan = plan_graph(g, bits=BITS)
        assert plan.demand.cot_fwd == 0 and plan.demand.bit_triples == 0
        assert plan.demand.unplanned == {"relu6": 32}


class TestPlanAggregation:
    def test_total_is_sum_of_layers(self):
        plan = plan_graph(tiny_mlp(), bits=BITS)
        total = CorrelationDemand()
        for _, d in plan.per_layer:
            total.merge(d)
        assert total.cot_fwd == plan.demand.cot_fwd
        assert total.bit_triples == plan.demand.bit_triples
        assert total.matrix == plan.demand.matrix

    def test_pool_targets_mapping(self):
        plan = plan_graph(tiny_mlp(), bits=BITS)
        targets = plan.pool_targets()
        n_relu = 4 * 8
        assert targets["cot/fwd"] == cots_needed(n_relu, BITS - 1) + n_relu
        assert targets["cot/rev"] == n_relu
        assert targets["tri"] == triples_needed(n_relu, BITS - 1)
        assert targets["mtri/4x16x8"] == 1
        assert targets["mtri/4x8x4"] == 1
        assert "rtri" not in targets  # nothing demanded none planned

    def test_mul_and_matmul_demand_helpers(self):
        d = matmul_demand(MatmulDims(2, 3, 4), count=5)
        d.merge(mul_demand(7))
        assert d.matrix_triples == 5 and d.ring_triples == 7
        assert d.as_pool_targets()["rtri"] == 7

    def test_total_cots_accounts_derived_production(self):
        d = CorrelationDemand(cot_fwd=10, cot_rev=20, bit_triples=5,
                              ring_triples=3, matrix={MatmulDims(2, 3, 4): 2})
        expect = 10 + 20 + 5 * 2 + 3 * 16 * 2 + 2 * (2 * 3 + 3 * 4) * 16
        assert d.total_cots(ring_bits=16) == expect


class TestRealModels:
    def test_resnet18_plans_without_error(self):
        plan = plan_graph(resnet18(), bits=32)
        assert plan.demand.matrix_triples > 20  # one per conv/linear
        assert plan.demand.cot_fwd > 0 and plan.demand.bit_triples > 0
        assert plan.demand.total_cots(32) > plan.demand.cot_fwd
        # im2col shape of the stem conv: 112*112 outputs, 3*49 inputs, 64 out.
        assert MatmulDims(112 * 112, 147, 64) in plan.demand.matrix
        assert len(plan.summary_rows()) == len(plan.per_layer)

    def test_prefill_rejects_ring_width_mismatch(self):
        class FakeTuning:
            ring_bits = 8

        class FakeService:
            tuning = FakeTuning()

        plan = plan_graph(tiny_mlp(), bits=BITS)
        with pytest.raises(ParameterError):
            plan.prefill(FakeService())
