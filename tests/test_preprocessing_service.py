"""Preprocessing/online phase split through the provisioning service:
pooled ring + matrix triples, planner-driven prefill, stall-free online.
"""

import numpy as np
import pytest

from repro.errors import ChannelError
from repro.ferret.config import FerretConfig
from repro.mpc.matmul import matmul_via_service
from repro.mpc.relu import relu_via_service
from repro.mpc.sharing import ArithmeticShares, share_arith_nd
from repro.mpc.triples import ring_mask_u64, ring_triples_via_service
from repro.ot.channel import LocalChannel, run_concurrently
from repro.ppml.layers import Activation, Graph, Linear
from repro.ppml.plan import plan_graph
from repro.runtime import CorrelationService, MuxChannel, ServiceTuning

CFG = FerretConfig.small(scale=1024, arity=4, prg_kind="chacha8")
BITS = 16
TUNING = ServiceTuning(
    ring_bits=BITS,
    triple_low=256, triple_high=1024, triple_chunk=512,
    rtri_chunk=128,
)
MASK = ring_mask_u64(BITS)


def start_service_pair(seed=0x77):
    base_a, base_b = LocalChannel.pair(timeout=180.0)
    mux0 = MuxChannel(base_a, timeout=180.0)
    mux1 = MuxChannel(base_b, timeout=180.0)
    svc0 = CorrelationService(0, mux0, CFG, TUNING, seed=seed).start()
    svc1 = CorrelationService(1, mux1, CFG, TUNING, seed=seed).start()
    return svc0, svc1, mux0, mux1


def run_both(fn0, fn1, timeout=300.0, ctx=()):
    """Both parties in lockstep, decorating failures with service errors."""
    try:
        return run_concurrently(fn0, fn1, timeout)
    except ChannelError as exc:
        pytest.fail(f"{exc!r} (svc errors: {ctx})")


def tiny_model():
    g = Graph("TinyMLP", (4, 12))
    g.add(Linear(6))
    g.add(Activation("relu"))
    g.add(Linear(3))
    return g


def share_matrix(values, gen):
    return share_arith_nd(values, gen, bits=BITS)


@pytest.fixture(scope="module")
def services():
    svc0, svc1, mux0, mux1 = start_service_pair()
    yield svc0, svc1
    svc0.stop(), svc1.stop()
    mux0.close(), mux1.close()


class TestPooledArithmeticTriples:
    def test_ring_triple_draws_reconstruct(self, services):
        svc0, svc1 = services

        def draw(svc):
            return lambda: ring_triples_via_service(svc.session("rtri-t"), 30)

        t0, t1 = run_both(draw(svc0), draw(svc1), ctx=(svc0.error, svc1.error))
        a = (t0.a + t1.a) & MASK
        b = (t0.b + t1.b) & MASK
        assert np.array_equal((t0.c + t1.c) & MASK, (a * b) & MASK)
        assert t0.bits == BITS

    def test_matrix_triple_draws_reconstruct(self, services):
        svc0, svc1 = services

        def draw(svc):
            return lambda: svc.session("mtri-t").draw_matrix_triple(3, 7, 5)

        t0, t1 = run_both(draw(svc0), draw(svc1), ctx=(svc0.error, svc1.error))
        a = (t0.a + t1.a) & MASK
        b = (t0.b + t1.b) & MASK
        assert np.array_equal((t0.c + t1.c) & MASK, (a @ b) & MASK)

    def test_repeated_prefill_waits_for_fresh_production(self, services):
        """A second prefill after consumption must provide NEW items on
        both parties -- the follower's wait cannot be satisfied by
        historical production alone."""
        svc0, svc1 = services
        targets = {"rtri": 15}
        ctx = (svc0.error, svc1.error)
        run_both(lambda: svc0.prefill(targets, 120.0),
                 lambda: svc1.prefill(targets, 120.0), ctx=ctx)
        run_both(
            lambda: ring_triples_via_service(svc0.session("pre-again"), 15),
            lambda: ring_triples_via_service(svc1.session("pre-again"), 15),
            ctx=ctx,
        )
        drawn_after_consume = svc1.pools["rtri"].stats.items_drawn
        run_both(lambda: svc0.prefill(targets, 120.0),
                 lambda: svc1.prefill(targets, 120.0), ctx=ctx)
        assert svc0.pools["rtri"].level >= 15
        assert svc1.pools["rtri"].produced - drawn_after_consume >= 15

    def test_matmul_via_service_reconstructs(self, services):
        svc0, svc1 = services
        gen = np.random.default_rng(5)
        x = gen.integers(0, 1 << BITS, (4, 6), dtype=np.uint64)
        y = gen.integers(0, 1 << BITS, (6, 3), dtype=np.uint64)
        x0, x1 = share_matrix(x, gen)
        y0, y1 = share_matrix(y, gen)
        z0, z1 = run_both(
            lambda: matmul_via_service(svc0.session("mm-t"), x0, y0),
            lambda: matmul_via_service(svc1.session("mm-t"), x1, y1),
            ctx=(svc0.error, svc1.error),
        )
        assert np.array_equal((z0 + z1) & MASK, (x @ y) & MASK)


class TestPlannedInference:
    """plan -> prefill -> online inference, end to end and stall-free."""

    @pytest.fixture(scope="class")
    def planned_run(self, services):
        svc0, svc1 = services
        graph = tiny_model()
        plan = plan_graph(graph, bits=BITS)
        run_both(
            lambda: plan.prefill(svc0, timeout=240.0),
            lambda: plan.prefill(svc1, timeout=240.0),
            ctx=(svc0.error, svc1.error),
        )
        # Snapshot AFTER prefill so the assertions below are about the
        # online phase only.
        stall_before = {
            kind: s["stalled_draws"] for kind, s in svc0.pool_stats().items()
        }
        draws_before = dict(svc0.session_draws)

        gen = np.random.default_rng(17)
        # Tiny magnitudes so the plaintext reference stays in-ring.
        x = gen.integers(0, 4, (4, 12)).astype(np.uint64)
        w1 = gen.integers(0, 3, (12, 6)).astype(np.uint64)
        w2 = gen.integers(0, 3, (6, 3)).astype(np.uint64)
        x_sh = share_matrix(x, gen)
        w1_sh = share_matrix(w1, gen)
        w2_sh = share_matrix(w2, gen)

        def infer(svc, party):
            def run():
                session = svc.session("planned-mlp")
                rng = np.random.default_rng(60 + party)
                h = matmul_via_service(session, x_sh[party], w1_sh[party])
                h_shares = ArithmeticShares(h.reshape(-1), BITS)
                r, _ = relu_via_service(session, h_shares, rng)
                h2 = r.values.astype(np.uint64).reshape(4, 6)
                return matmul_via_service(session, h2, w2_sh[party])

            return run

        z0, z1 = run_both(infer(svc0, 0), infer(svc1, 1),
                          ctx=(svc0.error, svc1.error))
        expect = np.maximum(0, (x @ w1).astype(np.int64)).astype(np.uint64)
        expect = (expect @ w2) & MASK
        return {
            "plan": plan,
            "svc0": svc0,
            "got": (z0 + z1) & MASK,
            "expect": expect,
            "stall_before": stall_before,
            "draws_before": draws_before,
        }

    def test_online_inference_correct(self, planned_run):
        assert np.array_equal(planned_run["got"], planned_run["expect"])

    def test_prefill_met_every_target(self, planned_run):
        """After prefill the leader holds >= demand in every pool (the
        online phase then consumed it, so check production totals)."""
        svc0 = planned_run["svc0"]
        for kind, count in planned_run["plan"].pool_targets().items():
            assert svc0.pools[kind].produced >= count, kind

    def test_online_phase_never_stalled(self, planned_run):
        """The whole point of the preprocessing phase: zero production
        stalls during the online phase for every planned pool kind."""
        svc0 = planned_run["svc0"]
        after = {k: s["stalled_draws"] for k, s in svc0.pool_stats().items()}
        for kind in planned_run["plan"].pool_targets():
            assert after[kind] == planned_run["stall_before"].get(kind, 0), kind

    def test_session_draws_match_plan_exactly(self, planned_run):
        """The planner's demand is exact: consumer draws == plan."""
        svc0 = planned_run["svc0"]
        before = planned_run["draws_before"]
        targets = planned_run["plan"].pool_targets()
        for kind, count in targets.items():
            drawn = svc0.session_draws.get(kind, 0) - before.get(kind, 0)
            assert drawn == count, (kind, drawn, count)


class TestServiceValidation:
    def test_ring_triples_require_reverse(self):
        base_a, _ = LocalChannel.pair()
        mux0 = MuxChannel(base_a)
        bad = ServiceTuning(
            enable_reverse=False, enable_triples=False, enable_ring_triples=True
        )
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            CorrelationService(0, mux0, CFG, bad)
        mux0.close()

    def test_prefill_unknown_kind_fails_loudly(self):
        base_a, _ = LocalChannel.pair()
        mux0 = MuxChannel(base_a)
        svc0 = CorrelationService(0, mux0, CFG, TUNING)
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="unknown pool kind"):
            svc0.prefill({"mtri/9x9x9": 1}, timeout=1.0)
        mux0.close()
