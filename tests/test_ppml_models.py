"""Model zoo validation against published architecture statistics."""

import pytest

from repro.errors import ParameterError
from repro.ppml.models import MODEL_BUILDERS, REFERENCE_PARAMS_M, build


class TestParameterCounts:
    @pytest.mark.parametrize("name", sorted(MODEL_BUILDERS), ids=str)
    def test_params_match_published(self, name):
        """Every model's parameter count lands within 2% of the
        published size (ResNet-50 25.6M, BERT-Base 110M, ...)."""
        g = build(name)
        ref = REFERENCE_PARAMS_M[name] * 1e6
        assert g.total_params == pytest.approx(ref, rel=0.02)


class TestCnnStructure:
    def test_resnet50_relu_count(self):
        """~9.6M ReLUs at 224x224 (larger than ResNet-18's ~2.3M)."""
        nl50 = build("ResNet50").nonlinear_counts()
        nl18 = build("ResNet18").nonlinear_counts()
        assert 9.0e6 < nl50["relu"] < 10.5e6
        assert 2.0e6 < nl18["relu"] < 2.6e6

    def test_resnet_macs_ordering(self):
        macs = {n: build(n).total_macs for n in ("ResNet18", "ResNet34", "ResNet50")}
        assert macs["ResNet18"] < macs["ResNet34"] < macs["ResNet50"]
        assert macs["ResNet18"] == pytest.approx(1.8e9, rel=0.1)
        assert macs["ResNet50"] == pytest.approx(4.1e9, rel=0.1)

    def test_mobilenet_uses_relu6_only(self):
        nl = build("MobileNetV2").nonlinear_counts()
        assert "relu" not in nl
        assert nl["relu6"] > 5e6

    def test_mobilenet_macs(self):
        assert build("MobileNetV2").total_macs == pytest.approx(0.3e9, rel=0.15)

    def test_squeezenet_maxpool_heavy(self):
        nl = build("SqueezeNet").nonlinear_counts()
        assert nl["maxpool_cmp"] > 0.8 * nl["relu"]

    def test_densenet_is_relu_heaviest_cnn(self):
        dn = build("DenseNet121").nonlinear_counts()["relu"]
        rn = build("ResNet50").nonlinear_counts()["relu"]
        assert dn > rn

    def test_final_shapes_are_logits(self):
        for name in ("ResNet18", "ResNet50", "MobileNetV2", "DenseNet121"):
            assert build(name).shape == (1000,)
        assert build("SqueezeNet").shape == (1000,)


class TestTransformerStructure:
    def test_bert_base_nonlinear_mix(self):
        nl = build("BERT-Base").nonlinear_counts()
        assert nl["gelu"] == 12 * 128 * 4 * 768
        assert nl["softmax"] == 12 * 12 * 128 * 128
        # embeddings LN + 2 per block + final
        assert nl["layernorm"] == (2 * 12 + 2) * 128 * 768

    def test_larger_models_scale_nonlinearities(self):
        base = build("BERT-Base").nonlinear_total()
        large = build("BERT-Large").nonlinear_total()
        assert large > 2 * base

    def test_gpt2_sizes_ordered(self):
        sizes = [build(f"GPT2-{s}").total_params for s in ("Small", "Medium", "Large")]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_vit_has_patch_embedding_macs(self):
        g = build("ViT")
        assert g.total_macs > 15e9  # 196 tokens x 12 blocks dominates

    def test_transformer_head_divisibility_enforced(self):
        from repro.ppml.models import transformer

        with pytest.raises(ParameterError):
            transformer("bad", 2, 100, 7, 16)


class TestRegistry:
    def test_build_unknown_raises(self):
        with pytest.raises(ParameterError):
            build("AlexNet")

    def test_registry_covers_paper_models(self):
        needed = {
            "MobileNetV2", "SqueezeNet", "ResNet18", "ResNet34", "ResNet50",
            "DenseNet121", "ViT", "BERT-Base", "BERT-Large",
            "GPT2-Small", "GPT2-Medium", "GPT2-Large",
        }
        assert needed <= set(MODEL_BUILDERS)
