"""Reconnect/resume: journaled replay, epochs, and redial over sockets."""

import threading
import time

import pytest

from repro.errors import ChannelClosed, ChannelError, ChannelTimeout
from repro.ot.channel import LocalChannel, SocketChannel
from repro.ot.faults import DISCONNECT, FaultEvent, FaultSchedule, FaultyChannel
from repro.ot.reconnect import ReconnectingChannel
from repro.ot.retry import RetryPolicy
from repro.runtime import MuxChannel

FAST = RetryPolicy(attempts=6, backoff_s=0.01, max_backoff_s=0.05, deadline_s=5.0)


class Breakable:
    """An in-memory transport whose close() is visible to BOTH peers.

    LocalChannel endpoints cannot observe a peer's death, so this
    wrapper shares a "wire cut" event per pair: once either side closes
    (including a FaultyChannel injecting a disconnect, or the
    reconnecting layer marking a transport dead), every later operation
    on either endpoint raises ChannelClosed -- the same half-close
    semantics a real socket gives.
    """

    def __init__(self, base, broken: threading.Event):
        self.base = base
        self.stats = base.stats
        self._broken = broken

    def send_bytes(self, data):
        if self._broken.is_set():
            raise ChannelClosed("wire cut")
        self.base.send_bytes(data)

    def recv_bytes(self, timeout=None):
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._broken.is_set():
                raise ChannelClosed("wire cut")
            step = 0.05
            if deadline is not None:
                left = deadline - time.monotonic()
                if left <= 0:
                    raise ChannelTimeout("recv timed out")
                step = min(step, left)
            try:
                return self.base.recv_bytes(timeout=step)
            except ChannelTimeout:
                continue

    def close(self):
        self._broken.set()


class PairDialer:
    """In-process rendezvous: whichever side dials first creates a fresh
    Breakable pair; the other side's dial picks up its half.  One dialer
    serves every epoch, so two ReconnectingChannels can redial in
    lockstep without real sockets."""

    def __init__(self, timeout=2.0):
        self._timeout = timeout
        self._cond = threading.Condition()
        self._avail = {"a": None, "b": None}
        self.breaks = []  # one cut-event per epoch's pair

    def dial(self, side):
        with self._cond:
            if self._avail[side] is None:
                ca, cb = LocalChannel.pair(timeout=self._timeout)
                broken = threading.Event()
                self.breaks.append(broken)
                self._avail["a"] = Breakable(ca, broken)
                self._avail["b"] = Breakable(cb, broken)
            chan = self._avail[side]
            self._avail[side] = None
            return chan

    def cut(self):
        """Sever the most recently dialed wire."""
        self.breaks[-1].set()


def build_pair(dial_a, dial_b, policy=FAST, **kwargs):
    """Run the two handshaking constructors in parallel threads."""
    out, errs = {}, {}

    def build(name, dial):
        try:
            out[name] = ReconnectingChannel(dial, policy=policy, **kwargs)
        except Exception as exc:  # noqa: BLE001 - surfaced via assert
            errs[name] = exc

    threads = [
        threading.Thread(target=build, args=("a", dial_a)),
        threading.Thread(target=build, args=("b", dial_b)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(10.0)
    assert not errs, f"handshake failed: {errs}"
    return out["a"], out["b"]


def reconnecting_pair(policy=FAST, **kwargs):
    dialer = PairDialer()
    a, b = build_pair(
        lambda: dialer.dial("a"), lambda: dialer.dial("b"), policy, **kwargs
    )
    return a, b, dialer


def pump(chan, n, results):
    for _ in range(n):
        results.append(chan.recv_bytes(timeout=10.0))


def healer(chan, stop):
    """Drive a sender's reconnect path: recv in short slices so the
    endpoint notices a dead transport (reconnects are recv-driven)."""
    while not stop.is_set():
        try:
            chan.recv_bytes(timeout=0.1)
        except ChannelTimeout:
            continue
        except ChannelError:
            return


def test_plain_traffic_round_trips_with_epoch_one():
    a, b, _ = reconnecting_pair()
    a.send_bytes(b"hello")
    got = []
    t = threading.Thread(target=pump, args=(b, 1, got))
    t.start()
    t.join(5.0)
    assert got == [b"hello"]
    assert a.epoch == 1 and b.epoch == 1
    assert a.reconnects == 0 and b.reconnects == 0


def test_mid_stream_cut_replays_journaled_frames():
    a, b, dialer = reconnecting_pair()
    stop = threading.Event()
    heal_a = threading.Thread(target=healer, args=(a, stop))
    heal_a.start()
    got = []
    receiver = threading.Thread(target=pump, args=(b, 30, got))
    receiver.start()
    try:
        for i in range(10):
            a.send_bytes(f"pre-{i}".encode())
        dialer.cut()
        for i in range(20):
            a.send_bytes(f"post-{i}".encode())  # journaled; never raises
        receiver.join(15.0)
        assert not receiver.is_alive(), f"receiver hung; got {len(got)} frames"
    finally:
        stop.set()
        heal_a.join(5.0)
    expect = [f"pre-{i}".encode() for i in range(10)]
    expect += [f"post-{i}".encode() for i in range(20)]
    assert got == expect  # in order, no loss, no duplicates delivered
    assert a.epoch >= 2 and b.epoch >= 2
    assert b.reconnects >= 1
    assert a.replayed_frames >= 20  # everything unacked went out again
    assert a.replayed_bytes > 0
    event = (a.reconnect_events + b.reconnect_events)[0]
    assert event["outage_s"] >= 0.0 and event["epoch"] >= 2


def test_injected_disconnect_heals_transparently():
    """A FaultyChannel disconnect at the transport layer is invisible
    above the reconnecting channel: every frame arrives exactly once."""
    dialer = PairDialer()
    sched = FaultSchedule([FaultEvent("send", 7, DISCONNECT)])
    a, b = build_pair(
        lambda: FaultyChannel(dialer.dial("a"), sched),
        lambda: dialer.dial("b"),
    )
    stop = threading.Event()
    heal_a = threading.Thread(target=healer, args=(a, stop))
    heal_a.start()
    got = []
    receiver = threading.Thread(target=pump, args=(b, 25, got))
    receiver.start()
    try:
        for i in range(25):
            a.send_bytes(f"msg-{i}".encode())
        receiver.join(15.0)
        assert not receiver.is_alive(), f"receiver hung; got {len(got)} frames"
    finally:
        stop.set()
        heal_a.join(5.0)
    assert got == [f"msg-{i}".encode() for i in range(25)]
    assert sched.remaining() == 0  # the fault really fired
    assert a.reconnects >= 1


def test_fault_during_replay_retries_until_healed():
    """A fault striking the FRESH transport mid-replay must re-enter the
    retry loop (the schedule's op counters keep climbing across redials,
    so chaos schedules genuinely hit this), not surface mid-recovery."""
    dialer = PairDialer()
    sched = FaultSchedule(
        [
            FaultEvent("send", 7, DISCONNECT),  # mid original stream
            FaultEvent("send", 10, DISCONNECT),  # lands inside the replay
        ]
    )
    a, b = build_pair(
        lambda: FaultyChannel(dialer.dial("a"), sched),
        lambda: dialer.dial("b"),
    )
    stop = threading.Event()
    heal_a = threading.Thread(target=healer, args=(a, stop))
    heal_a.start()
    got = []
    receiver = threading.Thread(target=pump, args=(b, 10, got))
    receiver.start()
    try:
        for i in range(10):
            a.send_bytes(f"m{i}".encode())
        receiver.join(15.0)
        assert not receiver.is_alive(), f"receiver hung; got {len(got)} frames"
    finally:
        stop.set()
        heal_a.join(5.0)
    assert got == [f"m{i}".encode() for i in range(10)]
    assert sched.remaining() == 0  # both faults really fired
    assert a.reconnects >= 1
    # The first replay attempt died partway; the successful retry
    # replayed the journal suffix again (duplicates are dropped by seq).
    assert a.replayed_frames >= 4


def test_acks_trim_the_send_journal():
    a, b, _ = reconnecting_pair(ack_every=4)
    got = []
    receiver = threading.Thread(target=pump, args=(b, 12, got))
    receiver.start()
    for i in range(12):
        a.send_bytes(bytes([i]))
    receiver.join(5.0)
    assert got == [bytes([i]) for i in range(12)]
    # ACKs ride the reverse direction; a's next receive drains them.
    with pytest.raises(ChannelTimeout):
        a.recv_bytes(timeout=0.3)
    assert len(a._journal) == 0  # 12 frames, acked every 4


def test_journal_overflow_raises_closed():
    a, _, _ = reconnecting_pair(journal_limit=5)
    a._transport_ok = False  # link down; sends buffer instead of raising
    for i in range(5):
        a.send_bytes(bytes([i]))
    with pytest.raises(ChannelClosed, match="journal full"):
        a.send_bytes(b"overflow")


def test_reconnect_budget_exhaustion_raises_closed():
    calls = []

    def dead_dial():
        calls.append(1)
        raise ConnectionRefusedError("nobody home")

    with pytest.raises(ChannelClosed, match="reconnect failed"):
        ReconnectingChannel(
            dead_dial,
            policy=RetryPolicy(attempts=3, backoff_s=0.01, deadline_s=1.0),
        )
    assert len(calls) == 3


def test_state_provider_reaches_the_peer():
    state = {"pools": {"cot/fwd": 41}, "party": 0}
    a, b, _ = reconnecting_pair(state_provider=lambda: state)
    # The initial handshake already exchanged state both ways.
    assert b.peer_state == state
    assert a.peer_state == state


def test_sequence_gap_is_a_hard_error():
    a, b, _ = reconnecting_pair()
    a._tx_seq = 5  # pretend 5 frames were sent and trimmed away
    a.send_bytes(b"from the future")
    errs = []

    def recv_one():
        try:
            b.recv_bytes(timeout=2.0)
        except ChannelError as exc:
            errs.append(exc)

    t = threading.Thread(target=recv_one)
    t.start()
    t.join(5.0)
    assert len(errs) == 1
    assert "sequence gap" in str(errs[0])


def test_mux_counts_exclude_replayed_duplicates():
    """An epoch bump replays journaled frames, some of which the peer
    already routed; the reconnect layer's seq dedup drops those BEFORE
    they reach the mux, so ``stats_by_tag()`` / ``receive_counts()``
    count each logical frame exactly once.  These counts feed the resume
    handshake and the telemetry snapshot -- double-counting would skew
    both."""
    # Huge ack interval: nothing gets trimmed, so the redial replays the
    # already-delivered frames too (the interesting case).
    a, b, dialer = reconnecting_pair(ack_every=1000)
    mux_a, mux_b = MuxChannel(a, timeout=10.0), MuxChannel(b, timeout=10.0)
    try:
        sa, sb = mux_a.sub("data"), mux_b.sub("data")
        for i in range(10):
            sa.send_bytes(f"pre-{i}".encode())
        got = [sb.recv_bytes(timeout=10.0) for _ in range(10)]
        dialer.cut()  # both mux pumps notice and drive the redial
        for i in range(20):
            sa.send_bytes(f"post-{i}".encode())
        got += [sb.recv_bytes(timeout=10.0) for _ in range(20)]

        expect = [f"pre-{i}".encode() for i in range(10)]
        expect += [f"post-{i}".encode() for i in range(20)]
        assert got == expect
        assert b.epoch >= 2 and b.reconnects >= 1
        # Every frame journaled across the outage was replayed.
        assert a.replayed_frames >= 20

        # The handshake replays from the peer's reported position, so a
        # clean cut delivers no duplicates; force the defended case (a
        # stale replay point) by resending frame 0's wire encoding on
        # the live transport, bypassing a's journal.
        from repro.ot.reconnect import _DATA, _SEQ
        from repro.runtime.mux import encode_frame

        a._transport.send_bytes(_DATA + _SEQ.pack(0) + encode_frame(b"data", expect[0]))
        sa.send_bytes(b"sentinel")
        assert sb.recv_bytes(timeout=10.0) == b"sentinel"

        # In-order delivery: the duplicate was pumped before the
        # sentinel, dropped by seq BEFORE any stats or mux routing --
        # each logical frame counted exactly once.
        assert mux_b.receive_counts()["data"] == 31
        stats = mux_b.stats_by_tag()["data"]
        # Per-tag bytes count the mux frame encoding (tag header
        # included), once per logical frame -- the duplicate adds none.
        assert stats.bytes_received == sum(
            len(encode_frame(b"data", f)) for f in expect + [b"sentinel"]
        )
        assert mux_a.stats_by_tag()["data"].messages_sent == 31
    finally:
        mux_a.close(), mux_b.close()


def test_socket_redial_with_kept_open_listener():
    """The real deployment shape: the client redials connect(), the
    server re-accepts on a listener kept open across epochs."""
    listener = SocketChannel.listen()
    port = listener.port
    server, client = build_pair(
        lambda: listener.accept(accept_timeout=5.0, keep_open=True),
        lambda: SocketChannel.connect("127.0.0.1", port, timeout=2.0),
    )
    stop = threading.Event()
    heal_c = threading.Thread(target=healer, args=(client, stop))
    heal_c.start()
    got = []
    receiver = threading.Thread(target=pump, args=(server, 20, got))
    receiver.start()
    try:
        for i in range(8):
            client.send_bytes(f"a{i}".encode())
        client._transport.close()  # yank the wire mid-stream
        for i in range(12):
            client.send_bytes(f"b{i}".encode())
        receiver.join(20.0)
        assert not receiver.is_alive(), f"receiver hung; got {len(got)} frames"
    finally:
        stop.set()
        heal_c.join(5.0)
        listener.close()
        client.close()
        server.close()
    expect = [f"a{i}".encode() for i in range(8)]
    expect += [f"b{i}".encode() for i in range(12)]
    assert got == expect
    assert server.epoch >= 2 and client.epoch >= 2
    assert client.replayed_frames >= 12
