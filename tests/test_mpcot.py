"""Multi-point COT (regular noise) tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import blocks
from repro.crypto.prg import ChaChaTreePrg
from repro.errors import ParameterError
from repro.ot.channel import run_pair
from repro.ot.cot import CotPool, CotReceiverBatch, CotSenderBatch
from repro.spcot.mpcot import (
    block_sizes,
    mpcot_cots_needed,
    mpcot_receive,
    mpcot_send,
    sample_alphas,
    tree_depth_for,
)


def run_mpcot(pools, delta, rng, n, t, arity, alphas):
    ps, pr = pools
    w, uv, _, _ = run_pair(
        lambda ch: mpcot_send(ch, ps, delta, ChaChaTreePrg(arity), n, t, rng),
        lambda ch: mpcot_receive(ch, pr, alphas, ChaChaTreePrg(arity), n, t),
    )
    return w, uv[0], uv[1]


class TestBlockStructure:
    def test_block_sizes_partition_n(self):
        assert sum(block_sizes(100, 7)) == 100

    def test_block_sizes_even_split(self):
        sizes = block_sizes(100, 7)
        assert max(sizes) - min(sizes) <= 1

    def test_block_sizes_validation(self):
        with pytest.raises(ParameterError):
            block_sizes(3, 5)

    @pytest.mark.parametrize("size,arity,expect", [(100, 2, 7), (100, 4, 4), (4, 4, 1), (1, 2, 1)])
    def test_tree_depth_covers_block(self, size, arity, expect):
        depth = tree_depth_for(size, arity)
        assert depth == expect
        assert arity**depth >= size

    def test_cots_needed_counts_all_trees(self):
        # n=50, t=4: blocks 13,13,12,12 -> 16-leaf trees -> 4 bits each.
        assert mpcot_cots_needed(50, 4, 4) == 16

    def test_sample_alphas_within_blocks(self, rng):
        alphas = sample_alphas(100, 7, rng)
        for a, size in zip(alphas, block_sizes(100, 7)):
            assert 0 <= a < size


class TestProtocol:
    def test_invariant_and_weight(self, cot_pools, delta, rng):
        n, t, arity = 50, 4, 4
        alphas = sample_alphas(n, t, rng)
        w, u, v = run_mpcot(cot_pools, delta, rng, n, t, arity, alphas)
        assert u.sum() == t
        expect = blocks.xor(v, blocks.mul_bit(delta, u))
        assert np.all(blocks.equal(w, expect))

    def test_noise_positions_are_regular(self, cot_pools, delta, rng):
        n, t = 60, 5
        alphas = sample_alphas(n, t, rng)
        _, u, _ = run_mpcot(cot_pools, delta, rng, n, t, 4, alphas)
        offset = 0
        for b, size in enumerate(block_sizes(n, t)):
            block = u[offset : offset + size]
            assert block.sum() == 1
            assert block[alphas[b]] == 1
            offset += size

    def test_alpha_out_of_block_rejected(self, cot_pools, delta, rng):
        with pytest.raises(Exception):
            run_mpcot(cot_pools, delta, rng, 40, 4, 4, np.array([0, 0, 0, 10]))

    def test_wrong_alpha_count_rejected(self, cot_pools, delta, rng):
        with pytest.raises(Exception):
            run_mpcot(cot_pools, delta, rng, 40, 4, 4, np.array([0, 0, 0]))

    def test_binary_arity_variant(self, cot_pools, delta, rng):
        n, t = 30, 3
        alphas = sample_alphas(n, t, rng)
        ps, pr = cot_pools
        from repro.crypto.prg import AesTreePrg

        w, uv, _, _ = run_pair(
            lambda ch: mpcot_send(ch, ps, delta, AesTreePrg(2), n, t, rng),
            lambda ch: mpcot_receive(ch, pr, alphas, AesTreePrg(2), n, t),
        )
        u, v = uv
        assert np.all(blocks.equal(w, blocks.xor(v, blocks.mul_bit(delta, u))))

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=8, deadline=None)
    def test_property_random_configs(self, seed, shared_cots, delta):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(20, 80))
        t = int(rng.integers(1, 5))
        s_batch, r_batch = shared_cots
        pools = (
            CotPool(sender=CotSenderBatch(s_batch.delta, s_batch.z.copy())),
            CotPool(receiver=CotReceiverBatch(r_batch.x.copy(), r_batch.y.copy())),
        )
        alphas = sample_alphas(n, t, rng)
        w, u, v = run_mpcot(pools, delta, rng, n, t, 4, alphas)
        assert u.sum() == t
        assert np.all(blocks.equal(w, blocks.xor(v, blocks.mul_bit(delta, u))))
