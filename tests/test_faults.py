"""Fault injection: seeded schedules and the FaultyChannel wrapper."""

import socket

import pytest

from repro.errors import ChannelClosed, ChannelTimeout, ParameterError
from repro.ot.channel import LocalChannel, SocketChannel
from repro.ot.faults import (
    DELAY,
    DISCONNECT,
    TIMEOUT,
    TRUNCATE,
    FaultEvent,
    FaultSchedule,
    FaultyChannel,
)


def faulty_local_pair(events_a=(), events_b=()):
    a, b = LocalChannel.pair(timeout=2.0)
    return (
        FaultyChannel(a, FaultSchedule(events_a)),
        FaultyChannel(b, FaultSchedule(events_b)),
    )


def test_fault_event_validation():
    with pytest.raises(ParameterError):
        FaultEvent("neither", 0, DELAY)
    with pytest.raises(ParameterError):
        FaultEvent("send", 0, "meteor-strike")


def test_chaos_schedule_is_deterministic_and_complete():
    s1 = FaultSchedule.chaos(seed=7)
    s2 = FaultSchedule.chaos(seed=7)
    assert s1.events == s2.events
    kinds = [ev.kind for ev in s1.events]
    assert DISCONNECT in kinds and TRUNCATE in kinds
    assert kinds.count(TIMEOUT) == 3  # one burst of burst_len=3
    assert kinds.count(DELAY) == 2
    s3 = FaultSchedule.chaos(seed=8)
    assert s3.events != s1.events


def test_clean_schedule_passes_traffic_through():
    a, b = faulty_local_pair()
    a.send_bytes(b"ping")
    assert b.recv_bytes() == b"ping"
    b.send_bytes(b"pong")
    assert a.recv_bytes() == b"pong"
    assert a.stats.bytes_sent == 4  # stats alias the wrapped channel's
    assert a.base.stats.bytes_sent == 4


def test_timeout_injection_does_not_consume_the_message():
    a, b = faulty_local_pair(events_b=[FaultEvent("recv", 0, TIMEOUT)])
    a.send_bytes(b"survives")
    with pytest.raises(ChannelTimeout, match="injected"):
        b.recv_bytes()
    # The retried receive still finds the peer's message.
    assert b.recv_bytes() == b"survives"
    assert b.fault_stats.timeouts == 1


def test_delay_injection_delays_then_delivers():
    a, b = faulty_local_pair(events_b=[FaultEvent("recv", 0, DELAY, seconds=0.01)])
    a.send_bytes(b"slow")
    assert b.recv_bytes() == b"slow"
    assert b.fault_stats.delays == 1
    assert b.fault_stats.delayed_s == pytest.approx(0.01)


def test_disconnect_injection_on_send():
    a, b = faulty_local_pair(events_a=[FaultEvent("send", 1, DISCONNECT)])
    a.send_bytes(b"first ok")
    with pytest.raises(ChannelClosed, match="injected"):
        a.send_bytes(b"second dies")
    assert a.fault_stats.disconnects == 1


def test_disconnect_closes_a_socket_base_so_the_peer_sees_it():
    sa, sb = SocketChannel.pair(timeout=2.0)
    fa = FaultyChannel(sa, FaultSchedule([FaultEvent("send", 0, DISCONNECT)]))
    with pytest.raises(ChannelClosed):
        fa.send_bytes(b"never arrives")
    with pytest.raises(ChannelClosed):
        sb.recv_bytes(timeout=2.0)


def test_truncate_injection_surfaces_partial_frame_at_the_peer():
    sa, sb = SocketChannel.pair(timeout=2.0)
    fa = FaultyChannel(sa, FaultSchedule([FaultEvent("send", 0, TRUNCATE)]))
    with pytest.raises(ChannelClosed, match="truncated"):
        fa.send_bytes(b"x" * 64)
    # The peer's framing layer reports a mid-frame close with the
    # partial byte count, never a bare struct.error.
    with pytest.raises(ChannelClosed, match=r"mid-frame \(40 of 72"):
        sb.recv_bytes(timeout=2.0)
    assert fa.fault_stats.truncates == 1


def test_truncate_degrades_to_disconnect_without_raw_socket_access():
    a, b = faulty_local_pair(events_a=[FaultEvent("send", 0, TRUNCATE)])
    with pytest.raises(ChannelClosed, match="disconnect"):
        a.send_bytes(b"no raw socket here")
    assert a.fault_stats.disconnects == 1


def test_schedule_counters_span_reconnects():
    """One schedule keeps counting ops across fresh channel wrappers --
    the dial-factory contract that makes chaos runs reproducible."""
    schedule = FaultSchedule([FaultEvent("send", 2, DISCONNECT)])
    a1, b = LocalChannel.pair(timeout=2.0)
    f1 = FaultyChannel(a1, schedule)
    f1.send_bytes(b"0")
    f1.send_bytes(b"1")
    a2, _ = LocalChannel.pair(timeout=2.0)
    f2 = FaultyChannel(a2, schedule)  # "redialed" wrapper, same schedule
    with pytest.raises(ChannelClosed):
        f2.send_bytes(b"2")
    assert schedule.counts["send"] == 3
    assert schedule.remaining() == 0
    assert [ev.kind for ev in schedule.injected] == [DISCONNECT]


def test_socketpair_truncate_uses_real_length_header():
    """The injected wire bytes really are a lying length prefix."""
    sa, sb = socket.socketpair()
    ch_a = SocketChannel(sa, timeout=2.0)
    fa = FaultyChannel(ch_a, FaultSchedule([FaultEvent("send", 0, TRUNCATE)]))
    payload = b"y" * 100
    with pytest.raises(ChannelClosed):
        fa.send_bytes(payload)
    got = b""
    while True:
        try:
            chunk = sb.recv(4096)
        except OSError:
            break
        if not chunk:
            break
        got += chunk
    assert len(got) == 8 + 50  # header promising 100, body cut at 50
    assert int.from_bytes(got[:8], "little") == 100
