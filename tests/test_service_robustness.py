"""Degraded mode, resync, heartbeat, and restart: the service under fire."""

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    ChannelClosed,
    ChannelTimeout,
    ServiceDegraded,
)
from repro.ferret.config import FerretConfig
from repro.mpc.triples import triples_via_service
from repro.ot.channel import LocalChannel
from repro.runtime import CorrelationService, MuxChannel, ServiceTuning

CFG = FerretConfig.small(scale=1024, arity=4, prg_kind="chacha8")
TUNING = ServiceTuning(
    triple_low=256, triple_high=1024, triple_chunk=512, rot_low=32, rot_high=128
)


def start_service_pair(tuning=TUNING, cfg=CFG, seed=0x0FA):
    base_a, base_b = LocalChannel.pair(timeout=120.0)
    mux0 = MuxChannel(base_a, timeout=120.0)
    mux1 = MuxChannel(base_b, timeout=120.0)
    svc0 = CorrelationService(0, mux0, cfg, tuning, seed=seed).start()
    svc1 = CorrelationService(1, mux1, cfg, tuning, seed=seed).start()
    return svc0, svc1


def wait_until(predicate, timeout=30.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"{what} not reached within {timeout}s")


def test_transient_fault_degrades_resyncs_and_recovers():
    """A command whose execution dies transiently on the leader: both
    parties degrade, run the resync barrier, and production resumes --
    later triples still satisfy c = a & b across the parties."""
    svc0, svc1 = start_service_pair()
    try:
        svc0.wait_ready()
        svc1.wait_ready()
        # Shorten the follower's abandoned-command stall so the test
        # does not wait out the paper-scale mux timeout.
        svc1._ch_fwd.default_timeout = 3.0
        svc1._ch_rev.default_timeout = 3.0

        real_execute = svc0._execute
        tripped = threading.Event()

        def failing_execute(cmd):
            if not tripped.is_set():
                tripped.set()
                raise ChannelTimeout("injected command failure")
            real_execute(cmd)

        svc0._execute = failing_execute
        svc0._wake.set()  # make sure the scheduler issues a command

        wait_until(tripped.is_set, what="fault injection")
        wait_until(
            lambda: svc0.resyncs >= 1 and not svc0.degraded,
            what="leader resync",
        )
        wait_until(
            lambda: svc1.resyncs >= 1 and not svc1.degraded,
            what="follower resync",
        )
        assert svc0.degraded_events >= 1
        assert svc0.error is None and svc1.error is None

        # Production is alive again: draw fresh triples through real
        # sessions and check the cross-party Beaver relation.
        out = {}

        def draw(party, svc):
            out[party] = triples_via_service(svc.session("after-fault"), 128)

        t0 = threading.Thread(target=draw, args=(0, svc0))
        t1 = threading.Thread(target=draw, args=(1, svc1))
        t0.start(), t1.start()
        t0.join(60.0), t1.join(60.0)
        assert set(out) == {0, 1}, (
            f"draw hung (svc errors: {svc0.error!r}, {svc1.error!r})"
        )
        a = out[0].a ^ out[1].a
        b = out[0].b ^ out[1].b
        c = out[0].c ^ out[1].c
        assert np.array_equal(c, a & b)

        stats = svc0.retry_stats()
        assert stats["degraded_events"] >= 1
        assert stats["resyncs"] >= 1
    finally:
        svc0.stop()
        svc1.stop()


def test_degraded_pool_wait_raises_typed_error_with_hint():
    """While degraded, waits on future production surface ServiceDegraded
    (with a recovery hint) -- but existing stock still serves."""
    base_a, _ = LocalChannel.pair(timeout=5.0)
    mux = MuxChannel(base_a, timeout=5.0)
    svc = CorrelationService(0, mux, CFG, TUNING)  # never started
    svc._enter_degraded(ChannelClosed("link lost"))

    pool = svc.pools["tri"]
    stock = np.ones((3, 16), dtype=np.uint8)
    pool.append_columns(stock)

    # Stock draw: the range is produced, so no wait, no error.
    got = pool.take_columns(0, 8)
    assert got[0].shape[0] == 8

    # Future production: typed backpressure instead of a hang.
    with pytest.raises(ServiceDegraded, match="degraded") as exc_info:
        pool.take_columns(100, 8, timeout=5.0)
    assert "stock" in exc_info.value.hint
    assert isinstance(exc_info.value.cause, ChannelClosed)
    assert exc_info.value.since is not None
    mux.close()


def test_heartbeat_detects_silent_peer_death():
    """With heartbeats on, a silent peer kills blocked receivers in
    ~miss x interval instead of their full timeout."""
    base_a, _silent_peer = LocalChannel.pair(timeout=30.0)
    mux = MuxChannel(base_a, timeout=30.0, heartbeat_s=0.1, heartbeat_miss=3)
    sub = mux.sub("x")
    start = time.monotonic()
    with pytest.raises(ChannelClosed, match="heartbeat"):
        sub.recv_bytes(timeout=20.0)
    assert time.monotonic() - start < 5.0
    mux.close()


def test_worker_restart_once_then_fatal():
    base_a, _ = LocalChannel.pair(timeout=5.0)
    mux = MuxChannel(base_a, timeout=5.0)
    svc = CorrelationService(0, mux, CFG, TUNING)  # worker never started

    calls = []

    def dies_once():
        calls.append(1)
        if len(calls) == 1:
            raise ChannelClosed("transient loop death")

    svc._run_loop(dies_once)
    assert svc.worker_restarts == 1
    assert len(calls) == 2
    assert svc.degraded  # the restart entered degraded mode pending resync

    svc2 = CorrelationService(0, MuxChannel(LocalChannel.pair()[0]), CFG, TUNING)

    def always_dies():
        raise ChannelClosed("hard down")

    with pytest.raises(ChannelClosed):
        svc2._run_loop(always_dies)
    assert svc2.worker_restarts == 1  # restarted once, then fatal
    mux.close()


def test_follower_stop_fast_path_when_degraded():
    """A degraded follower's stop() must not wait out the full grace
    period for a leader STOP that can never arrive."""
    base_a, base_b = LocalChannel.pair(timeout=60.0)
    MuxChannel(base_a, timeout=60.0)  # leader end exists but never starts
    mux1 = MuxChannel(base_b, timeout=60.0)
    svc1 = CorrelationService(1, mux1, CFG, TUNING).start()
    time.sleep(0.2)  # the worker is now blocked in base-OT setup
    svc1.degraded_since = time.monotonic()  # simulate a noticed outage
    start = time.monotonic()
    svc1.stop(timeout=60.0)
    assert time.monotonic() - start < 10.0
    mux1.close()


def test_retry_stats_and_resume_state_shapes():
    svc0, svc1 = start_service_pair(seed=0x0FB)
    try:
        svc0.wait_ready()
        svc1.wait_ready()
        stats = svc0.retry_stats()
        for key in (
            "stalled_recvs", "retry_slices", "degraded_events",
            "worker_restarts", "resyncs", "rolled_back",
        ):
            assert key in stats and stats[key] >= 0
        # LocalChannel base: no reconnect layer, so no redial counters.
        assert "reconnects" not in stats

        state = svc0.resume_state()
        assert state["party"] == 0
        assert isinstance(state["tags"], dict)
        assert set(state["pools"]) == set(svc0.pools)
        assert all(v >= 0 for v in state["pools"].values())
        # The state is what a ReconnectingChannel ships: JSON-safe.
        import json

        json.dumps(state)
    finally:
        svc0.stop()
        svc1.stop()
