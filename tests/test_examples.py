"""Smoke tests: every shipped example runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_at_least_five_examples_ship():
    assert len(EXAMPLES) >= 5
