"""Unit + property tests for the 128-bit block algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import blocks
from repro.errors import ParameterError


class TestBasics:
    def test_zeros_shape_and_value(self):
        z = blocks.zeros(5)
        assert z.shape == (5, 2)
        assert z.dtype == np.uint64
        assert not z.any()

    def test_single_packs_low_and_high(self):
        b = blocks.single(3, 7)
        assert b.shape == (1, 2)
        assert b[0, 0] == 3 and b[0, 1] == 7

    def test_random_blocks_deterministic_per_seed(self):
        a = blocks.random_blocks(10, np.random.default_rng(1))
        b = blocks.random_blocks(10, np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_random_blocks_differ_across_seeds(self):
        a = blocks.random_blocks(10, np.random.default_rng(1))
        b = blocks.random_blocks(10, np.random.default_rng(2))
        assert not np.array_equal(a, b)

    def test_is_block_array_rejects_wrong_shape(self):
        assert not blocks.is_block_array(np.zeros((4, 3), dtype=np.uint64))
        assert not blocks.is_block_array(np.zeros((4, 2), dtype=np.uint32))
        assert blocks.is_block_array(blocks.zeros(4))

    def test_require_blocks_raises_with_name(self):
        with pytest.raises(ParameterError, match="myvec"):
            blocks.require_blocks([1, 2, 3], "myvec")


class TestXor:
    def test_xor_self_is_zero(self, rng):
        a = blocks.random_blocks(16, rng)
        assert not blocks.xor(a, a).any()

    def test_xor_identity(self, rng):
        a = blocks.random_blocks(16, rng)
        assert np.array_equal(blocks.xor(a, blocks.zeros(16)), a)

    def test_xor_reduce_matches_loop(self, rng):
        a = blocks.random_blocks(9, rng)
        acc = blocks.zeros(1)
        for i in range(9):
            acc = blocks.xor(acc, a[i : i + 1])
        assert np.array_equal(blocks.xor_reduce(a), acc)

    def test_xor_reduce_empty_is_zero(self):
        assert not blocks.xor_reduce(blocks.zeros(0)).any()

    def test_xor_broadcasts_single_block(self, rng):
        a = blocks.random_blocks(8, rng)
        d = blocks.random_blocks(1, rng)
        out = blocks.xor(a, d)
        assert np.array_equal(out[3], a[3] ^ d[0])


class TestSerialization:
    def test_bytes_roundtrip(self, rng):
        a = blocks.random_blocks(7, rng)
        assert np.array_equal(blocks.from_bytes(blocks.to_bytes(a)), a)

    def test_bytes_length(self, rng):
        a = blocks.random_blocks(3, rng)
        assert len(blocks.to_bytes(a)) == 48

    def test_from_bytes_rejects_partial_block(self):
        with pytest.raises(ParameterError):
            blocks.from_bytes(b"\x00" * 17)

    def test_uint8_roundtrip(self, rng):
        a = blocks.random_blocks(4, rng)
        assert np.array_equal(blocks.from_uint8(blocks.to_uint8(a)), a)

    def test_uint32_roundtrip(self, rng):
        a = blocks.random_blocks(4, rng)
        assert np.array_equal(blocks.from_uint32(blocks.to_uint32(a)), a)

    def test_uint8_view_is_little_endian(self):
        b = blocks.single(0x0102030405060708, 0)
        raw = blocks.to_uint8(b)[0]
        assert raw[0] == 0x08 and raw[7] == 0x01

    def test_int_roundtrip(self):
        value = (1 << 127) | 12345
        assert blocks.to_int(blocks.from_int(value)) == value

    def test_from_int_rejects_out_of_range(self):
        with pytest.raises(ParameterError):
            blocks.from_int(1 << 128)
        with pytest.raises(ParameterError):
            blocks.from_int(-1)


class TestBitHelpers:
    def test_get_lsb(self):
        arr = np.array([[2, 0], [3, 0], [4, 9]], dtype=np.uint64)
        assert blocks.get_lsb(arr).tolist() == [0, 1, 0]

    def test_set_lsb(self, rng):
        a = blocks.random_blocks(8, rng)
        assert blocks.get_lsb(blocks.set_lsb(a, 1)).tolist() == [1] * 8
        assert blocks.get_lsb(blocks.set_lsb(a, 0)).tolist() == [0] * 8

    def test_set_lsb_preserves_other_bits(self, rng):
        a = blocks.random_blocks(8, rng)
        out = blocks.set_lsb(a, 0)
        assert np.array_equal(a[:, 0] >> np.uint64(1), out[:, 0] >> np.uint64(1))
        assert np.array_equal(a[:, 1], out[:, 1])

    def test_mul_bit_zero_and_one(self, rng):
        a = blocks.random_blocks(6, rng)
        bits = np.array([0, 1, 0, 1, 1, 0], dtype=np.uint8)
        out = blocks.mul_bit(a, bits)
        for i, bit in enumerate(bits):
            if bit:
                assert np.array_equal(out[i], a[i])
            else:
                assert not out[i].any()

    def test_mul_bit_broadcasts_delta(self, rng):
        d = blocks.random_blocks(1, rng)
        bits = np.array([1, 0, 1], dtype=np.uint8)
        out = blocks.mul_bit(d, bits)
        assert out.shape == (3, 2)
        assert np.array_equal(out[0], d[0]) and not out[1].any()

    def test_equal_vector(self, rng):
        a = blocks.random_blocks(4, rng)
        b = a.copy()
        b[2] ^= np.uint64(1)
        assert blocks.equal(a, b).tolist() == [True, True, False, True]


class TestProperties:
    @given(st.integers(0, 2**128 - 1), st.integers(0, 2**128 - 1))
    @settings(max_examples=50, deadline=None)
    def test_xor_matches_python_ints(self, x, y):
        bx, by = blocks.from_int(x), blocks.from_int(y)
        assert blocks.to_int(blocks.xor(bx, by)) == x ^ y

    @given(st.integers(0, 2**128 - 1))
    @settings(max_examples=50, deadline=None)
    def test_int_bytes_consistency(self, x):
        b = blocks.from_int(x)
        assert int.from_bytes(blocks.to_bytes(b), "little") == x
