"""Unified unit tests: role switching, cycles, buffers (Figure 10)."""

import numpy as np
import pytest

from repro.crypto import blocks
from repro.errors import ParameterError
from repro.nmp.unified import Role, UnifiedUnit, UnifiedUnitModel
from repro.spcot.ggm import level_sums


class TestModel:
    def test_sender_pays_two_passes(self):
        m = UnifiedUnitModel(lanes=8)
        assert m.passes(Role.SENDER) == 2
        assert m.passes(Role.RECEIVER) == 1

    def test_level_cycles(self):
        m = UnifiedUnitModel(lanes=8)
        assert m.level_cycles(64, Role.RECEIVER) == 8
        assert m.level_cycles(64, Role.SENDER) == 16
        assert m.level_cycles(3, Role.RECEIVER) == 1  # partial lane fill

    def test_tree_cycles_sum_levels(self):
        m = UnifiedUnitModel(lanes=4)
        expect = sum(m.level_cycles(4**i, Role.SENDER) for i in (1, 2, 3))
        assert m.tree_cycles(3, 4, Role.SENDER) == expect

    def test_sender_buffer_larger_than_receiver(self):
        """Figure 10(b)/(c): the sender stores both key sets per level."""
        m = UnifiedUnitModel()
        s = m.node_buffer_blocks(6, 4, Role.SENDER)
        r = m.node_buffer_blocks(6, 4, Role.RECEIVER)
        assert s > r
        assert s - r == 6  # one extra key per level

    def test_lane_validation(self):
        with pytest.raises(ParameterError):
            UnifiedUnitModel(lanes=1)


class TestFunctionalUnit:
    def test_reduce_matches_level_sums(self, rng):
        unit = UnifiedUnit(Role.SENDER)
        nodes = blocks.random_blocks(16, rng)
        assert np.array_equal(unit.reduce_level(nodes, 4), level_sums(nodes, 4))

    def test_cycle_accounting_by_role(self, rng):
        nodes = blocks.random_blocks(64, rng)
        sender = UnifiedUnit(Role.SENDER)
        receiver = UnifiedUnit(Role.RECEIVER)
        sender.reduce_level(nodes, 2)
        receiver.reduce_level(nodes, 2)
        assert sender.cycles_used == 2 * receiver.cycles_used

    def test_role_switching_is_free_and_effective(self, rng):
        """Section 5.2: same hardware serves both protocol roles."""
        unit = UnifiedUnit(Role.SENDER)
        nodes = blocks.random_blocks(8, rng)
        as_sender = unit.reduce_level(nodes, 2)
        unit.switch_role(Role.RECEIVER)
        as_receiver = unit.reduce_level(nodes, 2)
        assert np.array_equal(as_sender, as_receiver)
        assert unit.role is Role.RECEIVER
