"""Integration tests for the correlation provisioning service.

The tentpole acceptance: >= 4 concurrent consumer sessions (triples +
ReLU mixes) draw from ONE shared CorrelationService pair over a
MuxChannel and produce correct correlations.
"""

import threading

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.ferret.config import FerretConfig
from repro.mpc.relu import relu_via_service
from repro.mpc.sharing import from_signed, reconstruct_arith, share_arith, to_signed
from repro.mpc.triples import triples_via_service
from repro.ot.channel import LocalChannel
from repro.ot.cot import verify_cot
from repro.runtime import CorrelationService, MuxChannel, ServiceTuning

CFG = FerretConfig.small(scale=1024, arity=4, prg_kind="chacha8")
TUNING = ServiceTuning(
    triple_low=256, triple_high=1024, triple_chunk=512, rot_low=32, rot_high=128
)
BITS = 10


def start_service_pair(tuning=TUNING, cfg=CFG, seed=0x51C):
    base_a, base_b = LocalChannel.pair(timeout=120.0)
    mux0, mux1 = MuxChannel(base_a, timeout=120.0), MuxChannel(base_b, timeout=120.0)
    svc0 = CorrelationService(0, mux0, cfg, tuning, seed=seed).start()
    svc1 = CorrelationService(1, mux1, cfg, tuning, seed=seed).start()
    return svc0, svc1, mux0, mux1


def run_sessions(svc0, svc1, jobs, timeout=180.0):
    """jobs: list of (name, fn(session, party)); returns {(party, name): out}."""
    results, errors = {}, []

    def party_runner(party, svc):
        threads = []
        for name, fn in jobs:
            session = svc.session(name)

            def one(fn=fn, session=session, name=name, party=party):
                try:
                    results[(party, name)] = fn(session, party)
                except BaseException as exc:  # noqa: BLE001
                    errors.append((party, name, exc))

            threads.append(threading.Thread(target=one))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout)

    p0 = threading.Thread(target=party_runner, args=(0, svc0))
    p1 = threading.Thread(target=party_runner, args=(1, svc1))
    p0.start(), p1.start()
    p0.join(timeout), p1.join(timeout)
    assert not errors, f"sessions failed: {errors} (svc errors: {svc0.error}, {svc1.error})"
    assert not p0.is_alive() and not p1.is_alive(), (
        f"sessions hung (svc errors: {svc0.error}, {svc1.error})"
    )
    return results


@pytest.fixture(scope="module")
def service_run():
    """One shared service pair driving 5 concurrent mixed sessions."""
    svc0, svc1, mux0, mux1 = start_service_pair()
    rng = np.random.default_rng(0xAB)
    vals_a = rng.integers(-400, 400, 12)
    vals_b = rng.integers(-400, 400, 12)
    sh_a = share_arith(from_signed(vals_a, BITS).astype(np.uint64), rng, bits=BITS)
    sh_b = share_arith(from_signed(vals_b, BITS).astype(np.uint64), rng, bits=BITS)

    def relu_job(shares_pair):
        def fn(session, party):
            local_rng = np.random.default_rng(100 + party)
            y, d = relu_via_service(session, shares_pair[party], local_rng)
            return y

        return fn

    def triples_job(n):
        def fn(session, party):
            return triples_via_service(session, n)

        return fn

    def raw_cot_job(n):
        def fn(session, party):
            if party == 0:
                batch, lo = session.draw_sender_cots(n)
            else:
                batch, lo = session.draw_receiver_cots(n)
            return batch

        return fn

    def chosen_ot_job(n):
        gen = np.random.default_rng(55)
        m0v = np.zeros((n, 2), dtype=np.uint64)
        m1v = np.ones((n, 2), dtype=np.uint64)
        choices = gen.integers(0, 2, n).astype(np.uint8)

        def fn(session, party):
            if party == 0:
                session.ot_send(m0v, m1v)
                return choices  # expectation for the asserting side
            return session.ot_receive(choices)

        return fn

    jobs = [
        ("relu-a", relu_job(sh_a)),
        ("relu-b", relu_job(sh_b)),
        ("triples-1", triples_job(300)),
        ("triples-2", triples_job(150)),
        ("raw-cot", raw_cot_job(200)),
        ("chosen-ot", chosen_ot_job(40)),
    ]
    results = run_sessions(svc0, svc1, jobs)
    svc0.stop()
    svc1.stop()
    yield {
        "results": results,
        "svc0": svc0,
        "svc1": svc1,
        "mux0": mux0,
        "mux1": mux1,
        "vals_a": vals_a,
        "vals_b": vals_b,
    }
    mux0.close(), mux1.close()


class TestConcurrentSessions:
    def test_at_least_four_sessions_ran(self, service_run):
        names = {name for (_, name) in service_run["results"]}
        assert len(names) >= 4

    def test_relu_sessions_correct(self, service_run):
        r = service_run["results"]
        for name, vals in (("relu-a", service_run["vals_a"]),
                           ("relu-b", service_run["vals_b"])):
            got = to_signed(reconstruct_arith(r[(0, name)], r[(1, name)]), BITS)
            assert np.array_equal(got, np.maximum(vals, 0)), name

    def test_triple_sessions_satisfy_and_relation(self, service_run):
        r = service_run["results"]
        for name in ("triples-1", "triples-2"):
            t0, t1 = r[(0, name)], r[(1, name)]
            a, b, c = t0.a ^ t1.a, t0.b ^ t1.b, t0.c ^ t1.c
            assert np.array_equal(c, a & b), name
            assert 0.2 < a.mean() < 0.8  # shares look random

    def test_raw_cot_draws_are_correlated(self, service_run):
        r = service_run["results"]
        assert verify_cot(r[(0, "raw-cot")], r[(1, "raw-cot")])

    def test_chosen_message_ot_transfers(self, service_run):
        r = service_run["results"]
        choices, got = r[(0, "chosen-ot")], r[(1, "chosen-ot")]
        expect = choices.astype(np.uint64)
        assert np.array_equal(got[:, 0], expect)
        assert np.array_equal(got[:, 1], expect)

    def test_sessions_share_one_link(self, service_run):
        mux0 = service_run["mux0"]
        tags = mux0.tags
        assert sum(1 for t in tags if t.startswith("sess/")) >= 4
        assert sum(1 for t in tags if t.startswith("prov/")) >= 3
        per_tag = sum(s.bytes_sent for s in mux0.stats_by_tag().values())
        assert per_tag == mux0.base.stats.bytes_sent

    def test_pool_stats_recorded(self, service_run):
        stats = service_run["svc0"].pool_stats()
        assert stats["cot/fwd"]["items_drawn"] > 0
        assert stats["cot/fwd"]["refills"] > 0
        assert stats["tri"]["items_drawn"] >= 450
        for pool_stats in stats.values():
            assert 0.0 <= pool_stats["hit_rate"] <= 1.0

    def test_service_ran_extends_in_both_directions(self, service_run):
        svc0 = service_run["svc0"]
        assert svc0.extends["fwd"] >= 1
        assert svc0.extends["rev"] >= 1
        # Follower mirrors the leader's command stream exactly.
        assert service_run["svc1"].extends == svc0.extends


class TestServiceLifecycle:
    def test_random_ot_pools(self):
        """ROT draws: sender pairs and receiver choices stay consistent."""
        svc0, svc1, mux0, mux1 = start_service_pair(seed=0xD1)

        def rot_job(session, party):
            if party == 0:
                return session.draw_random_ots_send(50)
            return session.draw_random_ots_receive(50)

        results = run_sessions(svc0, svc1, [("rot", rot_job)])
        m0, m1 = results[(0, "rot")]
        bits, chosen = results[(1, "rot")]
        expect = np.where(bits[:, None].astype(bool), m1, m0)
        assert np.array_equal(chosen, expect)
        svc0.stop(), svc1.stop()
        mux0.close(), mux1.close()

    def test_follower_stop_first_is_graceful(self):
        """Stopping party 1 before party 0 must not wedge the leader:
        the follower keeps replaying commands until STOP arrives."""
        import time

        svc0, svc1, mux0, mux1 = start_service_pair(seed=0xF0)
        svc0.wait_ready(120.0), svc1.wait_ready(120.0)
        done = []

        def stop_follower():
            svc1.stop(60.0)
            done.append(True)

        t = threading.Thread(target=stop_follower)
        t.start()
        time.sleep(0.3)  # follower.stop() is already waiting
        svc0.stop(60.0)
        t.join(90.0)
        assert done, "follower stop() never completed"
        assert svc0.error is None and svc1.error is None
        mux0.close(), mux1.close()

    def test_worker_failure_surfaces_to_consumers(self):
        """A dead service must fail draws loudly, not hang forever."""
        import dataclasses

        base_a, _ = LocalChannel.pair(timeout=1.0)
        mux0 = MuxChannel(base_a, timeout=1.0)
        tuning = dataclasses.replace(TUNING, take_timeout_s=0.2)
        svc0 = CorrelationService(0, mux0, CFG, tuning, seed=1)
        # Never started: draws must time out against the empty pool.
        session = svc0.session("orphan")
        with pytest.raises(ServiceError):
            session.draw_triples(4)
        mux0.close()

    def test_party_validation(self):
        base_a, _ = LocalChannel.pair()
        mux0 = MuxChannel(base_a)
        with pytest.raises(ServiceError):
            CorrelationService(2, mux0, CFG)
        mux0.close()

    def test_triples_require_reverse_direction(self):
        base_a, _ = LocalChannel.pair()
        mux0 = MuxChannel(base_a)
        bad = ServiceTuning(enable_reverse=False, enable_triples=True)
        with pytest.raises(ServiceError):
            CorrelationService(0, mux0, CFG, bad)
        mux0.close()
