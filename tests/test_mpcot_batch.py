"""Batched level-synchronous MPCOT vs the sequential reference oracle.

The batched path must be a pure schedule change: same outputs bit for
bit, same PRG core-call counts (the Figure 7 quantity), same COT
consumption -- only the channel-round count may differ, dropping from
O(t * depth) to O(depth).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import blocks
from repro.crypto.prg import AesTreePrg, ChaChaTreePrg
from repro.ot.channel import run_pair
from repro.ot.cot import CotPool, CotReceiverBatch, CotSenderBatch
from repro.spcot.ggm import (
    BatchedPuncturedReconstructor,
    alpha_digits,
    batched_expand_full,
    batched_level_sums,
    expand_full,
    level_sums,
)
from repro.spcot.mpcot import (
    block_sizes,
    depth_runs,
    mpcot_cots_needed,
    mpcot_receive,
    mpcot_send,
    sample_alphas,
    tree_depth_for,
)
from repro.spcot.protocol import cots_needed, spcot_receive_batch, spcot_send_batch


def make_pools(n_cots, delta, seed=99):
    """Fabricated (not base-OT-derived) COT correlations for speed."""
    gen = np.random.default_rng(seed)
    z = blocks.random_blocks(n_cots, gen)
    x = gen.integers(0, 2, n_cots).astype(np.uint8)
    y = blocks.xor(z, blocks.mul_bit(delta, x))
    return (
        CotPool(sender=CotSenderBatch(delta, z)),
        CotPool(receiver=CotReceiverBatch(x, y)),
    )


def run_both_paths(n, t, arity, prg_cls, delta, rng_seed=123, alpha_seed=5):
    """Run sequential and batched MPCOT from identical starting state."""
    alphas = sample_alphas(n, t, np.random.default_rng(alpha_seed))
    results = {}
    for batched in (False, True):
        pool_s, pool_r = make_pools(mpcot_cots_needed(n, t, arity), delta)
        prg_s, prg_r = prg_cls(arity), prg_cls(arity)
        rng = np.random.default_rng(rng_seed)
        w, uv, s_stats, r_stats = run_pair(
            lambda ch: mpcot_send(ch, pool_s, delta, prg_s, n, t, rng, batched=batched),
            lambda ch: mpcot_receive(ch, pool_r, alphas, prg_r, n, t, batched=batched),
        )
        results[batched] = {
            "w": w,
            "u": uv[0],
            "v": uv[1],
            "prg_calls": (prg_s.total_calls, prg_r.total_calls),
            "rounds": (s_stats.rounds, r_stats.rounds),
            "pool_left": (pool_s.remaining, pool_r.remaining),
        }
    return results


class TestBatchedGgm:
    """The vectorized multi-tree helpers agree with the per-tree ones."""

    @pytest.mark.parametrize("arity,depth,t", [(2, 4, 3), (4, 3, 5), (8, 2, 2)])
    def test_batched_expand_matches_per_tree(self, arity, depth, t, rng):
        prg_batch, prg_one = ChaChaTreePrg(arity), ChaChaTreePrg(arity)
        seeds = blocks.random_blocks(t, rng)
        batched = batched_expand_full(prg_batch, seeds, depth)
        for i in range(t):
            single = expand_full(prg_one, seeds[i : i + 1], depth)
            for lvl in range(depth + 1):
                per_tree = arity**lvl
                got = batched[lvl][i * per_tree : (i + 1) * per_tree]
                assert np.array_equal(got, single[lvl])
        # prg_one expanded all t trees one by one: identical call totals.
        assert prg_batch.total_calls == prg_one.total_calls

    @pytest.mark.parametrize("arity,t", [(2, 4), (4, 3)])
    def test_batched_level_sums_match(self, arity, t, rng):
        per_tree = arity * 3
        nodes = blocks.random_blocks(t * per_tree, rng)
        batched = batched_level_sums(nodes, arity, t)
        for i in range(t):
            one = level_sums(nodes[i * per_tree : (i + 1) * per_tree], arity)
            assert np.array_equal(batched[i], one)

    @pytest.mark.parametrize("arity,depth,t", [(2, 5, 4), (4, 3, 3)])
    def test_batched_reconstruction_matches(self, arity, depth, t, rng):
        prg = ChaChaTreePrg(arity)
        seeds = blocks.random_blocks(t, rng)
        alphas = rng.integers(0, arity**depth, t)
        digits = np.array([alpha_digits(int(a), arity, depth) for a in alphas])
        levels = batched_expand_full(ChaChaTreePrg(arity), seeds, depth)
        recon = BatchedPuncturedReconstructor(prg, depth, digits)
        for lvl in range(1, depth + 1):
            recon.feed_level(batched_level_sums(levels[lvl], arity, t))
        leaves, holes = recon.leaves()
        expect = levels[-1].reshape(t, -1, 2).copy()
        assert np.array_equal(holes, alphas)
        expect[np.arange(t), alphas] = 0
        assert np.array_equal(leaves, expect)

    def test_reconstructor_validates_digit_shape(self):
        with pytest.raises(Exception):
            BatchedPuncturedReconstructor(ChaChaTreePrg(4), 3, np.zeros((2, 2)))
        with pytest.raises(Exception):
            BatchedPuncturedReconstructor(
                ChaChaTreePrg(4), 2, np.full((2, 2), 7)
            )  # digit out of range


class TestBatchedSpcot:
    @pytest.mark.parametrize("arity,depth,t", [(2, 5, 3), (4, 3, 4), (8, 2, 2)])
    def test_invariant_holds(self, delta, arity, depth, t, rng):
        pool_s, pool_r = make_pools(t * cots_needed(arity**depth, arity), delta)
        alphas = rng.integers(0, arity**depth, t)
        prg_s, prg_r = ChaChaTreePrg(arity), ChaChaTreePrg(arity)
        send_rng = np.random.default_rng(3)
        w, vres, _, _ = run_pair(
            lambda ch: spcot_send_batch(ch, pool_s, delta, prg_s, depth, t, send_rng),
            lambda ch: spcot_receive_batch(ch, pool_r, alphas, prg_r, depth),
        )
        v, holes = vres
        assert np.array_equal(holes, alphas)
        for i in range(t):
            u = np.zeros(arity**depth, dtype=np.uint8)
            u[alphas[i]] = 1
            expect = blocks.xor(v[i], blocks.mul_bit(delta, u))
            assert np.all(blocks.equal(w[i], expect))

    def test_rounds_independent_of_tree_count(self, delta, rng):
        """One batched OT per level: rounds must not grow with t."""
        rounds = {}
        for t in (2, 16):
            pool_s, pool_r = make_pools(t * 6, delta)
            alphas = rng.integers(0, 64, t)
            send_rng = np.random.default_rng(4)
            prg_s, prg_r = ChaChaTreePrg(4), ChaChaTreePrg(4)
            _, _, s_stats, _ = run_pair(
                lambda ch: spcot_send_batch(ch, pool_s, delta, prg_s, 3, t, send_rng),
                lambda ch: spcot_receive_batch(ch, pool_r, alphas, prg_r, 3),
            )
            rounds[t] = s_stats.rounds
        assert rounds[2] == rounds[16]


class TestEquivalence:
    """Batched MPCOT == sequential MPCOT, bit for bit."""

    @pytest.mark.parametrize(
        "arity,prg_cls,n,t",
        [
            (2, AesTreePrg, 50, 4),
            (2, ChaChaTreePrg, 77, 5),
            (4, ChaChaTreePrg, 100, 7),
            (4, AesTreePrg, 64, 3),
            (8, ChaChaTreePrg, 60, 3),
            (4, ChaChaTreePrg, 64, 1),  # single tree degenerates cleanly
        ],
    )
    def test_outputs_bit_identical(self, delta, arity, prg_cls, n, t):
        res = run_both_paths(n, t, arity, prg_cls, delta)
        assert np.array_equal(res[False]["w"], res[True]["w"])
        assert np.array_equal(res[False]["u"], res[True]["u"])
        assert np.array_equal(res[False]["v"], res[True]["v"])

    @pytest.mark.parametrize("arity,prg_cls", [(2, AesTreePrg), (4, ChaChaTreePrg)])
    def test_prg_calls_identical(self, delta, arity, prg_cls):
        """Figure 7's paper-reported quantity must be schedule-invariant."""
        res = run_both_paths(90, 6, arity, prg_cls, delta)
        assert res[False]["prg_calls"] == res[True]["prg_calls"]

    def test_cot_consumption_identical(self, delta):
        res = run_both_paths(100, 7, 4, ChaChaTreePrg, delta)
        assert res[False]["pool_left"] == res[True]["pool_left"] == (0, 0)

    def test_batched_rounds_are_fewer(self, delta):
        """t trees collapse into O(depth) rounds (t > depth_runs here)."""
        res = run_both_paths(128, 8, 4, ChaChaTreePrg, delta)
        seq_rounds = res[False]["rounds"][0]
        bat_rounds = res[True]["rounds"][0]
        assert bat_rounds * 4 <= seq_rounds

    @given(
        seed=st.integers(0, 10_000),
        arity=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=12, deadline=None)
    def test_property_randomized_sweep(self, seed, arity, delta):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(16, 120))
        t = int(rng.integers(1, min(n, 8) + 1))
        res = run_both_paths(
            n, t, arity, ChaChaTreePrg, delta, rng_seed=seed + 1, alpha_seed=seed + 2
        )
        assert np.array_equal(res[False]["w"], res[True]["w"])
        assert np.array_equal(res[False]["u"], res[True]["u"])
        assert np.array_equal(res[False]["v"], res[True]["v"])
        assert res[False]["prg_calls"] == res[True]["prg_calls"]
        # And the batched run is still a valid MPCOT.
        w, u, v = res[True]["w"], res[True]["u"], res[True]["v"]
        assert u.sum() == t
        assert np.all(blocks.equal(w, blocks.xor(v, blocks.mul_bit(delta, u))))


class TestDepthRuns:
    def test_regular_noise_gives_at_most_two_runs(self):
        for n, t, arity in [(100, 7, 4), (1000, 33, 2), (64, 64, 4), (77, 5, 2)]:
            runs = depth_runs(block_sizes(n, t), arity)
            assert len(runs) <= 2
            assert sum(r[1] for r in runs) == t

    def test_runs_cover_trees_in_order(self):
        sizes = block_sizes(100, 7)
        runs = depth_runs(sizes, 4)
        covered = []
        for first, count, depth in runs:
            for i in range(first, first + count):
                assert tree_depth_for(sizes[i], 4) == depth
                covered.append(i)
        assert covered == list(range(7))
