"""Utility module tests (bitops, units, tables)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.utils.bitops import (
    digits_to_int,
    int_to_digits,
    log_base,
    next_power,
    pack_bits,
    unpack_bits,
)
from repro.utils.tables import render_table
from repro.utils.units import fmt_bytes, fmt_ratio, fmt_seconds


class TestBitops:
    def test_pack_unpack_roundtrip(self, rng):
        bits = rng.integers(0, 2, 77).astype(np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(bits), 77), bits)

    def test_unpack_too_few_bits(self):
        with pytest.raises(ParameterError):
            unpack_bits(b"\x00", 9)

    def test_digits_roundtrip(self):
        assert digits_to_int(int_to_digits(1234, 4, 7), 4) == 1234

    def test_digits_width_overflow(self):
        with pytest.raises(ParameterError):
            int_to_digits(100, 2, 3)

    def test_digit_range_check(self):
        with pytest.raises(ParameterError):
            digits_to_int([0, 5], 4)

    @pytest.mark.parametrize("value,base,expect", [(1, 2, 1), (5, 2, 8), (16, 4, 16), (17, 4, 64)])
    def test_next_power(self, value, base, expect):
        assert next_power(value, base) == expect

    def test_log_base_exact(self):
        assert log_base(4096, 2) == 12
        assert log_base(4096, 4) == 6

    def test_log_base_rejects_non_power(self):
        with pytest.raises(ParameterError):
            log_base(100, 4)

    @given(st.integers(0, 2**20), st.sampled_from([2, 4, 8]))
    @settings(max_examples=30, deadline=None)
    def test_property_digit_roundtrip(self, value, base):
        digits = int_to_digits(value, base, 24)
        assert digits_to_int(digits, base) == value


class TestUnits:
    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(2048) == "2.00 KiB"
        assert fmt_bytes(3 * 1024 * 1024) == "3.00 MiB"

    def test_fmt_seconds(self):
        assert fmt_seconds(1.5) == "1.500 s"
        assert fmt_seconds(0.0021).endswith("ms")
        assert fmt_seconds(3e-6).endswith("us")
        assert fmt_seconds(5e-9).endswith("ns")

    def test_fmt_ratio(self):
        assert fmt_ratio(39.264) == "39.26x"


class TestTables:
    def test_render_alignment(self):
        out = render_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title_included(self):
        out = render_table(["x"], [["1"]], title="My Table")
        assert out.splitlines()[0] == "My Table"
