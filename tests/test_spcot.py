"""SPCOT protocol tests: the w = v XOR u*Delta invariant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import blocks
from repro.crypto.prg import AesTreePrg, ChaChaTreePrg
from repro.ot.channel import run_pair
from repro.ot.cot import CotPool, CotReceiverBatch, CotSenderBatch
from repro.spcot.protocol import cots_needed, spcot_receive, spcot_send


def run_spcot(pools, delta, rng, prg_s, prg_r, depth, alpha, tweak=0):
    ps, pr = pools
    w, v, s_stats, r_stats = run_pair(
        lambda ch: spcot_send(ch, ps, delta, prg_s, depth, rng, tweak),
        lambda ch: spcot_receive(ch, pr, alpha, prg_r, depth, tweak),
    )
    return w, v, s_stats, r_stats


def check_invariant(w, v, delta, alpha):
    u = np.zeros(w.shape[0], dtype=np.uint8)
    u[alpha] = 1
    expect = blocks.xor(v, blocks.mul_bit(delta, u))
    return bool(np.all(blocks.equal(w, expect)))


class TestBinary:
    @pytest.mark.parametrize("alpha", [0, 1, 15, 16, 31])
    def test_invariant_holds(self, cot_pools, delta, rng, alpha):
        w, v, _, _ = run_spcot(
            cot_pools, delta, rng, AesTreePrg(2), AesTreePrg(2), 5, alpha
        )
        assert w.shape == (32, 2)
        assert check_invariant(w, v, delta, alpha)

    def test_non_alpha_leaves_equal(self, cot_pools, delta, rng):
        alpha = 10
        w, v, _, _ = run_spcot(
            cot_pools, delta, rng, ChaChaTreePrg(2), ChaChaTreePrg(2), 5, alpha
        )
        mask = np.ones(32, dtype=bool)
        mask[alpha] = False
        assert np.all(blocks.equal(w[mask], v[mask]))
        assert not blocks.equal(w[alpha : alpha + 1], v[alpha : alpha + 1])[0]

    def test_consumes_log_leaves_cots(self, cot_pools, delta, rng):
        ps, pr = cot_pools
        before = ps.remaining
        run_spcot(cot_pools, delta, rng, AesTreePrg(2), AesTreePrg(2), 6, 3)
        assert before - ps.remaining == 6 == cots_needed(64, 2)


class TestMAry:
    @pytest.mark.parametrize("arity,depth", [(4, 3), (8, 2)])
    def test_invariant_holds(self, cot_pools, delta, rng, arity, depth):
        alpha = int(rng.integers(0, arity**depth))
        w, v, _, _ = run_spcot(
            cot_pools, delta, rng, ChaChaTreePrg(arity), ChaChaTreePrg(arity), depth, alpha
        )
        assert check_invariant(w, v, delta, alpha)

    def test_mary_consumes_same_cots_as_binary(self, cot_pools, delta, rng):
        """Section 4.2: log2(l) correlations regardless of arity."""
        ps, _ = cot_pools
        before = ps.remaining
        run_spcot(cot_pools, delta, rng, ChaChaTreePrg(4), ChaChaTreePrg(4), 3, 7)
        assert before - ps.remaining == 6  # log2(4^3)
        assert cots_needed(64, 4) == cots_needed(64, 2) == 6

    def test_mary_sends_more_bytes_than_binary(self, cot_pools, delta, rng, shared_cots):
        """Figure 7(b): communication grows with the arity."""
        _, _, s2, _ = run_spcot(
            cot_pools, delta, rng, ChaChaTreePrg(2), ChaChaTreePrg(2), 6, 11
        )
        s_batch, r_batch = shared_cots
        pools4 = (
            CotPool(sender=CotSenderBatch(s_batch.delta, s_batch.z.copy())),
            CotPool(receiver=CotReceiverBatch(r_batch.x.copy(), r_batch.y.copy())),
        )
        _, _, s4, _ = run_spcot(
            pools4, delta, rng, ChaChaTreePrg(4), ChaChaTreePrg(4), 3, 11
        )
        assert s4.bytes_sent > s2.bytes_sent

    @given(alpha=st.integers(0, 63))
    @settings(max_examples=10, deadline=None)
    def test_property_4ary_random_alphas(self, alpha, shared_cots, delta):
        s_batch, r_batch = shared_cots
        pools = (
            CotPool(sender=CotSenderBatch(s_batch.delta, s_batch.z.copy())),
            CotPool(receiver=CotReceiverBatch(r_batch.x.copy(), r_batch.y.copy())),
        )
        rng = np.random.default_rng(alpha)
        w, v, _, _ = run_spcot(
            pools, delta, rng, ChaChaTreePrg(4), ChaChaTreePrg(4), 3, alpha
        )
        assert check_invariant(w, v, delta, alpha)


class TestMixedPrg:
    def test_aes_binary_tree_protocol(self, cot_pools, delta, rng):
        """The CPU-baseline configuration (2-ary AES)."""
        w, v, _, _ = run_spcot(
            cot_pools, delta, rng, AesTreePrg(2), AesTreePrg(2), 4, 13
        )
        assert check_invariant(w, v, delta, 13)

    def test_two_instances_back_to_back(self, cot_pools, delta, rng):
        """Distinct tweak bases keep parallel instances independent."""
        w1, v1, _, _ = run_spcot(
            cot_pools, delta, rng, ChaChaTreePrg(4), ChaChaTreePrg(4), 2, 5, tweak=0
        )
        w2, v2, _, _ = run_spcot(
            cot_pools, delta, rng, ChaChaTreePrg(4), ChaChaTreePrg(4), 2, 5, tweak=1 << 20
        )
        assert check_invariant(w1, v1, delta, 5)
        assert check_invariant(w2, v2, delta, 5)
        assert not np.all(blocks.equal(w1, w2))
