"""Pipelined layer-by-layer prefill: overlap, one-shot watermark
lowering, plan exactness under pipelining, the fused matmul+rescale
session verb, and chunk-fused TPRC production."""

import numpy as np
import pytest

from repro.errors import ChannelError, ServiceError
from repro.ferret.config import FerretConfig
from repro.mpc.matmul import matmul_rescale_via_service, matmul_via_service
from repro.mpc.relu import relu_via_service
from repro.mpc.sharing import ArithmeticShares, from_signed, share_arith_nd
from repro.mpc.triples import ring_mask_u64
from repro.mpc.truncation import (
    FixedPointConfig,
    trunc_preproc_messages,
)
from repro.ot.channel import LocalChannel, run_concurrently
from repro.ppml.layers import Activation, Graph, Linear, Rescale
from repro.ppml.plan import plan_graph
from repro.runtime import CorrelationService, MuxChannel, ServiceTuning
from repro.runtime.pool import TriplePool

CFG = FerretConfig.small(scale=1024, arity=4, prg_kind="chacha8")
BITS = 16
FX = FixedPointConfig(bits=BITS, frac_bits=4, mag_bits=9)
MASK = ring_mask_u64(BITS)
#: Zero steady-state triple watermarks: production is plan-driven only,
#: so the zero-stall assertions below are deterministic (no background
#: refill competes with planned consumers for raw COT stock).
TUNING = ServiceTuning(
    ring_bits=BITS,
    triple_low=0, triple_high=0, triple_chunk=512,
    rtri_chunk=128,
    enable_rots=False,
)

M, K, H, OUT = 4, 8, 6, 48


def run_both(fn0, fn1, timeout=300.0, ctx=()):
    try:
        return run_concurrently(fn0, fn1, timeout)
    except ChannelError as exc:
        pytest.fail(f"{exc!r} (svc errors: {ctx})")


def start_service_pair(tuning=TUNING, seed=0x1CE):
    base_a, base_b = LocalChannel.pair(timeout=180.0)
    mux0 = MuxChannel(base_a, timeout=180.0)
    mux1 = MuxChannel(base_b, timeout=180.0)
    svc0 = CorrelationService(0, mux0, CFG, tuning, seed=seed).start()
    svc1 = CorrelationService(1, mux1, CFG, tuning, seed=seed).start()
    return svc0, svc1, mux0, mux1


@pytest.fixture(scope="module")
def services():
    svc0, svc1, mux0, mux1 = start_service_pair()
    yield svc0, svc1, mux0, mux1
    svc0.stop(), svc1.stop()
    mux0.close(), mux1.close()


def pipelined_model():
    """First block small, last linear deliberately heavy: its matrix
    triple takes long enough that the first block's online phase
    observably starts while it is still unproduced."""
    g = Graph("PipeTest", (M, K))
    g.add(Linear(H))
    g.add(Rescale())
    g.add(Activation("relu"))
    g.add(Linear(OUT))
    return g


class TestPoolProduceTargets:
    """Unit semantics of the absolute produce target vs. watermarks."""

    def test_target_drives_deficit_and_goes_inert(self):
        pool = TriplePool("tri", low_watermark=0, high_watermark=0)
        assert not pool.needs_refill()
        pool.raise_produce_target(10)
        assert pool.needs_refill()
        assert pool.deficit == 10
        cols = tuple(np.zeros(10, dtype=np.uint8) for _ in range(3))
        pool.append_columns(cols)
        # Target met: inert, even though nothing was ever reserved.
        assert not pool.needs_refill()
        assert pool.deficit == 0
        # Unlike a watermark, consumption does NOT re-trigger it.
        pool.reserve(10)
        assert not pool.needs_refill()

    def test_target_never_lowers(self):
        pool = TriplePool("tri", low_watermark=0, high_watermark=0)
        pool.raise_produce_target(10)
        pool.raise_produce_target(4)
        assert pool.produce_target == 10

    def test_set_watermarks_lowers(self):
        pool = TriplePool("tri", low_watermark=5, high_watermark=20)
        pool.raise_watermarks(low=50, high=80)
        assert pool.watermarks == (50, 80)
        pool.set_watermarks(5, 20)
        assert pool.watermarks == (5, 20)
        pool.set_watermarks(7)
        assert pool.watermarks == (7, 7)


class TestOneShotPrefill:
    def test_one_shot_restores_pre_plan_watermarks(self, services):
        svc0, svc1, _, _ = services
        before = {k: s for k, s in svc0.pool_stats().items()}
        targets = {"tri": 600, "rtri": 12}
        ctx = (svc0.error, svc1.error)
        run_both(
            lambda: svc0.prefill(targets, 180.0, one_shot=True),
            lambda: svc1.prefill(targets, 180.0, one_shot=True),
            ctx=ctx,
        )
        after = svc0.pool_stats()
        for kind in targets:
            assert after[kind]["low_watermark"] == before[kind]["low_watermark"], kind
            assert after[kind]["high_watermark"] == before[kind]["high_watermark"], kind
        # The stock itself IS there -- only the refill pressure is gone.
        assert svc0.pools["tri"].level >= 600
        assert svc0.pools["rtri"].level >= 12

    def test_default_prefill_keeps_raised_watermarks(self, services):
        svc0, svc1, _, _ = services
        targets = {"rtri": 20}
        ctx = (svc0.error, svc1.error)
        run_both(
            lambda: svc0.prefill(targets, 180.0),
            lambda: svc1.prefill(targets, 180.0),
            ctx=ctx,
        )
        assert svc0.pool_stats()["rtri"]["low_watermark"] >= 20


class TestPipelinedPrefill:
    """plan -> prefill_pipelined -> overlapped online, end to end."""

    @pytest.fixture(scope="class")
    def planned_run(self, services):
        svc0, svc1, _, _ = services
        plan = plan_graph(pipelined_model(), bits=BITS, fx=FX)
        last_mtri = f"mtri/{M}x{H}x{OUT}"

        gen = np.random.default_rng(41)
        x = gen.integers(-8, 8, (M, K))
        w1 = gen.integers(-3, 3, (K, H))
        w2 = gen.integers(-3, 3, (H, OUT))
        shares = {
            key: share_arith_nd(from_signed(mat, BITS), gen, bits=BITS)
            for key, mat in (("x", x), ("w1", w1), ("w2", w2))
        }
        h_ref = np.maximum((x @ w1) >> FX.frac_bits, 0)
        expect = ((h_ref @ w2).astype(np.int64) & int(MASK)).astype(np.uint64)

        stall_before = {
            kind: s["stalled_draws"] for kind, s in svc0.pool_stats().items()
        }
        draws_before = dict(svc0.session_draws)
        cot_marks_before = {
            kind: svc0.pools[kind].watermarks for kind in ("cot/fwd", "cot/rev")
        }
        overlap = {}

        pipe0 = plan.prefill_pipelined(svc0, timeout=240.0)
        pipe1 = plan.prefill_pipelined(svc1, timeout=240.0)

        def infer(svc, pipe, party):
            def run():
                session = svc.session("pipe-mlp")
                rng = np.random.default_rng(70 + party)
                pipe.wait_layer(1)
                if party == 0:
                    # The online phase is about to start; the heavy last
                    # layer must still be in production behind it.
                    overlap["last_mtri_produced_at_first_online"] = (
                        svc.pools[last_mtri].produced
                    )
                h = matmul_rescale_via_service(
                    session, shares["x"][party], shares["w1"][party], FX,
                    mode="exact", rng=rng,
                )
                pipe.wait_layer(2)
                r, _ = relu_via_service(
                    session, ArithmeticShares(h.reshape(-1), BITS), rng
                )
                h = r.values.astype(np.uint64).reshape(M, H)
                pipe.wait_layer(3)
                return matmul_via_service(session, h, shares["w2"][party])

            return run

        z0, z1 = run_both(
            infer(svc0, pipe0, 0), infer(svc1, pipe1, 1),
            ctx=(svc0.error, svc1.error),
        )
        pipe0.finish()
        pipe1.finish()
        return {
            "plan": plan,
            "svc0": svc0,
            "pipe0": pipe0,
            "got": (z0 + z1) & MASK,
            "expect": expect,
            "stall_before": stall_before,
            "draws_before": draws_before,
            "cot_marks_before": cot_marks_before,
            "overlap": overlap,
        }

    def test_online_output_bit_exact(self, planned_run):
        assert np.array_equal(planned_run["got"], planned_run["expect"])

    def test_online_started_while_later_layers_producing(self, planned_run):
        """The point of the pipeline: when layer 0's online phase was
        cleared to start, the last layer's matrix triple had not been
        produced yet."""
        assert planned_run["overlap"]["last_mtri_produced_at_first_online"] == 0

    def test_layers_ready_in_order(self, planned_run):
        pipe0 = planned_run["pipe0"]
        times = [pipe0.ready_elapsed(i) for i in range(pipe0.n_layers)]
        assert all(t is not None for t in times)
        assert times == sorted(times)

    def test_session_draws_match_plan_exactly(self, planned_run):
        svc0 = planned_run["svc0"]
        before = planned_run["draws_before"]
        for kind, count in planned_run["plan"].pool_targets().items():
            drawn = svc0.session_draws.get(kind, 0) - before.get(kind, 0)
            assert drawn == count, (kind, drawn, count)

    def test_no_planned_pool_stalled(self, planned_run):
        """Every draw was gated on its layer's readiness, so no planned
        pool production ever ran on the online critical path."""
        svc0 = planned_run["svc0"]
        after = {k: s["stalled_draws"] for k, s in svc0.pool_stats().items()}
        for kind in planned_run["plan"].pool_targets():
            assert after[kind] == planned_run["stall_before"].get(kind, 0), kind

    def test_finish_restored_cot_watermarks(self, planned_run):
        """No inflated refill targets left behind: the raised raw-COT
        consumer watermarks are back at their pre-pipeline values."""
        svc0 = planned_run["svc0"]
        for kind, marks in planned_run["cot_marks_before"].items():
            assert svc0.pools[kind].watermarks == marks, kind

    def test_wait_layer_bounds_checked(self, planned_run):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            planned_run["pipe0"].wait_layer(99)


class TestForwardOnlyPipeline:
    def test_linear_plan_on_forward_only_service(self):
        """A forward-only service (no cot/rev pool) must still pipeline
        a linear-layer plan: the internal matrix-triple margin charged
        to the missing reverse direction is simply dropped (production
        falls back to cot/fwd, which carries its own charge)."""
        tuning = ServiceTuning(
            ring_bits=BITS,
            enable_reverse=False, enable_triples=False,
            enable_ring_triples=False, enable_rots=False,
        )
        svc0, svc1, mux0, mux1 = start_service_pair(tuning, seed=0x1F0)
        try:
            g = Graph("FwdOnly", (3, 5))
            g.add(Linear(4))
            plan = plan_graph(g, bits=BITS)
            pipe0 = plan.prefill_pipelined(svc0, timeout=120.0)
            pipe1 = plan.prefill_pipelined(svc1, timeout=120.0)
            gen = np.random.default_rng(9)
            x = gen.integers(0, 1 << BITS, (3, 5), dtype=np.uint64)
            y = gen.integers(0, 1 << BITS, (5, 4), dtype=np.uint64)
            x_sh = share_arith_nd(x, gen, bits=BITS)
            y_sh = share_arith_nd(y, gen, bits=BITS)

            def go(svc, pipe, party):
                def run():
                    pipe.wait_layer(0)
                    return matmul_via_service(
                        svc.session("fwd-mm"), x_sh[party], y_sh[party]
                    )

                return run

            z0, z1 = run_both(
                go(svc0, pipe0, 0), go(svc1, pipe1, 1),
                ctx=(svc0.error, svc1.error),
            )
            pipe0.finish()
            pipe1.finish()
            assert np.array_equal((z0 + z1) & MASK, (x @ y) & MASK)
        finally:
            svc0.stop(), svc1.stop()
            mux0.close(), mux1.close()


class TestFusedMatmulRescale:
    def test_exact_mode_matches_oracle(self, services):
        svc0, svc1, _, _ = services
        gen = np.random.default_rng(5)
        x = gen.integers(-8, 8, (3, 5))
        y = gen.integers(-4, 4, (5, 4))
        x_sh = share_arith_nd(from_signed(x, BITS), gen, bits=BITS)
        y_sh = share_arith_nd(from_signed(y, BITS), gen, bits=BITS)
        z0, z1 = run_both(
            lambda: matmul_rescale_via_service(
                svc0.session("fuse-x"), x_sh[0], y_sh[0], FX, mode="exact"
            ),
            lambda: matmul_rescale_via_service(
                svc1.session("fuse-x"), x_sh[1], y_sh[1], FX, mode="exact"
            ),
            ctx=(svc0.error, svc1.error),
        )
        expect = ((x @ y) >> FX.frac_bits).astype(np.int64)
        expect = (expect & int(MASK)).astype(np.uint64)
        assert np.array_equal((z0 + z1) & MASK, expect)

    def test_pair_mode_within_contract(self, services):
        svc0, svc1, _, _ = services
        gen = np.random.default_rng(6)
        x = gen.integers(-4, 4, (2, 6))
        y = gen.integers(-2, 2, (6, 3))
        x_sh = share_arith_nd(from_signed(x, BITS), gen, bits=BITS)
        y_sh = share_arith_nd(from_signed(y, BITS), gen, bits=BITS)
        z0, z1 = run_both(
            lambda: matmul_rescale_via_service(
                svc0.session("fuse-p"), x_sh[0], y_sh[0], FX, mode="pair"
            ),
            lambda: matmul_rescale_via_service(
                svc1.session("fuse-p"), x_sh[1], y_sh[1], FX, mode="pair"
            ),
            ctx=(svc0.error, svc1.error),
        )
        got = (z0 + z1) & MASK
        ref = FX.trunc_reference(
            ((x @ y).astype(np.int64) & int(MASK)).astype(np.uint64).reshape(-1)
        ).reshape(got.shape)
        diff = FX.to_signed((got - ref) & MASK)
        wrap = 1 << (BITS - FX.frac_bits)
        assert np.all(np.isin(diff, [0, 1, -wrap, 1 - wrap])), diff

    def test_one_allocation_round_trip(self, services):
        """The fused verb announces ALL pool offsets in one message:
        exact-mode rescale needs 4 draws, so the fused session moves 3
        fewer messages than the unfused matmul+rescale session."""
        svc0, svc1, mux0, _ = services
        gen = np.random.default_rng(7)
        x = gen.integers(-4, 4, (2, 3))
        y = gen.integers(-2, 2, (3, 2))
        x_sh = share_arith_nd(from_signed(x, BITS), gen, bits=BITS)
        y_sh = share_arith_nd(from_signed(y, BITS), gen, bits=BITS)
        run_both(
            lambda: matmul_via_service(
                svc0.session("cnt-unfused"), x_sh[0], y_sh[0],
                fx=FX, rescale=True,
            ),
            lambda: matmul_via_service(
                svc1.session("cnt-unfused"), x_sh[1], y_sh[1],
                fx=FX, rescale=True,
            ),
            ctx=(svc0.error, svc1.error),
        )
        run_both(
            lambda: matmul_rescale_via_service(
                svc0.session("cnt-fused"), x_sh[0], y_sh[0], FX, mode="exact"
            ),
            lambda: matmul_rescale_via_service(
                svc1.session("cnt-fused"), x_sh[1], y_sh[1], FX, mode="exact"
            ),
            ctx=(svc0.error, svc1.error),
        )
        stats = mux0.stats_by_tag()
        unfused = stats["sess/cnt-unfused"].messages_sent
        fused = stats["sess/cnt-fused"].messages_sent
        assert fused == unfused - 3, (fused, unfused)

    def test_unknown_mode_rejected(self, services):
        svc0, _, _, _ = services
        with pytest.raises(ServiceError, match="unknown truncation mode"):
            svc0.session("fuse-bad").draw_matmul_rescale(2, 2, 2, FX, mode="nope")


class TestBatchedTprcProduction:
    def test_deep_deficit_fused_into_one_command(self):
        """16 pairs with a 4-pair chunk and stocked inputs run as ONE
        TPRC command (4 chunks fused), paying the millionaires'/B2A
        message rounds once instead of four times."""
        tuning = ServiceTuning(
            ring_bits=BITS,
            triple_low=0, triple_high=0, triple_chunk=512,
            tprc_chunk=4, tprc_batch_chunks=4,
            enable_rots=False,
        )
        svc0, svc1, mux0, mux1 = start_service_pair(tuning, seed=0x7A7)
        try:
            n = 16
            pool = svc0.trunc_pool(FX.frac_bits)
            svc1.trunc_pool(FX.frac_bits)
            stock = {
                "cot/fwd": n * pool.cots_per_item + 512,
                "tri": n * pool.triples_per_item + 64,
            }
            ctx = (svc0.error, svc1.error)
            run_both(lambda: svc0.prefill(stock, 240.0),
                     lambda: svc1.prefill(stock, 240.0), ctx=ctx)
            def tprc_messages():
                total = 0
                for mux in (mux0, mux1):
                    stats = mux.stats_by_tag().get("prov/tprc")
                    total += stats.messages_sent if stats else 0
                return total

            before_msgs = tprc_messages()
            run_both(
                lambda: svc0.prefill({pool.name: pool.level + n}, 240.0),
                lambda: svc1.prefill({pool.name: n}, 240.0),
                ctx=ctx,
            )
            # One fused command moves trunc_preproc_messages; four
            # unfused 4-pair chunks would move four times that.
            assert tprc_messages() - before_msgs == trunc_preproc_messages(FX)
            # And the pairs are real: both parties' shares reconstruct.
            p0, p1 = run_both(
                lambda: svc0.session("tb").draw_trunc_pairs(n, FX.frac_bits),
                lambda: svc1.session("tb").draw_trunc_pairs(n, FX.frac_bits),
                ctx=ctx,
            )
            r = (p0.r + p1.r) & MASK
            assert np.array_equal(
                (p0.s + p1.s) & MASK, r >> np.uint64(FX.frac_bits)
            )
        finally:
            svc0.stop(), svc1.stop()
            mux0.close(), mux1.close()
