"""Online protocol tests: sharing, triples, comparison, DReLU/ReLU."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import blocks
from repro.errors import ParameterError
from repro.mpc.compare import (
    cots_needed,
    millionaire_p0,
    millionaire_p1,
    triples_needed,
    validate_inputs,
)
from repro.mpc.relu import relu_pair
from repro.mpc.sharing import (
    from_signed,
    reconstruct_arith,
    reconstruct_bool,
    share_arith,
    share_bool,
    to_signed,
)
from repro.mpc.triples import BitTriples, and_shared, generate_bit_triples
from repro.ot.base_ot import base_cot_receive, base_cot_send
from repro.ot.channel import run_pair
from repro.ot.cot import CotPool, CotReceiverBatch, CotSenderBatch


def make_pools(n, seed, direction):
    """Build one COT pool pair (sender side, receiver side)."""
    gen = np.random.default_rng(seed)
    delta = blocks.random_blocks(1, gen)
    choices = gen.integers(0, 2, n).astype(np.uint8)
    r, y, _, _ = run_pair(
        lambda ch: base_cot_send(ch, n, delta, gen),
        lambda ch: base_cot_receive(ch, choices),
    )
    del direction
    return CotPool(sender=CotSenderBatch(delta, r)), CotPool(
        receiver=CotReceiverBatch(choices, y)
    )


@pytest.fixture(scope="module")
def fwd_pools():
    return make_pools(900, 101, "fwd")  # P0 sender


@pytest.fixture(scope="module")
def rev_pools():
    return make_pools(300, 202, "rev")  # P1 sender


@pytest.fixture
def triple_pair(fwd_pools, rev_pools):
    """Correlated BitTriples for both parties (fresh per test)."""
    p0_send, p1_recv = make_pools(256, 7, "f")
    p1_send, p0_recv = make_pools(256, 8, "r")
    rng0, rng1 = np.random.default_rng(1), np.random.default_rng(2)
    t0, t1, _, _ = run_pair(
        lambda ch: generate_bit_triples(ch, 256, p0_send, p0_recv, rng0, party=0),
        lambda ch: generate_bit_triples(ch, 256, p1_send, p1_recv, rng1, party=1),
    )
    return t0, t1


class TestSharing:
    def test_arith_roundtrip(self, rng):
        vals = rng.integers(0, 1 << 32, 50, dtype=np.uint64)
        s0, s1 = share_arith(vals, rng)
        assert np.array_equal(reconstruct_arith(s0, s1), vals)

    def test_arith_shares_hide_value(self, rng):
        vals = np.zeros(64, dtype=np.uint64)
        s0, _ = share_arith(vals, rng)
        assert len(np.unique(s0.values)) > 32  # share alone looks random

    def test_bool_roundtrip(self, rng):
        bits_vec = rng.integers(0, 2, 50).astype(np.uint8)
        b0, b1 = share_bool(bits_vec, rng)
        assert np.array_equal(reconstruct_bool(b0, b1), bits_vec)

    def test_signed_embedding_roundtrip(self):
        vals = np.array([-5, -1, 0, 1, 7])
        assert np.array_equal(to_signed(from_signed(vals, 16), 16), vals)

    def test_mismatched_shares_rejected(self, rng):
        a, _ = share_arith(np.arange(4, dtype=np.uint64), rng)
        b, _ = share_arith(np.arange(5, dtype=np.uint64), rng)
        with pytest.raises(ParameterError):
            reconstruct_arith(a, b)


class TestTriples:
    def test_triples_satisfy_and_relation(self, triple_pair):
        t0, t1 = triple_pair
        a = t0.a ^ t1.a
        b = t0.b ^ t1.b
        c = t0.c ^ t1.c
        assert np.array_equal(c, a & b)

    def test_triples_look_uniform(self, triple_pair):
        t0, t1 = triple_pair
        assert 0.3 < (t0.a ^ t1.a).mean() < 0.7

    def test_take_consumes(self, triple_pair):
        t0, _ = triple_pair
        total = len(t0)
        head = t0.take(10)
        assert len(head) == 10 and len(t0) == total - 10
        with pytest.raises(ParameterError):
            t0.take(total)

    def test_and_shared_correct(self, triple_pair, rng):
        t0, t1 = triple_pair
        x = rng.integers(0, 2, 40).astype(np.uint8)
        y = rng.integers(0, 2, 40).astype(np.uint8)
        x0, x1 = share_bool(x, rng)
        y0, y1 = share_bool(y, rng)
        z0, z1, _, _ = run_pair(
            lambda ch: and_shared(ch, t0, x0.bits_vec, y0.bits_vec, party=0),
            lambda ch: and_shared(ch, t1, x1.bits_vec, y1.bits_vec, party=1),
        )
        assert np.array_equal(z0 ^ z1, x & y)


class TestMillionaire:
    def run_compare(self, x_vals, y_vals, bits, seed=9):
        n = x_vals.shape[0]
        p0_pool, p1_pool = make_pools(cots_needed(n, bits), seed, "cmp")
        tp0_s, tp1_r = make_pools(triples_needed(n, bits), seed + 1, "f")
        tp1_s, tp0_r = make_pools(triples_needed(n, bits), seed + 2, "r")
        rng0, rng1 = np.random.default_rng(3), np.random.default_rng(4)
        nt = triples_needed(n, bits)
        t0, t1, _, _ = run_pair(
            lambda ch: generate_bit_triples(ch, nt, tp0_s, tp0_r, rng0, party=0),
            lambda ch: generate_bit_triples(ch, nt, tp1_s, tp1_r, rng1, party=1),
        )
        g0, g1, _, _ = run_pair(
            lambda ch: millionaire_p0(ch, x_vals, bits, p0_pool, t0, rng0),
            lambda ch: millionaire_p1(ch, y_vals, bits, p1_pool, t1),
        )
        return g0 ^ g1

    def test_exhaustive_small_domain(self):
        pairs = [(x, y) for x in range(8) for y in range(8)]
        x = np.array([p[0] for p in pairs], dtype=np.uint64)
        y = np.array([p[1] for p in pairs], dtype=np.uint64)
        got = self.run_compare(x, y, bits=3)
        assert np.array_equal(got, (y > x).astype(np.uint8))

    def test_random_16bit(self, rng):
        x = rng.integers(0, 1 << 16, 24, dtype=np.uint64)
        y = rng.integers(0, 1 << 16, 24, dtype=np.uint64)
        got = self.run_compare(x, y, bits=16, seed=33)
        assert np.array_equal(got, (y > x).astype(np.uint8))

    def test_equal_inputs_are_not_greater(self):
        x = np.arange(10, dtype=np.uint64)
        got = self.run_compare(x, x.copy(), bits=4, seed=55)
        assert not got.any()

    def test_input_validation(self):
        with pytest.raises(ParameterError):
            validate_inputs(np.array([16], dtype=np.uint64), bits=4)
        with pytest.raises(ParameterError):
            validate_inputs(np.array([1], dtype=np.uint64), bits=0)


class TestRelu:
    def run_relu(self, values_signed, bits=16, seed=77):
        n = values_signed.shape[0]
        rng = np.random.default_rng(seed)
        ring_vals = from_signed(values_signed, bits).astype(np.uint64)
        s0, s1 = share_arith(ring_vals, rng, bits=bits)
        cmp0, cmp1 = make_pools(cots_needed(n, bits - 1), seed + 1, "c")
        mux0_s, mux1_r = make_pools(n, seed + 2, "m0")
        mux1_s, mux0_r = make_pools(n, seed + 3, "m1")
        nt = triples_needed(n, bits - 1)
        tp0_s, tp1_r = make_pools(nt, seed + 4, "tf")
        tp1_s, tp0_r = make_pools(nt, seed + 5, "tr")
        rng0, rng1 = np.random.default_rng(5), np.random.default_rng(6)
        t0, t1, _, _ = run_pair(
            lambda ch: generate_bit_triples(ch, nt, tp0_s, tp0_r, rng0, party=0),
            lambda ch: generate_bit_triples(ch, nt, tp1_s, tp1_r, rng1, party=1),
        )
        (y0, d0), (y1, d1), _, _ = run_pair(
            lambda ch: relu_pair(ch, s0, cmp0, mux0_s, mux0_r, t0, rng0, party=0),
            lambda ch: relu_pair(ch, s1, cmp1, mux1_s, mux1_r, t1, rng1, party=1),
        )
        drelu = reconstruct_bool(d0, d1)
        relu = to_signed(reconstruct_arith(y0, y1), bits)
        return relu, drelu

    def test_relu_mixed_signs(self):
        vals = np.array([-300, -1, 0, 1, 2, 100, -2000, 500])
        relu, drelu = self.run_relu(vals)
        assert np.array_equal(relu, np.maximum(vals, 0))
        assert np.array_equal(drelu, (vals >= 0).astype(np.uint8))

    def test_relu_random(self, rng):
        vals = rng.integers(-(1 << 14), 1 << 14, 16)
        relu, drelu = self.run_relu(vals, seed=91)
        assert np.array_equal(relu, np.maximum(vals, 0))
        assert np.array_equal(drelu, (vals >= 0).astype(np.uint8))

    @given(seed=st.integers(0, 200))
    @settings(max_examples=5, deadline=None)
    def test_property_relu(self, seed):
        gen = np.random.default_rng(seed)
        vals = gen.integers(-100, 100, 6)
        relu, _ = self.run_relu(vals, bits=12, seed=seed + 1000)
        assert np.array_equal(relu, np.maximum(vals, 0))
