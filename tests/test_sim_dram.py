"""DDR4 timing model tests."""

import numpy as np
import pytest

from repro.sim.dram import (
    DramBankSim,
    DramGeometry,
    DramTiming,
    service_cycles_fast,
    stream_bandwidth_cycles,
)

T = DramTiming()
G = DramGeometry()


class TestAddressMapping:
    def test_line_interleaving_across_banks(self):
        banks = [G.map_address(i * 64)[0] for i in range(G.n_banks)]
        assert sorted(banks) == list(range(G.n_banks))

    def test_same_row_same_bank_for_nearby_lines(self):
        bank0, row0 = G.map_address(0)
        bank1, row1 = G.map_address(G.n_banks * 64)  # next line, same bank
        assert bank0 == bank1 and row0 == row1

    def test_vectorized_matches_scalar(self, rng):
        addrs = rng.integers(0, 1 << 28, 200).astype(np.int64)
        banks, rows = G.map_addresses(addrs)
        for i in (0, 57, 199):
            b, r = G.map_address(int(addrs[i]))
            assert banks[i] == b and rows[i] == r


class TestSequentialModel:
    def test_row_hits_faster_than_misses(self):
        same_row = np.array([0, 64 * G.n_banks, 2 * 64 * G.n_banks], dtype=np.int64)
        diff_row = np.array([0, G.row_bytes * G.n_banks * 2, G.row_bytes * G.n_banks * 4], dtype=np.int64)
        sim_hit = DramBankSim().service_trace(same_row)
        sim_miss = DramBankSim().service_trace(diff_row)
        assert sim_hit.total_cycles < sim_miss.total_cycles
        assert sim_hit.row_hit_rate > sim_miss.row_hit_rate

    def test_bank_parallelism_beats_single_bank(self):
        n = 32
        row_stride = G.row_bytes * G.n_banks
        one_bank = np.arange(n, dtype=np.int64) * row_stride  # same bank, new rows
        spread = np.arange(n, dtype=np.int64) * (row_stride + 64)  # rotate banks
        t_one = DramBankSim().service_trace(one_bank).total_cycles
        t_spread = DramBankSim().service_trace(spread).total_cycles
        assert t_spread < t_one

    def test_request_count_and_latency_recorded(self, rng):
        addrs = (rng.integers(0, 1 << 22, 100) // 64 * 64).astype(np.int64)
        stats = DramBankSim().service_trace(addrs)
        assert stats.requests == 100
        assert stats.avg_latency >= T.tCL + T.tBL

    def test_empty_trace(self):
        stats = DramBankSim().service_trace(np.array([], dtype=np.int64))
        assert stats.requests == 0


class TestFastModel:
    def test_empty(self):
        assert service_cycles_fast(np.array([], dtype=np.int64)).requests == 0

    def test_row_hit_classification(self):
        # 4 accesses in one row of one bank: first misses, rest hit.
        addrs = np.array([0, G.n_banks * 64, 2 * G.n_banks * 64, 3 * G.n_banks * 64])
        stats = service_cycles_fast(addrs)
        assert stats.requests == 4 and stats.row_hits == 3

    def test_random_trace_mostly_row_misses(self, rng):
        addrs = (rng.integers(0, 1 << 30, 2000) // 64 * 64).astype(np.int64)
        stats = service_cycles_fast(addrs)
        assert stats.row_hit_rate < 0.1

    def test_tracks_sequential_model_on_shared_trace(self, rng):
        """The vectorized throughput model stays within 2x of the exact
        state machine on a mixed trace (it is a lower-bound style model)."""
        addrs = (rng.integers(0, 1 << 24, 400) // 64 * 64).astype(np.int64)
        exact = DramBankSim().service_trace(addrs).total_cycles
        fast = service_cycles_fast(addrs).total_cycles
        # The sequential model is a shallow-queue (latency-bound) view,
        # the fast model a deep-queue throughput bound: fast <= exact,
        # within an order of magnitude.
        assert fast <= exact * 1.1
        assert fast >= exact / 12

    def test_more_requests_more_cycles(self, rng):
        a = (rng.integers(0, 1 << 24, 500) // 64 * 64).astype(np.int64)
        b = (rng.integers(0, 1 << 24, 2000) // 64 * 64).astype(np.int64)
        assert service_cycles_fast(b).total_cycles > service_cycles_fast(a).total_cycles


class TestStreaming:
    def test_zero_bytes(self):
        assert stream_bandwidth_cycles(0) == 0

    def test_linear_in_size(self):
        one = stream_bandwidth_cycles(1 << 20)
        two = stream_bandwidth_cycles(2 << 20)
        assert two == pytest.approx(2 * one, rel=0.05)

    def test_streaming_beats_random_per_byte(self, rng):
        # Random 16-byte gathers fetch a full line per block (4x traffic).
        n_bytes = 256 * 1024
        stream = stream_bandwidth_cycles(n_bytes)
        random_addrs = (rng.integers(0, 1 << 28, n_bytes // 16) // 64 * 64).astype(np.int64)
        random = service_cycles_fast(random_addrs).total_cycles
        assert stream < random
