"""Optional compiled kernels: dispatch transparency and oracles.

``repro.crypto.kernels`` must be value-transparent -- bit-identical to
the numpy oracles whether or not numba is importable -- and the
ChaChaTreePrg state-template cache (the hoisted key schedule) must not
change a single expanded block.
"""

import numpy as np
import pytest

from repro.crypto import kernels
from repro.crypto.chacha import chacha_core as chacha_oracle
from repro.crypto.prg import ChaChaTreePrg, make_tree_prg
from repro.crypto import blocks


def random_states(n, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << 32, (n, 16), dtype=np.uint64).astype(np.uint32)


class TestChaChaDispatch:
    @pytest.mark.parametrize("n", [1, 8, kernels.NUMBA_MIN_ROWS + 5])
    def test_matches_numpy_oracle(self, n):
        initial = random_states(n, seed=n)
        got = kernels.chacha_core(initial, 8)
        assert np.array_equal(got, chacha_oracle(initial, 8))

    def test_small_batches_never_use_numba(self, monkeypatch):
        # Below NUMBA_MIN_ROWS the dispatcher must not touch the JIT --
        # poison it and check the numpy path still serves.
        monkeypatch.setattr(kernels, "HAVE_NUMBA", True)
        monkeypatch.setattr(kernels, "_chacha_rows", None, raising=False)
        initial = random_states(16, seed=1)
        got = kernels.chacha_core(initial, 8)
        assert np.array_equal(got, chacha_oracle(initial, 8))

    @pytest.mark.skipif(not kernels.HAVE_NUMBA, reason="numba not installed")
    def test_numba_bit_exact_at_scale(self):
        initial = random_states(kernels.NUMBA_MIN_ROWS * 2, seed=7)
        for rounds in (8, 12, 20):
            got = kernels.chacha_core(initial, rounds)
            assert np.array_equal(got, chacha_oracle(initial, rounds))


class TestGatherXorDispatch:
    def _case(self, rows, seed):
        rng = np.random.default_rng(seed)
        k = 64
        indices = rng.integers(0, k, (rows, 4), dtype=np.int64)
        vec = blocks.random_blocks(k, rng)
        addend = blocks.random_blocks(rows, rng)
        return indices, vec, addend

    def oracle(self, indices, vec, addend):
        out = addend.copy()
        for t in range(indices.shape[1]):
            out ^= vec[indices[:, t]]
        return out

    def test_none_signals_numpy_fallback_for_small_batches(self):
        indices, vec, addend = self._case(8, seed=2)
        assert kernels.gather_xor_blocks(indices, vec, addend) is None

    @pytest.mark.skipif(kernels.HAVE_NUMBA, reason="covers the no-numba path")
    def test_none_without_numba_at_any_size(self):
        indices, vec, addend = self._case(kernels.NUMBA_MIN_ROWS * 2, seed=3)
        assert kernels.gather_xor_blocks(indices, vec, addend) is None

    @pytest.mark.skipif(not kernels.HAVE_NUMBA, reason="numba not installed")
    def test_numba_bit_exact_at_scale(self):
        indices, vec, addend = self._case(kernels.NUMBA_MIN_ROWS * 2, seed=4)
        got = kernels.gather_xor_blocks(indices, vec, addend)
        assert got is not None
        assert np.array_equal(got, self.oracle(indices, vec, addend))


class TestChaChaTemplateCache:
    """The hoisted state schedule is a pure cache: expansion output is a
    function of (parent values, level) only."""

    def test_cached_template_does_not_change_expansion(self):
        rng = np.random.default_rng(11)
        nodes = blocks.random_blocks(6, rng)
        fresh = ChaChaTreePrg(arity=4, rounds=8)
        warmed = ChaChaTreePrg(arity=4, rounds=8)
        for level in (0, 1, 5):  # re-hitting the same (n,) cache entry
            a = fresh.expand(nodes, level)
            b = warmed.expand(nodes, level)
            c = warmed.expand(nodes, level)
            assert np.array_equal(a, b)
            assert np.array_equal(b, c)
        assert list(warmed._state_cache) == [6]

    def test_template_cache_keyed_by_batch_size(self):
        rng = np.random.default_rng(12)
        prg = ChaChaTreePrg(arity=4, rounds=8)
        prg.expand(blocks.random_blocks(3, rng), 0)
        prg.expand(blocks.random_blocks(5, rng), 0)
        assert sorted(prg._state_cache) == [3, 5]

    def test_factory_output_stable_across_instances(self):
        rng = np.random.default_rng(13)
        nodes = blocks.random_blocks(4, rng)
        a = make_tree_prg("chacha8", arity=4).expand(nodes, 2)
        b = make_tree_prg("chacha8", arity=4).expand(nodes, 2)
        assert np.array_equal(a, b)

    def test_shared_instance_concurrent_expand_bit_exact(self):
        # Regression: the state template is mutated in place per expand,
        # and module-level PRG instances (spcot.protocol._KEY_TREE_PRG)
        # are hit from both parties' worker threads when a two-party
        # protocol runs in one process.  With a process-wide template
        # cache, one thread rewrites key words while the other is
        # mid-permutation, corrupting a few children; the cache must be
        # per-thread so concurrent expands stay bit-exact.
        import sys
        import threading

        rng = np.random.default_rng(14)
        prg = ChaChaTreePrg(arity=2, rounds=8)
        jobs = []
        for level in (1, 2):
            nodes = blocks.random_blocks(16, rng)
            ref = ChaChaTreePrg(arity=2, rounds=8).expand(nodes, level)
            jobs.append((nodes, level, ref))
        bad = [0] * len(jobs)
        barrier = threading.Barrier(len(jobs))

        def worker(idx, nodes, level, ref):
            barrier.wait()
            for _ in range(500):
                if not np.array_equal(prg.expand(nodes, level), ref):
                    bad[idx] += 1

        threads = [
            threading.Thread(target=worker, args=(i, *job))
            for i, job in enumerate(jobs)
        ]
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)  # force frequent preemption
        try:
            [t.start() for t in threads]
            [t.join() for t in threads]
        finally:
            sys.setswitchinterval(old_interval)
        assert bad == [0] * len(jobs)
