"""PPML inference estimation + framework profile tests."""

import pytest

from repro.baselines.cpu import DEFAULT_CPU
from repro.errors import ParameterError
from repro.lpn.params import TABLE4_BY_LABEL
from repro.nmp.accelerator import IronmanAccelerator
from repro.nmp.config import IRONMAN_1MB
from repro.ppml.inference import (
    CpuOte,
    DEFAULT_APP_PARAMS,
    GpuOte,
    IronmanOte,
    estimate_inference,
    nonlinear_layer_count,
    ote_comm_per_execution,
)
from repro.ppml.models import build
from repro.ppml.network import LAN, WAN, NetworkModel
from repro.ppml.nonlinear import BOLT, CHEETAH, CRYPTFLOW2, FRAMEWORKS, SIRNN


class TestNetwork:
    def test_transfer_time(self):
        assert LAN.transfer_seconds(3e9 / 8) == pytest.approx(1.0)

    def test_round_time(self):
        assert WAN.round_seconds(10) == pytest.approx(0.2)

    def test_wan_slower_than_lan(self):
        assert WAN.interaction_seconds(1e9, 100) > LAN.interaction_seconds(1e9, 100)

    def test_validation(self):
        with pytest.raises(ParameterError):
            NetworkModel("bad", 0, 0.1)


class TestProfiles:
    def test_all_four_frameworks_registered(self):
        assert set(FRAMEWORKS) == {"CrypTFlow2", "Cheetah", "Bolt", "EzPC-SiRNN"}

    def test_cheetah_cheaper_than_cryptflow2_per_relu(self):
        assert CHEETAH.cost_of("relu").cots < CRYPTFLOW2.cost_of("relu").cots

    def test_bolt_softmax_is_priciest_transformer_op(self):
        costs = BOLT.costs
        assert costs["softmax"].cots > costs["gelu"].cots > 0

    def test_cot_demand_includes_mac_term(self):
        counts = {"relu": 1000}
        base = CRYPTFLOW2.cot_demand(counts, macs=0)
        with_macs = CRYPTFLOW2.cot_demand(counts, macs=10_000)
        assert with_macs == pytest.approx(base + 1000.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ParameterError):
            BOLT.cost_of("relu")  # Bolt profiles transformers only

    def test_online_bytes_linear(self):
        a = SIRNN.online_bytes({"gelu": 100})
        b = SIRNN.online_bytes({"gelu": 200})
        assert b == pytest.approx(2 * a)


class TestOteProviders:
    def test_provider_ordering(self):
        params = DEFAULT_APP_PARAMS
        n = 100_000_000
        cpu = CpuOte(params).seconds_for(n)
        gpu = GpuOte(params).seconds_for(n)
        ours = IronmanOte(params, IronmanAccelerator(IRONMAN_1MB)).seconds_for(n)
        assert ours < gpu < cpu

    def test_comm_scales_with_executions(self):
        params = DEFAULT_APP_PARAMS
        p = CpuOte(params)
        b1, r1 = p.comm_for(params.usable_output)
        b2, r2 = p.comm_for(2 * params.usable_output)
        assert b2 == pytest.approx(2 * b1) and r2 == 2 * r1

    def test_mary_ote_comm_exceeds_binary(self):
        """Figure 7(b): 4-ary costs more communication per execution."""
        params = TABLE4_BY_LABEL["2^20"]
        b2, _ = ote_comm_per_execution(params, arity=2)
        b4, _ = ote_comm_per_execution(params, arity=4)
        assert b4 > b2

    def test_mary_ote_rounds_comparable(self):
        """Key-tree OTs serialize inside each m-ary level, so rounds stay
        within ~1.5x of the binary protocol (levels halve, 3 rounds each)."""
        params = TABLE4_BY_LABEL["2^20"]
        _, r2 = ote_comm_per_execution(params, arity=2)
        _, r4 = ote_comm_per_execution(params, arity=4)
        assert r2 <= r4 <= 2 * r2


class TestEstimator:
    def test_breakdown_sums_to_total(self):
        model = build("ResNet18")
        est = estimate_inference(model, CHEETAH, CpuOte(DEFAULT_APP_PARAMS), LAN, 2.0)
        assert est.total_seconds == pytest.approx(
            est.he_seconds + est.ot_seconds + est.online_comm_seconds + 2.0
        )

    def test_shares_sum_to_one(self):
        model = build("ResNet50")
        est = estimate_inference(model, CHEETAH, CpuOte(DEFAULT_APP_PARAMS), LAN, 1.0)
        total = sum(est.share(c) for c in ("he", "ot", "online", "other"))
        assert total == pytest.approx(1.0)

    def test_unknown_share_component(self):
        model = build("ResNet18")
        est = estimate_inference(model, CHEETAH, CpuOte(DEFAULT_APP_PARAMS), LAN)
        with pytest.raises(ParameterError):
            est.share("quantum")

    def test_ironman_only_reduces_ot_component(self):
        model = build("BERT-Base")
        cpu = estimate_inference(model, BOLT, CpuOte(DEFAULT_APP_PARAMS), LAN)
        our = estimate_inference(
            model, BOLT, IronmanOte(DEFAULT_APP_PARAMS, IronmanAccelerator(IRONMAN_1MB)), LAN
        )
        assert our.ot_seconds < cpu.ot_seconds
        assert our.he_seconds == pytest.approx(cpu.he_seconds)
        assert our.online_comm_seconds == pytest.approx(cpu.online_comm_seconds)

    def test_wan_total_exceeds_lan(self):
        model = build("ResNet18")
        lan = estimate_inference(model, CHEETAH, CpuOte(DEFAULT_APP_PARAMS), LAN)
        wan = estimate_inference(model, CHEETAH, CpuOte(DEFAULT_APP_PARAMS), WAN)
        assert wan.total_seconds > lan.total_seconds

    def test_nonlinear_layer_count_positive(self):
        assert nonlinear_layer_count(build("ResNet18")) >= 18
        assert nonlinear_layer_count(build("BERT-Base")) > 40
