"""Unified-architecture MatMul tests (Figure 16)."""

import pytest

from repro.errors import ParameterError
from repro.lpn.params import TABLE4_BY_LABEL
from repro.nmp.accelerator import IronmanAccelerator
from repro.nmp.config import IRONMAN_1MB
from repro.ppml.inference import IronmanOte
from repro.ppml.matmul import (
    FIG16_DIMS,
    MatmulDims,
    matmul_comm_bytes,
    matmul_cost,
    matmul_cots,
)
from repro.ppml.network import LAN


@pytest.fixture(scope="module")
def provider():
    return IronmanOte(TABLE4_BY_LABEL["2^22"], IronmanAccelerator(IRONMAN_1MB))


class TestCounting:
    def test_cots_cover_both_cross_terms(self):
        d = MatmulDims(4, 8, 16)
        assert matmul_cots(d, bits=8) == (4 * 8 + 8 * 16) * 8

    def test_unified_halves_comm_exactly(self):
        """The paper's measured 2x communication reduction."""
        for dims in FIG16_DIMS:
            without = matmul_comm_bytes(dims, unified=False)
            with_u = matmul_comm_bytes(dims, unified=True)
            assert without / with_u == pytest.approx(2.0)

    def test_dims_validation(self):
        with pytest.raises(ParameterError):
            MatmulDims(0, 8, 8)

    def test_label(self):
        assert MatmulDims(64, 768, 64).label == "(64,768,64)"


class TestLatency:
    def test_latency_reduction_in_paper_regime(self, provider):
        """Paper: ~1.4x latency reduction across the Fig 16 shapes."""
        for dims in FIG16_DIMS:
            base = matmul_cost(dims, provider, LAN, unified=False)
            ours = matmul_cost(dims, provider, LAN, unified=True)
            ratio = base.total_seconds / ours.total_seconds
            assert 1.2 < ratio <= 2.0

    def test_ot_time_is_role_independent(self, provider):
        dims = FIG16_DIMS[0]
        base = matmul_cost(dims, provider, LAN, unified=False)
        ours = matmul_cost(dims, provider, LAN, unified=True)
        assert base.ot_seconds == pytest.approx(ours.ot_seconds)
        assert base.cots == ours.cots

    def test_fig16_dims_match_paper(self):
        labels = [d.label for d in FIG16_DIMS]
        assert labels == ["(64,768,768)", "(64,768,64)", "(64,4096,64)"]
