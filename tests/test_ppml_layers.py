"""Shape-inference IR tests."""

import pytest

from repro.errors import ParameterError
from repro.ppml.layers import (
    Activation,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Graph,
    LayerNorm,
    Linear,
    MaxPool2d,
    Softmax,
)


class TestConv:
    def test_output_shape_stride_padding(self):
        shape, cost = Conv2d(64, 7, 2, 3).apply((3, 224, 224))
        assert shape == (64, 112, 112)

    def test_macs_formula(self):
        shape, cost = Conv2d(8, 3, 1, 1).apply((4, 16, 16))
        assert shape == (8, 16, 16)
        assert cost.macs == 4 * 9 * 8 * 16 * 16

    def test_params_with_bias(self):
        _, cost = Conv2d(8, 3, bias=True).apply((4, 16, 16))
        assert cost.params == 4 * 9 * 8 + 8

    def test_depthwise_groups(self):
        _, cost = Conv2d(16, 3, 1, 1, groups=16, bias=False).apply((16, 8, 8))
        assert cost.macs == 9 * 16 * 8 * 8
        assert cost.params == 9 * 16

    def test_groups_must_divide(self):
        with pytest.raises(ParameterError):
            Conv2d(8, 3, groups=3).apply((4, 8, 8))


class TestLinearAndNorm:
    def test_linear_on_2d_shape(self):
        shape, cost = Linear(10).apply((128, 768))
        assert shape == (128, 10)
        assert cost.macs == 128 * 768 * 10
        assert cost.params == 768 * 10 + 10

    def test_batchnorm_params_only(self):
        shape, cost = BatchNorm2d().apply((32, 8, 8))
        assert shape == (32, 8, 8)
        assert cost.params == 64 and cost.macs == 0

    def test_layernorm_counts_elements(self):
        shape, cost = LayerNorm().apply((128, 768))
        assert cost.nonlinear == {"layernorm": 128 * 768}


class TestNonlinearLayers:
    def test_activation_counts_elements(self):
        _, cost = Activation("relu").apply((64, 56, 56))
        assert cost.nonlinear == {"relu": 64 * 56 * 56}

    def test_unknown_activation_rejected(self):
        with pytest.raises(ParameterError):
            Activation("swishish").apply((1, 1, 1))

    def test_maxpool_comparisons(self):
        shape, cost = MaxPool2d(3, 2, 1).apply((64, 112, 112))
        assert shape == (64, 56, 56)
        assert cost.nonlinear == {"maxpool_cmp": 64 * 56 * 56 * 8}

    def test_avgpool_truncations(self):
        shape, cost = AvgPool2d(2).apply((32, 8, 8))
        assert shape == (32, 4, 4)
        assert cost.nonlinear == {"avgpool": 32 * 16}

    def test_softmax_counts(self):
        _, cost = Softmax().apply((12, 128, 128))
        assert cost.nonlinear == {"softmax": 12 * 128 * 128}

    def test_global_avg_pool(self):
        shape, _ = GlobalAvgPool().apply((512, 7, 7))
        assert shape == (512, 1, 1)

    def test_flatten(self):
        shape, _ = Flatten().apply((512, 1, 1))
        assert shape == (512,)


class TestGraph:
    def test_sequential_accumulation(self):
        g = Graph("toy", (3, 32, 32))
        g.add(Conv2d(8, 3, 1, 1)).add(Activation("relu")).add(MaxPool2d(2, 2))
        g.add(Flatten()).add(Linear(10))
        assert g.shape == (10,)
        assert g.nonlinear_counts()["relu"] == 8 * 32 * 32
        assert g.total_params > 0

    def test_absorb_merges_costs(self):
        g = Graph("main", (4, 8, 8))
        side = Graph("side", (4, 8, 8))
        side.add(Activation("relu"))
        g.absorb(side)
        assert g.nonlinear_counts() == {"relu": 256}
        assert g.shape == (4, 8, 8)  # shapes untouched

    def test_set_shape_for_concat(self):
        g = Graph("main", (4, 8, 8))
        g.set_shape((12, 8, 8))
        assert g.shape == (12, 8, 8)

    def test_layer_log_tracks_names(self):
        g = Graph("toy", (3, 8, 8))
        g.add(Conv2d(4, 3, 1, 1)).add(Activation("relu"))
        assert [name for name, _ in g.layer_log] == ["conv", "act"]

    def test_nonlinear_total(self):
        g = Graph("toy", (2, 4, 4))
        g.add(Activation("relu")).add(MaxPool2d(2, 2))
        assert g.nonlinear_total() == 32 + 2 * 2 * 2 * 3
