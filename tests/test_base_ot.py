"""Schnorr group + PKC base OT tests (the OTE Init phase)."""

import numpy as np
import pytest

from repro.crypto import blocks
from repro.crypto.group import (
    DEFAULT_GROUP,
    MODP_2048_P,
    OAKLEY_768_P,
    FixedBaseExp,
    SchnorrGroup,
)
from repro.ot.base_ot import (
    base_cot_receive,
    base_cot_send,
    base_ot_receive,
    base_ot_send,
)
from repro.ot.channel import run_pair
from repro.ot.cot import CotReceiverBatch, CotSenderBatch, verify_cot


class TestGroup:
    def test_oakley_modulus_is_odd_and_large(self):
        assert OAKLEY_768_P % 2 == 1
        assert OAKLEY_768_P.bit_length() == 768

    def test_generator_is_quadratic_residue(self):
        g = DEFAULT_GROUP.g
        # g = 4 is a QR; its order divides q.
        assert pow(g, DEFAULT_GROUP.q, DEFAULT_GROUP.p) == 1

    def test_exp_inverse(self):
        a = DEFAULT_GROUP.random_scalar()
        ga = DEFAULT_GROUP.gexp(a)
        assert DEFAULT_GROUP.mul(ga, DEFAULT_GROUP.inv(ga)) == 1

    def test_dh_agreement(self):
        a, b = DEFAULT_GROUP.random_scalar(), DEFAULT_GROUP.random_scalar()
        left = DEFAULT_GROUP.exp(DEFAULT_GROUP.gexp(a), b)
        right = DEFAULT_GROUP.exp(DEFAULT_GROUP.gexp(b), a)
        assert left == right

    def test_element_bytes_fixed_width(self):
        assert len(DEFAULT_GROUP.element_bytes(1)) == 96  # 768 bits

    def test_hash_to_key_tweak_separation(self):
        e = DEFAULT_GROUP.gexp(12345)
        assert DEFAULT_GROUP.hash_to_key(e, b"|0") != DEFAULT_GROUP.hash_to_key(e, b"|1")

    def test_modp2048_also_constructs(self):
        g = SchnorrGroup(p=MODP_2048_P)
        assert g.q == (MODP_2048_P - 1) // 2


class TestFixedBaseExp:
    """The windowed fixed-base table must be a drop-in for pow()."""

    def test_gexp_matches_pow_random_scalars(self):
        rng = np.random.default_rng(0xF1)
        for _ in range(16):
            x = int(rng.integers(1, 1 << 62)) * int(rng.integers(1, 1 << 62))
            x %= DEFAULT_GROUP.q
            assert DEFAULT_GROUP.gexp(x) == pow(DEFAULT_GROUP.g, x, DEFAULT_GROUP.p)

    def test_gexp_matches_pow_full_width_scalars(self):
        for _ in range(4):
            x = DEFAULT_GROUP.random_scalar()
            assert DEFAULT_GROUP.gexp(x) == pow(DEFAULT_GROUP.g, x, DEFAULT_GROUP.p)

    def test_gexp_edge_scalars(self):
        g, p, q = DEFAULT_GROUP.g, DEFAULT_GROUP.p, DEFAULT_GROUP.q
        for x in (0, 1, 2, q - 1, q):
            assert DEFAULT_GROUP.gexp(x) == pow(g, x, p)

    def test_out_of_range_scalars_fall_back_to_pow(self):
        g, p, q = DEFAULT_GROUP.g, DEFAULT_GROUP.p, DEFAULT_GROUP.q
        beyond = (1 << q.bit_length() + 64) + 12345  # past the table
        assert DEFAULT_GROUP.gexp(beyond) == pow(g, beyond, p)
        assert DEFAULT_GROUP.gexp(-3) == pow(g, -3, p)

    def test_table_on_2048_bit_group(self):
        grp = SchnorrGroup(MODP_2048_P)
        x = grp.random_scalar()
        assert grp.gexp(x) == pow(grp.g, x, grp.p)

    def test_standalone_table_small_window(self):
        table = FixedBaseExp(7, 1009, exp_bits=20, window=3)
        for x in (0, 1, 5, 255, (1 << 20) - 1):
            assert table.exp(x) == pow(7, x, 1009)


class TestBaseOt:
    def test_receiver_gets_chosen_messages(self, rng):
        n = 12
        m0 = blocks.random_blocks(n, rng)
        m1 = blocks.random_blocks(n, rng)
        choices = rng.integers(0, 2, n).astype(np.uint8)
        _, got, _, _ = run_pair(
            lambda ch: base_ot_send(ch, m0, m1),
            lambda ch: base_ot_receive(ch, choices),
        )
        expect = np.where(choices[:, None].astype(bool), m1, m0)
        assert np.array_equal(got, expect)

    def test_receiver_never_gets_other_message(self, rng):
        n = 12
        m0 = blocks.random_blocks(n, rng)
        m1 = blocks.random_blocks(n, rng)
        choices = rng.integers(0, 2, n).astype(np.uint8)
        _, got, _, _ = run_pair(
            lambda ch: base_ot_send(ch, m0, m1),
            lambda ch: base_ot_receive(ch, choices),
        )
        other = np.where(choices[:, None].astype(bool), m0, m1)
        assert not np.any(blocks.equal(got, other))

    @pytest.mark.parametrize("constant_choice", [0, 1])
    def test_all_same_choice(self, rng, constant_choice):
        n = 6
        m0 = blocks.random_blocks(n, rng)
        m1 = blocks.random_blocks(n, rng)
        choices = np.full(n, constant_choice, dtype=np.uint8)
        _, got, _, _ = run_pair(
            lambda ch: base_ot_send(ch, m0, m1),
            lambda ch: base_ot_receive(ch, choices),
        )
        assert np.array_equal(got, m1 if constant_choice else m0)

    def test_base_cot_correlation(self, rng):
        n = 16
        delta = blocks.random_blocks(1, rng)
        choices = rng.integers(0, 2, n).astype(np.uint8)
        r, y, _, _ = run_pair(
            lambda ch: base_cot_send(ch, n, delta, rng),
            lambda ch: base_cot_receive(ch, choices),
        )
        assert verify_cot(CotSenderBatch(delta, r), CotReceiverBatch(choices, y))

    def test_shared_fixture_is_valid(self, shared_cots):
        s, r = shared_cots
        assert verify_cot(s, r)
        # sanity: choice bits not constant
        assert 0 < r.x.mean() < 1


class TestBatchedSchedule:
    """The batched wire schedule (one element blob, one payload) must be
    output-equivalent to the sequential per-OT reference path."""

    N = 24

    def run_base_cot(self, batched, seed=77):
        gen = np.random.default_rng(seed)
        delta = blocks.random_blocks(1, gen)
        choices = np.random.default_rng(seed + 1).integers(0, 2, self.N).astype(np.uint8)
        r, y, s_stats, r_stats = run_pair(
            lambda ch: base_cot_send(ch, self.N, delta, gen, batched=batched),
            lambda ch: base_cot_receive(ch, choices, batched=batched),
        )
        return delta, choices, r, y, s_stats, r_stats

    def test_batched_equivalent_to_sequential(self):
        """Same seeds -> identical sender blocks and receiver outputs."""
        d_b, c_b, r_b, y_b, _, _ = self.run_base_cot(batched=True)
        d_s, c_s, r_s, y_s, _, _ = self.run_base_cot(batched=False)
        assert np.array_equal(d_b, d_s) and np.array_equal(c_b, c_s)
        assert np.array_equal(r_b, r_s)
        assert np.array_equal(y_b, y_s)
        assert verify_cot(CotSenderBatch(d_b, r_b), CotReceiverBatch(c_b, y_b))

    def test_batched_collapses_message_count(self):
        """Receiver: n element messages -> 1; whole protocol O(1) messages."""
        _, _, _, _, s_seq, r_seq = self.run_base_cot(batched=False)
        _, _, _, _, s_bat, r_bat = self.run_base_cot(batched=True)
        assert r_seq.messages_sent == self.N  # one element per OT
        assert r_bat.messages_sent == 1  # one blob for all OTs
        assert s_bat.messages_sent == s_seq.messages_sent  # n, A, payload
        # Round trips collapse to a constant as well.
        assert r_bat.rounds <= 2 and s_bat.rounds <= 2

    def test_batched_bytes_on_wire_match(self):
        """Batching changes message boundaries, not the element bytes."""
        _, _, _, _, s_seq, r_seq = self.run_base_cot(batched=False)
        _, _, _, _, s_bat, r_bat = self.run_base_cot(batched=True)
        assert r_bat.bytes_sent == r_seq.bytes_sent
        assert s_bat.bytes_sent == s_seq.bytes_sent

    def test_batched_chosen_message_ot(self, rng):
        """base_ot (not just base_cot) also runs on the batched schedule."""
        n = 10
        m0 = blocks.random_blocks(n, rng)
        m1 = blocks.random_blocks(n, rng)
        choices = rng.integers(0, 2, n).astype(np.uint8)
        _, got, _, _ = run_pair(
            lambda ch: base_ot_send(ch, m0, m1, batched=True),
            lambda ch: base_ot_receive(ch, choices, batched=True),
        )
        expect = np.where(choices[:, None].astype(bool), m1, m0)
        assert np.array_equal(got, expect)

    def test_mismatched_schedules_fail_loudly(self):
        """A batched sender against a sequential receiver must not hang
        or silently mis-deliver."""
        from repro.errors import ReproError
        from repro.ot.channel import PartyError

        gen = np.random.default_rng(5)
        delta = blocks.random_blocks(1, gen)
        choices = gen.integers(0, 2, 4).astype(np.uint8)
        with pytest.raises((PartyError, ReproError)):
            run_pair(
                lambda ch: base_cot_send(ch, 4, delta, gen, batched=True),
                lambda ch: base_cot_receive(ch, choices, batched=False),
                recv_timeout=2.0,
            )
