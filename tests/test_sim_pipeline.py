"""PRG pipeline + GGM expansion schedule tests (Figure 8)."""

import pytest

from repro.errors import ParameterError
from repro.sim.pipeline import (
    AES_STAGES,
    CHACHA8_STAGES,
    SCHEDULES,
    core_stages,
    expansion_schedule,
    ops_per_node,
)


class TestOpsPerNode:
    def test_aes_is_arity(self):
        assert ops_per_node(4, "aes") == 4

    def test_chacha_packs_four(self):
        assert ops_per_node(4, "chacha8") == 1
        assert ops_per_node(8, "chacha8") == 2
        assert ops_per_node(2, "chacha8") == 1

    def test_unknown_kind(self):
        with pytest.raises(ParameterError):
            ops_per_node(2, "md5")

    def test_stage_depths(self):
        assert core_stages("chacha8") == CHACHA8_STAGES == 8
        assert core_stages("aes") == AES_STAGES == 10


class TestSchedules:
    def test_depth_first_pays_full_pipeline_per_op(self):
        res = expansion_schedule(1, 4, 2, "chacha8", schedule="depth_first")
        assert res.cycles == res.total_ops * CHACHA8_STAGES
        assert res.utilization == pytest.approx(1 / CHACHA8_STAGES)

    def test_breadth_first_beats_depth_first(self):
        df = expansion_schedule(1, 6, 2, "chacha8", schedule="depth_first")
        bf = expansion_schedule(1, 6, 2, "chacha8", schedule="breadth_first")
        assert bf.cycles < df.cycles

    def test_hybrid_beats_breadth_first_with_many_trees(self):
        bf = expansion_schedule(16, 4, 2, "chacha8", schedule="breadth_first")
        hy = expansion_schedule(16, 4, 2, "chacha8", schedule="hybrid")
        assert hy.cycles < bf.cycles

    def test_hybrid_reaches_full_utilization(self):
        """Section 4.3: with t >= stages trees the pipeline never starves."""
        res = expansion_schedule(64, 6, 4, "chacha8", schedule="hybrid")
        assert res.utilization > 0.95

    def test_hybrid_with_one_shallow_tree_underutilizes(self):
        res = expansion_schedule(1, 2, 2, "chacha8", schedule="hybrid")
        assert res.utilization < 0.5

    def test_total_ops_matches_closed_form(self):
        res = expansion_schedule(10, 3, 4, "chacha8", schedule="hybrid")
        internal = 1 + 4 + 16
        assert res.total_ops == 10 * internal  # 1 call per node for chacha/4-ary

    def test_ragged_leaves_reduce_ops(self):
        full = expansion_schedule(1, 7, 4, "chacha8", n_leaves=4**7)
        ragged = expansion_schedule(1, 7, 4, "chacha8", n_leaves=8192)
        assert ragged.total_ops < full.total_ops
        # (8192 - 1) // 3 internal nodes for a 4-ary 8192-leaf tree
        assert ragged.total_ops == sum(
            min(4**i, -(-8192 // 4 ** (7 - i))) for i in range(7)
        )

    def test_cores_scale_throughput(self):
        one = expansion_schedule(32, 5, 4, "chacha8", n_cores=1)
        two = expansion_schedule(32, 5, 4, "chacha8", n_cores=2)
        assert two.cycles < one.cycles
        assert two.cycles >= one.cycles // 2

    def test_buffer_depth_first_smallest(self):
        df = expansion_schedule(8, 5, 2, "chacha8", schedule="depth_first")
        bf = expansion_schedule(8, 5, 2, "chacha8", schedule="breadth_first")
        assert df.buffer_blocks < bf.buffer_blocks

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ParameterError):
            expansion_schedule(1, 2, 2, "aes", schedule="zigzag")

    def test_bad_leaves_rejected(self):
        with pytest.raises(ParameterError):
            expansion_schedule(1, 2, 2, "aes", n_leaves=100)

    def test_schedule_constants_exposed(self):
        assert SCHEDULES == ("depth_first", "breadth_first", "hybrid")

    def test_seconds_conversion(self):
        res = expansion_schedule(8, 4, 4, "chacha8")
        assert res.seconds(1e9) == pytest.approx(res.cycles / 1e9)


class TestPaperRatios:
    """Figure 13(a): ablation ratios are schedule-invariant op ratios."""

    @pytest.mark.parametrize(
        "arity,kind,expected",
        [((2), "aes", 1.0), ((4), "aes", 1.5), ((2), "chacha8", 2.0), ((4), "chacha8", 6.0)],
    )
    def test_fig13a_speedups(self, arity, kind, expected):
        depth = {2: 12, 4: 6}[arity]
        base = expansion_schedule(480, 12, 2, "aes", schedule="hybrid", n_leaves=4096)
        ours = expansion_schedule(480, depth, arity, kind, schedule="hybrid", n_leaves=4096)
        assert base.total_ops / ours.total_ops == pytest.approx(expected, rel=0.02)
