"""ChaCha known-answer (RFC 8439) and structural tests."""

import numpy as np
import pytest

from repro.crypto import chacha
from repro.errors import ParameterError

RFC_KEY = bytes(range(32))
RFC_NONCE = bytes.fromhex("000000090000004a00000000")
# RFC 8439 section 2.3.2 serialized keystream block (counter = 1).
RFC_STREAM_HEAD = bytes.fromhex("10f1e7e4d13b5915500fdd1fa32071c4")


class TestKnownAnswers:
    def test_rfc8439_block_head(self):
        out = chacha.chacha20_block(RFC_KEY, 1, RFC_NONCE)
        assert len(out) == 64
        assert out[:16] == RFC_STREAM_HEAD

    def test_rfc8439_block_tail(self):
        out = chacha.chacha20_block(RFC_KEY, 1, RFC_NONCE)
        # RFC 8439 final state words 12 and 15: d19c12b5, 4e3c50a2 (LE).
        assert out[48:52] == bytes.fromhex("b5129cd1")
        assert out[60:64] == bytes.fromhex("a2503c4e")

    def test_counter_changes_output(self):
        a = chacha.chacha20_block(RFC_KEY, 1, RFC_NONCE)
        b = chacha.chacha20_block(RFC_KEY, 2, RFC_NONCE)
        assert a != b

    def test_chacha8_differs_from_chacha20(self):
        a = chacha.chacha8_block(RFC_KEY, 1, RFC_NONCE)
        b = chacha.chacha20_block(RFC_KEY, 1, RFC_NONCE)
        assert a != b


class TestValidation:
    def test_rejects_odd_rounds(self):
        state = np.zeros((1, 16), dtype=np.uint32)
        with pytest.raises(ParameterError):
            chacha.chacha_core(state, 7)

    def test_rejects_bad_state_shape(self):
        with pytest.raises(ParameterError):
            chacha.chacha_core(np.zeros((1, 15), dtype=np.uint32), 8)

    def test_rejects_bad_key_len(self):
        with pytest.raises(ParameterError):
            chacha.chacha_block(b"short", 0, b"\x00" * 12)

    def test_rejects_bad_nonce_len(self):
        with pytest.raises(ParameterError):
            chacha.chacha_block(RFC_KEY, 0, b"\x00" * 8)


class TestBatch:
    def test_batch_matches_singles(self):
        kw = np.arange(3 * 8, dtype=np.uint32).reshape(3, 8)
        nw = np.arange(3 * 3, dtype=np.uint32).reshape(3, 3)
        counters = np.array([0, 1, 2], dtype=np.uint32)
        batch = chacha.chacha_core(chacha.make_states(kw, counters, nw), 8)
        for i in range(3):
            single = chacha.chacha_core(
                chacha.make_states(kw[i : i + 1], counters[i : i + 1], nw[i : i + 1]), 8
            )
            assert np.array_equal(batch[i], single[0])

    def test_keystream_prefix_property(self):
        long = chacha.keystream(RFC_KEY, RFC_NONCE, 200)
        short = chacha.keystream(RFC_KEY, RFC_NONCE, 100)
        assert long[:100] == short

    def test_keystream_length_exact(self):
        assert len(chacha.keystream(RFC_KEY, RFC_NONCE, 65)) == 65

    def test_feedforward_prevents_identity(self):
        # zero key/counter/nonce: the constants make the state nonzero
        # and the feed-forward keeps the output distinct from the input.
        state = chacha.make_states(
            np.zeros((1, 8), dtype=np.uint32),
            np.zeros(1, dtype=np.uint32),
            np.zeros((1, 3), dtype=np.uint32),
        )
        out = chacha.chacha_core(state, 8)
        assert out.any()
        assert not np.array_equal(out, state)

    def test_states_layout(self):
        kw = np.ones((1, 8), dtype=np.uint32)
        nw = np.full((1, 3), 7, dtype=np.uint32)
        state = chacha.make_states(kw, np.array([5], dtype=np.uint32), nw)
        assert np.array_equal(state[0, 0:4], chacha.CONSTANTS)
        assert state[0, 12] == 5
        assert (state[0, 13:16] == 7).all()
